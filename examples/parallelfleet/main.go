// Parallelfleet: the parallel simulation engine end to end. A fleet of
// tenants is synthesized and analyzed across every core, then a cluster of
// auto-scaled tenants replays through the sim.Runner with a live progress
// hook and a cancelable context — the API surface a DaaS control-plane
// service would embed. Worker count never changes any result: all
// randomness is derived per tenant (exec.SplitSeed), so a -workers 1 run is
// bit-identical to a -workers 64 run.
//
// Run with:
//
//	go run ./examples/parallelfleet [-tenants N] [-workers W]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"daasscale/internal/exec"
	"daasscale/internal/fabric"
	"daasscale/internal/fleet"
	"daasscale/internal/resource"
	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)
	tenants := flag.Int("tenants", 500, "synthetic fleet size")
	workers := flag.Int("workers", 0, "pool width (0 = all cores)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Progress hooks may fire concurrently from several workers — keep them
	// cheap and re-entrant (one Fprintf per call, no shared mutable state).
	progress := func(p exec.Progress) {
		fmt.Fprintf(os.Stderr, "\r  %d/%d  %.0f tasks/s  p95 %s  workers %d (%.0f%% busy)   ",
			p.Done, p.Total, p.TasksPerSec, p.P95.Round(time.Millisecond),
			p.Workers, p.WorkerUtilization*100)
	}
	// --- fleet-wide telemetry study, streamed shard by shard ---------------
	start := time.Now()
	spec, err := fleet.NewFleetSpec(*tenants, 7, 42,
		fleet.WithParallelism(*workers),
		fleet.WithProgress(progress),
		fleet.WithCatalog(resource.LockStepCatalog()))
	if err != nil {
		log.Fatal(err)
	}
	fleetRes, err := fleet.Stream(ctx, spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	analysis := fleetRes.Analysis
	fmt.Fprintln(os.Stderr)
	fmt.Printf("fleet of %d tenants generated and analyzed in %s\n", *tenants, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %d container-size changes; %.0f%% within 60 min of the previous one\n",
		analysis.TotalChanges, analysis.IEIWithin60Min*100)

	// --- cluster replay through the Runner ---------------------------------
	runner := sim.NewRunner(
		sim.WithParallelism(*workers),
		sim.WithSeed(42),
		sim.WithProgress(progress),
	)
	start = time.Now()
	res, err := runner.RunMultiTenant(ctx, sim.MultiTenantSpec{
		Tenants: []sim.TenantSpec{
			// Seeds left zero: each tenant's RNG derives from the cluster
			// seed and its ID, so the list scales without bookkeeping.
			{ID: "webshop", Workload: workload.DS2(), Trace: trace.Trace1(300, 1), GoalMs: 60},
			{ID: "orders", Workload: workload.TPCC(), Trace: trace.Trace4(300, 2), GoalMs: 200},
			{ID: "reports", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace2(300, 3), GoalMs: 100},
			{ID: "staging", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace3(300, 4), GoalMs: 300},
		},
		Servers: 2,
		Policy:  fabric.BestFit,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr)
	fmt.Printf("cluster replay finished in %s\n", time.Since(start).Round(time.Millisecond))
	for _, tn := range res.Tenants {
		fmt.Printf("  %-8s cost/interval %7.1f  p95 %7.1fms  %d resizes (%d refused)\n",
			tn.ID, tn.AvgCostPerInterval, tn.P95Ms, tn.Changes, tn.RefusedResizes)
	}
	fmt.Printf("fabric: %d migrations, %d refusals\n", res.Migrations, res.Refusals)
}
