// Budgetcap: the Section 5 budget manager in action. The tenant sets a hard
// monthly budget; the token-bucket budget manager translates it into a
// per-interval allowance that permits bursts while guaranteeing the total is
// never exceeded. The example contrasts the aggressive initialization
// (TI = D: burst immediately, risk being pinned to the cheapest container
// later) with the conservative one (TI = K·Cmax: early bursts are limited,
// budget is preserved for later).
//
// Run with:
//
//	go run ./examples/budgetcap
package main

import (
	"fmt"
	"log"

	"daasscale/internal/budget"
	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)

	cat := resource.LockStepCatalog()
	tr := trace.Trace4(360, 4) // six bursty hours
	const totalBudget = 360 * 12.0

	fmt.Printf("budgeting period: %d intervals, budget %.0f units (unconstrained bursts would want far more)\n\n",
		tr.Len(), totalBudget)

	for _, strategy := range []budget.Strategy{budget.Aggressive, budget.Conservative} {
		bud, err := budget.New(strategy, totalBudget, tr.Len(), cat.Smallest().Cost, cat.Largest().Cost, 3)
		if err != nil {
			log.Fatal(err)
		}
		scaler, err := core.New(core.Config{
			Catalog: cat,
			Initial: cat.Smallest(),
			Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: 150},
			Budget:  bud,
		})
		if err != nil {
			log.Fatal(err)
		}
		eng, err := engine.New(workload.TPCC(), scaler.Container(), 7, engine.Options{WarmStart: true})
		if err != nil {
			log.Fatal(err)
		}
		gen := workload.NewGenerator(8, 0.1)

		constrained := 0
		for minute := 0; minute < tr.Len(); minute++ {
			for tick := 0; tick < eng.TicksPerInterval(); tick++ {
				eng.Tick(gen.Offered(tr.At(minute)))
			}
			d := scaler.Observe(eng.EndInterval())
			if d.BudgetConstrained {
				constrained++
			}
			if d.Changed {
				eng.SetContainer(d.Target)
			}
			eng.SetMemoryTargetMB(d.BalloonTargetMB)
		}
		fmt.Printf("%-12s spent %7.1f / %.0f  (%.1f%% of budget), budget-constrained in %d intervals\n",
			strategy, bud.Spent(), totalBudget, bud.Spent()/totalBudget*100, constrained)
		if bud.Spent() > totalBudget {
			log.Fatalf("budget invariant violated: %v > %v", bud.Spent(), totalBudget)
		}
	}
	fmt.Println("\nboth strategies keep the hard budget; they differ in when the surplus may be burned.")
}
