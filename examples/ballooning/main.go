// Ballooning: the Figure 14 experiment. Low memory demand cannot be read
// off utilization or waits — caches never volunteer memory back. The paper's
// answer is a ballooning probe: shrink memory gradually and watch disk I/O.
// This example runs both arms: the naive scale-down that evicts the working
// set (latency up two orders of magnitude, slow recovery while the cache
// re-warms at disk speed) and the probe that aborts right at the working
// set with no visible damage.
//
// Run with:
//
//	go run ./examples/ballooning
package main

import (
	"fmt"
	"log"
	"os"

	"daasscale/internal/report"
	"daasscale/internal/sim"
)

func main() {
	log.SetFlags(0)

	res, err := sim.RunBallooningExperiment(sim.BallooningSpec{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: CPUIO with a %.0f MB working set in a 4GB container; the next smaller container has 2GB\n\n",
		res.WorkingSetMB)

	for _, arm := range []sim.BallooningArm{res.Without, res.With} {
		mem := make([]float64, len(arm.Series))
		lat := make([]float64, len(arm.Series))
		for i, pt := range arm.Series {
			mem[i] = pt.MemoryUsedMB
			lat[i] = pt.AvgMs
		}
		report.ASCIIChart(os.Stdout, arm.Name+" — memory used (MB)", mem, 72, 7)
		report.ASCIIChart(os.Stdout, arm.Name+" — average latency (ms)", lat, 72, 7)
		fmt.Printf("%s: shrink at interval %d, reverted at %d; baseline %.1f ms, peak %.1f ms, min memory %.0f MB\n\n",
			arm.Name, arm.ShrunkAt, arm.RevertedAt, arm.BaselineAvgMs(), arm.PeakAvgMs(), arm.MinMemoryMB())
	}

	fmt.Printf("latency damage: naive %.0fx baseline vs probe %.1fx baseline\n",
		res.Without.PeakAvgMs()/res.Without.BaselineAvgMs(),
		res.With.PeakAvgMs()/res.With.BaselineAvgMs())
}
