// Lockbound: the Figure 13 story. A TPC-C-like workload whose latency is
// dominated by application-level lock contention misses its latency goal
// during bursts — and no container size can fix that. The utilization-only
// autoscaler (Util) cannot tell lock waits from resource pressure, so it
// keeps throwing hardware at the problem; the demand-driven auto-scaler
// (Auto) reads the wait statistics, recognizes a bottleneck beyond
// resources, and holds.
//
// Run with:
//
//	go run ./examples/lockbound
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"daasscale/internal/report"
	"daasscale/internal/sim"
	"daasscale/internal/telemetry"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)

	comp, err := sim.RunComparison(sim.ComparisonSpec{
		Workload:   workload.TPCC(),
		Trace:      trace.Trace4(720, 4),
		GoalFactor: 1.25,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	report.ComparisonTable(os.Stdout, "TPC-C × spiky trace (lock-bound)", comp)

	util := comp.MustByPolicy("Util")
	auto := comp.MustByPolicy("Auto")

	fmt.Println("\ncontainer CPU as % of the server, over time (Figure 13(a)/(b)):")
	for _, r := range []sim.Result{util, auto} {
		frac := make([]float64, len(r.Series))
		for i, pt := range r.Series {
			frac[i] = pt.ContainerCPUFrac * 100
		}
		report.ASCIIChart(os.Stdout, "  "+r.Policy, frac, 72, 7)
	}

	fmt.Println("\nwhy (Figure 13(c)): the wait mix during the busiest interval of each run")
	for _, r := range []sim.Result{util, auto} {
		busiest := 0
		for i, pt := range r.Series {
			if pt.OfferedRPS > r.Series[busiest].OfferedRPS {
				busiest = i
			}
		}
		pt := r.Series[busiest]
		var parts []string
		for _, wc := range telemetry.WaitClasses {
			if share := pt.WaitPct[wc]; share > 0.01 {
				parts = append(parts, fmt.Sprintf("%v %.0f%%", wc, share*100))
			}
		}
		fmt.Printf("  %-5s minute %4d (%.0f rps): %s\n", r.Policy, pt.Interval, pt.OfferedRPS, strings.Join(parts, ", "))
	}

	fmt.Printf("\nconclusion: Util paid %.1fx Auto's cost for the same lock-bound latency.\n",
		util.AvgCostPerInterval/auto.AvgCostPerInterval)
}
