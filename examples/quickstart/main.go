// Quickstart: the minimal closed loop. A tenant database (the CPUIO
// micro-benchmark) runs inside a simulated DaaS container while the
// auto-scaler picks the container size each billing interval from nothing
// but engine telemetry, a p95 latency goal, and the container catalog.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. The service offers a catalog of container sizes.
	cat := resource.LockStepCatalog()

	// 2. The tenant's database: a mixed CPU/I/O workload with a 3GB hot set.
	w := workload.CPUIO(workload.DefaultCPUIOConfig())
	eng, err := engine.New(w, cat.Smallest(), 1, engine.Options{WarmStart: true})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The auto-scaler: the tenant states a latency goal — not a
	// container size — and the controller does the rest.
	scaler, err := core.New(core.Config{
		Catalog: cat,
		Initial: cat.Smallest(),
		Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: 60},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Drive a bursty day: mostly idle with one long burst.
	tr := trace.Trace2(240, 7)
	gen := workload.NewGenerator(2, 0.1)
	var totalCost float64
	for minute := 0; minute < tr.Len(); minute++ {
		for tick := 0; tick < eng.TicksPerInterval(); tick++ {
			eng.Tick(gen.Offered(tr.At(minute)))
		}
		snap := eng.EndInterval()
		totalCost += snap.Cost

		decision := scaler.Observe(snap)
		if decision.Changed {
			fmt.Printf("minute %3d: load %5.0f rps, p95 %6.1f ms → resize to %-3s (cost %3.0f/interval)\n",
				minute, snap.OfferedRPS, snap.P95LatencyMs, decision.Target.Name, decision.Target.Cost)
			for _, e := range decision.Explanations {
				fmt.Printf("            because: %s\n", e)
			}
			eng.SetContainer(decision.Target)
		}
		eng.SetMemoryTargetMB(decision.BalloonTargetMB)
	}
	fmt.Printf("\ntotal cost: %.0f units over %d intervals (%.1f/interval)\n",
		totalCost, tr.Len(), totalCost/float64(tr.Len()))
	fmt.Printf("a static largest-container tenant would have paid %.0f (%.1fx more)\n",
		cat.Largest().Cost*float64(tr.Len()),
		cat.Largest().Cost*float64(tr.Len())/totalCost)
}
