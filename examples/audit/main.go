// Audit: the decision-audit trail of the control loop. Every runner drives
// its tenants through the same internal/loop.TenantLoop, and every loop step
// emits one loop.DecisionRecord — the snapshot the engine measured, the
// container the policy asked for and the estimator rules that fired, what
// the fault injector did to the telemetry channel, and how the actuation
// channel handled the decision.
//
// This example shows both ways to consume the stream:
//
//  1. Spec.Audit collects the records into Result.Audit, which
//     report.ExplainTable renders — the machinery behind `daas-sim -explain`.
//  2. Spec.Recorder streams each record as it is emitted, for live
//     dashboards or custom aggregation (here: a resize ticker).
//
// Run with:
//
//	go run ./examples/audit
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"daasscale/internal/core"
	"daasscale/internal/faults"
	"daasscale/internal/loop"
	"daasscale/internal/policy"
	"daasscale/internal/report"
	"daasscale/internal/resource"
	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// resizeWatcher is a streaming loop.Recorder: it sees every DecisionRecord
// the moment the loop emits it, in interval order.
type resizeWatcher struct {
	resizes  int
	withheld int
}

func (w *resizeWatcher) Record(r loop.DecisionRecord) {
	if !r.Observed {
		w.withheld++
	}
	if r.Changed {
		w.resizes++
		fmt.Printf("  live: interval %3d  resize %s → %s\n", r.Interval, r.Actual, r.Target)
	}
}

func main() {
	log.SetFlags(0)
	const goalMs = 90

	cat := resource.LockStepCatalog()
	scaler, err := core.New(core.Config{
		Catalog: cat,
		Initial: cat.Smallest(),
		Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: goalMs},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A mildly hostile telemetry channel, so the trail shows withheld
	// intervals and duplicate deliveries next to ordinary rule firings.
	plan := faults.Uniform(0.15)
	plan.Seed = 3

	watcher := &resizeWatcher{}
	fmt.Println("streaming recorder (live resize ticker):")
	res, err := sim.NewRunner().Run(context.Background(), sim.Spec{
		Workload: workload.DS2(),
		Trace:    trace.Trace2(240, 2),
		Policy:   policy.NewAuto(scaler),
		Seed:     42,
		GoalMs:   goalMs,
		Faults:   plan,
		Audit:    true,    // collect the trail into res.Audit…
		Recorder: watcher, // …and stream it live at the same time
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watcher saw %d resizes and %d withheld intervals (loop counted %d changes)\n\n",
		watcher.resizes, watcher.withheld, res.Changes)

	// The collected trail renders exactly like `daas-sim -explain`.
	report.ExplainTable(os.Stdout,
		fmt.Sprintf("Auto on %s × %s, goal %d ms", res.Workload, res.Trace, goalMs),
		res.Audit, 25)
}
