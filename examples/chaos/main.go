// Chaos: graceful degradation under telemetry faults. The same six-policy
// comparison runs twice — once on a clean telemetry channel and once with a
// deterministic fault plan injecting dropped, duplicated, reordered and
// corrupted snapshots at a 10% total rate. The engine and the billing stay
// truthful in both runs; only what the policies observe is perturbed, so
// the cost delta is the price of scaling on damaged evidence.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"log"

	"daasscale/internal/faults"
	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	runner := sim.NewRunner()

	base := sim.ComparisonSpec{
		Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
		Trace:      trace.Trace2(400, 2),
		GoalFactor: 1.25,
		Seed:       42,
	}

	clean, err := runner.RunComparison(ctx, base)
	if err != nil {
		log.Fatal(err)
	}

	chaos := base
	chaos.Faults = faults.Uniform(0.10) // 10% of intervals faulted, all kinds
	chaos.Faults.Seed = 1
	dirty, err := runner.RunComparison(ctx, chaos)
	if err != nil {
		log.Fatal(err)
	}

	// The offline Max run stays clean in both, so the latency goals match
	// and the comparison is apples to apples.
	fmt.Printf("latency goal: %.1f ms (clean) vs %.1f ms (chaos) — identical by design\n\n",
		clean.GoalMs, dirty.GoalMs)

	fmt.Printf("%-6s  %12s  %12s  %8s  %10s  %10s\n",
		"policy", "clean cost", "chaos cost", "Δcost", "clean p95", "chaos p95")
	for _, cr := range clean.Results {
		dr, ok := dirty.ByPolicy(cr.Policy)
		if !ok {
			continue
		}
		delta := 0.0
		if cr.TotalCost > 0 {
			delta = (dr.TotalCost - cr.TotalCost) / cr.TotalCost * 100
		}
		fmt.Printf("%-6s  %12.0f  %12.0f  %+7.1f%%  %8.1f ms  %8.1f ms\n",
			cr.Policy, cr.TotalCost, dr.TotalCost, delta, cr.P95Ms, dr.P95Ms)
	}

	auto := dirty.MustByPolicy("Auto")
	fmt.Printf("\nwhat the injector did to Auto's telemetry channel:\n  %s\n", auto.FaultStats)
	fmt.Println("\nthe pipeline sanitized every corrupted counter, widened the")
	fmt.Println("estimator's no-op band on degraded windows, and held the previous")
	fmt.Println("container on dropped intervals — no panic, finite signals throughout.")
}
