// Cluster: the Figure 3 deployment. Several auto-scaled tenants share a
// small cluster of database servers through the management fabric, which
// places containers, migrates tenants when a resize does not fit in place,
// and refuses resizes the cluster cannot host (the tenant then keeps its
// container). The per-server invariant — the sum of container allocations
// never exceeds server capacity — is what makes the container abstraction's
// resource guarantee real.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"

	"daasscale/internal/engine"
	"daasscale/internal/fabric"
	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)

	// The Runner fans the per-tenant engine work across all cores; worker
	// count never changes the results, only the wall time.
	runner := sim.NewRunner()
	res, err := runner.RunMultiTenant(context.Background(), sim.MultiTenantSpec{
		Tenants: []sim.TenantSpec{
			{ID: "webshop", Workload: workload.DS2(), Trace: trace.Trace1(300, 1), GoalMs: 60, Seed: 1},
			{ID: "orders", Workload: workload.TPCC(), Trace: trace.Trace4(300, 2), GoalMs: 200, Seed: 2},
			{ID: "reports", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace2(300, 3), GoalMs: 100, Seed: 3},
			{ID: "staging", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace3(300, 4), GoalMs: 300, Seed: 4},
		},
		Servers:    2,
		Policy:     fabric.BestFit,
		EngineOpts: engine.Options{WarmStart: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("four tenants on two 32-core servers, five simulated hours:")
	fmt.Printf("%-8s  %12s  %10s  %8s  %8s\n", "tenant", "cost/interval", "p95 (ms)", "resizes", "refused")
	for _, tn := range res.Tenants {
		fmt.Printf("%-8s  %12.1f  %10.1f  %8d  %8d\n",
			tn.ID, tn.AvgCostPerInterval, tn.P95Ms, tn.Changes, tn.RefusedResizes)
	}
	fmt.Printf("\nfabric: %d migrations, %d refused resizes, peak server allocation %.0f%% of capacity\n",
		res.Migrations, res.Refusals, res.PeakClusterCPUFrac*100)
	fmt.Println("(the per-server capacity invariant was validated every billing interval)")
}
