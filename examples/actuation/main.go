// Actuation: fault-tolerant resize execution. A three-tenant cluster runs
// on a throttled management fabric: every resize the auto-scalers decide is
// an asynchronous operation that takes a billing interval to execute, can
// be throttled or fail transiently, and — during a 15-interval storm right
// in the initial scale-up — is throttled 100% of the time. The
// desired-state reconciler retries with
// capped exponential backoff, supersedes stale in-flight resizes when a
// policy changes its mind, expires operations at their deadline, and
// re-issues the still-desired container until the channel converges: once
// the storm lifts, every tenant catches up to its desired size.
//
// Run with:
//
//	go run ./examples/actuation
package main

import (
	"context"
	"fmt"
	"log"

	"daasscale/internal/actuate"
	"daasscale/internal/engine"
	"daasscale/internal/fabric"
	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	runner := sim.NewRunner()

	base := sim.MultiTenantSpec{
		Tenants: []sim.TenantSpec{
			{ID: "web", Workload: workload.DS2(), Trace: trace.Trace1(120, 1), GoalMs: 60},
			{ID: "oltp", Workload: workload.TPCC(), Trace: trace.Trace4(120, 2), GoalMs: 200},
			{ID: "batch", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace2(120, 3), GoalMs: 80},
		},
		Servers:    2,
		Policy:     fabric.BestFit,
		EngineOpts: engine.Options{WarmStart: true},
		Seed:       7,
	}

	sync, err := runner.RunMultiTenant(ctx, base)
	if err != nil {
		log.Fatal(err)
	}

	throttled := base
	throttled.Actuation = actuate.Config{
		Seed:              1,
		LatencyIntervals:  1,    // a resize takes one billing interval to execute
		FailRate:          0.10, // …and sometimes fails transiently
		ThrottleRate:      0.05, // …or gets rate-limited by the fabric
		BurstStart:        2,    // intervals [2, 17): a full throttle storm right
		BurstLen:          15,   // in the initial scale-up — every attempt refused
		DeadlineIntervals: 5,    // operations expire after 5 intervals…
		// …but reconciliation is level-triggered: an expired operation's
		// still-desired target is re-issued as a fresh operation, so the
		// fleet converges once the storm lifts.
	}
	async, err := runner.RunMultiTenant(ctx, throttled)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("same cluster, synchronous vs throttled asynchronous resizes:")
	fmt.Printf("\n%-6s  %12s  %12s  %10s  %10s\n",
		"tenant", "sync cost", "async cost", "sync p95", "async p95")
	for i, sr := range sync.Tenants {
		ar := async.Tenants[i]
		fmt.Printf("%-6s  %12.0f  %12.0f  %8.1f ms  %8.1f ms\n",
			sr.ID, sr.TotalCost, ar.TotalCost, sr.P95Ms, ar.P95Ms)
	}

	fmt.Println("\nwhat the actuation channel did per tenant:")
	for _, tr := range async.Tenants {
		fmt.Printf("  %-6s %s\n", tr.ID, tr.Actuation)
	}

	var throttledAttempts, expired, applied int
	for _, tr := range async.Tenants {
		throttledAttempts += tr.Actuation.Throttled
		expired += tr.Actuation.Expired
		applied += tr.Actuation.Applied
	}
	fmt.Printf("\nthe storm throttled %d attempts and expired %d operations, yet %d\n",
		throttledAttempts, expired, applied)
	fmt.Println("resizes still landed: expired operations do not lose the desired")
	fmt.Println("state — the reconciler re-issues it until desired == actual, so a")
	fmt.Println("burst of refusals delays scaling instead of derailing it.")
}
