// Command daas-server runs the autoscaler as a service: a long-running
// HTTP daemon that ingests per-tenant telemetry snapshots, drives each
// tenant's control loop, and persists every decision and billing
// line-item to an append-only, checksummed ledger (one file per tenant
// under -ledger-dir).
//
// API:
//
//	POST /v1/tenants/{id}/telemetry   ingest snapshots (idempotent by seq)
//	GET  /v1/tenants/{id}/decisions   replay the decision trail [?since=N&limit=N]
//	GET  /v1/tenants/{id}/bill        replay the billing line-items
//	GET  /healthz                     liveness
//	GET  /metrics                     ingest/decision/ledger counters
//
// SIGINT/SIGTERM drains gracefully: in-flight requests finish, every
// tenant's reorder buffer is flushed through its loop, and every ledger
// is synced and closed. A restarted server resumes each tenant's ingest
// watermark from its ledger.
//
// Usage:
//
//	daas-server [-addr :8080] [-ledger-dir DIR] [-goal-ms G] [-seed S]
//	            [-reorder-window N] [-rate R] [-burst B] [-sync-every N]
//	            [-max-tenants N]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daasscale/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	ledgerDir := flag.String("ledger-dir", "ledgers", "directory for per-tenant decision ledgers")
	goalMs := flag.Float64("goal-ms", serve.DefaultGoalMs, "P95 latency goal handed to each tenant's auto-scaler")
	seed := flag.Int64("seed", 42, "service seed; per-tenant streams derive from it deterministically")
	reorderWindow := flag.Int("reorder-window", serve.DefaultReorderWindow, "max out-of-order snapshots buffered per tenant before gaps are decided as withheld")
	rate := flag.Float64("rate", 0, "per-tenant ingest rate limit in snapshots/sec (0 = unlimited)")
	burst := flag.Int("burst", serve.DefaultBurst, "rate-limiter bucket size")
	syncEvery := flag.Int("sync-every", 1, "ledger group-commit stride: fsync every N records (1 = every record; <0 = once per ingest request)")
	maxTenants := flag.Int("max-tenants", 0, "cap on concurrently served tenants (0 = unlimited)")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		LedgerDir:     *ledgerDir,
		GoalMs:        *goalMs,
		Seed:          *seed,
		ReorderWindow: *reorderWindow,
		RatePerSec:    *rate,
		Burst:         *burst,
		SyncEvery:     *syncEvery,
		MaxTenants:    *maxTenants,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("shutdown signal received, draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (ledgers in %s)", *addr, *ledgerDir)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// HTTP is quiesced; flush every tenant pipeline and close the ledgers.
	if err := srv.Close(); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Printf("drained cleanly")
}
