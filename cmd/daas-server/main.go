// Command daas-server runs the autoscaler as a service: a long-running
// HTTP daemon that ingests per-tenant telemetry snapshots, drives each
// tenant's control loop, and persists every decision and billing
// line-item to an append-only, checksummed ledger (one file per tenant
// under -ledger-dir).
//
// API:
//
//	POST /v1/tenants/{id}/telemetry   ingest snapshots (idempotent by seq)
//	GET  /v1/tenants/{id}/decisions   replay the decision trail [?since=N&limit=N]
//	GET  /v1/tenants/{id}/bill        replay the billing line-items
//	GET  /healthz                     liveness (reports quarantined tenants)
//	GET  /metrics                     ingest/decision/ledger/storage counters
//
// SIGINT/SIGTERM drains gracefully: in-flight requests finish, every
// tenant's reorder buffer is flushed through its loop, and every ledger
// is synced and closed. A restarted server resumes each tenant's ingest
// watermark from its ledger.
//
// Storage faults never turn into wrong answers: a tenant whose ledger
// write or fsync fails is quarantined and its ingests refused with 503 +
// Retry-After until a recovery probe (seal the bad segment, rotate to a
// fresh one) succeeds. The -fault-* flags deterministically inject such
// faults into the daemon's own filesystem layer — they exist for the
// crash-restart CI harness and for operator drills, never for production.
//
// Usage:
//
//	daas-server [-addr :8080] [-ledger-dir DIR] [-goal-ms G] [-seed S]
//	            [-reorder-window N] [-rate R] [-burst B] [-sync-every N]
//	            [-max-tenants N] [-probe-interval D]
//	            [-fault-kind eio|enospc|short|powercut|mix] [-fault-rate P]
//	            [-fault-start N] [-fault-count N] [-fault-seed S]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daasscale/internal/diskfaults"
	"daasscale/internal/fsio"
	"daasscale/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	ledgerDir := flag.String("ledger-dir", "ledgers", "directory for per-tenant decision ledgers")
	goalMs := flag.Float64("goal-ms", serve.DefaultGoalMs, "P95 latency goal handed to each tenant's auto-scaler")
	seed := flag.Int64("seed", 42, "service seed; per-tenant streams derive from it deterministically")
	reorderWindow := flag.Int("reorder-window", serve.DefaultReorderWindow, "max out-of-order snapshots buffered per tenant before gaps are decided as withheld")
	rate := flag.Float64("rate", 0, "per-tenant ingest rate limit in snapshots/sec (0 = unlimited)")
	burst := flag.Int("burst", serve.DefaultBurst, "rate-limiter bucket size")
	syncEvery := flag.Int("sync-every", 1, "ledger group-commit stride: fsync every N records (1 = every record; <0 = once per ingest request)")
	maxTenants := flag.Int("max-tenants", 0, "cap on concurrently served tenants (0 = unlimited)")
	probeInterval := flag.Duration("probe-interval", serve.DefaultProbeInterval, "pacing between a quarantined tenant's recovery probes (also the 503 Retry-After hint)")
	faultKind := flag.String("fault-kind", "", "inject storage faults of this kind (eio, enospc, short, powercut, mix); empty = real disk, no injection")
	faultRate := flag.Float64("fault-rate", 0, "probability each filesystem op faults (used when -fault-count is 0)")
	faultStart := flag.Int64("fault-start", 0, "first filesystem op index the fault window covers")
	faultCount := flag.Int64("fault-count", 0, "number of ops in the fault window (<0 = every op from -fault-start on; 0 = use -fault-rate)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for rate-mode fault decisions")
	flag.Parse()

	fs := fsio.OS
	if *faultKind != "" {
		kind, err := diskfaults.KindFromString(*faultKind)
		if err != nil {
			log.Fatal(err)
		}
		fs = diskfaults.Wrap(fsio.OS, diskfaults.Plan{
			Kind:  kind,
			Start: *faultStart,
			Count: *faultCount,
			Rate:  *faultRate,
			Seed:  *faultSeed,
		})
		log.Printf("storage fault injection armed: kind=%s start=%d count=%d rate=%g", kind, *faultStart, *faultCount, *faultRate)
	}

	srv, err := serve.New(serve.Config{
		LedgerDir:     *ledgerDir,
		GoalMs:        *goalMs,
		Seed:          *seed,
		ReorderWindow: *reorderWindow,
		RatePerSec:    *rate,
		Burst:         *burst,
		SyncEvery:     *syncEvery,
		MaxTenants:    *maxTenants,
		ProbeInterval: *probeInterval,
		FS:            fs,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("shutdown signal received, draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (ledgers in %s)", *addr, *ledgerDir)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// HTTP is quiesced; flush every tenant pipeline and close the ledgers.
	if err := srv.Close(); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Printf("drained cleanly")
}
