// Command daas-experiments regenerates every table and figure of the
// paper's evaluation in one run:
//
//	Figure 2   — fleet change-event analysis (IEI CDF, changes/day),
//	Figure 4   — wait magnitude vs utilization (correlation),
//	Figure 6   — wait distributions at low/high utilization,
//	Figure 8   — the four load traces,
//	Figure 9   — CPUIO × Trace 2 at 1.25× and 5× goals,
//	Figure 10  — TPC-C × Trace 4 at 1.25× goal,
//	Figure 11  — CPUIO × Trace 3 at 5× goal,
//	Figure 12  — DS2 × Trace 1 at 1.25× goal,
//	Figure 13  — the Util-vs-Auto drill-down of the TPC-C experiment,
//	Figure 14  — ballooning vs naive memory scale-down,
//	Section 4  — resize step-size statistics.
//
// Usage:
//
//	daas-experiments [-seed S] [-quick] [-workers W] [-progress] [-faults R]
//	                 [-actuation-latency N -actuation-fail R]
//	                 [-explain -explain-rows N]
//
// With -explain every end-to-end comparison additionally collects the Auto
// policy's per-interval decision-audit stream (loop.DecisionRecord) and
// prints its rule-level explanations after the comparison table.
//
// With -faults R > 0 every simulation's telemetry channel runs under a
// deterministic uniform fault plan (rate R spread over the fault kinds) —
// the chaos-mode replication of the evaluation. Results stay reproducible
// and worker-count independent.
//
// With -actuation-latency N > 0 (and optionally -actuation-fail R) every
// resize a policy decides is executed asynchronously: it lands N intervals
// later, can fail transiently, retries with backoff, and the latest desired
// container is reconciled. The offline Max runs that derive each
// experiment's latency goal stay synchronous, so actuated reports remain
// comparable to clean ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"daasscale/internal/actuate"
	"daasscale/internal/engine"
	"daasscale/internal/exec"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/fleet"
	"daasscale/internal/report"
	"daasscale/internal/resource"
	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-experiments: ")
	seed := flag.Int64("seed", 42, "seed for every experiment")
	quick := flag.Bool("quick", false, "fast smoke run: smaller fleet, decimated traces (online policies get less reaction headroom, so their numbers are distorted)")
	workers := flag.Int("workers", 0, "worker-pool width for parallel simulation (0 = all cores); never changes results")
	progress := flag.Bool("progress", false, "print live executor metrics to stderr")
	faultRate := flag.Float64("faults", 0, "total telemetry fault rate in [0,1] for every simulation (0 = clean)")
	actLatency := flag.Int("actuation-latency", 0, "billing intervals every resize takes to execute (0 = synchronous)")
	actFail := flag.Float64("actuation-fail", 0, "per-attempt resize failure probability in [0,1] (needs -actuation-latency or is its own trigger)")
	contention := flag.Bool("contention", false, "append the Section 7 cluster study: noisy-neighbor contention off vs on vs on+rebalance")
	explain := flag.Bool("explain", false, "append Auto's decision-audit trail to every end-to-end comparison")
	explainRows := flag.Int("explain-rows", 20, "maximum audit lines per -explain trail")
	outDir := flag.String("out", "", "also write every policy's per-interval series as CSV files into this directory")
	markdownPath := flag.String("markdown", "", "also write the comparison tables as a markdown report to this file")
	flag.Parse()

	// Ctrl-C cancels the current experiment cleanly (sim.ErrCanceled)
	// instead of killing the process mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	execOpts := exec.Options{Workers: *workers}
	runnerOpts := []sim.Option{sim.WithParallelism(*workers), sim.WithSeed(*seed)}
	if *faultRate > 0 {
		runnerOpts = append(runnerOpts, sim.WithFaults(faults.Uniform(*faultRate)))
		fmt.Fprintf(os.Stderr, "note: telemetry chaos mode, total fault rate %.0f%%\n", *faultRate*100)
	}
	if *actLatency > 0 || *actFail > 0 {
		runnerOpts = append(runnerOpts, sim.WithActuation(actuate.Config{
			Seed:             1,
			LatencyIntervals: *actLatency,
			FailRate:         *actFail,
		}))
		fmt.Fprintf(os.Stderr, "note: actuated resizes, latency %d intervals, fail rate %.0f%%\n",
			*actLatency, *actFail*100)
	}
	if *progress {
		prog := report.NewProgress(os.Stderr, "tasks", time.Millisecond)
		// Terminate the in-place line when main returns so the shell
		// prompt never lands on top of a stale \r line.
		defer prog.Finish()
		execOpts.OnProgress = prog.Hook()
		runnerOpts = append(runnerOpts, sim.WithProgress(prog.Hook()))
	}
	runner := sim.NewRunner(runnerOpts...)

	var md *os.File
	if *markdownPath != "" {
		var err error
		if md, err = os.Create(*markdownPath); err != nil {
			log.Fatal(err)
		}
		defer md.Close()
		fmt.Fprintf(md, "# daasscale experiment report (seed %d)\n\n", *seed)
	}

	tenants, days, configs := 2000, 7, 300
	decimate := 1
	if *quick {
		tenants, days, configs = 200, 3, 60
		decimate = 4
	}
	cat := resource.LockStepCatalog()
	out := os.Stdout

	section := func(title string) { fmt.Fprintf(out, "\n========== %s ==========\n", title) }

	// ---- Figure 2 -------------------------------------------------------
	section("Figure 2: resource demand analysis in production (synthetic fleet)")
	fleetSpec, err := fleet.NewFleetSpec(tenants, days, *seed,
		fleet.WithParallelism(*workers), fleet.WithCatalog(cat))
	if err != nil {
		log.Fatal(err)
	}
	fleetRes, err := fleet.Stream(ctx, fleetSpec, nil)
	if err != nil {
		log.Fatal(err)
	}
	report.FleetSummary(out, fleetRes.Analysis)

	// ---- Figures 4 & 6 ----------------------------------------------------
	section("Figures 4 & 6: wait statistics vs utilization")
	calSpec, err := fleet.NewCalibrationSpec(configs, 4, *seed, fleet.WithParallelism(*workers))
	if err != nil {
		log.Fatal(err)
	}
	cal, err := fleet.StreamCalibration(ctx, calSpec, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range cal.Digests {
		rho, err := d.Correlation()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "\n%s wait–utilization Spearman ρ = %.2f (Figure 4: increasing but weak)\n", d.Kind(), rho)
		report.WaitDigestTable(out, d)
	}
	th := cal.Thresholds
	fmt.Fprintln(out, "\ncalibrated thresholds (Section 4.1):")
	for _, k := range resource.Kinds {
		fmt.Fprintf(out, "  %-7s waits LOW < %8.0f, HIGH ≥ %8.0f ms/interval\n", k, th.WaitLowMs[k], th.WaitHighMs[k])
	}

	// ---- Figure 8 ----------------------------------------------------------
	section("Figure 8: traces derived from real-life workloads")
	traces := trace.Standard(*seed)
	for _, tr := range traces {
		report.ASCIIChart(out, fmt.Sprintf("%s (mean %.0f rps, peak %.0f rps)", tr.Name, tr.Mean(), tr.Peak()), tr.RPS, 72, 8)
	}

	// ---- End-to-end comparisons (Figures 9–12) ---------------------------
	type exp struct {
		title      string
		w          *workload.Workload
		tr         *trace.Trace
		goalFactor float64
	}
	maybeDecimate := func(tr *trace.Trace) *trace.Trace { return tr.Decimate(decimate) }
	exps := []exp{
		{"Figure 9(a): CPUIO × Trace 2, goal 1.25×Max", workload.CPUIO(workload.DefaultCPUIOConfig()), maybeDecimate(traces[1]), 1.25},
		{"Figure 9(b): CPUIO × Trace 2, goal 5×Max", workload.CPUIO(workload.DefaultCPUIOConfig()), maybeDecimate(traces[1]), 5},
		{"Figure 10: TPC-C × Trace 4, goal 1.25×Max", workload.TPCC(), maybeDecimate(traces[3]), 1.25},
		{"Figure 11: CPUIO × Trace 3, goal 5×Max", workload.CPUIO(workload.DefaultCPUIOConfig()), maybeDecimate(traces[2]), 5},
		{"Figure 12: DS2 × Trace 1, goal 1.25×Max", workload.DS2(), maybeDecimate(traces[0]), 1.25},
	}
	var tpccComp sim.Comparison
	for _, e := range exps {
		section(e.title)
		comp, err := runner.RunComparison(ctx, sim.ComparisonSpec{
			Workload:   e.w,
			Trace:      e.tr,
			GoalFactor: e.goalFactor,
			Audit:      *explain,
		})
		if err != nil {
			log.Fatal(err)
		}
		report.ComparisonTable(out, e.title, comp)
		if *explain {
			if r, ok := comp.ByPolicy("Auto"); ok {
				fmt.Fprintln(out)
				report.ExplainTable(out, "Auto — "+e.title, r.Audit, *explainRows)
			}
		}
		if md != nil {
			report.MarkdownComparison(md, e.title, comp)
		}
		if *outDir != "" {
			for _, r := range comp.Results {
				name := fmt.Sprintf("%s_%s_goal%.2fx_%s.csv", r.Workload, r.Trace, e.goalFactor, r.Policy)
				if err := writeSeriesCSV(filepath.Join(*outDir, name), r.Series); err != nil {
					log.Fatal(err)
				}
			}
		}
		if e.w.Name == "tpcc" {
			tpccComp = comp
		}
	}

	// ---- Figure 13 ---------------------------------------------------------
	section("Figure 13: drill-down — why Util overpays on the lock-bound workload")
	for _, p := range []string{"Util", "Auto"} {
		r, ok := tpccComp.ByPolicy(p)
		if !ok {
			log.Fatalf("missing %s result", p)
		}
		frac := make([]float64, len(r.Series))
		for i, pt := range r.Series {
			frac[i] = pt.ContainerCPUFrac * 100
		}
		report.ASCIIChart(out, fmt.Sprintf("%s: container max CPU as %% of server", p), frac, 72, 8)
		report.WaitMixTable(out, r)
	}

	// ---- Figure 14 ---------------------------------------------------------
	section("Figure 14: ballooning and low memory demand")
	ball, err := runner.RunBallooning(ctx, sim.BallooningSpec{})
	if err != nil {
		log.Fatal(err)
	}
	for _, arm := range []sim.BallooningArm{ball.Without, ball.With} {
		mem := make([]float64, len(arm.Series))
		lat := make([]float64, len(arm.Series))
		for i, pt := range arm.Series {
			mem[i] = pt.MemoryUsedMB
			lat[i] = pt.AvgMs
		}
		report.ASCIIChart(out, arm.Name+": memory used (MB)", mem, 72, 7)
		report.ASCIIChart(out, arm.Name+": average latency (ms)", lat, 72, 7)
		fmt.Fprintf(out, "%s: baseline %.1f ms, peak %.1f ms, min memory %.0f MB (working set %.0f MB)\n\n",
			arm.Name, arm.BaselineAvgMs(), arm.PeakAvgMs(), arm.MinMemoryMB(), ball.WorkingSetMB)
	}

	// ---- Section 4 step sizes ----------------------------------------------
	section("Section 4: resize step sizes across the fleet")
	fmt.Fprintf(out, "1-step resizes:  %.1f%%  (paper: ≈90%%)\n", fleetRes.Analysis.OneStepShare*100)
	fmt.Fprintf(out, "≤2-step resizes: %.1f%%  (paper: ≈98%%)\n", fleetRes.Analysis.AtMostTwoStepsShare*100)

	// ---- Section 7 cluster study -------------------------------------------
	if *contention {
		section("Section 7: co-location, noisy neighbors and goal-preserving rebalancing")
		runContentionStudy(ctx, out, *seed, *workers)
	}
}

// contentionModel is the deliberately aggressive interference model of the
// Section 7 study: tiny shared-channel fractions so that even a
// modestly-packed node overcommits and inflates its residents' waits.
func contentionModel() fabric.Contention {
	return fabric.Contention{
		Enable:       true,
		ShareFrac:    [fabric.NumPressureChannels]float64{0.10, 0.10, 0.10},
		Slope:        1.5,
		MaxInflation: 4,
	}
}

// contentionClusterSpec is the study's fixed cluster: six steady tenants
// whose settled demand fits their p95 goal comfortably — so any violation
// that appears under the interference model is attributable to neighbors,
// and disappearing again under the rebalancer is attributable to placement.
func contentionClusterSpec(seed int64) sim.MultiTenantSpec {
	var tenants []sim.TenantSpec
	for i := 0; i < 6; i++ {
		w := workload.TPCC()
		if i%2 == 1 {
			w = workload.DS2()
		}
		tenants = append(tenants, sim.TenantSpec{
			ID:       fmt.Sprintf("t%d", i),
			Workload: w,
			Trace:    trace.Trace1(60, int64(i+1)).Scale(0.3),
			GoalMs:   60,
		})
	}
	return sim.MultiTenantSpec{
		Tenants:    tenants,
		Servers:    6,
		Policy:     fabric.FirstFit,
		EngineOpts: engine.Options{WarmStart: true},
		Seed:       seed,
		Audit:      true,
	}
}

// runContentionStudy runs the same cluster three times — interference model
// off, on, and on with the placement optimizer — and reports settled-tail
// goal attainment plus the per-node pressure view for each arm.
func runContentionStudy(ctx context.Context, out *os.File, seed int64, workers int) {
	arms := []struct {
		name  string
		tweak func(*sim.MultiTenantSpec)
	}{
		{"contention off", func(*sim.MultiTenantSpec) {}},
		{"contention on", func(s *sim.MultiTenantSpec) { s.Contention = contentionModel() }},
		{"contention on + rebalance every 5", func(s *sim.MultiTenantSpec) {
			s.Contention = contentionModel()
			s.RebalanceEvery = 5
		}},
	}
	runner := sim.NewRunner(sim.WithParallelism(workers))
	for _, arm := range arms {
		spec := contentionClusterSpec(seed)
		arm.tweak(&spec)
		res, err := runner.RunMultiTenant(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "\n--- %s ---\n", arm.name)
		fmt.Fprintf(out, "%-5s  %14s  %14s  %6s  %6s  %6s\n",
			"id", "settled p95", "peak inflation", "migr", "rebal", "meets")
		for _, t := range res.Tenants {
			// The settled tail (last quarter of the run) separates steady-state
			// goal attainment from cold-start transients.
			settled, peakInf := 0.0, 1.0
			for _, rec := range t.Audit {
				if infl := rec.WaitInflation.Max(); infl > peakInf {
					peakInf = infl
				}
				if rec.Interval >= 45 && rec.Snapshot.P95LatencyMs > settled {
					settled = rec.Snapshot.P95LatencyMs
				}
			}
			meets := "yes"
			if settled > 60 {
				meets = "NO"
			}
			fmt.Fprintf(out, "%-5s  %11.1f ms  %13.2fx  %6d  %6d  %6s\n",
				t.ID, settled, peakInf, t.Migrations, t.RebalanceMigrations, meets)
		}
		report.NodeTable(out, arm.name, res)
	}
}

// writeSeriesCSV dumps one run's per-interval series for external plotting.
func writeSeriesCSV(path string, series []sim.IntervalPoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.SeriesCSV(f, series); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
