// Command daas-profile is the cluster hot-path profiling harness: it runs
// a synthetic multi-tenant cluster (1000 tenants by default — the scale the
// BENCH_cluster gate measures) and writes CPU and heap pprof profiles for
// it. The cluster runner labels its phases (`phase=ticks+decide`,
// `phase=apply`) via runtime/pprof when -labels is on, so
// `go tool pprof -tagfocus` can attribute samples to the parallel
// tick/decide fan-out versus the serial fabric-apply section.
//
// Typical use (the `make profile` target):
//
//	go run ./cmd/daas-profile -tenants 1000 -intervals 12 -workers 8 \
//	    -cpuprofile cpu.pprof -memprofile heap.pprof
//	go tool pprof -top cpu.pprof
//	go tool pprof -top -tagfocus phase=apply cpu.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	var (
		tenants    = flag.Int("tenants", 1000, "number of tenants in the cluster")
		intervals  = flag.Int("intervals", 12, "billing intervals per tenant trace")
		workers    = flag.Int("workers", 8, "worker-pool width (results are identical at any value)")
		seed       = flag.Int64("seed", 42, "cluster base seed")
		reference  = flag.Bool("reference", false, "run the retained pre-optimization schedule (serial decide, per-call ticks)")
		labels     = flag.Bool("labels", true, "label cluster phases with runtime/pprof labels")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	spec := sim.MultiTenantSpec{Servers: (*tenants + 1) / 2, Seed: *seed}
	for i := 0; i < *tenants; i++ {
		spec.Tenants = append(spec.Tenants, sim.TenantSpec{
			ID:       fmt.Sprintf("tenant-%04d", i),
			Workload: profileWorkload(i),
			Trace:    profileTrace(i, *intervals, *seed),
			GoalMs:   100,
		})
	}

	opts := []sim.Option{sim.WithParallelism(*workers)}
	if *reference {
		opts = append(opts, sim.WithClusterReference())
	}
	if *labels {
		opts = append(opts, sim.WithPhaseLabels())
	}
	runner := sim.NewRunner(opts...)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	res, err := runner.RunMultiTenant(context.Background(), spec)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		f.Close()
	}

	mode := "optimized"
	if *reference {
		mode = "reference"
	}
	// Guard the rate against a sub-resolution elapsed (tiny runs on a
	// coarse clock): report 0 rather than +Inf/NaN.
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(*tenants**intervals) / s
	}
	fmt.Printf("cluster %s: %d tenants x %d intervals, %d workers: %s (%.0f tenant-intervals/s)\n",
		mode, *tenants, *intervals, *workers, elapsed.Round(time.Millisecond), rate)
	fmt.Printf("  migrations %d, refusals %d, peak cluster CPU %.2f\n",
		res.Migrations, res.Refusals, res.PeakClusterCPUFrac)
}

// profileWorkload cycles the three standard workloads across the fleet.
func profileWorkload(i int) *workload.Workload {
	switch i % 3 {
	case 1:
		return workload.TPCC()
	case 2:
		return workload.CPUIO(workload.DefaultCPUIOConfig())
	default:
		return workload.DS2()
	}
}

// profileTrace cycles the four standard load shapes, seeded per tenant.
func profileTrace(i, minutes int, seed int64) *trace.Trace {
	s := seed + int64(i)
	switch i % 4 {
	case 1:
		return trace.Trace2(minutes, s)
	case 2:
		return trace.Trace3(minutes, s)
	case 3:
		return trace.Trace4(minutes, s)
	default:
		return trace.Trace1(minutes, s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daas-profile:", err)
	os.Exit(1)
}
