// Command daas-loadgen drives concurrent tenant telemetry streams
// against a running daas-server and reports the sustained ingest
// throughput as JSON on stdout. The CI smoke test uses it to exercise
// the real daemon binary end to end.
//
// The generator honors the server's refusal contract: a 429 or 503 is
// retried after the reply's Retry-After, up to -max-retries per batch.
// The run's result records, per tenant, the highest acknowledged NextSeq
// — the ground truth the crash-restart harness checks ledgers against:
// an acknowledged decision must never be lost, no matter how the daemon
// was killed. -ack-out writes that map to a file; -verify-ledgers replays
// a ledger directory and asserts the crash-consistency invariants
// (contiguity, bill lockstep, nothing acked lost) after the run.
//
// Usage:
//
//	daas-loadgen [-url http://127.0.0.1:8080] [-tenants N] [-snapshots M]
//	             [-batch B] [-concurrency C] [-min-rate R] [-max-retries N]
//	             [-ack-out FILE] [-verify-ledgers DIR]
//
// Exits non-zero on transport failure, any request still failed after
// its retry budget, a sustained rate below -min-rate (0 disables the
// gate), or a ledger verification failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"os/signal"

	"daasscale/internal/fsio"
	"daasscale/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-loadgen: ")
	url := flag.String("url", "http://127.0.0.1:8080", "daas-server base URL")
	tenants := flag.Int("tenants", 100, "concurrent tenant streams")
	snapshots := flag.Int("snapshots", 200, "snapshots per tenant")
	batch := flag.Int("batch", 50, "snapshots per request")
	concurrency := flag.Int("concurrency", 0, "streams in flight at once (0 = tenants, capped at 512)")
	minRate := flag.Float64("min-rate", 0, "fail unless sustained snapshots/sec meets this floor (0 = no gate)")
	maxRetries := flag.Int("max-retries", serve.DefaultMaxRetries, "retry budget per batch for 429/503 refusals (<0 disables retrying)")
	ackOut := flag.String("ack-out", "", "write the per-tenant acknowledged-NextSeq map to this file (JSON)")
	verifyLedgers := flag.String("verify-ledgers", "", "after the run, replay this ledger directory and assert the crash-consistency invariants against the acks")
	flag.Parse()

	// Verify-only mode (-tenants 0): no load, just replay the ledger
	// directory and check it against a previously written ack file. The
	// crash-restart harness uses this after a kill -9: the interrupted
	// load run exits non-zero, but its -ack-out file survives, and the
	// restarted daemon's ledgers must still cover every ack in it.
	if *tenants == 0 && *verifyLedgers != "" {
		acked := map[string]int{}
		if *ackOut != "" {
			buf, rerr := os.ReadFile(*ackOut)
			if rerr != nil {
				log.Fatal(rerr)
			}
			if jerr := json.Unmarshal(buf, &acked); jerr != nil {
				log.Fatalf("ack file %s: %v", *ackOut, jerr)
			}
		}
		checks, verr := serve.VerifyLedgers(fsio.OS, *verifyLedgers, acked)
		if verr != nil {
			log.Fatalf("ledger verification: %v", verr)
		}
		log.Printf("verified %d tenant ledgers against %d recorded acks", len(checks), len(acked))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := serve.RunLoad(ctx, serve.LoadSpec{
		BaseURL:     *url,
		Tenants:     *tenants,
		Snapshots:   *snapshots,
		Batch:       *batch,
		Concurrency: *concurrency,
		MaxRetries:  *maxRetries,
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
	if *ackOut != "" {
		buf, merr := json.Marshal(res.Acked)
		if merr != nil {
			log.Fatal(merr)
		}
		if werr := fsio.WriteFileAtomic(*ackOut, buf, 0o644); werr != nil {
			log.Fatal(werr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if res.Errors > 0 {
		log.Fatalf("%d requests still failed after the retry budget", res.Errors)
	}
	// A re-driven stream (after a crash restart) completes through
	// duplicates: already-decided intervals are acknowledged, not
	// re-accepted. Either way every snapshot must have landed.
	if res.Accepted+res.Duplicates < res.Snapshots {
		log.Fatalf("landed %d of %d snapshots (%d new, %d duplicate)",
			res.Accepted+res.Duplicates, res.Snapshots, res.Accepted, res.Duplicates)
	}
	if *minRate > 0 && res.SnapshotsPerSec < *minRate {
		log.Fatalf("sustained %.0f snapshots/sec, floor is %.0f", res.SnapshotsPerSec, *minRate)
	}
	if *verifyLedgers != "" {
		checks, verr := serve.VerifyLedgers(fsio.OS, *verifyLedgers, res.Acked)
		if verr != nil {
			log.Fatalf("ledger verification: %v", verr)
		}
		log.Printf("verified %d tenant ledgers: contiguous decisions, bill in lockstep, nothing acked lost", len(checks))
	}
}
