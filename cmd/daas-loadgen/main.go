// Command daas-loadgen drives concurrent tenant telemetry streams
// against a running daas-server and reports the sustained ingest
// throughput as JSON on stdout. The CI smoke test uses it to exercise
// the real daemon binary end to end.
//
// Usage:
//
//	daas-loadgen [-url http://127.0.0.1:8080] [-tenants N] [-snapshots M]
//	             [-batch B] [-concurrency C] [-min-rate R]
//
// Exits non-zero on transport failure, any rejected request, or a
// sustained rate below -min-rate (0 disables the gate).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"os/signal"

	"daasscale/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-loadgen: ")
	url := flag.String("url", "http://127.0.0.1:8080", "daas-server base URL")
	tenants := flag.Int("tenants", 100, "concurrent tenant streams")
	snapshots := flag.Int("snapshots", 200, "snapshots per tenant")
	batch := flag.Int("batch", 50, "snapshots per request")
	concurrency := flag.Int("concurrency", 0, "streams in flight at once (0 = tenants, capped at 512)")
	minRate := flag.Float64("min-rate", 0, "fail unless sustained snapshots/sec meets this floor (0 = no gate)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := serve.RunLoad(ctx, serve.LoadSpec{
		BaseURL:     *url,
		Tenants:     *tenants,
		Snapshots:   *snapshots,
		Batch:       *batch,
		Concurrency: *concurrency,
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
	if err != nil {
		log.Fatal(err)
	}
	if res.Errors > 0 {
		log.Fatalf("%d requests rejected", res.Errors)
	}
	if res.Accepted != res.Snapshots {
		log.Fatalf("accepted %d of %d snapshots", res.Accepted, res.Snapshots)
	}
	if *minRate > 0 && res.SnapshotsPerSec < *minRate {
		log.Fatalf("sustained %.0f snapshots/sec, floor is %.0f", res.SnapshotsPerSec, *minRate)
	}
}
