// Command daas-fleet runs the service-wide telemetry analyses: the
// container-change study of Figure 2 (inter-event intervals and change
// frequency across a synthetic tenant fleet), the wait-vs-utilization
// relationship of Figure 4, the wait-distribution separation of Figure 6,
// and the threshold calibration of Section 4.1.
//
// Both studies run on the streaming pipeline: tenants are generated,
// analyzed and discarded shard by shard, so -tenants scales to hundreds of
// thousands with memory bounded by -shard-size, and -checkpoint lets a long
// run be killed and resumed bit-identically.
//
// Usage:
//
//	daas-fleet [-tenants N] [-days D] [-configs C] [-seed S] [-workers W]
//	           [-shard-size K] [-checkpoint FILE] [-progress]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"daasscale/internal/estimator"
	"daasscale/internal/fleet"
	"daasscale/internal/report"
	"daasscale/internal/resource"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-fleet: ")
	tenants := flag.Int("tenants", 2000, "number of synthetic tenants (streamed; scales to 100k+)")
	days := flag.Int("days", 7, "days of 5-minute telemetry per tenant")
	configs := flag.Int("configs", 300, "engine configurations for wait sampling")
	seed := flag.Int64("seed", 42, "seed")
	workers := flag.Int("workers", 0, "worker-pool width for per-shard work (0 = all cores); never changes results")
	shardSize := flag.Int("shard-size", fleet.DefaultShardSize, "tenants per shard; bounds peak memory")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for the fleet study; a matching checkpoint resumes the run")
	progress := flag.Bool("progress", false, "print live throughput metrics to stderr while shards process")
	saveThresholds := flag.String("save-thresholds", "", "write the calibrated thresholds to this JSON file")
	compareThresholds := flag.String("compare-thresholds", "", "load active thresholds from this JSON file and print a drift report")
	flag.Parse()

	// Ctrl-C cancels the fleet fan-out instead of killing mid-write; with
	// -checkpoint, the next invocation resumes where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts []fleet.FleetOption
	opts = append(opts, fleet.WithParallelism(*workers), fleet.WithShardSize(*shardSize))
	var prog *report.Progress
	if *progress {
		prog = report.NewProgress(os.Stderr, "shards", 10*time.Microsecond)
		opts = append(opts, fleet.WithProgress(prog.Hook()))
	}
	// finishProgress terminates the in-place progress line before a report
	// section prints, so tables never land on top of a stale \r line.
	finishProgress := func() {
		if prog != nil {
			prog.Finish()
		}
	}
	fleetOpts := opts
	if *checkpoint != "" {
		fleetOpts = append(fleetOpts, fleet.WithCheckpoint(*checkpoint))
	}

	fmt.Println("=== Figure 2: container-size change events across the fleet ===")
	// The change study uses the lock-step catalog, as the original
	// slice-based pipeline did.
	fleetOpts = append(fleetOpts, fleet.WithCatalog(resource.LockStepCatalog()))
	spec, err := fleet.NewFleetSpec(*tenants, *days, *seed, fleetOpts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fleet.Stream(ctx, spec, nil)
	finishProgress()
	if err != nil {
		log.Fatal(err)
	}
	if res.ResumedShards > 0 {
		fmt.Printf("(resumed from checkpoint: %d of %d shards skipped)\n", res.ResumedShards, res.Shards)
	}
	report.FleetSummary(os.Stdout, res.Analysis)
	report.CDFTable(os.Stdout, "IEI CDF (minutes):", res.Analysis.IEICDF, []float64{5, 15, 30, 60, 120, 360, 720, 1440})

	fmt.Println("\n=== Figures 4 and 6: wait statistics vs utilization ===")
	calSpec, err := fleet.NewCalibrationSpec(*configs, 4, *seed, opts...)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := fleet.StreamCalibration(ctx, calSpec, nil)
	finishProgress()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range cal.Digests {
		rho, err := d.Correlation()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s wait–utilization Spearman ρ = %.2f (increasing but weak, Figure 4)\n", d.Kind(), rho)
		report.WaitDigestTable(os.Stdout, d)
	}

	fmt.Println("\n=== Section 4.1: calibrated thresholds ===")
	th := cal.Thresholds
	fmt.Printf("utilization LOW < %.0f%%, HIGH ≥ %.0f%%\n", th.UtilLow*100, th.UtilHigh*100)
	for _, d := range cal.Digests {
		fmt.Printf("%-7s waits: LOW < %8.0f ms/interval, HIGH ≥ %8.0f ms/interval\n",
			d.Kind(), th.WaitLowMs[d.Kind()], th.WaitHighMs[d.Kind()])
	}

	if *saveThresholds != "" {
		f, err := os.Create(*saveThresholds)
		if err != nil {
			log.Fatal(err)
		}
		if err := th.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncalibration written to %s\n", *saveThresholds)
	}
	if *compareThresholds != "" {
		f, err := os.Open(*compareThresholds)
		if err != nil {
			log.Fatal(err)
		}
		active, err := estimator.ReadThresholdsJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\n=== Section 4.1: threshold re-tuning report ===")
		fleet.WriteDriftReport(os.Stdout, fleet.ThresholdDrift(active, th), 0.25)
	}
}
