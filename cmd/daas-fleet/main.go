// Command daas-fleet runs the service-wide telemetry analyses: the
// container-change study of Figure 2 (inter-event intervals and change
// frequency across a synthetic tenant fleet), the wait-vs-utilization
// relationship of Figure 4, the wait-distribution separation of Figure 6,
// and the threshold calibration of Section 4.1.
//
// Usage:
//
//	daas-fleet [-tenants N] [-days D] [-configs C] [-seed S] [-workers W] [-progress]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"daasscale/internal/estimator"
	"daasscale/internal/exec"
	"daasscale/internal/fleet"
	"daasscale/internal/report"
	"daasscale/internal/resource"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-fleet: ")
	tenants := flag.Int("tenants", 2000, "number of synthetic tenants")
	days := flag.Int("days", 7, "days of 5-minute telemetry per tenant")
	configs := flag.Int("configs", 300, "engine configurations for wait sampling")
	seed := flag.Int64("seed", 42, "seed")
	workers := flag.Int("workers", 0, "worker-pool width for per-tenant work (0 = all cores); never changes results")
	progress := flag.Bool("progress", false, "print live throughput metrics to stderr while tenants process")
	saveThresholds := flag.String("save-thresholds", "", "write the calibrated thresholds to this JSON file")
	compareThresholds := flag.String("compare-thresholds", "", "load active thresholds from this JSON file and print a drift report")
	flag.Parse()

	// Ctrl-C cancels the fleet fan-out instead of killing mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := exec.Options{Workers: *workers}
	if *progress {
		opts.OnProgress = progressPrinter()
	}

	cat := resource.LockStepCatalog()

	fmt.Println("=== Figure 2: container-size change events across the fleet ===")
	f, err := fleet.GenerateFleetContext(ctx, *tenants, *days, *seed, opts)
	if err != nil {
		log.Fatal(err)
	}
	a, err := fleet.AnalyzeContext(ctx, f, cat, opts)
	if err != nil {
		log.Fatal(err)
	}
	report.FleetSummary(os.Stdout, a)
	report.CDFTable(os.Stdout, "IEI CDF (minutes):", a.IEICDF, []float64{5, 15, 30, 60, 120, 360, 720, 1440})

	fmt.Println("\n=== Figures 4 and 6: wait statistics vs utilization ===")
	samples, err := fleet.CollectWaitSamples(*configs, 4, *seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO} {
		rho, err := fleet.Correlation(samples, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s wait–utilization Spearman ρ = %.2f (increasing but weak, Figure 4)\n", k, rho)
		report.WaitDistributionTable(os.Stdout, fleet.SplitByUtilization(samples, k))
	}

	fmt.Println("\n=== Section 4.1: calibrated thresholds ===")
	th := fleet.Calibrate(samples)
	fmt.Printf("utilization LOW < %.0f%%, HIGH ≥ %.0f%%\n", th.UtilLow*100, th.UtilHigh*100)
	for _, k := range resource.Kinds {
		fmt.Printf("%-7s waits: LOW < %8.0f ms/interval, HIGH ≥ %8.0f ms/interval\n",
			k, th.WaitLowMs[k], th.WaitHighMs[k])
	}

	if *saveThresholds != "" {
		f, err := os.Create(*saveThresholds)
		if err != nil {
			log.Fatal(err)
		}
		if err := th.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncalibration written to %s\n", *saveThresholds)
	}
	if *compareThresholds != "" {
		f, err := os.Open(*compareThresholds)
		if err != nil {
			log.Fatal(err)
		}
		active, err := estimator.ReadThresholdsJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\n=== Section 4.1: threshold re-tuning report ===")
		fleet.WriteDriftReport(os.Stdout, fleet.ThresholdDrift(active, th), 0.25)
	}
}

// progressPrinter renders executor metrics on stderr. The hook may fire
// concurrently from several workers; a single \r-terminated line per call
// keeps the output readable without locking.
func progressPrinter() func(exec.Progress) {
	return func(p exec.Progress) {
		fmt.Fprintf(os.Stderr, "\r%d/%d tenants  %.0f/s  p50 %s  p95 %s  util %.0f%%   ",
			p.Done, p.Total, p.TasksPerSec,
			p.P50.Round(10*time.Microsecond), p.P95.Round(10*time.Microsecond),
			p.WorkerUtilization*100)
	}
}
