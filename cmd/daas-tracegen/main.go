// Command daas-tracegen emits the four production-derived load traces of
// the paper's Figure 8 as CSV files (minute, requests/sec), plus an ASCII
// rendering of each shape.
//
// Usage:
//
//	daas-tracegen [-seed N] [-dir DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"daasscale/internal/report"
	"daasscale/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-tracegen: ")
	seed := flag.Int64("seed", 42, "generator seed")
	dir := flag.String("dir", ".", "output directory for trace CSV files")
	flag.Parse()

	for _, tr := range trace.Standard(*seed) {
		path := filepath.Join(*dir, tr.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			log.Fatalf("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing %s: %v", path, err)
		}
		title := fmt.Sprintf("%s — %d minutes, mean %.0f rps, peak %.0f rps → %s",
			tr.Name, tr.Len(), tr.Mean(), tr.Peak(), path)
		report.ASCIIChart(os.Stdout, title, tr.RPS, 72, 10)
		fmt.Println()
	}
}
