// Command daas-sim runs a single auto-scaling experiment: one workload ×
// trace pair evaluated under all six policies (Max, Peak, Avg, Trace, Util,
// Auto), printing the paper-style comparison table and, optionally, the
// drill-down series of one policy as CSV.
//
// Usage:
//
//	daas-sim [-workload tpcc|ds2|cpuio] [-trace trace1..trace4]
//	         [-goal-factor F] [-seed S] [-sensitivity low|medium|high]
//	         [-budget B -budget-intervals N] [-workers W]
//	         [-faults RATE -fault-seed S]
//	         [-actuation-latency N -actuation-jitter N -actuation-fail R
//	          -actuation-throttle R -actuation-burst-start N
//	          -actuation-burst-len N -actuation-deadline N -actuation-seed S]
//	         [-csv POLICY -out FILE]
//	         [-cluster N -cluster-servers M -cluster-goal-ms G
//	          -contention -rebalance-every K -rebalance-pack]
//
// With -faults R > 0 every policy's telemetry channel runs in chaos mode: a
// deterministic fault plan injects dropped, duplicated, reordered and
// corrupted snapshots at total rate R (spread uniformly over the fault
// kinds). The engine and the billing stay truthful — only what the policies
// observe is perturbed — and the run is reproducible: the same seed and
// fault seed give bit-identical results at any worker count.
//
// The -actuation-* flags put the resize channel itself under chaos: every
// container change a policy decides becomes an asynchronous operation that
// takes -actuation-latency billing intervals (plus a deterministic jitter
// of up to -actuation-jitter) to execute, can be throttled or fail
// transiently, retries with capped exponential backoff under a
// per-operation deadline, and is reconciled desired-vs-actual — a stale
// in-flight resize is superseded when the policy changes its mind. Like the
// telemetry faults, actuation chaos is seed-deterministic and never touches
// the offline Max run that derives the latency goal.
//
// With -cluster N > 0 the command switches to the paper's Figure 3
// deployment instead: N auto-scaled tenants (a TPC-C/DS2/CPUIO mix over the
// four standard traces) share -cluster-servers database servers through the
// management fabric, and the per-tenant and per-node outcomes are printed.
// -contention turns on the noisy-neighbor interference model (overcommitted
// shared channels inflate co-residents' waits), -rebalance-every K runs the
// goal-preserving placement optimizer every K intervals, and
// -rebalance-pack additionally consolidates tenants onto fewer nodes when
// no goal is violated. The -faults and -actuation-* flags apply to the
// cluster run too.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"daasscale/internal/actuate"
	"daasscale/internal/budget"
	"daasscale/internal/estimator"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/fleet"
	"daasscale/internal/report"
	"daasscale/internal/resource"
	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-sim: ")
	workloadName := flag.String("workload", "cpuio", "workload: tpcc, ds2 or cpuio")
	traceName := flag.String("trace", "trace2", "trace: trace1..trace4")
	goalFactor := flag.Float64("goal-factor", 1.25, "latency goal as a multiple of the Max-container p95")
	seed := flag.Int64("seed", 42, "seed")
	sensitivity := flag.String("sensitivity", "medium", "performance sensitivity: low, medium or high")
	budgetTotal := flag.Float64("budget", 0, "optional budget for Auto over the budgeting period (0 = unlimited)")
	budgetIntervals := flag.Int("budget-intervals", 0, "budgeting period in billing intervals (defaults to the trace length)")
	workers := flag.Int("workers", 0, "worker-pool width for the policy fan-out (0 = all cores); never changes results")
	faultRate := flag.Float64("faults", 0, "total telemetry fault rate in [0,1] (0 = clean run)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-plan seed (varies fault timing independently of -seed)")
	actLatency := flag.Int("actuation-latency", 0, "billing intervals a resize takes to execute (0 with no other actuation flag = synchronous)")
	actJitter := flag.Int("actuation-jitter", 0, "extra per-operation latency jitter in [0,N] intervals")
	actFail := flag.Float64("actuation-fail", 0, "per-attempt transient failure probability in [0,1]")
	actThrottle := flag.Float64("actuation-throttle", 0, "per-attempt fabric throttle probability in [0,1]")
	actBurstStart := flag.Int("actuation-burst-start", 0, "first interval of a 100% throttle storm (with -actuation-burst-len)")
	actBurstLen := flag.Int("actuation-burst-len", 0, "length of the throttle storm in intervals (0 = none)")
	actDeadline := flag.Int("actuation-deadline", 0, "per-operation deadline in intervals (0 = none)")
	actSeed := flag.Int64("actuation-seed", 1, "actuation-chaos seed (varies actuation faults independently of -seed)")
	calibrate := flag.Bool("calibrate", false, "calibrate estimator thresholds from a fleet sample first")
	explain := flag.Bool("explain", false, "print the per-interval decision-audit trail (rule explanations, fault and actuation events)")
	explainPolicy := flag.String("explain-policy", "Auto", "policy whose audit trail -explain prints")
	explainRows := flag.Int("explain-rows", 40, "maximum audit lines -explain prints")
	csvPolicy := flag.String("csv", "", "export this policy's per-interval series as CSV")
	outPath := flag.String("out", "", "CSV output file (default stdout)")
	clusterTenants := flag.Int("cluster", 0, "run a multi-tenant cluster with this many tenants instead of the policy comparison (0 = off)")
	clusterServers := flag.Int("cluster-servers", 0, "cluster size in servers (0 = one largest container per two tenants)")
	clusterGoalMs := flag.Float64("cluster-goal-ms", 100, "per-tenant p95 latency goal in the cluster run (ms)")
	contention := flag.Bool("contention", false, "enable the noisy-neighbor interference model on the cluster fabric")
	rebalanceEvery := flag.Int("rebalance-every", 0, "run the goal-preserving placement optimizer every N intervals (0 = never)")
	rebalancePack := flag.Bool("rebalance-pack", false, "also consolidate tenants onto fewer nodes when no goal is violated")
	flag.Parse()

	w, err := workload.ByName(*workloadName)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ByName(*traceName, *seed)
	if err != nil {
		log.Fatal(err)
	}
	var sens estimator.Sensitivity
	switch *sensitivity {
	case "low":
		sens = estimator.SensitivityLow
	case "medium":
		sens = estimator.SensitivityMedium
	case "high":
		sens = estimator.SensitivityHigh
	default:
		log.Fatalf("unknown sensitivity %q", *sensitivity)
	}

	var faultPlan faults.Plan
	if *faultRate > 0 {
		faultPlan = faults.Uniform(*faultRate)
		faultPlan.Seed = *faultSeed
	}
	actCfg := actuate.Config{
		Seed:              *actSeed,
		LatencyIntervals:  *actLatency,
		JitterIntervals:   *actJitter,
		FailRate:          *actFail,
		ThrottleRate:      *actThrottle,
		BurstStart:        *actBurstStart,
		BurstLen:          *actBurstLen,
		DeadlineIntervals: *actDeadline,
	}
	if !actCfg.Enabled() {
		actCfg = actuate.Config{}
	}

	if *clusterTenants > 0 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		runCluster(ctx, clusterConfig{
			tenants:        *clusterTenants,
			servers:        *clusterServers,
			goalMs:         *clusterGoalMs,
			seed:           *seed,
			workers:        *workers,
			contention:     *contention,
			rebalanceEvery: *rebalanceEvery,
			rebalancePack:  *rebalancePack,
			faults:         faultPlan,
			actuation:      actCfg,
		})
		return
	}
	if *contention || *rebalanceEvery > 0 || *rebalancePack {
		log.Fatal("-contention and -rebalance-* need a cluster run: set -cluster N")
	}

	cs := sim.ComparisonSpec{
		Workload:    w,
		Trace:       tr,
		GoalFactor:  *goalFactor,
		Seed:        *seed,
		Sensitivity: sens,
		Audit:       *explain,
	}
	cs.Faults = faultPlan
	cs.Actuation = actCfg
	if *budgetTotal > 0 {
		n := *budgetIntervals
		if n == 0 {
			n = tr.Len()
		}
		cat := resource.LockStepCatalog()
		bud, err := budget.New(budget.Aggressive, *budgetTotal, n, cat.Smallest().Cost, cat.Largest().Cost, 0)
		if err != nil {
			log.Fatal(err)
		}
		cs.AutoBudget = bud
	}
	if *calibrate {
		calSpec, err := fleet.NewCalibrationSpec(200, 4, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cal, err := fleet.StreamCalibration(context.Background(), calSpec, nil)
		if err != nil {
			log.Fatal(err)
		}
		cs.Thresholds = cal.Thresholds
		fmt.Fprintln(os.Stderr, "note: Auto uses fleet-calibrated thresholds")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	comp, err := sim.NewRunner(sim.WithParallelism(*workers)).RunComparison(ctx, cs)
	if err != nil {
		log.Fatal(err)
	}
	title := fmt.Sprintf("%s × %s, goal %.2f × Max p95", w.Name, tr.Name, *goalFactor)
	report.ComparisonTable(os.Stdout, title, comp)
	if cs.Faults.Enabled() {
		fmt.Printf("\ntelemetry chaos (rate %.0f%%, fault seed %d; Max stays clean for goal derivation):\n",
			*faultRate*100, *faultSeed)
		for _, r := range comp.Results {
			if r.FaultStats.Total() > 0 {
				fmt.Printf("  %-6s %s\n", r.Policy, r.FaultStats)
			}
		}
	}
	if cs.Actuation.Enabled() {
		fmt.Printf("\nresize actuation (seed %d; the offline Max run stays synchronous):\n", *actSeed)
		for _, r := range comp.Results {
			if r.ActuationStats.Ops > 0 {
				fmt.Printf("  %-6s %s\n", r.Policy, r.ActuationStats)
			}
		}
	}

	if *explain {
		r, ok := comp.ByPolicy(*explainPolicy)
		if !ok {
			log.Fatalf("no result for policy %q", *explainPolicy)
		}
		fmt.Println()
		report.ExplainTable(os.Stdout, fmt.Sprintf("%s on %s × %s", r.Policy, r.Workload, r.Trace), r.Audit, *explainRows)
	}

	if *csvPolicy != "" {
		r, ok := comp.ByPolicy(*csvPolicy)
		if !ok {
			log.Fatalf("no result for policy %q", *csvPolicy)
		}
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := report.SeriesCSV(out, r.Series); err != nil {
			log.Fatal(err)
		}
	}
}

// clusterConfig gathers the -cluster* knobs of a multi-tenant run.
type clusterConfig struct {
	tenants        int
	servers        int
	goalMs         float64
	seed           int64
	workers        int
	contention     bool
	rebalanceEvery int
	rebalancePack  bool
	faults         faults.Plan
	actuation      actuate.Config
}

// runCluster executes the Figure 3 deployment: cfg.tenants auto-scaled
// tenants (a workload/trace mix) sharing cfg.servers servers through the
// management fabric, optionally under the noisy-neighbor interference model
// and the goal-preserving placement optimizer.
func runCluster(ctx context.Context, cfg clusterConfig) {
	spec := sim.MultiTenantSpec{
		Servers:        cfg.servers,
		Seed:           cfg.seed,
		Faults:         cfg.faults,
		Actuation:      cfg.actuation,
		RebalanceEvery: cfg.rebalanceEvery,
		RebalancePack:  cfg.rebalancePack,
	}
	if cfg.contention {
		spec.Contention = fabric.Contention{Enable: true}
	}
	mix := []*workload.Workload{workload.TPCC(), workload.DS2(), workload.CPUIO(workload.DefaultCPUIOConfig())}
	traceNames := []string{"trace1", "trace2", "trace3", "trace4"}
	for i := 0; i < cfg.tenants; i++ {
		tr, err := trace.ByName(traceNames[i%len(traceNames)], cfg.seed+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		spec.Tenants = append(spec.Tenants, sim.TenantSpec{
			ID:       fmt.Sprintf("t%02d", i),
			Workload: mix[i%len(mix)],
			Trace:    tr,
			GoalMs:   cfg.goalMs,
		})
	}

	res, err := sim.NewRunner(sim.WithParallelism(cfg.workers)).RunMultiTenant(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}

	title := fmt.Sprintf("%d tenants on %d server(s), goal p95 ≤ %.0f ms", cfg.tenants, len(res.Nodes), cfg.goalMs)
	switch {
	case cfg.contention && cfg.rebalanceEvery > 0:
		title += fmt.Sprintf(", contention on, rebalance every %d", cfg.rebalanceEvery)
	case cfg.contention:
		title += ", contention on"
	}
	fmt.Printf("cluster: %s\n", title)
	fmt.Printf("%-5s  %10s  %14s  %8s  %8s  %6s  %6s  %6s\n",
		"id", "p95 (ms)", "cost/interval", "changes", "refused", "migr", "rebal", "meets")
	for _, t := range res.Tenants {
		meets := "yes"
		if cfg.goalMs > 0 && t.P95Ms > cfg.goalMs {
			meets = "NO"
		}
		fmt.Printf("%-5s  %10.1f  %14.2f  %8d  %8d  %6d  %6d  %6s\n",
			t.ID, t.P95Ms, t.AvgCostPerInterval, t.Changes, t.RefusedResizes,
			t.Migrations, t.RebalanceMigrations, meets)
	}
	fmt.Println()
	report.NodeTable(os.Stdout, title, res)
}
