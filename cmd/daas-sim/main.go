// Command daas-sim runs a single auto-scaling experiment: one workload ×
// trace pair evaluated under all six policies (Max, Peak, Avg, Trace, Util,
// Auto), printing the paper-style comparison table and, optionally, the
// drill-down series of one policy as CSV.
//
// Usage:
//
//	daas-sim [-workload tpcc|ds2|cpuio] [-trace trace1..trace4]
//	         [-goal-factor F] [-seed S] [-sensitivity low|medium|high]
//	         [-budget B -budget-intervals N] [-workers W]
//	         [-faults RATE -fault-seed S]
//	         [-actuation-latency N -actuation-jitter N -actuation-fail R
//	          -actuation-throttle R -actuation-burst-start N
//	          -actuation-burst-len N -actuation-deadline N -actuation-seed S]
//	         [-csv POLICY -out FILE]
//
// With -faults R > 0 every policy's telemetry channel runs in chaos mode: a
// deterministic fault plan injects dropped, duplicated, reordered and
// corrupted snapshots at total rate R (spread uniformly over the fault
// kinds). The engine and the billing stay truthful — only what the policies
// observe is perturbed — and the run is reproducible: the same seed and
// fault seed give bit-identical results at any worker count.
//
// The -actuation-* flags put the resize channel itself under chaos: every
// container change a policy decides becomes an asynchronous operation that
// takes -actuation-latency billing intervals (plus a deterministic jitter
// of up to -actuation-jitter) to execute, can be throttled or fail
// transiently, retries with capped exponential backoff under a
// per-operation deadline, and is reconciled desired-vs-actual — a stale
// in-flight resize is superseded when the policy changes its mind. Like the
// telemetry faults, actuation chaos is seed-deterministic and never touches
// the offline Max run that derives the latency goal.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"daasscale/internal/actuate"
	"daasscale/internal/budget"
	"daasscale/internal/estimator"
	"daasscale/internal/faults"
	"daasscale/internal/fleet"
	"daasscale/internal/report"
	"daasscale/internal/resource"
	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daas-sim: ")
	workloadName := flag.String("workload", "cpuio", "workload: tpcc, ds2 or cpuio")
	traceName := flag.String("trace", "trace2", "trace: trace1..trace4")
	goalFactor := flag.Float64("goal-factor", 1.25, "latency goal as a multiple of the Max-container p95")
	seed := flag.Int64("seed", 42, "seed")
	sensitivity := flag.String("sensitivity", "medium", "performance sensitivity: low, medium or high")
	budgetTotal := flag.Float64("budget", 0, "optional budget for Auto over the budgeting period (0 = unlimited)")
	budgetIntervals := flag.Int("budget-intervals", 0, "budgeting period in billing intervals (defaults to the trace length)")
	workers := flag.Int("workers", 0, "worker-pool width for the policy fan-out (0 = all cores); never changes results")
	faultRate := flag.Float64("faults", 0, "total telemetry fault rate in [0,1] (0 = clean run)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-plan seed (varies fault timing independently of -seed)")
	actLatency := flag.Int("actuation-latency", 0, "billing intervals a resize takes to execute (0 with no other actuation flag = synchronous)")
	actJitter := flag.Int("actuation-jitter", 0, "extra per-operation latency jitter in [0,N] intervals")
	actFail := flag.Float64("actuation-fail", 0, "per-attempt transient failure probability in [0,1]")
	actThrottle := flag.Float64("actuation-throttle", 0, "per-attempt fabric throttle probability in [0,1]")
	actBurstStart := flag.Int("actuation-burst-start", 0, "first interval of a 100% throttle storm (with -actuation-burst-len)")
	actBurstLen := flag.Int("actuation-burst-len", 0, "length of the throttle storm in intervals (0 = none)")
	actDeadline := flag.Int("actuation-deadline", 0, "per-operation deadline in intervals (0 = none)")
	actSeed := flag.Int64("actuation-seed", 1, "actuation-chaos seed (varies actuation faults independently of -seed)")
	calibrate := flag.Bool("calibrate", false, "calibrate estimator thresholds from a fleet sample first")
	explain := flag.Bool("explain", false, "print the per-interval decision-audit trail (rule explanations, fault and actuation events)")
	explainPolicy := flag.String("explain-policy", "Auto", "policy whose audit trail -explain prints")
	explainRows := flag.Int("explain-rows", 40, "maximum audit lines -explain prints")
	csvPolicy := flag.String("csv", "", "export this policy's per-interval series as CSV")
	outPath := flag.String("out", "", "CSV output file (default stdout)")
	flag.Parse()

	w, err := workload.ByName(*workloadName)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ByName(*traceName, *seed)
	if err != nil {
		log.Fatal(err)
	}
	var sens estimator.Sensitivity
	switch *sensitivity {
	case "low":
		sens = estimator.SensitivityLow
	case "medium":
		sens = estimator.SensitivityMedium
	case "high":
		sens = estimator.SensitivityHigh
	default:
		log.Fatalf("unknown sensitivity %q", *sensitivity)
	}

	cs := sim.ComparisonSpec{
		Workload:    w,
		Trace:       tr,
		GoalFactor:  *goalFactor,
		Seed:        *seed,
		Sensitivity: sens,
		Audit:       *explain,
	}
	if *faultRate > 0 {
		plan := faults.Uniform(*faultRate)
		plan.Seed = *faultSeed
		cs.Faults = plan
	}
	cs.Actuation = actuate.Config{
		Seed:              *actSeed,
		LatencyIntervals:  *actLatency,
		JitterIntervals:   *actJitter,
		FailRate:          *actFail,
		ThrottleRate:      *actThrottle,
		BurstStart:        *actBurstStart,
		BurstLen:          *actBurstLen,
		DeadlineIntervals: *actDeadline,
	}
	if !cs.Actuation.Enabled() {
		cs.Actuation = actuate.Config{}
	}
	if *budgetTotal > 0 {
		n := *budgetIntervals
		if n == 0 {
			n = tr.Len()
		}
		cat := resource.LockStepCatalog()
		bud, err := budget.New(budget.Aggressive, *budgetTotal, n, cat.Smallest().Cost, cat.Largest().Cost, 0)
		if err != nil {
			log.Fatal(err)
		}
		cs.AutoBudget = bud
	}
	if *calibrate {
		calSpec, err := fleet.NewCalibrationSpec(200, 4, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cal, err := fleet.StreamCalibration(context.Background(), calSpec, nil)
		if err != nil {
			log.Fatal(err)
		}
		cs.Thresholds = cal.Thresholds
		fmt.Fprintln(os.Stderr, "note: Auto uses fleet-calibrated thresholds")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	comp, err := sim.NewRunner(sim.WithParallelism(*workers)).RunComparison(ctx, cs)
	if err != nil {
		log.Fatal(err)
	}
	title := fmt.Sprintf("%s × %s, goal %.2f × Max p95", w.Name, tr.Name, *goalFactor)
	report.ComparisonTable(os.Stdout, title, comp)
	if cs.Faults.Enabled() {
		fmt.Printf("\ntelemetry chaos (rate %.0f%%, fault seed %d; Max stays clean for goal derivation):\n",
			*faultRate*100, *faultSeed)
		for _, r := range comp.Results {
			if r.FaultStats.Total() > 0 {
				fmt.Printf("  %-6s %s\n", r.Policy, r.FaultStats)
			}
		}
	}
	if cs.Actuation.Enabled() {
		fmt.Printf("\nresize actuation (seed %d; the offline Max run stays synchronous):\n", *actSeed)
		for _, r := range comp.Results {
			if r.ActuationStats.Ops > 0 {
				fmt.Printf("  %-6s %s\n", r.Policy, r.ActuationStats)
			}
		}
	}

	if *explain {
		r, ok := comp.ByPolicy(*explainPolicy)
		if !ok {
			log.Fatalf("no result for policy %q", *explainPolicy)
		}
		fmt.Println()
		report.ExplainTable(os.Stdout, fmt.Sprintf("%s on %s × %s", r.Policy, r.Workload, r.Trace), r.Audit, *explainRows)
	}

	if *csvPolicy != "" {
		r, ok := comp.ByPolicy(*csvPolicy)
		if !ok {
			log.Fatalf("no result for policy %q", *csvPolicy)
		}
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := report.SeriesCSV(out, r.Series); err != nil {
			log.Fatal(err)
		}
	}
}
