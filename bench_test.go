// Package daasscale_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md's experiment
// index). Each benchmark runs the corresponding experiment, prints the same
// rows/series the paper reports (once), and exposes the headline numbers as
// benchmark metrics so regressions in the reproduced shapes are visible in
// benchmark diffs.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package daasscale_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"daasscale/internal/budget"
	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/estimator"
	"daasscale/internal/exec"
	"daasscale/internal/fleet"
	"daasscale/internal/learned"
	"daasscale/internal/policy"
	"daasscale/internal/report"
	"daasscale/internal/resource"
	"daasscale/internal/sim"
	"daasscale/internal/stats"
	"daasscale/internal/telemetry"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

const benchSeed = 42

var (
	printMu sync.Mutex
	printed = map[string]bool{}
)

// printOnce renders a table exactly once per process, no matter how many
// times the benchmark harness re-enters the function.
func printOnce(key string, f func()) {
	printMu.Lock()
	defer printMu.Unlock()
	if printed[key] {
		return
	}
	printed[key] = true
	f()
}

// benchRecords collects the headline numbers of the telemetry hot-path
// benchmarks; TestMain writes them to the file named by the BENCH_JSON
// environment variable (the `make bench` target sets BENCH_telemetry.json).
var (
	benchRecMu   sync.Mutex
	benchRecords = map[string]map[string]float64{}
)

func recordBench(name string, metrics map[string]float64) {
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	benchRecords[name] = metrics
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && code == 0 {
		if err := writeBenchJSON(path); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeBenchJSON(path string) error {
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	if len(benchRecords) == 0 {
		return nil // no telemetry benchmarks ran; leave any existing file alone
	}
	out := struct {
		Note       string                        `json:"note"`
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	}{
		Note:       "headline benchmark numbers; regenerate with `make bench` (telemetry), `make bench-fleet` (fleet scale-out), `make bench-cluster` (cluster hot path) or `make bench-fabric` (packing quality)",
		Benchmarks: benchRecords,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// comparisonCache avoids recomputing identical six-policy comparisons when
// the harness calibrates b.N.
var (
	compMu    sync.Mutex
	compCache = map[string]sim.Comparison{}
)

func cachedComparison(b *testing.B, key string, cs sim.ComparisonSpec) sim.Comparison {
	b.Helper()
	compMu.Lock()
	defer compMu.Unlock()
	if c, ok := compCache[key]; ok {
		return c
	}
	c, err := sim.RunComparison(cs)
	if err != nil {
		b.Fatal(err)
	}
	compCache[key] = c
	return c
}

// reportComparison prints the paper-style table and reports the headline
// metrics.
func reportComparison(b *testing.B, title string, comp sim.Comparison) {
	b.Helper()
	printOnce(title, func() {
		fmt.Println()
		report.ComparisonTable(os.Stdout, title, comp)
	})
	auto := comp.MustByPolicy("Auto")
	util := comp.MustByPolicy("Util")
	peak := comp.MustByPolicy("Peak")
	b.ReportMetric(auto.AvgCostPerInterval, "auto-cost/interval")
	b.ReportMetric(util.AvgCostPerInterval/auto.AvgCostPerInterval, "util/auto-x")
	b.ReportMetric(peak.AvgCostPerInterval/auto.AvgCostPerInterval, "peak/auto-x")
	b.ReportMetric(auto.P95Ms/comp.GoalMs, "auto-p95/goal")
}

// ---------------------------------------------------------------------------
// Figure 2: resource demand analysis in production (fleet change events).
// ---------------------------------------------------------------------------

func BenchmarkFigure2a_IEICDF(b *testing.B) {
	cat := resource.LockStepCatalog()
	for i := 0; i < b.N; i++ {
		f := fleet.GenerateFleet(500, 7, benchSeed)
		a := fleet.Analyze(f, cat)
		printOnce("fig2a", func() {
			fmt.Println()
			report.CDFTable(os.Stdout, "Figure 2(a): CDF of inter-event interval (minutes)",
				a.IEICDF, []float64{5, 15, 30, 60, 120, 360, 720, 1440})
		})
		b.ReportMetric(a.IEIWithin60Min*100, "iei<=60min-%")
	}
}

func BenchmarkFigure2b_ChangeFrequency(b *testing.B) {
	cat := resource.LockStepCatalog()
	for i := 0; i < b.N; i++ {
		f := fleet.GenerateFleet(500, 7, benchSeed)
		a := fleet.Analyze(f, cat)
		printOnce("fig2b", func() {
			fmt.Println()
			report.FleetSummary(os.Stdout, a)
		})
		b.ReportMetric(a.FracAtLeastOnePerDay*100, ">=1change/day-%")
		b.ReportMetric(a.FracAtLeastSixPerDay*100, ">=6changes/day-%")
		b.ReportMetric(a.FracMoreThan24PerDay*100, ">24changes/day-%")
	}
}

// ---------------------------------------------------------------------------
// Figure 4: wait magnitude vs utilization (weak positive correlation).
// ---------------------------------------------------------------------------

func BenchmarkFigure4_WaitVsUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samples, err := fleet.CollectWaitSamples(150, 4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		cpuRho, err := fleet.Correlation(samples, resource.CPU)
		if err != nil {
			b.Fatal(err)
		}
		ioRho, err := fleet.Correlation(samples, resource.DiskIO)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig4", func() {
			fmt.Printf("\nFigure 4: wait–utilization Spearman ρ — cpu %.2f, diskio %.2f (increasing but weak)\n", cpuRho, ioRho)
		})
		b.ReportMetric(cpuRho, "cpu-rho")
		b.ReportMetric(ioRho, "diskio-rho")
	}
}

// ---------------------------------------------------------------------------
// Figure 6: wait distributions at low vs high utilization + calibration.
// ---------------------------------------------------------------------------

func BenchmarkFigure6_WaitDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samples, err := fleet.CollectWaitSamples(150, 4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		cpu := fleet.SplitByUtilization(samples, resource.CPU)
		io := fleet.SplitByUtilization(samples, resource.DiskIO)
		th := fleet.Calibrate(samples)
		printOnce("fig6", func() {
			fmt.Println()
			report.WaitDistributionTable(os.Stdout, cpu)
			report.WaitDistributionTable(os.Stdout, io)
			fmt.Printf("calibrated: cpu LOW<%.0f HIGH>=%.0f, diskio LOW<%.0f HIGH>=%.0f ms/interval\n",
				th.WaitLowMs[resource.CPU], th.WaitHighMs[resource.CPU],
				th.WaitLowMs[resource.DiskIO], th.WaitHighMs[resource.DiskIO])
		})
		b.ReportMetric(cpu.Separation(), "cpu-separation-x")
		b.ReportMetric(io.Separation(), "diskio-separation-x")
	}
}

// ---------------------------------------------------------------------------
// Figure 8: the four load traces.
// ---------------------------------------------------------------------------

func BenchmarkFigure8_Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces := trace.Standard(benchSeed)
		printOnce("fig8", func() {
			fmt.Println()
			for _, tr := range traces {
				report.ASCIIChart(os.Stdout,
					fmt.Sprintf("Figure 8 %s (mean %.0f rps, peak %.0f rps)", tr.Name, tr.Mean(), tr.Peak()),
					tr.RPS, 72, 8)
			}
		})
		var total int
		for _, tr := range traces {
			total += tr.Len()
		}
		b.ReportMetric(float64(total), "trace-minutes")
	}
}

// ---------------------------------------------------------------------------
// Figures 9–12: the end-to-end policy comparisons.
// ---------------------------------------------------------------------------

func BenchmarkFigure9a_CPUIO_Trace2_TightGoal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := cachedComparison(b, "9a", sim.ComparisonSpec{
			Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
			Trace:      trace.Trace2(900, benchSeed),
			GoalFactor: 1.25,
			Seed:       benchSeed,
		})
		reportComparison(b, "Figure 9(a): CPUIO × Trace 2, goal 1.25×Max", comp)
	}
}

func BenchmarkFigure9b_CPUIO_Trace2_LooseGoal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := cachedComparison(b, "9b", sim.ComparisonSpec{
			Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
			Trace:      trace.Trace2(900, benchSeed),
			GoalFactor: 5,
			Seed:       benchSeed,
		})
		reportComparison(b, "Figure 9(b): CPUIO × Trace 2, goal 5×Max", comp)
	}
}

func BenchmarkFigure10_TPCC_Trace4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := cachedComparison(b, "10", sim.ComparisonSpec{
			Workload:   workload.TPCC(),
			Trace:      trace.Trace4(1440, benchSeed),
			GoalFactor: 1.25,
			Seed:       benchSeed,
		})
		reportComparison(b, "Figure 10: TPC-C × Trace 4, goal 1.25×Max", comp)
	}
}

func BenchmarkFigure11_CPUIO_Trace3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := cachedComparison(b, "11", sim.ComparisonSpec{
			Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
			Trace:      trace.Trace3(700, benchSeed),
			GoalFactor: 5,
			Seed:       benchSeed,
		})
		reportComparison(b, "Figure 11: CPUIO × Trace 3, goal 5×Max", comp)
	}
}

func BenchmarkFigure12_DS2_Trace1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := cachedComparison(b, "12", sim.ComparisonSpec{
			Workload:   workload.DS2(),
			Trace:      trace.Trace1(1440, benchSeed),
			GoalFactor: 1.25,
			Seed:       benchSeed,
		})
		reportComparison(b, "Figure 12: DS2 × Trace 1, goal 1.25×Max", comp)
	}
}

// ---------------------------------------------------------------------------
// Figure 13: the Util-vs-Auto drill-down on the lock-bound workload.
// ---------------------------------------------------------------------------

func BenchmarkFigure13_Drilldown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := cachedComparison(b, "10", sim.ComparisonSpec{
			Workload:   workload.TPCC(),
			Trace:      trace.Trace4(1440, benchSeed),
			GoalFactor: 1.25,
			Seed:       benchSeed,
		})
		util := comp.MustByPolicy("Util")
		auto := comp.MustByPolicy("Auto")
		printOnce("fig13", func() {
			fmt.Println()
			for _, r := range []sim.Result{util, auto} {
				frac := make([]float64, len(r.Series))
				for j, pt := range r.Series {
					frac[j] = pt.ContainerCPUFrac * 100
				}
				report.ASCIIChart(os.Stdout,
					fmt.Sprintf("Figure 13: %s container max CPU as %% of server", r.Policy), frac, 72, 7)
				report.WaitMixTable(os.Stdout, r)
			}
		})
		// Headline metrics: Util's peak container vs Auto's, and the lock
		// share of waits.
		peakFrac := func(r sim.Result) float64 {
			m := 0.0
			for _, pt := range r.Series {
				if pt.ContainerCPUFrac > m {
					m = pt.ContainerCPUFrac
				}
			}
			return m * 100
		}
		b.ReportMetric(peakFrac(util), "util-peak-cpu-%")
		b.ReportMetric(peakFrac(auto), "auto-peak-cpu-%")
		lock := make([]float64, len(auto.Series))
		for j, pt := range auto.Series {
			lock[j] = pt.WaitPct[telemetry.WaitLock]
		}
		b.ReportMetric(stats.Quantile(lock, 0.9)*100, "lock-wait-share-p90-%")
	}
}

// ---------------------------------------------------------------------------
// Figure 14: ballooning and low memory demand.
// ---------------------------------------------------------------------------

func BenchmarkFigure14_Ballooning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunBallooningExperiment(sim.BallooningSpec{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig14", func() {
			fmt.Println()
			for _, arm := range []sim.BallooningArm{res.Without, res.With} {
				mem := make([]float64, len(arm.Series))
				lat := make([]float64, len(arm.Series))
				for j, pt := range arm.Series {
					mem[j] = pt.MemoryUsedMB
					lat[j] = pt.AvgMs
				}
				report.ASCIIChart(os.Stdout, "Figure 14: "+arm.Name+" memory used (MB)", mem, 72, 6)
				report.ASCIIChart(os.Stdout, "Figure 14: "+arm.Name+" average latency (ms)", lat, 72, 6)
			}
		})
		b.ReportMetric(res.Without.PeakAvgMs()/res.Without.BaselineAvgMs(), "naive-latency-damage-x")
		b.ReportMetric(res.With.PeakAvgMs()/res.With.BaselineAvgMs(), "probe-latency-damage-x")
		b.ReportMetric(res.With.MinMemoryMB(), "probe-min-memory-mb")
	}
}

// ---------------------------------------------------------------------------
// Section 4: resize step-size statistics.
// ---------------------------------------------------------------------------

func BenchmarkSection4_StepSizes(b *testing.B) {
	cat := resource.LockStepCatalog()
	for i := 0; i < b.N; i++ {
		f := fleet.GenerateFleet(500, 7, benchSeed)
		a := fleet.Analyze(f, cat)
		printOnce("sec4", func() {
			fmt.Printf("\nSection 4: 1-step resizes %.1f%% (paper ≈90%%), ≤2-step %.1f%% (paper ≈98%%)\n",
				a.OneStepShare*100, a.AtMostTwoStepsShare*100)
		})
		b.ReportMetric(a.OneStepShare*100, "1-step-%")
		b.ReportMetric(a.AtMostTwoStepsShare*100, "<=2-step-%")
	}
}

// ---------------------------------------------------------------------------
// Ablation A1: Theil–Sen vs least squares under outlier injection.
// ---------------------------------------------------------------------------

func BenchmarkAblationTrendRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		const trials = 300
		correctTS, correctLS := 0, 0
		for t := 0; t < trials; t++ {
			// A genuine upward trend with noise and one massive outlier.
			n := 12
			xs := make([]float64, n)
			ys := make([]float64, n)
			slope := 1 + rng.Float64()*4
			for j := 0; j < n; j++ {
				xs[j] = float64(j)
				ys[j] = slope*float64(j) + rng.NormFloat64()*2
			}
			ys[rng.Intn(n)] += -1e5 // telemetry spike
			if tr, err := stats.TheilSen(xs, ys, stats.DefaultTrendAlpha); err == nil && tr.Significant && tr.Slope > 0 {
				correctTS++
			}
			if tr, err := stats.LeastSquares(xs, ys, 0.5); err == nil && tr.Significant && tr.Slope > 0 {
				correctLS++
			}
		}
		tsAcc := float64(correctTS) / trials * 100
		lsAcc := float64(correctLS) / trials * 100
		printOnce("a1", func() {
			fmt.Printf("\nAblation A1: trend detection with one outlier per window — Theil–Sen %.0f%%, least squares %.0f%%\n", tsAcc, lsAcc)
		})
		b.ReportMetric(tsAcc, "theilsen-correct-%")
		b.ReportMetric(lsAcc, "leastsquares-correct-%")
	}
}

// ---------------------------------------------------------------------------
// Ablation A2: median vs mean aggregation under telemetry noise.
// ---------------------------------------------------------------------------

func BenchmarkAblationRobustAggregates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		const trials = 300
		var medianErr, meanErr float64
		for t := 0; t < trials; t++ {
			truth := 40 + rng.Float64()*20
			xs := make([]float64, 10)
			for j := range xs {
				xs[j] = truth * (1 + 0.1*rng.NormFloat64())
			}
			xs[rng.Intn(len(xs))] *= 1000 // checkpoint spike
			medianErr += absFrac(stats.Median(xs), truth)
			meanErr += absFrac(stats.Mean(xs), truth)
		}
		medianErr = medianErr / trials * 100
		meanErr = meanErr / trials * 100
		printOnce("a2", func() {
			fmt.Printf("\nAblation A2: aggregate error with one spike per window — median %.1f%%, mean %.0f%%\n", medianErr, meanErr)
		})
		b.ReportMetric(medianErr, "median-err-%")
		b.ReportMetric(meanErr, "mean-err-%")
	}
}

func absFrac(got, want float64) float64 {
	d := (got - want) / want
	if d < 0 {
		d = -d
	}
	return d
}

// ---------------------------------------------------------------------------
// Ablation A3: multi-signal rules vs single-signal demand estimation.
// ---------------------------------------------------------------------------

func BenchmarkAblationSignalCombination(b *testing.B) {
	type scenario struct {
		name     string
		build    func(rng *rand.Rand) telemetry.Signals
		wantUp   bool // should the estimator add CPU resources?
		wantDown bool
	}
	mk := func(util, waits, pct float64) telemetry.Signals {
		var s telemetry.Signals
		s.Resources[resource.CPU].Utilization = util
		s.Resources[resource.CPU].WaitMs = waits
		s.Resources[resource.CPU].WaitPct = pct
		s.Resources[resource.CPU].PrevWaitMs = waits
		s.Resources[resource.CPU].PrevUtilization = util
		s.Current.Utilization[resource.CPU] = util
		s.Current.WaitMs[telemetry.WaitCPU] = waits
		if pct > 0 && pct < 1 {
			s.Current.WaitMs[telemetry.WaitLock] = waits/pct - waits
		}
		s.Latency.P95Ms = 100
		return s
	}
	scenarios := []scenario{
		{"saturated", func(r *rand.Rand) telemetry.Signals {
			return mk(0.85+0.1*r.Float64(), 300_000+r.Float64()*200_000, 0.7)
		}, true, false},
		{"busy-but-fine", func(r *rand.Rand) telemetry.Signals {
			return mk(0.75+0.15*r.Float64(), r.Float64()*4_000, 0.05)
		}, false, false},
		{"lock-bound", func(r *rand.Rand) telemetry.Signals {
			return mk(0.15+0.1*r.Float64(), 150_000+r.Float64()*100_000, 0.05)
		}, false, false},
		{"idle", func(r *rand.Rand) telemetry.Signals {
			return mk(0.05*r.Float64(), r.Float64()*1_000, 0.02)
		}, false, true},
	}
	est, err := estimator.New(estimator.DefaultThresholds(), estimator.SensitivityMedium)
	if err != nil {
		b.Fatal(err)
	}
	th := estimator.DefaultThresholds()
	utilOnly := func(s telemetry.Signals) int {
		u := s.Resources[resource.CPU].Utilization
		switch {
		case u >= th.UtilHigh:
			return 1
		case u < th.UtilLow:
			return -1
		default:
			return 0
		}
	}
	waitsOnly := func(s telemetry.Signals) int {
		w := s.Resources[resource.CPU].WaitMs
		switch {
		case w >= th.WaitHighMs[resource.CPU]:
			return 1
		case w < th.WaitLowMs[resource.CPU]:
			return -1
		default:
			return 0
		}
	}
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed))
		const trials = 200
		var okCombined, okUtil, okWaits int
		total := 0
		for t := 0; t < trials; t++ {
			for _, sc := range scenarios {
				total++
				sig := sc.build(rng)
				check := func(step int) bool {
					if sc.wantUp {
						return step > 0
					}
					if sc.wantDown {
						return step < 0
					}
					return step == 0
				}
				if check(est.Estimate(sig).Steps[resource.CPU]) {
					okCombined++
				}
				if check(utilOnly(sig)) {
					okUtil++
				}
				if check(waitsOnly(sig)) {
					okWaits++
				}
			}
		}
		accC := float64(okCombined) / float64(total) * 100
		accU := float64(okUtil) / float64(total) * 100
		accW := float64(okWaits) / float64(total) * 100
		printOnce("a3", func() {
			fmt.Printf("\nAblation A3: demand-estimation accuracy — combined rules %.0f%%, utilization-only %.0f%%, waits-only %.0f%%\n", accC, accU, accW)
		})
		b.ReportMetric(accC, "combined-acc-%")
		b.ReportMetric(accU, "util-only-acc-%")
		b.ReportMetric(accW, "waits-only-acc-%")
	}
}

// ---------------------------------------------------------------------------
// Ablation A4: aggressive vs conservative token-bucket initialization.
// ---------------------------------------------------------------------------

func BenchmarkAblationBudgetStrategy(b *testing.B) {
	// A bursty trace under a hard budget: the aggressive bucket may burn
	// its surplus on the early bursts; the conservative bucket saves for
	// later. Both must keep the hard cap.
	for i := 0; i < b.N; i++ {
		cat := resource.LockStepCatalog()
		tr := trace.Trace4(720, benchSeed)
		const total = 720 * 11.0
		results := map[budget.Strategy]float64{}
		for _, strat := range []budget.Strategy{budget.Aggressive, budget.Conservative} {
			bud, err := budget.New(strat, total, tr.Len(), cat.Smallest().Cost, cat.Largest().Cost, 3)
			if err != nil {
				b.Fatal(err)
			}
			scaler, err := core.New(core.Config{
				Catalog: cat,
				Initial: cat.Smallest(),
				Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: 150},
				Budget:  bud,
			})
			if err != nil {
				b.Fatal(err)
			}
			r, err := sim.Run(sim.Spec{
				Workload:   workload.TPCC(),
				Trace:      tr,
				Policy:     policy.NewAuto(scaler),
				Seed:       benchSeed,
				EngineOpts: engine.Options{WarmStart: true},
				GoalMs:     150,
			})
			if err != nil {
				b.Fatal(err)
			}
			if bud.Spent() > total+1e-6 {
				b.Fatalf("%v exceeded the budget: %v > %v", strat, bud.Spent(), total)
			}
			results[strat] = r.P95Ms
		}
		printOnce("a4", func() {
			fmt.Printf("\nAblation A4: p95 under a hard budget — aggressive %.0f ms, conservative %.0f ms (both ≤ budget)\n",
				results[budget.Aggressive], results[budget.Conservative])
		})
		b.ReportMetric(results[budget.Aggressive], "aggressive-p95-ms")
		b.ReportMetric(results[budget.Conservative], "conservative-p95-ms")
	}
}

// ---------------------------------------------------------------------------
// Ablation A5: the performance-sensitivity knob.
// ---------------------------------------------------------------------------

func BenchmarkAblationSensitivityKnob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := trace.Trace2(450, benchSeed)
		type res struct{ cost, p95 float64 }
		out := map[estimator.Sensitivity]res{}
		for _, sens := range []estimator.Sensitivity{estimator.SensitivityLow, estimator.SensitivityMedium, estimator.SensitivityHigh} {
			comp := cachedComparison(b, fmt.Sprintf("a5-%v", sens), sim.ComparisonSpec{
				Workload:    workload.CPUIO(workload.DefaultCPUIOConfig()),
				Trace:       tr,
				GoalFactor:  1.5,
				Seed:        benchSeed,
				Sensitivity: sens,
			})
			auto := comp.MustByPolicy("Auto")
			out[sens] = res{auto.AvgCostPerInterval, auto.P95Ms}
		}
		printOnce("a5", func() {
			fmt.Printf("\nAblation A5: sensitivity knob — LOW cost %.1f p95 %.0f; MEDIUM cost %.1f p95 %.0f; HIGH cost %.1f p95 %.0f\n",
				out[estimator.SensitivityLow].cost, out[estimator.SensitivityLow].p95,
				out[estimator.SensitivityMedium].cost, out[estimator.SensitivityMedium].p95,
				out[estimator.SensitivityHigh].cost, out[estimator.SensitivityHigh].p95)
		})
		b.ReportMetric(out[estimator.SensitivityLow].cost, "low-cost/interval")
		b.ReportMetric(out[estimator.SensitivityHigh].cost, "high-cost/interval")
	}
}

// ---------------------------------------------------------------------------
// Ablation A6: lock-step vs per-dimension container scaling (Figure 1).
// ---------------------------------------------------------------------------

func BenchmarkAblationDimensionalScaling(b *testing.B) {
	// A disk-I/O-bound workload: with per-dimension variants (high-I/O
	// containers), the demanded IOPS can be bought without paying for CPU
	// and memory the workload does not need.
	ioBound := workload.CPUIO(workload.CPUIOConfig{
		CPUWeight: 0.1, IOWeight: 2, LogWeight: 0.1,
		WorkingSetMB: 1024, HotspotFraction: 0.95,
	})
	for i := 0; i < b.N; i++ {
		tr := trace.Trace2(450, benchSeed)
		costs := map[string]float64{}
		for name, cat := range map[string]*resource.Catalog{
			"lock-step": resource.LockStepCatalog(),
			"per-dim":   resource.DefaultCatalog(),
		} {
			scaler, err := core.New(core.Config{
				Catalog: cat,
				Initial: cat.Smallest(),
			})
			if err != nil {
				b.Fatal(err)
			}
			r, err := sim.Run(sim.Spec{
				Workload:   ioBound,
				Trace:      tr,
				Policy:     policy.NewAuto(scaler),
				Seed:       benchSeed,
				EngineOpts: engine.Options{WarmStart: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			costs[name] = r.AvgCostPerInterval
		}
		printOnce("a6", func() {
			fmt.Printf("\nAblation A6: I/O-bound workload — lock-step cost %.1f/interval vs per-dimension %.1f/interval (%.0f%% saved)\n",
				costs["lock-step"], costs["per-dim"], (1-costs["per-dim"]/costs["lock-step"])*100)
		})
		b.ReportMetric(costs["lock-step"], "lockstep-cost/interval")
		b.ReportMetric(costs["per-dim"], "perdim-cost/interval")
	}
}

// ---------------------------------------------------------------------------
// Ablation A7: the statistical-learning estimator the paper rejected.
// ---------------------------------------------------------------------------

func BenchmarkAblationLearnedEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		train, err := learned.GenerateDataset("cpuio", 100, 4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		inDomain, err := learned.GenerateDataset("cpuio", 50, 4, benchSeed+50)
		if err != nil {
			b.Fatal(err)
		}
		crossDomain, err := learned.GenerateDataset("tpcc", 50, 4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		m, err := learned.Train(learned.Samples(train), learned.TrainConfig{})
		if err != nil {
			b.Fatal(err)
		}
		classify := func(s learned.Sample) bool { return m.Classify(s.X) }
		accIn := learned.BalancedAccuracy(learned.Samples(inDomain), classify)
		accCross := learned.BalancedAccuracy(learned.Samples(crossDomain), classify)

		est, err := estimator.New(estimator.DefaultThresholds(), estimator.SensitivityMedium)
		if err != nil {
			b.Fatal(err)
		}
		rulesAcc := func(obs []learned.Observation) float64 {
			preds := make([]bool, len(obs))
			for j, o := range obs {
				preds[j] = est.Estimate(telemetry.SteadySignals(o.Snapshot)).AnyHigh()
			}
			j := -1
			return learned.BalancedAccuracy(learned.Samples(obs), func(learned.Sample) bool { j++; return preds[j] })
		}
		rulesIn := rulesAcc(inDomain)
		rulesCross := rulesAcc(crossDomain)
		printOnce("a7", func() {
			fmt.Printf("\nAblation A7: \"will scaling help?\" balanced accuracy — learned in-domain %.2f → cross-domain %.2f (degrades); rules %.2f → %.2f (holds)\n",
				accIn, accCross, rulesIn, rulesCross)
		})
		b.ReportMetric(accIn, "learned-in-acc")
		b.ReportMetric(accCross, "learned-cross-acc")
		b.ReportMetric(rulesCross, "rules-cross-acc")
	}
}

// ---------------------------------------------------------------------------
// Extension: the budget experiment the paper omits "for brevity"
// (Section 7.2.2). Auto runs the bursty CPUIO experiment under a sweep of
// hard budgets, expressed as multiples of its unconstrained spend: the
// token bucket must keep every run within budget, trading latency for cost
// as the budget tightens.
// ---------------------------------------------------------------------------

func BenchmarkExtensionBudgetSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cat := resource.LockStepCatalog()
		tr := trace.Trace2(450, benchSeed)
		baseline := cachedComparison(b, "budget-base", sim.ComparisonSpec{
			Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
			Trace:      tr,
			GoalFactor: 1.25,
			Seed:       benchSeed,
		})
		goal := baseline.GoalMs
		unconstrained := baseline.MustByPolicy("Auto").TotalCost

		type row struct {
			mult       float64
			spend, p95 float64
		}
		var rows []row
		for _, mult := range []float64{1.2, 1.0, 0.8, 0.6} {
			total := unconstrained * mult
			if minTotal := float64(tr.Len()) * cat.Smallest().Cost; total < minTotal {
				total = minTotal
			}
			bud, err := budget.New(budget.Aggressive, total, tr.Len(), cat.Smallest().Cost, cat.Largest().Cost, 0)
			if err != nil {
				b.Fatal(err)
			}
			scaler, err := core.New(core.Config{
				Catalog: cat,
				Initial: cat.Smallest(),
				Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: goal},
				Budget:  bud,
			})
			if err != nil {
				b.Fatal(err)
			}
			r, err := sim.Run(sim.Spec{
				Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
				Trace:      tr,
				Policy:     policy.NewAuto(scaler),
				Seed:       benchSeed,
				EngineOpts: engine.Options{WarmStart: true},
				GoalMs:     goal,
			})
			if err != nil {
				b.Fatal(err)
			}
			if bud.Spent() > total+1e-6 {
				b.Fatalf("budget %.0f exceeded: spent %.2f", total, bud.Spent())
			}
			rows = append(rows, row{mult, r.TotalCost, r.P95Ms})
		}
		printOnce("budget-sweep", func() {
			fmt.Printf("\nExtension: budget sweep (goal %.0f ms, unconstrained Auto spend %.0f)\n", goal, unconstrained)
			fmt.Printf("  %-10s %12s %12s %8s\n", "budget", "spend", "p95 (ms)", "meets")
			for _, r := range rows {
				meets := "yes"
				if r.p95 > goal {
					meets = "NO"
				}
				fmt.Printf("  %9.1fx %12.0f %12.1f %8s\n", r.mult, r.spend, r.p95, meets)
			}
		})
		b.ReportMetric(rows[0].p95, "budget1.2x-p95-ms")
		b.ReportMetric(rows[len(rows)-1].p95, "budget0.6x-p95-ms")
	}
}

// ---------------------------------------------------------------------------
// Extension: scheduled (time-of-day) scaling vs demand-driven scaling.
// Cloud platforms offer clock-based schedules as their second
// application-agnostic knob; this experiment shows where the clock works (a
// perfectly diurnal tenant) and where it fails (bursts that ignore the
// schedule) — while demand-driven scaling handles both.
// ---------------------------------------------------------------------------

func BenchmarkExtensionScheduledVsAuto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cat := resource.LockStepCatalog()
		w := workload.DS2()
		runOne := func(tr *trace.Trace, p policy.Policy, goal float64) sim.Result {
			r, err := sim.Run(sim.Spec{
				Workload:   w,
				Trace:      tr,
				Policy:     p,
				Seed:       benchSeed,
				EngineOpts: engine.Options{WarmStart: true},
				GoalMs:     goal,
			})
			if err != nil {
				b.Fatal(err)
			}
			return r
		}
		mkSched := func() policy.Policy {
			// The schedule a reasonable admin would derive from the diurnal
			// history: big during business hours, small at night.
			p, err := policy.NewScheduled([]policy.ScheduleEntry{
				{StartMinute: 8 * 60, Container: cat.AtStep(5)},
				{StartMinute: 20 * 60, Container: cat.AtStep(2)}, // nights: still big enough for the hot set
			})
			if err != nil {
				b.Fatal(err)
			}
			return p
		}
		mkAuto := func(goal float64) policy.Policy {
			scaler, err := core.New(core.Config{
				Catalog: cat,
				Initial: cat.Smallest(),
				Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: goal},
			})
			if err != nil {
				b.Fatal(err)
			}
			return policy.NewAuto(scaler)
		}
		const goal = 60.0
		diurnal := trace.Diurnal(1440, benchSeed)
		spiky := trace.Trace4(1440, benchSeed)

		schedDiurnal := runOne(diurnal, mkSched(), goal)
		autoDiurnal := runOne(diurnal, mkAuto(goal), goal)
		schedSpiky := runOne(spiky, mkSched(), goal)
		autoSpiky := runOne(spiky, mkAuto(goal), goal)

		printOnce("sched-vs-auto", func() {
			fmt.Printf("\nExtension: scheduled vs demand-driven scaling (goal p95 ≤ %.0f ms)\n", goal)
			fmt.Printf("  %-22s %10s %12s %8s\n", "policy × trace", "p95 (ms)", "cost/interval", "meets")
			for _, r := range []struct {
				name string
				res  sim.Result
			}{
				{"Sched × diurnal", schedDiurnal},
				{"Auto  × diurnal", autoDiurnal},
				{"Sched × spiky", schedSpiky},
				{"Auto  × spiky", autoSpiky},
			} {
				meets := "yes"
				if r.res.P95Ms > goal {
					meets = "NO"
				}
				fmt.Printf("  %-22s %10.1f %12.1f %8s\n", r.name, r.res.P95Ms, r.res.AvgCostPerInterval, meets)
			}
		})
		b.ReportMetric(schedSpiky.P95Ms, "sched-spiky-p95-ms")
		b.ReportMetric(autoSpiky.P95Ms, "auto-spiky-p95-ms")
		b.ReportMetric(autoDiurnal.AvgCostPerInterval, "auto-diurnal-cost")
		b.ReportMetric(schedDiurnal.AvgCostPerInterval, "sched-diurnal-cost")
	}
}

// ---------------------------------------------------------------------------
// Extension: per-dimension container scaling on the standard experiments.
// Section 6 closes with "If the DaaS supports scaling containers in each
// resource dimension ... the auto-scaling logic can leverage that" (Figure
// 1). This experiment reruns the headline workloads with the full catalog
// (high-CPU / high-memory / high-I/O variants included) and reports Auto's
// savings over the lock-step ladder.
// ---------------------------------------------------------------------------

func BenchmarkExtensionPerDimensionCatalog(b *testing.B) {
	type exp struct {
		name string
		w    *workload.Workload
		tr   *trace.Trace
	}
	exps := []exp{
		{"cpuio×trace2", workload.CPUIO(workload.DefaultCPUIOConfig()), trace.Trace2(900, benchSeed)},
		{"tpcc×trace4", workload.TPCC(), trace.Trace4(1440, benchSeed)},
	}
	for i := 0; i < b.N; i++ {
		results := map[string][2]float64{} // name → [lockstep, perdim] Auto cost
		for _, e := range exps {
			var costs [2]float64
			for j, cat := range []*resource.Catalog{resource.LockStepCatalog(), resource.DefaultCatalog()} {
				comp := cachedComparison(b, fmt.Sprintf("perdim-%s-%d", e.name, j), sim.ComparisonSpec{
					Catalog:    cat,
					Workload:   e.w,
					Trace:      e.tr,
					GoalFactor: 1.25,
					Seed:       benchSeed,
				})
				auto := comp.MustByPolicy("Auto")
				if auto.P95Ms > comp.GoalMs*1.1 {
					b.Fatalf("%s catalog %d: Auto missed the goal (%v > %v)", e.name, j, auto.P95Ms, comp.GoalMs)
				}
				costs[j] = auto.AvgCostPerInterval
			}
			results[e.name] = costs
		}
		printOnce("perdim", func() {
			fmt.Println("\nExtension: per-dimension container scaling (Auto cost/interval, both meeting the goal)")
			for _, e := range exps {
				c := results[e.name]
				fmt.Printf("  %-14s lock-step %7.2f → per-dimension %7.2f (%.0f%% saved)\n",
					e.name, c[0], c[1], (1-c[1]/c[0])*100)
			}
		})
		c := results["cpuio×trace2"]
		b.ReportMetric(c[0], "cpuio-lockstep-cost")
		b.ReportMetric(c[1], "cpuio-perdim-cost")
	}
}

// ---------------------------------------------------------------------------
// The parallel fleet engine: a 1000-tenant fleet study and a multi-tenant
// cluster replay across worker counts. Parallelism must never change any
// result — the determinism is asserted up front, byte for byte — so the
// sub-benchmark deltas are pure wall-clock: near-linear speedup on
// multi-core hosts, a small coordination overhead on a single core.
// ---------------------------------------------------------------------------

func BenchmarkParallelFleet1kTenants(b *testing.B) {
	ctx := context.Background()
	cat := resource.LockStepCatalog()
	const tenants, days = 1000, 7

	serialFleet, err := fleet.GenerateFleetContext(ctx, tenants, days, benchSeed, exec.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	parFleet, err := fleet.GenerateFleetContext(ctx, tenants, days, benchSeed, exec.Options{Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(serialFleet, parFleet) {
		b.Fatal("parallel fleet generation is not bit-identical to serial")
	}
	serialA, err := fleet.AnalyzeContext(ctx, serialFleet, cat, exec.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	parA, err := fleet.AnalyzeContext(ctx, serialFleet, cat, exec.Options{Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(serialA, parA) {
		b.Fatal("parallel fleet analysis is not bit-identical to serial")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := exec.Options{Workers: workers}
			for i := 0; i < b.N; i++ {
				f, err := fleet.GenerateFleetContext(ctx, tenants, days, benchSeed, opts)
				if err != nil {
					b.Fatal(err)
				}
				a, err := fleet.AnalyzeContext(ctx, f, cat, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(a.TotalChanges), "changes")
			}
		})
	}
}

func BenchmarkParallelClusterReplay(b *testing.B) {
	ctx := context.Background()
	spec := sim.MultiTenantSpec{Servers: 8, Seed: benchSeed}
	for i := 0; i < 16; i++ {
		w := workload.DS2()
		switch i % 3 {
		case 1:
			w = workload.TPCC()
		case 2:
			w = workload.CPUIO(workload.DefaultCPUIOConfig())
		}
		spec.Tenants = append(spec.Tenants, sim.TenantSpec{
			ID:       fmt.Sprintf("tenant-%02d", i),
			Workload: w,
			Trace:    trace.Trace2(60, benchSeed+int64(i)),
			GoalMs:   100,
		})
	}

	serial, err := sim.NewRunner(sim.WithParallelism(1)).RunMultiTenant(ctx, spec)
	if err != nil {
		b.Fatal(err)
	}
	par, err := sim.NewRunner(sim.WithParallelism(8)).RunMultiTenant(ctx, spec)
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		b.Fatal("parallel cluster replay is not bit-identical to serial")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runner := sim.NewRunner(sim.WithParallelism(workers))
			for i := 0; i < b.N; i++ {
				res, err := runner.RunMultiTenant(ctx, spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Migrations+res.Refusals), "fabric-events")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// The zero-allocation telemetry pipeline: per-decision-point cost of the
// Manager hot path, the selection-based Theil–Sen kernel, and a 1000-tenant
// end-to-end fleet pass measured against the retained pre-optimization
// implementation (SignalsReference). Equivalence is asserted bit for bit
// before anything is timed, so every speedup below is a pure implementation
// delta. `make bench` records the headline numbers in BENCH_telemetry.json.
// ---------------------------------------------------------------------------

// benchSnapshot populates a telemetry snapshot with noisy but finite values,
// including frequent ties and idle (zero) wait classes, so the selection
// kernels see realistic duplicate-heavy columns.
func benchSnapshot(rng *rand.Rand, interval int) telemetry.Snapshot {
	var s telemetry.Snapshot
	s.Interval = interval
	s.Container = "C1"
	s.Step = 1
	s.Cost = 2
	for _, k := range resource.Kinds {
		s.Utilization[k] = float64(rng.Intn(20)) / 20
		s.UtilizationPeak[k] = s.Utilization[k]
	}
	for i := range s.WaitMs {
		if rng.Intn(3) == 0 {
			s.WaitMs[i] = 0
		} else {
			s.WaitMs[i] = rng.Float64() * 50_000
		}
	}
	s.AvgLatencyMs = 20 + rng.Float64()*100
	s.P95LatencyMs = s.AvgLatencyMs * (1.5 + rng.Float64())
	s.Transactions = rng.Float64() * 1e4
	s.OfferedRPS = rng.Float64() * 500
	s.MemoryUsedMB = rng.Float64() * 4096
	s.PhysicalReads = rng.Float64() * 1e5
	s.PhysicalWrites = rng.Float64() * 1e4
	return s
}

// warmManager returns a manager at the default window fed through one full
// wrap of the ring, with its scratch arenas warmed by a Signals call.
func warmManager(b *testing.B, snaps []telemetry.Snapshot) *telemetry.Manager {
	b.Helper()
	m := telemetry.NewManager(telemetry.DefaultWindow)
	for _, s := range snaps[:2*telemetry.DefaultWindow] {
		m.Observe(s)
	}
	if _, ok := m.Signals(); !ok {
		b.Fatal("no signals after warm-up")
	}
	return m
}

// BenchmarkSignalsWindow10 measures one decision point — Observe plus
// Signals at the default window of 10 — on the zero-allocation fast path
// and on the retained reference implementation.
func BenchmarkSignalsWindow10(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	snaps := make([]telemetry.Snapshot, 64)
	for i := range snaps {
		snaps[i] = benchSnapshot(rng, i)
	}

	b.Run("fast", func(b *testing.B) {
		m := warmManager(b, snaps)
		next := 2 * telemetry.DefaultWindow
		allocs := testing.AllocsPerRun(100, func() {
			m.Observe(snaps[next%len(snaps)])
			next++
			if _, ok := m.Signals(); !ok {
				b.Fatal("signals unavailable")
			}
		})
		if allocs != 0 && !raceEnabled {
			b.Fatalf("warm Observe+Signals allocated %v times per run, want 0", allocs)
		}
		b.ReportMetric(allocs, "allocs/decision")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Observe(snaps[i%len(snaps)])
			if _, ok := m.Signals(); !ok {
				b.Fatal("signals unavailable")
			}
		}
		recordBench("SignalsWindow10/fast", map[string]float64{
			"ns_per_op":     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			"allocs_per_op": allocs,
		})
	})

	b.Run("reference", func(b *testing.B) {
		m := warmManager(b, snaps)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Observe(snaps[i%len(snaps)])
			if _, ok := m.SignalsReference(); !ok {
				b.Fatal("signals unavailable")
			}
		}
		recordBench("SignalsWindow10/reference", map[string]float64{
			"ns_per_op": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
}

// BenchmarkTheilSen compares the allocating Theil–Sen entry point with the
// buffer-reusing kernel on a window-10 series (45 pairwise slopes).
func BenchmarkTheilSen(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	n := telemetry.DefaultWindow
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2.5*float64(i) + rng.NormFloat64()*3
	}

	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stats.TheilSenReference(xs, ys, stats.DefaultTrendAlpha); err != nil {
				b.Fatal(err)
			}
		}
		recordBench("TheilSen/reference", map[string]float64{
			"ns_per_op": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})

	b.Run("alloc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stats.TheilSen(xs, ys, stats.DefaultTrendAlpha); err != nil {
				b.Fatal(err)
			}
		}
		recordBench("TheilSen/alloc", map[string]float64{
			"ns_per_op": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})

	b.Run("buf", func(b *testing.B) {
		var buf []float64
		if _, err := stats.TheilSenBuf(xs, ys, stats.DefaultTrendAlpha, &buf); err != nil {
			b.Fatal(err) // warm the slope buffer
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := stats.TheilSenBuf(xs, ys, stats.DefaultTrendAlpha, &buf); err != nil {
				b.Fatal(err)
			}
		})
		if allocs != 0 && !raceEnabled {
			b.Fatalf("warm TheilSenBuf allocated %v times per run, want 0", allocs)
		}
		b.ReportMetric(allocs, "allocs/op")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stats.TheilSenBuf(xs, ys, stats.DefaultTrendAlpha, &buf); err != nil {
				b.Fatal(err)
			}
		}
		recordBench("TheilSen/buf", map[string]float64{
			"ns_per_op":     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			"allocs_per_op": allocs,
		})
	})
}

// BenchmarkTelemetry1kTenants is the end-to-end acceptance benchmark: 1000
// tenants, each running a full telemetry stream of 25 billing intervals
// (Observe + Signals every interval), against the same fleet pass on the
// retained pre-optimization path. Bit-identity of every tenant's every
// decision point is asserted before timing; the fast path must be at least
// 2× faster per pass.
func BenchmarkTelemetry1kTenants(b *testing.B) {
	const tenants = 1000
	const intervals = 25
	rng := rand.New(rand.NewSource(benchSeed))
	streams := make([][]telemetry.Snapshot, tenants)
	for i := range streams {
		stream := make([]telemetry.Snapshot, intervals)
		for j := range stream {
			stream[j] = benchSnapshot(rng, j)
		}
		streams[i] = stream
	}
	mgrs := make([]*telemetry.Manager, tenants)
	for i := range mgrs {
		mgrs[i] = telemetry.NewManager(telemetry.DefaultWindow)
	}

	// Bit-identity first: every tenant, every interval, fast path vs oracle.
	for i, stream := range streams {
		m := mgrs[i]
		m.Reset()
		for j, s := range stream {
			m.Observe(s)
			got, okGot := m.Signals()
			want, okWant := m.SignalsReference()
			if okGot != okWant {
				b.Fatalf("tenant %d interval %d: ok mismatch %v vs %v", i, j, okGot, okWant)
			}
			if okGot && !reflect.DeepEqual(got, want) {
				b.Fatalf("tenant %d interval %d: fast-path Signals diverged from reference", i, j)
			}
		}
	}

	// One fleet pass: every tenant replays its stream through its (reset but
	// arena-warm) manager; the sink folds a couple of signal fields so the
	// work cannot be optimized away. Because both paths produce bit-identical
	// Signals, the two sinks must be bitwise equal as well.
	pass := func(signals func(*telemetry.Manager) (telemetry.Signals, bool)) float64 {
		var sink float64
		for i, stream := range streams {
			m := mgrs[i]
			m.Reset()
			for _, s := range stream {
				m.Observe(s)
				if sig, ok := signals(m); ok {
					sink += sig.Latency.P95Ms + sig.OfferedRPS
				}
			}
		}
		return sink
	}
	optimized := func() float64 { return pass((*telemetry.Manager).Signals) }
	reference := func() float64 { return pass((*telemetry.Manager).SignalsReference) }

	bestOf := func(f func() float64, reps int) (float64, float64) {
		bestNs, sink := -1.0, 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			sink = f()
			if ns := float64(time.Since(start).Nanoseconds()); bestNs < 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs, sink
	}
	refNs, refSink := bestOf(reference, 3)
	optNs, optSink := bestOf(optimized, 3)
	if refSink != optSink {
		b.Fatalf("fleet pass sinks diverge: fast %v vs reference %v", optSink, refSink)
	}
	speedup := refNs / optNs
	if speedup < 2 && !raceEnabled {
		b.Fatalf("fast path is only %.2fx faster than the reference pass, want >= 2x", speedup)
	}
	printOnce("telemetry-1k", func() {
		fmt.Printf("\nTelemetry hot path: 1000-tenant fleet pass %.1f ms -> %.1f ms (%.1fx)\n",
			refNs/1e6, optNs/1e6, speedup)
	})
	b.ReportMetric(speedup, "speedup-x")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimized()
	}
	perPassNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perPassNs/(tenants*intervals), "ns/decision")
	recordBench("Telemetry1kTenants", map[string]float64{
		"tenants":              tenants,
		"intervals_per_tenant": intervals,
		"ns_per_pass_fast":     perPassNs,
		"ns_per_pass_ref":      refNs,
		"speedup_x":            speedup,
	})
}
