package daasscale_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"daasscale/internal/sim"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// clusterBenchSpec builds the 1k-tenant cluster the bench-cluster gate
// measures: the three standard workload families and four standard load
// shapes cycled across the fleet, tenant seeds derived from the cluster
// seed. Mirrors cmd/daas-profile's cluster.
func clusterBenchSpec(tenants, intervals int) sim.MultiTenantSpec {
	spec := sim.MultiTenantSpec{Servers: (tenants + 1) / 2, Seed: benchSeed}
	for i := 0; i < tenants; i++ {
		var w *workload.Workload
		switch i % 3 {
		case 1:
			w = workload.TPCC()
		case 2:
			w = workload.CPUIO(workload.DefaultCPUIOConfig())
		default:
			w = workload.DS2()
		}
		var tr *trace.Trace
		s := benchSeed + int64(i)
		switch i % 4 {
		case 1:
			tr = trace.Trace2(intervals, s)
		case 2:
			tr = trace.Trace3(intervals, s)
		case 3:
			tr = trace.Trace4(intervals, s)
		default:
			tr = trace.Trace1(intervals, s)
		}
		spec.Tenants = append(spec.Tenants, sim.TenantSpec{
			ID:       fmt.Sprintf("tenant-%04d", i),
			Workload: w,
			Trace:    tr,
			GoalMs:   100,
		})
	}
	return spec
}

// BenchmarkCluster1kTenants is the cluster hot-path gate: the optimized
// schedule (parallel ticks+decide over engine.TickBatch, serial apply)
// must beat the retained PR-6 reference schedule (per-call Tick, fully
// serial decide+apply) by >= 1.5x wall-clock on a 1000-tenant cluster at
// 8 workers — after first proving the two produce byte-identical results.
// `make bench-cluster` records the numbers in BENCH_cluster.json.
func BenchmarkCluster1kTenants(b *testing.B) {
	const tenants, intervals, workers = 1000, 12, 8
	ctx := context.Background()

	// Spec construction (workloads, traces) is test scaffolding, not the
	// measured hot path: build it before starting the clock, fresh per run
	// so neither arm warms state for the other.
	run := func(opts ...sim.Option) (float64, sim.MultiTenantResult) {
		spec := clusterBenchSpec(tenants, intervals)
		r := sim.NewRunner(opts...)
		start := time.Now()
		res, err := r.RunMultiTenant(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		return float64(time.Since(start).Nanoseconds()), res
	}
	reference := func() (float64, sim.MultiTenantResult) {
		return run(sim.WithParallelism(workers), sim.WithClusterReference())
	}
	optimized := func() (float64, sim.MultiTenantResult) {
		return run(sim.WithParallelism(workers))
	}

	bestOf := func(f func() (float64, sim.MultiTenantResult), reps int) (float64, sim.MultiTenantResult) {
		bestNs := -1.0
		var last sim.MultiTenantResult
		for r := 0; r < reps; r++ {
			// Both arms retire ~140MB of latency samples per run; collect
			// before the clock starts so one arm's garbage never inflates
			// the other's measurement.
			runtime.GC()
			ns, res := f()
			last = res
			if bestNs < 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs, last
	}

	// Correctness first: the optimized schedule must be bit-identical to
	// the reference before its speed means anything.
	refNs, refRes := bestOf(reference, 3)
	optNs, optRes := bestOf(optimized, 3)
	if !reflect.DeepEqual(refRes, optRes) {
		b.Fatalf("optimized cluster schedule diverged from the reference (migrations %d vs %d, refusals %d vs %d)",
			optRes.Migrations, refRes.Migrations, optRes.Refusals, refRes.Refusals)
	}

	// The 1.5x target assumes hardware parallelism for the decide phase:
	// fanning RunTicks+Decide across 8 workers only beats the reference's
	// serial decide when there are cores to run the fan-out. On fewer than
	// 4 CPUs the schedules serialize to the same order and the gate
	// enforces the core-independent floor instead — the batched tick
	// kernel, bulk sample collection and fabric allocation-cache wins,
	// which measure ~1.3-1.4x alone.
	speedup := refNs / optNs
	want := 1.5
	if runtime.GOMAXPROCS(0) < 4 {
		want = 1.2
	}
	if speedup < want && !raceEnabled {
		b.Fatalf("optimized cluster run is only %.2fx faster than the PR-6 reference, want >= %.2fx at %d CPUs",
			speedup, want, runtime.GOMAXPROCS(0))
	}
	tenantIntervalsPerSec := float64(tenants*intervals) / (optNs / 1e9)
	printOnce("cluster-1k", func() {
		fmt.Printf("\nCluster hot path: %d tenants x %d intervals @ %d workers: %.0f ms -> %.0f ms (%.2fx, %.0f tenant-intervals/s)\n",
			tenants, intervals, workers, refNs/1e6, optNs/1e6, speedup, tenantIntervalsPerSec)
	})
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(tenantIntervalsPerSec, "tenant-intervals/s")
	recordBench("Cluster1kTenants", map[string]float64{
		"tenants":                tenants,
		"intervals":              intervals,
		"workers":                workers,
		"reference_ms":           refNs / 1e6,
		"optimized_ms":           optNs / 1e6,
		"speedup_x":              speedup,
		"tenant_intervals_per_s": tenantIntervalsPerSec,
		"gomaxprocs":             float64(runtime.GOMAXPROCS(0)),
		"migrations":             float64(optRes.Migrations),
		"refusals":               float64(optRes.Refusals),
	})

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimized()
	}
}
