package daasscale_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"daasscale/internal/serve"
)

// serveIngestFloor is the sustained ingest-throughput gate for the
// serving daemon: real HTTP over loopback, concurrent tenant streams,
// decisions written through to fsync'd per-tenant ledgers (one fsync per
// request). The race detector's overhead exempts the gate, matching the
// other benchmark floors.
const serveIngestFloor = 10_000 // snapshots/sec

// BenchmarkServeIngest measures the daemon end to end: JSON decode,
// idempotency/reorder pipeline, policy decision, ledger append, fsync.
func BenchmarkServeIngest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := serve.New(serve.Config{
			LedgerDir: b.TempDir(),
			Seed:      benchSeed,
			SyncEvery: -1, // one fsync per ingest request
		})
		if err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		b.StartTimer()

		res, err := serve.RunLoad(context.Background(), serve.LoadSpec{
			BaseURL:   hs.URL,
			Tenants:   200,
			Snapshots: 100,
			Batch:     50,
		})
		b.StopTimer()
		hs.Close()
		if cerr := srv.Close(); cerr != nil {
			b.Fatal(cerr)
		}
		if err != nil {
			b.Fatal(err)
		}
		if res.Errors != 0 || res.Accepted != res.Snapshots {
			b.Fatalf("load result %+v", res)
		}
		b.ReportMetric(res.SnapshotsPerSec, "snapshots/s")
		b.ReportMetric(res.RequestsPerSec, "req/s")
		if res.SnapshotsPerSec < serveIngestFloor && !raceEnabled {
			b.Fatalf("sustained %.0f snapshots/sec, gate is %d", res.SnapshotsPerSec, serveIngestFloor)
		}
		recordBench("ServeIngest", map[string]float64{
			"tenants":           float64(res.Tenants),
			"snapshots":         float64(res.Snapshots),
			"batch":             50,
			"snapshots_per_sec": res.SnapshotsPerSec,
			"requests_per_sec":  res.RequestsPerSec,
			"duration_seconds":  res.DurationSeconds,
		})
		b.StartTimer()
	}
}
