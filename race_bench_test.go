//go:build race

package daasscale_test

// raceEnabled relaxes allocation and speedup assertions: the race detector's
// instrumentation allocates and slows the code under test.
const raceEnabled = true
