# Build/verify entry points. `make verify` is the tier-1 gate: a clean
# build, the full test suite, vet, and the race detector over the short
# suite (the parallel executor paths are exercised under -race there).

GO ?= go

.PHONY: all build test vet race verify bench

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

verify: build test vet race

bench:
	$(GO) test -bench=. -benchmem .
