# Build/verify entry points. `make verify` is the tier-1 gate: a clean
# build, the full test suite, vet, the race detector over the short suite
# (the parallel executor paths are exercised under -race there), and the
# zero-allocation gate on the telemetry hot path.

GO ?= go

.PHONY: all build test vet race alloc-gate chaos explain verify bench bench-all

all: verify

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order, so an
# accidental inter-test dependency fails loudly instead of hiding behind
# file order. The shuffle seed prints on failure for reproduction.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

# The allocation gate: testing.AllocsPerRun must report zero heap
# allocations for a warm Manager.Signals decision point and for the warm
# stats kernels. Run without -race (its instrumentation allocates).
alloc-gate:
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/telemetry ./internal/stats

# The chaos gate: deterministic fault injection end to end — the
# sim-level chaos and actuation suites (parallel/serial bit identity,
# aggressive-plan survival, the cost bounds, throttle-storm reconvergence).
# The faults and actuate packages' unit tests run uncached alongside them.
chaos:
	$(GO) test -count=1 ./internal/faults/... ./internal/actuate/... \
		./internal/sim -run 'Chaos|Actuation'

# Smoke the decision-audit surface end to end: a real daas-sim run under
# telemetry + actuation chaos must print rule explanations sourced from
# the loop.DecisionRecord stream.
explain:
	$(GO) run ./cmd/daas-sim -workload ds2 -trace trace3 -faults 0.1 \
		-actuation-latency 1 -actuation-fail 0.1 -explain -explain-rows 24

verify: build test vet race alloc-gate chaos

# The telemetry hot-path benchmarks; headline numbers land in
# BENCH_telemetry.json.
bench:
	BENCH_JSON=BENCH_telemetry.json $(GO) test -run '^$$' \
		-bench 'BenchmarkSignalsWindow10|BenchmarkTheilSen|BenchmarkTelemetry1kTenants' \
		-benchmem .

# Every benchmark, including the full paper-figure reproductions.
bench-all:
	$(GO) test -bench=. -benchmem .
