# Build/verify entry points. `make verify` is the tier-1 gate: a clean
# build, the full test suite, vet, the race detector over the short suite
# (the parallel executor paths are exercised under -race there), and the
# zero-allocation gate on the telemetry hot path.

GO ?= go

.PHONY: all build test vet race alloc-gate chaos crash explain verify bench bench-all bench-fleet bench-cluster bench-fabric bench-serve profile deprecation-gate

all: verify

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order, so an
# accidental inter-test dependency fails loudly instead of hiding behind
# file order. The shuffle seed prints on failure for reproduction.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

# The allocation gate: testing.AllocsPerRun must report zero heap
# allocations for a warm Manager.Signals decision point and for the warm
# stats kernels. Run without -race (its instrumentation allocates).
alloc-gate:
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/telemetry ./internal/stats

# The chaos gate: deterministic fault injection end to end — the
# sim-level chaos and actuation suites (parallel/serial bit identity,
# aggressive-plan survival, the cost bounds, throttle-storm reconvergence).
# The faults and actuate packages' unit tests run uncached alongside them.
chaos:
	$(GO) test -count=1 ./internal/faults/... ./internal/actuate/... \
		./internal/sim -run 'Chaos|Actuation'

# The crash gate: kill -9 the real daemon binary mid-load — on a clean
# disk and under random injected EIO — and assert the ack-vs-replay
# invariants with daas-loadgen's ledger verifier. The in-process
# fault-point sweep (every fault kind at a stride of filesystem-op
# indexes, across workload shapes) runs first.
crash:
	$(GO) test -count=1 -run 'TestCrashConsistencySweep' ./internal/serve/
	./scripts/crash_smoke.sh

# Smoke the decision-audit surface end to end: a real daas-sim run under
# telemetry + actuation chaos must print rule explanations sourced from
# the loop.DecisionRecord stream.
explain:
	$(GO) run ./cmd/daas-sim -workload ds2 -trace trace3 -faults 0.1 \
		-actuation-latency 1 -actuation-fail 0.1 -explain -explain-rows 24

# The deprecation gate: non-test code must not call the slice-materializing
# fleet entry points (they remain only as exact oracles for tests). The
# grep excludes internal/fleet itself, where the deprecated functions are
# defined and wrapped.
deprecation-gate:
	@if grep -rn --include='*.go' --exclude='*_test.go' \
		-E 'fleet\.(GenerateFleet(Context)?|Analyze(Context)?|ArchetypeBreakdown|CollectWaitSamples|SplitByUtilization|Correlation|Calibrate)\(' \
		cmd examples internal --exclude-dir=fleet; then \
		echo "deprecation-gate: non-test code calls a deprecated fleet entry point (use fleet.Stream / fleet.StreamCalibration)"; \
		exit 1; \
	fi
	@echo "deprecation-gate: clean"

verify: build test vet race alloc-gate chaos deprecation-gate

# The telemetry hot-path benchmarks; headline numbers land in
# BENCH_telemetry.json.
bench:
	BENCH_JSON=BENCH_telemetry.json $(GO) test -run '^$$' \
		-bench 'BenchmarkSignalsWindow10|BenchmarkTheilSen|BenchmarkTelemetry1kTenants' \
		-benchmem .

# The fleet-scale streaming benchmarks (1k/10k/100k tenants); tenants/sec
# and peak heap land in BENCH_fleet.json.
bench-fleet:
	BENCH_JSON=BENCH_fleet.json $(GO) test -run '^$$' \
		-bench 'BenchmarkFleetStream|BenchmarkFleetCalibrationStream' \
		-benchtime 1x -benchmem .

# The cluster hot-path gate: the optimized schedule (parallel ticks+decide
# over engine.TickBatch, serial apply) vs the retained PR-6 reference
# schedule on a 1000-tenant cluster, bit-identity asserted, speedup gated
# (1.5x with >= 4 CPUs, the core-independent 1.2x floor below that).
# Numbers land in BENCH_cluster.json.
bench-cluster:
	BENCH_JSON=BENCH_cluster.json $(GO) test -run '^$$' \
		-bench 'BenchmarkCluster1kTenants' -benchtime 1x -benchmem .

# The packing-quality gate: on a 1000-tenant contended cluster the
# placement optimizer must restore every predicted p95 to goal
# (violations after rebalance = 0) and consolidate a spread fleet onto at
# most 2x the capacity lower bound. Numbers land in BENCH_fabric.json.
bench-fabric:
	BENCH_JSON=BENCH_fabric.json $(GO) test -run '^$$' \
		-bench 'BenchmarkFabricPacking1kTenants' -benchtime 1x -benchmem .

# The serving-daemon ingest gate: concurrent tenant streams over real
# HTTP against the full pipeline (JSON decode, idempotency/reorder,
# policy decision, ledger append + fsync per request), throughput floored
# at 10k snapshots/sec. Numbers land in BENCH_serve.json.
bench-serve:
	BENCH_JSON=BENCH_serve.json $(GO) test -run '^$$' \
		-bench 'BenchmarkServeIngest' -benchtime 1x -benchmem .

# Profile the cluster hot path: one 1k-tenant run with per-phase pprof
# labels ("ticks+decide" vs "apply"), CPU and heap profiles written to
# cluster_cpu.pprof / cluster_heap.pprof for `go tool pprof`.
profile:
	$(GO) run ./cmd/daas-profile -tenants 1000 -intervals 12 -workers 8 \
		-labels -cpuprofile cluster_cpu.pprof -memprofile cluster_heap.pprof

# Every benchmark, including the full paper-figure reproductions.
bench-all:
	$(GO) test -bench=. -benchmem .
