#!/usr/bin/env bash
# Crash-restart smoke for the serving stack: kill -9 the real daemon
# mid-load, with and without injected storage faults, and assert the
# ack-vs-replay invariants — nothing a 200/429 acknowledged may be lost,
# decision streams stay contiguous, and the bill derives from the
# decisions — via daas-loadgen's ledger verifier.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
LEDGERS=$(mktemp -d)
ACKS="$BIN/acks.json"
ADDR=127.0.0.1:18090
URL="http://$ADDR"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$BIN" "$LEDGERS"
}
trap cleanup EXIT

go build -o "$BIN/daas-server" ./cmd/daas-server
go build -o "$BIN/daas-loadgen" ./cmd/daas-loadgen

start_server() {
  "$BIN/daas-server" -addr "$ADDR" -ledger-dir "$LEDGERS" -sync-every -1 "$@" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    curl -fsS "$URL/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "crash_smoke: server did not come up" >&2
  exit 1
}

verify() {
  "$BIN/daas-loadgen" -tenants 0 -verify-ledgers "$LEDGERS" -ack-out "$ACKS"
}

# --- Part 1: clean-disk kill -9 cycles. The load generator records every
# acknowledged NextSeq; after each kill the surviving ledgers must cover
# all of them. A restart then re-drives the full stream (idempotency
# absorbs the re-sends), drains on SIGTERM, and verifies again.
for round in 1 2 3; do
  echo "crash_smoke: round $round (kill -9 mid-load)"
  start_server
  "$BIN/daas-loadgen" -url "$URL" -tenants 20 -snapshots 200 -batch 20 \
    -max-retries 0 -ack-out "$ACKS" &
  LOAD_PID=$!
  sleep "0.$round"
  kill -9 "$SERVER_PID" 2>/dev/null || true
  wait "$LOAD_PID" || true # the interrupted run exits non-zero; its acks are on disk
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  verify

  start_server
  "$BIN/daas-loadgen" -url "$URL" -tenants 20 -snapshots 200 -batch 20 -ack-out "$ACKS"
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  SERVER_PID=""
  verify
  rm -rf "$LEDGERS" && mkdir -p "$LEDGERS" && rm -f "$ACKS"
done

# --- Part 2: injected storage faults. Random EIO on ~0.5% of filesystem
# ops: the daemon must quarantine, refuse with 503 + Retry-After (never a
# lost 200), seal-and-rotate on recovery probes, and the retrying load
# generator must still land every snapshot.
echo "crash_smoke: faulted pass (random EIO injection)"
start_server -fault-kind eio -fault-rate 0.005 -fault-seed 7 -probe-interval 1s
"$BIN/daas-loadgen" -url "$URL" -tenants 10 -snapshots 100 -batch 10 \
  -max-retries 12 -ack-out "$ACKS"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true # a fault during the final drain sync is a legal non-zero exit
SERVER_PID=""
verify

echo "crash_smoke: all invariants held"
