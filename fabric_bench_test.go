package daasscale_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"daasscale/internal/fabric"
	"daasscale/internal/resource"
)

// fabricBenchCluster builds the 1k-tenant packing fixture the bench-fabric
// gate measures: tenants with per-dimension random sizes FirstFit-packed
// onto a large cluster under the default interference model, every goal
// set 25% above its contention-free baseline — so a packed node (inflation
// ≈2x) violates every resident and a spread cluster violates none.
func fabricBenchCluster(b *testing.B, tenants, servers int, policy fabric.PlacementPolicy) (*fabric.Fabric, []fabric.TenantGoal) {
	b.Helper()
	cap := resource.Vector{400, 400, 400, 400}
	f, err := fabric.New(servers, cap, policy)
	if err != nil {
		b.Fatal(err)
	}
	if err := f.SetContention(fabric.Contention{Enable: true}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(benchSeed))
	goals := make([]fabric.TenantGoal, 0, tenants)
	for i := 0; i < tenants; i++ {
		// Quarter-unit sizes stay exactly representable, so the fabric's
		// incremental allocation cache matches Validate's recomputed sums
		// bit-for-bit across hundreds of migrations.
		var alloc resource.Vector
		for d := range alloc {
			alloc[d] = 15 + math.Floor(rng.Float64()*140)/4
		}
		id := fmt.Sprintf("tenant-%04d", i)
		if err := f.Place(id, resource.Container{Name: "bench", Alloc: alloc, Cost: 1}); err != nil {
			b.Fatal(err)
		}
		baseline := 40 + rng.Float64()*20
		goals = append(goals, fabric.TenantGoal{ID: id, GoalMs: baseline * 1.25, BaselineP95Ms: baseline})
	}
	return f, goals
}

// predictedViolations counts tenants whose baseline p95, inflated by the
// interference their current neighbors impose, exceeds their goal.
func predictedViolations(b *testing.B, f *fabric.Fabric, goals []fabric.TenantGoal) int {
	b.Helper()
	n := 0
	for _, g := range goals {
		inf, _, ok := f.TenantInflation(g.ID)
		if !ok {
			b.Fatalf("%s not placed", g.ID)
		}
		if g.BaselineP95Ms*inf.Max() > g.GoalMs {
			n++
		}
	}
	return n
}

// applyBenchPlan executes a plan through the fabric and revalidates it.
func applyBenchPlan(b *testing.B, f *fabric.Fabric, plan fabric.Plan) {
	b.Helper()
	for _, mv := range plan.Moves {
		if err := f.Migrate(mv.Tenant, mv.To); err != nil {
			b.Fatalf("executing %+v: %v", mv, err)
		}
	}
	if err := f.Validate(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFabricPacking1kTenants is the packing-quality gate: on a
// 1000-tenant FirstFit-packed cluster where every resident's predicted p95
// violates its goal, fabric.Rebalance must plan (and the fabric execute)
// migrations that leave zero predicted violations; and on the same tenants
// WorstFit-spread across the cluster, fabric.Optimize must consolidate them onto at most
// 2x the capacity lower bound without creating a violation. `make
// bench-fabric` records the numbers in BENCH_fabric.json.
func BenchmarkFabricPacking1kTenants(b *testing.B) {
	const tenants, servers = 1000, 320

	// --- Rebalance: packed cluster back to goal --------------------------
	f, goals := fabricBenchCluster(b, tenants, servers, fabric.FirstFit)
	before := predictedViolations(b, f, goals)
	if before < tenants/2 {
		b.Fatalf("fixture too loose: only %d/%d tenants violated before rebalancing", before, tenants)
	}
	start := time.Now()
	plan := f.Rebalance(goals)
	rebalanceNs := float64(time.Since(start).Nanoseconds())
	applyBenchPlan(b, f, plan)
	after := predictedViolations(b, f, goals)
	if after > 0 || after > before {
		b.Fatalf("rebalancing left %d predicted violations (was %d, %d moves)", after, before, len(plan.Moves))
	}

	// --- Optimize: spread cluster onto fewest nodes ----------------------
	// WorstFit placement spreads the same tenants across the whole
	// cluster — the anti-packed starting point the optimizer must undo.
	g, loose := fabricBenchCluster(b, tenants, servers, fabric.WorstFit)
	var total resource.Vector
	for i := 0; i < tenants; i++ {
		c, _ := g.Container(fmt.Sprintf("tenant-%04d", i))
		total = total.Add(c.Alloc)
	}
	for i := range loose {
		loose[i].GoalMs = 0 // no latency constraint: pure bin packing
	}
	lowerBound := 0
	for _, k := range resource.Kinds {
		if lb := int(math.Ceil(total[k] / 400)); lb > lowerBound {
			lowerBound = lb
		}
	}
	start = time.Now()
	packPlan := g.Optimize(loose)
	optimizeNs := float64(time.Since(start).Nanoseconds())
	applyBenchPlan(b, g, packPlan)
	nodesUsed := 0
	for _, s := range g.Servers() {
		if s.TenantCount() > 0 {
			nodesUsed++
		}
	}
	if nodesUsed >= packPlan.NodesBefore {
		b.Fatalf("optimizer did not consolidate: %d nodes before, %d after", packPlan.NodesBefore, nodesUsed)
	}
	if nodesUsed > 2*lowerBound {
		b.Fatalf("packing quality regressed: %d nodes used, capacity lower bound %d", nodesUsed, lowerBound)
	}

	printOnce("fabric-1k", func() {
		fmt.Printf("\nFabric packing: %d tenants on %d servers: rebalance %d->%d violations in %d moves (%.1f ms); optimize %d->%d nodes (lower bound %d, %.1f ms)\n",
			tenants, servers, before, after, len(plan.Moves), rebalanceNs/1e6,
			packPlan.NodesBefore, nodesUsed, lowerBound, optimizeNs/1e6)
	})
	b.ReportMetric(float64(len(plan.Moves)), "rebalance-moves")
	b.ReportMetric(float64(nodesUsed), "packed-nodes")
	recordBench("FabricPacking1kTenants", map[string]float64{
		"tenants":            tenants,
		"servers":            servers,
		"violations_before":  float64(before),
		"violations_after":   float64(after),
		"rebalance_moves":    float64(len(plan.Moves)),
		"rebalance_plan_ms":  rebalanceNs / 1e6,
		"optimize_nodes_pre": float64(packPlan.NodesBefore),
		"optimize_nodes":     float64(nodesUsed),
		"node_lower_bound":   float64(lowerBound),
		"optimize_plan_ms":   optimizeNs / 1e6,
	})

	// The steady-state cost the benchmark tracks: re-planning a rebalance
	// of the packed fixture (planning is pure; the fabric is not mutated).
	h, hgoals := fabricBenchCluster(b, tenants, servers, fabric.FirstFit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Rebalance(hgoals)
	}
}
