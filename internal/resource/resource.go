// Package resource defines the resource dimensions of a DaaS container, the
// container abstraction itself, and the catalog of container sizes (SKUs)
// offered by the service.
//
// A container guarantees a fixed set of resources (CPU, memory, disk I/O,
// log I/O) and has a monetary cost per billing interval. The catalog mirrors
// the setting of the SIGMOD'16 paper (Section 7.1): eleven lock-step sizes
// whose CPU allocation spans half a core to tens of cores and whose cost per
// billing interval ranges from 7 to 270 units, plus per-dimension variants
// (high-CPU / high-memory / high-I/O) in the style of the paper's Figure 1.
package resource

import (
	"fmt"
	"strings"
)

// Kind identifies one physical resource dimension of a container.
type Kind int

// The physical resource dimensions a container allocates. Logical resources
// (locks, latches) are wait classes only and are defined in package
// telemetry; they are not provisioned by a container.
const (
	CPU Kind = iota
	Memory
	DiskIO
	LogIO
	numKinds
)

// Kinds lists every physical resource dimension in canonical order.
var Kinds = [...]Kind{CPU, Memory, DiskIO, LogIO}

// NumKinds is the number of physical resource dimensions.
const NumKinds = int(numKinds)

// String returns the conventional short name of the resource kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case DiskIO:
		return "diskio"
	case LogIO:
		return "logio"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Vector is an allocation or demand expressed in each resource dimension.
//
// Units:
//   - CPU: core-milliseconds of compute per second (1 core = 1000).
//   - Memory: megabytes.
//   - DiskIO: I/O operations per second.
//   - LogIO: kilobytes of log write per second.
type Vector [NumKinds]float64

// Get returns the component for kind k.
func (v Vector) Get(k Kind) float64 { return v[k] }

// With returns a copy of v with component k replaced by x.
func (v Vector) With(k Kind, x float64) Vector {
	v[k] = x
	return v
}

// Add returns the component-wise sum v + w.
func (v Vector) Add(w Vector) Vector {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub returns the component-wise difference v − w.
func (v Vector) Sub(w Vector) Vector {
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Scale returns v with every component multiplied by x.
func (v Vector) Scale(x float64) Vector {
	for i := range v {
		v[i] *= x
	}
	return v
}

// Max returns the component-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	for i := range v {
		if w[i] > v[i] {
			v[i] = w[i]
		}
	}
	return v
}

// Dominates reports whether every component of v is ≥ the corresponding
// component of w. A container whose allocation dominates a demand vector can
// satisfy that demand in every dimension.
func (v Vector) Dominates(w Vector) bool {
	for i := range v {
		if v[i] < w[i] {
			return false
		}
	}
	return true
}

// String renders the vector with unit-annotated components.
func (v Vector) String() string {
	return fmt.Sprintf("cpu=%.1fmcs mem=%.0fMB io=%.0fiops log=%.0fKBps",
		v[CPU], v[Memory], v[DiskIO], v[LogIO])
}

// Container is one entry of the service's SKU catalog: a named, fixed
// allocation of resources with a cost per billing interval.
type Container struct {
	// Name is the SKU name, e.g. "C4" or "C4-hicpu".
	Name string
	// Alloc is the guaranteed resource allocation.
	Alloc Vector
	// Cost is the monetary cost per billing interval, in abstract units.
	Cost float64
	// Step is the position of the container in its scaling ladder:
	// 0 for the smallest lock-step size, increasing with size. Per-dimension
	// variants share the step of the lock-step size they extend.
	Step int
}

// CPUCores returns the CPU allocation expressed in cores.
func (c Container) CPUCores() float64 { return c.Alloc[CPU] / 1000 }

// String renders the container name, cost and allocation.
func (c Container) String() string {
	return fmt.Sprintf("%s(cost=%.0f %s)", c.Name, c.Cost, c.Alloc)
}

// Catalog is the set of container sizes a DaaS offers. The zero value is not
// usable; construct one with NewCatalog or DefaultCatalog.
type Catalog struct {
	containers []Container
	byName     map[string]int
	// ladder holds the indices of the lock-step sizes in increasing step
	// order; per-dimension variants are reachable only through selection by
	// demand vector.
	ladder []int
}

// NewCatalog builds a catalog from the given containers. Containers must
// have unique names and positive costs. Containers whose name contains no
// '-' are treated as lock-step ladder sizes and must appear in strictly
// increasing cost and step order.
func NewCatalog(containers []Container) (*Catalog, error) {
	if len(containers) == 0 {
		return nil, fmt.Errorf("resource: catalog requires at least one container")
	}
	c := &Catalog{
		containers: append([]Container(nil), containers...),
		byName:     make(map[string]int, len(containers)),
	}
	var prevLadder *Container
	for i := range c.containers {
		ct := &c.containers[i]
		if ct.Cost <= 0 {
			return nil, fmt.Errorf("resource: container %q has non-positive cost %v", ct.Name, ct.Cost)
		}
		if _, dup := c.byName[ct.Name]; dup {
			return nil, fmt.Errorf("resource: duplicate container name %q", ct.Name)
		}
		c.byName[ct.Name] = i
		if !strings.Contains(ct.Name, "-") {
			if prevLadder != nil && (ct.Cost <= prevLadder.Cost || ct.Step <= prevLadder.Step) {
				return nil, fmt.Errorf("resource: ladder container %q must increase cost and step over %q", ct.Name, prevLadder.Name)
			}
			c.ladder = append(c.ladder, i)
			prevLadder = ct
		}
	}
	if len(c.ladder) == 0 {
		return nil, fmt.Errorf("resource: catalog has no lock-step ladder containers")
	}
	return c, nil
}

// Containers returns every container in the catalog, in declaration order.
func (c *Catalog) Containers() []Container {
	return append([]Container(nil), c.containers...)
}

// Ladder returns the lock-step sizes in increasing step order.
func (c *Catalog) Ladder() []Container {
	out := make([]Container, len(c.ladder))
	for i, idx := range c.ladder {
		out[i] = c.containers[idx]
	}
	return out
}

// ByName looks a container up by SKU name.
func (c *Catalog) ByName(name string) (Container, bool) {
	i, ok := c.byName[name]
	if !ok {
		return Container{}, false
	}
	return c.containers[i], true
}

// Smallest returns the cheapest lock-step container.
func (c *Catalog) Smallest() Container { return c.containers[c.ladder[0]] }

// Largest returns the most expensive lock-step container.
func (c *Catalog) Largest() Container { return c.containers[c.ladder[len(c.ladder)-1]] }

// LadderLen returns the number of lock-step sizes.
func (c *Catalog) LadderLen() int { return len(c.ladder) }

// AtStep returns the lock-step container at the given step, clamping to the
// ends of the ladder.
func (c *Catalog) AtStep(step int) Container {
	if step < 0 {
		step = 0
	}
	if step >= len(c.ladder) {
		step = len(c.ladder) - 1
	}
	return c.containers[c.ladder[step]]
}

// StepOf returns the ladder step of the given container (its Step field for
// per-dimension variants).
func (c *Catalog) StepOf(ct Container) int { return ct.Step }

// SmallestFitting returns the cheapest container (across the whole catalog,
// including per-dimension variants) whose allocation dominates demand. If no
// container fits, it returns the largest lock-step container and ok=false.
func (c *Catalog) SmallestFitting(demand Vector) (Container, bool) {
	best := -1
	for i, ct := range c.containers {
		if !ct.Alloc.Dominates(demand) {
			continue
		}
		if best < 0 || ct.Cost < c.containers[best].Cost {
			best = i
		}
	}
	if best < 0 {
		return c.Largest(), false
	}
	return c.containers[best], true
}

// CheapestWithin returns the cheapest container that dominates demand and
// costs at most budget. If none fits within budget, it returns the most
// expensive container affordable within budget (the paper's fallback when
// the desired container is budget-constrained) and ok=false. If even the
// smallest container exceeds budget, the smallest container is returned.
func (c *Catalog) CheapestWithin(demand Vector, budget float64) (Container, bool) {
	best := -1
	for i, ct := range c.containers {
		if ct.Cost > budget || !ct.Alloc.Dominates(demand) {
			continue
		}
		if best < 0 || ct.Cost < c.containers[best].Cost {
			best = i
		}
	}
	if best >= 0 {
		return c.containers[best], true
	}
	// Budget-constrained: most expensive affordable container.
	for i, ct := range c.containers {
		if ct.Cost > budget {
			continue
		}
		if best < 0 || ct.Cost > c.containers[best].Cost ||
			(ct.Cost == c.containers[best].Cost && ct.Alloc.Dominates(c.containers[best].Alloc)) {
			best = i
		}
	}
	if best >= 0 {
		return c.containers[best], false
	}
	return c.Smallest(), false
}

// DefaultCatalog returns the catalog used throughout the reproduction:
// eleven lock-step sizes C0…C10 with costs 7…270 units per billing interval
// and CPU spanning 0.5 to 32 cores (Section 7.1 of the paper), plus
// per-dimension high-CPU, high-memory and high-I/O variants of the mid-range
// sizes in the style of Figure 1.
func DefaultCatalog() *Catalog {
	type row struct {
		name  string
		cores float64
		memMB float64
		iops  float64
		logKB float64
		cost  float64
		step  int
	}
	rows := []row{
		{"C0", 0.5, 1024, 100, 256, 7, 0},
		{"C1", 1, 2048, 200, 512, 15, 1},
		{"C2", 2, 4096, 400, 1024, 30, 2},
		{"C3", 3, 6144, 600, 1536, 45, 3},
		{"C4", 4, 8192, 800, 2048, 60, 4},
		{"C5", 6, 12288, 1200, 3072, 90, 5},
		{"C6", 8, 16384, 1600, 4096, 120, 6},
		{"C7", 12, 24576, 2400, 6144, 160, 7},
		{"C8", 16, 32768, 3200, 8192, 200, 8},
		{"C9", 24, 49152, 4800, 12288, 240, 9},
		{"C10", 32, 65536, 6400, 16384, 270, 10},
	}
	var containers []Container
	for _, r := range rows {
		containers = append(containers, Container{
			Name:  r.name,
			Alloc: Vector{r.cores * 1000, r.memMB, r.iops, r.logKB},
			Cost:  r.cost,
			Step:  r.step,
		})
	}
	// Per-dimension variants: same base resources as the ladder size but
	// with one dimension doubled, at ~40% of the cost difference to the next
	// full size up (cheaper than scaling everything in lock step).
	for _, base := range []int{2, 3, 4, 5, 6} {
		b := containers[base]
		next := containers[base+1]
		surcharge := 0.4 * (next.Cost - b.Cost)
		containers = append(containers,
			Container{Name: b.Name + "-hicpu", Alloc: b.Alloc.With(CPU, 2*b.Alloc[CPU]), Cost: b.Cost + surcharge, Step: b.Step},
			Container{Name: b.Name + "-himem", Alloc: b.Alloc.With(Memory, 2*b.Alloc[Memory]), Cost: b.Cost + surcharge, Step: b.Step},
			Container{Name: b.Name + "-hiio", Alloc: b.Alloc.With(DiskIO, 2*b.Alloc[DiskIO]).With(LogIO, 2*b.Alloc[LogIO]), Cost: b.Cost + surcharge, Step: b.Step},
		)
	}
	cat, err := NewCatalog(containers)
	if err != nil {
		panic("resource: default catalog invalid: " + err.Error())
	}
	return cat
}

// LockStepCatalog returns the default catalog restricted to the eleven
// lock-step sizes (no per-dimension variants). Experiments that reproduce
// the paper's main results use this catalog.
func LockStepCatalog() *Catalog {
	full := DefaultCatalog()
	cat, err := NewCatalog(full.Ladder())
	if err != nil {
		panic("resource: lock-step catalog invalid: " + err.Error())
	}
	return cat
}
