package resource

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{CPU: "cpu", Memory: "memory", DiskIO: "diskio", LogIO: "logio"}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, s)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	w := Vector{10, 20, 30, 40}
	if got := v.Add(w); got != (Vector{11, 22, 33, 44}) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); got != (Vector{9, 18, 27, 36}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vector{2, 4, 6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Max(Vector{0, 5, 2, 9}); got != (Vector{1, 5, 3, 9}) {
		t.Errorf("Max = %v", got)
	}
	if got := v.With(Memory, 77); got != (Vector{1, 77, 3, 4}) {
		t.Errorf("With = %v", got)
	}
	if got := v.Get(DiskIO); got != 3 {
		t.Errorf("Get = %v", got)
	}
}

func TestVectorDominates(t *testing.T) {
	big := Vector{10, 10, 10, 10}
	small := Vector{1, 1, 1, 1}
	if !big.Dominates(small) {
		t.Error("big should dominate small")
	}
	if small.Dominates(big) {
		t.Error("small should not dominate big")
	}
	if !big.Dominates(big) {
		t.Error("a vector dominates itself")
	}
	mixed := Vector{20, 1, 1, 1}
	if big.Dominates(mixed) || mixed.Dominates(big) {
		t.Error("incomparable vectors should not dominate each other")
	}
}

func TestVectorDominatesProperty(t *testing.T) {
	// Property: for any vectors a,b the component-wise max dominates both.
	f := func(a, b [4]float64) bool {
		va, vb := Vector(a), Vector(b)
		for i := range va {
			if math.IsNaN(va[i]) || math.IsNaN(vb[i]) {
				return true
			}
		}
		m := va.Max(vb)
		return m.Dominates(va) && m.Dominates(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultCatalogShape(t *testing.T) {
	cat := DefaultCatalog()
	ladder := cat.Ladder()
	if len(ladder) != 11 {
		t.Fatalf("ladder has %d sizes, want 11", len(ladder))
	}
	if got := cat.Smallest().Cost; got != 7 {
		t.Errorf("smallest cost = %v, want 7", got)
	}
	if got := cat.Largest().Cost; got != 270 {
		t.Errorf("largest cost = %v, want 270", got)
	}
	if got := cat.Smallest().CPUCores(); got != 0.5 {
		t.Errorf("smallest cores = %v, want 0.5", got)
	}
	if got := cat.Largest().CPUCores(); got != 32 {
		t.Errorf("largest cores = %v, want 32", got)
	}
	// Ladder must be strictly increasing in every dimension and in cost.
	for i := 1; i < len(ladder); i++ {
		if !ladder[i].Alloc.Dominates(ladder[i-1].Alloc) {
			t.Errorf("ladder[%d] %v does not dominate ladder[%d]", i, ladder[i], i-1)
		}
		if ladder[i].Cost <= ladder[i-1].Cost {
			t.Errorf("ladder[%d] cost %v not above ladder[%d] cost %v", i, ladder[i].Cost, i-1, ladder[i-1].Cost)
		}
		if ladder[i].Step != ladder[i-1].Step+1 {
			t.Errorf("ladder[%d] step %d not consecutive", i, ladder[i].Step)
		}
	}
}

func TestDefaultCatalogVariants(t *testing.T) {
	cat := DefaultCatalog()
	v, ok := cat.ByName("C4-hicpu")
	if !ok {
		t.Fatal("C4-hicpu missing")
	}
	base, _ := cat.ByName("C4")
	if v.Alloc[CPU] != 2*base.Alloc[CPU] {
		t.Errorf("hicpu CPU = %v, want 2x base %v", v.Alloc[CPU], base.Alloc[CPU])
	}
	if v.Alloc[Memory] != base.Alloc[Memory] {
		t.Errorf("hicpu memory changed: %v vs %v", v.Alloc[Memory], base.Alloc[Memory])
	}
	next, _ := cat.ByName("C5")
	if v.Cost <= base.Cost || v.Cost >= next.Cost {
		t.Errorf("variant cost %v not between %v and %v", v.Cost, base.Cost, next.Cost)
	}
	if v.Step != base.Step {
		t.Errorf("variant step %d != base step %d", v.Step, base.Step)
	}
}

func TestLockStepCatalog(t *testing.T) {
	cat := LockStepCatalog()
	if got := len(cat.Containers()); got != 11 {
		t.Fatalf("lock-step catalog has %d containers, want 11", got)
	}
	if _, ok := cat.ByName("C4-hicpu"); ok {
		t.Error("lock-step catalog should not contain variants")
	}
}

func TestCatalogAtStepClamping(t *testing.T) {
	cat := LockStepCatalog()
	if got := cat.AtStep(-5); got.Name != "C0" {
		t.Errorf("AtStep(-5) = %s, want C0", got.Name)
	}
	if got := cat.AtStep(100); got.Name != "C10" {
		t.Errorf("AtStep(100) = %s, want C10", got.Name)
	}
	if got := cat.AtStep(4); got.Name != "C4" {
		t.Errorf("AtStep(4) = %s, want C4", got.Name)
	}
}

func TestSmallestFitting(t *testing.T) {
	cat := LockStepCatalog()
	// A demand just above C2 in CPU should pick C3.
	c2, _ := cat.ByName("C2")
	demand := c2.Alloc.With(CPU, c2.Alloc[CPU]+1)
	got, ok := cat.SmallestFitting(demand)
	if !ok || got.Name != "C3" {
		t.Errorf("SmallestFitting = %s ok=%v, want C3 true", got.Name, ok)
	}
	// Zero demand fits the smallest container.
	got, ok = cat.SmallestFitting(Vector{})
	if !ok || got.Name != "C0" {
		t.Errorf("SmallestFitting(zero) = %s ok=%v, want C0 true", got.Name, ok)
	}
	// Demand beyond the largest container cannot be met.
	got, ok = cat.SmallestFitting(cat.Largest().Alloc.Scale(2))
	if ok || got.Name != "C10" {
		t.Errorf("SmallestFitting(huge) = %s ok=%v, want C10 false", got.Name, ok)
	}
}

func TestSmallestFittingPrefersVariant(t *testing.T) {
	cat := DefaultCatalog()
	// Demand with CPU above C4 but everything else within C4: the C4-hicpu
	// variant should win over C5 because it is cheaper.
	c4, _ := cat.ByName("C4")
	demand := c4.Alloc.With(CPU, c4.Alloc[CPU]*1.5)
	got, ok := cat.SmallestFitting(demand)
	if !ok || got.Name != "C4-hicpu" {
		t.Errorf("SmallestFitting = %s ok=%v, want C4-hicpu true", got.Name, ok)
	}
}

func TestCheapestWithin(t *testing.T) {
	cat := LockStepCatalog()
	c3, _ := cat.ByName("C3")
	// Enough budget: picks the smallest fitting container.
	got, ok := cat.CheapestWithin(c3.Alloc, 1000)
	if !ok || got.Name != "C3" {
		t.Errorf("CheapestWithin(large budget) = %s ok=%v, want C3 true", got.Name, ok)
	}
	// Budget below C3's cost: falls back to most expensive affordable.
	got, ok = cat.CheapestWithin(c3.Alloc, 35)
	if ok || got.Name != "C2" {
		t.Errorf("CheapestWithin(budget 35) = %s ok=%v, want C2 false", got.Name, ok)
	}
	// Budget below even the smallest container: smallest is returned.
	got, ok = cat.CheapestWithin(c3.Alloc, 1)
	if ok || got.Name != "C0" {
		t.Errorf("CheapestWithin(budget 1) = %s ok=%v, want C0 false", got.Name, ok)
	}
}

func TestCheapestWithinProperty(t *testing.T) {
	cat := DefaultCatalog()
	// Property: the returned container never exceeds the budget unless the
	// budget is below the cheapest container's cost.
	f := func(cpu, mem, budget float64) bool {
		cpu = math.Abs(math.Mod(cpu, 40000))
		mem = math.Abs(math.Mod(mem, 80000))
		budget = math.Abs(math.Mod(budget, 400))
		demand := Vector{cpu, mem, 0, 0}
		got, _ := cat.CheapestWithin(demand, budget)
		if budget >= cat.Smallest().Cost && got.Cost > budget {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNewCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(nil); err == nil {
		t.Error("empty catalog should fail")
	}
	if _, err := NewCatalog([]Container{{Name: "A", Cost: 0, Step: 0}}); err == nil {
		t.Error("zero cost should fail")
	}
	if _, err := NewCatalog([]Container{
		{Name: "A", Cost: 1, Step: 0},
		{Name: "A", Cost: 2, Step: 1},
	}); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewCatalog([]Container{
		{Name: "A", Cost: 5, Step: 0},
		{Name: "B", Cost: 3, Step: 1},
	}); err == nil {
		t.Error("non-increasing ladder cost should fail")
	}
	if _, err := NewCatalog([]Container{{Name: "A-x", Cost: 5, Step: 0}}); err == nil {
		t.Error("catalog with only variants should fail")
	}
}

func TestByNameMissing(t *testing.T) {
	cat := LockStepCatalog()
	if _, ok := cat.ByName("nope"); ok {
		t.Error("ByName should miss for unknown SKU")
	}
}

func TestContainersIsCopy(t *testing.T) {
	cat := LockStepCatalog()
	cs := cat.Containers()
	cs[0].Name = "mutated"
	if cat.Smallest().Name == "mutated" {
		t.Error("Containers() must return a copy")
	}
}

func TestStringRenderings(t *testing.T) {
	v := Vector{1500, 4096, 800, 2048}
	s := v.String()
	for _, want := range []string{"cpu=1500.0mcs", "mem=4096MB", "io=800iops", "log=2048KBps"} {
		if !strings.Contains(s, want) {
			t.Errorf("Vector.String() = %q missing %q", s, want)
		}
	}
	cat := LockStepCatalog()
	cs := cat.AtStep(4).String()
	if !strings.Contains(cs, "C4") || !strings.Contains(cs, "cost=60") {
		t.Errorf("Container.String() = %q", cs)
	}
}

func TestVectorSubAndStepOf(t *testing.T) {
	cat := LockStepCatalog()
	c := cat.AtStep(3)
	if got := cat.StepOf(c); got != 3 {
		t.Errorf("StepOf = %d", got)
	}
	d := c.Alloc.Sub(cat.AtStep(2).Alloc)
	for _, k := range Kinds {
		if d[k] <= 0 {
			t.Errorf("ladder deltas must be positive: %v", d)
		}
	}
}

func TestLadderLen(t *testing.T) {
	if got := LockStepCatalog().LadderLen(); got != 11 {
		t.Errorf("LadderLen = %d", got)
	}
	if got := DefaultCatalog().LadderLen(); got != 11 {
		t.Errorf("full catalog LadderLen = %d (variants must not join the ladder)", got)
	}
}
