package telemetry

import (
	"math"
	"testing"

	"daasscale/internal/resource"
)

func TestWaitClassStrings(t *testing.T) {
	want := map[WaitClass]string{
		WaitCPU: "cpu", WaitMemory: "memory", WaitDiskIO: "diskio",
		WaitLogIO: "logio", WaitLock: "lock", WaitLatch: "latch", WaitSystem: "system",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", c, got, s)
		}
	}
	if got := WaitClass(42).String(); got != "waitclass(42)" {
		t.Errorf("unknown class = %q", got)
	}
}

func TestWaitClassResourceMapping(t *testing.T) {
	for _, k := range resource.Kinds {
		wc := WaitClassFor(k)
		back, ok := wc.ResourceKind()
		if !ok || back != k {
			t.Errorf("round trip %v → %v → %v ok=%v", k, wc, back, ok)
		}
	}
	for _, wc := range []WaitClass{WaitLock, WaitLatch, WaitSystem} {
		if _, ok := wc.ResourceKind(); ok {
			t.Errorf("%v should not map to a physical resource", wc)
		}
	}
}

func TestWaitClassForPanicsOnBadKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	WaitClassFor(resource.Kind(99))
}

func TestSnapshotWaitPct(t *testing.T) {
	var s Snapshot
	s.WaitMs[WaitCPU] = 300
	s.WaitMs[WaitLock] = 700
	if got := s.TotalWaitMs(); got != 1000 {
		t.Errorf("total = %v", got)
	}
	if got := s.WaitPct(WaitLock); got != 0.7 {
		t.Errorf("lock pct = %v", got)
	}
	empty := Snapshot{}
	if got := empty.WaitPct(WaitCPU); got != 0 {
		t.Errorf("empty pct = %v", got)
	}
}

// synth builds a snapshot with the given interval, cpu utilization, cpu
// wait, and p95 latency.
func synth(interval int, util, cpuWait, p95 float64) Snapshot {
	var s Snapshot
	s.Interval = interval
	s.Utilization[resource.CPU] = util
	s.WaitMs[WaitCPU] = cpuWait
	s.WaitMs[WaitSystem] = 100
	s.AvgLatencyMs = p95 / 2
	s.P95LatencyMs = p95
	s.OfferedRPS = 100
	s.PhysicalReads = 500
	s.MemoryUsedMB = 1024
	return s
}

func TestManagerNeedsMinimumHistory(t *testing.T) {
	m := NewManager(10)
	if _, ok := m.Signals(); ok {
		t.Error("no history should give no signals")
	}
	m.Observe(synth(0, 0.5, 100, 50))
	m.Observe(synth(1, 0.5, 100, 50))
	if _, ok := m.Signals(); ok {
		t.Error("2 snapshots below minimum")
	}
	m.Observe(synth(2, 0.5, 100, 50))
	if _, ok := m.Signals(); !ok {
		t.Error("3 snapshots should be enough")
	}
}

func TestManagerWindowEviction(t *testing.T) {
	m := NewManager(4)
	for i := 0; i < 10; i++ {
		m.Observe(synth(i, 0.5, 100, 50))
	}
	if m.Len() != 4 {
		t.Errorf("window kept %d snapshots, want 4", m.Len())
	}
	sig, _ := m.Signals()
	if sig.Current.Interval != 9 {
		t.Errorf("current interval = %d, want 9", sig.Current.Interval)
	}
	if sig.Window != 4 {
		t.Errorf("window = %d", sig.Window)
	}
}

func TestManagerMinimumWindowClamped(t *testing.T) {
	m := NewManager(1)
	if m.Window() != MinIntervalsForSignals {
		t.Errorf("window = %d, want clamped to %d", m.Window(), MinIntervalsForSignals)
	}
}

func TestSignalsMedianAggregation(t *testing.T) {
	m := NewManager(5)
	utils := []float64{0.2, 0.9, 0.25, 0.22, 0.24} // one outlier interval
	for i, u := range utils {
		m.Observe(synth(i, u, 1000, 40))
	}
	sig, ok := m.Signals()
	if !ok {
		t.Fatal("no signals")
	}
	got := sig.Resources[resource.CPU].Utilization
	if got > 0.3 {
		t.Errorf("median utilization = %v; outlier should not dominate", got)
	}
	if sig.Latency.P95Ms != 40 {
		t.Errorf("latency p95 median = %v", sig.Latency.P95Ms)
	}
	if sig.OfferedRPS != 100 {
		t.Errorf("offered = %v", sig.OfferedRPS)
	}
}

func TestSignalsDetectTrend(t *testing.T) {
	m := NewManager(8)
	for i := 0; i < 8; i++ {
		// Steadily degrading latency and rising CPU waits.
		m.Observe(synth(i, 0.5+0.05*float64(i), 1000*float64(i+1), 50+20*float64(i)))
	}
	sig, _ := m.Signals()
	if !sig.Latency.Trend.Significant || sig.Latency.Trend.Slope <= 0 {
		t.Errorf("latency trend not detected: %+v", sig.Latency.Trend)
	}
	cs := sig.Resources[resource.CPU]
	if !cs.WaitTrend.Significant || cs.WaitTrend.Slope <= 0 {
		t.Errorf("wait trend not detected: %+v", cs.WaitTrend)
	}
	if !cs.UtilTrend.Significant || cs.UtilTrend.Slope <= 0 {
		t.Errorf("util trend not detected: %+v", cs.UtilTrend)
	}
	// Waits and latency move together: strong positive correlation.
	if cs.WaitLatencyCorr < 0.9 {
		t.Errorf("wait-latency correlation = %v, want strong", cs.WaitLatencyCorr)
	}
}

func TestSignalsNoTrendInFlatData(t *testing.T) {
	m := NewManager(8)
	vals := []float64{50, 52, 49, 51, 50, 48, 52, 50}
	for i, v := range vals {
		m.Observe(synth(i, 0.5, 1000, v))
	}
	sig, _ := m.Signals()
	if sig.Latency.Trend.Significant {
		t.Errorf("flat latency should have no significant trend: %+v", sig.Latency.Trend)
	}
}

func TestSignalsLogicalWaitShares(t *testing.T) {
	m := NewManager(5)
	for i := 0; i < 5; i++ {
		var s Snapshot
		s.Interval = i
		s.WaitMs[WaitLock] = 9000
		s.WaitMs[WaitCPU] = 500
		s.WaitMs[WaitSystem] = 500
		s.P95LatencyMs = 100
		m.Observe(s)
	}
	sig, _ := m.Signals()
	if got := sig.LogicalWaitPct[WaitLock]; math.Abs(got-0.9) > 1e-9 {
		t.Errorf("lock share = %v, want 0.9", got)
	}
	if got := sig.Resources[resource.CPU].WaitPct; math.Abs(got-0.05) > 1e-9 {
		t.Errorf("cpu share = %v, want 0.05", got)
	}
}

func TestManagerReset(t *testing.T) {
	m := NewManager(5)
	for i := 0; i < 5; i++ {
		m.Observe(synth(i, 0.5, 100, 50))
	}
	m.Reset()
	if m.Len() != 0 {
		t.Errorf("len after reset = %d", m.Len())
	}
	if _, ok := m.Signals(); ok {
		t.Error("signals should be unavailable after reset")
	}
}
