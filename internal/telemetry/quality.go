package telemetry

import (
	"fmt"
	"math"

	"daasscale/internal/resource"
)

// Quality describes how trustworthy the signals of one decision point are:
// the telemetry manager's delivery and sanitization accounting over the
// retained window (DESIGN.md §9). Raw engine telemetry is noisy — intervals
// get dropped, delivered twice or out of order, and counters arrive NaN,
// infinite, negative or freshly reset — and the demand estimator widens its
// no-op band when the window it is reasoning over was damaged.
//
// All counts are window-scoped: they age out as faulty snapshots are
// evicted from the ring, so quality recovers once the channel heals.
type Quality struct {
	// IntervalsSeen is the number of snapshots in the window. Zero means
	// the signals did not come from a Manager (hand-built or steady-state
	// signals); such signals are assumed pristine.
	IntervalsSeen int
	// Gaps is the number of missing interval indices detected inside the
	// window (each capped at the window length, so a clock-skewed index
	// cannot report an absurd gap).
	Gaps int
	// Sanitized is the number of counter fields the manager repaired
	// (NaN/Inf replaced, negatives clamped) across the window's snapshots.
	Sanitized int
	// Duplicates is the number of windowed snapshots that repeated the
	// interval index of the previously delivered snapshot.
	Duplicates int
	// OutOfOrder is the number of windowed snapshots whose interval index
	// went backwards relative to the previously delivered snapshot.
	OutOfOrder int
}

// IntervalsExpected is the number of intervals the window spans: the
// snapshots seen plus the gaps detected between them.
func (q Quality) IntervalsExpected() int { return q.IntervalsSeen + q.Gaps }

// Quality score thresholds (see Score).
const (
	// DegradedQualityScore is the Score below which the estimator treats
	// signals as degraded and widens its no-op band.
	DegradedQualityScore = 0.9
	// SevereQualityScore is the Score below which the estimator refuses to
	// act at all.
	SevereQualityScore = 0.5
)

// Score condenses the quality accounting into [0, 1]: 1 for a pristine
// window, decaying with incompleteness (gaps), sanitized counters and
// delivery anomalies. Signals of unknown provenance (IntervalsSeen == 0)
// score 1.
func (q Quality) Score() float64 {
	if q.IntervalsSeen <= 0 {
		return 1
	}
	n := float64(q.IntervalsSeen)
	completeness := n / (n + float64(q.Gaps))
	sanitized := 1 - math.Min(1, float64(q.Sanitized)/n)
	anomalies := 1 - math.Min(1, float64(q.Duplicates+q.OutOfOrder)/n)
	return completeness * sanitized * anomalies
}

// Degraded reports whether the window is damaged enough that consumers
// should require stronger evidence before acting.
func (q Quality) Degraded() bool { return q.Score() < DegradedQualityScore }

// Severe reports whether the window is too damaged to act on at all.
func (q Quality) Severe() bool { return q.Score() < SevereQualityScore }

// String summarizes the quality for explanations and logs.
func (q Quality) String() string {
	return fmt.Sprintf("quality %.2f (%d/%d intervals, %d sanitized, %d dup, %d ooo)",
		q.Score(), q.IntervalsSeen, q.IntervalsExpected(), q.Sanitized, q.Duplicates, q.OutOfOrder)
}

// sanitizeValue repairs one counter value: NaN and ±Inf are replaced with
// the fallback (itself forced finite and non-negative), negative values are
// clamped to zero. ok reports whether a repair happened.
func sanitizeValue(v, fallback float64) (out float64, repaired bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		if math.IsNaN(fallback) || math.IsInf(fallback, 0) || fallback < 0 {
			fallback = 0
		}
		return fallback, true
	}
	if v < 0 {
		return 0, true
	}
	return v, false
}

// SanitizeSnapshot repairs every counter field of s in place and returns
// the number of fields repaired. Non-finite values are replaced with the
// previous snapshot's value for the same field (the best finite estimate
// available; zero when prev is nil), negative counters are clamped to
// zero. The Interval index is left alone — delivery-order accounting
// handles clock skew. The zero return on already-clean snapshots makes the
// call free of observable effect on healthy telemetry.
func SanitizeSnapshot(s *Snapshot, prev *Snapshot) int {
	fixed := 0
	fix := func(v *float64, fallback float64) {
		out, repaired := sanitizeValue(*v, fallback)
		*v = out
		if repaired {
			fixed++
		}
	}
	zero := Snapshot{}
	if prev == nil {
		prev = &zero
	}
	fix(&s.Cost, prev.Cost)
	for _, k := range resource.Kinds {
		fix(&s.Utilization[k], prev.Utilization[k])
		fix(&s.UtilizationPeak[k], prev.UtilizationPeak[k])
	}
	for c := range s.WaitMs {
		fix(&s.WaitMs[c], prev.WaitMs[c])
	}
	fix(&s.AvgLatencyMs, prev.AvgLatencyMs)
	fix(&s.P95LatencyMs, prev.P95LatencyMs)
	fix(&s.Transactions, prev.Transactions)
	fix(&s.OfferedRPS, prev.OfferedRPS)
	fix(&s.MemoryUsedMB, prev.MemoryUsedMB)
	fix(&s.PhysicalReads, prev.PhysicalReads)
	fix(&s.PhysicalWrites, prev.PhysicalWrites)
	return fixed
}
