package telemetry

import (
	"daasscale/internal/resource"
	"daasscale/internal/stats"
)

// ResourceSignals summarizes one physical resource dimension over the
// manager's window: robust (median) aggregates of utilization and waits,
// the Theil–Sen trends of both, and the Spearman correlation of the
// resource's waits with latency (Section 3.2.2: strong correlation marks
// the resource as the likely bottleneck).
type ResourceSignals struct {
	// Utilization is the median fraction (0..1) of the allocation used.
	Utilization float64
	// UtilTrend is the robust trend of per-interval utilization.
	UtilTrend stats.Trend
	// WaitMs is the median per-interval wait magnitude for the resource.
	WaitMs float64
	// PrevWaitMs and PrevUtilization are the second-most-recent interval's
	// values; together with the current snapshot they form the fast
	// two-interval confirmation path for burst onsets.
	PrevWaitMs      float64
	PrevUtilization float64
	// WaitPct is the median share (0..1) of total waits attributed to the
	// resource.
	WaitPct float64
	// WaitTrend is the robust trend of per-interval wait magnitude.
	WaitTrend stats.Trend
	// WaitLatencyCorr is Spearman's ρ between the resource's waits and p95
	// latency over the window (0 when undefined).
	WaitLatencyCorr float64
}

// LatencySignals summarizes request latency over the window.
type LatencySignals struct {
	// AvgMs and P95Ms are medians of the per-interval aggregates.
	AvgMs float64
	P95Ms float64
	// PrevAvgMs and PrevP95Ms are the second-most-recent interval's
	// aggregates: together with the current snapshot they give a fast
	// two-interval confirmation path for goal violations at burst onset,
	// before the windowed median catches up.
	PrevAvgMs float64
	PrevP95Ms float64
	// Trend is the robust trend of per-interval p95 latency.
	Trend stats.Trend
}

// Signals is the telemetry manager's output for one decision point: every
// signal the demand estimator consumes.
type Signals struct {
	// Latency aggregates the latency signals.
	Latency LatencySignals
	// Resources holds per-physical-resource signals, indexed by
	// resource.Kind.
	Resources [resource.NumKinds]ResourceSignals
	// LogicalWaitPct is the median share of waits attributed to each
	// logical (non-provisionable) class; indexed by WaitClass, only the
	// lock/latch/system entries are meaningful.
	LogicalWaitPct [NumWaitClasses]float64
	// MemoryUsedMB is the most recent memory in use.
	MemoryUsedMB float64
	// PhysicalReadsMedian is the median per-interval physical reads —
	// the ballooning controller's abort signal.
	PhysicalReadsMedian float64
	// OfferedRPS is the median offered load.
	OfferedRPS float64
	// Window is the number of intervals the signals were computed over.
	Window int
	// Quality is the manager's delivery/sanitization accounting over the
	// window: how complete and trustworthy the signals are. Consumers (the
	// demand estimator) widen their no-op band when Quality is degraded.
	Quality Quality
	// Current is the most recent snapshot.
	Current Snapshot
}

// SteadySignals builds the Signals a manager would produce if the given
// snapshot repeated forever: medians, previous values and the current
// snapshot all equal it, and no trends are significant. Useful for
// evaluating the estimator on individual labeled observations.
func SteadySignals(s Snapshot) Signals {
	var sig Signals
	sig.Window = MinIntervalsForSignals
	sig.Quality = Quality{IntervalsSeen: MinIntervalsForSignals}
	sig.Current = s
	sig.MemoryUsedMB = s.MemoryUsedMB
	sig.OfferedRPS = s.OfferedRPS
	sig.PhysicalReadsMedian = s.PhysicalReads
	sig.Latency.AvgMs = s.AvgLatencyMs
	sig.Latency.P95Ms = s.P95LatencyMs
	sig.Latency.PrevAvgMs = s.AvgLatencyMs
	sig.Latency.PrevP95Ms = s.P95LatencyMs
	for _, k := range resource.Kinds {
		wc := WaitClassFor(k)
		sig.Resources[k] = ResourceSignals{
			Utilization:     s.Utilization[k],
			WaitMs:          s.WaitMs[wc],
			WaitPct:         s.WaitPct(wc),
			PrevWaitMs:      s.WaitMs[wc],
			PrevUtilization: s.Utilization[k],
		}
	}
	for _, wc := range []WaitClass{WaitLock, WaitLatch, WaitSystem} {
		sig.LogicalWaitPct[wc] = s.WaitPct(wc)
	}
	return sig
}

// Manager is the telemetry manager (Section 3): it retains a sliding window
// of per-interval snapshots and derives the robust signals used for demand
// estimation. The zero value is not usable; construct with NewManager.
//
// The window is a fixed-capacity ring buffer and every slice Signals needs
// is a per-manager scratch arena, so after the arenas warm up (one Signals
// call at full window) the manager performs zero heap allocations per
// decision point — the property the fleet-scale simulator leans on (see
// DESIGN.md, "Hot path & performance model"). Signals are additionally
// cached between observations: repeated Signals() calls within one billing
// interval return the cached value, and any Observe/ObserveRaw/Reset
// invalidates it.
type Manager struct {
	window int
	alpha  float64

	// ring holds the retained snapshots. It grows (once) to the window
	// capacity; when full, head is the index of the oldest snapshot and new
	// observations overwrite it in place.
	ring []Snapshot
	head int

	// meta mirrors ring slot-for-slot with the per-snapshot quality
	// accounting (fields sanitized, gap/duplicate/out-of-order delivery),
	// so Quality is window-scoped and ages out with the snapshots.
	meta []snapMeta
	// lastInterval/haveLast track the interval index of the previously
	// delivered snapshot for delivery-order accounting.
	lastInterval int
	haveLast     bool

	// cached is the memoized output of the last Signals computation;
	// cachedOK marks it valid until the next observation.
	cached   Signals
	cachedOK bool

	// Scratch arenas, sized to the window on first use and reused forever:
	// column buffers for the trend x-axis, p95 latency, the per-resource
	// util/wait columns, and a median scratch; plus the Theil–Sen pairwise
	// slope buffer and the Spearman rank/index scratch.
	xs, p95, col, med []float64
	tsBuf             []float64
	spear             stats.SpearmanScratch
}

// DefaultWindow is the number of billing intervals the manager aggregates
// over. Short enough to react within minutes, long enough for robust
// medians and trends.
const DefaultWindow = 10

// MinIntervalsForSignals is the minimum history before Signals reports.
const MinIntervalsForSignals = 3

// NewManager creates a telemetry manager with the given window (intervals).
// window < MinIntervalsForSignals is raised to the minimum.
func NewManager(window int) *Manager {
	if window < MinIntervalsForSignals {
		window = MinIntervalsForSignals
	}
	return &Manager{
		window: window,
		alpha:  stats.DefaultTrendAlpha,
		ring:   make([]Snapshot, 0, window),
		meta:   make([]snapMeta, 0, window),
	}
}

// snapMeta is the per-retained-snapshot quality accounting.
type snapMeta struct {
	// sanitized is the number of counter fields repaired on ingest.
	sanitized int
	// gap is the number of missing interval indices detected immediately
	// before this snapshot (capped at the window length).
	gap int
	// dup and ooo mark duplicate-interval and backwards deliveries.
	dup, ooo bool
}

// Observe appends one billing interval's snapshot, evicting history beyond
// the window. Once the ring is full, the oldest snapshot is overwritten in
// place — no allocation, no copying of the retained window.
//
// The snapshot is validated and sanitized before retention (SanitizeSnapshot:
// non-finite counters replaced with the previous interval's value, negative
// counters clamped to zero), and the delivery order of interval indices is
// tracked, so a faulty telemetry channel degrades the Signals' Quality
// instead of corrupting every median, trend and correlation. Snapshots are
// retained even when duplicated or out of order: the robust kernels tolerate
// them, and the Quality accounting tells consumers how much to trust the
// window.
func (m *Manager) Observe(s Snapshot) {
	var prev *Snapshot
	if len(m.ring) > 0 {
		prev = m.at(len(m.ring) - 1)
	}
	meta := snapMeta{sanitized: SanitizeSnapshot(&s, prev)}
	if m.haveLast {
		switch {
		case s.Interval == m.lastInterval:
			meta.dup = true
		case s.Interval < m.lastInterval:
			meta.ooo = true
		case s.Interval > m.lastInterval+1:
			meta.gap = s.Interval - m.lastInterval - 1
			if meta.gap > m.window {
				meta.gap = m.window
			}
		}
	}
	if !m.haveLast || s.Interval > m.lastInterval {
		m.lastInterval = s.Interval
	}
	m.haveLast = true
	if len(m.ring) < m.window {
		m.ring = append(m.ring, s)
		m.meta = append(m.meta, meta)
	} else {
		m.ring[m.head] = s
		m.meta[m.head] = meta
		m.head++
		if m.head == m.window {
			m.head = 0
		}
	}
	m.cachedOK = false
}

// at returns the i-th retained snapshot in chronological order (0 =
// oldest).
func (m *Manager) at(i int) *Snapshot {
	j := m.head + i
	if j >= len(m.ring) {
		j -= len(m.ring)
	}
	return &m.ring[j]
}

// metaAt returns the i-th retained snapshot's quality accounting, indexed
// like at.
func (m *Manager) metaAt(i int) *snapMeta {
	j := m.head + i
	if j >= len(m.meta) {
		j -= len(m.meta)
	}
	return &m.meta[j]
}

// quality sums the window's per-snapshot accounting into the Quality that
// ships with the signals. Pure over the retained meta ring, so the fast
// path and SignalsReference agree bit for bit.
func (m *Manager) quality(n int) Quality {
	q := Quality{IntervalsSeen: n}
	for i := 0; i < n; i++ {
		mt := m.metaAt(i)
		q.Sanitized += mt.sanitized
		q.Gaps += mt.gap
		if mt.dup {
			q.Duplicates++
		}
		if mt.ooo {
			q.OutOfOrder++
		}
	}
	return q
}

// Quality returns the delivery/sanitization accounting over the currently
// retained window (without requiring MinIntervalsForSignals history).
func (m *Manager) Quality() Quality {
	return m.quality(len(m.ring))
}

// ObserveRaw ingests a snapshot whose waits arrive as raw engine wait types
// (the shape a production DBMS reports, Section 3.1): the manager applies
// the classification rules and fills the snapshot's per-class wait totals
// before retaining it.
//
// A nil byType means "no raw wait telemetry arrived this interval": any
// per-class totals already present in s are preserved as-is. Every non-nil
// map — including an empty one, which a healthy engine reports for a truly
// wait-free interval — replaces s.WaitMs wholesale with its aggregation.
// (Historically a nil map silently zeroed all pre-filled totals, making a
// lost wait-type payload look like an idle database.)
func (m *Manager) ObserveRaw(s Snapshot, byType map[WaitType]float64) {
	if byType != nil {
		s.WaitMs = AggregateWaitTypes(byType)
	}
	m.Observe(s)
}

// Len returns the number of retained snapshots.
func (m *Manager) Len() int { return len(m.ring) }

// Reset clears all history (used after a container resize when the operator
// wants signals scoped to the new container). The ring storage and scratch
// arenas are retained, so a reset-and-rewarmed manager still runs
// allocation-free.
func (m *Manager) Reset() {
	m.ring = m.ring[:0]
	m.meta = m.meta[:0]
	m.head = 0
	m.haveLast = false
	m.lastInterval = 0
	m.cachedOK = false
}

// Window returns the configured window size.
func (m *Manager) Window() int { return m.window }

// AppendSnapshots appends the retained snapshots to dst in chronological
// order (oldest first) and returns the extended slice.
func (m *Manager) AppendSnapshots(dst []Snapshot) []Snapshot {
	for i := 0; i < len(m.ring); i++ {
		dst = append(dst, *m.at(i))
	}
	return dst
}

// Signals computes the derived signals over the retained window. ok is
// false until MinIntervalsForSignals snapshots have been observed.
//
// After the scratch arenas warm up (one call at the current window length),
// the computation allocates nothing; the result is also cached, so repeat
// calls between observations are O(1). Bit-for-bit it equals
// SignalsReference — the pre-optimization implementation retained as the
// equivalence oracle.
func (m *Manager) Signals() (Signals, bool) {
	n := len(m.ring)
	if n < MinIntervalsForSignals {
		return Signals{}, false
	}
	if m.cachedOK {
		return m.cached, true
	}
	m.cached = m.computeSignals(n)
	m.cachedOK = true
	return m.cached, true
}

// grow resizes a scratch arena to n, reusing its backing array when
// possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// medianColumn fills the median scratch with one column of the window and
// selects its median in place. get must not retain the snapshot pointer.
func (m *Manager) medianColumn(n int, get func(*Snapshot) float64) float64 {
	m.med = grow(m.med, n)
	for i := 0; i < n; i++ {
		m.med[i] = get(m.at(i))
	}
	return stats.MedianInPlace(m.med)
}

func (m *Manager) computeSignals(n int) Signals {
	m.xs = grow(m.xs, n)
	m.p95 = grow(m.p95, n)
	for i := 0; i < n; i++ {
		s := m.at(i)
		m.xs[i] = float64(s.Interval)
		m.p95[i] = s.P95LatencyMs
	}

	var sig Signals
	sig.Window = n
	sig.Quality = m.quality(n)
	sig.Current = *m.at(n - 1)
	sig.MemoryUsedMB = sig.Current.MemoryUsedMB
	sig.OfferedRPS = m.medianColumn(n, func(s *Snapshot) float64 { return s.OfferedRPS })
	sig.PhysicalReadsMedian = m.medianColumn(n, func(s *Snapshot) float64 { return s.PhysicalReads })
	sig.Latency.AvgMs = m.medianColumn(n, func(s *Snapshot) float64 { return s.AvgLatencyMs })
	m.med = grow(m.med, n)
	copy(m.med, m.p95)
	sig.Latency.P95Ms = stats.MedianInPlace(m.med)
	prev := m.at(n - 2)
	sig.Latency.PrevAvgMs = prev.AvgLatencyMs
	sig.Latency.PrevP95Ms = prev.P95LatencyMs
	if tr, err := stats.TheilSenBuf(m.xs, m.p95, m.alpha, &m.tsBuf); err == nil {
		sig.Latency.Trend = tr
	}

	for _, k := range resource.Kinds {
		wc := WaitClassFor(k)
		rs := ResourceSignals{
			PrevWaitMs:      prev.WaitMs[wc],
			PrevUtilization: prev.Utilization[k],
		}
		// One column buffer serves both the utilization and wait series:
		// the utilization trend is computed before the column is refilled
		// with waits. Medians go through the separate median scratch so the
		// column stays in chronological order for the trend fits.
		m.col = grow(m.col, n)
		for i := 0; i < n; i++ {
			m.col[i] = m.at(i).Utilization[k]
		}
		rs.Utilization = m.medianColumn(n, func(s *Snapshot) float64 { return s.Utilization[k] })
		if tr, err := stats.TheilSenBuf(m.xs, m.col, m.alpha, &m.tsBuf); err == nil {
			rs.UtilTrend = tr
		}
		for i := 0; i < n; i++ {
			m.col[i] = m.at(i).WaitMs[wc]
		}
		rs.WaitMs = m.medianColumn(n, func(s *Snapshot) float64 { return s.WaitMs[wc] })
		rs.WaitPct = m.medianColumn(n, func(s *Snapshot) float64 { return s.WaitPct(wc) })
		if tr, err := stats.TheilSenBuf(m.xs, m.col, m.alpha, &m.tsBuf); err == nil {
			rs.WaitTrend = tr
		}
		if rho, err := stats.SpearmanBuf(m.col, m.p95, &m.spear); err == nil {
			rs.WaitLatencyCorr = rho
		}
		sig.Resources[k] = rs
	}

	for _, wc := range []WaitClass{WaitLock, WaitLatch, WaitSystem} {
		sig.LogicalWaitPct[wc] = m.medianColumn(n, func(s *Snapshot) float64 { return s.WaitPct(wc) })
	}
	return sig
}

// SignalsReference recomputes the signals with the pre-optimization
// allocating implementation (fresh slices, sort-based medians, unbuffered
// Theil–Sen and Spearman). It exists as the equivalence oracle for the
// zero-allocation fast path: property tests and the fleet benchmark assert
// Signals() == SignalsReference() bit for bit. It is never cached.
func (m *Manager) SignalsReference() (Signals, bool) {
	snaps := m.AppendSnapshots(nil)
	n := len(snaps)
	if n < MinIntervalsForSignals {
		return Signals{}, false
	}
	xs := make([]float64, n) // interval indices as the trend x-axis
	avgLat := make([]float64, n)
	p95Lat := make([]float64, n)
	offered := make([]float64, n)
	physReads := make([]float64, n)
	for i, s := range snaps {
		xs[i] = float64(s.Interval)
		avgLat[i] = s.AvgLatencyMs
		p95Lat[i] = s.P95LatencyMs
		offered[i] = s.OfferedRPS
		physReads[i] = s.PhysicalReads
	}
	var sig Signals
	sig.Window = n
	sig.Quality = m.quality(n)
	sig.Current = snaps[n-1]
	sig.MemoryUsedMB = sig.Current.MemoryUsedMB
	sig.OfferedRPS = stats.MedianReference(offered)
	sig.PhysicalReadsMedian = stats.MedianReference(physReads)
	sig.Latency.AvgMs = stats.MedianReference(avgLat)
	sig.Latency.P95Ms = stats.MedianReference(p95Lat)
	sig.Latency.PrevAvgMs = avgLat[n-2]
	sig.Latency.PrevP95Ms = p95Lat[n-2]
	if tr, err := stats.TheilSenReference(xs, p95Lat, m.alpha); err == nil {
		sig.Latency.Trend = tr
	}

	for _, k := range resource.Kinds {
		wc := WaitClassFor(k)
		util := make([]float64, n)
		wait := make([]float64, n)
		pct := make([]float64, n)
		for i, s := range snaps {
			util[i] = s.Utilization[k]
			wait[i] = s.WaitMs[wc]
			pct[i] = s.WaitPct(wc)
		}
		rs := ResourceSignals{
			Utilization:     stats.MedianReference(util),
			WaitMs:          stats.MedianReference(wait),
			WaitPct:         stats.MedianReference(pct),
			PrevWaitMs:      wait[n-2],
			PrevUtilization: util[n-2],
		}
		if tr, err := stats.TheilSenReference(xs, util, m.alpha); err == nil {
			rs.UtilTrend = tr
		}
		if tr, err := stats.TheilSenReference(xs, wait, m.alpha); err == nil {
			rs.WaitTrend = tr
		}
		if rho, err := stats.SpearmanReference(wait, p95Lat); err == nil {
			rs.WaitLatencyCorr = rho
		}
		sig.Resources[k] = rs
	}

	for _, wc := range []WaitClass{WaitLock, WaitLatch, WaitSystem} {
		pct := make([]float64, n)
		for i, s := range snaps {
			pct[i] = s.WaitPct(wc)
		}
		sig.LogicalWaitPct[wc] = stats.MedianReference(pct)
	}
	return sig, true
}
