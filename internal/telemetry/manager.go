package telemetry

import (
	"daasscale/internal/resource"
	"daasscale/internal/stats"
)

// ResourceSignals summarizes one physical resource dimension over the
// manager's window: robust (median) aggregates of utilization and waits,
// the Theil–Sen trends of both, and the Spearman correlation of the
// resource's waits with latency (Section 3.2.2: strong correlation marks
// the resource as the likely bottleneck).
type ResourceSignals struct {
	// Utilization is the median fraction (0..1) of the allocation used.
	Utilization float64
	// UtilTrend is the robust trend of per-interval utilization.
	UtilTrend stats.Trend
	// WaitMs is the median per-interval wait magnitude for the resource.
	WaitMs float64
	// PrevWaitMs and PrevUtilization are the second-most-recent interval's
	// values; together with the current snapshot they form the fast
	// two-interval confirmation path for burst onsets.
	PrevWaitMs      float64
	PrevUtilization float64
	// WaitPct is the median share (0..1) of total waits attributed to the
	// resource.
	WaitPct float64
	// WaitTrend is the robust trend of per-interval wait magnitude.
	WaitTrend stats.Trend
	// WaitLatencyCorr is Spearman's ρ between the resource's waits and p95
	// latency over the window (0 when undefined).
	WaitLatencyCorr float64
}

// LatencySignals summarizes request latency over the window.
type LatencySignals struct {
	// AvgMs and P95Ms are medians of the per-interval aggregates.
	AvgMs float64
	P95Ms float64
	// PrevAvgMs and PrevP95Ms are the second-most-recent interval's
	// aggregates: together with the current snapshot they give a fast
	// two-interval confirmation path for goal violations at burst onset,
	// before the windowed median catches up.
	PrevAvgMs float64
	PrevP95Ms float64
	// Trend is the robust trend of per-interval p95 latency.
	Trend stats.Trend
}

// Signals is the telemetry manager's output for one decision point: every
// signal the demand estimator consumes.
type Signals struct {
	// Latency aggregates the latency signals.
	Latency LatencySignals
	// Resources holds per-physical-resource signals, indexed by
	// resource.Kind.
	Resources [resource.NumKinds]ResourceSignals
	// LogicalWaitPct is the median share of waits attributed to each
	// logical (non-provisionable) class; indexed by WaitClass, only the
	// lock/latch/system entries are meaningful.
	LogicalWaitPct [NumWaitClasses]float64
	// MemoryUsedMB is the most recent memory in use.
	MemoryUsedMB float64
	// PhysicalReadsMedian is the median per-interval physical reads —
	// the ballooning controller's abort signal.
	PhysicalReadsMedian float64
	// OfferedRPS is the median offered load.
	OfferedRPS float64
	// Window is the number of intervals the signals were computed over.
	Window int
	// Current is the most recent snapshot.
	Current Snapshot
}

// SteadySignals builds the Signals a manager would produce if the given
// snapshot repeated forever: medians, previous values and the current
// snapshot all equal it, and no trends are significant. Useful for
// evaluating the estimator on individual labeled observations.
func SteadySignals(s Snapshot) Signals {
	var sig Signals
	sig.Window = MinIntervalsForSignals
	sig.Current = s
	sig.MemoryUsedMB = s.MemoryUsedMB
	sig.OfferedRPS = s.OfferedRPS
	sig.PhysicalReadsMedian = s.PhysicalReads
	sig.Latency.AvgMs = s.AvgLatencyMs
	sig.Latency.P95Ms = s.P95LatencyMs
	sig.Latency.PrevAvgMs = s.AvgLatencyMs
	sig.Latency.PrevP95Ms = s.P95LatencyMs
	for _, k := range resource.Kinds {
		wc := WaitClassFor(k)
		sig.Resources[k] = ResourceSignals{
			Utilization:     s.Utilization[k],
			WaitMs:          s.WaitMs[wc],
			WaitPct:         s.WaitPct(wc),
			PrevWaitMs:      s.WaitMs[wc],
			PrevUtilization: s.Utilization[k],
		}
	}
	for _, wc := range []WaitClass{WaitLock, WaitLatch, WaitSystem} {
		sig.LogicalWaitPct[wc] = s.WaitPct(wc)
	}
	return sig
}

// Manager is the telemetry manager (Section 3): it retains a sliding window
// of per-interval snapshots and derives the robust signals used for demand
// estimation. The zero value is not usable; construct with NewManager.
type Manager struct {
	window int
	alpha  float64
	snaps  []Snapshot
}

// DefaultWindow is the number of billing intervals the manager aggregates
// over. Short enough to react within minutes, long enough for robust
// medians and trends.
const DefaultWindow = 10

// MinIntervalsForSignals is the minimum history before Signals reports.
const MinIntervalsForSignals = 3

// NewManager creates a telemetry manager with the given window (intervals).
// window < MinIntervalsForSignals is raised to the minimum.
func NewManager(window int) *Manager {
	if window < MinIntervalsForSignals {
		window = MinIntervalsForSignals
	}
	return &Manager{window: window, alpha: stats.DefaultTrendAlpha}
}

// Observe appends one billing interval's snapshot, evicting history beyond
// the window.
func (m *Manager) Observe(s Snapshot) {
	m.snaps = append(m.snaps, s)
	if len(m.snaps) > m.window {
		m.snaps = m.snaps[len(m.snaps)-m.window:]
	}
}

// ObserveRaw ingests a snapshot whose waits arrive as raw engine wait types
// (the shape a production DBMS reports, Section 3.1): the manager applies
// the classification rules and fills the snapshot's per-class wait totals
// before retaining it. Any class totals already present in s are replaced.
func (m *Manager) ObserveRaw(s Snapshot, byType map[WaitType]float64) {
	s.WaitMs = AggregateWaitTypes(byType)
	m.Observe(s)
}

// Len returns the number of retained snapshots.
func (m *Manager) Len() int { return len(m.snaps) }

// Reset clears all history (used after a container resize when the operator
// wants signals scoped to the new container).
func (m *Manager) Reset() { m.snaps = m.snaps[:0] }

// Window returns the configured window size.
func (m *Manager) Window() int { return m.window }

// Signals computes the derived signals over the retained window. ok is
// false until MinIntervalsForSignals snapshots have been observed.
func (m *Manager) Signals() (Signals, bool) {
	n := len(m.snaps)
	if n < MinIntervalsForSignals {
		return Signals{}, false
	}
	xs := make([]float64, n) // interval indices as the trend x-axis
	avgLat := make([]float64, n)
	p95Lat := make([]float64, n)
	offered := make([]float64, n)
	physReads := make([]float64, n)
	for i, s := range m.snaps {
		xs[i] = float64(s.Interval)
		avgLat[i] = s.AvgLatencyMs
		p95Lat[i] = s.P95LatencyMs
		offered[i] = s.OfferedRPS
		physReads[i] = s.PhysicalReads
	}
	var sig Signals
	sig.Window = n
	sig.Current = m.snaps[n-1]
	sig.MemoryUsedMB = sig.Current.MemoryUsedMB
	sig.OfferedRPS = stats.Median(offered)
	sig.PhysicalReadsMedian = stats.Median(physReads)
	sig.Latency.AvgMs = stats.Median(avgLat)
	sig.Latency.P95Ms = stats.Median(p95Lat)
	sig.Latency.PrevAvgMs = avgLat[n-2]
	sig.Latency.PrevP95Ms = p95Lat[n-2]
	if tr, err := stats.TheilSen(xs, p95Lat, m.alpha); err == nil {
		sig.Latency.Trend = tr
	}

	for _, k := range resource.Kinds {
		wc := WaitClassFor(k)
		util := make([]float64, n)
		wait := make([]float64, n)
		pct := make([]float64, n)
		for i, s := range m.snaps {
			util[i] = s.Utilization[k]
			wait[i] = s.WaitMs[wc]
			pct[i] = s.WaitPct(wc)
		}
		rs := ResourceSignals{
			Utilization:     stats.Median(util),
			WaitMs:          stats.Median(wait),
			WaitPct:         stats.Median(pct),
			PrevWaitMs:      wait[n-2],
			PrevUtilization: util[n-2],
		}
		if tr, err := stats.TheilSen(xs, util, m.alpha); err == nil {
			rs.UtilTrend = tr
		}
		if tr, err := stats.TheilSen(xs, wait, m.alpha); err == nil {
			rs.WaitTrend = tr
		}
		if rho, err := stats.Spearman(wait, p95Lat); err == nil {
			rs.WaitLatencyCorr = rho
		}
		sig.Resources[k] = rs
	}

	for _, wc := range []WaitClass{WaitLock, WaitLatch, WaitSystem} {
		pct := make([]float64, n)
		for i, s := range m.snaps {
			pct[i] = s.WaitPct(wc)
		}
		sig.LogicalWaitPct[wc] = stats.Median(pct)
	}
	return sig, true
}
