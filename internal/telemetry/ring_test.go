package telemetry

import (
	"math/rand"
	"reflect"
	"testing"

	"daasscale/internal/resource"
)

// randomSnapshot builds a fully-populated snapshot with noisy but finite
// values, including tied and zero columns to stress the selection kernels.
func randomSnapshot(rng *rand.Rand, interval int) Snapshot {
	var s Snapshot
	s.Interval = interval
	s.Container = "C1"
	s.Step = 1
	s.Cost = 2
	for _, k := range resource.Kinds {
		s.Utilization[k] = float64(rng.Intn(20)) / 20 // frequent ties
		s.UtilizationPeak[k] = s.Utilization[k]
	}
	for i := range s.WaitMs {
		if rng.Intn(3) == 0 {
			s.WaitMs[i] = 0 // idle classes
		} else {
			s.WaitMs[i] = rng.Float64() * 50_000
		}
	}
	s.AvgLatencyMs = 20 + rng.Float64()*100
	s.P95LatencyMs = s.AvgLatencyMs * (1.5 + rng.Float64())
	s.Transactions = rng.Float64() * 1e4
	s.OfferedRPS = rng.Float64() * 500
	s.MemoryUsedMB = rng.Float64() * 4096
	s.PhysicalReads = rng.Float64() * 1e5
	s.PhysicalWrites = rng.Float64() * 1e4
	return s
}

// TestSignalsMatchReference is the equivalence property of the tentpole:
// the zero-allocation ring-buffer fast path must be bit-identical to the
// retained pre-optimization implementation on random windows of every
// length, before and after the ring wraps.
func TestSignalsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		window := MinIntervalsForSignals + rng.Intn(12)
		m := NewManager(window)
		feed := window*2 + rng.Intn(window) // wraps the ring at least once
		for i := 0; i < feed; i++ {
			m.Observe(randomSnapshot(rng, i))
			got, okGot := m.Signals()
			want, okWant := m.SignalsReference()
			if okGot != okWant {
				t.Fatalf("trial %d interval %d: ok mismatch %v vs %v", trial, i, okGot, okWant)
			}
			if !okGot {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d interval %d (window %d): fast path diverged\n got %+v\nwant %+v",
					trial, i, window, got, want)
			}
		}
	}
}

// TestSignalsCachedBetweenObservations: repeat Signals() calls without new
// observations return the identical value, and a new observation
// invalidates the cache.
func TestSignalsCachedBetweenObservations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewManager(6)
	for i := 0; i < 8; i++ {
		m.Observe(randomSnapshot(rng, i))
	}
	first, ok := m.Signals()
	if !ok {
		t.Fatal("no signals")
	}
	again, _ := m.Signals()
	if !reflect.DeepEqual(first, again) {
		t.Fatal("cached Signals differ from the first computation")
	}
	m.Observe(randomSnapshot(rng, 8))
	after, _ := m.Signals()
	if after.Current.Interval != 8 {
		t.Fatalf("cache not invalidated: current interval = %d", after.Current.Interval)
	}
}

// TestResetRewarmMatchesFreshManager: a ring-buffer manager that has been
// used, Reset, and re-warmed must produce exactly the Signals of a freshly
// constructed manager fed the same tail of snapshots — retained arenas and
// ring state must leak nothing across Reset.
func TestResetRewarmMatchesFreshManager(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		window := MinIntervalsForSignals + rng.Intn(8)
		used := NewManager(window)
		// Dirty the manager: fill past wrap, compute signals, reset.
		for i := 0; i < window*3; i++ {
			used.Observe(randomSnapshot(rng, i))
		}
		if _, ok := used.Signals(); !ok {
			t.Fatal("no signals before reset")
		}
		used.Reset()
		if used.Len() != 0 {
			t.Fatalf("len after reset = %d", used.Len())
		}
		if _, ok := used.Signals(); ok {
			t.Fatal("signals available immediately after reset")
		}

		fresh := NewManager(window)
		tail := make([]Snapshot, window+2)
		for i := range tail {
			tail[i] = randomSnapshot(rng, 100+i)
		}
		for _, s := range tail {
			used.Observe(s)
			fresh.Observe(s)
			gotUsed, okUsed := used.Signals()
			gotFresh, okFresh := fresh.Signals()
			if okUsed != okFresh {
				t.Fatalf("trial %d: ok mismatch after reset: %v vs %v", trial, okUsed, okFresh)
			}
			if okUsed && !reflect.DeepEqual(gotUsed, gotFresh) {
				t.Fatalf("trial %d: re-warmed manager diverged from fresh manager\n got %+v\nwant %+v",
					trial, gotUsed, gotFresh)
			}
		}
	}
}

func TestAppendSnapshotsChronological(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewManager(4)
	for i := 0; i < 11; i++ {
		m.Observe(randomSnapshot(rng, i))
	}
	snaps := m.AppendSnapshots(nil)
	if len(snaps) != 4 {
		t.Fatalf("len = %d, want 4", len(snaps))
	}
	for i, s := range snaps {
		if want := 7 + i; s.Interval != want {
			t.Errorf("snaps[%d].Interval = %d, want %d", i, s.Interval, want)
		}
	}
}

// TestSignalsZeroAllocAfterWarmup is the allocation gate of the PR's
// acceptance criteria: at window 10, a warmed manager's
// Observe+Signals cycle must not touch the heap. Run by `make verify`
// (skipped under -race, whose instrumentation perturbs the counts).
func TestSignalsZeroAllocAfterWarmup(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(77))
	m := NewManager(DefaultWindow)
	snaps := make([]Snapshot, DefaultWindow*2)
	for i := range snaps {
		snaps[i] = randomSnapshot(rng, i)
	}
	for _, s := range snaps {
		m.Observe(s)
	}
	if _, ok := m.Signals(); !ok { // warm the arenas
		t.Fatal("no signals after warm-up")
	}
	next := 0
	allocs := testing.AllocsPerRun(200, func() {
		m.Observe(snaps[next%len(snaps)])
		next++
		if _, ok := m.Signals(); !ok {
			t.Fatal("signals unavailable")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Manager.Signals allocated %v times per run, want 0", allocs)
	}
}
