package telemetry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogTypesClassifyToTheirClass(t *testing.T) {
	for class, types := range KnownWaitTypes() {
		for _, wt := range types {
			if got := ClassifyWaitType(wt); got != class {
				t.Errorf("%s classified as %v, want %v", wt, got, class)
			}
		}
	}
}

func TestPrefixRules(t *testing.T) {
	cases := map[WaitType]WaitClass{
		"LCK_M_RIn_NL":         WaitLock, // not in the catalog; prefix rule
		"PAGEIOLATCH_DT":       WaitDiskIO,
		"PAGELATCH_KP":         WaitLatch,
		"LATCH_DT":             WaitLatch,
		"LOGMGR_QUEUE":         WaitLogIO,
		"RESOURCE_SEMAPHORE_X": WaitMemory,
		"SOS_WORK_DISPATCHER":  WaitCPU,
		"CXCONSUMER":           WaitCPU,
		"SOME_FUTURE_WAIT":     WaitSystem, // unknown → system, never demand
		"":                     WaitSystem,
	}
	for wt, want := range cases {
		if got := ClassifyWaitType(wt); got != want {
			t.Errorf("%q → %v, want %v", wt, got, want)
		}
	}
}

func TestClassifyCaseInsensitive(t *testing.T) {
	if got := ClassifyWaitType("lck_m_x"); got != WaitLock {
		t.Errorf("lowercase lock type → %v", got)
	}
}

func TestAggregateWaitTypes(t *testing.T) {
	byType := map[WaitType]float64{
		"LCK_M_X":             700,
		"LCK_M_S":             200,
		"PAGEIOLATCH_SH":      50,
		"WRITELOG":            30,
		"SOS_SCHEDULER_YIELD": 15,
		"UNKNOWN_THING":       5,
	}
	got := AggregateWaitTypes(byType)
	if got[WaitLock] != 900 {
		t.Errorf("lock = %v", got[WaitLock])
	}
	if got[WaitDiskIO] != 50 || got[WaitLogIO] != 30 || got[WaitCPU] != 15 || got[WaitSystem] != 5 {
		t.Errorf("aggregation wrong: %v", got)
	}
}

func TestSplitRoundTripsThroughAggregate(t *testing.T) {
	// Property: splitting a class total into types and aggregating back
	// must conserve the total within float error, entirely in that class.
	f := func(raw float64, classIdx uint8) bool {
		total := math.Abs(math.Mod(raw, 1e7))
		class := WaitClasses[int(classIdx)%NumWaitClasses]
		split := SplitClassWaits(class, total)
		agg := AggregateWaitTypes(split)
		for _, c := range WaitClasses {
			if c == class {
				if math.Abs(agg[c]-total) > 1e-6*(1+total) {
					return false
				}
			} else if agg[c] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitShapes(t *testing.T) {
	split := SplitClassWaits(WaitLock, 1000)
	if len(split) != len(KnownWaitTypes()[WaitLock]) {
		t.Fatalf("split has %d types", len(split))
	}
	// The first catalog type carries the largest share.
	if split["LCK_M_S"] <= split["LCK_M_X"] {
		t.Errorf("shares not decaying: %v", split)
	}
	if got := SplitClassWaits(WaitLock, 0); len(got) != 0 {
		t.Errorf("zero total should split to nothing: %v", got)
	}
}

func TestSteadySignals(t *testing.T) {
	var s Snapshot
	s.Interval = 7
	s.AvgLatencyMs = 40
	s.P95LatencyMs = 90
	s.OfferedRPS = 120
	s.MemoryUsedMB = 2048
	s.PhysicalReads = 333
	s.WaitMs[WaitCPU] = 600
	s.WaitMs[WaitLock] = 400
	s.Utilization[0] = 0.5

	sig := SteadySignals(s)
	if sig.Current.Interval != 7 {
		t.Errorf("current snapshot not carried: %+v", sig.Current)
	}
	if sig.Latency.P95Ms != 90 || sig.Latency.PrevP95Ms != 90 || sig.Latency.AvgMs != 40 {
		t.Errorf("latency signals: %+v", sig.Latency)
	}
	if sig.Resources[0].Utilization != 0.5 || sig.Resources[0].PrevUtilization != 0.5 {
		t.Errorf("resource signals: %+v", sig.Resources[0])
	}
	if sig.Resources[0].WaitMs != 600 || sig.Resources[0].WaitPct != 0.6 {
		t.Errorf("wait signals: %+v", sig.Resources[0])
	}
	if sig.LogicalWaitPct[WaitLock] != 0.4 {
		t.Errorf("lock share = %v", sig.LogicalWaitPct[WaitLock])
	}
	if sig.Latency.Trend.Significant {
		t.Error("steady signals must have no significant trend")
	}
	if sig.MemoryUsedMB != 2048 || sig.PhysicalReadsMedian != 333 || sig.OfferedRPS != 120 {
		t.Errorf("scalar fields: %+v", sig)
	}
}

func TestObserveRaw(t *testing.T) {
	m := NewManager(5)
	for i := 0; i < 4; i++ {
		var s Snapshot
		s.Interval = i
		s.P95LatencyMs = 50
		m.ObserveRaw(s, map[WaitType]float64{
			"LCK_M_X":        900,
			"PAGEIOLATCH_SH": 100,
		})
	}
	sig, ok := m.Signals()
	if !ok {
		t.Fatal("no signals")
	}
	if got := sig.LogicalWaitPct[WaitLock]; got != 0.9 {
		t.Errorf("lock share from raw telemetry = %v, want 0.9", got)
	}
	if got := sig.Current.WaitMs[WaitDiskIO]; got != 100 {
		t.Errorf("disk waits from raw telemetry = %v, want 100", got)
	}
}
