package telemetry

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestSanitizeValue(t *testing.T) {
	cases := []struct {
		v, fallback, want float64
		repaired          bool
	}{
		{5, 1, 5, false},
		{0, 1, 0, false},
		{-3, 1, 0, true},
		{math.NaN(), 7, 7, true},
		{math.Inf(1), 7, 7, true},
		{math.Inf(-1), 7, 7, true},
		{math.NaN(), math.NaN(), 0, true},  // non-finite fallback forced to 0
		{math.Inf(1), -4, 0, true},         // negative fallback forced to 0
		{math.NaN(), math.Inf(1), 0, true}, // infinite fallback forced to 0
	}
	for _, c := range cases {
		got, repaired := sanitizeValue(c.v, c.fallback)
		if got != c.want || repaired != c.repaired {
			t.Errorf("sanitizeValue(%v, %v) = (%v, %v), want (%v, %v)",
				c.v, c.fallback, got, repaired, c.want, c.repaired)
		}
	}
}

func TestSanitizeSnapshotRepairsAllFields(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prev := randomSnapshot(rng, 4)
	s := randomSnapshot(rng, 5)
	s.AvgLatencyMs = math.NaN()
	s.P95LatencyMs = math.Inf(1)
	s.OfferedRPS = -10
	s.WaitMs[WaitCPU] = math.NaN()
	s.Utilization[0] = math.Inf(-1)
	s.PhysicalReads = -1

	fixed := SanitizeSnapshot(&s, &prev)
	if fixed != 6 {
		t.Fatalf("fixed = %d, want 6", fixed)
	}
	if s.AvgLatencyMs != prev.AvgLatencyMs {
		t.Errorf("NaN AvgLatencyMs → %v, want previous %v", s.AvgLatencyMs, prev.AvgLatencyMs)
	}
	if s.P95LatencyMs != prev.P95LatencyMs {
		t.Errorf("Inf P95LatencyMs → %v, want previous %v", s.P95LatencyMs, prev.P95LatencyMs)
	}
	if s.OfferedRPS != 0 {
		t.Errorf("negative OfferedRPS → %v, want 0", s.OfferedRPS)
	}
	if s.WaitMs[WaitCPU] != prev.WaitMs[WaitCPU] {
		t.Errorf("NaN WaitMs → %v, want previous %v", s.WaitMs[WaitCPU], prev.WaitMs[WaitCPU])
	}
	if s.Utilization[0] != prev.Utilization[0] {
		t.Errorf("-Inf Utilization → %v, want previous %v", s.Utilization[0], prev.Utilization[0])
	}
	if s.PhysicalReads != 0 {
		t.Errorf("negative PhysicalReads → %v, want 0", s.PhysicalReads)
	}
}

func TestSanitizeSnapshotCleanIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prev := randomSnapshot(rng, 1)
	s := randomSnapshot(rng, 2)
	orig := s
	if fixed := SanitizeSnapshot(&s, &prev); fixed != 0 {
		t.Fatalf("clean snapshot reported %d repairs", fixed)
	}
	if !reflect.DeepEqual(s, orig) {
		t.Fatal("clean snapshot was modified")
	}
}

func TestSanitizeSnapshotNilPrev(t *testing.T) {
	var s Snapshot
	s.Interval = 3
	s.AvgLatencyMs = math.NaN()
	if fixed := SanitizeSnapshot(&s, nil); fixed != 1 {
		t.Fatalf("fixed = %d, want 1", fixed)
	}
	if s.AvgLatencyMs != 0 {
		t.Fatalf("NaN with nil prev → %v, want 0", s.AvgLatencyMs)
	}
	if s.Interval != 3 {
		t.Fatal("Interval index must never be touched")
	}
}

func TestQualityScore(t *testing.T) {
	var pristine Quality
	if pristine.Score() != 1 || pristine.Degraded() || pristine.Severe() {
		t.Fatalf("zero-value quality must be pristine, got %v", pristine)
	}
	clean := Quality{IntervalsSeen: 10}
	if clean.Score() != 1 {
		t.Fatalf("clean window score = %v", clean.Score())
	}
	if q := (Quality{IntervalsSeen: 10, Gaps: 10}); q.Score() != 0.5 || !q.Degraded() {
		t.Fatalf("half-missing window score = %v", q.Score())
	}
	if q := (Quality{IntervalsSeen: 10, Sanitized: 10}); q.Score() != 0 || !q.Severe() {
		t.Fatalf("fully-sanitized window score = %v", q.Score())
	}
	if q := (Quality{IntervalsSeen: 10, Duplicates: 1}); !(q.Score() < 1) || q.Severe() {
		t.Fatalf("one duplicate score = %v", q.Score())
	}
	q := Quality{IntervalsSeen: 8, Gaps: 2}
	if q.IntervalsExpected() != 10 {
		t.Fatalf("IntervalsExpected = %d", q.IntervalsExpected())
	}
	if s := q.String(); s == "" {
		t.Fatal("empty String()")
	}
	// Sanitized counts beyond the window length must not push the score
	// negative.
	if q := (Quality{IntervalsSeen: 2, Sanitized: 50}); q.Score() < 0 {
		t.Fatalf("score went negative: %v", q.Score())
	}
}

// TestObserveRawNilPreservesPrefilledWaits is the satellite bugfix: a nil
// raw wait-type map (no wait telemetry arrived) must not zero per-class
// totals already present in the snapshot.
func TestObserveRawNilPreservesPrefilledWaits(t *testing.T) {
	m := NewManager(5)
	var s Snapshot
	s.Interval = 0
	s.WaitMs[WaitCPU] = 1234
	s.WaitMs[WaitLock] = 55
	m.ObserveRaw(s, nil)
	got := m.AppendSnapshots(nil)[0]
	if got.WaitMs[WaitCPU] != 1234 || got.WaitMs[WaitLock] != 55 {
		t.Fatalf("nil byType zeroed pre-filled waits: %v", got.WaitMs)
	}
}

// TestObserveRawNonNilReplacesWaits: every non-nil map — including an empty
// one — replaces the snapshot's wait totals wholesale.
func TestObserveRawNonNilReplacesWaits(t *testing.T) {
	m := NewManager(5)
	var s Snapshot
	s.WaitMs[WaitCPU] = 1234 // stale pre-filled value
	m.ObserveRaw(s, map[WaitType]float64{
		"PAGEIOLATCH_SH": 400,
	})
	got := m.AppendSnapshots(nil)[0]
	if got.WaitMs[WaitCPU] != 0 {
		t.Fatalf("stale pre-filled CPU waits survived a non-nil map: %v", got.WaitMs)
	}
	if got.WaitMs[WaitDiskIO] != 400 {
		t.Fatalf("aggregated disk waits = %v, want 400", got.WaitMs[WaitDiskIO])
	}

	m.Reset()
	s = Snapshot{Interval: 1}
	s.WaitMs[WaitCPU] = 1234
	m.ObserveRaw(s, map[WaitType]float64{})
	got = m.AppendSnapshots(nil)[0]
	if got.TotalWaitMs() != 0 {
		t.Fatalf("empty map must mean a wait-free interval, got %v", got.WaitMs)
	}
}

// TestManagerQualityAccounting walks the delivery-order classifier through
// gaps, duplicates and out-of-order arrivals and checks the window-scoped
// counters, including ageing out after eviction and Reset.
func TestManagerQualityAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewManager(4)

	m.Observe(randomSnapshot(rng, 0))
	m.Observe(randomSnapshot(rng, 1))
	if q := m.Quality(); q != (Quality{IntervalsSeen: 2}) {
		t.Fatalf("clean deliveries: %+v", q)
	}

	m.Observe(randomSnapshot(rng, 1)) // duplicate
	if q := m.Quality(); q.Duplicates != 1 {
		t.Fatalf("duplicate not counted: %+v", q)
	}
	m.Observe(randomSnapshot(rng, 0)) // out of order
	if q := m.Quality(); q.OutOfOrder != 1 {
		t.Fatalf("out-of-order not counted: %+v", q)
	}
	m.Observe(randomSnapshot(rng, 5)) // gap of 3 (intervals 2..4 missing)
	q := m.Quality()
	if q.Gaps != 3 {
		t.Fatalf("gap = %d, want 3: %+v", q.Gaps, q)
	}
	// Window is 4: the two clean deliveries have been evicted by now.
	if q.IntervalsSeen != 4 {
		t.Fatalf("IntervalsSeen = %d, want 4", q.IntervalsSeen)
	}

	// Clean deliveries push the anomalies out of the window.
	for i := 6; i < 10; i++ {
		m.Observe(randomSnapshot(rng, i))
	}
	if q := m.Quality(); q != (Quality{IntervalsSeen: 4}) {
		t.Fatalf("quality did not recover after the channel healed: %+v", q)
	}

	m.Observe(randomSnapshot(rng, 9)) // dirty it again, then reset
	m.Reset()
	if q := m.Quality(); q != (Quality{}) {
		t.Fatalf("Reset left quality state behind: %+v", q)
	}
	// After Reset the delivery-order tracker must also restart: the first
	// observation is never a duplicate/gap relative to pre-Reset history.
	m.Observe(randomSnapshot(rng, 2))
	if q := m.Quality(); q != (Quality{IntervalsSeen: 1}) {
		t.Fatalf("first post-Reset delivery misclassified: %+v", q)
	}
}

// TestManagerGapCappedAtWindow: a clock-skewed interval index jumping far
// ahead must not report an absurd gap.
func TestManagerGapCappedAtWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewManager(5)
	m.Observe(randomSnapshot(rng, 0))
	m.Observe(randomSnapshot(rng, 1_000_000))
	if q := m.Quality(); q.Gaps != 5 {
		t.Fatalf("gap = %d, want capped at window 5", q.Gaps)
	}
}

// TestManagerSanitizesCorruptStream feeds hand-corrupted snapshots (NaN,
// Inf, negative counters) and asserts the signals stay finite and
// bit-identical to the reference implementation, with the quality counters
// reflecting the repairs.
func TestManagerSanitizesCorruptStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewManager(DefaultWindow)
	sanitized := 0
	for i := 0; i < DefaultWindow*3; i++ {
		s := randomSnapshot(rng, i)
		switch i % 4 {
		case 1:
			s.AvgLatencyMs = math.NaN()
			s.WaitMs[WaitDiskIO] = math.Inf(1)
			sanitized += 2
		case 3:
			s.OfferedRPS = -5
			sanitized++
		}
		m.Observe(s)

		got, ok := m.Signals()
		want, okRef := m.SignalsReference()
		if ok != okRef {
			t.Fatalf("interval %d: ok mismatch", i)
		}
		if !ok {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interval %d: fast path diverged from reference on corrupt stream", i)
		}
		if math.IsNaN(got.Latency.AvgMs) || math.IsInf(got.Latency.AvgMs, 0) {
			t.Fatalf("interval %d: AvgMs not finite: %v", i, got.Latency.AvgMs)
		}
		for _, rs := range got.Resources {
			if math.IsNaN(rs.WaitMs) || math.IsInf(rs.WaitMs, 0) {
				t.Fatalf("interval %d: resource WaitMs not finite", i)
			}
		}
	}
	// Window 10 with corruption every 4th interval (pattern 2+0+1+0 per 4):
	// quality must be dirty but not pristine.
	q := m.Quality()
	if q.Sanitized == 0 {
		t.Fatal("no sanitization recorded")
	}
	if q.Sanitized > sanitized {
		t.Fatalf("window-scoped Sanitized %d exceeds total repairs %d", q.Sanitized, sanitized)
	}
}

// TestSteadySignalsPristineQuality: hand-built signals must never read as
// degraded (backward compatibility for estimator unit tests and labeled
// observations).
func TestSteadySignalsPristineQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sig := SteadySignals(randomSnapshot(rng, 0))
	if sig.Quality.Degraded() {
		t.Fatalf("SteadySignals degraded: %v", sig.Quality)
	}
}
