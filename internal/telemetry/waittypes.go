package telemetry

import "strings"

// The paper (Section 3.1): "Microsoft SQL Server reports wait statistics
// categorized into more than 300 wait types. Each wait type is associated
// to a (logical or physical) resource for which the request waited. Using
// rules, we map the wait times to the resource." This file is that mapping
// layer: a catalog of engine-level wait types in SQL Server's naming style
// and the rules that classify them into the broad classes the demand
// estimator consumes.

// WaitType is an engine-level wait type name (e.g. "PAGEIOLATCH_SH").
type WaitType string

// A representative catalog of engine wait types per class. The real
// engine's list is much longer; the estimator only ever sees the classes,
// so the catalog needs to cover the rule space, not every type.
var (
	cpuWaitTypes    = []WaitType{"SOS_SCHEDULER_YIELD", "SIGNAL_WAIT", "CXPACKET", "THREADPOOL"}
	memoryWaitTypes = []WaitType{"RESOURCE_SEMAPHORE", "CMEMTHREAD", "MEMORY_ALLOCATION_EXT", "RESOURCE_SEMAPHORE_QUERY_COMPILE"}
	diskWaitTypes   = []WaitType{"PAGEIOLATCH_SH", "PAGEIOLATCH_EX", "PAGEIOLATCH_UP", "IO_COMPLETION", "ASYNC_IO_COMPLETION", "BACKUPIO"}
	logWaitTypes    = []WaitType{"WRITELOG", "LOGBUFFER", "LOG_RATE_GOVERNOR"}
	lockWaitTypes   = []WaitType{"LCK_M_S", "LCK_M_X", "LCK_M_U", "LCK_M_IS", "LCK_M_IX", "LCK_M_SCH_M"}
	latchWaitTypes  = []WaitType{"PAGELATCH_SH", "PAGELATCH_EX", "PAGELATCH_UP", "LATCH_SH", "LATCH_EX"}
	systemWaitTypes = []WaitType{"CHECKPOINT_QUEUE", "LAZYWRITER_SLEEP", "DIRTY_PAGE_POLL", "XE_TIMER_EVENT", "HADR_FILESTREAM_IOMGR_IOCOMPLETION", "SLEEP_TASK"}
)

// KnownWaitTypes returns the full catalog, classified.
func KnownWaitTypes() map[WaitClass][]WaitType {
	return map[WaitClass][]WaitType{
		WaitCPU:    append([]WaitType(nil), cpuWaitTypes...),
		WaitMemory: append([]WaitType(nil), memoryWaitTypes...),
		WaitDiskIO: append([]WaitType(nil), diskWaitTypes...),
		WaitLogIO:  append([]WaitType(nil), logWaitTypes...),
		WaitLock:   append([]WaitType(nil), lockWaitTypes...),
		WaitLatch:  append([]WaitType(nil), latchWaitTypes...),
		WaitSystem: append([]WaitType(nil), systemWaitTypes...),
	}
}

// ClassifyWaitType maps an engine wait type to its broad class using the
// paper's rule style: exact catalog membership first, then prefix rules for
// families of types, with everything unknown attributed to the system class
// (background/unclassified waits never look like resource demand).
func ClassifyWaitType(t WaitType) WaitClass {
	name := strings.ToUpper(string(t))
	for class, types := range map[WaitClass][]WaitType{
		WaitCPU: cpuWaitTypes, WaitMemory: memoryWaitTypes, WaitDiskIO: diskWaitTypes,
		WaitLogIO: logWaitTypes, WaitLock: lockWaitTypes, WaitLatch: latchWaitTypes,
		WaitSystem: systemWaitTypes,
	} {
		for _, k := range types {
			if string(k) == name {
				return class
			}
		}
	}
	switch {
	case strings.HasPrefix(name, "LCK_"):
		return WaitLock
	case strings.HasPrefix(name, "PAGEIOLATCH_"):
		return WaitDiskIO
	case strings.HasPrefix(name, "PAGELATCH_") || strings.HasPrefix(name, "LATCH_"):
		return WaitLatch
	case strings.HasPrefix(name, "LOG") || name == "WRITELOG":
		return WaitLogIO
	case strings.HasPrefix(name, "RESOURCE_SEMAPHORE") || strings.HasPrefix(name, "CMEMTHREAD"):
		return WaitMemory
	case strings.HasPrefix(name, "SOS_") || strings.HasPrefix(name, "CX"):
		return WaitCPU
	default:
		return WaitSystem
	}
}

// AggregateWaitTypes folds per-type wait times (ms) into the per-class
// totals a Snapshot carries — the telemetry manager's first transformation
// of raw telemetry.
func AggregateWaitTypes(byType map[WaitType]float64) [NumWaitClasses]float64 {
	var out [NumWaitClasses]float64
	for t, ms := range byType {
		out[ClassifyWaitType(t)] += ms
	}
	return out
}

// SplitClassWaits distributes one class's wait total across a realistic mix
// of its wait types (the inverse transformation, used by the engine
// simulator to emit raw telemetry in the shape a real DBMS reports it).
// The split is deterministic: the first type in the class's catalog gets
// the largest share, decaying geometrically.
func SplitClassWaits(class WaitClass, totalMs float64) map[WaitType]float64 {
	out := make(map[WaitType]float64, len(classCatalog(class)))
	AddClassWaits(out, class, totalMs)
	return out
}

// AddClassWaits is SplitClassWaits into a caller-owned map: the per-type
// shares are accumulated into dst without allocating a new map.
func AddClassWaits(dst map[WaitType]float64, class WaitClass, totalMs float64) {
	VisitClassWaits(class, totalMs, func(t WaitType, ms float64) { dst[t] += ms })
}

// VisitClassWaits is the zero-allocation form of SplitClassWaits: it calls
// fn once per wait type of the class with that type's share of totalMs,
// touching no map at all. The shares are computed with exactly the float
// operations AddClassWaits historically used (totalMs * share / norm per
// type), so a visitor-built map is bit-identical to the map variants. The
// engine's hot path visits instead of materializing; classes with no
// catalog or a non-positive total visit nothing.
func VisitClassWaits(class WaitClass, totalMs float64, fn func(WaitType, float64)) {
	types := classCatalog(class)
	if len(types) == 0 || totalMs <= 0 {
		return
	}
	// Geometric shares 1, 1/2, 1/4, ... normalized.
	var norm float64
	share := 1.0
	for range types {
		norm += share
		share /= 2
	}
	share = 1.0
	for _, t := range types {
		fn(t, totalMs*share/norm)
		share /= 2
	}
}

// classCatalog returns the catalog slice for one class (shared storage —
// callers must not modify it).
func classCatalog(class WaitClass) []WaitType {
	switch class {
	case WaitCPU:
		return cpuWaitTypes
	case WaitMemory:
		return memoryWaitTypes
	case WaitDiskIO:
		return diskWaitTypes
	case WaitLogIO:
		return logWaitTypes
	case WaitLock:
		return lockWaitTypes
	case WaitLatch:
		return latchWaitTypes
	case WaitSystem:
		return systemWaitTypes
	default:
		return nil
	}
}
