// Package telemetry defines the production telemetry a DaaS collects for
// each tenant container and the telemetry manager that transforms raw
// counters into the robust signals used for demand estimation (Section 3 of
// the paper): robust aggregates of latency, utilization and wait statistics,
// plus derived signals — Theil–Sen trends and Spearman correlations.
package telemetry

import (
	"fmt"

	"daasscale/internal/resource"
)

// WaitClass is a broad class of waits a tenant's requests can incur inside
// the database server. The paper maps SQL Server's 300+ wait types onto this
// set of key physical and logical resources (Section 3.1).
type WaitClass int

// The wait classes tracked per billing interval. The first four correspond
// one-to-one with the physical resource dimensions of a container; Lock,
// Latch and System are logical waits no container resize can remove.
const (
	WaitCPU WaitClass = iota
	WaitMemory
	WaitDiskIO
	WaitLogIO
	WaitLock
	WaitLatch
	WaitSystem
	numWaitClasses
)

// NumWaitClasses is the number of wait classes.
const NumWaitClasses = int(numWaitClasses)

// WaitClasses lists every wait class in canonical order.
var WaitClasses = [...]WaitClass{WaitCPU, WaitMemory, WaitDiskIO, WaitLogIO, WaitLock, WaitLatch, WaitSystem}

// String returns the conventional name of the wait class.
func (c WaitClass) String() string {
	switch c {
	case WaitCPU:
		return "cpu"
	case WaitMemory:
		return "memory"
	case WaitDiskIO:
		return "diskio"
	case WaitLogIO:
		return "logio"
	case WaitLock:
		return "lock"
	case WaitLatch:
		return "latch"
	case WaitSystem:
		return "system"
	default:
		return fmt.Sprintf("waitclass(%d)", int(c))
	}
}

// ResourceKind returns the physical resource dimension this wait class is
// attributed to, and ok=false for logical waits (lock, latch, system) that
// no container resize can satisfy.
func (c WaitClass) ResourceKind() (resource.Kind, bool) {
	switch c {
	case WaitCPU:
		return resource.CPU, true
	case WaitMemory:
		return resource.Memory, true
	case WaitDiskIO:
		return resource.DiskIO, true
	case WaitLogIO:
		return resource.LogIO, true
	default:
		return 0, false
	}
}

// WaitClassFor returns the wait class attributed to a physical resource.
func WaitClassFor(k resource.Kind) WaitClass {
	switch k {
	case resource.CPU:
		return WaitCPU
	case resource.Memory:
		return WaitMemory
	case resource.DiskIO:
		return WaitDiskIO
	case resource.LogIO:
		return WaitLogIO
	default:
		panic(fmt.Sprintf("telemetry: no wait class for kind %v", k))
	}
}

// Snapshot is the telemetry collected for one tenant over one billing
// interval: the raw material for demand estimation.
type Snapshot struct {
	// Interval is the billing-interval index since the start of the run.
	Interval int
	// Container is the SKU name of the container during the interval.
	Container string
	// Step is the container's ladder step.
	Step int
	// Cost is the monetary cost charged for the interval.
	Cost float64
	// Utilization is the fraction (0..1) of each physical resource
	// allocation the workload consumed, aggregated over the interval.
	Utilization resource.Vector
	// UtilizationPeak is the maximum per-tick utilization within the
	// interval — what a provisioner must cover to avoid within-interval
	// queueing.
	UtilizationPeak resource.Vector
	// WaitMs is the total time (ms) requests spent waiting, per wait class.
	// Many requests wait concurrently, so per-interval totals can be far
	// larger than wall-clock interval length.
	WaitMs [NumWaitClasses]float64
	// AvgLatencyMs and P95LatencyMs aggregate per-request latency.
	AvgLatencyMs float64
	P95LatencyMs float64
	// Transactions is the number of requests completed.
	Transactions float64
	// OfferedRPS is the average offered load during the interval.
	OfferedRPS float64
	// MemoryUsedMB is the memory in use at interval end (caches included).
	MemoryUsedMB float64
	// PhysicalReads and PhysicalWrites count disk I/Os during the interval.
	PhysicalReads  float64
	PhysicalWrites float64
}

// TotalWaitMs sums waits across all classes.
func (s *Snapshot) TotalWaitMs() float64 {
	var t float64
	for _, w := range s.WaitMs {
		t += w
	}
	return t
}

// WaitPct returns the share (0..1) of total waits attributed to class c, or
// 0 when there are no waits at all.
func (s *Snapshot) WaitPct(c WaitClass) float64 {
	t := s.TotalWaitMs()
	if t == 0 {
		return 0
	}
	return s.WaitMs[c] / t
}
