package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"daasscale/internal/fabric"
	"daasscale/internal/fleet"
	"daasscale/internal/resource"
	"daasscale/internal/sim"
	"daasscale/internal/stats"
	"daasscale/internal/telemetry"
)

func sampleResult() sim.Result {
	r := sim.Result{
		Policy: "Auto", Workload: "tpcc", Trace: "trace4",
		Intervals: 4, TotalCost: 120, AvgCostPerInterval: 30,
		P95Ms: 110, AvgMs: 40, Changes: 1, ChangeFraction: 0.25,
	}
	for i := 0; i < 4; i++ {
		pt := sim.IntervalPoint{
			Interval: i, Container: "C2", Step: 2, Cost: 30,
			ContainerCPUFrac: 0.0625, CPUUtilFrac: 0.01,
			OfferedRPS: 100, AvgMs: 40, P95Ms: 110, PerformanceFactor: 10,
			MemoryUsedMB: 2048, PhysicalReads: 100,
		}
		pt.WaitPct[telemetry.WaitLock] = 0.9
		pt.WaitPct[telemetry.WaitCPU] = 0.1
		r.Series = append(r.Series, pt)
	}
	return r
}

func TestComparisonTable(t *testing.T) {
	comp := sim.Comparison{GoalMs: 130, Results: []sim.Result{
		{Policy: "Max", P95Ms: 100, AvgMs: 30, AvgCostPerInterval: 270},
		{Policy: "Util", P95Ms: 120, AvgMs: 50, AvgCostPerInterval: 60},
		{Policy: "Auto", P95Ms: 110, AvgMs: 40, AvgCostPerInterval: 30},
		{Policy: "Avg", P95Ms: 500, AvgMs: 200, AvgCostPerInterval: 15},
	}}
	var buf bytes.Buffer
	ComparisonTable(&buf, "Figure 10", comp)
	out := buf.String()
	for _, want := range []string{"Figure 10", "p95 ≤ 130", "Max", "Util", "Auto", "NO", "cost ratios vs Auto:", "Util 2.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDrilldownAndWaitMix(t *testing.T) {
	var buf bytes.Buffer
	Drilldown(&buf, sampleResult(), 2)
	out := buf.String()
	if !strings.Contains(out, "C2") || !strings.Contains(out, "lock (90%)") {
		t.Errorf("drilldown missing content:\n%s", out)
	}
	buf.Reset()
	Drilldown(&buf, sampleResult(), 0) // default rows
	if !strings.Contains(buf.String(), "drill-down") {
		t.Error("default drilldown failed")
	}
	buf.Reset()
	WaitMixTable(&buf, sampleResult())
	if !strings.Contains(buf.String(), "lock") || !strings.Contains(buf.String(), "90.0%") {
		t.Errorf("wait mix missing:\n%s", buf.String())
	}
}

func TestDrilldownNaNPerformance(t *testing.T) {
	r := sampleResult()
	for i := range r.Series {
		r.Series[i].PerformanceFactor = math.NaN()
	}
	var buf bytes.Buffer
	Drilldown(&buf, r, 2)
	if !strings.Contains(buf.String(), "-") {
		t.Error("NaN performance factor should render as a dash")
	}
}

func TestFleetSummary(t *testing.T) {
	f := fleet.GenerateFleet(30, 3, 1)
	a := fleet.Analyze(f, resource.LockStepCatalog())
	var buf bytes.Buffer
	FleetSummary(&buf, a)
	out := buf.String()
	for _, want := range []string{"fleet analysis", "IEI within 60 min", "1-step resizes", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWaitDistributionTable(t *testing.T) {
	d := fleet.WaitDistributions{
		LowUtilWaitMs:   []float64{10, 20, 30},
		HighUtilWaitMs:  []float64{1000, 2000, 4000},
		LowUtilWaitPct:  []float64{0.1, 0.2, 0.1},
		HighUtilWaitPct: []float64{0.7, 0.8, 0.9},
	}
	var buf bytes.Buffer
	WaitDistributionTable(&buf, d)
	out := buf.String()
	if !strings.Contains(out, "separation") || !strings.Contains(out, "p75") {
		t.Errorf("distribution table missing content:\n%s", out)
	}
}

func TestASCIIChart(t *testing.T) {
	ys := make([]float64, 300)
	for i := range ys {
		ys[i] = float64(i % 50)
	}
	var buf bytes.Buffer
	ASCIIChart(&buf, "test chart", ys, 40, 8)
	out := buf.String()
	if !strings.Contains(out, "test chart") || !strings.Contains(out, "#") {
		t.Errorf("chart missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // title + 8 rows
		t.Errorf("chart has %d lines, want 9", len(lines))
	}
	buf.Reset()
	ASCIIChart(&buf, "empty", nil, 0, 0)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart should say so")
	}
	buf.Reset()
	ASCIIChart(&buf, "flat", []float64{5, 5, 5}, 10, 4)
	if !strings.Contains(buf.String(), "#") {
		t.Error("flat chart should still render bars")
	}
}

func TestSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := SeriesCSV(&buf, sampleResult().Series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "waitpct_lock") {
		t.Errorf("header missing wait columns: %s", lines[0])
	}
	// NaN performance factors export as empty cells.
	r := sampleResult()
	r.Series[0].PerformanceFactor = math.NaN()
	buf.Reset()
	if err := SeriesCSV(&buf, r.Series[:1]); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("NaN must not leak into CSV")
	}
}

func TestCDFTable(t *testing.T) {
	cdf := stats.CDF([]float64{5, 10, 20, 40})
	var buf bytes.Buffer
	CDFTable(&buf, "IEI", cdf, []float64{10, 60})
	out := buf.String()
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "100.0%") {
		t.Errorf("CDF table wrong:\n%s", out)
	}
}

func TestMarkdownComparison(t *testing.T) {
	comp := sim.Comparison{GoalMs: 130, Results: []sim.Result{
		{Policy: "Max", P95Ms: 100, AvgMs: 30, AvgCostPerInterval: 270},
		{Policy: "Auto", P95Ms: 110, AvgMs: 40, AvgCostPerInterval: 30},
		{Policy: "Avg", P95Ms: 500, AvgMs: 200, AvgCostPerInterval: 15},
	}}
	var buf bytes.Buffer
	MarkdownComparison(&buf, "Figure 10", comp)
	out := buf.String()
	for _, want := range []string{"## Figure 10", "| policy |", "| Max | 100.0", "✗", "Max 9.00×"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestNodeTable(t *testing.T) {
	res := sim.MultiTenantResult{
		Migrations:          4,
		RebalanceMigrations: 2,
		Refusals:            1,
		PeakClusterCPUFrac:  0.85,
		PeakWaitInflation:   1.75,
		Nodes: []sim.NodeStats{
			{
				Node: 0, Tenants: 3,
				Utilization: resource.Vector{0.85, 0.40, 0.10, 0.25},
				Pressure:    fabric.Pressure{1.20, 0.50, 0.90},
				Inflation:   fabric.Inflation{1.30, 1, 1},
			},
			{Node: 1, Tenants: 0, Inflation: fabric.NoInflation()},
		},
	}
	var buf bytes.Buffer
	NodeTable(&buf, "contended cluster", res)
	out := buf.String()
	for _, want := range []string{
		"node utilization: contended cluster",
		"buffer-pool", "log-device", "cpu-cache",
		"85.0%", "1.20", "1.30x",
		"4 migration(s) (2 by rebalancer)", "1 refusal(s)",
		"peak wait inflation 1.75x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("node table missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Errorf("node table has %d lines, want 5:\n%s", lines, out)
	}
}

func TestNodeTableNoContentionStamp(t *testing.T) {
	// Runs predating the contention stamp carry PeakWaitInflation 0; the
	// summary line must omit the inflation figure rather than print 0.00x.
	res := sim.MultiTenantResult{Nodes: []sim.NodeStats{{Node: 0}}}
	var buf bytes.Buffer
	NodeTable(&buf, "legacy", res)
	if strings.Contains(buf.String(), "peak wait inflation") {
		t.Errorf("zero-stamp run printed an inflation figure:\n%s", buf.String())
	}
}
