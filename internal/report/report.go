// Package report renders experiment results in the shape the paper reports
// them: per-policy latency/cost comparison tables (Figures 9–12), the
// drill-down series behind Figure 13, fleet-analysis summaries (Figure 2),
// wait-distribution tables (Figures 4 and 6), ASCII time-series charts, and
// CSV exports for external plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"daasscale/internal/fabric"
	"daasscale/internal/fleet"
	"daasscale/internal/loop"
	"daasscale/internal/resource"
	"daasscale/internal/sim"
	"daasscale/internal/stats"
	"daasscale/internal/telemetry"
)

// ComparisonTable writes the per-policy table of one experiment in the
// paper's format: 95th-percentile latency, average cost per billing
// interval, and resize activity.
func ComparisonTable(w io.Writer, title string, comp sim.Comparison) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "latency goal: p95 ≤ %.0f ms\n", comp.GoalMs)
	fmt.Fprintf(w, "%-6s  %12s  %12s  %14s  %8s  %7s\n",
		"policy", "p95 (ms)", "avg (ms)", "cost/interval", "changes", "meets")
	for _, r := range comp.Results {
		meets := "yes"
		if !r.MeetsGoal(comp.GoalMs) {
			meets = "NO"
		}
		fmt.Fprintf(w, "%-6s  %12.1f  %12.1f  %14.2f  %7.1f%%  %7s\n",
			r.Policy, r.P95Ms, r.AvgMs, r.AvgCostPerInterval, r.ChangeFraction*100, meets)
	}
	if auto, ok := comp.ByPolicy("Auto"); ok {
		fmt.Fprintf(w, "cost ratios vs Auto:")
		for _, r := range comp.Results {
			if r.Policy == "Auto" || auto.AvgCostPerInterval == 0 {
				continue
			}
			fmt.Fprintf(w, "  %s %.2fx", r.Policy, r.AvgCostPerInterval/auto.AvgCostPerInterval)
		}
		fmt.Fprintln(w)
	}
}

// Drilldown writes the Figure 13 view of one run: container size as a
// fraction of the server, CPU utilization, performance factor, and the
// dominant wait class, per interval (sub-sampled to at most maxRows rows).
func Drilldown(w io.Writer, r sim.Result, maxRows int) {
	if maxRows <= 0 {
		maxRows = 40
	}
	step := 1
	if len(r.Series) > maxRows {
		step = len(r.Series) / maxRows
	}
	fmt.Fprintf(w, "drill-down: %s on %s × %s\n", r.Policy, r.Workload, r.Trace)
	fmt.Fprintf(w, "%8s  %-5s  %10s  %9s  %9s  %s\n",
		"minute", "cont", "cpu-max%", "cpu-use%", "perf", "dominant wait")
	for i := 0; i < len(r.Series); i += step {
		pt := r.Series[i]
		perf := "   -"
		if !math.IsNaN(pt.PerformanceFactor) {
			perf = fmt.Sprintf("%+.0f", pt.PerformanceFactor)
		}
		fmt.Fprintf(w, "%8d  %-5s  %9.1f%%  %8.1f%%  %9s  %s\n",
			pt.Interval, pt.Container, pt.ContainerCPUFrac*100, pt.CPUUtilFrac*100,
			perf, dominantWait(pt))
	}
}

// dominantWait names the wait class with the largest share in the interval.
func dominantWait(pt sim.IntervalPoint) string {
	best := telemetry.WaitSystem
	for _, wc := range telemetry.WaitClasses {
		if pt.WaitPct[wc] > pt.WaitPct[best] {
			best = wc
		}
	}
	return fmt.Sprintf("%s (%.0f%%)", best, pt.WaitPct[best]*100)
}

// WaitMixTable writes the Figure 13(c) percentage-wait breakdown,
// aggregated over the run (median share per class).
func WaitMixTable(w io.Writer, r sim.Result) {
	fmt.Fprintf(w, "wait mix: %s on %s × %s (median share per class)\n", r.Policy, r.Workload, r.Trace)
	for _, wc := range telemetry.WaitClasses {
		xs := make([]float64, len(r.Series))
		for i, pt := range r.Series {
			xs[i] = pt.WaitPct[wc]
		}
		fmt.Fprintf(w, "  %-7s %6.1f%%\n", wc, stats.Median(xs)*100)
	}
}

// FleetSummary writes the Figure 2 analysis in the paper's terms.
func FleetSummary(w io.Writer, a fleet.Analysis) {
	fmt.Fprintf(w, "fleet analysis: %d tenants, %d change events\n", a.Tenants, a.TotalChanges)
	fmt.Fprintf(w, "  IEI within 60 min:            %5.1f%%  (paper: ≈86%%)\n", a.IEIWithin60Min*100)
	for _, m := range []float64{120, 360, 720, 1440} {
		fmt.Fprintf(w, "  IEI within %4.0f min:           %5.1f%%\n", m, stats.CDFAt(a.IEICDF, m)*100)
	}
	fmt.Fprintf(w, "  tenants ≥1 change/day:        %5.1f%%  (paper: >78%%)\n", a.FracAtLeastOnePerDay*100)
	fmt.Fprintf(w, "  tenants ≥6 changes/day:       %5.1f%%  (paper: >52%%)\n", a.FracAtLeastSixPerDay*100)
	fmt.Fprintf(w, "  tenants >24 changes/day:      %5.1f%%  (paper: ≈28%%)\n", a.FracMoreThan24PerDay*100)
	fmt.Fprintf(w, "  1-step resizes:               %5.1f%%  (paper: ≈90%%)\n", a.OneStepShare*100)
	fmt.Fprintf(w, "  ≤2-step resizes:              %5.1f%%  (paper: ≈98%%)\n", a.AtMostTwoStepsShare*100)
	fmt.Fprintf(w, "  changes/day histogram (bucket upper edges 1,2,3,6,12,24,∞):\n   ")
	for _, b := range a.ChangesPerDayHist {
		fmt.Fprintf(w, " %d", b.Count)
	}
	fmt.Fprintln(w)
}

// WaitDistributionTable writes the Figure 6 percentile view for one
// resource: wait magnitudes and percentage waits at low vs high
// utilization.
func WaitDistributionTable(w io.Writer, d fleet.WaitDistributions) {
	fmt.Fprintf(w, "wait distributions for %s (low util <30%%: %d samples, high util >70%%: %d samples)\n",
		d.Kind, len(d.LowUtilWaitMs), len(d.HighUtilWaitMs))
	fmt.Fprintf(w, "  %-12s %12s %12s\n", "percentile", "low-util ms", "high-util ms")
	for _, q := range []float64{0.5, 0.75, 0.9, 0.95} {
		fmt.Fprintf(w, "  p%-11.0f %12.0f %12.0f\n", q*100,
			stats.Quantile(d.LowUtilWaitMs, q), stats.Quantile(d.HighUtilWaitMs, q))
	}
	fmt.Fprintf(w, "  separation (high p75 / low p90): %.1fx\n", d.Separation())
	fmt.Fprintf(w, "  %%-wait medians: low %.0f%%, high %.0f%%\n",
		stats.Median(d.LowUtilWaitPct)*100, stats.Median(d.HighUtilWaitPct)*100)
}

// WaitDigestTable is the streaming counterpart of WaitDistributionTable:
// the same Figure 6 percentile view, read from a fleet.WaitDigest's
// sketches instead of sample slices.
func WaitDigestTable(w io.Writer, d *fleet.WaitDigest) {
	fmt.Fprintf(w, "wait distributions for %s (low util <30%%: %d samples, high util >70%%: %d samples)\n",
		d.Kind(), d.LowCount(), d.HighCount())
	fmt.Fprintf(w, "  %-12s %12s %12s\n", "percentile", "low-util ms", "high-util ms")
	for _, q := range []float64{0.5, 0.75, 0.9, 0.95} {
		fmt.Fprintf(w, "  p%-11.0f %12.0f %12.0f\n", q*100,
			d.LowMs().Quantile(q), d.HighMs().Quantile(q))
	}
	fmt.Fprintf(w, "  separation (high p75 / low p90): %.1fx\n", d.Separation())
	fmt.Fprintf(w, "  %%-wait medians: low %.0f%%, high %.0f%%\n",
		d.LowPct().Quantile(0.5)*100, d.HighPct().Quantile(0.5)*100)
}

// ASCIIChart renders a time series as a fixed-size ASCII chart — enough to
// eyeball the Figure 8 trace shapes and the Figure 13/14 series in a
// terminal.
func ASCIIChart(w io.Writer, title string, ys []float64, width, height int) {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 12
	}
	fmt.Fprintln(w, title)
	if len(ys) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	// Downsample to width columns (max within each bucket, so spikes stay
	// visible).
	cols := make([]float64, width)
	for c := 0; c < width; c++ {
		lo := c * len(ys) / width
		hi := (c + 1) * len(ys) / width
		if hi <= lo {
			hi = lo + 1
		}
		m := math.Inf(-1)
		for i := lo; i < hi && i < len(ys); i++ {
			if ys[i] > m {
				m = ys[i]
			}
		}
		cols[c] = m
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, v := range cols {
		minY = math.Min(minY, v)
		maxY = math.Max(maxY, v)
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		level := int((v - minY) / (maxY - minY) * float64(height-1))
		for r := 0; r <= level; r++ {
			grid[height-1-r][c] = '#'
		}
	}
	for r, row := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.1f ", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.1f ", minY)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
}

// SeriesCSV exports a run's per-interval series for external plotting.
func SeriesCSV(w io.Writer, series []sim.IntervalPoint) error {
	cw := csv.NewWriter(w)
	header := []string{"interval", "container", "step", "cost", "container_cpu_frac",
		"cpu_util_frac", "offered_rps", "avg_ms", "p95_ms", "performance_factor",
		"memory_used_mb", "physical_reads", "balloon_target_mb"}
	for _, wc := range telemetry.WaitClasses {
		header = append(header, "waitpct_"+wc.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return strconv.FormatFloat(v, 'f', 4, 64)
	}
	for _, pt := range series {
		row := []string{
			strconv.Itoa(pt.Interval), pt.Container, strconv.Itoa(pt.Step),
			f(pt.Cost), f(pt.ContainerCPUFrac), f(pt.CPUUtilFrac), f(pt.OfferedRPS),
			f(pt.AvgMs), f(pt.P95Ms), f(pt.PerformanceFactor),
			f(pt.MemoryUsedMB), f(pt.PhysicalReads), f(pt.BalloonTargetMB),
		}
		for _, wc := range telemetry.WaitClasses {
			row = append(row, f(pt.WaitPct[wc]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// NodeTable writes the per-server cluster view behind the paper's §7
// co-location analysis: how many tenants each node hosts, how full every
// resource dimension is, and how contended the shared channels are (the
// interference the residents actually run under).
func NodeTable(w io.Writer, title string, res sim.MultiTenantResult) {
	fmt.Fprintf(w, "node utilization: %s\n", title)
	fmt.Fprintf(w, "%4s  %7s", "node", "tenants")
	for _, k := range resource.Kinds {
		fmt.Fprintf(w, "  %8s", k)
	}
	for _, ch := range fabric.PressureChannels {
		fmt.Fprintf(w, "  %11s", ch)
	}
	fmt.Fprintf(w, "  %9s\n", "inflation")
	for _, n := range res.Nodes {
		fmt.Fprintf(w, "%4d  %7d", n.Node, n.Tenants)
		for _, k := range resource.Kinds {
			fmt.Fprintf(w, "  %7.1f%%", n.Utilization[k]*100)
		}
		for _, ch := range fabric.PressureChannels {
			fmt.Fprintf(w, "  %11.2f", n.Pressure[ch])
		}
		fmt.Fprintf(w, "  %8.2fx\n", n.Inflation.Max())
	}
	fmt.Fprintf(w, "cluster: %d migration(s) (%d by rebalancer), %d refusal(s), peak CPU alloc %.1f%%",
		res.Migrations, res.RebalanceMigrations, res.Refusals, res.PeakClusterCPUFrac*100)
	if res.PeakWaitInflation > 0 {
		fmt.Fprintf(w, ", peak wait inflation %.2fx", res.PeakWaitInflation)
	}
	fmt.Fprintln(w)
}

// CDFTable writes selected points of a CDF (value, cumulative fraction).
func CDFTable(w io.Writer, title string, cdf []stats.CDFPoint, at []float64) {
	fmt.Fprintln(w, title)
	for _, v := range at {
		fmt.Fprintf(w, "  ≤ %8.0f: %5.1f%%\n", v, stats.CDFAt(cdf, v)*100)
	}
}

// MarkdownComparison writes the per-policy table of one experiment as a
// GitHub-flavored markdown table — the building block for regenerating an
// EXPERIMENTS.md-style report from live runs.
func MarkdownComparison(w io.Writer, title string, comp sim.Comparison) {
	fmt.Fprintf(w, "## %s\n\n", title)
	fmt.Fprintf(w, "Latency goal: p95 ≤ %.0f ms.\n\n", comp.GoalMs)
	fmt.Fprintln(w, "| policy | p95 (ms) | avg (ms) | cost/interval | resizes | meets goal |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|")
	for _, r := range comp.Results {
		meets := "✓"
		if !r.MeetsGoal(comp.GoalMs) {
			meets = "✗"
		}
		fmt.Fprintf(w, "| %s | %.1f | %.1f | %.2f | %.1f%% | %s |\n",
			r.Policy, r.P95Ms, r.AvgMs, r.AvgCostPerInterval, r.ChangeFraction*100, meets)
	}
	if auto, ok := comp.ByPolicy("Auto"); ok && auto.AvgCostPerInterval > 0 {
		fmt.Fprintf(w, "\nCost ratios vs Auto:")
		for _, r := range comp.Results {
			if r.Policy == "Auto" {
				continue
			}
			fmt.Fprintf(w, " %s %.2f×", r.Policy, r.AvgCostPerInterval/auto.AvgCostPerInterval)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// ExplainTable renders a decision-audit trail — the `-explain` view: one
// line per interval that carried a decision event (a resize, a withheld
// interval, fault or actuation activity), each followed by the policy's
// rule-firing explanations (the estimator's §4 narrative). Quiet
// intervals are elided; maxRows caps the lines shown (0 → 60).
func ExplainTable(w io.Writer, title string, records []loop.DecisionRecord, maxRows int) {
	if maxRows <= 0 {
		maxRows = 60
	}
	fmt.Fprintf(w, "decision audit: %s\n", title)
	shown, elided := 0, 0
	for _, r := range records {
		if !explainWorthy(r) {
			elided++
			continue
		}
		if shown >= maxRows {
			elided++
			continue
		}
		shown++
		fmt.Fprintf(w, "%6d  %s\n", r.Interval, explainEvent(r))
		for _, e := range r.Explanations {
			fmt.Fprintf(w, "          · %s\n", e)
		}
	}
	if shown == 0 {
		fmt.Fprintln(w, "  (no decision events)")
	}
	if elided > 0 {
		fmt.Fprintf(w, "  (%d quiet or overflow intervals elided)\n", elided)
	}
}

// explainWorthy reports whether an interval's record carries an event
// worth a line in the audit view.
func explainWorthy(r loop.DecisionRecord) bool {
	return r.Changed || !r.Observed || len(r.Explanations) > 0 ||
		r.Faults.Total() > 0 || r.Actuation.Applied > 0 ||
		r.Actuation.Refused > 0 || r.Actuation.Expired > 0 ||
		r.Actuation.Superseded > 0
}

// explainEvent summarizes one record's decision and channel activity.
func explainEvent(r loop.DecisionRecord) string {
	var b strings.Builder
	switch {
	case !r.Observed:
		fmt.Fprintf(&b, "telemetry withheld — holding %s", r.Actual)
	case r.Changed && r.Submitted:
		fmt.Fprintf(&b, "desire %s → %s", r.Actual, r.Target)
	case r.Changed:
		fmt.Fprintf(&b, "resize %s → %s", r.Actual, r.Target)
	default:
		fmt.Fprintf(&b, "keep %s", r.Actual)
	}
	if r.BalloonTargetMB > 0 {
		fmt.Fprintf(&b, ", balloon %.0fMB", r.BalloonTargetMB)
	}
	if n := r.Faults.Total(); n > 0 {
		fmt.Fprintf(&b, "  [%d fault event(s), %d snapshot(s) delivered]", n, r.Delivered)
	}
	var acts []string
	if r.Actuation.Applied > 0 {
		acts = append(acts, fmt.Sprintf("%d applied", r.Actuation.Applied))
	}
	if r.Actuation.Refused > 0 {
		acts = append(acts, fmt.Sprintf("%d refused", r.Actuation.Refused))
	}
	if r.Actuation.Throttled > 0 {
		acts = append(acts, fmt.Sprintf("%d throttled", r.Actuation.Throttled))
	}
	if r.Actuation.TransientFailures > 0 {
		acts = append(acts, fmt.Sprintf("%d failed", r.Actuation.TransientFailures))
	}
	if r.Actuation.Superseded > 0 {
		acts = append(acts, fmt.Sprintf("%d superseded", r.Actuation.Superseded))
	}
	if r.Actuation.Expired > 0 {
		acts = append(acts, fmt.Sprintf("%d expired", r.Actuation.Expired))
	}
	if len(acts) > 0 {
		fmt.Fprintf(&b, "  [actuation: %s]", strings.Join(acts, ", "))
	}
	return b.String()
}
