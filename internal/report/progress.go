package report

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"daasscale/internal/exec"
)

// Progress renders executor throughput metrics as a single in-place
// (\r-overwritten) terminal line — the shared implementation behind the
// daas-fleet and daas-experiments -progress flags, which used to carry
// diverging copies of it. Every update pads to the widest line printed so
// far, so a shrinking line never leaves stale characters behind, and
// Finish terminates the line with a newline so subsequent output does not
// land on top of the last snapshot.
//
// Update may fire concurrently from several workers; each call writes one
// self-contained line, which keeps the output readable without locking.
type Progress struct {
	w     io.Writer
	unit  string
	round time.Duration

	width   atomic.Int64
	printed atomic.Bool
}

// NewProgress builds a printer writing to w. unit labels the task counter
// ("shards", "tasks"); round is the display granularity of the per-task
// latency quantiles.
func NewProgress(w io.Writer, unit string, round time.Duration) *Progress {
	return &Progress{w: w, unit: unit, round: round}
}

// Update renders one metrics snapshot over the previous one.
func (p *Progress) Update(st exec.Progress) {
	line := fmt.Sprintf("%d/%d %s  %.1f/s  p50 %s  p95 %s  util %.0f%%",
		st.Done, st.Total, p.unit, st.TasksPerSec,
		st.P50.Round(p.round), st.P95.Round(p.round),
		st.WorkerUtilization*100)
	width := int64(len(line))
	for {
		old := p.width.Load()
		if width <= old {
			width = old
			break
		}
		if p.width.CompareAndSwap(old, width) {
			break
		}
	}
	fmt.Fprintf(p.w, "\r%-*s", int(width), line)
	p.printed.Store(true)
}

// Hook adapts Update to the executor's OnProgress signature.
func (p *Progress) Hook() func(exec.Progress) { return p.Update }

// Finish ends the in-place line with a newline, leaving the last snapshot
// visible and the cursor on a fresh line. A no-op if nothing was printed
// (or if already finished), so it is safe to call after every phase.
func (p *Progress) Finish() {
	if p.printed.Swap(false) {
		fmt.Fprintln(p.w)
	}
}
