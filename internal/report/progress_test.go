package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"daasscale/internal/exec"
)

func TestProgressPadsShrinkingLines(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "tasks", time.Millisecond)

	p.Update(exec.Progress{Done: 12345, Total: 99999, TasksPerSec: 1234.5})
	long := buf.Len() - 1 // minus the leading \r
	buf.Reset()
	p.Update(exec.Progress{Done: 1, Total: 2})
	short := buf.String()
	if !strings.HasPrefix(short, "\r") {
		t.Fatalf("line not \\r-anchored: %q", short)
	}
	if got := len(short) - 1; got != long {
		t.Fatalf("shrinking line printed %d chars, want padded to %d", got, long)
	}
	if strings.HasSuffix(short, "%") {
		t.Fatalf("shrinking line not padded: %q", short)
	}
}

func TestProgressFinishTerminatesOnce(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "tasks", time.Millisecond)

	// Finish before any update: nothing to terminate.
	p.Finish()
	if buf.Len() != 0 {
		t.Fatalf("finish with no output wrote %q", buf.String())
	}

	p.Update(exec.Progress{Done: 1, Total: 2})
	buf.Reset()
	p.Finish()
	p.Finish() // idempotent
	if got := buf.String(); got != "\n" {
		t.Fatalf("finish wrote %q, want one newline", got)
	}
}
