// Package budget implements the budget manager (Section 5 of the paper):
// an online allocation of a tenant's budget B over a budgeting period of n
// billing intervals, adapted from the token-bucket algorithm used for
// traffic shaping in computer networks.
//
// The bucket has depth D (maximum burst), fill rate TR (tokens added per
// interval) and initial tokens TI. At any instant the tokens in the bucket
// are the available budget Bi for the next interval. Two initialization
// strategies are provided:
//
//   - Aggressive: TI = D = B − (n−1)·Cmin, TR = Cmin. The tenant can burst
//     immediately, at the risk of being pinned to the cheapest container if
//     a long burst drains the bucket early.
//   - Conservative: TI = K·Cmax, TR = (B − TI)/(n−1). Bursts early in the
//     period are limited to about K intervals of the most expensive
//     container plus saved surplus; more budget is preserved for later.
//
// Both settings guarantee ΣCi ≤ B and Bi ≥ Cmin for every interval,
// provided the caller never charges more than Available().
package budget

import (
	"fmt"
	"math"
)

// Strategy selects the token-bucket initialization.
type Strategy int

const (
	// Aggressive starts the period with a full bucket (TI = D).
	Aggressive Strategy = iota
	// Conservative starts with TI = K·Cmax and a correspondingly higher
	// fill rate, limiting early bursts.
	Conservative
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Aggressive:
		return "aggressive"
	case Conservative:
		return "conservative"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Manager allocates a budgeting-period budget across billing intervals.
type Manager struct {
	total      float64
	n          int
	cmin, cmax float64
	strategy   Strategy

	depth  float64 // D: bucket capacity (max burst)
	fill   float64 // TR: tokens added per interval
	tokens float64 // current bucket level = available budget Bi

	interval int
	spent    float64
}

// New creates a budget manager for budget total over n billing intervals,
// where cmin and cmax are the costs per interval of the cheapest and most
// expensive containers. k is used only by the Conservative strategy (the
// number of max-cost intervals the initial allocation permits); the service
// administrator sets it from production telemetry (the paper's guidance).
func New(strategy Strategy, total float64, n int, cmin, cmax float64, k int) (*Manager, error) {
	if n < 2 {
		return nil, fmt.Errorf("budget: budgeting period must span at least 2 intervals, got %d", n)
	}
	if cmin <= 0 || cmax < cmin {
		return nil, fmt.Errorf("budget: invalid container cost range [%v, %v]", cmin, cmax)
	}
	if total < float64(n)*cmin {
		return nil, fmt.Errorf("budget: total %v cannot cover %d intervals of the cheapest container (%v)", total, n, cmin)
	}
	m := &Manager{total: total, n: n, cmin: cmin, cmax: cmax, strategy: strategy}
	m.depth = total - float64(n-1)*cmin
	switch strategy {
	case Aggressive:
		m.fill = cmin
		m.tokens = m.depth
	case Conservative:
		if k < 1 {
			return nil, fmt.Errorf("budget: conservative strategy requires k ≥ 1, got %d", k)
		}
		ti := float64(k) * cmax
		if ti > m.depth {
			ti = m.depth // cannot start above the burst cap
		}
		if ti < cmin {
			ti = cmin
		}
		m.fill = (total - ti) / float64(n-1)
		if m.fill < cmin {
			// The fill rate must at least cover the cheapest container;
			// redistribute from the initial allocation.
			m.fill = cmin
			ti = total - float64(n-1)*cmin
		}
		m.tokens = ti
	default:
		return nil, fmt.Errorf("budget: unknown strategy %v", strategy)
	}
	return m, nil
}

// Unlimited returns a manager that never constrains spending (the paper's
// default when a tenant specifies no budget): Available is +Inf and Charge
// only tracks the total spent.
func Unlimited() *Manager {
	return &Manager{total: math.Inf(1), n: math.MaxInt32, tokens: math.Inf(1), depth: math.Inf(1)}
}

// Available returns Bi, the budget available for the next billing interval.
func (m *Manager) Available() float64 { return m.tokens }

// Charge records the cost of the interval just completed and refreshes the
// bucket for the next one. cost must not exceed the Available() value that
// was in force when the interval's container was chosen; violations are
// reported as an error (and clamped, so the invariant ΣCi ≤ B still holds
// in release use).
func (m *Manager) Charge(cost float64) error {
	var err error
	if cost > m.tokens+1e-9 {
		err = fmt.Errorf("budget: charge %v exceeds available %v", cost, m.tokens)
		cost = m.tokens
	}
	if cost < 0 {
		err = fmt.Errorf("budget: negative charge %v", cost)
		cost = 0
	}
	m.spent += cost
	m.tokens -= cost
	m.interval++
	if m.interval < m.n {
		m.tokens = math.Min(m.depth, m.tokens+m.fill)
	}
	return err
}

// Spent returns the total charged so far in the period.
func (m *Manager) Spent() float64 { return m.spent }

// Interval returns the number of completed billing intervals.
func (m *Manager) Interval() int { return m.interval }

// Total returns the period budget B (+Inf for Unlimited).
func (m *Manager) Total() float64 { return m.total }

// FillRate returns TR.
func (m *Manager) FillRate() float64 { return m.fill }

// Depth returns D.
func (m *Manager) Depth() float64 { return m.depth }

// Remaining returns the budget not yet spent.
func (m *Manager) Remaining() float64 { return m.total - m.spent }
