package budget

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStrategyString(t *testing.T) {
	if Aggressive.String() != "aggressive" || Conservative.String() != "conservative" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() != "strategy(9)" {
		t.Error("unknown strategy name wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Aggressive, 100, 1, 7, 270, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := New(Aggressive, 100, 10, 0, 270, 1); err == nil {
		t.Error("cmin=0 should fail")
	}
	if _, err := New(Aggressive, 100, 10, 7, 5, 1); err == nil {
		t.Error("cmax<cmin should fail")
	}
	if _, err := New(Aggressive, 50, 10, 7, 270, 1); err == nil {
		t.Error("budget below n*cmin should fail")
	}
	if _, err := New(Conservative, 1000, 10, 7, 270, 0); err == nil {
		t.Error("conservative k=0 should fail")
	}
	if _, err := New(Strategy(7), 1000, 10, 7, 270, 1); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestAggressiveInitialization(t *testing.T) {
	// Paper: TR = Cmin, D = B − (n−1)·Cmin, TI = D.
	m, err := New(Aggressive, 1000, 10, 7, 270, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantDepth := 1000 - 9*7.0
	if m.Depth() != wantDepth {
		t.Errorf("depth = %v, want %v", m.Depth(), wantDepth)
	}
	if m.FillRate() != 7 {
		t.Errorf("fill = %v, want 7", m.FillRate())
	}
	if m.Available() != wantDepth {
		t.Errorf("initial tokens = %v, want full bucket %v", m.Available(), wantDepth)
	}
}

func TestConservativeInitialization(t *testing.T) {
	// TI = K·Cmax, TR = (B − TI)/(n−1).
	m, err := New(Conservative, 2000, 11, 7, 270, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Available() != 540 {
		t.Errorf("initial tokens = %v, want 540", m.Available())
	}
	if got, want := m.FillRate(), (2000.0-540)/10; math.Abs(got-want) > 1e-9 {
		t.Errorf("fill = %v, want %v", got, want)
	}
}

func TestConservativeClampsInitialTokens(t *testing.T) {
	// K·Cmax above the burst cap must clamp to D.
	m, err := New(Conservative, 200, 10, 7, 270, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Available() > m.Depth() {
		t.Errorf("initial tokens %v above depth %v", m.Available(), m.Depth())
	}
	// Fill must still cover the cheapest container.
	if m.FillRate() < 7 {
		t.Errorf("fill %v below cmin", m.FillRate())
	}
}

func TestBudgetNeverExceededAggressive(t *testing.T) {
	// Greedy spender: always uses the most expensive affordable container.
	const B, n = 1000.0, 20
	m, err := New(Aggressive, B, n, 7, 270, 0)
	if err != nil {
		t.Fatal(err)
	}
	costs := []float64{7, 15, 30, 45, 60, 90, 120, 160, 200, 240, 270}
	for i := 0; i < n; i++ {
		avail := m.Available()
		if avail < 7-1e-9 {
			t.Fatalf("interval %d: available %v below cmin", i, avail)
		}
		spend := 7.0
		for _, c := range costs {
			if c <= avail {
				spend = c
			}
		}
		if err := m.Charge(spend); err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
	}
	if m.Spent() > B+1e-9 {
		t.Errorf("spent %v exceeds budget %v", m.Spent(), B)
	}
	if m.Interval() != n {
		t.Errorf("intervals = %d", m.Interval())
	}
}

func TestSustainedBurstDrainsToCmin(t *testing.T) {
	// The paper's aggressive-case analysis: a sustained burst of the
	// largest container empties the bucket after about m intervals, after
	// which only the cheapest container is affordable.
	const B, n = 1000.0, 50
	m, _ := New(Aggressive, B, n, 7, 270, 0)
	drainedAt := -1
	for i := 0; i < n; i++ {
		avail := m.Available()
		spend := 7.0
		if avail >= 270 {
			spend = 270
		}
		if spend == 7 && drainedAt < 0 {
			drainedAt = i
		}
		m.Charge(spend)
	}
	if drainedAt < 2 || drainedAt > 5 {
		// m ≈ (B − (n−m)·Cmin)/Cmax ≈ (1000 − 47·7)/270 ≈ 2.5 → drained by
		// the 3rd–4th interval.
		t.Errorf("bucket drained at interval %d, want ≈3", drainedAt)
	}
	if m.Spent() > B+1e-9 {
		t.Errorf("spent %v exceeds budget", m.Spent())
	}
}

func TestConservativeLimitsEarlyBurst(t *testing.T) {
	const B, n = 2000.0, 40
	agg, _ := New(Aggressive, B, n, 7, 270, 0)
	con, _ := New(Conservative, B, n, 7, 270, 2)
	burst := func(m *Manager, intervals int) float64 {
		var total float64
		for i := 0; i < intervals; i++ {
			avail := m.Available()
			spend := 7.0
			if avail >= 270 {
				spend = 270
			}
			total += spend
			m.Charge(spend)
		}
		return total
	}
	a := burst(agg, 5)
	c := burst(con, 5)
	if c >= a {
		t.Errorf("conservative early burst %v should be below aggressive %v", c, a)
	}
	// Conservative initial allocation permits about K=2 max intervals.
	if c > 2*270+5*7+200 {
		t.Errorf("conservative burst %v too generous", c)
	}
}

func TestChargeErrors(t *testing.T) {
	m, _ := New(Aggressive, 200, 10, 7, 270, 0)
	if err := m.Charge(1e6); err == nil {
		t.Error("overcharge should error")
	}
	if m.Spent() > 200 {
		t.Errorf("overcharge must be clamped: spent %v", m.Spent())
	}
	if err := m.Charge(-5); err == nil {
		t.Error("negative charge should error")
	}
}

func TestUnlimited(t *testing.T) {
	m := Unlimited()
	if !math.IsInf(m.Available(), 1) {
		t.Errorf("unlimited available = %v", m.Available())
	}
	for i := 0; i < 100; i++ {
		if err := m.Charge(270); err != nil {
			t.Fatalf("unlimited charge: %v", err)
		}
	}
	if m.Spent() != 27000 {
		t.Errorf("spent = %v", m.Spent())
	}
	if !math.IsInf(m.Available(), 1) {
		t.Error("unlimited should never drain")
	}
}

func TestBudgetInvariantProperty(t *testing.T) {
	// For any random admissible spending sequence under either strategy:
	// ΣCi ≤ B and Bi ≥ Cmin at every decision point.
	f := func(seed int64, conservative bool) bool {
		rng := rand.New(rand.NewSource(seed))
		const cmin, cmax = 7.0, 270.0
		n := 10 + rng.Intn(50)
		total := float64(n)*cmin + rng.Float64()*3000
		var m *Manager
		var err error
		if conservative {
			m, err = New(Conservative, total, n, cmin, cmax, 1+rng.Intn(4))
		} else {
			m, err = New(Aggressive, total, n, cmin, cmax, 0)
		}
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			avail := m.Available()
			if avail < cmin-1e-9 {
				return false
			}
			spend := cmin + rng.Float64()*(math.Min(avail, cmax)-cmin)
			if m.Charge(spend) != nil {
				return false
			}
		}
		return m.Spent() <= total+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRemaining(t *testing.T) {
	m, _ := New(Aggressive, 500, 10, 7, 270, 0)
	m.Charge(100)
	if got := m.Remaining(); got != 400 {
		t.Errorf("remaining = %v", got)
	}
}
