package fabric

import (
	"math"
	"testing"

	"daasscale/internal/resource"
)

// flatCap is a convenient test capacity: 100 units in every dimension, so
// allocation fractions read directly as percentages.
var flatCap = resource.Vector{100, 100, 100, 100}

// box builds a container with the given allocation in every dimension.
func box(name string, units float64) resource.Container {
	return resource.Container{
		Name:  name,
		Alloc: resource.Vector{units, units, units, units},
		Cost:  1,
	}
}

func TestPressureChannelNames(t *testing.T) {
	cases := map[PressureChannel]struct {
		name    string
		backing resource.Kind
	}{
		ChannelBufferPool: {"buffer-pool", resource.Memory},
		ChannelLogDevice:  {"log-device", resource.LogIO},
		ChannelCPUCache:   {"cpu-cache", resource.CPU},
	}
	for ch, want := range cases {
		if ch.String() != want.name {
			t.Errorf("%d.String() = %q, want %q", ch, ch.String(), want.name)
		}
		if ch.Backing() != want.backing {
			t.Errorf("%s.Backing() = %v, want %v", ch, ch.Backing(), want.backing)
		}
	}
	if got := PressureChannel(7).String(); got != "pressurechannel(7)" {
		t.Errorf("unknown channel name = %q", got)
	}
}

func TestContentionValidate(t *testing.T) {
	bad := []Contention{
		{ShareFrac: [NumPressureChannels]float64{-0.1, 0, 0}},
		{ShareFrac: [NumPressureChannels]float64{0, 1.5, 0}},
		{ShareFrac: [NumPressureChannels]float64{0, 0, math.NaN()}},
		{Slope: -1},
		{Slope: math.NaN()},
		{MaxInflation: 0.5},
		{MaxInflation: math.NaN()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, c)
		}
	}
	good := []Contention{
		{},
		{Enable: true},
		{Enable: true, ShareFrac: [NumPressureChannels]float64{0.5, 0.5, 0.5}, Slope: 2, MaxInflation: 3},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
	f := mustFabric(t, 1, FirstFit)
	if err := f.SetContention(Contention{Slope: -1}); err == nil {
		t.Error("SetContention accepted an invalid model")
	}
}

func TestContentionDefaults(t *testing.T) {
	c := Contention{Enable: true}.withDefaults()
	if c.ShareFrac[ChannelBufferPool] != 0.70 || c.ShareFrac[ChannelLogDevice] != 0.60 || c.ShareFrac[ChannelCPUCache] != 0.80 {
		t.Errorf("default share fractions = %v", c.ShareFrac)
	}
	if c.Slope != 1.5 || c.MaxInflation != 4 {
		t.Errorf("default slope/cap = %v/%v", c.Slope, c.MaxInflation)
	}
}

// TestInflationMath pins the interference function itself: pressure is
// allocation over the effective shared capacity, inflation grows linearly
// in overcommit and saturates at the cap.
func TestInflationMath(t *testing.T) {
	f, err := New(1, flatCap, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetContention(Contention{
		Enable:       true,
		ShareFrac:    [NumPressureChannels]float64{0.5, 0.5, 0.5},
		Slope:        2,
		MaxInflation: 3,
	}); err != nil {
		t.Fatal(err)
	}
	// Empty node: zero pressure, identity inflation.
	if p := f.ServerPressure(0); p != (Pressure{}) {
		t.Errorf("empty node pressure = %v", p)
	}
	if inf := f.ServerInflation(0); inf != NoInflation() {
		t.Errorf("empty node inflation = %v", inf)
	}
	// 40 of 100 units: pressure 40/(0.5×100) = 0.8 on every channel —
	// below saturation, still identity.
	if err := f.Place("a", box("b40", 40)); err != nil {
		t.Fatal(err)
	}
	for _, ch := range PressureChannels {
		if got := f.ServerPressure(0)[ch]; got != 0.8 {
			t.Errorf("%s pressure = %v, want 0.8", ch, got)
		}
	}
	if inf := f.ServerInflation(0); inf != NoInflation() {
		t.Errorf("undercommitted node inflation = %v", inf)
	}
	// 75 total: pressure 1.5, overcommit 0.5 → inflation 1 + 2×0.5 = 2.
	if err := f.Place("b", box("b35", 35)); err != nil {
		t.Fatal(err)
	}
	for _, ch := range PressureChannels {
		if got := f.ServerInflation(0)[ch]; got != 2 {
			t.Errorf("%s inflation = %v, want 2", ch, got)
		}
	}
	// 100 total: pressure 2.0, linear value 3 would equal the cap; push to
	// it and verify saturation.
	if err := f.Place("c", box("b25", 25)); err != nil {
		t.Fatal(err)
	}
	for _, ch := range PressureChannels {
		if got := f.ServerInflation(0)[ch]; got != 3 {
			t.Errorf("%s inflation = %v, want cap 3", ch, got)
		}
	}
}

// TestInflationDisabledIsIdentity: with the model off, inflation is the
// identity no matter how packed the node is, while pressure stays
// reportable under the default share fractions.
func TestInflationDisabledIsIdentity(t *testing.T) {
	f, err := New(1, flatCap, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Place("a", box("full", 100)); err != nil {
		t.Fatal(err)
	}
	if inf := f.ServerInflation(0); inf != NoInflation() {
		t.Errorf("disabled model inflated: %v", inf)
	}
	if p := f.ServerPressure(0)[ChannelBufferPool]; p != 100/(0.70*100) {
		t.Errorf("disabled model pressure = %v, want the default-share view", p)
	}
	inf, node, ok := f.TenantInflation("a")
	if !ok || node != 0 || inf != NoInflation() {
		t.Errorf("TenantInflation = %v node %d ok %v", inf, node, ok)
	}
}

// TestTenantInflationExcludesSelf is the noisy-*neighbor* property: a
// tenant is inflated by its neighbors' allocation only, so a tenant alone
// on an overcommitted node suffers nothing while the node-level view still
// reports the full-sum pressure.
func TestTenantInflationExcludesSelf(t *testing.T) {
	f, err := New(1, flatCap, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetContention(Contention{
		Enable:       true,
		ShareFrac:    [NumPressureChannels]float64{0.5, 0.5, 0.5},
		Slope:        2,
		MaxInflation: 10,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Place("big", box("b80", 80)); err != nil {
		t.Fatal(err)
	}
	// Node-level: pressure 1.6, inflation 2.2. Tenant-level: no neighbors,
	// identity.
	if got := f.ServerInflation(0)[ChannelBufferPool]; got != 2.2 {
		t.Errorf("node inflation = %v, want 2.2", got)
	}
	if inf, _, _ := f.TenantInflation("big"); inf != NoInflation() {
		t.Errorf("lone tenant inflated by itself: %v", inf)
	}
	// Add a small neighbor: big sees only the 10 units (pressure 0.2 →
	// identity); small sees big's 80 units (pressure 1.6 → inflation 2.2).
	if err := f.Place("small", box("b10", 10)); err != nil {
		t.Fatal(err)
	}
	if inf, _, _ := f.TenantInflation("big"); inf != NoInflation() {
		t.Errorf("big inflated by a tiny neighbor: %v", inf)
	}
	inf, node, ok := f.TenantInflation("small")
	if !ok || node != 0 {
		t.Fatalf("small not resolved: node %d ok %v", node, ok)
	}
	for _, ch := range PressureChannels {
		if inf[ch] != 2.2 {
			t.Errorf("small %s inflation = %v, want 2.2", ch, inf[ch])
		}
	}
	p, _, _ := f.TenantPressure("small")
	if p[ChannelCPUCache] != 1.6 {
		t.Errorf("small neighbor pressure = %v, want 1.6", p[ChannelCPUCache])
	}
	// Unknown tenant.
	if _, node, ok := f.TenantInflation("ghost"); ok || node != -1 {
		t.Errorf("ghost resolved to node %d ok %v", node, ok)
	}
}

func TestInflationMaxAndChannels(t *testing.T) {
	inf := Inflation{1.25, 3, 1}
	if inf.Max() != 3 {
		t.Errorf("Max = %v", inf.Max())
	}
	if NoInflation().Max() != 1 {
		t.Errorf("identity Max = %v", NoInflation().Max())
	}
	if len(PressureChannels) != NumPressureChannels {
		t.Error("channel list out of sync")
	}
}
