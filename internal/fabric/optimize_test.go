package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// tightModel is an interference model on 100-unit nodes where a neighbor
// sum above 50 units starts inflating (ShareFrac 0.5), at 2× the
// overcommit: a 60-unit neighbor imposes ×1.4, a full 100-unit neighborhood
// ×3. A tenant alone is never inflated.
func tightModel() Contention {
	return Contention{
		Enable:       true,
		ShareFrac:    [NumPressureChannels]float64{0.5, 0.5, 0.5},
		Slope:        2,
		MaxInflation: 10,
	}
}

func contendedFabric(t *testing.T, servers int) *Fabric {
	t.Helper()
	f, err := New(servers, flatCap, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetContention(tightModel()); err != nil {
		t.Fatal(err)
	}
	return f
}

// applyPlan executes a plan against the fabric the way the cluster runner
// does — through Migrate — and validates after every move.
func applyPlan(t *testing.T, f *Fabric, plan Plan) {
	t.Helper()
	for _, mv := range plan.Moves {
		if err := f.Migrate(mv.Tenant, mv.To); err != nil {
			t.Fatalf("executing %+v: %v", mv, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("after %+v: %v", mv, err)
		}
	}
}

// TestRebalanceRestoresPredictedGoals: a 60- and a 40-unit tenant
// co-located on node 0 leave the smaller one predicted over goal while
// node 1 sits empty. The plan must separate them, and executing it must
// leave every tenant's predicted p95 within goal.
func TestRebalanceRestoresPredictedGoals(t *testing.T) {
	f := contendedFabric(t, 2)
	if err := f.Place("a", box("b40", 40)); err != nil {
		t.Fatal(err)
	}
	if err := f.Place("b", box("b40x", 40)); err != nil {
		t.Fatal(err)
	}
	// Grow a to 60 in place (80 + 20 delta fits the 100-unit node).
	if _, err := f.Resize("a", box("b60", 60)); err != nil {
		t.Fatal(err)
	}
	goals := []TenantGoal{
		{ID: "a", GoalMs: 100, BaselineP95Ms: 80},
		{ID: "b", GoalMs: 100, BaselineP95Ms: 80},
	}
	// a(60) + b(40) on node 0: a sees 40/50 = 0.8 (identity, within goal);
	// b sees 60/50 = 1.2 → inflation 1.4 → predicted 112 > 100: violated.
	plan := f.Rebalance(goals)
	if len(plan.Moves) == 0 {
		t.Fatal("rebalance planned no moves on a violated node")
	}
	applyPlan(t, f, plan)
	for _, g := range goals {
		inf, _, ok := f.TenantInflation(g.ID)
		if !ok {
			t.Fatalf("tenant %s unplaced after plan", g.ID)
		}
		if pred := g.BaselineP95Ms * inf.Max(); pred > g.GoalMs {
			t.Errorf("tenant %s predicted p95 %.1f still over goal %v", g.ID, pred, g.GoalMs)
		}
	}
	if f.Migrations() == 0 {
		t.Error("plan execution did not count fabric migrations")
	}
}

// TestRebalanceNoViolationNoMoves: loose goals never trigger moves, no
// matter the pressure.
func TestRebalanceNoViolationNoMoves(t *testing.T) {
	f := contendedFabric(t, 2)
	f.Place("a", box("b60", 60))
	f.Place("b", box("b40", 40))
	plan := f.Rebalance([]TenantGoal{
		{ID: "a", GoalMs: 10000, BaselineP95Ms: 80},
		{ID: "b", GoalMs: 10000, BaselineP95Ms: 80},
	})
	if len(plan.Moves) != 0 {
		t.Errorf("moves planned without violations: %+v", plan.Moves)
	}
	// Unconstrained tenants (no goal, no baseline) behave the same.
	plan = f.Rebalance([]TenantGoal{{ID: "a"}, {ID: "b"}})
	if len(plan.Moves) != 0 {
		t.Errorf("moves planned for unconstrained tenants: %+v", plan.Moves)
	}
}

// TestRebalanceRefusesHarmfulReceivers: the only alternative node hosts a
// fragile resident, so the planner must leave the violation in place
// rather than relocate it. The heavy mover a would push c over goal as a
// receiver-side resident; the violated tenant b would push itself over
// goal next to c. Neither move is legal.
func TestRebalanceRefusesHarmfulReceivers(t *testing.T) {
	f := contendedFabric(t, 2)
	f.Place("a", box("b60", 60))  // node 0
	f.Place("b", box("b40", 40))  // node 0: b violated (sees a's 60 → ×1.4)
	f.Place("c", box("b60c", 60)) // node 1 (node 0 is full)
	goals := []TenantGoal{
		// a tolerates any inflation here (baseline 10) but its 60 units
		// would inflate c past goal: c's 99 × 1.4 = 138.6 > 100.
		{ID: "a", GoalMs: 100, BaselineP95Ms: 10},
		// b would violate itself next to c: 80 × 1.4 = 112 > 100.
		{ID: "b", GoalMs: 100, BaselineP95Ms: 80},
		{ID: "c", GoalMs: 100, BaselineP95Ms: 99},
	}
	plan := f.Rebalance(goals)
	for _, mv := range plan.Moves {
		if mv.To == 1 {
			t.Errorf("planner moved %s onto the fragile node: %+v", mv.Tenant, mv)
		}
	}
}

// TestOptimizePacksFewestNodes: three small tenants spread over three
// nodes consolidate onto one when goals allow, and stay put when the
// co-location would break a goal.
func TestOptimizePacksFewestNodes(t *testing.T) {
	f := contendedFabric(t, 3)
	f.Place("a", box("b20a", 20))
	f.Place("b", box("b20b", 20))
	f.Place("c", box("b20c", 20))
	f.Migrate("b", 1)
	f.Migrate("c", 2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	loose := []TenantGoal{
		{ID: "a", GoalMs: 10000, BaselineP95Ms: 50},
		{ID: "b", GoalMs: 10000, BaselineP95Ms: 50},
		{ID: "c", GoalMs: 10000, BaselineP95Ms: 50},
	}
	plan := f.Optimize(loose)
	if plan.NodesBefore != 3 || plan.NodesAfter != 1 {
		t.Fatalf("pack %d → %d nodes, want 3 → 1 (moves %+v)", plan.NodesBefore, plan.NodesAfter, plan.Moves)
	}
	applyPlan(t, f, plan)
	used := 0
	for _, s := range f.Servers() {
		if s.TenantCount() > 0 {
			used++
		}
	}
	if used != 1 {
		t.Errorf("tenants on %d nodes after executing the pack plan", used)
	}
}

func TestOptimizeRespectsGoals(t *testing.T) {
	f := contendedFabric(t, 2)
	f.Place("a", box("b40a", 40))
	f.Place("b", box("b40b", 40))
	f.Migrate("b", 1)
	// Co-locating the two 40s gives each a neighbor pressure of 40/50 = 0.8
	// → identity, so a pack IS allowed with these sizes; make them heavy
	// enough that co-location inflates (60 each: neighbor 60/50 = 1.2 →
	// ×1.4) and the goals forbid it.
	f.Resize("a", box("b60a", 60))
	f.Resize("b", box("b60b", 60))
	tight := []TenantGoal{
		{ID: "a", GoalMs: 100, BaselineP95Ms: 80},
		{ID: "b", GoalMs: 100, BaselineP95Ms: 80},
	}
	plan := f.Optimize(tight)
	if len(plan.Moves) != 0 {
		t.Errorf("pack planned goal-breaking moves: %+v", plan.Moves)
	}
}

// TestOptimizeCommitsOnlyFullDrains: a donor whose residents cannot all
// relocate contributes no moves at all — no half-drained nodes.
func TestOptimizeCommitsOnlyFullDrains(t *testing.T) {
	f := contendedFabric(t, 2)
	// Node 0: one 70-unit tenant. Node 1: 50 + 20. Draining node 0 fails
	// (70 doesn't fit next to 70 total on node 1); draining node 1 fails on
	// the 50 (50+70 > 100) even though the 20 would fit.
	f.Place("x", box("b70", 70))
	f.Place("y", box("b50", 50))
	f.Place("z", box("b20", 20))
	f.Migrate("y", 1)
	f.Migrate("z", 1)
	loose := []TenantGoal{{ID: "x"}, {ID: "y"}, {ID: "z"}}
	plan := f.Optimize(loose)
	if len(plan.Moves) != 0 {
		t.Errorf("partial drain escaped the rollback: %+v", plan.Moves)
	}
	if plan.NodesBefore != 2 || plan.NodesAfter != 2 {
		t.Errorf("node count %d → %d, want 2 → 2", plan.NodesBefore, plan.NodesAfter)
	}
}

// TestPlannersArePureAndDeterministic: planning never mutates the fabric,
// and the same state yields byte-identical plans every time.
func TestPlannersArePureAndDeterministic(t *testing.T) {
	f := contendedFabric(t, 3)
	f.Place("a", box("b60", 60))
	f.Place("b", box("b40", 40))
	f.Place("c", box("b20", 20))
	f.Migrate("c", 1)
	goals := []TenantGoal{
		{ID: "a", GoalMs: 100, BaselineP95Ms: 80},
		{ID: "b", GoalMs: 100, BaselineP95Ms: 80},
		{ID: "c", GoalMs: 100, BaselineP95Ms: 80},
	}
	before := map[string]int{}
	for id := range f.placement {
		before[id] = f.placement[id]
	}
	p1 := f.Rebalance(goals)
	p2 := f.Rebalance(goals)
	o1 := f.Optimize(goals)
	o2 := f.Optimize(goals)
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("Rebalance not deterministic: %+v vs %+v", p1, p2)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Errorf("Optimize not deterministic: %+v vs %+v", o1, o2)
	}
	for id, idx := range before {
		if f.placement[id] != idx {
			t.Errorf("planning moved tenant %s: %d → %d", id, idx, f.placement[id])
		}
	}
	if f.Migrations() != 0 {
		t.Errorf("planning counted %d migrations", f.Migrations())
	}
}

func TestMigrateSemantics(t *testing.T) {
	f := contendedFabric(t, 2)
	f.Place("a", box("b60", 60))
	f.Place("b", box("b60b", 60)) // lands on node 1: node 0 lacks room
	if s, _ := f.ServerOf("b"); s.ID != 1 {
		t.Fatalf("fixture: b on node %d", s.ID)
	}
	// Same-node move: no-op, not counted.
	if err := f.Migrate("a", 0); err != nil {
		t.Errorf("same-node migrate errored: %v", err)
	}
	if f.Migrations() != 0 {
		t.Errorf("no-op move counted: %d", f.Migrations())
	}
	// Overfull destination: refused, wrapped in ErrRefused, not counted as
	// a resize refusal.
	err := f.Migrate("a", 1)
	if !errors.Is(err, ErrRefused) {
		t.Errorf("overfull migrate error = %v, want ErrRefused", err)
	}
	if f.Refusals() != 0 {
		t.Errorf("migrate refusal leaked into resize refusals: %d", f.Refusals())
	}
	// Unknown tenant / bad server.
	if err := f.Migrate("ghost", 0); err == nil || errors.Is(err, ErrRefused) {
		t.Errorf("unplaced migrate error = %v", err)
	}
	if err := f.Migrate("a", 7); err == nil {
		t.Error("out-of-range server accepted")
	}
}

// TestFabricInvariantUnderContentionChurn extends the churn property to
// the contention-era surface: randomized place/resize/remove interleaved
// with planner runs whose moves execute through Migrate, with the
// interference model installed. Validate must hold after every operation.
func TestFabricInvariantUnderContentionChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		policy := PlacementPolicy(rng.Intn(5))
		f, err := New(2+rng.Intn(3), serverCap, policy)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SetContention(Contention{
			Enable:       true,
			ShareFrac:    [NumPressureChannels]float64{0.2 + rng.Float64()*0.7, 0.2 + rng.Float64()*0.7, 0.2 + rng.Float64()*0.7},
			Slope:        rng.Float64() * 3,
			MaxInflation: 1 + rng.Float64()*5,
		}); err != nil {
			t.Fatal(err)
		}
		live := map[string]bool{}
		next := 0
		goals := func() []TenantGoal {
			var gs []TenantGoal
			for id := range live {
				gs = append(gs, TenantGoal{
					ID:            id,
					GoalMs:        50 + rng.Float64()*200,
					BaselineP95Ms: 20 + rng.Float64()*200,
				})
			}
			return gs
		}
		for op := 0; op < 200; op++ {
			switch rng.Intn(5) {
			case 0: // place
				id := fmt.Sprintf("t%d", next)
				next++
				if f.Place(id, cat.AtStep(rng.Intn(cat.LadderLen()))) == nil {
					live[id] = true
				}
			case 1: // resize
				for id := range live {
					f.Resize(id, cat.AtStep(rng.Intn(cat.LadderLen())))
					break
				}
			case 2: // remove
				for id := range live {
					if f.Remove(id) == nil {
						delete(live, id)
					}
					break
				}
			case 3: // rebalance and execute
				for _, mv := range f.Rebalance(goals()).Moves {
					if err := f.Migrate(mv.Tenant, mv.To); err != nil && !errors.Is(err, ErrRefused) {
						t.Fatalf("trial %d op %d: migrate %+v: %v", trial, op, mv, err)
					}
				}
			case 4: // pack and execute
				for _, mv := range f.Optimize(goals()).Moves {
					if err := f.Migrate(mv.Tenant, mv.To); err != nil && !errors.Is(err, ErrRefused) {
						t.Fatalf("trial %d op %d: migrate %+v: %v", trial, op, mv, err)
					}
				}
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("trial %d op %d (%v): %v", trial, op, policy, err)
			}
		}
	}
}
