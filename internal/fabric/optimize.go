package fabric

import (
	"sort"

	"daasscale/internal/resource"
)

// The goal-preserving placement optimizer. Two entry points, both pure
// planners over the fabric's current placement (no mutation — plans
// execute through Migrate, routed through the actuation channel by the
// cluster runner so every move is failable and charged):
//
//   - Rebalance moves tenants off over-pressured nodes until every
//     tenant's *predicted* p95 is back within its goal (or no move can
//     improve things), spreading onto the least-loaded nodes first.
//   - Optimize packs tenants onto the fewest nodes subject to the same
//     goal constraint: a node is drained only if every resident can be
//     relocated without pushing any tenant — mover or receiver-side
//     resident — past its goal.
//
// Predicted p95 under a hypothetical placement is the tenant's
// contention-free baseline times the dominant channel inflation its
// *neighbors* on the destination would impose (the node sum minus the
// tenant's own container, matching TenantInflation): the engine inflates
// wait classes multiplicatively, so baseline × inflation is the
// model-consistent first-order prediction. Tenants without a goal
// (GoalMs 0) or without an observed baseline never constrain a move;
// capacity always does.
//
// Both planners are deterministic: servers are scanned by index, tenants
// in sorted order, and every ranking breaks ties toward the lower ID.

// TenantGoal feeds the optimizer one tenant's latency contract and its
// observed contention-free p95 baseline (the last measured p95 with the
// inflation active at measurement time divided out).
type TenantGoal struct {
	// ID names the tenant; it must be placed on the fabric.
	ID string
	// GoalMs is the tenant's p95 goal (0 = no goal; never constrains).
	GoalMs float64
	// BaselineP95Ms is the tenant's contention-free p95 estimate (0 = no
	// observation yet; never constrains).
	BaselineP95Ms float64
}

// Move is one planned migration.
type Move struct {
	Tenant string
	From   int
	To     int
}

// Plan is an optimizer result: the moves, in execution order, and the
// node-count effect the planner predicts.
type Plan struct {
	Moves       []Move
	NodesBefore int
	NodesAfter  int
}

// planState is the optimizer's scratch model of the cluster: allocation
// sums and resident sets per server, mutable without touching the fabric.
type planState struct {
	f       *Fabric
	alloc   []resource.Vector
	tenants [][]string     // per server, sorted tenant IDs
	where   map[string]int // tenant → server index
	size    map[string]resource.Vector
	goals   map[string]TenantGoal
}

func (f *Fabric) newPlanState(goals []TenantGoal) *planState {
	st := &planState{
		f:       f,
		alloc:   make([]resource.Vector, len(f.servers)),
		tenants: make([][]string, len(f.servers)),
		where:   make(map[string]int, len(f.placement)),
		size:    make(map[string]resource.Vector, len(f.placement)),
		goals:   make(map[string]TenantGoal, len(goals)),
	}
	for i, s := range f.servers {
		st.alloc[i] = s.Allocated()
		st.tenants[i] = s.Tenants() // sorted
		for id, c := range s.tenants {
			st.where[id] = i
			st.size[id] = c.Alloc
		}
	}
	for _, g := range goals {
		st.goals[g.ID] = g
	}
	return st
}

// inflation returns the hypothetical node-level inflation of server i
// under the scratch allocation (full sum; used only to rank violated
// nodes, not to judge individual tenants).
func (st *planState) inflation(i int) Inflation {
	return st.f.inflationOf(st.f.pressureOf(st.alloc[i], st.f.servers[i].Capacity))
}

// multFor is the dominant inflation multiplier a tenant would suffer on
// server i with neighbor allocation neigh.
func (st *planState) multFor(neigh resource.Vector, i int) float64 {
	return st.f.inflationOf(st.f.pressureOf(neigh, st.f.servers[i].Capacity)).Max()
}

// tenantMult is the dominant multiplier tenant id suffers as a resident of
// server i under the scratch allocation: its neighbors' sum, own container
// excluded.
func (st *planState) tenantMult(id string, i int) float64 {
	return st.multFor(st.alloc[i].Sub(st.size[id]), i)
}

// fits reports whether server i can take an extra allocation.
func (st *planState) fits(i int, alloc resource.Vector) bool {
	return st.f.servers[i].Capacity.Dominates(st.alloc[i].Add(alloc))
}

// withinGoal reports whether the tenant's predicted p95 under inflation
// mult stays within its goal. Tenants without goal or baseline are never
// constrained.
func (st *planState) withinGoal(id string, mult float64) bool {
	g, ok := st.goals[id]
	if !ok || g.GoalMs <= 0 || g.BaselineP95Ms <= 0 {
		return true
	}
	return g.BaselineP95Ms*mult <= g.GoalMs
}

// goalViolated reports whether any resident of server i would exceed its
// goal under the scratch state.
func (st *planState) goalViolated(i int) bool {
	for _, id := range st.tenants[i] {
		if !st.withinGoal(id, st.tenantMult(id, i)) {
			return true
		}
	}
	return false
}

// receiverOK reports whether placing the tenant on server dst keeps every
// resident of dst — the mover included — within goal. The mover's
// neighbors after the move are exactly dst's current residents; each
// current resident gains the mover as a neighbor.
func (st *planState) receiverOK(id string, dst int) bool {
	if !st.withinGoal(id, st.multFor(st.alloc[dst], dst)) {
		return false
	}
	next := st.alloc[dst].Add(st.size[id])
	for _, other := range st.tenants[dst] {
		if !st.withinGoal(other, st.multFor(next.Sub(st.size[other]), dst)) {
			return false
		}
	}
	return true
}

// move applies one move to the scratch state.
func (st *planState) move(id string, dst int) Move {
	src := st.where[id]
	st.alloc[src] = st.alloc[src].Sub(st.size[id])
	st.alloc[dst] = st.alloc[dst].Add(st.size[id])
	st.tenants[src] = removeSorted(st.tenants[src], id)
	st.tenants[dst] = insertSorted(st.tenants[dst], id)
	st.where[id] = dst
	return Move{Tenant: id, From: src, To: dst}
}

// nodesUsed counts servers hosting at least one tenant.
func (st *planState) nodesUsed() int {
	n := 0
	for _, ts := range st.tenants {
		if len(ts) > 0 {
			n++
		}
	}
	return n
}

func removeSorted(ss []string, id string) []string {
	i := sort.SearchStrings(ss, id)
	if i < len(ss) && ss[i] == id {
		return append(ss[:i], ss[i+1:]...)
	}
	return ss
}

func insertSorted(ss []string, id string) []string {
	i := sort.SearchStrings(ss, id)
	ss = append(ss, "")
	copy(ss[i+1:], ss[i:])
	ss[i] = id
	return ss
}

// dominantShare is the tenant's largest normalized demand on any channel
// of server i — the ranking used to move the heaviest contributor first.
func (st *planState) dominantShare(id string, i int) float64 {
	capa := st.f.servers[i].Capacity
	best := 0.0
	for _, ch := range PressureChannels {
		k := ch.Backing()
		if capa[k] > 0 {
			if frac := st.size[id][k] / capa[k]; frac > best {
				best = frac
			}
		}
	}
	return best
}

// Rebalance plans migrations that restore every resident tenant's
// predicted p95 to within its goal. It scans the most-pressured violated
// node, moves its heaviest channel contributor to the least-loaded node
// that can take it goal-preservingly, and repeats until no violation
// remains or no move improves one. The fabric is not mutated.
func (f *Fabric) Rebalance(goals []TenantGoal) Plan {
	st := f.newPlanState(goals)
	plan := Plan{NodesBefore: st.nodesUsed()}
	// Each iteration either fixes or gives up on one violated node; bound
	// the walk generously so a pathological model cannot loop.
	maxMoves := 4 * len(st.where)
	stuck := make(map[string]bool)
	for len(plan.Moves) <= maxMoves {
		// The violated node with the highest dominant inflation, lower
		// index on ties.
		worst, worstMult := -1, 0.0
		for i := range st.tenants {
			if len(st.tenants[i]) == 0 || !st.goalViolated(i) {
				continue
			}
			if m := st.inflation(i).Max(); m > worstMult {
				worst, worstMult = i, m
			}
		}
		if worst < 0 {
			break
		}
		// Candidate movers: residents by descending dominant channel
		// share (heaviest contributor first), lower ID on ties, skipping
		// tenants already found unmovable.
		movers := append([]string(nil), st.tenants[worst]...)
		sort.SliceStable(movers, func(a, b int) bool {
			return st.dominantShare(movers[a], worst) > st.dominantShare(movers[b], worst)
		})
		moved := false
		for _, id := range movers {
			if stuck[id] {
				continue
			}
			// Receivers: every other server, least dominant-headroom-used
			// first (spread), lower index on ties.
			dst := st.pickReceiver(id, worst, false)
			if dst < 0 {
				stuck[id] = true
				continue
			}
			plan.Moves = append(plan.Moves, st.move(id, dst))
			moved = true
			break
		}
		if !moved {
			// Nothing on the worst node can move: the violation is not
			// fixable by migration (every receiver refuses). Give up on
			// this node by marking all residents stuck; if every violated
			// node is stuck the loop ends.
			allStuck := true
			for _, id := range st.tenants[worst] {
				if !stuck[id] {
					allStuck = false
				}
			}
			if allStuck {
				break
			}
		}
	}
	plan.NodesAfter = st.nodesUsed()
	return plan
}

// pickReceiver chooses the destination server for a tenant: capacity must
// fit and the move must keep everyone on the receiver within goal. pack
// selects densest-first (Optimize); otherwise emptiest-first (Rebalance).
// Ties break to the lower index via strict inequality on an in-order scan.
func (st *planState) pickReceiver(id string, exclude int, pack bool) int {
	best, bestScore := -1, 0.0
	for i := range st.tenants {
		if i == exclude || !st.fits(i, st.size[id]) || !st.receiverOK(id, i) {
			continue
		}
		score := dominantUsedFrac(st.alloc[i], st.f.servers[i].Capacity)
		if best < 0 || (pack && score > bestScore) || (!pack && score < bestScore) {
			best, bestScore = i, score
		}
	}
	return best
}

// dominantUsedFrac is the largest allocated fraction across dimensions.
func dominantUsedFrac(alloc, capacity resource.Vector) float64 {
	best := 0.0
	for _, k := range resource.Kinds {
		if capacity[k] > 0 {
			if frac := alloc[k] / capacity[k]; frac > best {
				best = frac
			}
		}
	}
	return best
}

// Optimize plans migrations that pack the tenants onto the fewest nodes
// subject to every tenant's predicted p95 staying within goal: the
// emptiest nodes are drained one at a time, each resident moved to the
// densest other node that can take it goal-preservingly, and a node's
// drain is committed only when every resident could be relocated. The
// fabric is not mutated.
func (f *Fabric) Optimize(goals []TenantGoal) Plan {
	st := f.newPlanState(goals)
	plan := Plan{NodesBefore: st.nodesUsed()}
	// Donor order: fewest residents first (cheapest to drain), then lower
	// dominant fill, then lower index.
	donors := make([]int, 0, len(st.tenants))
	for i := range st.tenants {
		if len(st.tenants[i]) > 0 {
			donors = append(donors, i)
		}
	}
	sort.SliceStable(donors, func(a, b int) bool {
		da, db := donors[a], donors[b]
		if len(st.tenants[da]) != len(st.tenants[db]) {
			return len(st.tenants[da]) < len(st.tenants[db])
		}
		fa := dominantUsedFrac(st.alloc[da], st.f.servers[da].Capacity)
		fb := dominantUsedFrac(st.alloc[db], st.f.servers[db].Capacity)
		if fa != fb {
			return fa < fb
		}
		return da < db
	})
	for _, donor := range donors {
		if len(st.tenants[donor]) == 0 {
			continue // drained into earlier in this pass
		}
		// Tentatively drain the donor: big residents first (hardest to
		// place), committing only if everyone relocates.
		trial := append([]string(nil), st.tenants[donor]...)
		sort.SliceStable(trial, func(a, b int) bool {
			return st.dominantShare(trial[a], donor) > st.dominantShare(trial[b], donor)
		})
		var moves []Move
		ok := true
		for _, id := range trial {
			dst := st.pickReceiver(id, donor, true)
			if dst < 0 {
				ok = false
				break
			}
			moves = append(moves, st.move(id, dst))
		}
		if ok {
			plan.Moves = append(plan.Moves, moves...)
			continue
		}
		// Roll the partial drain back.
		for i := len(moves) - 1; i >= 0; i-- {
			st.move(moves[i].Tenant, moves[i].From)
		}
	}
	plan.NodesAfter = st.nodesUsed()
	return plan
}
