package fabric

import (
	"fmt"
	"math"

	"daasscale/internal/resource"
)

// Noisy-neighbor interference model. The additive capacity invariant (the
// sum of container allocations on a server never exceeds its capacity)
// models the *promised* isolation of the container abstraction, but real
// co-located tenants also share substrates the container boundary cannot
// partition cleanly: the buffer-pool's memory bandwidth, the log device's
// write head, and the CPU's last-level cache. URSA's capacity-planning
// framing (PAPERS.md) treats this contention as first-order: an
// over-packed node inflates every resident tenant's waits even while the
// allocation sums still "fit".
//
// The model here is deliberately simple and deterministic. Each server
// exposes three shared pressure channels, each backed by one resource
// dimension of the allocation vector. A channel's *effective* shared
// capacity is a configured fraction of the server's nominal capacity in
// the backing dimension (the substrate saturates before the allocation sum
// does). Pressure is the allocated demand over that effective capacity;
// overcommit is the part of pressure above 1; and the per-tenant
// wait-inflation multiplier grows linearly in overcommit up to a cap:
//
//	pressure[ch]  = allocated[backing(ch)] / (ShareFrac[ch] × capacity[backing(ch)])
//	inflation[ch] = min(MaxInflation, 1 + Slope × max(0, pressure[ch] − 1))
//
// A tenant suffers the pressure its *neighbors* put on the node — its own
// allocation is excluded from the sum it is inflated by, so a tenant alone
// on a node is never contended no matter how large its container. That is
// what makes the neighbor noisy: per-tenant inflation uses the node
// allocation minus the tenant's own container, while the node-level
// pressure and inflation reported for operators use the full sum. The
// function is a pure function of the server's allocation cache (exact
// integral sums, maintained in the serial apply phase), so it is
// bit-identical at any worker count.

// PressureChannel identifies one shared substrate of a database server.
type PressureChannel int

// The shared channels, each backed by one allocation dimension.
const (
	// ChannelBufferPool is the shared buffer-pool / memory-bandwidth
	// substrate, backed by the Memory dimension. Overcommit stalls page
	// accesses (WaitMemory).
	ChannelBufferPool PressureChannel = iota
	// ChannelLogDevice is the shared log device, backed by the LogIO
	// dimension. Overcommit inflates log-write service and waits
	// (WaitLogIO).
	ChannelLogDevice
	// ChannelCPUCache is the CPU cache-interference proxy, backed by the
	// CPU dimension. Overcommit inflates per-instruction service time and
	// CPU queueing (WaitCPU).
	ChannelCPUCache

	// NumPressureChannels is the number of shared channels.
	NumPressureChannels = 3
)

// PressureChannels lists the channels in canonical order.
var PressureChannels = [NumPressureChannels]PressureChannel{
	ChannelBufferPool, ChannelLogDevice, ChannelCPUCache,
}

// String names the channel.
func (c PressureChannel) String() string {
	switch c {
	case ChannelBufferPool:
		return "buffer-pool"
	case ChannelLogDevice:
		return "log-device"
	case ChannelCPUCache:
		return "cpu-cache"
	default:
		return fmt.Sprintf("pressurechannel(%d)", int(c))
	}
}

// Backing returns the allocation dimension the channel draws on.
func (c PressureChannel) Backing() resource.Kind {
	switch c {
	case ChannelBufferPool:
		return resource.Memory
	case ChannelLogDevice:
		return resource.LogIO
	default:
		return resource.CPU
	}
}

// Pressure is a server's per-channel demand over effective shared
// capacity. 1.0 means the channel is exactly saturated; above 1.0 the
// residents interfere.
type Pressure [NumPressureChannels]float64

// Inflation is a server's per-channel wait-inflation multiplier (≥ 1; all
// ones when the node is uncontended or the model is disabled).
type Inflation [NumPressureChannels]float64

// NoInflation is the identity multiplier vector.
func NoInflation() Inflation { return Inflation{1, 1, 1} }

// Max returns the dominant (largest) channel multiplier — the scalar used
// when a single "how contended is this node" number is needed, e.g. for
// predicted-p95 checks in the placement optimizer.
func (i Inflation) Max() float64 {
	m := i[0]
	for k := 1; k < NumPressureChannels; k++ {
		if i[k] > m {
			m = i[k]
		}
	}
	return m
}

// Contention configures the interference model. The zero value disables
// it entirely: inflation is identity everywhere and the fabric behaves
// exactly as the historical additive model (the zero-contention
// equivalence runs pin this bit-for-bit).
type Contention struct {
	// Enable turns the model on.
	Enable bool
	// ShareFrac is, per channel, the fraction of the server's nominal
	// capacity in the backing dimension that the shared substrate
	// actually provides. Below 1, dense packing saturates the shared
	// channel before the additive invariant does. Zero entries take the
	// defaults (buffer pool 0.70, log device 0.60, CPU cache 0.80).
	ShareFrac [NumPressureChannels]float64
	// Slope is the inflation multiplier gained per unit of overcommit
	// (0 → 1.5).
	Slope float64
	// MaxInflation caps the per-channel multiplier (0 → 4).
	MaxInflation float64
}

// Enabled reports whether the model is on.
func (c Contention) Enabled() bool { return c.Enable }

// DefaultShareFrac returns the default effective-capacity fraction of a
// channel.
func DefaultShareFrac(ch PressureChannel) float64 {
	switch ch {
	case ChannelBufferPool:
		return 0.70
	case ChannelLogDevice:
		return 0.60
	default: // ChannelCPUCache
		return 0.80
	}
}

// withDefaults resolves zero knobs.
func (c Contention) withDefaults() Contention {
	for _, ch := range PressureChannels {
		if c.ShareFrac[ch] == 0 {
			c.ShareFrac[ch] = DefaultShareFrac(ch)
		}
	}
	if c.Slope == 0 {
		c.Slope = 1.5
	}
	if c.MaxInflation == 0 {
		c.MaxInflation = 4
	}
	return c
}

// Validate rejects non-finite or out-of-range knobs.
func (c Contention) Validate() error {
	for _, ch := range PressureChannels {
		f := c.ShareFrac[ch]
		if math.IsNaN(f) || f < 0 || f > 1 {
			return fmt.Errorf("fabric: contention ShareFrac[%s] must be in [0,1], got %v", ch, f)
		}
	}
	if math.IsNaN(c.Slope) || c.Slope < 0 {
		return fmt.Errorf("fabric: contention Slope must be ≥ 0, got %v", c.Slope)
	}
	if math.IsNaN(c.MaxInflation) || (c.MaxInflation != 0 && c.MaxInflation < 1) {
		return fmt.Errorf("fabric: contention MaxInflation must be ≥ 1 (or 0 for the default), got %v", c.MaxInflation)
	}
	return nil
}

// SetContention installs the interference model on the fabric. Call once,
// before the run; the model must validate.
func (f *Fabric) SetContention(c Contention) error {
	if err := c.Validate(); err != nil {
		return err
	}
	f.cont = c
	f.contResolved = c.withDefaults()
	return nil
}

// ContentionModel returns the installed model (zero value when none).
func (f *Fabric) ContentionModel() Contention { return f.cont }

// pressureOf computes the channel pressures for an allocation sum against
// a capacity, under the fabric's resolved model (defaults when none was
// installed — pressure is a useful report quantity even with the model
// off; inflation is identity then).
func (f *Fabric) pressureOf(alloc, capacity resource.Vector) Pressure {
	m := f.contResolved
	if !m.Enabled() {
		m = Contention{}.withDefaults()
	}
	var p Pressure
	for _, ch := range PressureChannels {
		k := ch.Backing()
		eff := m.ShareFrac[ch] * capacity[k]
		if eff > 0 {
			p[ch] = alloc[k] / eff
		}
	}
	return p
}

// inflationOf maps channel pressures to wait-inflation multipliers. The
// identity vector when the model is disabled.
func (f *Fabric) inflationOf(p Pressure) Inflation {
	inf := NoInflation()
	if !f.cont.Enabled() {
		return inf
	}
	m := f.contResolved
	for _, ch := range PressureChannels {
		if over := p[ch] - 1; over > 0 {
			v := 1 + m.Slope*over
			if v > m.MaxInflation {
				v = m.MaxInflation
			}
			inf[ch] = v
		}
	}
	return inf
}

// ServerPressure returns server i's current channel pressures.
func (f *Fabric) ServerPressure(i int) Pressure {
	s := f.servers[i]
	return f.pressureOf(s.Allocated(), s.Capacity)
}

// ServerInflation returns server i's current wait-inflation multipliers
// over the full allocation sum (identity when the model is disabled or the
// node is uncontended). This is the operator-facing node view; residents
// individually suffer TenantInflation, which excludes their own container.
func (f *Fabric) ServerInflation(i int) Inflation {
	return f.inflationOf(f.ServerPressure(i))
}

// TenantPressure returns the pressure the tenant's neighbors put on its
// node's shared channels — the node allocation minus the tenant's own
// container — and the index of its hosting server.
func (f *Fabric) TenantPressure(tenantID string) (Pressure, int, bool) {
	idx, ok := f.placement[tenantID]
	if !ok {
		return Pressure{}, -1, false
	}
	s := f.servers[idx]
	neigh := s.Allocated().Sub(s.tenants[tenantID].Alloc)
	return f.pressureOf(neigh, s.Capacity), idx, true
}

// TenantInflation returns the inflation the tenant currently suffers from
// its neighbors and the index of its hosting server. A tenant alone on a
// node always gets the identity vector.
func (f *Fabric) TenantInflation(tenantID string) (Inflation, int, bool) {
	p, idx, ok := f.TenantPressure(tenantID)
	if !ok {
		return NoInflation(), -1, false
	}
	return f.inflationOf(p), idx, true
}
