// Package fabric implements the DaaS management fabric of the paper's
// Figure 3: a cluster of database servers, each hosting a set of tenant
// containers, with the fabric deciding co-location and executing the
// container resize operations the auto-scaling logic issues ("the model
// issues a container resize command to the management fabric of the DaaS
// which then executes the resize operation").
//
// The fabric guarantees the resource-isolation invariant behind the
// container abstraction: the sum of container allocations on a server never
// exceeds the server's capacity. A resize is executed in place when the
// hosting server has headroom and by migrating the tenant to another server
// otherwise; if no server can host the requested container, the resize is
// refused and the tenant keeps its current container.
package fabric

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"daasscale/internal/resource"
)

// ErrRefused is the sentinel wrapped by every resize the fabric cannot
// satisfy — no server in the cluster can host the requested container.
// Callers branch with errors.Is(err, ErrRefused) to distinguish a refusal
// (the tenant keeps its container, a retry may succeed once the cluster
// changes) from a genuine fault such as resizing an unplaced tenant.
var ErrRefused = errors.New("fabric: resize refused")

// PlacementPolicy selects the server for a new or migrating tenant among
// those with room.
type PlacementPolicy int

// Placement policies.
const (
	// FirstFit picks the lowest-numbered server with room.
	FirstFit PlacementPolicy = iota
	// BestFit picks the server whose normalized dominant-resource headroom
	// after placement is smallest (dense packing across every dimension,
	// fewest servers touched).
	BestFit
	// WorstFit picks the server whose normalized dominant-resource
	// headroom after placement is largest (load balancing, most room for
	// future growth in place).
	WorstFit
	// BestFitCPU and WorstFitCPU are the historical scorers: they rank by
	// raw CPU headroom only, ignoring the other dimensions, so memory- or
	// IO-heavy containers pack badly. Retained so the golden and
	// zero-contention equivalence runs can reproduce the old packing
	// decisions exactly.
	BestFitCPU
	WorstFitCPU
)

// String names the policy.
func (p PlacementPolicy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	case BestFitCPU:
		return "best-fit-cpu"
	case WorstFitCPU:
		return "worst-fit-cpu"
	default:
		return fmt.Sprintf("placementpolicy(%d)", int(p))
	}
}

// Server is one database server hosting tenant containers.
type Server struct {
	// ID identifies the server within the cluster.
	ID int
	// Capacity is the server's total resources.
	Capacity resource.Vector

	tenants map[string]resource.Container
	// alloc caches the sum of hosted container allocations, maintained
	// incrementally on place/remove/resize. Catalog allocations are
	// integral floats whose sums stay far below 2^53, so every add and
	// subtract is exact and the cache is bit-identical to a recomputation
	// in any order (Validate recomputes and checks). Placement scans call
	// Fits once per server, which made the per-call map walk the cluster
	// hot path's dominant fabric cost.
	alloc resource.Vector
}

// newServer creates an empty server.
func newServer(id int, capacity resource.Vector) *Server {
	return &Server{ID: id, Capacity: capacity, tenants: make(map[string]resource.Container)}
}

// Allocated returns the sum of hosted container allocations.
func (s *Server) Allocated() resource.Vector {
	return s.alloc
}

// recomputeAllocated sums the hosted allocations from scratch — the
// invariant checks' independent view of the cached sum.
func (s *Server) recomputeAllocated() resource.Vector {
	var sum resource.Vector
	for _, c := range s.tenants {
		sum = sum.Add(c.Alloc)
	}
	return sum
}

// Headroom returns the capacity not yet promised to containers.
func (s *Server) Headroom() resource.Vector {
	return s.Capacity.Sub(s.Allocated())
}

// Fits reports whether an additional allocation would respect the server's
// capacity.
func (s *Server) Fits(alloc resource.Vector) bool {
	return s.Capacity.Dominates(s.Allocated().Add(alloc))
}

// TenantCount returns the number of hosted tenants.
func (s *Server) TenantCount() int { return len(s.tenants) }

// Tenants returns the hosted tenant IDs in sorted order.
func (s *Server) Tenants() []string {
	out := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Fabric is the cluster-wide placement and resize executor.
type Fabric struct {
	servers []*Server
	// placement maps tenant ID to server index.
	placement map[string]int
	policy    PlacementPolicy

	// cont is the installed interference model (zero = disabled);
	// contResolved is the same model with defaults filled in.
	cont         Contention
	contResolved Contention

	migrations int
	refusals   int
}

// New creates a fabric of n identical servers.
func New(n int, capacity resource.Vector, policy PlacementPolicy) (*Fabric, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fabric: need at least one server, got %d", n)
	}
	for _, k := range resource.Kinds {
		if capacity[k] <= 0 {
			return nil, fmt.Errorf("fabric: server capacity must be positive in every dimension, got %v", capacity)
		}
	}
	f := &Fabric{policy: policy, placement: make(map[string]int)}
	for i := 0; i < n; i++ {
		f.servers = append(f.servers, newServer(i, capacity))
	}
	return f, nil
}

// Servers returns the cluster's servers (shared, do not mutate).
func (f *Fabric) Servers() []*Server { return f.servers }

// Migrations returns how many tenant migrations resizes have required.
func (f *Fabric) Migrations() int { return f.migrations }

// Refusals returns how many resize requests the fabric could not satisfy.
func (f *Fabric) Refusals() int { return f.refusals }

// ServerOf returns the server currently hosting the tenant.
func (f *Fabric) ServerOf(tenantID string) (*Server, bool) {
	idx, ok := f.placement[tenantID]
	if !ok {
		return nil, false
	}
	return f.servers[idx], true
}

// dominantHeadroomAfter scores a candidate server for an allocation: the
// smallest normalized remaining headroom across all resource dimensions
// after placement — the dominant (tightest) resource's free fraction. A
// low score means the server would be densely used in at least one
// dimension; a high score means room everywhere.
func dominantHeadroomAfter(s *Server, alloc resource.Vector) float64 {
	score := math.Inf(1)
	head := s.Headroom()
	for _, k := range resource.Kinds {
		if s.Capacity[k] <= 0 {
			continue
		}
		if frac := (head[k] - alloc[k]) / s.Capacity[k]; frac < score {
			score = frac
		}
	}
	return score
}

// pick chooses a server with room for alloc according to the placement
// policy; exclude (≥0) skips one server (the tenant's current host during a
// migration search). Returns -1 when no server fits.
//
// BestFit/WorstFit rank by normalized dominant-resource headroom after
// placement, so a memory- or log-heavy container packs against the
// dimension it actually exhausts; BestFitCPU/WorstFitCPU retain the
// historical raw-CPU-headroom scorer. All ties break to the lower server
// ID through strict inequality on an in-order scan.
func (f *Fabric) pick(alloc resource.Vector, exclude int) int {
	best := -1
	var bestScore float64
	for i, s := range f.servers {
		if i == exclude || !s.Fits(alloc) {
			continue
		}
		var score float64
		switch f.policy {
		case FirstFit:
			return i
		case BestFit, WorstFit:
			score = dominantHeadroomAfter(s, alloc)
		case BestFitCPU, WorstFitCPU:
			score = s.Headroom()[resource.CPU] - alloc[resource.CPU]
		default:
			return i
		}
		lower := f.policy == BestFit || f.policy == BestFitCPU
		if best < 0 || (lower && score < bestScore) || (!lower && score > bestScore) {
			best, bestScore = i, score
		}
	}
	return best
}

// Place admits a new tenant with its initial container.
func (f *Fabric) Place(tenantID string, c resource.Container) error {
	if _, dup := f.placement[tenantID]; dup {
		return fmt.Errorf("fabric: tenant %q already placed", tenantID)
	}
	idx := f.pick(c.Alloc, -1)
	if idx < 0 {
		return fmt.Errorf("fabric: no server can host tenant %q with container %s", tenantID, c.Name)
	}
	f.servers[idx].tenants[tenantID] = c
	f.servers[idx].alloc = f.servers[idx].alloc.Add(c.Alloc)
	f.placement[tenantID] = idx
	return nil
}

// Remove evicts a tenant from the cluster.
func (f *Fabric) Remove(tenantID string) error {
	idx, ok := f.placement[tenantID]
	if !ok {
		return fmt.Errorf("fabric: tenant %q not placed", tenantID)
	}
	c := f.servers[idx].tenants[tenantID]
	delete(f.servers[idx].tenants, tenantID)
	f.servers[idx].alloc = f.servers[idx].alloc.Sub(c.Alloc)
	delete(f.placement, tenantID)
	return nil
}

// Container returns the tenant's current container.
func (f *Fabric) Container(tenantID string) (resource.Container, bool) {
	idx, ok := f.placement[tenantID]
	if !ok {
		return resource.Container{}, false
	}
	c, ok := f.servers[idx].tenants[tenantID]
	return c, ok
}

// Resize executes a container resize: in place when the hosting server has
// headroom for the delta, otherwise by migrating the tenant to a server
// that can host the new container. Returns whether a migration happened.
// When no server can host the new size, the resize is refused with an error
// and the tenant keeps its current container.
func (f *Fabric) Resize(tenantID string, to resource.Container) (migrated bool, err error) {
	idx, ok := f.placement[tenantID]
	if !ok {
		return false, fmt.Errorf("fabric: tenant %q not placed", tenantID)
	}
	host := f.servers[idx]
	cur := host.tenants[tenantID]
	if cur.Name == to.Name {
		return false, nil
	}
	// In-place: the server must fit the allocation delta (shrinking always
	// fits).
	delta := to.Alloc.Sub(cur.Alloc)
	if host.Fits(delta.Max(resource.Vector{})) {
		host.tenants[tenantID] = to
		host.alloc = host.alloc.Add(delta)
		return false, nil
	}
	// Migration: find another server with room for the full new container.
	dst := f.pick(to.Alloc, idx)
	if dst < 0 {
		f.refusals++
		return false, fmt.Errorf("%w: no server can host tenant %q at %s", ErrRefused, tenantID, to.Name)
	}
	delete(host.tenants, tenantID)
	host.alloc = host.alloc.Sub(cur.Alloc)
	f.servers[dst].tenants[tenantID] = to
	f.servers[dst].alloc = f.servers[dst].alloc.Add(to.Alloc)
	f.placement[tenantID] = dst
	f.migrations++
	return true, nil
}

// Migrate moves a tenant to a specific server — the primitive the
// placement optimizer's plans execute through (each move routed through
// the actuation channel by the cluster runner, so it is failable and
// charged). Moving a tenant to its current server is a no-op. When the
// destination cannot fit the tenant's container — cluster state may have
// changed since the plan was computed — the move is refused with an
// ErrRefused-wrapping error and the placement is untouched.
func (f *Fabric) Migrate(tenantID string, dst int) error {
	idx, ok := f.placement[tenantID]
	if !ok {
		return fmt.Errorf("fabric: tenant %q not placed", tenantID)
	}
	if dst < 0 || dst >= len(f.servers) {
		return fmt.Errorf("fabric: no server %d", dst)
	}
	if dst == idx {
		return nil
	}
	host := f.servers[idx]
	c := host.tenants[tenantID]
	if !f.servers[dst].Fits(c.Alloc) {
		return fmt.Errorf("%w: server %d cannot host tenant %q at %s", ErrRefused, dst, tenantID, c.Name)
	}
	delete(host.tenants, tenantID)
	host.alloc = host.alloc.Sub(c.Alloc)
	f.servers[dst].tenants[tenantID] = c
	f.servers[dst].alloc = f.servers[dst].alloc.Add(c.Alloc)
	f.placement[tenantID] = dst
	f.migrations++
	return nil
}

// Validate checks the cluster invariant: no server is overcommitted and the
// placement index matches the servers' tenant maps.
func (f *Fabric) Validate() error {
	seen := map[string]int{}
	for i, s := range f.servers {
		if got := s.recomputeAllocated(); got != s.alloc {
			return fmt.Errorf("fabric: server %d allocation cache drifted: cached %v, actual %v", i, s.alloc, got)
		}
		if !s.Capacity.Dominates(s.Allocated()) {
			return fmt.Errorf("fabric: server %d overcommitted: %v > %v", i, s.Allocated(), s.Capacity)
		}
		for id := range s.tenants {
			seen[id] = i
		}
	}
	if len(seen) != len(f.placement) {
		return fmt.Errorf("fabric: placement index out of sync: %d vs %d tenants", len(f.placement), len(seen))
	}
	for id, idx := range f.placement {
		if seen[id] != idx {
			return fmt.Errorf("fabric: tenant %q indexed on server %d but hosted on %d", id, idx, seen[id])
		}
	}
	return nil
}

// UtilizationByResource returns, per server, the allocated fraction of
// every resource dimension — the fabric-level view a service operator
// watches, and the node report table's backing data.
func (f *Fabric) UtilizationByResource() []resource.Vector {
	out := make([]resource.Vector, len(f.servers))
	for i, s := range f.servers {
		alloc := s.Allocated()
		for _, k := range resource.Kinds {
			if s.Capacity[k] > 0 {
				out[i][k] = alloc[k] / s.Capacity[k]
			}
		}
	}
	return out
}

// Utilization returns, per server, the allocated fraction of CPU — a thin
// wrapper over UtilizationByResource retained for the historical callers.
func (f *Fabric) Utilization() []float64 {
	byRes := f.UtilizationByResource()
	out := make([]float64, len(byRes))
	for i, u := range byRes {
		out[i] = u[resource.CPU]
	}
	return out
}
