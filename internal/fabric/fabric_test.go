package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"daasscale/internal/resource"
)

var cat = resource.LockStepCatalog()

// serverCap is a 32-core box matching the largest container.
var serverCap = cat.Largest().Alloc

func mustFabric(t *testing.T, n int, policy PlacementPolicy) *Fabric {
	t.Helper()
	f, err := New(n, serverCap, policy)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPolicyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" || WorstFit.String() != "worst-fit" {
		t.Error("policy names wrong")
	}
	if PlacementPolicy(9).String() != "placementpolicy(9)" {
		t.Error("unknown policy name")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, serverCap, FirstFit); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := New(2, resource.Vector{}, FirstFit); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestPlaceAndLookup(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	if err := f.Place("t1", cat.AtStep(4)); err != nil {
		t.Fatal(err)
	}
	if err := f.Place("t1", cat.AtStep(0)); err == nil {
		t.Error("duplicate placement should fail")
	}
	s, ok := f.ServerOf("t1")
	if !ok || s.ID != 0 {
		t.Errorf("t1 on server %+v", s)
	}
	c, ok := f.Container("t1")
	if !ok || c.Name != "C4" {
		t.Errorf("container = %v", c)
	}
	if _, ok := f.ServerOf("ghost"); ok {
		t.Error("unknown tenant should not resolve")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestServerAccounting(t *testing.T) {
	f := mustFabric(t, 1, FirstFit)
	c4 := cat.AtStep(4)
	c2 := cat.AtStep(2)
	f.Place("a", c4)
	f.Place("b", c2)
	s := f.Servers()[0]
	if s.TenantCount() != 2 {
		t.Errorf("tenant count = %d", s.TenantCount())
	}
	wantAlloc := c4.Alloc.Add(c2.Alloc)
	if s.Allocated() != wantAlloc {
		t.Errorf("allocated = %v, want %v", s.Allocated(), wantAlloc)
	}
	if got := s.Headroom(); got != serverCap.Sub(wantAlloc) {
		t.Errorf("headroom = %v", got)
	}
	if ts := s.Tenants(); len(ts) != 2 || ts[0] != "a" || ts[1] != "b" {
		t.Errorf("tenants = %v", ts)
	}
}

func TestPlacementRespectsCapacity(t *testing.T) {
	f := mustFabric(t, 1, FirstFit)
	if err := f.Place("big", cat.Largest()); err != nil {
		t.Fatal(err)
	}
	// The server is full: even the smallest container must be refused.
	if err := f.Place("small", cat.Smallest()); err == nil {
		t.Error("placement on a full cluster should fail")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeInPlace(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	f.Place("t1", cat.AtStep(2))
	migrated, err := f.Resize("t1", cat.AtStep(5))
	if err != nil || migrated {
		t.Fatalf("in-place resize: migrated=%v err=%v", migrated, err)
	}
	if c, _ := f.Container("t1"); c.Name != "C5" {
		t.Errorf("container = %s", c.Name)
	}
	if f.Migrations() != 0 {
		t.Errorf("migrations = %d", f.Migrations())
	}
	// No-op resize.
	if migrated, err := f.Resize("t1", cat.AtStep(5)); err != nil || migrated {
		t.Error("no-op resize should do nothing")
	}
	// Unknown tenant.
	if _, err := f.Resize("ghost", cat.AtStep(1)); err == nil {
		t.Error("resizing an unplaced tenant should fail")
	}
}

func TestResizeMigratesWhenHostFull(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	f.Place("big", cat.AtStep(9))   // 24 cores on server 0
	f.Place("small", cat.AtStep(2)) // 2 cores fit alongside on server 0
	// Growing small to C8 (16 cores) cannot fit on server 0 → migrate.
	migrated, err := f.Resize("small", cat.AtStep(8))
	if err != nil || !migrated {
		t.Fatalf("expected migration: migrated=%v err=%v", migrated, err)
	}
	if s, _ := f.ServerOf("small"); s.ID != 1 {
		t.Errorf("small should be on server 1, got %d", s.ID)
	}
	if f.Migrations() != 1 {
		t.Errorf("migrations = %d", f.Migrations())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeRefusedKeepsContainer(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	f.Place("a", cat.AtStep(9)) // server 0: 24/32 cores
	f.Place("b", cat.AtStep(9)) // server 1: 24/32 cores
	f.Place("c", cat.AtStep(2)) // fits on server 0
	// c wants C9: neither server has 24 spare cores → refuse.
	migrated, err := f.Resize("c", cat.AtStep(9))
	if err == nil || migrated {
		t.Fatalf("resize should be refused: migrated=%v err=%v", migrated, err)
	}
	if !errors.Is(err, ErrRefused) {
		t.Errorf("refusal must wrap ErrRefused, got %v", err)
	}
	// A non-refusal fault — resizing a tenant the fabric never placed —
	// must NOT look like a refusal to errors.Is.
	if _, err := f.Resize("ghost", cat.AtStep(1)); err == nil || errors.Is(err, ErrRefused) {
		t.Errorf("unplaced-tenant resize must fail without ErrRefused, got %v", err)
	}
	if c, _ := f.Container("c"); c.Name != "C2" {
		t.Errorf("refused resize must keep the container, got %s", c.Name)
	}
	if f.Refusals() != 1 {
		t.Errorf("refusals = %d", f.Refusals())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkAlwaysInPlace(t *testing.T) {
	f := mustFabric(t, 1, FirstFit)
	f.Place("t", cat.Largest())
	migrated, err := f.Resize("t", cat.Smallest())
	if err != nil || migrated {
		t.Fatalf("shrink: migrated=%v err=%v", migrated, err)
	}
}

func TestRemove(t *testing.T) {
	f := mustFabric(t, 1, FirstFit)
	f.Place("t", cat.AtStep(4))
	if err := f.Remove("t"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("t"); err == nil {
		t.Error("double remove should fail")
	}
	if f.Servers()[0].TenantCount() != 0 {
		t.Error("tenant not evicted")
	}
}

func TestBestFitPacksDensely(t *testing.T) {
	f := mustFabric(t, 3, BestFit)
	f.Place("a", cat.AtStep(8)) // 16 cores → server 0
	// A 2-core tenant should co-locate on the fullest server that fits.
	f.Place("b", cat.AtStep(2))
	if s, _ := f.ServerOf("b"); s.ID != 0 {
		t.Errorf("best-fit should pack onto server 0, got %d", s.ID)
	}
}

func TestWorstFitBalances(t *testing.T) {
	f := mustFabric(t, 3, WorstFit)
	f.Place("a", cat.AtStep(8)) // server 0
	f.Place("b", cat.AtStep(2))
	if s, _ := f.ServerOf("b"); s.ID == 0 {
		t.Error("worst-fit should spread to an empty server")
	}
}

func TestUtilizationView(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	f.Place("a", cat.AtStep(8)) // 16 of 32 cores
	u := f.Utilization()
	if len(u) != 2 || u[0] != 0.5 || u[1] != 0 {
		t.Errorf("utilization = %v", u)
	}
}

func TestFabricInvariantUnderRandomChurn(t *testing.T) {
	// Property: any sequence of place/resize/remove operations keeps every
	// server within capacity and the placement index consistent.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		policy := PlacementPolicy(rng.Intn(3))
		f := mustFabric(t, 1+rng.Intn(4), policy)
		live := map[string]bool{}
		next := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0: // place
				id := fmt.Sprintf("t%d", next)
				next++
				if f.Place(id, cat.AtStep(rng.Intn(cat.LadderLen()))) == nil {
					live[id] = true
				}
			case 1: // resize
				for id := range live {
					f.Resize(id, cat.AtStep(rng.Intn(cat.LadderLen())))
					break
				}
			case 2: // remove
				for id := range live {
					if f.Remove(id) == nil {
						delete(live, id)
					}
					break
				}
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("trial %d op %d (%v): %v", trial, op, policy, err)
			}
		}
	}
}
