package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"daasscale/internal/resource"
)

var cat = resource.LockStepCatalog()

// serverCap is a 32-core box matching the largest container.
var serverCap = cat.Largest().Alloc

func mustFabric(t *testing.T, n int, policy PlacementPolicy) *Fabric {
	t.Helper()
	f, err := New(n, serverCap, policy)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPolicyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" || WorstFit.String() != "worst-fit" {
		t.Error("policy names wrong")
	}
	if PlacementPolicy(9).String() != "placementpolicy(9)" {
		t.Error("unknown policy name")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, serverCap, FirstFit); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := New(2, resource.Vector{}, FirstFit); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestPlaceAndLookup(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	if err := f.Place("t1", cat.AtStep(4)); err != nil {
		t.Fatal(err)
	}
	if err := f.Place("t1", cat.AtStep(0)); err == nil {
		t.Error("duplicate placement should fail")
	}
	s, ok := f.ServerOf("t1")
	if !ok || s.ID != 0 {
		t.Errorf("t1 on server %+v", s)
	}
	c, ok := f.Container("t1")
	if !ok || c.Name != "C4" {
		t.Errorf("container = %v", c)
	}
	if _, ok := f.ServerOf("ghost"); ok {
		t.Error("unknown tenant should not resolve")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestServerAccounting(t *testing.T) {
	f := mustFabric(t, 1, FirstFit)
	c4 := cat.AtStep(4)
	c2 := cat.AtStep(2)
	f.Place("a", c4)
	f.Place("b", c2)
	s := f.Servers()[0]
	if s.TenantCount() != 2 {
		t.Errorf("tenant count = %d", s.TenantCount())
	}
	wantAlloc := c4.Alloc.Add(c2.Alloc)
	if s.Allocated() != wantAlloc {
		t.Errorf("allocated = %v, want %v", s.Allocated(), wantAlloc)
	}
	if got := s.Headroom(); got != serverCap.Sub(wantAlloc) {
		t.Errorf("headroom = %v", got)
	}
	if ts := s.Tenants(); len(ts) != 2 || ts[0] != "a" || ts[1] != "b" {
		t.Errorf("tenants = %v", ts)
	}
}

func TestPlacementRespectsCapacity(t *testing.T) {
	f := mustFabric(t, 1, FirstFit)
	if err := f.Place("big", cat.Largest()); err != nil {
		t.Fatal(err)
	}
	// The server is full: even the smallest container must be refused.
	if err := f.Place("small", cat.Smallest()); err == nil {
		t.Error("placement on a full cluster should fail")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeInPlace(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	f.Place("t1", cat.AtStep(2))
	migrated, err := f.Resize("t1", cat.AtStep(5))
	if err != nil || migrated {
		t.Fatalf("in-place resize: migrated=%v err=%v", migrated, err)
	}
	if c, _ := f.Container("t1"); c.Name != "C5" {
		t.Errorf("container = %s", c.Name)
	}
	if f.Migrations() != 0 {
		t.Errorf("migrations = %d", f.Migrations())
	}
	// No-op resize.
	if migrated, err := f.Resize("t1", cat.AtStep(5)); err != nil || migrated {
		t.Error("no-op resize should do nothing")
	}
	// Unknown tenant.
	if _, err := f.Resize("ghost", cat.AtStep(1)); err == nil {
		t.Error("resizing an unplaced tenant should fail")
	}
}

func TestResizeMigratesWhenHostFull(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	f.Place("big", cat.AtStep(9))   // 24 cores on server 0
	f.Place("small", cat.AtStep(2)) // 2 cores fit alongside on server 0
	// Growing small to C8 (16 cores) cannot fit on server 0 → migrate.
	migrated, err := f.Resize("small", cat.AtStep(8))
	if err != nil || !migrated {
		t.Fatalf("expected migration: migrated=%v err=%v", migrated, err)
	}
	if s, _ := f.ServerOf("small"); s.ID != 1 {
		t.Errorf("small should be on server 1, got %d", s.ID)
	}
	if f.Migrations() != 1 {
		t.Errorf("migrations = %d", f.Migrations())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeRefusedKeepsContainer(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	f.Place("a", cat.AtStep(9)) // server 0: 24/32 cores
	f.Place("b", cat.AtStep(9)) // server 1: 24/32 cores
	f.Place("c", cat.AtStep(2)) // fits on server 0
	// c wants C9: neither server has 24 spare cores → refuse.
	migrated, err := f.Resize("c", cat.AtStep(9))
	if err == nil || migrated {
		t.Fatalf("resize should be refused: migrated=%v err=%v", migrated, err)
	}
	if !errors.Is(err, ErrRefused) {
		t.Errorf("refusal must wrap ErrRefused, got %v", err)
	}
	// A non-refusal fault — resizing a tenant the fabric never placed —
	// must NOT look like a refusal to errors.Is.
	if _, err := f.Resize("ghost", cat.AtStep(1)); err == nil || errors.Is(err, ErrRefused) {
		t.Errorf("unplaced-tenant resize must fail without ErrRefused, got %v", err)
	}
	if c, _ := f.Container("c"); c.Name != "C2" {
		t.Errorf("refused resize must keep the container, got %s", c.Name)
	}
	if f.Refusals() != 1 {
		t.Errorf("refusals = %d", f.Refusals())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkAlwaysInPlace(t *testing.T) {
	f := mustFabric(t, 1, FirstFit)
	f.Place("t", cat.Largest())
	migrated, err := f.Resize("t", cat.Smallest())
	if err != nil || migrated {
		t.Fatalf("shrink: migrated=%v err=%v", migrated, err)
	}
}

func TestRemove(t *testing.T) {
	f := mustFabric(t, 1, FirstFit)
	f.Place("t", cat.AtStep(4))
	if err := f.Remove("t"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("t"); err == nil {
		t.Error("double remove should fail")
	}
	if f.Servers()[0].TenantCount() != 0 {
		t.Error("tenant not evicted")
	}
}

func TestBestFitPacksDensely(t *testing.T) {
	f := mustFabric(t, 3, BestFit)
	f.Place("a", cat.AtStep(8)) // 16 cores → server 0
	// A 2-core tenant should co-locate on the fullest server that fits.
	f.Place("b", cat.AtStep(2))
	if s, _ := f.ServerOf("b"); s.ID != 0 {
		t.Errorf("best-fit should pack onto server 0, got %d", s.ID)
	}
}

func TestWorstFitBalances(t *testing.T) {
	f := mustFabric(t, 3, WorstFit)
	f.Place("a", cat.AtStep(8)) // server 0
	f.Place("b", cat.AtStep(2))
	if s, _ := f.ServerOf("b"); s.ID == 0 {
		t.Error("worst-fit should spread to an empty server")
	}
}

func TestUtilizationView(t *testing.T) {
	f := mustFabric(t, 2, FirstFit)
	f.Place("a", cat.AtStep(8)) // 16 of 32 cores
	u := f.Utilization()
	if len(u) != 2 || u[0] != 0.5 || u[1] != 0 {
		t.Errorf("utilization = %v", u)
	}
}

func TestFabricInvariantUnderRandomChurn(t *testing.T) {
	// Property: any sequence of place/resize/remove operations keeps every
	// server within capacity and the placement index consistent.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		policy := PlacementPolicy(rng.Intn(3))
		f := mustFabric(t, 1+rng.Intn(4), policy)
		live := map[string]bool{}
		next := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0: // place
				id := fmt.Sprintf("t%d", next)
				next++
				if f.Place(id, cat.AtStep(rng.Intn(cat.LadderLen()))) == nil {
					live[id] = true
				}
			case 1: // resize
				for id := range live {
					f.Resize(id, cat.AtStep(rng.Intn(cat.LadderLen())))
					break
				}
			case 2: // remove
				for id := range live {
					if f.Remove(id) == nil {
						delete(live, id)
					}
					break
				}
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("trial %d op %d (%v): %v", trial, op, policy, err)
			}
		}
	}
}

// TestResizeMixedDeltaInPlace is the regression test for the in-place
// fitness check under per-dimension variants: a resize that grows one
// dimension while shrinking another must only need headroom for the
// *positive* components of the delta. Checking the whole new allocation —
// or the raw delta with its negative components — refuses or miscounts
// legal in-place resizes.
func TestResizeMixedDeltaInPlace(t *testing.T) {
	f, err := New(1, flatCap, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	// filler pins the node at 40 units everywhere; t starts CPU-heavy.
	filler := resource.Container{Name: "filler", Alloc: resource.Vector{40, 40, 40, 40}, Cost: 1}
	cur := resource.Container{Name: "cpuheavy", Alloc: resource.Vector{55, 10, 10, 10}, Cost: 1}
	if err := f.Place("filler", filler); err != nil {
		t.Fatal(err)
	}
	if err := f.Place("t", cur); err != nil {
		t.Fatal(err)
	}
	// Pivot to memory-heavy: CPU shrinks 55→10, memory grows 10→55. The
	// full new allocation does NOT fit alongside the current one
	// (memory 40+10+55 > 100), but the positive delta (+45 memory) fits
	// once the CPU shrink is netted out — this must stay in place.
	next := resource.Container{Name: "memheavy", Alloc: resource.Vector{10, 55, 10, 10}, Cost: 1}
	migrated, err := f.Resize("t", next)
	if err != nil || migrated {
		t.Fatalf("mixed-delta resize: migrated=%v err=%v", migrated, err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.Servers()[0].Allocated(); got != (resource.Vector{50, 95, 50, 50}) {
		t.Errorf("allocation after pivot = %v", got)
	}
	// The reverse pivot past the remaining headroom: growing CPU by 60
	// against 50 free cannot stay in place, and with one server it must be
	// refused — even though the memory shrink alone would fit.
	big := resource.Container{Name: "cpubig", Alloc: resource.Vector{70, 10, 10, 10}, Cost: 1}
	if _, err := f.Resize("t", big); !errors.Is(err, ErrRefused) {
		t.Errorf("over-headroom pivot error = %v, want ErrRefused", err)
	}
	if c, _ := f.Container("t"); c.Name != "memheavy" {
		t.Errorf("refused pivot changed the container to %s", c.Name)
	}
}

// TestBestFitRanksByDominantDimension: the rewritten scorer packs against
// the dimension a container actually exhausts, where the legacy CPU-only
// scorer picks the wrong server for a memory-heavy container.
func TestBestFitRanksByDominantDimension(t *testing.T) {
	seed := func(policy PlacementPolicy) *Fabric {
		f, err := New(2, flatCap, policy)
		if err != nil {
			t.Fatal(err)
		}
		// Server 0: memory-tight (80 memory, little CPU).
		// Server 1: CPU-loaded (40 CPU, little memory).
		// Migrate pins the fixture regardless of the policy under test.
		f.Place("m", resource.Container{Name: "m", Alloc: resource.Vector{10, 80, 0, 0}, Cost: 1})
		f.Place("c", resource.Container{Name: "c", Alloc: resource.Vector{40, 10, 0, 0}, Cost: 1})
		if err := f.Migrate("m", 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Migrate("c", 1); err != nil {
			t.Fatal(err)
		}
		return f
	}
	probe := resource.Container{Name: "p", Alloc: resource.Vector{10, 10, 0, 0}, Cost: 1}

	// Dominant-dimension best fit: server 0's memory headroom after
	// placement (10%) is the tightest fraction anywhere → densest pack.
	f := seed(BestFit)
	f.Place("p", probe)
	if s, _ := f.ServerOf("p"); s.ID != 0 {
		t.Errorf("BestFit placed on server %d, want the memory-tight 0", s.ID)
	}
	// Legacy CPU-only best fit ignores memory and packs onto the
	// CPU-loaded server 1 (50 CPU headroom beats 80).
	f = seed(BestFitCPU)
	f.Place("p", probe)
	if s, _ := f.ServerOf("p"); s.ID != 1 {
		t.Errorf("BestFitCPU placed on server %d, want the CPU-loaded 1", s.ID)
	}
	// The worst-fit duals spread instead: dominant-dimension worst fit
	// avoids the memory-tight server...
	f = seed(WorstFit)
	f.Place("p", probe)
	if s, _ := f.ServerOf("p"); s.ID != 1 {
		t.Errorf("WorstFit placed on server %d, want 1", s.ID)
	}
	// ...while the legacy CPU scorer calls server 0 the roomiest.
	f = seed(WorstFitCPU)
	f.Place("p", probe)
	if s, _ := f.ServerOf("p"); s.ID != 0 {
		t.Errorf("WorstFitCPU placed on server %d, want 0", s.ID)
	}
	if BestFitCPU.String() != "best-fit-cpu" || WorstFitCPU.String() != "worst-fit-cpu" {
		t.Error("legacy policy names wrong")
	}
}

// TestPickTieBreaksLowerID: equal scores resolve to the lower server index
// under every ranking policy.
func TestPickTieBreaksLowerID(t *testing.T) {
	for _, policy := range []PlacementPolicy{FirstFit, BestFit, WorstFit, BestFitCPU, WorstFitCPU} {
		f := mustFabric(t, 3, policy)
		f.Place("t", cat.AtStep(3))
		if s, _ := f.ServerOf("t"); s.ID != 0 {
			t.Errorf("%v: empty-cluster placement on server %d, want 0", policy, s.ID)
		}
	}
}

// TestUtilizationByResource: the per-dimension view reports every
// dimension's allocated fraction, and the historical Utilization() is its
// CPU column.
func TestUtilizationByResource(t *testing.T) {
	f, err := New(2, flatCap, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	f.Place("t", resource.Container{Name: "t", Alloc: resource.Vector{25, 50, 10, 75}, Cost: 1})
	u := f.UtilizationByResource()
	if len(u) != 2 {
		t.Fatalf("%d servers reported", len(u))
	}
	if u[0] != (resource.Vector{0.25, 0.5, 0.1, 0.75}) {
		t.Errorf("server 0 utilization = %v", u[0])
	}
	if u[1] != (resource.Vector{}) {
		t.Errorf("server 1 utilization = %v", u[1])
	}
	cpu := f.Utilization()
	if cpu[0] != 0.25 || cpu[1] != 0 {
		t.Errorf("CPU column = %v", cpu)
	}
}
