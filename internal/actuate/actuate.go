// Package actuate turns scaling decisions into failable, asynchronous
// resize operations. The paper's architecture (Figure 3, §2.2) has the
// auto-scaling logic *issue* a container resize command to the DaaS
// management fabric, which "then executes the resize operation" — in
// production that execution takes time, can be throttled by the fabric,
// and can fail outright. The auto-scaling survey literature (Qu et al.)
// and URSA-style capacity studies both treat actuation lag and failed
// scaling actions as first-order effects an autoscaler must tolerate.
//
// The model is Kubernetes-style desired-state reconciliation. A consumer
// writes the latest desired target with Submit (idempotent: re-issuing
// the current desired target is a no-op) and drives the actuator once per
// billing interval with Step. The actuator reconciles desired vs actual:
// whenever they differ and no operation is in flight it opens a new
// operation (with a fresh idempotency key), waits out the configured
// actuation latency, then attempts to apply the target through the
// caller's executor. Attempts can be throttled or fail transiently;
// failed attempts retry with capped exponential backoff plus
// deterministic jitter until the operation exhausts its attempt budget or
// its deadline — at which point the operation expires and, because
// reconciliation is level-triggered, a fresh operation for the
// still-desired target is opened on the next Step. A Submit that changes
// the desired target supersedes the in-flight operation immediately: the
// stale resize is abandoned, never applied.
//
// Every random choice (latency jitter, throttle/failure rolls, backoff
// jitter) is drawn from a per-operation stream derived with
// exec.SplitSeed from (stream seed, config seed, operation sequence
// number). An actuator is driven serially within one simulated tenant, so
// the same config and seed reproduce the same operations bit-for-bit at
// any worker count — the property the actuation determinism tests in
// package sim assert.
package actuate

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"math/rand"

	"daasscale/internal/exec"
)

// ErrRefused is the sentinel an executor returns (wrapped) when the
// management fabric refuses to execute the resize — e.g. no server in the
// cluster can host the requested container. A refusal is not a transient
// fault of the actuation channel, but the actuator treats it like one:
// cluster state changes as other tenants resize, so the operation retries
// with backoff until it expires or is superseded.
var ErrRefused = errors.New("actuate: resize refused")

// Config parameterizes the actuation channel. The zero value disables
// actuation entirely: decisions apply synchronously and infallibly, the
// historical behavior. Enable with any non-zero knob, or with Enable for
// an actuated channel that is perfect (zero latency, no faults) — useful
// to assert the actuated path reproduces the synchronous one.
type Config struct {
	// Enable forces the asynchronous path even when every other knob is
	// zero. A zero-latency, zero-fault actuated channel is bit-identical
	// to the synchronous path.
	Enable bool
	// Seed salts the per-operation random streams, so two configs sharing
	// a stream seed draw independent faults.
	Seed int64
	// LatencyIntervals is the number of billing intervals between opening
	// an operation and its first apply attempt — the time the fabric
	// takes to execute a resize. 0 = the attempt lands in the interval
	// the operation opened.
	LatencyIntervals int
	// JitterIntervals adds a deterministic per-operation draw of
	// [0, JitterIntervals] extra latency intervals.
	JitterIntervals int
	// FailRate is the per-attempt probability of a transient failure.
	FailRate float64
	// ThrottleRate is the per-attempt probability that the fabric
	// throttles the attempt (busy, rate-limited).
	ThrottleRate float64
	// BurstStart and BurstLen define a deterministic throttle storm:
	// every attempt in intervals [BurstStart, BurstStart+BurstLen) is
	// throttled, regardless of ThrottleRate. BurstLen 0 = no burst.
	BurstStart int
	BurstLen   int
	// MaxAttempts caps apply attempts per operation (0 → 6). An
	// operation that exhausts its attempts expires; reconciliation then
	// re-issues the still-desired target as a fresh operation.
	MaxAttempts int
	// BackoffIntervals is the backoff after the first failed attempt
	// (0 → 1); it doubles per failure up to BackoffCap (0 → 8), plus a
	// deterministic jitter draw of 0 or 1 intervals.
	BackoffIntervals int
	BackoffCap       int
	// DeadlineIntervals is the per-operation deadline measured from the
	// interval the operation opened (0 → none): a retry scheduled past
	// the deadline expires the operation instead.
	DeadlineIntervals int
}

// Enabled reports whether the config selects the asynchronous path.
func (c Config) Enabled() bool {
	return c.Enable || c.LatencyIntervals > 0 || c.JitterIntervals > 0 ||
		c.FailRate > 0 || c.ThrottleRate > 0 || c.BurstLen > 0
}

// Validate rejects non-finite or out-of-range knobs.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"FailRate", c.FailRate}, {"ThrottleRate", c.ThrottleRate}} {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("actuate: %s must be in [0,1], got %v", r.name, r.v)
		}
	}
	for _, n := range []struct {
		name string
		v    int
	}{
		{"LatencyIntervals", c.LatencyIntervals},
		{"JitterIntervals", c.JitterIntervals},
		{"BurstStart", c.BurstStart},
		{"BurstLen", c.BurstLen},
		{"MaxAttempts", c.MaxAttempts},
		{"BackoffIntervals", c.BackoffIntervals},
		{"BackoffCap", c.BackoffCap},
		{"DeadlineIntervals", c.DeadlineIntervals},
	} {
		if n.v < 0 {
			return fmt.Errorf("actuate: %s must be ≥ 0, got %d", n.name, n.v)
		}
	}
	return nil
}

// maxAttempts, backoffBase and backoffCap resolve the config defaults.
func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 6
	}
	return c.MaxAttempts
}

func (c Config) backoffBase() int {
	if c.BackoffIntervals <= 0 {
		return 1
	}
	return c.BackoffIntervals
}

func (c Config) backoffCap() int {
	if c.BackoffCap <= 0 {
		return 8
	}
	return c.BackoffCap
}

// inBurst reports whether the interval falls inside the throttle storm.
func (c Config) inBurst(interval int) bool {
	return c.BurstLen > 0 && interval >= c.BurstStart && interval < c.BurstStart+c.BurstLen
}

// Stats counts what an actuator did over a run.
type Stats struct {
	// Submitted counts desired-state writes that changed the desired
	// target (idempotent re-issues of the current desire are free).
	Submitted int
	// Ops counts operations opened, including re-issues after expiry.
	Ops int
	// Attempts counts apply attempts; Retries the re-scheduled ones.
	Attempts int
	Retries  int
	// Applied counts operations that reached the actual state.
	Applied int
	// Throttled, TransientFailures and Refused classify failed attempts.
	Throttled         int
	TransientFailures int
	Refused           int
	// Superseded counts in-flight operations abandoned because the
	// desired target moved; Expired the ones that ran out of attempts or
	// deadline.
	Superseded int
	Expired    int
	// SumEffectIntervals and MaxEffectIntervals aggregate, over applied
	// operations, the intervals from opening the operation to the apply.
	SumEffectIntervals int
	MaxEffectIntervals int
}

// MeanEffectIntervals is the mean intervals-to-effect over applied
// operations (0 when none applied).
func (s Stats) MeanEffectIntervals() float64 {
	if s.Applied == 0 {
		return 0
	}
	return float64(s.SumEffectIntervals) / float64(s.Applied)
}

// Failed is the total number of failed attempts, however they failed.
func (s Stats) Failed() int { return s.Throttled + s.TransientFailures + s.Refused }

// String summarizes the counters in one line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d ops applied in %d attempts", s.Applied, s.Ops, s.Attempts)
	for _, c := range []struct {
		name string
		n    int
	}{
		{"retries", s.Retries}, {"throttled", s.Throttled},
		{"failed", s.TransientFailures}, {"refused", s.Refused},
		{"superseded", s.Superseded}, {"expired", s.Expired},
	} {
		if c.n > 0 {
			fmt.Fprintf(&b, ", %s×%d", c.name, c.n)
		}
	}
	if s.Applied > 0 {
		fmt.Fprintf(&b, ", effect mean %.1f / max %d intervals",
			s.MeanEffectIntervals(), s.MaxEffectIntervals)
	}
	return b.String()
}

// op is one in-flight resize operation.
type op[T comparable] struct {
	// key is the idempotency key the operation would carry on the wire; a
	// fabric that already executed it would treat a re-send as a no-op.
	key      string
	target   T
	opened   int // interval the operation was opened
	deadline int // interval past which retries expire the op (-1 = none)
	attempts int
	next     int // interval of the next apply attempt
	rng      *rand.Rand
}

// Actuator reconciles a desired target of type T (a container, a memory
// target) against the actual state behind an asynchronous, failable
// channel. It is driven serially — Submit then Step once per billing
// interval — and is not safe for concurrent use; create one actuator per
// tenant.
type Actuator[T comparable] struct {
	cfg     Config
	base    int64
	desired T
	actual  T
	op      *op[T]
	seq     int64
	stats   Stats
}

// New creates an actuator whose desired and actual state start at
// current. streamSeed identifies the stream (a run or tenant seed); it is
// mixed with the config's Seed so distinct configs fault independently.
func New[T comparable](cfg Config, streamSeed int64, current T) *Actuator[T] {
	return &Actuator[T]{
		cfg:     cfg,
		base:    exec.SplitSeed(streamSeed, cfg.Seed),
		desired: current,
		actual:  current,
	}
}

// Stats returns the actuation counters so far.
func (a *Actuator[T]) Stats() Stats { return a.stats }

// Desired and Actual expose the two sides of the reconciliation.
func (a *Actuator[T]) Desired() T { return a.desired }
func (a *Actuator[T]) Actual() T  { return a.actual }

// Settled reports whether the actuator has nothing left to do: the actual
// state matches the desired one and no operation is in flight.
func (a *Actuator[T]) Settled() bool { return a.op == nil && a.desired == a.actual }

// Pending returns the in-flight operation's idempotency key and target.
func (a *Actuator[T]) Pending() (key string, target T, ok bool) {
	if a.op == nil {
		var zero T
		return "", zero, false
	}
	return a.op.key, a.op.target, true
}

// Submit records the latest desired target — a desired-state write, not a
// command. Re-submitting the current desired target is an idempotent
// no-op (the level-triggered controller re-issues its desire every
// interval). A changed target takes effect at the next Step, where it
// supersedes any in-flight operation for a stale target.
func (a *Actuator[T]) Submit(target T) {
	if target == a.desired {
		return
	}
	a.desired = target
	a.stats.Submitted++
}

// Step advances the actuator by one billing interval: supersede stale
// work, open an operation when desired ≠ actual, and run the due apply
// attempt through the executor. The executor applies the target to the
// real substrate (engine, fabric); it returns nil on success, an
// ErrRefused-wrapping error when the fabric refuses the resize (the
// operation retries), or any other error to abort the run. Step makes at
// most one apply attempt per interval.
func (a *Actuator[T]) Step(interval int, apply func(T) error) error {
	if a.op != nil && a.op.target != a.desired {
		// The desired target moved while the operation was in flight: the
		// stale resize is superseded, never applied.
		a.stats.Superseded++
		a.op = nil
	}
	if a.op == nil {
		if a.desired == a.actual {
			return nil
		}
		a.open(interval)
	}
	if interval < a.op.next {
		return nil
	}
	o := a.op
	o.attempts++
	a.stats.Attempts++
	switch {
	case a.cfg.inBurst(interval) || (a.cfg.ThrottleRate > 0 && o.rng.Float64() < a.cfg.ThrottleRate):
		a.stats.Throttled++
		a.reschedule(o, interval)
	case a.cfg.FailRate > 0 && o.rng.Float64() < a.cfg.FailRate:
		a.stats.TransientFailures++
		a.reschedule(o, interval)
	default:
		if err := apply(o.target); err != nil {
			if errors.Is(err, ErrRefused) {
				a.stats.Refused++
				a.reschedule(o, interval)
				return nil
			}
			return err
		}
		a.stats.Applied++
		took := interval - o.opened
		a.stats.SumEffectIntervals += took
		if took > a.stats.MaxEffectIntervals {
			a.stats.MaxEffectIntervals = took
		}
		a.actual = o.target
		a.op = nil
	}
	return nil
}

// open starts a fresh operation for the current desired target, with its
// own idempotency key, private random stream, latency draw and deadline.
func (a *Actuator[T]) open(interval int) {
	a.seq++
	rng := rand.New(rand.NewSource(exec.SplitSeed(a.base, a.seq)))
	lat := a.cfg.LatencyIntervals
	if a.cfg.JitterIntervals > 0 {
		lat += rng.Intn(a.cfg.JitterIntervals + 1)
	}
	deadline := -1
	if a.cfg.DeadlineIntervals > 0 {
		deadline = interval + a.cfg.DeadlineIntervals
	}
	a.op = &op[T]{
		key:      fmt.Sprintf("resize-%d", a.seq),
		target:   a.desired,
		opened:   interval,
		deadline: deadline,
		next:     interval + lat,
		rng:      rng,
	}
	a.stats.Ops++
}

// reschedule plans the operation's next attempt with capped exponential
// backoff plus a deterministic 0-or-1-interval jitter, or expires the
// operation when it ran out of attempts or deadline. Expiry does not
// clear the desired target: reconciliation opens a fresh operation on the
// next Step, so the channel converges once the faults clear.
func (a *Actuator[T]) reschedule(o *op[T], interval int) {
	backoff := a.cfg.backoffCap()
	if shift := o.attempts - 1; shift < 31 && a.cfg.backoffBase()<<shift < backoff {
		backoff = a.cfg.backoffBase() << shift
	}
	backoff += o.rng.Intn(2)
	if backoff < 1 {
		backoff = 1
	}
	next := interval + backoff
	if o.attempts >= a.cfg.maxAttempts() || (o.deadline >= 0 && next > o.deadline) {
		a.stats.Expired++
		a.op = nil
		return
	}
	o.next = next
	a.stats.Retries++
}
