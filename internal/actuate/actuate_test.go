package actuate

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestActuationConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	for _, c := range []Config{
		{Enable: true},
		{LatencyIntervals: 1},
		{JitterIntervals: 2},
		{FailRate: 0.1},
		{ThrottleRate: 0.1},
		{BurstLen: 3},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v must be enabled", c)
		}
	}
	// Limits-only knobs do not enable the channel on their own.
	if (Config{MaxAttempts: 3, BackoffIntervals: 2, DeadlineIntervals: 5}).Enabled() {
		t.Error("retry/deadline knobs alone must not enable actuation")
	}
}

func TestActuationConfigValidate(t *testing.T) {
	if err := (Config{FailRate: 0.5, ThrottleRate: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, c := range []Config{
		{FailRate: -0.1},
		{FailRate: 1.5},
		{ThrottleRate: 2},
		{LatencyIntervals: -1},
		{MaxAttempts: -2},
		{DeadlineIntervals: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v must be rejected", c)
		}
	}
}

// TestActuationZeroLatencyAppliesSameInterval: an Enable-only channel is
// perfect — the desired target lands in the very interval it was
// submitted, exactly like the synchronous path.
func TestActuationZeroLatencyAppliesSameInterval(t *testing.T) {
	a := New(Config{Enable: true}, 1, "small")
	got := "small"
	a.Submit("large")
	if err := a.Step(0, func(s string) error { got = s; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != "large" || !a.Settled() {
		t.Fatalf("got %q, settled %v; want large, settled", got, a.Settled())
	}
	st := a.Stats()
	if st.Applied != 1 || st.Attempts != 1 || st.Ops != 1 || st.MaxEffectIntervals != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestActuationLatencyDelaysEffect: with latency L, the target applies
// exactly L intervals after the operation opened.
func TestActuationLatencyDelaysEffect(t *testing.T) {
	a := New(Config{LatencyIntervals: 3}, 1, "small")
	got := "small"
	a.Submit("large")
	for i := 0; i < 5; i++ {
		if err := a.Step(i, func(s string) error { got = s; return nil }); err != nil {
			t.Fatal(err)
		}
		want := "small"
		if i >= 3 {
			want = "large"
		}
		if got != want {
			t.Fatalf("interval %d: actual %q, want %q", i, got, want)
		}
	}
	st := a.Stats()
	if st.Applied != 1 || st.SumEffectIntervals != 3 || st.MaxEffectIntervals != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestActuationSubmitIdempotent: re-issuing the current desire every
// interval — what a level-triggered controller does — opens one op.
func TestActuationSubmitIdempotent(t *testing.T) {
	a := New(Config{LatencyIntervals: 4}, 1, "small")
	got := "small"
	for i := 0; i < 10; i++ {
		a.Submit("large")
		if err := a.Step(i, func(s string) error { got = s; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Submitted != 1 || st.Ops != 1 || st.Applied != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got != "large" {
		t.Fatalf("actual %q", got)
	}
}

// TestActuationSupersede: a new desire abandons the in-flight operation —
// the stale resize is never applied — and a desire that returns to the
// actual state cancels actuation entirely.
func TestActuationSupersede(t *testing.T) {
	a := New(Config{LatencyIntervals: 5}, 1, "small")
	var applied []string
	exec := func(s string) error { applied = append(applied, s); return nil }

	a.Submit("medium")
	if err := a.Step(0, exec); err != nil {
		t.Fatal(err)
	}
	a.Submit("large") // supersedes the medium resize mid-flight
	for i := 1; i < 10; i++ {
		if err := a.Step(i, exec); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(applied, []string{"large"}) {
		t.Fatalf("applied %v, want only large", applied)
	}
	if st := a.Stats(); st.Superseded != 1 || st.Applied != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Desire moves back to the actual state: the in-flight op is
	// superseded and nothing further is applied.
	a.Submit("medium")
	if err := a.Step(10, exec); err != nil {
		t.Fatal(err)
	}
	a.Submit("large")
	for i := 11; i < 20; i++ {
		if err := a.Step(i, exec); err != nil {
			t.Fatal(err)
		}
	}
	if len(applied) != 1 {
		t.Fatalf("applied %v, want no second apply", applied)
	}
	if !a.Settled() {
		t.Error("actuator must settle once desired == actual")
	}
}

// TestActuationRetryBackoff: with FailRate 1 every attempt fails; the
// attempt spacing follows capped exponential backoff and the operation
// expires after MaxAttempts, after which reconciliation re-issues it.
func TestActuationRetryBackoff(t *testing.T) {
	cfg := Config{FailRate: 1, MaxAttempts: 3, BackoffIntervals: 1, BackoffCap: 4}
	a := New(cfg, 7, "small")
	a.Submit("large")
	var attempts []int
	for i := 0; i < 40; i++ {
		before := a.Stats().Attempts
		if err := a.Step(i, func(string) error {
			t.Fatal("apply must never be reached at FailRate 1")
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if a.Stats().Attempts > before {
			attempts = append(attempts, i)
		}
	}
	st := a.Stats()
	if st.Applied != 0 || st.TransientFailures != st.Attempts {
		t.Fatalf("stats %+v", st)
	}
	if st.Ops < 2 || st.Expired < 1 {
		t.Fatalf("expired ops must be re-issued by reconciliation: %+v", st)
	}
	if st.Retries == 0 || st.Retries > st.Attempts {
		t.Fatalf("retries %d out of range (attempts %d)", st.Retries, st.Attempts)
	}
	// Backoff grows: the gap between consecutive attempts of one op is
	// base<<k (+jitter ≤ 1) and never exceeds cap+1.
	for i := 1; i < len(attempts); i++ {
		gap := attempts[i] - attempts[i-1]
		if gap < 1 || gap > cfg.BackoffCap+1 {
			t.Fatalf("attempt gap %d outside [1, cap+1]: %v", gap, attempts)
		}
	}
}

// TestActuationDeadlineExpiresOp: a retry that would land past the
// operation's deadline expires the operation instead.
func TestActuationDeadlineExpiresOp(t *testing.T) {
	a := New(Config{FailRate: 1, DeadlineIntervals: 3, MaxAttempts: 100}, 3, "small")
	a.Submit("large")
	for i := 0; i < 30; i++ {
		if err := a.Step(i, func(string) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Expired == 0 {
		t.Fatalf("deadline never expired an op: %+v", st)
	}
	if st.Applied != 0 {
		t.Fatalf("nothing must apply at FailRate 1: %+v", st)
	}
}

// TestActuationThrottleBurstConverges is the acceptance scenario: a 100%
// throttle burst stalls every attempt; once it lifts, reconciliation
// applies the final desired target exactly once.
func TestActuationThrottleBurstConverges(t *testing.T) {
	a := New(Config{
		LatencyIntervals:  1,
		BurstStart:        0,
		BurstLen:          20,
		DeadlineIntervals: 4, // ops expire repeatedly during the burst
	}, 11, "small")
	var applied []string
	a.Submit("large")
	for i := 0; i < 40; i++ {
		if err := a.Step(i, func(s string) error { applied = append(applied, s); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(applied, []string{"large"}) {
		t.Fatalf("applied %v, want exactly one large apply after the burst", applied)
	}
	st := a.Stats()
	if st.Throttled == 0 || st.Expired == 0 || st.Ops < 2 {
		t.Fatalf("burst must throttle and expire ops before converging: %+v", st)
	}
	if !a.Settled() {
		t.Error("actuator must settle after the burst lifts")
	}
}

// TestActuationRefusedRetriesThenSupersedes: executor refusals count as
// refused attempts, retry, and stop once the desire is superseded.
func TestActuationRefusedRetriesThenSupersedes(t *testing.T) {
	a := New(Config{Enable: true, MaxAttempts: 100}, 5, "small")
	refuse := func(string) error { return fmt.Errorf("no room: %w", ErrRefused) }
	a.Submit("large")
	for i := 0; i < 20; i++ {
		if err := a.Step(i, refuse); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Refused == 0 || st.Applied != 0 {
		t.Fatalf("stats %+v", st)
	}
	a.Submit("small") // back to actual: reconciliation has nothing to do
	if err := a.Step(20, refuse); err != nil {
		t.Fatal(err)
	}
	if !a.Settled() {
		t.Error("superseding to the actual state must settle the actuator")
	}
}

// TestActuationExecutorErrorPropagates: a non-refusal executor error
// aborts the Step instead of being swallowed as a retry.
func TestActuationExecutorErrorPropagates(t *testing.T) {
	a := New(Config{Enable: true}, 5, "small")
	boom := errors.New("fabric wedged")
	a.Submit("large")
	if err := a.Step(0, func(string) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestActuationDeterministicStats: identical configs and seeds reproduce
// identical operation histories; a different seed diverges.
func TestActuationDeterministicStats(t *testing.T) {
	cfg := Config{LatencyIntervals: 2, JitterIntervals: 2, FailRate: 0.4, ThrottleRate: 0.2, Seed: 9}
	run := func(streamSeed int64) (Stats, []string) {
		a := New(cfg, streamSeed, "s0")
		var applied []string
		for i := 0; i < 200; i++ {
			if i%7 == 0 {
				a.Submit(fmt.Sprintf("s%d", (i/7)%4))
			}
			if err := a.Step(i, func(s string) error { applied = append(applied, s); return nil }); err != nil {
				t.Fatal(err)
			}
		}
		return a.Stats(), applied
	}
	s1, a1 := run(42)
	s2, a2 := run(42)
	if s1 != s2 || !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", s1, s2)
	}
	s3, _ := run(43)
	if s1 == s3 {
		t.Error("different stream seeds produced identical histories (suspicious)")
	}
}

// TestActuationPendingKey: idempotency keys are unique per operation and
// visible while the operation is in flight.
func TestActuationPendingKey(t *testing.T) {
	a := New(Config{LatencyIntervals: 3}, 1, "small")
	if _, _, ok := a.Pending(); ok {
		t.Error("no op must be pending before any submit")
	}
	a.Submit("large")
	if err := a.Step(0, func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	k1, target, ok := a.Pending()
	if !ok || target != "large" || k1 == "" {
		t.Fatalf("pending = %q %q %v", k1, target, ok)
	}
	a.Submit("medium")
	if err := a.Step(1, func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	k2, _, ok := a.Pending()
	if !ok || k2 == k1 {
		t.Fatalf("superseding op must get a fresh idempotency key: %q vs %q", k1, k2)
	}
}

// TestActuationStatsString smoke-checks the one-line rendering.
func TestActuationStatsString(t *testing.T) {
	s := Stats{Ops: 3, Applied: 2, Attempts: 7, Retries: 4, Throttled: 2,
		TransientFailures: 2, Superseded: 1, SumEffectIntervals: 6, MaxEffectIntervals: 4}
	out := s.String()
	for _, want := range []string{"2/3 ops", "7 attempts", "retries×4", "throttled×2", "effect mean 3.0 / max 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("%q missing %q", out, want)
		}
	}
}
