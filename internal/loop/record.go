package loop

import (
	"daasscale/internal/actuate"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/telemetry"
)

// DecisionRecord is the uniform audit record of one control-loop step:
// what the loop observed, what the policy decided and why, what the fault
// injector did to the telemetry channel, and what the actuation channel
// did with the decision. Every runner emits the same record shape, so one
// report/CLI surface (`-explain`) covers single runs, comparisons,
// clusters and the ballooning arms alike.
type DecisionRecord struct {
	// Tenant labels the loop (the tenant ID in cluster runs, the policy
	// or arm name elsewhere; empty when the runner did not set one).
	Tenant string
	// Interval is the billing interval the record describes.
	Interval int

	// Snapshot is the truthful interval snapshot — what the engine
	// measured, before any fault perturbation.
	Snapshot telemetry.Snapshot

	// Actual is the substrate state the step started from; Target is the
	// desired state the decision asked for (both via Config.Describe).
	Actual string
	Target string
	// Changed reports whether the decision asked for a state change;
	// Observed whether at least one telemetry snapshot reached the
	// decider (false = the fault injector withheld the whole interval and
	// the loop held the previous state); Submitted whether the decision
	// was written to the actuation channel as a fresh desire.
	Changed   bool
	Observed  bool
	Submitted bool

	// BalloonTargetMB is the memory target the decision carried.
	BalloonTargetMB float64
	// Explanations are the policy's rule-firing explanations for this
	// decision (the estimator's §4 narrative), empty for silent policies.
	Explanations []string

	// Delivered is the number of telemetry snapshots the decider saw this
	// interval (0 = withheld, 2+ = duplicates or released reorders).
	Delivered int
	// Faults is the per-interval delta of the injector's counters
	// (all-zero on a clean channel).
	Faults faults.Stats
	// Actuation is the per-interval delta of the actuation counters
	// (all-zero on the synchronous path).
	Actuation actuate.Stats

	// Node is the index of the fabric server hosting the tenant during
	// the interval, or −1 when the loop is not running on a cluster fabric
	// (single-tenant runners, ballooning arms, the serving path).
	Node int
	// NodePressure is the hosting node's shared-channel pressure during
	// the interval (zero when Node is −1).
	NodePressure fabric.Pressure
	// WaitInflation is the per-channel wait-inflation multiplier the
	// tenant's engine ran under during the interval (all-ones when the
	// interference model is off or the node was uncontended; zero when
	// Node is −1).
	WaitInflation fabric.Inflation
}

// Recorder receives one DecisionRecord per loop step. Implementations are
// called synchronously from the loop, in interval order; cluster runners
// call them from the serial decision phase, so a Recorder shared between
// tenant loops needs no locking.
type Recorder interface {
	Record(DecisionRecord)
}

// Collector is the trivial Recorder: it appends every record in order.
type Collector struct {
	Records []DecisionRecord
}

// Record implements Recorder.
func (c *Collector) Record(r DecisionRecord) { c.Records = append(c.Records, r) }

// subFaultStats returns the field-wise difference a−b of two cumulative
// fault counters — the events of one interval.
func subFaultStats(a, b faults.Stats) faults.Stats {
	d := faults.Stats{Intervals: a.Intervals - b.Intervals, Delivered: a.Delivered - b.Delivered}
	for i := range a.Injected {
		d.Injected[i] = a.Injected[i] - b.Injected[i]
	}
	return d
}

// subActuationStats returns the field-wise difference a−b of two
// cumulative actuation counters — the events of one interval.
func subActuationStats(a, b actuate.Stats) actuate.Stats {
	return actuate.Stats{
		Submitted:          a.Submitted - b.Submitted,
		Ops:                a.Ops - b.Ops,
		Attempts:           a.Attempts - b.Attempts,
		Retries:            a.Retries - b.Retries,
		Applied:            a.Applied - b.Applied,
		Throttled:          a.Throttled - b.Throttled,
		TransientFailures:  a.TransientFailures - b.TransientFailures,
		Refused:            a.Refused - b.Refused,
		Superseded:         a.Superseded - b.Superseded,
		Expired:            a.Expired - b.Expired,
		SumEffectIntervals: a.SumEffectIntervals - b.SumEffectIntervals,
		MaxEffectIntervals: a.MaxEffectIntervals, // a high-water mark, not a counter
	}
}
