// Package loop owns the per-tenant control loop of every simulation: the
// paper's closed loop (§2, §6) of telemetry → demand estimation → scaling
// decision → resize, stepped once per billing interval. The four runners
// in internal/sim used to re-implement this loop by hand — four slightly
// drifting copies of the fault-routing, actuation-gating and finalization
// contracts — and all of them are now thin compositions over TenantLoop.
//
// The loop is generic over the desired-state type T: container loops run
// with T = resource.Container, the ballooning experiment with T = float64
// memory targets. One step is split in two phases to match the cluster
// runner's schedule: RunTicks (the engine work, embarrassingly parallel
// across tenants) and DecideApply (the decision and its application, run
// serially where loops share a fabric). Single-tenant runners simply call
// the two back to back.
//
// Every step can emit a DecisionRecord — the uniform audit record behind
// the `-explain` surface — through the pluggable Recorder.
package loop

import (
	"errors"

	"daasscale/internal/actuate"
	"daasscale/internal/engine"
	"daasscale/internal/exec"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/policy"
	"daasscale/internal/stats"
	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// Decision is one interval's decided desired state.
type Decision[T comparable] struct {
	// Target is the desired substrate state.
	Target T
	// Changed asks the synchronous path to apply Target now.
	Changed bool
	// Submit asks the actuated path to write Target as a fresh desire.
	// The two gates differ: a withheld interval must not submit (a lost
	// telemetry payload must not supersede an in-flight resize), while a
	// delivered decision back to the current state must still submit on
	// policy loops — hence Submit tracks delivery, not change.
	Submit bool
	// BalloonTargetMB is the decision's memory target, routed to the
	// engine when Config.SetMemoryTarget is on (container loops; the
	// ballooning loop's Target already is the memory target).
	BalloonTargetMB float64
	// Explanations are the policy's rule-firing explanations.
	Explanations []string
}

// StepInfo tells the Decider how the interval's telemetry arrived.
type StepInfo struct {
	// Interval is the billing interval being decided.
	Interval int
	// Observed is true when at least one snapshot reached the decider.
	Observed bool
	// Faulted is true when a fault injector routes this loop's telemetry;
	// deciders re-derive Changed against the actual state in that case (a
	// mid-burst decision may have moved the policy's internal state while
	// the final decision reports no further change).
	Faulted bool
}

// Decider turns delivered telemetry into per-interval decisions. Observe
// is called once per delivered snapshot (zero times on a withheld
// interval, twice or more on duplicate/reorder bursts); Decide is then
// called exactly once per interval with the truthful snapshot and the
// substrate's pre-apply state.
type Decider[T comparable] interface {
	Observe(snap telemetry.Snapshot)
	Decide(info StepInfo, truth telemetry.Snapshot, actual T) Decision[T]
}

// Applier commits desired states to the substrate. Apply may fail with an
// error wrapping actuate.ErrRefused (a refusal: the loop reconciles and
// moves on) or with a hard error (surfaced to the caller). On the
// actuated path Apply doubles as the actuator's executor.
type Applier[T comparable] interface {
	Apply(T) error
	// Actual is the substrate's current state — the state decisions are
	// held against and the actuator's initial actual.
	Actual() T
}

// Reconciler re-anchors a stateful decider to the substrate's actual
// state: after a refused synchronous resize, and after every actuated
// step (the decider's next decision must start from reality, so requests
// stay incremental instead of compounding into an unplaceable target).
type Reconciler[T comparable] interface {
	ForceActual(T)
}

// Config assembles one TenantLoop.
type Config[T comparable] struct {
	// ID labels the loop's DecisionRecords (tenant ID, policy or arm name).
	ID string
	// Engine is the tenant's engine, already constructed and placed.
	Engine *engine.Engine
	// Seed is the tenant's run seed. The loop derives its private streams
	// from it: the load generator (Seed+GeneratorSeedOffset), the fault
	// injector (SplitSeed with FaultStreamSalt) and the actuation channel
	// (SplitSeed with ActuationStreamSalt).
	Seed int64
	// Jitter is the load generator's arrival jitter.
	Jitter float64
	// Decider and Applier are required; Reconciler is optional.
	Decider    Decider[T]
	Applier    Applier[T]
	Reconciler Reconciler[T]
	// Faults is the telemetry fault plan (zero value = clean channel).
	Faults faults.Plan
	// Actuation configures the decision→substrate channel (zero value =
	// synchronous, infallible).
	Actuation actuate.Config
	// Recorder, when set, receives one DecisionRecord per step.
	Recorder Recorder
	// Describe renders a state for DecisionRecords (nil = blank labels).
	Describe func(T) string
	// SetMemoryTarget routes Decision.BalloonTargetMB to the engine after
	// every apply — the container loops' contract. The ballooning loop
	// leaves it off: its applier already owns the memory target.
	SetMemoryTarget bool
	// CollectLatencies installs a latency sink on the engine so Finalize
	// can compute run-level P95/Avg over every request.
	CollectLatencies bool
	// SampleCapacityHint pre-sizes the run-level latency buffer (used with
	// CollectLatencies) so collection never reallocates mid-run. Runners
	// that know their interval count pass
	// intervals × TicksPerInterval × engine.MaxLatencySamplesPerTick;
	// zero grows on demand.
	SampleCapacityHint int
}

// TenantLoop steps one tenant's control loop. It is single-goroutine
// state: cluster runners may run different loops' RunTicks concurrently,
// but one loop's methods must not be called concurrently.
type TenantLoop[T comparable] struct {
	cfg Config[T]
	eng *engine.Engine
	gen *workload.Generator
	inj *faults.Injector
	act *actuate.Actuator[T]

	snap      telemetry.Snapshot
	dec       Decision[T]
	actual    T
	observed  bool
	totalCost float64
	changes   int
	samples   []float64
	// collect mirrors Config.CollectLatencies; sinkOn is set once
	// RunTicksReference has installed the per-sample engine sink, after
	// which RunTicks must not also bulk-copy the interval's samples.
	collect bool
	sinkOn  bool

	// offered is the per-interval offered-load buffer RunTicks hands to
	// engine.TickBatch, reused across intervals.
	offered []float64
	// delivered, preFaults and preAct carry Decide's channel observations
	// to Apply (the two halves of a step may run in different phases of a
	// cluster schedule; see Decide/Apply).
	delivered int
	preFaults faults.Stats
	preAct    actuate.Stats

	// node, pressure and inflation are the cluster runner's contention
	// stamp (SetNodeContention): the hosting server and the interference
	// state the engine runs under, carried into every DecisionRecord.
	// node is −1 off-fabric.
	node      int
	pressure  fabric.Pressure
	inflation fabric.Inflation
}

// Totals is the loop's run-level aggregation.
type Totals struct {
	Intervals          int
	TotalCost          float64
	AvgCostPerInterval float64
	// Changes counts resizes; on the actuated path it counts resizes that
	// actually reached the substrate (the actuator's Applied), not
	// decisions that merely wished for one.
	Changes        int
	ChangeFraction float64
	// P95Ms and AvgMs are computed over every request of the whole run
	// (zero unless Config.CollectLatencies).
	P95Ms float64
	AvgMs float64
	// Faults and Actuation are the channels' cumulative counters.
	Faults    faults.Stats
	Actuation actuate.Stats
}

// New assembles a loop. The engine, decider and applier must be non-nil.
func New[T comparable](cfg Config[T]) *TenantLoop[T] {
	lp := &TenantLoop[T]{
		cfg:  cfg,
		eng:  cfg.Engine,
		gen:  workload.NewGenerator(cfg.Seed+GeneratorSeedOffset, cfg.Jitter),
		node: -1,
	}
	if cfg.Faults.Enabled() {
		// The stream seed depends only on the run seed, so every policy
		// of a comparison sees the same fault timing and parallel runs
		// are bit-identical to serial ones.
		lp.inj = faults.NewInjector(cfg.Faults, exec.SplitSeed(cfg.Seed, FaultStreamSalt))
	}
	if cfg.Actuation.Enabled() {
		// Same determinism anchor: the actuation stream derives from the
		// run seed alone, never from scheduling.
		lp.act = actuate.New(cfg.Actuation, exec.SplitSeed(cfg.Seed, ActuationStreamSalt), cfg.Applier.Actual())
	}
	lp.collect = cfg.CollectLatencies
	if lp.collect && cfg.SampleCapacityHint > 0 {
		lp.samples = make([]float64, 0, cfg.SampleCapacityHint)
	}
	return lp
}

// appendSamples bulk-appends one interval's latency samples to the
// run-level buffer. Growth doubles the backing array instead of relying on
// append's growth factor: the buffer holds every request of the run
// (hundreds of intervals), and doubling keeps the total bytes moved across
// a run linear in the final size. Sample order — and therefore Finalize's
// percentile/mean bit pattern — is exactly the per-sample sink's.
func (lp *TenantLoop[T]) appendSamples(s []float64) {
	if need := len(lp.samples) + len(s); need > cap(lp.samples) {
		grow := 2 * cap(lp.samples)
		if grow < need {
			grow = need
		}
		ns := make([]float64, len(lp.samples), grow)
		copy(ns, lp.samples)
		lp.samples = ns
	}
	lp.samples = append(lp.samples, s...)
}

// RunTicks drives one billing interval of engine work at the given target
// load and snapshots it. This is the parallel phase: it touches only the
// loop's own engine and generator. The interval's offered loads are drawn
// up front into a reused buffer and run through engine.TickBatch — the
// generator and the engine own independent RNG streams, so batching the
// draws preserves both sequences and the interval is bit-identical to the
// per-call RunTicksReference.
func (lp *TenantLoop[T]) RunTicks(targetRPS float64) {
	n := lp.eng.TicksPerInterval()
	if cap(lp.offered) < n {
		lp.offered = make([]float64, n)
	}
	buf := lp.offered[:n]
	for t := range buf {
		buf[t] = lp.gen.Offered(targetRPS)
	}
	lp.eng.TickBatch(buf)
	if lp.collect && !lp.sinkOn {
		// Bulk-copy the interval's samples before EndInterval resets them.
		// The engine sink stays uninstalled on this path, so the kernel
		// skips the per-sample closure call entirely.
		lp.appendSamples(lp.eng.IntervalLatencies())
	}
	lp.snap = lp.eng.EndInterval()
}

// RunTicksReference is RunTicks through per-call engine.Tick — the
// retained pre-batching interval loop. It is kept as the exact baseline
// the cluster benchmark gate and the batching equivalence tests measure
// RunTicks against.
func (lp *TenantLoop[T]) RunTicksReference(targetRPS float64) {
	if lp.collect && !lp.sinkOn {
		// The baseline collected latencies through a per-sample sink
		// closure; installing it here (before the loop's first tick) keeps
		// the reference schedule's costs faithful to that era. Once on, the
		// sink owns collection for the rest of the run — RunTicks sees
		// sinkOn and skips its bulk copy.
		lp.eng.SetLatencySink(func(ms float64) { lp.samples = append(lp.samples, ms) })
		lp.sinkOn = true
	}
	for t := 0; t < lp.eng.TicksPerInterval(); t++ {
		lp.eng.Tick(lp.gen.Offered(targetRPS))
	}
	lp.snap = lp.eng.EndInterval()
}

// Decide runs the decision half of the interval snapshotted by the last
// RunTicks: cost accrual, telemetry delivery through the fault injector,
// and the decision itself. It reads and writes only loop-private state —
// the engine, the decider, the injector, and the applier's Actual (the
// loop's own substrate record) — never shared infrastructure, which is
// what lets a cluster schedule fan Decide across workers while holding
// back only Apply. Apply must follow before the next Decide.
func (lp *TenantLoop[T]) Decide(interval int) {
	lp.totalCost += lp.snap.Cost
	lp.actual = lp.cfg.Applier.Actual()

	lp.preFaults, lp.preAct = faults.Stats{}, actuate.Stats{}
	if lp.cfg.Recorder != nil {
		if lp.inj != nil {
			lp.preFaults = lp.inj.Stats()
		}
		if lp.act != nil {
			lp.preAct = lp.act.Stats()
		}
	}

	// Telemetry delivery. A clean channel delivers the snapshot verbatim;
	// the injector may withhold the interval (drop, or reorder hold-back)
	// or deliver a burst (a duplicate, or a held snapshot released), in
	// which case the decider observes each in turn and the last decision
	// wins.
	delivered := 0
	if lp.inj == nil {
		lp.cfg.Decider.Observe(lp.snap)
		delivered = 1
	} else {
		for _, fs := range lp.inj.Apply(lp.snap) {
			lp.cfg.Decider.Observe(fs)
			delivered++
		}
	}
	lp.delivered = delivered
	lp.observed = delivered > 0
	lp.dec = lp.cfg.Decider.Decide(StepInfo{
		Interval: interval,
		Observed: lp.observed,
		Faulted:  lp.inj != nil,
	}, lp.snap, lp.actual)
}

// Apply commits the decision of the last Decide to the substrate —
// synchronously or through the actuation channel — reconciles the decider
// with the substrate's reality, and emits the DecisionRecord. This is the
// serial half: on a shared fabric the applies must run in tenant order.
func (lp *TenantLoop[T]) Apply(interval int) error {
	dec := lp.dec
	delivered := lp.delivered
	preFaults, preAct := lp.preFaults, lp.preAct

	if lp.act == nil {
		// Synchronous path: the decision applies instantly within the
		// interval. A refusal leaves the substrate untouched — the tenant
		// keeps its state and the decider is reconciled with reality; a
		// hard error surfaces.
		if dec.Changed {
			err := lp.cfg.Applier.Apply(dec.Target)
			switch {
			case errors.Is(err, actuate.ErrRefused):
				if lp.cfg.Reconciler != nil {
					lp.cfg.Reconciler.ForceActual(lp.cfg.Applier.Actual())
				}
			case err != nil:
				return err
			default:
				lp.changes++
			}
		}
	} else {
		// Actuated path: the decision is a desired-state write; the
		// actuator reconciles it onto the substrate through the failable
		// channel. Submit is idempotent, so re-issuing an unchanged
		// target every interval is free; a withheld interval submits
		// nothing, leaving in-flight operations alone.
		if dec.Submit {
			lp.act.Submit(dec.Target)
		}
		if err := lp.act.Step(interval, lp.cfg.Applier.Apply); err != nil {
			return err
		}
		if lp.cfg.Reconciler != nil {
			// Re-anchor the decider to the substrate's reality: its next
			// decision starts from the actual state, so requests stay
			// incremental — a refused change is re-derived from
			// observations instead of compounding into a target the
			// substrate can never satisfy.
			lp.cfg.Reconciler.ForceActual(lp.cfg.Applier.Actual())
		}
	}
	if lp.cfg.SetMemoryTarget {
		lp.eng.SetMemoryTargetMB(dec.BalloonTargetMB)
	}

	if lp.cfg.Recorder != nil {
		rec := DecisionRecord{
			Tenant:          lp.cfg.ID,
			Interval:        interval,
			Snapshot:        lp.snap,
			Changed:         dec.Changed,
			Observed:        lp.observed,
			Submitted:       lp.act != nil && dec.Submit,
			BalloonTargetMB: dec.BalloonTargetMB,
			Explanations:    dec.Explanations,
			Delivered:       delivered,
			Node:            lp.node,
			NodePressure:    lp.pressure,
			WaitInflation:   lp.inflation,
		}
		if lp.cfg.Describe != nil {
			rec.Actual = lp.cfg.Describe(lp.actual)
			rec.Target = lp.cfg.Describe(dec.Target)
		}
		if lp.node >= 0 {
			if mult := lp.inflation.Max(); mult >= policy.InflationExplainThreshold {
				// Fresh slice: the decision's explanations may share a
				// backing array with the decider's internals.
				exp := make([]string, 0, len(rec.Explanations)+1)
				exp = append(exp, rec.Explanations...)
				rec.Explanations = append(exp, policy.ContentionExplanation(lp.node, mult))
			}
		}
		if lp.inj != nil {
			rec.Faults = subFaultStats(lp.inj.Stats(), preFaults)
		}
		if lp.act != nil {
			rec.Actuation = subActuationStats(lp.act.Stats(), preAct)
		}
		lp.cfg.Recorder.Record(rec)
	}
	return nil
}

// SetNodeContention stamps the loop with its hosting server's contention
// state — the node index, channel pressures, and the wait-inflation
// multipliers the engine runs under. Cluster runners call it from the
// serial apply phase after recomputing node pressure, i.e. the stamp
// describes the interference active for the *following* intervals, which
// is exactly what their DecisionRecords should carry (the engines consume
// the same multipliers via engine.SetContention). Off-fabric loops never
// call it and keep node −1.
func (lp *TenantLoop[T]) SetNodeContention(node int, p fabric.Pressure, inf fabric.Inflation) {
	lp.node = node
	lp.pressure = p
	lp.inflation = inf
}

// StepSnapshot runs one full decision step against an externally
// collected snapshot — the serving path, where telemetry arrives over the
// wire instead of from a loop-owned engine. The loop's engine and
// generator are never touched (Config.Engine may be nil when
// SetMemoryTarget is off), and the wire channel's fault handling —
// dedup, reordering, sanitization — is the caller's job, so the loop's
// own injector is bypassed: observed=true feeds the snapshot to the
// decider exactly once; observed=false is a withheld interval (the
// ingest gap a bounded reorder window gave up waiting on) and yields the
// hold decision. Everything downstream — decision, apply, reconcile,
// DecisionRecord — is the same code path the simulation runners audit.
func (lp *TenantLoop[T]) StepSnapshot(interval int, snap telemetry.Snapshot, observed bool) error {
	lp.snap = snap
	lp.totalCost += snap.Cost
	lp.actual = lp.cfg.Applier.Actual()

	lp.preFaults, lp.preAct = faults.Stats{}, actuate.Stats{}
	if lp.cfg.Recorder != nil && lp.act != nil {
		lp.preAct = lp.act.Stats()
	}
	lp.delivered = 0
	if observed {
		lp.cfg.Decider.Observe(snap)
		lp.delivered = 1
	}
	lp.observed = observed
	lp.dec = lp.cfg.Decider.Decide(StepInfo{
		Interval: interval,
		Observed: observed,
		Faulted:  false,
	}, snap, lp.actual)
	return lp.Apply(interval)
}

// DecideApply runs the decision phase of the interval snapshotted by the
// last RunTicks — Decide then Apply, back to back. Single-tenant loops
// (and cluster schedules with nothing to parallelize) use this
// composition; it is exactly the historical single-call sequence.
func (lp *TenantLoop[T]) DecideApply(interval int) error {
	lp.Decide(interval)
	return lp.Apply(interval)
}

// Step runs one full interval — RunTicks then DecideApply — the
// single-tenant composition.
func (lp *TenantLoop[T]) Step(interval int, targetRPS float64) error {
	lp.RunTicks(targetRPS)
	return lp.DecideApply(interval)
}

// Snapshot returns the truthful snapshot of the last interval.
func (lp *TenantLoop[T]) Snapshot() telemetry.Snapshot { return lp.snap }

// LastDecision returns the last interval's decision.
func (lp *TenantLoop[T]) LastDecision() Decision[T] { return lp.dec }

// LastActual returns the substrate state the last interval started from
// (captured before the decision was applied).
func (lp *TenantLoop[T]) LastActual() T { return lp.actual }

// LastObserved reports whether the last interval's telemetry reached the
// decider.
func (lp *TenantLoop[T]) LastObserved() bool { return lp.observed }

// Finalize computes the loop's run-level totals over the given number of
// intervals (cluster runners pass the cluster-wide interval count, which
// may exceed this tenant's trace).
func (lp *TenantLoop[T]) Finalize(intervals int) Totals {
	tot := Totals{
		Intervals: intervals,
		TotalCost: lp.totalCost,
		Changes:   lp.changes,
	}
	if intervals > 0 {
		tot.AvgCostPerInterval = tot.TotalCost / float64(intervals)
		tot.ChangeFraction = float64(tot.Changes) / float64(intervals)
	}
	if len(lp.samples) > 0 {
		// The sample buffer is private to this loop and dead after these
		// aggregates, so the percentile selects in place (order is
		// irrelevant to Mean).
		tot.P95Ms = stats.QuantileSelect(lp.samples, 0.95)
		tot.AvgMs = stats.Mean(lp.samples)
	}
	if lp.inj != nil {
		tot.Faults = lp.inj.Stats()
	}
	if lp.act != nil {
		// On the actuated path, Changes counts resizes that actually
		// reached the substrate, not decisions that merely wished for one.
		tot.Actuation = lp.act.Stats()
		tot.Changes = tot.Actuation.Applied
		if intervals > 0 {
			tot.ChangeFraction = float64(tot.Changes) / float64(intervals)
		}
	}
	return tot
}
