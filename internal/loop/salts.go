package loop

// The seed-stream salts of one tenant's control loop. Every source of
// randomness a loop owns derives its stream from the single run seed via
// exec.SplitSeed with one of these constants, so that (a) the streams are
// decorrelated from each other and from the engine's base stream (which
// consumes the raw seed, salt-free), and (b) results are a pure function
// of the seed — never of scheduling or worker count.
//
// These constants were historically copy-pasted into every runner
// (sim.go, multitenant.go, ballooning.go); this file is now their only
// home. TestSaltsPairwiseDistinct pins that no two streams can collide.
const (
	// FaultStreamSalt decorrelates the telemetry fault injector's stream
	// from the other consumers of the run seed.
	FaultStreamSalt = 0x6661756C74 // "fault"

	// ActuationStreamSalt decorrelates the resize-actuation channel's
	// stream from the fault injector's and the engine's.
	ActuationStreamSalt = 0x616374 // "act"

	// MigrationStreamSalt decorrelates the migration-actuation channel's
	// stream (the failable channel rebalance moves ride) from the resize
	// actuator's — a tenant may have both in flight in the same interval.
	MigrationStreamSalt = 0x6D6967 // "mig"

	// GeneratorSeedOffset is added to the run seed for the load
	// generator's arrival-jitter stream (a plain offset rather than a
	// SplitSeed salt, kept for bit-compatibility with the original
	// runners).
	GeneratorSeedOffset = 1000
)
