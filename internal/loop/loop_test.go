package loop

import (
	"errors"
	"fmt"
	"testing"

	"daasscale/internal/actuate"
	"daasscale/internal/engine"
	"daasscale/internal/faults"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// TestSaltsPairwiseDistinct pins the stream-derivation contract: every
// seed stream a loop owns must be decorrelated from every other. The
// engine's base stream uses the raw seed, i.e. salt 0.
func TestSaltsPairwiseDistinct(t *testing.T) {
	salts := map[string]int64{
		"engine-base": 0,
		"fault":       FaultStreamSalt,
		"actuation":   ActuationStreamSalt,
		"migration":   MigrationStreamSalt,
	}
	for a, av := range salts {
		for b, bv := range salts {
			if a != b && av == bv {
				t.Errorf("streams %q and %q share salt %#x", a, b, av)
			}
		}
	}
	if GeneratorSeedOffset == 0 {
		t.Error("generator offset 0 would collide with the engine's base stream")
	}
}

func testEngine(t *testing.T) (*engine.Engine, resource.Container) {
	t.Helper()
	cat := resource.LockStepCatalog()
	cont := cat.AtStep(3)
	eng, err := engine.New(workload.DS2(), cont, 7, engine.Options{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	return eng, cont
}

// scriptedPolicy returns a fixed sequence of decisions, one per Observe.
type scriptedPolicy struct {
	cont resource.Container
	decs []policy.Decision
	idx  int
}

func (p *scriptedPolicy) Name() string { return "scripted" }
func (p *scriptedPolicy) Observe(telemetry.Snapshot) policy.Decision {
	d := p.decs[p.idx%len(p.decs)]
	p.idx++
	return d
}
func (p *scriptedPolicy) Container() resource.Container { return p.cont }

// TestPolicyDeciderHoldsWithheldInterval pins the graceful-degradation
// contract of a lost telemetry payload: no decision, keep the actual
// container and the substrate's memory target, never submit.
func TestPolicyDeciderHoldsWithheldInterval(t *testing.T) {
	cat := resource.LockStepCatalog()
	actual := cat.AtStep(2)
	d := &PolicyDecider{
		Policy:       &scriptedPolicy{cont: actual},
		MemoryTarget: func() float64 { return 1234 },
	}
	dec := d.Decide(StepInfo{Interval: 5, Observed: false, Faulted: true}, telemetry.Snapshot{}, actual)
	if dec.Changed {
		t.Error("withheld interval must not change the container")
	}
	if dec.Submit {
		t.Error("withheld interval must not submit a fresh desire (it would supersede in-flight resizes)")
	}
	if dec.Target.Name != actual.Name {
		t.Errorf("hold target = %s, want the actual container %s", dec.Target.Name, actual.Name)
	}
	if dec.BalloonTargetMB != 1234 {
		t.Errorf("hold memory target = %v, want the substrate's 1234", dec.BalloonTargetMB)
	}
}

// TestPolicyDeciderRederivesChangedAfterBurst pins the burst contract: a
// mid-burst decision may move the policy's internal container while the
// final decision reports no further change — Changed is re-derived
// against the actual container on the faulted path, and only there.
func TestPolicyDeciderRederivesChangedAfterBurst(t *testing.T) {
	cat := resource.LockStepCatalog()
	actual := cat.AtStep(2)
	moved := cat.AtStep(3)

	// The policy's last decision says "no change" but its target differs
	// from the substrate (it moved mid-burst).
	p := &scriptedPolicy{cont: actual, decs: []policy.Decision{{Target: moved, Changed: false}}}
	d := &PolicyDecider{Policy: p, MemoryTarget: func() float64 { return 0 }}
	d.Observe(telemetry.Snapshot{})
	dec := d.Decide(StepInfo{Observed: true, Faulted: true}, telemetry.Snapshot{}, actual)
	if !dec.Changed {
		t.Error("faulted path must re-derive Changed against the actual container")
	}
	if !dec.Submit {
		t.Error("a delivered interval submits")
	}

	// Clean path: the policy's own Changed is authoritative, even when the
	// target happens to equal the actual container.
	p2 := &scriptedPolicy{cont: actual, decs: []policy.Decision{{Target: actual, Changed: true}}}
	d2 := &PolicyDecider{Policy: p2, MemoryTarget: func() float64 { return 0 }}
	d2.Observe(telemetry.Snapshot{})
	dec2 := d2.Decide(StepInfo{Observed: true, Faulted: false}, telemetry.Snapshot{}, actual)
	if !dec2.Changed {
		t.Error("clean path must keep the policy's Changed verbatim")
	}
}

// TestLoopDropAllNeverDecides runs a real engine under a drop-everything
// fault plan: every interval is withheld, so the container never changes
// and, on the actuated path, nothing is ever submitted.
func TestLoopDropAllNeverDecides(t *testing.T) {
	var plan faults.Plan
	plan.Rates[faults.KindDrop] = 1

	for _, actuated := range []bool{false, true} {
		eng, cont := testEngine(t)
		var cfgAct actuate.Config
		if actuated {
			cfgAct = actuate.Config{Seed: 3, LatencyIntervals: 1}
		}
		col := &Collector{}
		lp := New(Config[resource.Container]{
			ID:     "drop-all",
			Engine: eng,
			Seed:   7,
			Jitter: 0.1,
			Decider: NewPolicyDecider(&scriptedPolicy{
				cont: cont,
				decs: []policy.Decision{{Target: resource.LockStepCatalog().Largest(), Changed: true}},
			}, eng),
			Applier:         EngineApplier{Engine: eng},
			Faults:          plan,
			Actuation:       cfgAct,
			Recorder:        col,
			Describe:        DescribeContainer,
			SetMemoryTarget: true,
		})
		for i := 0; i < 10; i++ {
			if err := lp.Step(i, 50); err != nil {
				t.Fatal(err)
			}
		}
		if got := eng.Container().Name; got != cont.Name {
			t.Errorf("actuated=%t: container moved to %s under a fully dropped channel", actuated, got)
		}
		tot := lp.Finalize(10)
		if tot.Changes != 0 {
			t.Errorf("actuated=%t: Changes = %d, want 0", actuated, tot.Changes)
		}
		if tot.Actuation.Submitted != 0 {
			t.Errorf("actuated=%t: Submitted = %d, want 0 (withheld intervals must not submit)", actuated, tot.Actuation.Submitted)
		}
		if len(col.Records) != 10 {
			t.Fatalf("actuated=%t: %d records, want 10", actuated, len(col.Records))
		}
		for _, r := range col.Records {
			if r.Observed || r.Delivered != 0 {
				t.Errorf("actuated=%t: interval %d observed=%t delivered=%d under drop-all", actuated, r.Interval, r.Observed, r.Delivered)
			}
			if r.Faults.Injected[faults.KindDrop] != 1 {
				t.Errorf("interval %d: drop delta = %d, want 1", r.Interval, r.Faults.Injected[faults.KindDrop])
			}
		}
	}
}

// TestLoopRecorderAuditTrail pins the DecisionRecord contents on a clean
// synchronous run: one record per interval, in order, with the decision's
// explanations and target labels.
func TestLoopRecorderAuditTrail(t *testing.T) {
	eng, cont := testEngine(t)
	cat := resource.LockStepCatalog()
	bigger := cat.AtStep(cont.Step + 1)
	col := &Collector{}
	lp := New(Config[resource.Container]{
		ID:     "audit",
		Engine: eng,
		Seed:   7,
		Jitter: 0.1,
		Decider: NewPolicyDecider(&scriptedPolicy{
			cont: cont,
			decs: []policy.Decision{{Target: bigger, Changed: true, Explanations: []string{"scale up: CPU waits dominate"}}},
		}, eng),
		Applier:         EngineApplier{Engine: eng},
		Recorder:        col,
		Describe:        DescribeContainer,
		SetMemoryTarget: true,
	})
	if err := lp.Step(0, 50); err != nil {
		t.Fatal(err)
	}
	if len(col.Records) != 1 {
		t.Fatalf("%d records, want 1", len(col.Records))
	}
	r := col.Records[0]
	if r.Tenant != "audit" || r.Interval != 0 {
		t.Errorf("record identity = %q/%d, want audit/0", r.Tenant, r.Interval)
	}
	if !r.Observed || r.Delivered != 1 || !r.Changed {
		t.Errorf("record flags = observed=%t delivered=%d changed=%t, want true/1/true", r.Observed, r.Delivered, r.Changed)
	}
	if r.Actual != cont.Name || r.Target != bigger.Name {
		t.Errorf("record states = %s→%s, want %s→%s", r.Actual, r.Target, cont.Name, bigger.Name)
	}
	if len(r.Explanations) != 1 || r.Explanations[0] != "scale up: CPU waits dominate" {
		t.Errorf("explanations = %v, want the policy's narrative", r.Explanations)
	}
	if eng.Container().Name != bigger.Name {
		t.Errorf("sync apply did not land: engine runs %s", eng.Container().Name)
	}
	if tot := lp.Finalize(1); tot.Changes != 1 {
		t.Errorf("Changes = %d, want 1", tot.Changes)
	}
}

// refusingApplier refuses the first n applies.
type refusingApplier struct {
	eng     *engine.Engine
	refuse  int
	refused int
}

func (a *refusingApplier) Apply(c resource.Container) error {
	if a.refused < a.refuse {
		a.refused++
		return fmt.Errorf("%w: no room", actuate.ErrRefused)
	}
	a.eng.SetContainer(c)
	return nil
}
func (a *refusingApplier) Actual() resource.Container { return a.eng.Container() }

type recordingReconciler struct{ forced []resource.Container }

func (r *recordingReconciler) ForceActual(c resource.Container) { r.forced = append(r.forced, c) }

// TestLoopSyncRefusalReconciles pins the synchronous refusal contract:
// the substrate keeps its state, the change is not counted, and the
// reconciler is re-anchored to the actual state.
func TestLoopSyncRefusalReconciles(t *testing.T) {
	eng, cont := testEngine(t)
	cat := resource.LockStepCatalog()
	bigger := cat.AtStep(cont.Step + 1)
	rec := &recordingReconciler{}
	lp := New(Config[resource.Container]{
		Engine: eng,
		Seed:   7,
		Jitter: 0.1,
		Decider: NewPolicyDecider(&scriptedPolicy{
			cont: cont,
			decs: []policy.Decision{{Target: bigger, Changed: true}},
		}, eng),
		Applier:         &refusingApplier{eng: eng, refuse: 1},
		Reconciler:      rec,
		SetMemoryTarget: true,
	})
	if err := lp.Step(0, 50); err != nil {
		t.Fatalf("a refusal must not surface as an error: %v", err)
	}
	if eng.Container().Name != cont.Name {
		t.Errorf("refused resize moved the engine to %s", eng.Container().Name)
	}
	if len(rec.forced) != 1 || rec.forced[0].Name != cont.Name {
		t.Errorf("reconciler forced %v, want one re-anchor to %s", rec.forced, cont.Name)
	}
	if err := lp.Step(1, 50); err != nil {
		t.Fatal(err)
	}
	tot := lp.Finalize(2)
	if tot.Changes != 1 {
		t.Errorf("Changes = %d, want 1 (the refused attempt must not count)", tot.Changes)
	}
	if eng.Container().Name != bigger.Name {
		t.Errorf("second attempt should land: engine runs %s", eng.Container().Name)
	}
}

// TestLoopHardErrorSurfaces pins that a non-refusal applier error aborts
// the step.
func TestLoopHardErrorSurfaces(t *testing.T) {
	eng, cont := testEngine(t)
	hard := errors.New("fabric inconsistency")
	lp := New(Config[resource.Container]{
		Engine: eng,
		Seed:   7,
		Jitter: 0.1,
		Decider: NewPolicyDecider(&scriptedPolicy{
			cont: cont,
			decs: []policy.Decision{{Target: resource.LockStepCatalog().Largest(), Changed: true}},
		}, eng),
		Applier:         failingApplier{eng: eng, err: hard},
		SetMemoryTarget: true,
	})
	if err := lp.Step(0, 50); !errors.Is(err, hard) {
		t.Fatalf("err = %v, want the applier's hard error", err)
	}
}

type failingApplier struct {
	eng *engine.Engine
	err error
}

func (a failingApplier) Apply(resource.Container) error { return a.err }
func (a failingApplier) Actual() resource.Container     { return a.eng.Container() }
