package loop

import (
	"daasscale/internal/engine"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// PolicyDecider adapts a policy.Policy to the Decider contract — the
// canonical implementation of the withheld-interval and burst-delivery
// semantics that used to live in observeThroughFaults and its clones.
//
// A withheld interval (nothing delivered) yields the hold decision: keep
// the actual container and the substrate's current memory target, Changed
// false — the graceful-degradation contract of a lost telemetry payload.
// On a faulted channel, Changed is re-derived against the actual
// container even when snapshots were delivered: a mid-burst decision may
// have moved the policy's internal container while the final decision
// reports no further change.
type PolicyDecider struct {
	// Policy makes the decisions. Required.
	Policy policy.Policy
	// MemoryTarget reports the substrate's active memory target, which a
	// hold decision carries forward. Required.
	MemoryTarget func() float64

	last policy.Decision
}

// NewPolicyDecider builds the decider for a policy steering the given
// engine.
func NewPolicyDecider(p policy.Policy, eng *engine.Engine) *PolicyDecider {
	return &PolicyDecider{Policy: p, MemoryTarget: eng.MemoryTargetMB}
}

// Observe implements Decider: feed one delivered snapshot to the policy.
func (d *PolicyDecider) Observe(s telemetry.Snapshot) { d.last = d.Policy.Observe(s) }

// Decide implements Decider.
func (d *PolicyDecider) Decide(info StepInfo, _ telemetry.Snapshot, actual resource.Container) Decision[resource.Container] {
	pd := d.last
	if !info.Observed {
		pd = policy.Decision{Target: actual, BalloonTargetMB: d.MemoryTarget()}
	}
	if info.Faulted {
		pd.Changed = pd.Target.Name != actual.Name
	}
	return Decision[resource.Container]{
		Target:          pd.Target,
		Changed:         pd.Changed,
		Submit:          info.Observed,
		BalloonTargetMB: pd.BalloonTargetMB,
		Explanations:    pd.Explanations,
	}
}

// EngineApplier is the direct, infallible container applier: resizes land
// on the engine instantly (the single-tenant substrate, no fabric).
type EngineApplier struct {
	Engine *engine.Engine
}

// Apply implements Applier.
func (a EngineApplier) Apply(c resource.Container) error {
	a.Engine.SetContainer(c)
	return nil
}

// Actual implements Applier.
func (a EngineApplier) Actual() resource.Container { return a.Engine.Container() }

// MemoryApplier is the ballooning substrate: desired states are memory
// targets landing on the engine's balloon.
type MemoryApplier struct {
	Engine *engine.Engine
}

// Apply implements Applier.
func (a MemoryApplier) Apply(mb float64) error {
	a.Engine.SetMemoryTargetMB(mb)
	return nil
}

// Actual implements Applier.
func (a MemoryApplier) Actual() float64 { return a.Engine.MemoryTargetMB() }

// DescribeContainer renders a container for DecisionRecords.
func DescribeContainer(c resource.Container) string { return c.Name }
