package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapMatchesSerial(t *testing.T) {
	task := func(_ context.Context, i int) (int64, error) {
		// Deterministic per-index work: a short RNG stream from a split seed.
		rng := rand.New(rand.NewSource(SplitSeed(42, int64(i))))
		var sum int64
		for k := 0; k < 100; k++ {
			sum += rng.Int63n(1000)
		}
		return sum, nil
	}
	serial := make([]int64, 200)
	for i := range serial {
		v, _ := task(context.Background(), i)
		serial[i] = v
	}
	for _, workers := range []int{1, 2, 7, 16} {
		got, err := Map(context.Background(), len(serial), Options{Workers: workers}, task)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: index %d diverged: %d vs %d", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestForEachEmptyAndNil(t *testing.T) {
	if err := ForEach(context.Background(), 0, Options{}, func(context.Context, int) error { return nil }); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if err := ForEach(context.Background(), 3, Options{}, nil); err == nil {
		t.Error("nil task should fail")
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(context.Background(), 1000, Options{Workers: 4}, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 10 {
			return fmt.Errorf("task %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// The error cancels the batch: nowhere near all 1000 tasks should run.
	if n := ran.Load(); n == 1000 {
		t.Error("error did not short-circuit the batch")
	}
}

func TestForEachCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 100, Options{Workers: 2}, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran on a dead context", ran.Load())
	}
}

func TestForEachCancelMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	start := time.Now()
	err := ForEach(ctx, 10_000, Options{Workers: 2}, func(ctx context.Context, i int) error {
		if ran.Add(1) == 20 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() > 200 {
		t.Errorf("cancellation was not prompt: %d tasks ran", ran.Load())
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v", d)
	}
}

// TestProgressConcurrent exercises the progress hook from many workers at
// once — run under -race this is the regression test for callback safety.
func TestProgressConcurrent(t *testing.T) {
	var (
		mu   sync.Mutex
		last Progress
		hits int
	)
	pool := NewPool(Options{Workers: 8, ProgressEvery: 1, OnProgress: func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		hits++
		last = p
	}})
	err := pool.Run(context.Background(), 500, func(context.Context, int) error {
		time.Sleep(20 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits < 500 {
		t.Errorf("progress hook fired %d times, want ≥ 500", hits)
	}
	if last.Done != 500 || last.Total != 500 {
		t.Errorf("final progress %+v, want 500/500", last)
	}
	if last.Failed != 0 {
		t.Errorf("failed = %d", last.Failed)
	}
	if last.TasksPerSec <= 0 {
		t.Errorf("tasks/sec = %v", last.TasksPerSec)
	}
	if last.WorkerUtilization < 0 || last.WorkerUtilization > 1 {
		t.Errorf("worker utilization = %v", last.WorkerUtilization)
	}
	if last.P95 < last.P50 {
		t.Errorf("p95 %v below p50 %v", last.P95, last.P50)
	}
}

func TestPoolAccumulatesAcrossBatches(t *testing.T) {
	pool := NewPool(Options{Workers: 3})
	for batch := 0; batch < 5; batch++ {
		if err := pool.Run(context.Background(), 40, func(context.Context, int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.Done != 200 || st.Total != 200 {
		t.Errorf("stats after 5 batches: %+v", st)
	}
	if st.Workers != 3 {
		t.Errorf("workers = %d", st.Workers)
	}
}

func TestSplitSeed(t *testing.T) {
	if SplitSeed(1, 2) != SplitSeed(1, 2) {
		t.Error("SplitSeed not deterministic")
	}
	seen := map[int64]bool{}
	for i := int64(0); i < 10_000; i++ {
		s := SplitSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	// Different bases give different streams.
	if SplitSeed(1, 7) == SplitSeed(2, 7) {
		t.Error("base seed does not separate streams")
	}
	if SplitSeedString(1, "tenant-a") == SplitSeedString(1, "tenant-b") {
		t.Error("string identities collide")
	}
	if SplitSeedString(9, "x") != SplitSeedString(9, "x") {
		t.Error("SplitSeedString not deterministic")
	}
}

// TestPanicRecoveredIntoTaskError: a panicking task must not kill the
// process — Run returns a *PanicError carrying the index, the panic value
// and a stack trace, and the remaining work is canceled like any other
// first task error.
func TestPanicRecoveredIntoTaskError(t *testing.T) {
	var done atomic.Int64
	err := ForEach(context.Background(), 64, Options{Workers: 4}, func(ctx context.Context, i int) error {
		if i == 7 {
			panic("tenant 7 corrupted its engine")
		}
		done.Add(1)
		return nil
	})
	if err == nil {
		t.Fatal("panic must surface as a task error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Index != 7 {
		t.Errorf("Index = %d, want 7", pe.Index)
	}
	if pe.Value != "tenant 7 corrupted its engine" {
		t.Errorf("Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "exec_test.go") {
		t.Errorf("stack does not point at the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "task 7 panicked") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

// TestPanicCountsAsFailedTask: the pool's metrics classify a recovered
// panic as a failed task, not a lost one.
func TestPanicCountsAsFailedTask(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	_ = p.Run(context.Background(), 4, func(ctx context.Context, i int) error {
		if i == 0 {
			panic(i)
		}
		return nil
	})
	st := p.Stats()
	if st.Failed == 0 {
		t.Errorf("recovered panic must count as a failed task: %+v", st)
	}
	if st.Done != st.Total {
		t.Errorf("Done %d must converge to Total %d after the batch", st.Done, st.Total)
	}
}

// TestTaskTimeoutWatchdog: with TaskTimeout set, a task that honours its
// context is cut off at the deadline and the batch fails with an error
// wrapping context.DeadlineExceeded; the parent context stays live.
func TestTaskTimeoutWatchdog(t *testing.T) {
	err := ForEach(context.Background(), 2, Options{Workers: 2, TaskTimeout: 10 * time.Millisecond},
		func(ctx context.Context, i int) error {
			if i == 0 {
				return nil // fast task: finishes well inside the deadline
			}
			<-ctx.Done() // slow task: waits for the watchdog
			return ctx.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestTaskTimeoutNotTriggeredByFastTasks: tasks that finish inside the
// deadline are unaffected by the watchdog.
func TestTaskTimeoutNotTriggeredByFastTasks(t *testing.T) {
	err := ForEach(context.Background(), 32, Options{Workers: 4, TaskTimeout: time.Second},
		func(ctx context.Context, i int) error { return ctx.Err() })
	if err != nil {
		t.Fatalf("fast tasks must pass under the watchdog: %v", err)
	}
}

// TestStatsBeforeFirstTask: a Stats snapshot taken before the pool ever
// ran a task must be all-zero and finite — no NaN/Inf from dividing by a
// zero Elapsed. Progress printers render the first snapshot unguarded.
func TestStatsBeforeFirstTask(t *testing.T) {
	p := NewPool(Options{Workers: 4})
	st := p.Stats()
	if st.Done != 0 || st.Total != 0 || st.Failed != 0 || st.Elapsed != 0 {
		t.Fatalf("fresh pool stats %+v", st)
	}
	for name, v := range map[string]float64{
		"TasksPerSec":       st.TasksPerSec,
		"WorkerUtilization": st.WorkerUtilization,
	} {
		if v != 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v before first task, want exactly 0", name, v)
		}
	}
	// And after an empty batch (n = 0): still finite zeros.
	if err := p.Run(context.Background(), 0, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if math.IsNaN(st.TasksPerSec) || math.IsInf(st.TasksPerSec, 0) {
		t.Fatalf("TasksPerSec = %v after empty batch", st.TasksPerSec)
	}
}
