package exec

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// StreamOrdered runs task(ctx, i) for every i in [0, n) across a worker
// pool and delivers each result to emit in strictly increasing index order,
// overlapping computation with emission. Unlike Map it never materializes
// more than `window` results: a task may run ahead of the emitter by at
// most window indices, so memory stays bounded by the window, not by n —
// the primitive behind the fleet pipeline's "generate → analyze → discard"
// contract.
//
// emit runs on the calling goroutine, serially and in order, so a caller
// can fold results into accumulator state without locking; returning an
// error from emit cancels the remaining work. Determinism follows the
// package rule: tasks write only their own result, emission order is fixed,
// so any worker count produces the identical emit sequence.
//
// window ≤ 0 selects 2× the resolved worker count. The first task or emit
// error cancels the stream and is returned; a canceled parent context
// returns the context error.
func StreamOrdered[T any](ctx context.Context, n int, opts Options, window int,
	task func(ctx context.Context, i int) (T, error),
	emit func(i int, v T) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	return streamOrdered(ctx, NewPool(opts), n, window, task, emit)
}

// streamOrdered is the shared implementation. The coordination scheme is a
// ring of `window` slots plus a token bucket: a worker takes a token
// *before* claiming the next index, and the emitter returns the token only
// after consuming a slot. Tokens are released in emission order and
// acquired in index order, so at most `window` indices are ever claimed but
// unemitted — which makes slot i%window collision-free and bounds memory.
func streamOrdered[T any](ctx context.Context, p *Pool, n, window int,
	task func(ctx context.Context, i int) (T, error),
	emit func(i int, v T) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if window <= 0 {
		window = 2 * workers
	}
	if window > n {
		window = n
	}
	// A window narrower than the pool is legal — the token bucket simply
	// idles the surplus workers — so the memory bound always wins.

	p.mu.Lock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.mu.Unlock()
	p.total.Add(int64(n))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	slots := make([]T, window)
	done := make([]chan error, window)
	for i := range done {
		done[i] = make(chan error, 1)
	}
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	var (
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tokens:
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				begin := time.Now()
				v, err := runStreamTask(runCtx, p, i, task)
				p.observe(time.Since(begin), err)
				// The store happens-before the channel send the emitter
				// receives, and token gating guarantees the previous
				// occupant of this slot was already consumed.
				slots[i%window] = v
				done[i%window] <- err
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}

	var zero T
emitLoop:
	for k := 0; k < n; k++ {
		select {
		case err := <-done[k%window]:
			if err != nil {
				break emitLoop // fail() already ran on the worker
			}
			if err := emit(k, slots[k%window]); err != nil {
				fail(err)
				break emitLoop
			}
			slots[k%window] = zero // don't pin emitted results
			tokens <- struct{}{}   // buffered: ≤ window tokens ever exist
		case <-runCtx.Done():
			break emitLoop
		}
	}
	cancel()
	wg.Wait()
	p.emit()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runStreamTask mirrors Pool.runTask (panic fence + optional watchdog) for
// value-returning tasks.
func runStreamTask[T any](ctx context.Context, p *Pool, i int, task func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	if p.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.timeout)
		defer cancel()
	}
	return task(ctx, i)
}
