// Package exec is the parallel fan-out executor behind every fleet-scale
// simulation path. Per-tenant simulations are embarrassingly parallel —
// each tenant owns its engine, generator and RNG — so the executor's job is
// purely mechanical: spread N independent, index-addressed tasks across a
// fixed pool of workers, honour context cancellation promptly, keep memory
// bounded regardless of fleet size, and expose cheap progress metrics
// (tasks/sec, per-task p50/p95 wall time, worker utilization) that the CLIs
// can render while a thousand-tenant replay grinds.
//
// Determinism is the design constraint everything else bends around:
// workers pull indices from an atomic counter (no queue, no channel
// buffering), every task writes only its own index-addressed slot, and all
// randomness is derived from the base seed via SplitSeed — so a parallel
// run is bit-identical to a serial run of the same seed, regardless of
// worker count or scheduling order.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is the error a recovered worker panic converts into: a single
// panicking task fails its run cleanly instead of killing the whole
// process (one misbehaving tenant out of a thousand must not take the
// fleet replay down with it). It records the task index, the recovered
// value, and the goroutine stack at the point of the panic.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the value passed to panic().
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error renders the panic with its stack, so the failure is debuggable
// from the run error alone.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// durationWindow is the size of the ring buffer of recent per-task wall
// times used for the p50/p95 progress metrics. A fixed window keeps the
// executor's memory footprint independent of how many tasks run through it.
const durationWindow = 512

// Progress is a point-in-time snapshot of a pool's throughput metrics. The
// executor hands it to the OnProgress hook and returns it from Stats.
type Progress struct {
	// Done is the number of tasks that finished (successfully or not) and
	// Total the number submitted so far across all batches.
	Done, Total int
	// Failed counts tasks that returned an error.
	Failed int
	// Workers is the resolved worker count.
	Workers int
	// Elapsed is the wall time since the pool started its first task.
	Elapsed time.Duration
	// TasksPerSec is Done divided by Elapsed; zero (never NaN/Inf) when
	// the pool has not started a task yet, so progress hooks and reports
	// can render a first snapshot without guarding.
	TasksPerSec float64
	// P50 and P95 are per-task wall-time quantiles over a sliding window of
	// recent tasks.
	P50, P95 time.Duration
	// WorkerUtilization is the fraction of worker·seconds actually spent
	// inside tasks: 1.0 means every worker was busy the whole time.
	WorkerUtilization float64
}

// Options configures a pool.
type Options struct {
	// Workers is the pool size; values ≤ 0 select runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, when non-nil, is called with a metrics snapshot roughly
	// every ProgressEvery task completions and once after every batch. It
	// may be called concurrently from several workers; the executor does
	// not serialize the calls.
	OnProgress func(Progress)
	// ProgressEvery is the completion stride between OnProgress calls
	// (≤ 0 → every 64 completions).
	ProgressEvery int
	// TaskTimeout, when > 0, is a per-task deadline watchdog: each task
	// runs under a context that expires TaskTimeout after the task
	// starts. The watchdog is cooperative — tasks must honour their
	// context (every simulation loop probes it once per billing
	// interval) — and an expired task fails its batch with an error
	// wrapping context.DeadlineExceeded.
	TaskTimeout time.Duration
}

// Pool executes batches of independent, index-addressed tasks on a fixed
// number of workers. Metrics accumulate across batches, so a caller that
// fans out once per billing interval still gets fleet-level throughput
// numbers. The zero value is not usable; construct with NewPool.
type Pool struct {
	workers int
	onProg  func(Progress)
	every   int
	timeout time.Duration

	total  atomic.Int64 // tasks submitted
	done   atomic.Int64 // tasks finished
	failed atomic.Int64 // tasks that returned an error
	busyNs atomic.Int64 // Σ per-task wall time

	mu     sync.Mutex // guards start and window
	start  time.Time
	window [durationWindow]time.Duration
	filled int
}

// NewPool builds a pool. The worker count is resolved once, at
// construction, so every batch of the same pool runs at the same width.
func NewPool(opts Options) *Pool {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = 64
	}
	return &Pool{workers: w, onProg: opts.OnProgress, every: every, timeout: opts.TaskTimeout}
}

// Workers returns the resolved pool width.
func (p *Pool) Workers() int { return p.workers }

// Run executes task(ctx, i) for every i in [0, n) across the pool's workers
// and blocks until all of them finished or the context was canceled. Work
// is distributed by an atomic counter, so no task list is materialized and
// memory stays bounded; tasks must confine their writes to index-addressed
// state (slot i of a result slice), which is what makes parallel execution
// bit-identical to serial.
//
// The first task error cancels the remaining work and is returned. If the
// parent context is canceled, Run returns the context's error; tasks
// already started are allowed to finish (they should watch ctx themselves
// if they are long).
func (p *Pool) Run(ctx context.Context, n int, task func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if task == nil {
		return errors.New("exec: nil task")
	}
	p.mu.Lock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.mu.Unlock()
	p.total.Add(int64(n))

	batchCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if batchCtx.Err() != nil {
					// Account for the tasks this batch will never run so
					// Done/Total converge even on cancellation.
					p.done.Add(1)
					continue
				}
				begin := time.Now()
				err := p.runTask(batchCtx, i, task)
				p.observe(time.Since(begin), err)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	p.emit()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runTask executes one task with the pool's safety net: a panic is
// recovered into a *PanicError (the run fails cleanly, the process
// survives), and the optional per-task deadline watchdog bounds the
// task's context.
func (p *Pool) runTask(ctx context.Context, i int, task func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	if p.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.timeout)
		defer cancel()
	}
	return task(ctx, i)
}

// observe records one finished task and emits progress on the stride.
func (p *Pool) observe(d time.Duration, err error) {
	p.busyNs.Add(int64(d))
	if err != nil {
		p.failed.Add(1)
	}
	done := p.done.Add(1)
	p.mu.Lock()
	p.window[int((done-1)%durationWindow)] = d
	if p.filled < durationWindow {
		p.filled++
	}
	p.mu.Unlock()
	if p.onProg != nil && done%int64(p.every) == 0 {
		p.onProg(p.Stats())
	}
}

// emit pushes a final snapshot after a batch completes.
func (p *Pool) emit() {
	if p.onProg != nil {
		p.onProg(p.Stats())
	}
}

// Stats returns the pool's current metrics snapshot. Safe to call
// concurrently with Run.
func (p *Pool) Stats() Progress {
	pr := Progress{
		Done:    int(p.done.Load()),
		Total:   int(p.total.Load()),
		Failed:  int(p.failed.Load()),
		Workers: p.workers,
	}
	p.mu.Lock()
	filled := p.filled
	var buf [durationWindow]time.Duration
	copy(buf[:], p.window[:filled])
	start := p.start
	p.mu.Unlock()
	if !start.IsZero() {
		pr.Elapsed = time.Since(start)
	}
	// Zero-elapsed guard: before the first task starts (or if the clock
	// has not advanced) the rates stay 0 instead of dividing to NaN/Inf.
	if pr.Elapsed > 0 {
		pr.TasksPerSec = float64(pr.Done) / pr.Elapsed.Seconds()
		pr.WorkerUtilization = float64(p.busyNs.Load()) /
			(pr.Elapsed.Seconds() * float64(p.workers) * float64(time.Second))
		if pr.WorkerUtilization > 1 {
			pr.WorkerUtilization = 1
		}
	}
	if filled > 0 {
		ds := buf[:filled]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		pr.P50 = ds[filled/2]
		pr.P95 = ds[(filled*95)/100]
	}
	return pr
}

// ForEach runs task(ctx, i) for every i in [0, n) on a throwaway pool.
func ForEach(ctx context.Context, n int, opts Options, task func(ctx context.Context, i int) error) error {
	return NewPool(opts).Run(ctx, n, task)
}

// Map fans task out across a throwaway pool and collects the results in
// index order — the parallel equivalent of a deterministic serial loop.
// Exactly one result slot is allocated per task; nothing else is buffered.
func Map[T any](ctx context.Context, n int, opts Options, task func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		n = 0
	}
	out := make([]T, n)
	err := ForEach(ctx, n, opts, func(ctx context.Context, i int) error {
		v, err := task(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
