package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamOrderedEmitsInOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var got []int
		err := StreamOrdered(context.Background(), 100, Options{Workers: workers}, 0,
			func(_ context.Context, i int) (int, error) { return i * i, nil },
			func(i, v int) error {
				if v != i*i {
					t.Fatalf("slot %d holds %d", i, v)
				}
				got = append(got, i)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: emitted %d", workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: emission out of order at %d: %d", workers, i, v)
			}
		}
	}
}

// TestStreamOrderedBoundedWindow asserts the memory contract: no more than
// `window` tasks are ever claimed but unemitted.
func TestStreamOrderedBoundedWindow(t *testing.T) {
	const n, window = 200, 4
	var emitted atomic.Int64
	emitted.Store(-1)
	var maxLead atomic.Int64
	err := StreamOrdered(context.Background(), n, Options{Workers: 8}, window,
		func(_ context.Context, i int) (int, error) {
			lead := int64(i) - emitted.Load()
			for {
				cur := maxLead.Load()
				if lead <= cur || maxLead.CompareAndSwap(cur, lead) {
					break
				}
			}
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // stagger so workers race ahead
			}
			return i, nil
		},
		func(i, _ int) error { emitted.Store(int64(i)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	// A task at index i may start only after emit(i-window) returned, so
	// the lead over the last emitted index is bounded by the window (+1 for
	// the load race between the two atomics).
	if got := maxLead.Load(); got > window+1 {
		t.Errorf("max claimed-but-unemitted lead = %d, want ≤ %d", got, window+1)
	}
}

func TestStreamOrderedTaskError(t *testing.T) {
	boom := errors.New("boom")
	var emitted int
	err := StreamOrdered(context.Background(), 1000, Options{Workers: 4}, 0,
		func(_ context.Context, i int) (int, error) {
			if i == 17 {
				return 0, boom
			}
			return i, nil
		},
		func(i, _ int) error { emitted = i + 1; return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if emitted > 17 {
		t.Errorf("emitted %d results past the failure point", emitted-17)
	}
}

func TestStreamOrderedEmitError(t *testing.T) {
	stop := errors.New("stop")
	var started atomic.Int64
	err := StreamOrdered(context.Background(), 1000, Options{Workers: 4}, 4,
		func(_ context.Context, i int) (int, error) { started.Add(1); return i, nil },
		func(i, _ int) error {
			if i == 5 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v", err)
	}
	// The bounded window means an emit error stops the world promptly.
	if s := started.Load(); s > 5+4+4+1 {
		t.Errorf("%d tasks started after emit error", s)
	}
}

func TestStreamOrderedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var emitted atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- StreamOrdered(ctx, 1<<30, Options{Workers: 2}, 0,
			func(ctx context.Context, i int) (int, error) {
				select {
				case <-ctx.Done():
				case <-time.After(time.Microsecond):
				}
				return i, nil
			},
			func(i, _ int) error { emitted.Add(1); return nil })
	}()
	for emitted.Load() < 10 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not stop after cancellation")
	}
}

func TestStreamOrderedPanicRecovery(t *testing.T) {
	err := StreamOrdered(context.Background(), 50, Options{Workers: 4}, 0,
		func(_ context.Context, i int) (int, error) {
			if i == 13 {
				panic("unlucky")
			}
			return i, nil
		},
		func(int, int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 13 {
		t.Fatalf("err = %v, want PanicError at 13", err)
	}
}

// TestStreamOrderedDeterministicFold is the property the fleet pipeline
// relies on: folding emitted results in order is bit-identical at any
// worker count and any window.
func TestStreamOrderedDeterministicFold(t *testing.T) {
	fold := func(workers, window int) string {
		h := ""
		err := StreamOrdered(context.Background(), 64, Options{Workers: workers}, window,
			func(_ context.Context, i int) (int64, error) { return SplitSeed(99, int64(i)), nil },
			func(i int, v int64) error { h = fmt.Sprintf("%s|%x", h, v); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	want := fold(1, 1)
	for _, workers := range []int{2, 4, 16} {
		for _, window := range []int{0, 3, 64} {
			if got := fold(workers, window); got != want {
				t.Errorf("workers=%d window=%d: fold differs from serial", workers, window)
			}
		}
	}
}

func TestStreamOrderedEdgeCases(t *testing.T) {
	if err := StreamOrdered(context.Background(), 0, Options{}, 0,
		func(_ context.Context, i int) (int, error) { return 0, nil },
		func(int, int) error { return nil }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	// n=1 with a huge window still works (window clamps to n).
	ran := false
	if err := StreamOrdered(context.Background(), 1, Options{Workers: 8}, 1024,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(int, int) error { ran = true; return nil }); err != nil || !ran {
		t.Errorf("n=1: err=%v ran=%v", err, ran)
	}
}
