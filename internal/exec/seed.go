package exec

// Deterministic seed splitting: every tenant (or task) derives its own RNG
// stream from the experiment's base seed and its stable identity, never
// from its position in a shared sequential stream. That is what lets a
// parallel run reproduce a serial run bit-for-bit — the paper's fleet
// analyses and the URSA-style capacity studies both lean on this property
// to compare runs across machine sizes.

// SplitSeed derives an independent child seed from a base seed and a task
// index using a SplitMix64-style finalizer. Distinct (base, index) pairs
// map to well-mixed, effectively uncorrelated seeds; the same pair always
// maps to the same seed.
func SplitSeed(base, index int64) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// SplitSeedString derives a child seed from a base seed and a string
// identity (e.g. a tenant ID) by hashing the string with FNV-1a and
// finishing with SplitSeed's mixer.
func SplitSeedString(base int64, id string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return SplitSeed(base, int64(h))
}
