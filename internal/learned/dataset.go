package learned

import (
	"fmt"
	"math/rand"

	"daasscale/internal/engine"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// Observation is one labeled telemetry snapshot with its features.
type Observation struct {
	// Snapshot is the baseline container's telemetry for the interval.
	Snapshot telemetry.Snapshot
	// X is the extracted feature vector.
	X [FeatureDim]float64
	// ScaleUpHelps is the twin-run ground truth: the next larger container
	// at least halved p95 latency on the identical load.
	ScaleUpHelps bool
}

// Samples projects observations onto classifier samples.
func Samples(obs []Observation) []Sample {
	out := make([]Sample, len(obs))
	for i, o := range obs {
		out[i] = Sample{X: o.X, ScaleUpHelps: o.ScaleUpHelps}
	}
	return out
}

// GenerateDataset produces labeled observations for one workload family by
// running engine stints at randomized loads and container sizes — and, for
// the ground truth, running the identical load in the next larger container
// (a "twin run"): the label is whether scaling up substantially improved
// p95 latency. In production no one can run twin experiments, which is why
// demand must be *estimated* (Section 1); here the simulator affords us the
// counterfactual as ground truth.
//
// family is "cpuio" (query mix and working set re-randomized per
// configuration), "tpcc" or "ds2".
func GenerateDataset(family string, configs, intervalsPer int, seed int64) ([]Observation, error) {
	rng := rand.New(rand.NewSource(seed))
	cat := resource.LockStepCatalog()
	var out []Observation
	var loads []float64 // per-interval load buffer shared by the twin runs
	for c := 0; c < configs; c++ {
		var w *workload.Workload
		switch family {
		case "cpuio":
			w = workload.CPUIO(workload.CPUIOConfig{
				CPUWeight:       0.3 + rng.Float64()*2,
				IOWeight:        0.3 + rng.Float64()*2,
				LogWeight:       rng.Float64(),
				WorkingSetMB:    512 + rng.Float64()*3000,
				HotspotFraction: 0.9 + rng.Float64()*0.1,
			})
		case "tpcc":
			w = workload.TPCC()
		case "ds2":
			w = workload.DS2()
		default:
			return nil, fmt.Errorf("learned: unknown workload family %q", family)
		}
		prof := w.MixProfile()
		step := rng.Intn(cat.LadderLen() - 1) // keep a larger twin available
		base := cat.AtStep(step)
		up := cat.AtStep(step + 1)
		// Load is drawn relative to the chosen container's CPU allocation so
		// that both label classes occur for every family — as across a real
		// fleet, where load and provisioning are correlated.
		maxRPS := 1.5 * base.Alloc[resource.CPU] / prof.CPUms
		rps := rng.Float64() * maxRPS

		engSeed := seed + int64(c)*17
		baseEng, err := engine.New(w, base, engSeed, engine.Options{WarmStart: true, NoiseProb: -1})
		if err != nil {
			return nil, err
		}
		upEng, err := engine.New(w, up, engSeed, engine.Options{WarmStart: true, NoiseProb: -1})
		if err != nil {
			return nil, err
		}
		if n := baseEng.TicksPerInterval(); cap(loads) < n {
			loads = make([]float64, n)
		}
		for i := 0; i < intervalsPer; i++ {
			// Both twins replay the identical load sequence, drawn up front
			// (the config RNG is independent of the engines' RNGs, so the
			// batched run is bit-identical to interleaved per-call ticks).
			buf := loads[:baseEng.TicksPerInterval()]
			for t := range buf {
				jitter := 1 + 0.1*(2*rng.Float64()-1)
				buf[t] = rps * jitter
			}
			baseEng.TickBatch(buf)
			upEng.TickBatch(buf)
			bs := baseEng.EndInterval()
			us := upEng.EndInterval()
			label := bs.P95LatencyMs > 0 && us.P95LatencyMs <= 0.5*bs.P95LatencyMs
			out = append(out, Observation{Snapshot: bs, X: Features(&bs), ScaleUpHelps: label})
		}
	}
	return out, nil
}
