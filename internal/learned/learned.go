// Package learned implements the statistical-learning approach to demand
// estimation that the paper tried first and rejected (Section 4): train a
// model on telemetry from observed workloads, predict whether adding
// resources will help. The paper's finding — "the resulting model [had]
// high prediction accuracy on the workload it had been trained on. However,
// the accuracy would degrade very significantly for other, unseen
// workloads" — is reproduced as an ablation: a logistic-regression
// classifier over telemetry features is trained on one workload family and
// evaluated on another, against the rule-based estimator on the same data.
//
// The root cause the paper identifies is coverage, not model class: "when
// collecting training data — we can only observe a very small fraction of
// [the] space of the possible customer workloads." Concretely, a model
// trained on resource-bound workloads never sees a lock-dominated sample,
// so it cannot learn that high latency with an insignificant *resource*
// wait share means scaling will not help — the distinction the hand-built
// rules encode from domain knowledge.
package learned

import (
	"fmt"
	"math"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// FeatureDim is the number of features extracted per sample.
const FeatureDim = 8

// Features extracts the classifier's feature vector from one telemetry
// snapshot. The same raw signals the rules consume are available — the
// model's failure mode is coverage of the workload space, not information.
func Features(s *telemetry.Snapshot) [FeatureDim]float64 {
	resourceWaits := s.WaitMs[telemetry.WaitCPU] + s.WaitMs[telemetry.WaitMemory] +
		s.WaitMs[telemetry.WaitDiskIO] + s.WaitMs[telemetry.WaitLogIO]
	resourceShare := 0.0
	if t := s.TotalWaitMs(); t > 0 {
		resourceShare = resourceWaits / t
	}
	return [FeatureDim]float64{
		s.Utilization[resource.CPU],
		s.Utilization[resource.DiskIO],
		math.Log1p(s.WaitMs[telemetry.WaitCPU]) / 20,
		math.Log1p(s.WaitMs[telemetry.WaitDiskIO]) / 20,
		resourceShare,
		s.AvgLatencyMs / 100,
		s.OfferedRPS / 100,
		math.Log1p(s.PhysicalReads+s.PhysicalWrites) / 15,
	}
}

// Sample is one labeled observation.
type Sample struct {
	X [FeatureDim]float64
	// ScaleUpHelps is the ground-truth label: running the same interval in
	// the next larger container reduced p95 latency substantially.
	ScaleUpHelps bool
}

// Model is a logistic-regression classifier with the feature
// standardization fitted on its training data baked in — one more way the
// model is tied to the training workload's scales.
type Model struct {
	W [FeatureDim]float64
	B float64
	// Mean and Std are the training set's per-feature statistics used to
	// standardize inputs.
	Mean [FeatureDim]float64
	Std  [FeatureDim]float64
}

// standardize applies the training-set z-score transform.
func (m *Model) standardize(x [FeatureDim]float64) [FeatureDim]float64 {
	for i := range x {
		if m.Std[i] > 0 {
			x[i] = (x[i] - m.Mean[i]) / m.Std[i]
		}
	}
	return x
}

// Predict returns P(scaling up helps | x).
func (m *Model) Predict(x [FeatureDim]float64) float64 {
	x = m.standardize(x)
	z := m.B
	for i, w := range m.W {
		z += w * x[i]
	}
	return 1 / (1 + math.Exp(-z))
}

// Classify applies the 0.5 decision threshold.
func (m *Model) Classify(x [FeatureDim]float64) bool { return m.Predict(x) >= 0.5 }

// TrainConfig tunes gradient descent.
type TrainConfig struct {
	// Epochs over the training set (0 → 400).
	Epochs int
	// LearningRate for gradient descent (0 → 1).
	LearningRate float64
	// L2 regularization strength (0 → 1e-4).
	L2 float64
}

// Train fits a logistic regression by batch gradient descent on
// standardized features. Deterministic.
func Train(samples []Sample, cfg TrainConfig) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("learned: no training samples")
	}
	var pos int
	for _, s := range samples {
		if s.ScaleUpHelps {
			pos++
		}
	}
	if pos == 0 || pos == len(samples) {
		return nil, fmt.Errorf("learned: training set needs both classes (got %d/%d positive)", pos, len(samples))
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 400
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 1
	}
	if cfg.L2 == 0 {
		cfg.L2 = 1e-4
	}
	m := &Model{}
	n := float64(len(samples))
	for i := 0; i < FeatureDim; i++ {
		for _, s := range samples {
			m.Mean[i] += s.X[i]
		}
		m.Mean[i] /= n
		for _, s := range samples {
			d := s.X[i] - m.Mean[i]
			m.Std[i] += d * d
		}
		m.Std[i] = math.Sqrt(m.Std[i] / n)
	}
	for e := 0; e < cfg.Epochs; e++ {
		var gradW [FeatureDim]float64
		var gradB float64
		for _, s := range samples {
			p := m.Predict(s.X)
			y := 0.0
			if s.ScaleUpHelps {
				y = 1
			}
			d := p - y
			sx := m.standardize(s.X)
			for i := range gradW {
				gradW[i] += d * sx[i]
			}
			gradB += d
		}
		for i := range m.W {
			m.W[i] -= cfg.LearningRate * (gradW[i]/n + cfg.L2*m.W[i])
		}
		m.B -= cfg.LearningRate * gradB / n
	}
	return m, nil
}

// Accuracy evaluates plain classification accuracy on a labeled set.
func (m *Model) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range samples {
		if m.Classify(s.X) == s.ScaleUpHelps {
			ok++
		}
	}
	return float64(ok) / float64(len(samples))
}

// BalancedAccuracy averages the per-class accuracies, so a classifier that
// learned only the base rate scores 0.5 regardless of class imbalance.
func BalancedAccuracy(samples []Sample, classify func(Sample) bool) float64 {
	var posOK, posN, negOK, negN int
	for _, s := range samples {
		got := classify(s)
		if s.ScaleUpHelps {
			posN++
			if got {
				posOK++
			}
		} else {
			negN++
			if !got {
				negOK++
			}
		}
	}
	switch {
	case posN == 0 && negN == 0:
		return 0
	case posN == 0:
		return float64(negOK) / float64(negN)
	case negN == 0:
		return float64(posOK) / float64(posN)
	}
	return (float64(posOK)/float64(posN) + float64(negOK)/float64(negN)) / 2
}
