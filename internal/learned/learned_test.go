package learned

import (
	"math"
	"testing"

	"daasscale/internal/estimator"
	"daasscale/internal/telemetry"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("empty training set should fail")
	}
	onlyPos := []Sample{{ScaleUpHelps: true}, {ScaleUpHelps: true}}
	if _, err := Train(onlyPos, TrainConfig{}); err == nil {
		t.Error("single-class training set should fail")
	}
}

func TestTrainSeparatesLinearlySeparableData(t *testing.T) {
	var samples []Sample
	for i := 0; i < 200; i++ {
		u := float64(i) / 200
		var x [FeatureDim]float64
		x[0] = u
		samples = append(samples, Sample{X: x, ScaleUpHelps: u > 0.5})
	}
	m, err := Train(samples, TrainConfig{Epochs: 2000, LearningRate: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(samples); acc < 0.95 {
		t.Errorf("separable data accuracy = %v", acc)
	}
	if m.W[0] <= 0 {
		t.Errorf("weight on the discriminating feature should be positive: %v", m.W[0])
	}
}

func TestPredictBounds(t *testing.T) {
	m := &Model{W: [FeatureDim]float64{10, -10, 5, 0, 0, 0, 2, -1}, B: 1}
	for i := range m.Std {
		m.Std[i] = 1
	}
	for _, x := range [][FeatureDim]float64{{}, {1, 1, 1, 1, 1, 1, 1, 1}, {-5, 9, 0, 3, -2, 8, 1, 4}} {
		p := m.Predict(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("Predict(%v) = %v", x, p)
		}
	}
}

func TestBalancedAccuracy(t *testing.T) {
	samples := []Sample{
		{ScaleUpHelps: true}, {ScaleUpHelps: true},
		{ScaleUpHelps: false}, {ScaleUpHelps: false}, {ScaleUpHelps: false}, {ScaleUpHelps: false},
	}
	// "Always false" gets 0.5 balanced accuracy despite 4/6 plain accuracy.
	if got := BalancedAccuracy(samples, func(Sample) bool { return false }); got != 0.5 {
		t.Errorf("balanced accuracy = %v, want 0.5", got)
	}
	if got := BalancedAccuracy(nil, func(Sample) bool { return false }); got != 0 {
		t.Errorf("empty = %v", got)
	}
	onlyNeg := samples[2:]
	if got := BalancedAccuracy(onlyNeg, func(Sample) bool { return false }); got != 1 {
		t.Errorf("single-class = %v", got)
	}
}

func TestDatasetGeneration(t *testing.T) {
	obs, err := GenerateDataset("cpuio", 30, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 90 {
		t.Fatalf("observations = %d", len(obs))
	}
	var pos int
	for _, o := range obs {
		for _, f := range o.X {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("bad feature: %v", o.X)
			}
		}
		if o.ScaleUpHelps {
			pos++
		}
	}
	if pos == 0 || pos == len(obs) {
		t.Errorf("dataset needs both classes: %d/%d positive", pos, len(obs))
	}
	if _, err := GenerateDataset("bogus", 1, 1, 1); err == nil {
		t.Error("unknown family should fail")
	}
	if got := len(Samples(obs)); got != len(obs) {
		t.Errorf("Samples projection lost rows: %d", got)
	}
}

// rulesClassify is the rule-based arm: the estimator sees the same
// snapshot (as steady signals) and predicts "scale up" when any resource
// shows high demand.
func rulesClassify(est *estimator.Estimator, o Observation) bool {
	return est.Estimate(telemetry.SteadySignals(o.Snapshot)).AnyHigh()
}

// TestOverfittingReproduction is the Section 4 claim as a test: the learned
// model predicts "will scaling help?" well on its training family and
// degrades on an unseen, lock-contended one, while the rule-based estimator
// holds up on both.
func TestOverfittingReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	train, err := GenerateDataset("cpuio", 120, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	inDomain, err := GenerateDataset("cpuio", 60, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	crossDomain, err := GenerateDataset("tpcc", 60, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(Samples(train), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	classify := func(s Sample) bool { return m.Classify(s.X) }
	accIn := BalancedAccuracy(Samples(inDomain), classify)
	accCross := BalancedAccuracy(Samples(crossDomain), classify)

	est, err := estimator.New(estimator.DefaultThresholds(), estimator.SensitivityMedium)
	if err != nil {
		t.Fatal(err)
	}
	rulesBalanced := func(obs []Observation) float64 {
		preds := make([]bool, len(obs))
		for i, o := range obs {
			preds[i] = rulesClassify(est, o)
		}
		i := -1
		return BalancedAccuracy(Samples(obs), func(Sample) bool { i++; return preds[i] })
	}
	rulesIn := rulesBalanced(inDomain)
	rulesCross := rulesBalanced(crossDomain)

	t.Logf("learned: in-domain %.2f, cross-domain %.2f; rules: in-domain %.2f, cross-domain %.2f",
		accIn, accCross, rulesIn, rulesCross)

	// The paper's Section 4 narrative, as four relative claims:
	// (1) the model fits the workload it was trained on better than the
	//     generic rules do ("high prediction accuracy on the workload it
	//     had been trained on");
	if accIn <= rulesIn {
		t.Errorf("learned in-domain %v should beat the generic rules %v on its own family", accIn, rulesIn)
	}
	// (2) its accuracy degrades on the unseen family;
	if accCross > accIn-0.05 {
		t.Errorf("learned cross-domain %v should degrade vs in-domain %v", accCross, accIn)
	}
	// (3) the rules do not degrade across families (domain knowledge
	//     generalizes);
	if rulesCross < rulesIn-0.05 {
		t.Errorf("rules degraded across domains: %v → %v", rulesIn, rulesCross)
	}
	// (4) on the unseen family the rules are at least as good as the model.
	if rulesCross < accCross {
		t.Errorf("rules (%v) should match or beat the learned model (%v) on the unseen workload", rulesCross, accCross)
	}
}
