// Package trace models the time-varying load traces that drive the
// experiments. A trace gives a target number of concurrent requests per
// second for each simulated minute, matching the horizontal/vertical axes of
// the paper's Figure 8. Four generators reproduce the four production-
// derived demand shapes the paper evaluates:
//
//	Trace 1 — steady demand (suited to a static container size),
//	Trace 2 — mostly idle with one long burst,
//	Trace 3 — mostly idle with one short burst,
//	Trace 4 — many short bursts (the online stress test).
//
// All generators are deterministic given a seed.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
)

// Trace is a per-minute target request rate.
type Trace struct {
	// Name identifies the trace, e.g. "trace2".
	Name string
	// RPS holds the target concurrent requests per second for each minute.
	RPS []float64
}

// Len returns the trace duration in minutes.
func (t *Trace) Len() int { return len(t.RPS) }

// At returns the target rate for the given minute, clamping out-of-range
// minutes to the nearest end.
func (t *Trace) At(minute int) float64 {
	if len(t.RPS) == 0 {
		return 0
	}
	if minute < 0 {
		minute = 0
	}
	if minute >= len(t.RPS) {
		minute = len(t.RPS) - 1
	}
	return t.RPS[minute]
}

// Peak returns the maximum rate in the trace.
func (t *Trace) Peak() float64 {
	var p float64
	for _, r := range t.RPS {
		if r > p {
			p = r
		}
	}
	return p
}

// Mean returns the average rate over the trace.
func (t *Trace) Mean() float64 {
	if len(t.RPS) == 0 {
		return 0
	}
	var s float64
	for _, r := range t.RPS {
		s += r
	}
	return s / float64(len(t.RPS))
}

// Scale returns a copy of the trace with every rate multiplied by f.
func (t *Trace) Scale(f float64) *Trace {
	out := &Trace{Name: t.Name, RPS: make([]float64, len(t.RPS))}
	for i, r := range t.RPS {
		out.RPS[i] = r * f
	}
	return out
}

// Concat returns a new trace playing t followed by others, named after t.
func (t *Trace) Concat(others ...*Trace) *Trace {
	out := &Trace{Name: t.Name, RPS: append([]float64(nil), t.RPS...)}
	for _, o := range others {
		out.RPS = append(out.RPS, o.RPS...)
	}
	return out
}

// Repeat returns the trace played n times back to back (n < 1 yields an
// empty trace).
func (t *Trace) Repeat(n int) *Trace {
	out := &Trace{Name: t.Name}
	for i := 0; i < n; i++ {
		out.RPS = append(out.RPS, t.RPS...)
	}
	return out
}

// Overlay returns the per-minute sum of t and o (shorter input treated as
// zero past its end) — composing, say, a steady baseline with a burst
// overlay.
func (t *Trace) Overlay(o *Trace) *Trace {
	n := len(t.RPS)
	if len(o.RPS) > n {
		n = len(o.RPS)
	}
	out := &Trace{Name: t.Name, RPS: make([]float64, n)}
	for i := 0; i < n; i++ {
		out.RPS[i] = t.At(i)*boundIn(i, len(t.RPS)) + o.At(i)*boundIn(i, len(o.RPS))
	}
	return out
}

// boundIn is 1 while i is inside a series of length n, else 0 (At clamps,
// Overlay must not).
func boundIn(i, n int) float64 {
	if i < n {
		return 1
	}
	return 0
}

// Resample returns the trace stretched or compressed to n minutes by
// linear interpolation — fitting an imported production trace to an
// experiment's length without losing its shape.
func (t *Trace) Resample(n int) *Trace {
	out := &Trace{Name: t.Name}
	if n <= 0 || len(t.RPS) == 0 {
		return out
	}
	out.RPS = make([]float64, n)
	if len(t.RPS) == 1 {
		for i := range out.RPS {
			out.RPS[i] = t.RPS[0]
		}
		return out
	}
	for i := 0; i < n; i++ {
		pos := float64(i) * float64(len(t.RPS)-1) / float64(n-1)
		lo := int(pos)
		if lo >= len(t.RPS)-1 {
			out.RPS[i] = t.RPS[len(t.RPS)-1]
			continue
		}
		frac := pos - float64(lo)
		out.RPS[i] = t.RPS[lo]*(1-frac) + t.RPS[lo+1]*frac
	}
	return out
}

// Decimate returns a copy keeping every factor-th minute — a time
// compression that preserves the trace's shape (unlike Truncate, which can
// cut bursts off entirely).
func (t *Trace) Decimate(factor int) *Trace {
	if factor < 1 {
		factor = 1
	}
	out := &Trace{Name: t.Name}
	for i := 0; i < len(t.RPS); i += factor {
		out.RPS = append(out.RPS, t.RPS[i])
	}
	return out
}

// Truncate returns a copy limited to the first n minutes.
func (t *Trace) Truncate(n int) *Trace {
	if n > len(t.RPS) {
		n = len(t.RPS)
	}
	return &Trace{Name: t.Name, RPS: append([]float64(nil), t.RPS[:n]...)}
}

// noise returns a multiplicative jitter factor in [1-amp, 1+amp].
func noise(rng *rand.Rand, amp float64) float64 {
	return 1 + amp*(2*rng.Float64()-1)
}

// Trace1 generates the steady-demand trace: roughly constant load around
// base requests/sec with small jitter, over the given number of minutes
// (the paper uses 1440).
func Trace1(minutes int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "trace1", RPS: make([]float64, minutes)}
	const base = 430.0
	for i := range tr.RPS {
		// Slow sinusoidal drift plus jitter; stays within one container band.
		drift := 1 + 0.05*math.Sin(2*math.Pi*float64(i)/480)
		tr.RPS[i] = base * drift * noise(rng, 0.06)
	}
	return tr
}

// Trace2 generates the long-burst trace: low activity with one sustained
// burst occupying roughly the middle third of the trace.
func Trace2(minutes int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "trace2", RPS: make([]float64, minutes)}
	const idle, burst = 20.0, 600.0
	lo := minutes * 2 / 5
	hi := minutes * 7 / 10
	for i := range tr.RPS {
		switch {
		case i >= lo && i < hi:
			// Ramp in and out of the burst over ~5% of its width.
			ramp := 1.0
			w := (hi - lo) / 20
			if w > 0 {
				if d := i - lo; d < w {
					ramp = float64(d+1) / float64(w)
				}
				if d := hi - 1 - i; d < w {
					ramp = math.Min(ramp, float64(d+1)/float64(w))
				}
			}
			tr.RPS[i] = (idle + (burst-idle)*ramp) * noise(rng, 0.08)
		default:
			tr.RPS[i] = idle * noise(rng, 0.25)
		}
	}
	return tr
}

// Trace3 generates the short-burst trace: low activity with one brief,
// intense burst (~8% of the trace length).
func Trace3(minutes int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "trace3", RPS: make([]float64, minutes)}
	const idle, burst = 20.0, 720.0
	lo := minutes * 55 / 100
	hi := lo + minutes*8/100
	for i := range tr.RPS {
		if i >= lo && i < hi {
			tr.RPS[i] = burst * noise(rng, 0.08)
		} else {
			tr.RPS[i] = idle * noise(rng, 0.25)
		}
	}
	return tr
}

// Trace4 generates the spiky trace: frequent short bursts of varying height
// and width over a low baseline — the stress test for online auto-scaling.
func Trace4(minutes int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "trace4", RPS: make([]float64, minutes)}
	const idle = 30.0
	for i := range tr.RPS {
		tr.RPS[i] = idle * noise(rng, 0.25)
	}
	// Bursts arrive with a mean gap of ~70 minutes, widths 8–35 minutes,
	// heights 240–800 rps.
	for i := 20; i < minutes; {
		gap := 40 + rng.Intn(60)
		i += gap
		if i >= minutes {
			break
		}
		width := 8 + rng.Intn(28)
		height := 240 + rng.Float64()*560
		for j := i; j < i+width && j < minutes; j++ {
			ramp := math.Min(1, float64(j-i+1)/3) // bursts ramp up over ~3 minutes
			tr.RPS[j] = height * ramp * noise(rng, 0.1)
		}
		i += width
	}
	return tr
}

// Diurnal generates a day/night load pattern: quiet nights, a smooth climb
// through business hours peaking early afternoon, repeating daily. The
// scenario scheduled (time-of-day) scaling policies are designed for.
func Diurnal(minutes int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "diurnal", RPS: make([]float64, minutes)}
	const night, peak = 40.0, 520.0
	for i := range tr.RPS {
		m := i % 1440
		// Business-hours hump between 08:00 and 20:00.
		level := night
		if m >= 8*60 && m < 20*60 {
			phase := float64(m-8*60) / float64(12*60) // 0..1 across the day
			level = night + (peak-night)*math.Sin(math.Pi*phase)
		}
		tr.RPS[i] = level * noise(rng, 0.08)
	}
	return tr
}

// Standard returns the four standard traces with the durations used by the
// experiments (time-compressed per Section 7.1).
func Standard(seed int64) []*Trace {
	return []*Trace{
		Trace1(1440, seed),
		Trace2(900, seed+1),
		Trace3(700, seed+2),
		Trace4(1440, seed+3),
	}
}

// ByName generates one of the standard traces ("trace1".."trace4").
func ByName(name string, seed int64) (*Trace, error) {
	switch name {
	case "trace1":
		return Trace1(1440, seed), nil
	case "trace2":
		return Trace2(900, seed), nil
	case "trace3":
		return Trace3(700, seed), nil
	case "trace4":
		return Trace4(1440, seed), nil
	default:
		return nil, fmt.Errorf("trace: unknown trace %q", name)
	}
}

// WriteCSV writes the trace as `minute,rps` rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"minute", "rps"}); err != nil {
		return err
	}
	for i, r := range t.RPS {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(r, 'f', 3, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. The name is taken from the
// argument since the CSV does not carry it.
func ReadCSV(r io.Reader, name string) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	tr := &Trace{Name: name}
	for i, row := range rows {
		if i == 0 && row[0] == "minute" {
			continue
		}
		if len(row) != 2 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 2", i, len(row))
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("trace: row %d: negative rate %v", i, v)
		}
		tr.RPS = append(tr.RPS, v)
	}
	return tr, nil
}
