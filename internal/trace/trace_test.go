package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTrace1Steady(t *testing.T) {
	tr := Trace1(1440, 1)
	if tr.Len() != 1440 {
		t.Fatalf("len = %d", tr.Len())
	}
	mean := tr.Mean()
	if mean < 320 || mean > 480 {
		t.Errorf("trace1 mean = %v, want ≈400", mean)
	}
	// Steady: peak should be within ~30% of the mean.
	if tr.Peak() > mean*1.3 {
		t.Errorf("trace1 peak %v too far above mean %v for a steady trace", tr.Peak(), mean)
	}
}

func TestTrace2LongBurst(t *testing.T) {
	tr := Trace2(900, 1)
	if tr.Len() != 900 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Mostly idle: the median minute is far below the peak.
	var lowCount int
	for _, r := range tr.RPS {
		if r < 40 {
			lowCount++
		}
	}
	if frac := float64(lowCount) / float64(tr.Len()); frac < 0.6 {
		t.Errorf("trace2 idle fraction = %v, want > 0.6", frac)
	}
	if tr.Peak() < 400 {
		t.Errorf("trace2 peak = %v, want a substantial burst", tr.Peak())
	}
	// Burst is sustained: count of high minutes is a sizable fraction.
	var high int
	for _, r := range tr.RPS {
		if r > 400 {
			high++
		}
	}
	if high < 200 {
		t.Errorf("trace2 high minutes = %d, want a long burst (>200)", high)
	}
}

func TestTrace3ShortBurst(t *testing.T) {
	tr := Trace3(700, 1)
	var high int
	for _, r := range tr.RPS {
		if r > 400 {
			high++
		}
	}
	if high == 0 || high > 100 {
		t.Errorf("trace3 high minutes = %d, want a short burst (0 < n ≤ 100)", high)
	}
	if tr.Peak() < 600 {
		t.Errorf("trace3 peak = %v, want an intense burst", tr.Peak())
	}
}

func TestTrace4ManyBursts(t *testing.T) {
	tr := Trace4(1440, 1)
	// Count distinct burst episodes: transitions from low to high.
	bursts := 0
	inBurst := false
	for _, r := range tr.RPS {
		if r > 100 && !inBurst {
			bursts++
			inBurst = true
		} else if r <= 100 {
			inBurst = false
		}
	}
	if bursts < 5 {
		t.Errorf("trace4 bursts = %d, want many (≥5)", bursts)
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := Trace4(1440, 42)
	b := Trace4(1440, 42)
	for i := range a.RPS {
		if a.RPS[i] != b.RPS[i] {
			t.Fatalf("trace4 not deterministic at minute %d", i)
		}
	}
	c := Trace4(1440, 43)
	same := true
	for i := range a.RPS {
		if a.RPS[i] != c.RPS[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestAtClamping(t *testing.T) {
	tr := &Trace{Name: "x", RPS: []float64{1, 2, 3}}
	if got := tr.At(-1); got != 1 {
		t.Errorf("At(-1) = %v", got)
	}
	if got := tr.At(5); got != 3 {
		t.Errorf("At(5) = %v", got)
	}
	empty := &Trace{}
	if got := empty.At(0); got != 0 {
		t.Errorf("empty At = %v", got)
	}
}

func TestScaleTruncate(t *testing.T) {
	tr := &Trace{Name: "x", RPS: []float64{1, 2, 3, 4}}
	s := tr.Scale(2)
	if s.RPS[3] != 8 {
		t.Errorf("Scale = %v", s.RPS)
	}
	if tr.RPS[3] != 4 {
		t.Error("Scale mutated original")
	}
	tt := tr.Truncate(2)
	if tt.Len() != 2 || tt.RPS[1] != 2 {
		t.Errorf("Truncate = %v", tt.RPS)
	}
	if got := tr.Truncate(100).Len(); got != 4 {
		t.Errorf("Truncate beyond length = %d", got)
	}
}

func TestDecimate(t *testing.T) {
	tr := &Trace{Name: "x", RPS: []float64{1, 2, 3, 4, 5, 6, 7}}
	d := tr.Decimate(3)
	want := []float64{1, 4, 7}
	if d.Len() != len(want) {
		t.Fatalf("decimated len = %d", d.Len())
	}
	for i, w := range want {
		if d.RPS[i] != w {
			t.Fatalf("decimated = %v, want %v", d.RPS, want)
		}
	}
	if got := tr.Decimate(0); got.Len() != tr.Len() {
		t.Errorf("factor<1 should keep every sample: %d", got.Len())
	}
	// Decimation preserves burst shape where truncation would not: the
	// trace2 burst must survive a 4x compression.
	burst := Trace2(900, 1).Decimate(4)
	if burst.Peak() < 400 {
		t.Errorf("decimated trace2 lost its burst: peak %v", burst.Peak())
	}
}

func TestStandardAndByName(t *testing.T) {
	std := Standard(7)
	if len(std) != 4 {
		t.Fatalf("Standard returned %d traces", len(std))
	}
	wantLens := []int{1440, 900, 700, 1440}
	for i, tr := range std {
		if tr.Len() != wantLens[i] {
			t.Errorf("standard trace %d len = %d, want %d", i+1, tr.Len(), wantLens[i])
		}
	}
	for _, name := range []string{"trace1", "trace2", "trace3", "trace4"} {
		tr, err := ByName(name, 1)
		if err != nil || tr.Name != name {
			t.Errorf("ByName(%s) = %v, %v", name, tr, err)
		}
	}
	if _, err := ByName("bogus", 1); err == nil {
		t.Error("ByName(bogus) should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Trace3(700, 9)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "trace3")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.RPS {
		// WriteCSV rounds to 3 decimals.
		if diff := got.RPS[i] - tr.RPS[i]; diff > 0.001 || diff < -0.001 {
			t.Fatalf("minute %d: %v vs %v", i, got.RPS[i], tr.RPS[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Error("empty CSV should error")
	}
	if _, err := ReadCSV(strings.NewReader("minute,rps\n0,abc\n"), "x"); err == nil {
		t.Error("non-numeric rate should error")
	}
	if _, err := ReadCSV(strings.NewReader("minute,rps\n0,-5\n"), "x"); err == nil {
		t.Error("negative rate should error")
	}
}

func TestConcatRepeatOverlay(t *testing.T) {
	a := &Trace{Name: "a", RPS: []float64{1, 2}}
	b := &Trace{Name: "b", RPS: []float64{10}}
	c := a.Concat(b, a)
	want := []float64{1, 2, 10, 1, 2}
	if c.Len() != len(want) {
		t.Fatalf("concat len = %d", c.Len())
	}
	for i, w := range want {
		if c.RPS[i] != w {
			t.Fatalf("concat = %v", c.RPS)
		}
	}
	if a.Len() != 2 {
		t.Error("Concat mutated receiver")
	}
	r := a.Repeat(3)
	if r.Len() != 6 || r.RPS[4] != 1 {
		t.Errorf("repeat = %v", r.RPS)
	}
	if got := a.Repeat(0); got.Len() != 0 {
		t.Errorf("repeat(0) = %v", got.RPS)
	}
	o := a.Overlay(&Trace{RPS: []float64{100, 100, 100}})
	wantO := []float64{101, 102, 100}
	for i, w := range wantO {
		if o.RPS[i] != w {
			t.Fatalf("overlay = %v, want %v", o.RPS, wantO)
		}
	}
}

func TestDiurnal(t *testing.T) {
	tr := Diurnal(2880, 3) // two days
	if tr.Len() != 2880 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Night quiet, midday busy, and the pattern repeats across days.
	night, noon := tr.RPS[3*60], tr.RPS[14*60]
	if noon < 6*night {
		t.Errorf("midday %v should dwarf night %v", noon, night)
	}
	day2noon := tr.RPS[1440+14*60]
	if day2noon < 0.7*noon || day2noon > 1.3*noon {
		t.Errorf("pattern should repeat daily: %v vs %v", day2noon, noon)
	}
}

func TestResample(t *testing.T) {
	tr := &Trace{Name: "x", RPS: []float64{0, 10, 20}}
	up := tr.Resample(5)
	want := []float64{0, 5, 10, 15, 20}
	for i, w := range want {
		if up.RPS[i] != w {
			t.Fatalf("upsample = %v, want %v", up.RPS, want)
		}
	}
	down := up.Resample(3)
	for i, w := range []float64{0, 10, 20} {
		if down.RPS[i] != w {
			t.Fatalf("downsample = %v", down.RPS)
		}
	}
	if got := tr.Resample(0); got.Len() != 0 {
		t.Errorf("n=0 should be empty")
	}
	single := (&Trace{RPS: []float64{7}}).Resample(4)
	for _, v := range single.RPS {
		if v != 7 {
			t.Fatalf("single-point resample = %v", single.RPS)
		}
	}
	if got := (&Trace{}).Resample(3); got.Len() != 0 {
		t.Errorf("empty trace resample = %v", got.RPS)
	}
}
