package sim

import (
	"context"
	"fmt"

	"daasscale/internal/engine"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/stats"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// OfflineBaselines holds everything the offline techniques of Section 7.2.1
// derive from observing a Max-container run of the exact workload:
//
//   - Peak: the smallest container meeting the 95th percentile of the
//     per-interval resource usage;
//   - Avg: the smallest container meeting the average usage;
//   - Schedule: the per-interval sequence of smallest-fitting containers the
//     Trace oracle replays ("hugging" the demand curve).
type OfflineBaselines struct {
	// MaxResult is the gold-standard run the baselines were derived from.
	MaxResult Result
	// Peak and Avg are the static provisioning choices.
	Peak resource.Container
	Avg  resource.Container
	// Schedule is the Trace oracle's container per billing interval.
	Schedule []resource.Container
}

// DeriveOffline runs the workload once in the largest container (Max) and
// derives the offline baselines from the observed resource usage, exactly
// as the paper constructs Static(Peak), Static(Avg) and Trace.
//
// Deprecated: use Runner.DeriveOffline, which adds context cancellation.
// This wrapper is equivalent to calling it with context.Background().
func DeriveOffline(cat *resource.Catalog, w *workload.Workload, tr *trace.Trace, seed int64, opts engine.Options) (OfflineBaselines, error) {
	return deriveOffline(context.Background(), cat, w, tr, seed, opts)
}

// deriveOffline is the context-aware implementation.
//
// Memory requirements per interval are taken as the cached bytes clamped to
// a small margin above the working set: on Max the cache grows far past the
// hot set, but a container only *needs* to hold the working set.
func deriveOffline(ctx context.Context, cat *resource.Catalog, w *workload.Workload, tr *trace.Trace, seed int64, opts engine.Options) (OfflineBaselines, error) {
	if err := requireCatalog(cat); err != nil {
		return OfflineBaselines{}, err
	}
	maxRes, err := runSpecValidated(ctx, Spec{
		Workload:   w,
		Trace:      tr,
		Policy:     policy.NewMax(cat),
		Seed:       seed,
		EngineOpts: opts,
	})
	if err != nil {
		return OfflineBaselines{}, fmt.Errorf("sim: max run: %w", err)
	}
	maxAlloc := cat.Largest().Alloc
	memCap := w.WorkingSetMB * 1.15

	n := len(maxRes.Series)
	demands := make([]resource.Vector, n)
	perKind := [resource.NumKinds][]float64{}
	for _, k := range resource.Kinds {
		perKind[k] = make([]float64, n)
	}
	for i, pt := range maxRes.Series {
		var d resource.Vector
		for _, k := range resource.Kinds {
			d[k] = pt.UtilizationPeak[k] * maxAlloc[k]
		}
		if d[resource.Memory] > memCap {
			d[resource.Memory] = memCap
		}
		demands[i] = d
		for _, k := range resource.Kinds {
			perKind[k][i] = d[k]
		}
	}

	var peakDemand, avgDemand resource.Vector
	for _, k := range resource.Kinds {
		// The per-kind columns are private scratch; Mean is order-blind, so
		// the percentile can select in place.
		avgDemand[k] = stats.Mean(perKind[k])
		peakDemand[k] = stats.QuantileSelect(perKind[k], 0.95)
	}
	peak, _ := cat.SmallestFitting(peakDemand)
	avg, _ := cat.SmallestFitting(avgDemand)

	// The oracle smooths over a 3-interval window (component-wise max of
	// the neighbouring demands): single-interval dips would otherwise make
	// the schedule flap between adjacent sizes, paying a queue transient at
	// every downward flap.
	schedule := make([]resource.Container, n)
	for i := range demands {
		d := demands[i]
		if i > 0 {
			d = d.Max(demands[i-1])
		}
		if i+1 < n {
			d = d.Max(demands[i+1])
		}
		schedule[i], _ = cat.SmallestFitting(d)
	}
	return OfflineBaselines{MaxResult: maxRes, Peak: peak, Avg: avg, Schedule: schedule}, nil
}
