package sim

import (
	"reflect"
	"testing"

	"daasscale/internal/engine"
	"daasscale/internal/fabric"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func TestRunMultiTenantValidation(t *testing.T) {
	if _, err := RunMultiTenant(MultiTenantSpec{}); err == nil {
		t.Error("empty tenant list should fail")
	}
	if _, err := RunMultiTenant(MultiTenantSpec{Tenants: []TenantSpec{{ID: "x"}}}); err == nil {
		t.Error("tenant without workload/trace should fail")
	}
}

func TestMultiTenantClusterRun(t *testing.T) {
	spec := MultiTenantSpec{
		Tenants: []TenantSpec{
			{ID: "web", Workload: workload.DS2(), Trace: trace.Trace1(150, 1), GoalMs: 60, Seed: 1},
			{ID: "oltp", Workload: workload.TPCC(), Trace: trace.Trace4(150, 2), GoalMs: 200, Seed: 2},
			{ID: "batch", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace2(150, 3), GoalMs: 80, Seed: 3},
		},
		Servers:    2,
		Policy:     fabric.BestFit,
		EngineOpts: engine.Options{WarmStart: true},
	}
	res, err := RunMultiTenant(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 3 {
		t.Fatalf("tenant results = %d", len(res.Tenants))
	}
	for _, tr := range res.Tenants {
		if tr.TotalCost <= 0 {
			t.Errorf("tenant %s accrued no cost", tr.ID)
		}
		if tr.P95Ms <= 0 {
			t.Errorf("tenant %s has no latency", tr.ID)
		}
	}
	// The invariant is validated every interval inside the runner; the run
	// completing without error is the assertion. Peak cluster allocation
	// must be a sane fraction.
	if res.PeakClusterCPUFrac <= 0 || res.PeakClusterCPUFrac > 1 {
		t.Errorf("peak cluster allocation = %v", res.PeakClusterCPUFrac)
	}
}

func TestMultiTenantRefusalsReconcile(t *testing.T) {
	// One server, several hungry tenants: the fabric must refuse some
	// scale-ups, and the run must stay consistent (controllers reconciled).
	heavy := workload.CPUIO(workload.CPUIOConfig{CPUWeight: 1, IOWeight: 1, WorkingSetMB: 2048, HotspotFraction: 0.95})
	spec := MultiTenantSpec{
		Tenants: []TenantSpec{
			{ID: "a", Workload: heavy, Trace: trace.Trace1(120, 1).Scale(1.5), GoalMs: 60, Seed: 4},
			{ID: "b", Workload: heavy, Trace: trace.Trace1(120, 2).Scale(1.5), GoalMs: 60, Seed: 5},
			{ID: "c", Workload: heavy, Trace: trace.Trace1(120, 3).Scale(1.5), GoalMs: 60, Seed: 6},
		},
		Servers: 1,
		Policy:  fabric.FirstFit,
	}
	res, err := RunMultiTenant(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refusals == 0 {
		t.Error("an overcommitted cluster should refuse some resizes")
	}
	var refused int
	for _, tr := range res.Tenants {
		refused += tr.RefusedResizes
	}
	if refused != res.Refusals {
		t.Errorf("per-tenant refusals %d != fabric refusals %d", refused, res.Refusals)
	}
}

func TestMultiTenantDeterminism(t *testing.T) {
	spec := func() MultiTenantSpec {
		return MultiTenantSpec{
			Tenants: []TenantSpec{
				{ID: "a", Workload: workload.DS2(), Trace: trace.Trace1(80, 1), GoalMs: 60, Seed: 1},
				{ID: "b", Workload: workload.TPCC(), Trace: trace.Trace4(60, 2), GoalMs: 200, Seed: 2},
			},
			Servers:    2,
			EngineOpts: engine.Options{WarmStart: true},
		}
	}
	a, err := RunMultiTenant(spec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiTenant(spec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tenants {
		if !reflect.DeepEqual(a.Tenants[i], b.Tenants[i]) {
			t.Fatalf("tenant %d diverged: %+v vs %+v", i, a.Tenants[i], b.Tenants[i])
		}
	}
	// The shorter trace idles out: tenant b's engine keeps running at zero
	// offered load without breaking anything (implicitly asserted by the
	// equality above and the absence of errors).
}
