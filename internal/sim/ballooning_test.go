package sim

import "testing"

// TestBallooningFigure14Shape asserts the Figure 14 claims: without
// ballooning, the incorrect low-memory estimate evicts the working set and
// latency rises by orders of magnitude with a long recovery; with
// ballooning, the probe aborts near the working set and latency barely
// moves.
func TestBallooningFigure14Shape(t *testing.T) {
	res, err := RunBallooningExperiment(BallooningSpec{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	naive := res.Without
	if naive.ShrunkAt < 0 {
		t.Fatal("naive arm never shrank memory")
	}
	if !naive.Aborted || naive.RevertedAt < 0 {
		t.Fatal("naive arm never reverted")
	}
	// Figure 14(a): sharp memory drop to (at least near) the smaller
	// container.
	if naive.MinMemoryMB() > 2100 {
		t.Errorf("naive arm memory only dropped to %v MB", naive.MinMemoryMB())
	}
	// Figure 14(b): latency rises by ≈2 orders of magnitude.
	base := naive.BaselineAvgMs()
	if base <= 0 {
		t.Fatal("no baseline latency")
	}
	if naive.PeakAvgMs() < 20*base {
		t.Errorf("naive arm peak latency %v should dwarf baseline %v", naive.PeakAvgMs(), base)
	}
	// Recovery is slow: latency is still elevated well after the revert
	// (the cache must re-warm through physical reads).
	post := naive.Series[naive.RevertedAt+5]
	if post.AvgMs < 2*base {
		t.Errorf("naive arm recovered too fast: %v vs baseline %v", post.AvgMs, base)
	}

	probe := res.With
	if probe.ShrunkAt < 0 {
		t.Fatal("probe arm never started ballooning")
	}
	if !probe.Aborted {
		t.Fatal("probe should abort before reaching the smaller container")
	}
	// The probe aborts near the working set — memory never collapses to
	// the smaller container.
	if probe.MinMemoryMB() < res.WorkingSetMB*0.80 {
		t.Errorf("probe arm went too deep: %v MB vs working set %v", probe.MinMemoryMB(), res.WorkingSetMB)
	}
	// Minimal latency impact: peak stays within a small multiple of the
	// baseline, and far below the naive arm's peak.
	pbase := probe.BaselineAvgMs()
	if probe.PeakAvgMs() > 5*pbase {
		t.Errorf("probe arm latency impact too large: peak %v vs baseline %v", probe.PeakAvgMs(), pbase)
	}
	if probe.PeakAvgMs() > naive.PeakAvgMs()/4 {
		t.Errorf("probe arm peak %v should be far below naive peak %v", probe.PeakAvgMs(), naive.PeakAvgMs())
	}
}

func TestBallooningDeterminism(t *testing.T) {
	a, err := RunBallooningExperiment(BallooningSpec{Seed: 4, Intervals: 60})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBallooningExperiment(BallooningSpec{Seed: 4, Intervals: 60})
	if err != nil {
		t.Fatal(err)
	}
	if a.Without.PeakAvgMs() != b.Without.PeakAvgMs() || a.With.MinMemoryMB() != b.With.MinMemoryMB() {
		t.Error("ballooning experiment not deterministic")
	}
	if len(a.With.Series) != 60 || len(a.Without.Series) != 60 {
		t.Errorf("series lengths: %d / %d", len(a.With.Series), len(a.Without.Series))
	}
}
