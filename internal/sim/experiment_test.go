package sim

import (
	"testing"

	"daasscale/internal/telemetry"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

func TestRunComparisonValidation(t *testing.T) {
	if _, err := RunComparison(ComparisonSpec{}); err == nil {
		t.Error("missing workload/trace should fail")
	}
	if _, err := RunComparison(ComparisonSpec{
		Workload: workload.DS2(), Trace: trace.Trace1(30, 1), GoalFactor: 0.5,
	}); err == nil {
		t.Error("goal factor ≤ 1 should fail")
	}
}

// TestComparisonFigure9aShape asserts the qualitative result of Figure 9(a):
// CPUIO on the long-burst trace with a tight (1.25×Max) goal. Auto meets the
// goal at a fraction of Peak's and Util's cost; Avg is cheapest but violates
// the goal badly.
func TestComparisonFigure9aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison")
	}
	comp, err := RunComparison(ComparisonSpec{
		Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
		Trace:      trace.Trace2(900, 2),
		GoalFactor: 1.25,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	max := comp.MustByPolicy("Max")
	peak := comp.MustByPolicy("Peak")
	avg := comp.MustByPolicy("Avg")
	util := comp.MustByPolicy("Util")
	auto := comp.MustByPolicy("Auto")

	goal := comp.GoalMs
	if goal <= max.P95Ms {
		t.Fatalf("goal %v must exceed Max p95 %v", goal, max.P95Ms)
	}
	// Auto meets the goal (small tolerance for seed luck).
	if auto.P95Ms > goal*1.05 {
		t.Errorf("Auto p95 %v misses goal %v", auto.P95Ms, goal)
	}
	// Paper headline: Auto 1.5×–3× cheaper than the utilization-only
	// autoscaler at comparable latency.
	if util.AvgCostPerInterval < auto.AvgCostPerInterval*1.3 {
		t.Errorf("Util cost %v should be ≥1.3× Auto cost %v", util.AvgCostPerInterval, auto.AvgCostPerInterval)
	}
	// Auto far cheaper than provisioning for the peak.
	if peak.AvgCostPerInterval < auto.AvgCostPerInterval*1.5 {
		t.Errorf("Peak cost %v should dwarf Auto cost %v", peak.AvgCostPerInterval, auto.AvgCostPerInterval)
	}
	// Avg provisioning violates the goal by a lot.
	if avg.P95Ms < goal*2 {
		t.Errorf("Avg p95 %v should violate the goal %v badly", avg.P95Ms, goal)
	}
	// Max is the most expensive by far.
	if max.AvgCostPerInterval < 2*auto.AvgCostPerInterval {
		t.Errorf("Max cost %v vs Auto %v", max.AvgCostPerInterval, auto.AvgCostPerInterval)
	}
	// Auto changes containers on a small fraction of intervals.
	if auto.ChangeFraction > 0.2 {
		t.Errorf("Auto changes too often: %v", auto.ChangeFraction)
	}
}

// TestComparisonFigure9bLooseGoal asserts Figure 9(b)'s direction: with a
// loose (5×) goal, costs do not increase for the online policies.
func TestComparisonFigure9bLooseGoal(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison")
	}
	tight, err := RunComparison(ComparisonSpec{
		Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
		Trace:      trace.Trace2(900, 2),
		GoalFactor: 1.25,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := RunComparison(ComparisonSpec{
		Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
		Trace:      trace.Trace2(900, 2),
		GoalFactor: 5,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	at, al := tight.MustByPolicy("Auto"), loose.MustByPolicy("Auto")
	if al.AvgCostPerInterval > at.AvgCostPerInterval*1.05 {
		t.Errorf("looser goal should not cost more: %v vs %v", al.AvgCostPerInterval, at.AvgCostPerInterval)
	}
	if al.P95Ms > loose.GoalMs {
		t.Errorf("Auto misses the loose goal: %v > %v", al.P95Ms, loose.GoalMs)
	}
	ut, ul := tight.MustByPolicy("Util"), loose.MustByPolicy("Util")
	if ul.AvgCostPerInterval > ut.AvgCostPerInterval {
		t.Errorf("Util should also relax with the goal: %v vs %v", ul.AvgCostPerInterval, ut.AvgCostPerInterval)
	}
}

// TestComparisonFigure10LockBound asserts Figure 10/13: on the lock-bound
// TPC-C workload with the spiky trace, Auto stays small (lock waits are not
// resource demand) while Util pays much more, and both meet the goal.
func TestComparisonFigure10LockBound(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison")
	}
	comp, err := RunComparison(ComparisonSpec{
		Workload:   workload.TPCC(),
		Trace:      trace.Trace4(1440, 4),
		GoalFactor: 1.25,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	util := comp.MustByPolicy("Util")
	auto := comp.MustByPolicy("Auto")
	if auto.P95Ms > comp.GoalMs*1.05 {
		t.Errorf("Auto p95 %v misses goal %v", auto.P95Ms, comp.GoalMs)
	}
	if util.AvgCostPerInterval < auto.AvgCostPerInterval*1.4 {
		t.Errorf("lock-bound: Util %v should cost ≥1.4× Auto %v", util.AvgCostPerInterval, auto.AvgCostPerInterval)
	}
	// Figure 13(c): lock waits dominate during the bursts.
	lockDominated := 0
	for _, pt := range auto.Series {
		if pt.OfferedRPS > 200 && pt.WaitPct[telemetry.WaitLock] > 0.5 {
			lockDominated++
		}
	}
	if lockDominated < 20 {
		t.Errorf("expected lock-wait-dominated burst intervals, got %d", lockDominated)
	}
	// Figure 13(b): Auto's container selection stays in the 10–20% band of
	// the server (≲ C6) for the vast majority of intervals.
	small := 0
	for _, pt := range auto.Series {
		if pt.ContainerCPUFrac <= 0.25 {
			small++
		}
	}
	if frac := float64(small) / float64(len(auto.Series)); frac < 0.9 {
		t.Errorf("Auto used large containers too often: small fraction %v", frac)
	}
}

// TestComparisonFigure12Steady asserts Figure 12: even for a steady
// workload, Auto undercuts the utilization autoscaler while meeting the
// goal.
func TestComparisonFigure12Steady(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison")
	}
	comp, err := RunComparison(ComparisonSpec{
		Workload:   workload.DS2(),
		Trace:      trace.Trace1(1440, 1),
		GoalFactor: 1.25,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	util := comp.MustByPolicy("Util")
	auto := comp.MustByPolicy("Auto")
	if auto.P95Ms > comp.GoalMs*1.05 {
		t.Errorf("Auto p95 %v misses goal %v", auto.P95Ms, comp.GoalMs)
	}
	if util.AvgCostPerInterval <= auto.AvgCostPerInterval {
		t.Errorf("Util %v should cost more than Auto %v even on steady load",
			util.AvgCostPerInterval, auto.AvgCostPerInterval)
	}
}

func TestComparisonByPolicyMissing(t *testing.T) {
	c := Comparison{}
	if _, ok := c.ByPolicy("nope"); ok {
		t.Error("missing policy should not be found")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByPolicy should panic")
		}
	}()
	c.MustByPolicy("nope")
}
