package sim

import (
	"math"
	"testing"

	"daasscale/internal/engine"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

var cat = resource.LockStepCatalog()

func shortTrace() *trace.Trace {
	return trace.Trace2(120, 7)
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := Run(Spec{Workload: workload.DS2(), Trace: shortTrace()}); err == nil {
		t.Error("missing policy should fail")
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(Spec{
		Workload: workload.DS2(),
		Trace:    shortTrace(),
		Policy:   policy.NewStatic("Fixed", cat.AtStep(5)),
		Seed:     1,
		GoalMs:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "Fixed" || res.Workload != "ds2" || res.Trace != "trace2" {
		t.Errorf("identity fields: %+v", res)
	}
	if res.Intervals != 120 || len(res.Series) != 120 {
		t.Fatalf("intervals = %d, series = %d", res.Intervals, len(res.Series))
	}
	if res.TotalCost != 120*90 {
		t.Errorf("total cost = %v, want %v", res.TotalCost, 120*90)
	}
	if res.AvgCostPerInterval != 90 {
		t.Errorf("avg cost = %v", res.AvgCostPerInterval)
	}
	if res.Changes != 0 || res.ChangeFraction != 0 {
		t.Errorf("static policy changed: %d", res.Changes)
	}
	// Note: avg can exceed p95 for heavy-tailed runs (a few huge cold-start
	// samples drag the mean), so only positivity is asserted.
	if res.P95Ms <= 0 || res.AvgMs <= 0 {
		t.Errorf("latency stats implausible: p95=%v avg=%v", res.P95Ms, res.AvgMs)
	}
	if !res.MeetsGoal(1e9) || res.MeetsGoal(0.001) {
		t.Error("MeetsGoal logic")
	}
	// Series sanity: performance factor defined, wait shares sum to ≈1
	// when there are waits.
	pt := res.Series[60]
	if math.IsNaN(pt.PerformanceFactor) {
		t.Error("performance factor should be defined when a goal is set")
	}
	var waitSum float64
	for _, w := range pt.WaitPct {
		waitSum += w
	}
	if waitSum < 0.99 || waitSum > 1.01 {
		t.Errorf("wait shares sum to %v", waitSum)
	}
	if pt.ContainerCPUFrac <= 0 || pt.ContainerCPUFrac > 1 {
		t.Errorf("container CPU fraction = %v", pt.ContainerCPUFrac)
	}
}

func TestRunDeterminism(t *testing.T) {
	spec := func() Spec {
		return Spec{
			Workload: workload.TPCC(),
			Trace:    trace.Trace4(150, 3),
			Policy:   policy.NewStatic("Fixed", cat.AtStep(4)),
			Seed:     5,
		}
	}
	a, err := Run(spec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec())
	if err != nil {
		t.Fatal(err)
	}
	if a.P95Ms != b.P95Ms || a.TotalCost != b.TotalCost {
		t.Errorf("runs diverged: %v/%v vs %v/%v", a.P95Ms, a.TotalCost, b.P95Ms, b.TotalCost)
	}
}

func TestRunNoGoalPerformanceFactorNaN(t *testing.T) {
	res, err := Run(Spec{
		Workload: workload.DS2(),
		Trace:    trace.Trace1(30, 2),
		Policy:   policy.NewMax(cat),
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Series[10].PerformanceFactor) {
		t.Error("performance factor should be NaN without a goal")
	}
}

func TestDeriveOffline(t *testing.T) {
	off, err := DeriveOffline(cat, workload.CPUIO(workload.DefaultCPUIOConfig()), trace.Trace2(200, 9), 11, engine.Options{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.MaxResult.Policy != "Max" {
		t.Errorf("max result policy = %s", off.MaxResult.Policy)
	}
	if len(off.Schedule) != 200 {
		t.Fatalf("schedule length = %d", len(off.Schedule))
	}
	// Peak provisions at least as much as Avg.
	if off.Peak.Cost < off.Avg.Cost {
		t.Errorf("peak %v cheaper than avg %v", off.Peak, off.Avg)
	}
	// The schedule must track the burst: its most expensive entry should
	// cost more than its cheapest.
	minC, maxC := math.Inf(1), 0.0
	for _, c := range off.Schedule {
		minC = math.Min(minC, c.Cost)
		maxC = math.Max(maxC, c.Cost)
	}
	if maxC <= minC {
		t.Errorf("schedule is flat (%v..%v) despite a bursty trace", minC, maxC)
	}
	// Every scheduled container must dominate the smallest one (sanity).
	for i, c := range off.Schedule {
		if !c.Alloc.Dominates(cat.Smallest().Alloc.Scale(0)) {
			t.Fatalf("schedule[%d] bogus: %v", i, c)
		}
	}
}
