package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"daasscale/internal/actuate"
	"daasscale/internal/engine"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// TestActuationPerfectChannelMatchesSynchronous: an actuated channel with
// zero latency and zero faults (Enable alone) must reproduce the
// synchronous path bit for bit — the asynchronous machinery adds nothing
// but the counters.
func TestActuationPerfectChannelMatchesSynchronous(t *testing.T) {
	spec := Spec{
		Workload: workload.DS2(),
		Trace:    trace.Trace2(90, 4),
		Policy:   chaosAutoPolicy(t),
		Seed:     17,
	}
	sync, err := NewRunner().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Policy = chaosAutoPolicy(t) // policies are stateful; fresh one per run
	spec.Actuation = actuate.Config{Enable: true}
	async, err := NewRunner().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if async.ActuationStats.Applied != sync.Changes {
		t.Errorf("perfect channel applied %d ops, synchronous path made %d changes",
			async.ActuationStats.Applied, sync.Changes)
	}
	if async.ActuationStats.Failed() != 0 || async.ActuationStats.Expired != 0 {
		t.Errorf("perfect channel reported faults: %s", async.ActuationStats)
	}
	// Strip the counters; everything else must match exactly.
	async.ActuationStats = actuate.Stats{}
	if fmt.Sprintf("%v", sync) != fmt.Sprintf("%v", async) {
		t.Errorf("perfect actuated channel diverged from synchronous path\nsync:  %+v\nasync: %+v",
			sync, async)
	}
}

// TestActuationDisabledLeavesZeroStats: the zero config keeps the
// historical code path — no actuator is built and the counters stay zero.
func TestActuationDisabledLeavesZeroStats(t *testing.T) {
	res, err := NewRunner().Run(context.Background(), Spec{
		Workload: workload.DS2(),
		Trace:    trace.Trace1(40, 1),
		Policy:   chaosAutoPolicy(t),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ActuationStats != (actuate.Stats{}) {
		t.Errorf("disabled actuation produced stats: %+v", res.ActuationStats)
	}
}

// actuationChaosConfig is the shared lossy channel of the determinism
// tests: latency, jitter, throttles and failures all on.
func actuationChaosConfig() actuate.Config {
	return actuate.Config{
		Seed:              7,
		LatencyIntervals:  1,
		JitterIntervals:   1,
		FailRate:          0.15,
		ThrottleRate:      0.1,
		DeadlineIntervals: 8,
	}
}

// TestActuationComparisonDeterministicAcrossWorkers is the PR's headline
// property: a comparison with both telemetry faults and actuation chaos is
// bit-identical at any worker count — every random draw derives from the
// run seed, never from scheduling.
func TestActuationComparisonDeterministicAcrossWorkers(t *testing.T) {
	plan := faults.Uniform(0.15)
	plan.Seed = 2
	cs := ComparisonSpec{
		Workload:   workload.DS2(),
		Trace:      trace.Trace2(60, 7),
		GoalFactor: 5,
		Seed:       11,
		Faults:     plan,
		Actuation:  actuationChaosConfig(),
	}
	serial, err := NewRunner(WithParallelism(1)).RunComparison(context.Background(), cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 6} {
		par, err := NewRunner(WithParallelism(workers)).RunComparison(context.Background(), cs)
		if err != nil {
			t.Fatal(err)
		}
		// The Max series carries NaN performance factors (no goal), so
		// compare the rendered (NaN-stable) form byte for byte.
		if fmt.Sprintf("%v", serial) != fmt.Sprintf("%v", par) {
			t.Errorf("workers=%d: actuated comparison differs from serial", workers)
		}
	}
	auto, _ := serial.ByPolicy("Auto")
	if auto.ActuationStats.Ops == 0 {
		t.Error("Auto's resize channel saw no operations")
	}
	// The offline Max derivation stays synchronous so actuated and clean
	// comparisons share the same goal.
	max, _ := serial.ByPolicy("Max")
	if max.ActuationStats != (actuate.Stats{}) {
		t.Errorf("Max's offline run must stay synchronous, got %+v", max.ActuationStats)
	}
}

// TestActuationMultiTenantDeterministicAcrossWorkers: per-tenant actuation
// streams routed through the shared fabric survive the two-phase parallel
// schedule bit for bit.
func TestActuationMultiTenantDeterministicAcrossWorkers(t *testing.T) {
	plan := faults.Uniform(0.2)
	spec := MultiTenantSpec{
		Tenants: []TenantSpec{
			{ID: "web", Workload: workload.DS2(), Trace: trace.Trace1(120, 1), GoalMs: 60},
			{ID: "oltp", Workload: workload.TPCC(), Trace: trace.Trace4(120, 2), GoalMs: 200},
			{ID: "batch", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace2(120, 3), GoalMs: 80},
		},
		Servers:    2,
		Policy:     fabric.BestFit,
		EngineOpts: engine.Options{WarmStart: true},
		Seed:       9,
		Faults:     plan,
		Actuation:  actuationChaosConfig(),
	}
	serial, err := NewRunner(WithParallelism(1)).RunMultiTenant(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := NewRunner(WithParallelism(workers)).RunMultiTenant(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: actuated cluster run differs from serial\nserial: %+v\nparallel: %+v",
				workers, serial, par)
		}
	}
	ops := 0
	for _, tr := range serial.Tenants {
		ops += tr.Actuation.Ops
		if tr.TotalCost <= 0 {
			t.Errorf("tenant %s accrued no cost under actuation chaos", tr.ID)
		}
	}
	if ops == 0 {
		t.Error("no tenant's resize channel saw an operation")
	}
}

// TestActuationThrottleBurstReconciles is the acceptance scenario: a storm
// throttling 100% of resize attempts for a window. The autoscaler
// survives, no resize lands during the storm, and once it lifts the
// level-triggered reconciliation applies the latest desired container —
// expired operations are re-issued, stale ones superseded, and the channel
// converges.
func TestActuationThrottleBurstReconciles(t *testing.T) {
	burst := actuate.Config{
		BurstStart:        10,
		BurstLen:          25,
		DeadlineIntervals: 4,
		MaxAttempts:       3,
	}
	res, err := NewRunner().Run(context.Background(), Spec{
		Workload:  workload.CPUIO(workload.DefaultCPUIOConfig()),
		Trace:     trace.Trace2(90, 2),
		Policy:    chaosAutoPolicy(t),
		Seed:      5,
		Actuation: burst,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.ActuationStats
	if st.Throttled == 0 {
		t.Fatalf("burst throttled nothing: %s", st)
	}
	if st.Applied == 0 {
		t.Fatalf("channel never converged after the burst: %s", st)
	}
	if st.Expired == 0 {
		t.Errorf("a 25-interval storm against a 4-interval deadline must expire operations: %s", st)
	}
	// No resize may land inside the storm window.
	cur := res.Series[0].Container
	for _, pt := range res.Series {
		if pt.Interval > burst.BurstStart && pt.Interval <= burst.BurstStart+burst.BurstLen && pt.Container != cur {
			t.Errorf("interval %d: container changed to %s during a 100%% throttle storm", pt.Interval, pt.Container)
		}
		cur = pt.Container
	}
	// After the storm the channel must have caught up at least once.
	if st.MaxEffectIntervals == 0 {
		t.Errorf("every applied op landed instantly despite a 25-interval storm: %s", st)
	}
	for name, v := range map[string]float64{"TotalCost": res.TotalCost, "P95Ms": res.P95Ms} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Errorf("%s not finite-positive after the storm: %v", name, v)
		}
	}
}

// TestActuationMultiTenantRefusalsRetry: an overpacked cluster refuses
// grows; on the actuated path each refused attempt is counted and the
// operation retries instead of silently reverting the controller.
func TestActuationMultiTenantRefusalsRetry(t *testing.T) {
	mk := func(cfg actuate.Config) MultiTenantResult {
		t.Helper()
		res, err := NewRunner().RunMultiTenant(context.Background(), MultiTenantSpec{
			Tenants: []TenantSpec{
				{ID: "a", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace2(90, 1), GoalMs: 40},
				{ID: "b", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace2(90, 2), GoalMs: 40},
				{ID: "c", Workload: workload.TPCC(), Trace: trace.Trace4(90, 3), GoalMs: 150},
			},
			Servers:    1, // one server: growth quickly runs out of room
			Policy:     fabric.BestFit,
			EngineOpts: engine.Options{WarmStart: true},
			Seed:       21,
			Actuation:  cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := mk(actuate.Config{Enable: true, DeadlineIntervals: 6})
	refused := 0
	for _, tr := range res.Tenants {
		refused += tr.RefusedResizes
		if tr.Actuation.Refused != tr.RefusedResizes {
			t.Errorf("tenant %s: actuator counted %d refusals, result says %d",
				tr.ID, tr.Actuation.Refused, tr.RefusedResizes)
		}
	}
	if refused == 0 {
		t.Fatal("an overpacked single-server cluster refused nothing")
	}
	if res.Refusals != refused {
		t.Errorf("fabric counted %d refusals, tenants counted %d", res.Refusals, refused)
	}
}

// TestActuationBallooningArmsCarryStats: the Figure 14 experiment drives
// its memory targets through the actuation channel when configured, and
// each arm reports its own counters.
func TestActuationBallooningArmsCarryStats(t *testing.T) {
	res, err := NewRunner().RunBallooning(context.Background(), BallooningSpec{
		Seed:      5,
		Intervals: 60,
		ShrinkAt:  20,
		Actuation: actuate.Config{LatencyIntervals: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []BallooningArm{res.Without, res.With} {
		if len(arm.Series) != 60 {
			t.Fatalf("%s: series has %d points, want 60", arm.Name, len(arm.Series))
		}
		if arm.Actuation.Ops == 0 {
			t.Errorf("%s: memory-target channel saw no operations", arm.Name)
		}
	}
	// The naive arm must still revert: the actuated channel delays but does
	// not lose the revert decision.
	if !res.Without.Aborted {
		t.Error("naive arm never reverted through the actuated channel")
	}
}

// TestActuationValidationRejectsBadConfigs: malformed actuation configs
// fail spec validation with the uniform sentinel on every Run* path.
func TestActuationValidationRejectsBadConfigs(t *testing.T) {
	bad := actuate.Config{FailRate: math.NaN()}
	r := NewRunner()
	ctx := context.Background()

	if _, err := r.Run(ctx, Spec{
		Workload: workload.DS2(), Trace: trace.Trace1(30, 1),
		Policy: chaosAutoPolicy(t), Actuation: bad,
	}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("Run: err = %v, want ErrInvalidSpec", err)
	}
	if _, err := r.RunComparison(ctx, ComparisonSpec{
		Workload: workload.DS2(), Trace: trace.Trace1(30, 1), GoalFactor: 2, Actuation: bad,
	}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("RunComparison: err = %v, want ErrInvalidSpec", err)
	}
	if _, err := r.RunMultiTenant(ctx, MultiTenantSpec{
		Tenants:   []TenantSpec{{ID: "a", Workload: workload.DS2(), Trace: trace.Trace1(30, 1)}},
		Actuation: bad,
	}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("RunMultiTenant: err = %v, want ErrInvalidSpec", err)
	}
	if _, err := r.RunBallooning(ctx, BallooningSpec{Actuation: bad}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("RunBallooning: err = %v, want ErrInvalidSpec", err)
	}
}

// TestActuationRunnerDefaultPropagates: a WithActuation runner applies its
// config to specs that don't set one, exactly like a spec-level config.
func TestActuationRunnerDefaultPropagates(t *testing.T) {
	cfg := actuationChaosConfig()
	spec := Spec{
		Workload: workload.DS2(),
		Trace:    trace.Trace1(60, 1),
		Policy:   chaosAutoPolicy(t),
		Seed:     4,
	}
	viaRunner, err := NewRunner(WithActuation(cfg)).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Policy = chaosAutoPolicy(t)
	spec.Actuation = cfg
	viaSpec, err := NewRunner().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if viaRunner.ActuationStats != viaSpec.ActuationStats {
		t.Fatalf("runner default config diverged from spec-level config:\n%+v\n%+v",
			viaRunner.ActuationStats, viaSpec.ActuationStats)
	}
	if viaRunner.ActuationStats.Ops == 0 {
		t.Fatal("runner default config actuated nothing")
	}
}

// TestActuationChaosCombinedCostWithinBound is the combined-chaos
// acceptance bound: telemetry faults AND a lossy resize channel together
// leave Auto's total cost within 30% of the clean run's — graceful
// degradation composes.
func TestActuationChaosCombinedCostWithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison")
	}
	tr := trace.Trace2(900, 2)
	w := workload.CPUIO(workload.DefaultCPUIOConfig())
	base := ComparisonSpec{Workload: w, Trace: tr, GoalFactor: 1.25, Seed: 42}
	clean, err := NewRunner().RunComparison(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	chaos := base
	chaos.Faults = faults.Uniform(0.08)
	chaos.Faults.Seed = 1
	chaos.Actuation = actuate.Config{
		Seed:              3,
		LatencyIntervals:  1,
		FailRate:          0.1,
		ThrottleRate:      0.05,
		DeadlineIntervals: 10,
	}
	dirty, err := NewRunner().RunComparison(context.Background(), chaos)
	if err != nil {
		t.Fatal(err)
	}
	if clean.GoalMs != dirty.GoalMs {
		t.Fatalf("latency goals diverged: clean %v vs chaos %v (offline Max run must stay clean and synchronous)",
			clean.GoalMs, dirty.GoalMs)
	}
	ca := clean.MustByPolicy("Auto")
	da := dirty.MustByPolicy("Auto")
	lo, hi := ca.TotalCost*0.70, ca.TotalCost*1.30
	if da.TotalCost < lo || da.TotalCost > hi {
		t.Errorf("combined-chaos Auto cost %.0f outside ±30%% of clean cost %.0f",
			da.TotalCost, ca.TotalCost)
	}
	if math.IsNaN(da.P95Ms) || math.IsInf(da.P95Ms, 0) || da.P95Ms <= 0 {
		t.Errorf("combined-chaos Auto p95 not finite-positive: %v", da.P95Ms)
	}
	if da.FaultStats.Total() == 0 || da.ActuationStats.Ops == 0 {
		t.Errorf("combined chaos injected nothing: faults %v, actuation %s",
			da.FaultStats, da.ActuationStats)
	}
}
