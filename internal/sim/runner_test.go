package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"daasscale/internal/exec"
	"daasscale/internal/fabric"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// clusterSpec is a small multi-tenant spec with derived tenant seeds (Seed 0
// → split from the cluster seed), exercising the full parallel path.
func clusterSpec() MultiTenantSpec {
	return MultiTenantSpec{
		Tenants: []TenantSpec{
			{ID: "web", Workload: workload.DS2(), Trace: trace.Trace1(60, 1), GoalMs: 60},
			{ID: "oltp", Workload: workload.TPCC(), Trace: trace.Trace4(60, 2), GoalMs: 200},
			{ID: "batch", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace2(60, 3), GoalMs: 80},
			{ID: "idle", Workload: workload.DS2(), Trace: trace.Trace2(40, 4), GoalMs: 0},
		},
		Servers: 2,
		Policy:  fabric.BestFit,
		Seed:    99,
	}
}

// TestRunnerMultiTenantDeterministic is the core promise of the parallel
// engine: worker count changes wall time, never results.
func TestRunnerMultiTenantDeterministic(t *testing.T) {
	spec := clusterSpec()
	serial, err := NewRunner(WithParallelism(1)).RunMultiTenant(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := NewRunner(WithParallelism(workers)).RunMultiTenant(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: parallel result differs from serial\nserial: %+v\nparallel: %+v", workers, serial, par)
		}
	}
}

func TestRunnerComparisonDeterministic(t *testing.T) {
	cs := ComparisonSpec{
		Workload:   workload.DS2(),
		Trace:      trace.Trace2(40, 7),
		GoalFactor: 5,
		Seed:       11,
	}
	serial, err := NewRunner(WithParallelism(1)).RunComparison(context.Background(), cs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(WithParallelism(6)).RunComparison(context.Background(), cs)
	if err != nil {
		t.Fatal(err)
	}
	// The Max run has no goal, so its series carries NaN performance
	// factors; compare the rendered form (NaN-stable) byte for byte.
	if fmt.Sprintf("%v", serial) != fmt.Sprintf("%v", par) {
		t.Error("parallel comparison differs from serial")
	}
	want := []string{"Max", "Peak", "Avg", "Trace", "Util", "Auto"}
	for i, r := range par.Results {
		if r.Policy != want[i] {
			t.Errorf("result %d is %q, want %q", i, r.Policy, want[i])
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: every path must notice before real work

	r := NewRunner()
	if _, err := r.Run(ctx, Spec{
		Workload: workload.DS2(), Trace: trace.Trace2(40, 7),
		Policy: policy.NewStatic("Fixed", cat.AtStep(5)), Seed: 1,
	}); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("Run: err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if _, err := r.RunComparison(ctx, ComparisonSpec{
		Workload: workload.DS2(), Trace: trace.Trace2(40, 7), GoalFactor: 5,
	}); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("RunComparison: err = %v", err)
	}
	if _, err := r.RunMultiTenant(ctx, clusterSpec()); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("RunMultiTenant: err = %v", err)
	}
	if _, err := r.RunBallooning(ctx, BallooningSpec{Seed: 1}); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("RunBallooning: err = %v", err)
	}
}

// TestRunnerCancelMidRun cancels from inside the progress hook and expects
// the run to stop with ErrCanceled instead of completing.
func TestRunnerCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	r := NewRunner(WithParallelism(2), WithProgress(func(exec.Progress) {
		fired.Store(true)
		cancel()
	}))
	_, err := r.RunMultiTenant(ctx, clusterSpec())
	if !fired.Load() {
		t.Fatal("progress hook never fired")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

// TestRunnerProgressConcurrent hammers the progress hook from several
// workers; run with -race this is the regression test for hook safety.
func TestRunnerProgressConcurrent(t *testing.T) {
	var calls atomic.Int64
	var lastDone atomic.Int64
	r := NewRunner(WithParallelism(4), WithProgress(func(p exec.Progress) {
		calls.Add(1)
		lastDone.Store(int64(p.Done))
		_ = p.TasksPerSec
		_ = p.WorkerUtilization
	}))
	if _, err := r.RunMultiTenant(context.Background(), clusterSpec()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Error("progress hook never called")
	}
	if lastDone.Load() == 0 {
		t.Error("progress snapshots never reported completed work")
	}
}

func TestRunnerValidationSentinels(t *testing.T) {
	ctx := context.Background()
	r := NewRunner()
	cases := []struct {
		name string
		err  func() error
	}{
		{"empty spec", func() error { _, err := r.Run(ctx, Spec{}); return err }},
		{"zero-interval trace", func() error {
			_, err := r.Run(ctx, Spec{Workload: workload.DS2(), Trace: trace.Trace2(0, 1), Policy: policy.NewMax(cat)})
			return err
		}},
		{"negative jitter", func() error {
			_, err := r.Run(ctx, Spec{Workload: workload.DS2(), Trace: shortTrace(), Policy: policy.NewMax(cat), Jitter: -1})
			return err
		}},
		{"comparison missing workload", func() error { _, err := r.RunComparison(ctx, ComparisonSpec{}); return err }},
		{"comparison goal factor ≤ 1", func() error {
			_, err := r.RunComparison(ctx, ComparisonSpec{Workload: workload.DS2(), Trace: shortTrace(), GoalFactor: 1})
			return err
		}},
		{"comparison empty catalog", func() error {
			_, err := r.RunComparison(ctx, ComparisonSpec{
				Workload: workload.DS2(), Trace: shortTrace(), GoalFactor: 5, Catalog: &resource.Catalog{},
			})
			return err
		}},
		{"multi-tenant no tenants", func() error { _, err := r.RunMultiTenant(ctx, MultiTenantSpec{}); return err }},
		{"multi-tenant duplicate IDs", func() error {
			_, err := r.RunMultiTenant(ctx, MultiTenantSpec{Tenants: []TenantSpec{
				{ID: "a", Workload: workload.DS2(), Trace: shortTrace()},
				{ID: "a", Workload: workload.DS2(), Trace: shortTrace()},
			}})
			return err
		}},
		{"ballooning negative intervals", func() error {
			_, err := r.RunBallooning(ctx, BallooningSpec{Intervals: -1})
			return err
		}},
		{"ballooning shrink past end", func() error {
			_, err := r.RunBallooning(ctx, BallooningSpec{Intervals: 10, ShrinkAt: 10})
			return err
		}},
		{"empty policy list", func() error {
			_, err := r.RunPolicies(ctx, Spec{Workload: workload.DS2(), Trace: shortTrace()}, nil)
			return err
		}},
		{"nil policy entry", func() error {
			_, err := r.RunPolicies(ctx, Spec{Workload: workload.DS2(), Trace: shortTrace()}, []policy.Policy{nil})
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.err(); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: err = %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

func TestRunnerOptionDefaults(t *testing.T) {
	base := Spec{
		Workload: workload.DS2(),
		Trace:    shortTrace(),
		Policy:   policy.NewStatic("Fixed", cat.AtStep(5)),
		// A goal keeps PerformanceFactor finite, so DeepEqual is usable.
		GoalMs: 100,
	}

	// WithSeed fills a zero spec seed; an explicit spec seed wins.
	seeded := base
	seeded.Seed = 42
	want, err := NewRunner().Run(context.Background(), seeded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewRunner(WithSeed(42)).Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("WithSeed(42) on a zero-seed spec differs from an explicit Seed 42")
	}
	override := base
	override.Seed = 7
	got2, err := NewRunner(WithSeed(42)).Run(context.Background(), override)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(want, got2) {
		t.Error("an explicit spec seed should override WithSeed")
	}

	// WithJitter fills a zero spec jitter.
	jit := base
	jit.Seed, jit.Jitter = 42, 0.3
	wantJ, err := NewRunner().Run(context.Background(), jit)
	if err != nil {
		t.Fatal(err)
	}
	gotJ, err := NewRunner(WithSeed(42), WithJitter(0.3)).Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantJ, gotJ) {
		t.Error("WithJitter(0.3) on a zero-jitter spec differs from an explicit Jitter")
	}

	// WithPolicy fills a missing spec policy.
	nopol := base
	nopol.Policy, nopol.Seed = nil, 42
	gotP, err := NewRunner(WithPolicy(policy.NewStatic("Fixed", cat.AtStep(5)))).Run(context.Background(), nopol)
	if err != nil {
		t.Fatal(err)
	}
	if gotP.Policy != "Fixed" {
		t.Errorf("WithPolicy default not applied: %q", gotP.Policy)
	}
}

func TestRunnerRunPoliciesOrder(t *testing.T) {
	policies := []policy.Policy{
		policy.NewStatic("S2", cat.AtStep(2)),
		policy.NewStatic("S4", cat.AtStep(4)),
		policy.NewStatic("S6", cat.AtStep(6)),
	}
	res, err := NewRunner(WithParallelism(3), WithSeed(5)).RunPolicies(context.Background(), Spec{
		Workload: workload.DS2(),
		Trace:    shortTrace(),
	}, policies)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	for i, want := range []string{"S2", "S4", "S6"} {
		if res[i].Policy != want {
			t.Errorf("result %d is %q, want %q", i, res[i].Policy, want)
		}
	}
	// A sweep must replay the identical offered load per policy.
	for _, r := range res {
		if r.Intervals != shortTrace().Len() {
			t.Errorf("policy %s ran %d intervals", r.Policy, r.Intervals)
		}
	}
}

// TestDeprecatedWrappersAgree pins the compatibility contract: the old free
// functions are thin wrappers and must return exactly what the Runner does.
func TestDeprecatedWrappersAgree(t *testing.T) {
	spec := Spec{
		Workload: workload.DS2(),
		Trace:    shortTrace(),
		Policy:   policy.NewStatic("Fixed", cat.AtStep(5)),
		Seed:     3,
		GoalMs:   100,
	}
	oldRes, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := NewRunner().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldRes, newRes) {
		t.Error("Run wrapper and Runner.Run disagree")
	}

	mt := clusterSpec()
	oldMT, err := RunMultiTenant(mt)
	if err != nil {
		t.Fatal(err)
	}
	newMT, err := NewRunner(WithParallelism(1)).RunMultiTenant(context.Background(), mt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldMT, newMT) {
		t.Error("RunMultiTenant wrapper and serial Runner disagree")
	}
}
