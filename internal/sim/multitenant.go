package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"

	"daasscale/internal/actuate"
	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/exec"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/loop"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// TenantSpec describes one tenant in a multi-tenant cluster run.
type TenantSpec struct {
	// ID names the tenant in the fabric.
	ID string
	// Workload and Trace drive the tenant's engine. Required.
	Workload *workload.Workload
	Trace    *trace.Trace
	// GoalMs is the tenant's p95 latency goal (0 = demand-driven only).
	GoalMs float64
	// Seed makes the tenant's run reproducible. When zero, a tenant seed is
	// derived deterministically from the cluster Seed and the tenant ID
	// (exec.SplitSeedString), so large fleets need not enumerate seeds.
	Seed int64
}

// TenantResult summarizes one tenant of a multi-tenant run.
type TenantResult struct {
	ID                 string
	TotalCost          float64
	AvgCostPerInterval float64
	P95Ms              float64
	Changes            int
	// RefusedResizes counts resize attempts the fabric could not place;
	// the tenant kept its container for those. On the actuated path each
	// refused attempt counts (the actuator retries refusals).
	RefusedResizes int
	// Migrations counts resizes the fabric executed by moving this tenant
	// to another server.
	Migrations int
	// Actuation reports the tenant's actuation-channel counters
	// (all-zero on the synchronous path).
	Actuation actuate.Stats
	// Audit is the tenant's per-interval decision-audit trail (only
	// collected when the spec asked for it).
	Audit []loop.DecisionRecord
}

// MultiTenantResult is the outcome of a cluster run.
type MultiTenantResult struct {
	Tenants []TenantResult
	// Migrations and Refusals are the fabric's totals.
	Migrations int
	Refusals   int
	// PeakClusterCPUFrac is the highest CPU allocation fraction any server
	// reached.
	PeakClusterCPUFrac float64
}

// MultiTenantSpec describes a cluster of auto-scaled tenants sharing a
// fixed set of database servers through the management fabric — the
// paper's Figure 3 deployment: each server hosts a set of containers, the
// fabric decides co-location, and every resize the auto-scaling logic
// recommends is executed (or refused) by the fabric.
type MultiTenantSpec struct {
	// Catalog of containers (nil → default lock-step catalog).
	Catalog *resource.Catalog
	// Tenants to host. Required, non-empty, with unique IDs.
	Tenants []TenantSpec
	// Servers is the cluster size (0 → enough servers for one largest
	// container per two tenants, at least one).
	Servers int
	// Policy is the fabric's placement policy.
	Policy fabric.PlacementPolicy
	// EngineOpts tunes the substrate.
	EngineOpts engine.Options
	// Seed is the cluster-level base seed from which tenants with a zero
	// Seed derive theirs (split by tenant ID).
	Seed int64
	// Faults is the deterministic fault plan applied to each tenant's
	// telemetry channel (zero value = clean). Every tenant gets its own
	// fault stream, derived from its tenant seed, so fault timing is
	// independent across tenants yet bit-identical at any worker count.
	Faults faults.Plan
	// Actuation configures each tenant's decision→fabric channel (zero
	// value = synchronous). When enabled, every resize the tenant's
	// auto-scaler decides becomes an asynchronous operation routed
	// through the shared fabric: refusals retry with backoff, stale
	// resizes are superseded, and the per-tenant streams derive from the
	// tenant seeds, so chaos runs stay bit-identical at any worker count.
	Actuation actuate.Config
	// Audit, when true, collects each tenant's loop.DecisionRecords into
	// TenantResult.Audit.
	Audit bool
	// Recorder, when set, receives every tenant's audit stream. Records
	// are emitted by the serial apply phase — interval by interval, tenant
	// order within an interval — so a shared Recorder needs no locking
	// even though decisions themselves are computed in parallel.
	Recorder loop.Recorder
}

// RunMultiTenant executes the cluster simulation. Each tenant gets its own
// engine (the container abstraction isolates tenants from each other) and
// its own auto-scaler; all resizes flow through the shared fabric, which
// may migrate tenants between servers or refuse a resize outright when the
// cluster has no room — in which case the tenant keeps its container and
// the controller reconciles.
//
// Deprecated: use NewRunner().RunMultiTenant(ctx, spec), which adds
// context cancellation and a progress hook. This wrapper already fans
// per-tenant engine work across every available core; worker count never
// changes results (they are bit-identical at any parallelism).
func RunMultiTenant(spec MultiTenantSpec) (MultiTenantResult, error) {
	return NewRunner().RunMultiTenant(context.Background(), spec)
}

// fabricApplier lands a tenant's resizes on the shared fabric: a refusal
// surfaces as actuate.ErrRefused (the loop reconciles on the synchronous
// path, the actuator retries with backoff on the actuated one), a
// migration and a refusal are tallied on the tenant's result, and a
// successful resize reaches the tenant's engine.
type fabricApplier struct {
	fab *fabric.Fabric
	eng *engine.Engine
	id  string
	res *TenantResult
}

// Apply implements loop.Applier.
func (a *fabricApplier) Apply(c resource.Container) error {
	migrated, err := a.fab.Resize(a.id, c)
	if errors.Is(err, fabric.ErrRefused) {
		a.res.RefusedResizes++
		return fmt.Errorf("%w: %v", actuate.ErrRefused, err)
	}
	if err != nil {
		// A non-refusal fabric fault (e.g. an unplaced tenant) is a bug,
		// not an outcome — surface it instead of miscounting it as a
		// refusal.
		return err
	}
	a.eng.SetContainer(c)
	if migrated {
		a.res.Migrations++
	}
	return nil
}

// Actual implements loop.Applier. The engine's container is the fabric's
// record of the tenant: both change only together, on placement and on a
// successful resize.
func (a *fabricApplier) Actual() resource.Container { return a.eng.Container() }

// scalerReconciler re-anchors the tenant's controller to the substrate
// (the reconcile the synchronous path does on refusal and the actuated
// path does every step).
type scalerReconciler struct{ scaler *core.AutoScaler }

// ForceActual implements loop.Reconciler.
func (r scalerReconciler) ForceActual(c resource.Container) { r.scaler.ForceContainer(c) }

// tenantState is one tenant's private simulation state. During the tick
// phase workers touch only their own tenantState (index-addressed), which
// is what makes the fan-out race-free and deterministic.
type tenantState struct {
	spec TenantSpec
	eng  *engine.Engine
	lp   *loop.TenantLoop[resource.Container]
	res  TenantResult
	col  *loop.Collector
}

// clusterSchedule selects how runMultiTenant lays the interval loop over
// the worker pool. The zero value is the optimized schedule.
type clusterSchedule struct {
	// reference selects the retained pre-optimization schedule: per-call
	// engine ticks (loop.RunTicksReference) fanned across workers, then a
	// fully serial DecideApply phase — exactly the PR-6 interval loop. The
	// cluster benchmark measures the optimized schedule against it;
	// results are bit-identical either way.
	reference bool
	// labels wraps each phase in runtime/pprof labels so CPU profiles can
	// be split per phase. Off by default: pprof.Do allocates per call.
	labels bool
}

// runMultiTenant is the context-aware, pool-parallel implementation behind
// Runner.RunMultiTenant. The spec must already be validated and resolved.
//
// The interval loop is split into two phases, matching TenantLoop's
// RunTicks / Decide / Apply split. Phase 1 — the engine ticks, the
// interval snapshot AND the scaling decision — fans across the pool:
// ticking touches only the tenant's own engine, and a tenant's decision
// reads only its own state (its snapshot, its decider, its fault
// injector's private stream, and its own substrate record through
// Applier.Actual), so decisions are order-independent across tenants.
// Phase 2 — the applies, which resize through the shared fabric and whose
// placement outcomes therefore depend on who asked first — runs serially
// in tenant order, exactly as the historical serial loop ordered it.
// Because a tenant's ticks and decision depend only on its own state and
// its own previous apply, the schedule produces bit-identical results to
// the serial interleaving at any worker count (the golden equivalence
// suite and the worker-count chaos tests pin this).
func runMultiTenant(ctx context.Context, spec MultiTenantSpec, pool *exec.Pool, sched clusterSchedule) (MultiTenantResult, error) {
	cat := spec.Catalog
	servers := spec.Servers
	if servers == 0 {
		servers = (len(spec.Tenants) + 1) / 2
	}
	fab, err := fabric.New(servers, cat.Largest().Alloc, spec.Policy)
	if err != nil {
		return MultiTenantResult{}, err
	}

	// Build the per-tenant states in parallel: engine construction warms
	// buffer pools and is itself per-tenant work. Placement happens
	// serially afterwards — the fabric is shared state.
	intervals := 0
	for _, ts := range spec.Tenants {
		if ts.Trace.Len() > intervals {
			intervals = ts.Trace.Len()
		}
	}
	states, err := execMapPool(ctx, pool, len(spec.Tenants), func(ctx context.Context, i int) (*tenantState, error) {
		ts := spec.Tenants[i]
		if ts.Seed == 0 {
			ts.Seed = exec.SplitSeedString(spec.Seed, ts.ID)
		}
		scaler, err := autoScalerFor(cat, ts.GoalMs, nil)
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(ts.Workload, scaler.Container(), ts.Seed, spec.EngineOpts)
		if err != nil {
			return nil, err
		}
		sampleHint := 0
		if !sched.reference {
			sampleHint = intervals * eng.TicksPerInterval() * engine.MaxLatencySamplesPerTick
		}
		st := &tenantState{spec: ts, eng: eng, res: TenantResult{ID: ts.ID}}
		rec, col := specRecorder(spec.Audit, spec.Recorder)
		st.col = col
		st.lp = loop.New(loop.Config[resource.Container]{
			ID:               ts.ID,
			Engine:           eng,
			Seed:             ts.Seed,
			Jitter:           0.1,
			Decider:          loop.NewPolicyDecider(policy.NewAuto(scaler), eng),
			Applier:          &fabricApplier{fab: fab, eng: eng, id: ts.ID, res: &st.res},
			Reconciler:       scalerReconciler{scaler},
			Faults:           spec.Faults,
			Actuation:        spec.Actuation,
			Recorder:         rec,
			Describe:         loop.DescribeContainer,
			SetMemoryTarget:  true,
			CollectLatencies: true,
			// Idle tenants (trace ended) record no samples, so this is an
			// upper bound; it turns a run's worth of sample collection into
			// one allocation per tenant. The reference schedule leaves it
			// unset: the baseline grew its buffers on demand, and the
			// benchmark gate measures against that era's behavior.
			SampleCapacityHint: sampleHint,
		})
		return st, nil
	})
	if err != nil {
		return MultiTenantResult{}, err
	}
	for _, st := range states {
		if err := fab.Place(st.spec.ID, st.eng.Container()); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: placing tenant %q: %w", st.spec.ID, err)
		}
	}

	// The pprof label sets are built once per run: pprof.Do itself
	// allocates per call, which is why labelling is opt-in at all.
	var ticksLabels, applyLabels pprof.LabelSet
	if sched.labels {
		ticksLabels = pprof.Labels("phase", "ticks+decide")
		applyLabels = pprof.Labels("phase", "apply")
	}

	out := MultiTenantResult{}
	for m := 0; m < intervals; m++ {
		if err := checkCtx(ctx); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: cluster interval %d: %w", m, err)
		}
		// Phase 1: every tenant's billing interval — engine ticks plus the
		// tenant-local scaling decision — fanned across workers. The
		// reference schedule keeps the historical shape: per-call ticks
		// here, decisions deferred to the serial phase.
		err := pool.Run(ctx, len(states), func(_ context.Context, i int) error {
			st := states[i]
			target := st.spec.Trace.At(m)
			if m >= st.spec.Trace.Len() {
				target = 0 // this tenant's trace ended; it idles
			}
			run := func() {
				if sched.reference {
					st.lp.RunTicksReference(target)
				} else {
					st.lp.RunTicks(target)
					st.lp.Decide(m)
				}
			}
			if sched.labels {
				pprof.Do(ctx, ticksLabels, func(context.Context) { run() })
			} else {
				run()
			}
			return nil
		})
		if err != nil {
			return MultiTenantResult{}, wrapCanceled(err)
		}
		// Phase 2: the applies through the shared fabric, serial in tenant
		// order (the fabric's placement state makes the order load-bearing).
		// Records reach a shared Recorder from here, so it needs no locking.
		apply := func() error {
			for _, st := range states {
				var err error
				if sched.reference {
					err = st.lp.DecideApply(m)
				} else {
					err = st.lp.Apply(m)
				}
				if err != nil {
					return fmt.Errorf("sim: interval %d: resizing tenant %q: %w", m, st.spec.ID, err)
				}
			}
			return nil
		}
		if sched.labels {
			var applyErr error
			pprof.Do(ctx, applyLabels, func(context.Context) { applyErr = apply() })
			err = applyErr
		} else {
			err = apply()
		}
		if err != nil {
			return MultiTenantResult{}, err
		}
		for _, u := range fab.Utilization() {
			if u > out.PeakClusterCPUFrac {
				out.PeakClusterCPUFrac = u
			}
		}
		if err := fab.Validate(); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: interval %d: %w", m, err)
		}
	}
	for _, st := range states {
		tot := st.lp.Finalize(intervals)
		st.res.TotalCost = tot.TotalCost
		st.res.AvgCostPerInterval = tot.AvgCostPerInterval
		st.res.P95Ms = tot.P95Ms
		st.res.Changes = tot.Changes
		st.res.Actuation = tot.Actuation
		if st.col != nil {
			st.res.Audit = st.col.Records
		}
		out.Tenants = append(out.Tenants, st.res)
	}
	out.Migrations = fab.Migrations()
	out.Refusals = fab.Refusals()
	return out, nil
}
