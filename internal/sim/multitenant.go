package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"

	"daasscale/internal/actuate"
	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/exec"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/loop"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// TenantSpec describes one tenant in a multi-tenant cluster run.
type TenantSpec struct {
	// ID names the tenant in the fabric.
	ID string
	// Workload and Trace drive the tenant's engine. Required.
	Workload *workload.Workload
	Trace    *trace.Trace
	// GoalMs is the tenant's p95 latency goal (0 = demand-driven only).
	GoalMs float64
	// Seed makes the tenant's run reproducible. When zero, a tenant seed is
	// derived deterministically from the cluster Seed and the tenant ID
	// (exec.SplitSeedString), so large fleets need not enumerate seeds.
	Seed int64
}

// TenantResult summarizes one tenant of a multi-tenant run.
type TenantResult struct {
	ID                 string
	TotalCost          float64
	AvgCostPerInterval float64
	P95Ms              float64
	Changes            int
	// RefusedResizes counts resize attempts the fabric could not place;
	// the tenant kept its container for those. On the actuated path each
	// refused attempt counts (the actuator retries refusals).
	RefusedResizes int
	// Migrations counts resizes the fabric executed by moving this tenant
	// to another server.
	Migrations int
	// RebalanceMigrations counts moves of this tenant the placement
	// optimizer planned and the fabric executed (a subset of the fabric's
	// total migration count; each lands with a cold cache).
	RebalanceMigrations int
	// Actuation reports the tenant's actuation-channel counters
	// (all-zero on the synchronous path).
	Actuation actuate.Stats
	// Audit is the tenant's per-interval decision-audit trail (only
	// collected when the spec asked for it).
	Audit []loop.DecisionRecord
}

// NodeStats is one server's end-of-run state: who it hosts, how full each
// resource dimension is, and how contended its shared channels are.
type NodeStats struct {
	// Node is the server's cluster index.
	Node int
	// Tenants is the number of hosted tenants.
	Tenants int
	// Utilization is the allocated fraction of each resource dimension.
	Utilization resource.Vector
	// Pressure is the shared-channel pressure (demand over effective
	// shared capacity; above 1 the residents interfere).
	Pressure fabric.Pressure
	// Inflation is the per-channel wait-inflation multiplier residents
	// run under (all-ones when the interference model is off).
	Inflation fabric.Inflation
}

// MultiTenantResult is the outcome of a cluster run.
type MultiTenantResult struct {
	Tenants []TenantResult
	// Migrations and Refusals are the fabric's totals.
	Migrations int
	Refusals   int
	// RebalanceMigrations is the cluster total of optimizer-planned moves
	// the fabric executed (also included in Migrations).
	RebalanceMigrations int
	// PeakClusterCPUFrac is the highest CPU allocation fraction any server
	// reached.
	PeakClusterCPUFrac float64
	// PeakWaitInflation is the highest dominant wait-inflation multiplier
	// any node imposed during the run (1 when never contended, 0 on runs
	// predating the contention stamp).
	PeakWaitInflation float64
	// Nodes is the per-server end-of-run report.
	Nodes []NodeStats
}

// MultiTenantSpec describes a cluster of auto-scaled tenants sharing a
// fixed set of database servers through the management fabric — the
// paper's Figure 3 deployment: each server hosts a set of containers, the
// fabric decides co-location, and every resize the auto-scaling logic
// recommends is executed (or refused) by the fabric.
type MultiTenantSpec struct {
	// Catalog of containers (nil → default lock-step catalog).
	Catalog *resource.Catalog
	// Tenants to host. Required, non-empty, with unique IDs.
	Tenants []TenantSpec
	// Servers is the cluster size (0 → enough servers for one largest
	// container per two tenants, at least one).
	Servers int
	// Policy is the fabric's placement policy.
	Policy fabric.PlacementPolicy
	// EngineOpts tunes the substrate.
	EngineOpts engine.Options
	// Seed is the cluster-level base seed from which tenants with a zero
	// Seed derive theirs (split by tenant ID).
	Seed int64
	// Faults is the deterministic fault plan applied to each tenant's
	// telemetry channel (zero value = clean). Every tenant gets its own
	// fault stream, derived from its tenant seed, so fault timing is
	// independent across tenants yet bit-identical at any worker count.
	Faults faults.Plan
	// Actuation configures each tenant's decision→fabric channel (zero
	// value = synchronous). When enabled, every resize the tenant's
	// auto-scaler decides becomes an asynchronous operation routed
	// through the shared fabric: refusals retry with backoff, stale
	// resizes are superseded, and the per-tenant streams derive from the
	// tenant seeds, so chaos runs stay bit-identical at any worker count.
	Actuation actuate.Config
	// Contention installs the noisy-neighbor interference model on the
	// fabric (zero value = off: the historical additive model, bit-exact).
	// When enabled, each node's shared-channel overcommit inflates its
	// residents' waits through engine.SetContention; the multipliers are
	// recomputed in the serial apply phase from the fabric's exact
	// allocation sums, so runs stay bit-identical at any worker count.
	Contention fabric.Contention
	// RebalanceEvery, when > 0, runs the goal-preserving placement
	// optimizer every that many intervals: fabric.Rebalance plans moves
	// that bring every tenant's predicted p95 back within goal, and the
	// runner executes them — through each tenant's migration actuation
	// channel when Actuation is enabled (failable, retried, charged a cold
	// cache on landing), synchronously otherwise.
	RebalanceEvery int
	// RebalancePack additionally runs fabric.Optimize when no goal is
	// violated, consolidating tenants onto fewer nodes.
	RebalancePack bool
	// Audit, when true, collects each tenant's loop.DecisionRecords into
	// TenantResult.Audit.
	Audit bool
	// Recorder, when set, receives every tenant's audit stream. Records
	// are emitted by the serial apply phase — interval by interval, tenant
	// order within an interval — so a shared Recorder needs no locking
	// even though decisions themselves are computed in parallel.
	Recorder loop.Recorder
}

// RunMultiTenant executes the cluster simulation. Each tenant gets its own
// engine (the container abstraction isolates tenants from each other) and
// its own auto-scaler; all resizes flow through the shared fabric, which
// may migrate tenants between servers or refuse a resize outright when the
// cluster has no room — in which case the tenant keeps its container and
// the controller reconciles.
//
// Deprecated: use NewRunner().RunMultiTenant(ctx, spec), which adds
// context cancellation and a progress hook. This wrapper already fans
// per-tenant engine work across every available core; worker count never
// changes results (they are bit-identical at any parallelism).
func RunMultiTenant(spec MultiTenantSpec) (MultiTenantResult, error) {
	return NewRunner().RunMultiTenant(context.Background(), spec)
}

// fabricApplier lands a tenant's resizes on the shared fabric: a refusal
// surfaces as actuate.ErrRefused (the loop reconciles on the synchronous
// path, the actuator retries with backoff on the actuated one), a
// migration and a refusal are tallied on the tenant's result, and a
// successful resize reaches the tenant's engine.
type fabricApplier struct {
	fab *fabric.Fabric
	eng *engine.Engine
	id  string
	res *TenantResult
}

// Apply implements loop.Applier.
func (a *fabricApplier) Apply(c resource.Container) error {
	migrated, err := a.fab.Resize(a.id, c)
	if errors.Is(err, fabric.ErrRefused) {
		a.res.RefusedResizes++
		return fmt.Errorf("%w: %v", actuate.ErrRefused, err)
	}
	if err != nil {
		// A non-refusal fabric fault (e.g. an unplaced tenant) is a bug,
		// not an outcome — surface it instead of miscounting it as a
		// refusal.
		return err
	}
	a.eng.SetContainer(c)
	if migrated {
		a.res.Migrations++
	}
	return nil
}

// Actual implements loop.Applier. The engine's container is the fabric's
// record of the tenant: both change only together, on placement and on a
// successful resize.
func (a *fabricApplier) Actual() resource.Container { return a.eng.Container() }

// scalerReconciler re-anchors the tenant's controller to the substrate
// (the reconcile the synchronous path does on refusal and the actuated
// path does every step).
type scalerReconciler struct{ scaler *core.AutoScaler }

// ForceActual implements loop.Reconciler.
func (r scalerReconciler) ForceActual(c resource.Container) { r.scaler.ForceContainer(c) }

// migTarget is the migration actuator's desired state: a planned
// destination plus a per-tenant sequence number, so each planned move is
// a fresh desired-state write (re-planning the same destination after an
// external migration moved the tenant away still opens an operation).
type migTarget struct {
	seq int
	dst int
}

// tenantState is one tenant's private simulation state. During the tick
// phase workers touch only their own tenantState (index-addressed), which
// is what makes the fan-out race-free and deterministic.
type tenantState struct {
	spec TenantSpec
	eng  *engine.Engine
	lp   *loop.TenantLoop[resource.Container]
	res  TenantResult
	col  *loop.Collector

	// mig is the tenant's migration actuation channel (nil when the run
	// is synchronous or never rebalances); migSeq numbers its submissions.
	mig    *actuate.Actuator[migTarget]
	migSeq int
	// activeScalar is the dominant wait-inflation multiplier the tenant's
	// engine ran under while the last snapshot was measured — the divisor
	// that recovers the contention-free p95 baseline the optimizer needs.
	activeScalar float64
}

// clusterSchedule selects how runMultiTenant lays the interval loop over
// the worker pool. The zero value is the optimized schedule.
type clusterSchedule struct {
	// reference selects the retained pre-optimization schedule: per-call
	// engine ticks (loop.RunTicksReference) fanned across workers, then a
	// fully serial DecideApply phase — exactly the PR-6 interval loop. The
	// cluster benchmark measures the optimized schedule against it;
	// results are bit-identical either way.
	reference bool
	// labels wraps each phase in runtime/pprof labels so CPU profiles can
	// be split per phase. Off by default: pprof.Do allocates per call.
	labels bool
}

// runMultiTenant is the context-aware, pool-parallel implementation behind
// Runner.RunMultiTenant. The spec must already be validated and resolved.
//
// The interval loop is split into two phases, matching TenantLoop's
// RunTicks / Decide / Apply split. Phase 1 — the engine ticks, the
// interval snapshot AND the scaling decision — fans across the pool:
// ticking touches only the tenant's own engine, and a tenant's decision
// reads only its own state (its snapshot, its decider, its fault
// injector's private stream, and its own substrate record through
// Applier.Actual), so decisions are order-independent across tenants.
// Phase 2 — the applies, which resize through the shared fabric and whose
// placement outcomes therefore depend on who asked first — runs serially
// in tenant order, exactly as the historical serial loop ordered it.
// Because a tenant's ticks and decision depend only on its own state and
// its own previous apply, the schedule produces bit-identical results to
// the serial interleaving at any worker count (the golden equivalence
// suite and the worker-count chaos tests pin this).
func runMultiTenant(ctx context.Context, spec MultiTenantSpec, pool *exec.Pool, sched clusterSchedule) (MultiTenantResult, error) {
	cat := spec.Catalog
	servers := spec.Servers
	if servers == 0 {
		servers = (len(spec.Tenants) + 1) / 2
	}
	fab, err := fabric.New(servers, cat.Largest().Alloc, spec.Policy)
	if err != nil {
		return MultiTenantResult{}, err
	}
	if err := fab.SetContention(spec.Contention); err != nil {
		return MultiTenantResult{}, err
	}
	contentionOn := spec.Contention.Enabled()
	rebalanceOn := spec.RebalanceEvery > 0
	actuated := spec.Actuation.Enabled()

	// Build the per-tenant states in parallel: engine construction warms
	// buffer pools and is itself per-tenant work. Placement happens
	// serially afterwards — the fabric is shared state.
	intervals := 0
	for _, ts := range spec.Tenants {
		if ts.Trace.Len() > intervals {
			intervals = ts.Trace.Len()
		}
	}
	states, err := execMapPool(ctx, pool, len(spec.Tenants), func(ctx context.Context, i int) (*tenantState, error) {
		ts := spec.Tenants[i]
		if ts.Seed == 0 {
			ts.Seed = exec.SplitSeedString(spec.Seed, ts.ID)
		}
		scaler, err := autoScalerFor(cat, ts.GoalMs, nil)
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(ts.Workload, scaler.Container(), ts.Seed, spec.EngineOpts)
		if err != nil {
			return nil, err
		}
		sampleHint := 0
		if !sched.reference {
			sampleHint = intervals * eng.TicksPerInterval() * engine.MaxLatencySamplesPerTick
		}
		st := &tenantState{spec: ts, eng: eng, res: TenantResult{ID: ts.ID}, activeScalar: 1}
		rec, col := specRecorder(spec.Audit, spec.Recorder)
		st.col = col
		st.lp = loop.New(loop.Config[resource.Container]{
			ID:               ts.ID,
			Engine:           eng,
			Seed:             ts.Seed,
			Jitter:           0.1,
			Decider:          loop.NewPolicyDecider(policy.NewAuto(scaler), eng),
			Applier:          &fabricApplier{fab: fab, eng: eng, id: ts.ID, res: &st.res},
			Reconciler:       scalerReconciler{scaler},
			Faults:           spec.Faults,
			Actuation:        spec.Actuation,
			Recorder:         rec,
			Describe:         loop.DescribeContainer,
			SetMemoryTarget:  true,
			CollectLatencies: true,
			// Idle tenants (trace ended) record no samples, so this is an
			// upper bound; it turns a run's worth of sample collection into
			// one allocation per tenant. The reference schedule leaves it
			// unset: the baseline grew its buffers on demand, and the
			// benchmark gate measures against that era's behavior.
			SampleCapacityHint: sampleHint,
		})
		return st, nil
	})
	if err != nil {
		return MultiTenantResult{}, err
	}
	byID := make(map[string]*tenantState, len(states))
	for _, st := range states {
		if err := fab.Place(st.spec.ID, st.eng.Container()); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: placing tenant %q: %w", st.spec.ID, err)
		}
		byID[st.spec.ID] = st
	}
	if rebalanceOn && actuated {
		// Each tenant gets a private migration actuation channel, its
		// stream split from the tenant seed by a salt of its own, so
		// resize and migration chaos stay decorrelated and runs stay
		// bit-identical at any worker count.
		for _, st := range states {
			node := 0
			if s, ok := fab.ServerOf(st.spec.ID); ok {
				node = s.ID
			}
			st.mig = actuate.New(spec.Actuation,
				exec.SplitSeed(st.spec.Seed, loop.MigrationStreamSalt), migTarget{dst: node})
		}
	}

	out := MultiTenantResult{}
	// installContention recomputes every node's shared-channel pressure
	// from the fabric's exact allocation sums and installs the resulting
	// wait-inflation multipliers on every resident's engine and loop. It
	// runs in the serial phase — after the applies (and any migrations)
	// have settled the placement — so the multipliers the next parallel
	// tick phase reads are a pure function of run state, never of worker
	// count. The loop stamp also feeds the interval's DecisionRecords: a
	// record carries the interference that was active while its interval's
	// engine work ran.
	installContention := func() {
		for _, st := range states {
			inf, node, ok := fab.TenantInflation(st.spec.ID)
			if !ok {
				continue
			}
			st.lp.SetNodeContention(node, fab.ServerPressure(node), inf)
			if mx := inf.Max(); mx > out.PeakWaitInflation {
				out.PeakWaitInflation = mx
			}
			if contentionOn {
				st.eng.SetContention(engine.Contention{
					CPU:    inf[fabric.ChannelCPUCache],
					Memory: inf[fabric.ChannelBufferPool],
					LogIO:  inf[fabric.ChannelLogDevice],
				})
				st.activeScalar = inf.Max()
			}
		}
	}
	installContention()

	// The pprof label sets are built once per run: pprof.Do itself
	// allocates per call, which is why labelling is opt-in at all.
	var ticksLabels, applyLabels pprof.LabelSet
	if sched.labels {
		ticksLabels = pprof.Labels("phase", "ticks+decide")
		applyLabels = pprof.Labels("phase", "apply")
	}

	for m := 0; m < intervals; m++ {
		if err := checkCtx(ctx); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: cluster interval %d: %w", m, err)
		}
		// Phase 1: every tenant's billing interval — engine ticks plus the
		// tenant-local scaling decision — fanned across workers. The
		// reference schedule keeps the historical shape: per-call ticks
		// here, decisions deferred to the serial phase.
		err := pool.Run(ctx, len(states), func(_ context.Context, i int) error {
			st := states[i]
			target := st.spec.Trace.At(m)
			if m >= st.spec.Trace.Len() {
				target = 0 // this tenant's trace ended; it idles
			}
			run := func() {
				if sched.reference {
					st.lp.RunTicksReference(target)
				} else {
					st.lp.RunTicks(target)
					st.lp.Decide(m)
				}
			}
			if sched.labels {
				pprof.Do(ctx, ticksLabels, func(context.Context) { run() })
			} else {
				run()
			}
			return nil
		})
		if err != nil {
			return MultiTenantResult{}, wrapCanceled(err)
		}
		// Phase 2: the applies through the shared fabric, serial in tenant
		// order (the fabric's placement state makes the order load-bearing).
		// Records reach a shared Recorder from here, so it needs no locking.
		apply := func() error {
			for _, st := range states {
				var err error
				if sched.reference {
					err = st.lp.DecideApply(m)
				} else {
					err = st.lp.Apply(m)
				}
				if err != nil {
					return fmt.Errorf("sim: interval %d: resizing tenant %q: %w", m, st.spec.ID, err)
				}
			}
			return nil
		}
		if sched.labels {
			var applyErr error
			pprof.Do(ctx, applyLabels, func(context.Context) { applyErr = apply() })
			err = applyErr
		} else {
			err = apply()
		}
		if err != nil {
			return MultiTenantResult{}, err
		}
		// Phase 2 continues serially: drive the migration actuators, plan
		// and execute rebalance moves, then recompute node contention for
		// the next interval's ticks. All of it reads the shared fabric, so
		// it stays in the serial phase — in tenant order, deterministic.
		if rebalanceOn {
			if actuated {
				for _, st := range states {
					if err := st.stepMigration(m, fab); err != nil {
						return MultiTenantResult{}, fmt.Errorf("sim: interval %d: migrating tenant %q: %w", m, st.spec.ID, err)
					}
				}
			}
			if (m+1)%spec.RebalanceEvery == 0 {
				if err := rebalanceCluster(spec, fab, states, byID); err != nil {
					return MultiTenantResult{}, fmt.Errorf("sim: interval %d: %w", m, err)
				}
			}
		}
		installContention()
		for _, u := range fab.Utilization() {
			if u > out.PeakClusterCPUFrac {
				out.PeakClusterCPUFrac = u
			}
		}
		if err := fab.Validate(); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: interval %d: %w", m, err)
		}
	}
	for _, st := range states {
		tot := st.lp.Finalize(intervals)
		st.res.TotalCost = tot.TotalCost
		st.res.AvgCostPerInterval = tot.AvgCostPerInterval
		st.res.P95Ms = tot.P95Ms
		st.res.Changes = tot.Changes
		st.res.Actuation = tot.Actuation
		if st.col != nil {
			st.res.Audit = st.col.Records
		}
		out.Tenants = append(out.Tenants, st.res)
	}
	out.Migrations = fab.Migrations()
	out.Refusals = fab.Refusals()
	for _, st := range states {
		out.RebalanceMigrations += st.res.RebalanceMigrations
	}
	util := fab.UtilizationByResource()
	for i, s := range fab.Servers() {
		out.Nodes = append(out.Nodes, NodeStats{
			Node:        s.ID,
			Tenants:     s.TenantCount(),
			Utilization: util[i],
			Pressure:    fab.ServerPressure(i),
			Inflation:   fab.ServerInflation(i),
		})
	}
	return out, nil
}

// stepMigration drives the tenant's migration actuation channel one
// interval: an open move lands on the fabric (refusals are re-wrapped so
// the actuator retries with backoff), and a landing charges the engine a
// cold cache — the latency cost that makes migrations non-free.
func (st *tenantState) stepMigration(interval int, fab *fabric.Fabric) error {
	return st.mig.Step(interval, func(t migTarget) error {
		if s, ok := fab.ServerOf(st.spec.ID); ok && s.ID == t.dst {
			// Already there — e.g. a resize-path migration landed us on the
			// planned destination first. Nothing to do, nothing to charge.
			return nil
		}
		if err := fab.Migrate(st.spec.ID, t.dst); err != nil {
			if errors.Is(err, fabric.ErrRefused) {
				return fmt.Errorf("%w: %v", actuate.ErrRefused, err)
			}
			return err
		}
		st.eng.MigrateRestart()
		st.res.RebalanceMigrations++
		return nil
	})
}

// rebalanceCluster plans goal-preserving moves against the fabric's
// current placement and executes them — as desired-state writes to each
// tenant's migration actuator when the run is actuated, synchronously
// otherwise. Baselines divide the inflation active at measurement time
// out of the last observed p95, so the optimizer reasons in
// contention-free terms and its predictions compose with any destination
// node's inflation.
func rebalanceCluster(spec MultiTenantSpec, fab *fabric.Fabric, states []*tenantState, byID map[string]*tenantState) error {
	goals := make([]fabric.TenantGoal, 0, len(states))
	for _, st := range states {
		g := fabric.TenantGoal{ID: st.spec.ID, GoalMs: st.spec.GoalMs}
		if p95 := st.lp.Snapshot().P95LatencyMs; p95 > 0 && st.activeScalar > 0 {
			g.BaselineP95Ms = p95 / st.activeScalar
		}
		goals = append(goals, g)
	}
	plan := fab.Rebalance(goals)
	if spec.RebalancePack && len(plan.Moves) == 0 {
		// Nothing violated: consolidate instead.
		plan = fab.Optimize(goals)
	}
	actuated := spec.Actuation.Enabled()
	for _, mv := range plan.Moves {
		st := byID[mv.Tenant]
		if actuated {
			if !st.mig.Settled() {
				// A previous move is still in flight; the next planning
				// round sees wherever it landed.
				continue
			}
			st.migSeq++
			st.mig.Submit(migTarget{seq: st.migSeq, dst: mv.To})
			continue
		}
		// Synchronous path: the move lands now. A refusal means the plan
		// raced nothing (this phase is serial) but a capacity edge the
		// planner's scratch model and the fabric disagree on — skip it; the
		// next round re-plans from reality.
		err := fab.Migrate(mv.Tenant, mv.To)
		switch {
		case errors.Is(err, fabric.ErrRefused):
		case err != nil:
			return fmt.Errorf("rebalancing tenant %q: %w", mv.Tenant, err)
		default:
			st.eng.MigrateRestart()
			st.res.RebalanceMigrations++
		}
	}
	return nil
}
