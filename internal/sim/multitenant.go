package sim

import (
	"context"
	"errors"
	"fmt"

	"daasscale/internal/actuate"
	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/exec"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/resource"
	"daasscale/internal/stats"
	"daasscale/internal/telemetry"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// TenantSpec describes one tenant in a multi-tenant cluster run.
type TenantSpec struct {
	// ID names the tenant in the fabric.
	ID string
	// Workload and Trace drive the tenant's engine. Required.
	Workload *workload.Workload
	Trace    *trace.Trace
	// GoalMs is the tenant's p95 latency goal (0 = demand-driven only).
	GoalMs float64
	// Seed makes the tenant's run reproducible. When zero, a tenant seed is
	// derived deterministically from the cluster Seed and the tenant ID
	// (exec.SplitSeedString), so large fleets need not enumerate seeds.
	Seed int64
}

// TenantResult summarizes one tenant of a multi-tenant run.
type TenantResult struct {
	ID                 string
	TotalCost          float64
	AvgCostPerInterval float64
	P95Ms              float64
	Changes            int
	// RefusedResizes counts resize attempts the fabric could not place;
	// the tenant kept its container for those. On the actuated path each
	// refused attempt counts (the actuator retries refusals).
	RefusedResizes int
	// Migrations counts resizes the fabric executed by moving this tenant
	// to another server.
	Migrations int
	// Actuation reports the tenant's actuation-channel counters
	// (all-zero on the synchronous path).
	Actuation actuate.Stats
}

// MultiTenantResult is the outcome of a cluster run.
type MultiTenantResult struct {
	Tenants []TenantResult
	// Migrations and Refusals are the fabric's totals.
	Migrations int
	Refusals   int
	// PeakClusterCPUFrac is the highest CPU allocation fraction any server
	// reached.
	PeakClusterCPUFrac float64
}

// MultiTenantSpec describes a cluster of auto-scaled tenants sharing a
// fixed set of database servers through the management fabric — the
// paper's Figure 3 deployment: each server hosts a set of containers, the
// fabric decides co-location, and every resize the auto-scaling logic
// recommends is executed (or refused) by the fabric.
type MultiTenantSpec struct {
	// Catalog of containers (nil → default lock-step catalog).
	Catalog *resource.Catalog
	// Tenants to host. Required, non-empty, with unique IDs.
	Tenants []TenantSpec
	// Servers is the cluster size (0 → enough servers for one largest
	// container per two tenants, at least one).
	Servers int
	// Policy is the fabric's placement policy.
	Policy fabric.PlacementPolicy
	// EngineOpts tunes the substrate.
	EngineOpts engine.Options
	// Seed is the cluster-level base seed from which tenants with a zero
	// Seed derive theirs (split by tenant ID).
	Seed int64
	// Faults is the deterministic fault plan applied to each tenant's
	// telemetry channel (zero value = clean). Every tenant gets its own
	// fault stream, derived from its tenant seed, so fault timing is
	// independent across tenants yet bit-identical at any worker count.
	Faults faults.Plan
	// Actuation configures each tenant's decision→fabric channel (zero
	// value = synchronous). When enabled, every resize the tenant's
	// auto-scaler decides becomes an asynchronous operation routed
	// through the shared fabric: refusals retry with backoff, stale
	// resizes are superseded, and the per-tenant streams derive from the
	// tenant seeds, so chaos runs stay bit-identical at any worker count.
	Actuation actuate.Config
}

// RunMultiTenant executes the cluster simulation. Each tenant gets its own
// engine (the container abstraction isolates tenants from each other) and
// its own auto-scaler; all resizes flow through the shared fabric, which
// may migrate tenants between servers or refuse a resize outright when the
// cluster has no room — in which case the tenant keeps its container and
// the controller reconciles.
//
// Deprecated: use NewRunner().RunMultiTenant(ctx, spec), which adds
// context cancellation and a progress hook. This wrapper already fans
// per-tenant engine work across every available core; worker count never
// changes results (they are bit-identical at any parallelism).
func RunMultiTenant(spec MultiTenantSpec) (MultiTenantResult, error) {
	return NewRunner().RunMultiTenant(context.Background(), spec)
}

// tenantState is one tenant's private simulation state. During the tick
// phase workers touch only their own tenantState (index-addressed), which
// is what makes the fan-out race-free and deterministic.
type tenantState struct {
	spec    TenantSpec
	eng     *engine.Engine
	scaler  *core.AutoScaler
	gen     *workload.Generator
	inj     *faults.Injector
	act     *actuate.Actuator[resource.Container]
	samples []float64
	snap    telemetry.Snapshot
	res     TenantResult
}

// observe routes the interval snapshot to the tenant's auto-scaler, through
// the fault injector in chaos mode (same contract as observeThroughFaults:
// a withheld interval yields a hold decision with observed false, and
// Changed is re-derived against the engine's actual container after a
// multi-snapshot burst).
func (st *tenantState) observe() (d core.Decision, observed bool) {
	if st.inj == nil {
		return st.scaler.Observe(st.snap), true
	}
	d = core.Decision{Target: st.scaler.Container(), BalloonTargetMB: st.eng.MemoryTargetMB()}
	for _, fs := range st.inj.Apply(st.snap) {
		d = st.scaler.Observe(fs)
		observed = true
	}
	d.Changed = d.Target.Name != st.eng.Container().Name
	return d, observed
}

// runMultiTenant is the context-aware, pool-parallel implementation behind
// Runner.RunMultiTenant. The spec must already be validated and resolved.
//
// The interval loop is split into two phases. Phase 1 — the engine ticks
// and interval snapshot, the overwhelming bulk of the cycles — is
// embarrassingly parallel: tenants interact only through the fabric, and
// the fabric is never read or written while ticking. Phase 2 — observe,
// resize through the shared fabric, reconcile — runs serially in tenant
// order, exactly as the historical serial loop ordered it. Because a
// tenant's ticks depend only on its own engine state and its own previous
// decision, the two-phase schedule produces bit-identical results to the
// serial interleaving at any worker count.
func runMultiTenant(ctx context.Context, spec MultiTenantSpec, pool *exec.Pool) (MultiTenantResult, error) {
	cat := spec.Catalog
	servers := spec.Servers
	if servers == 0 {
		servers = (len(spec.Tenants) + 1) / 2
	}
	fab, err := fabric.New(servers, cat.Largest().Alloc, spec.Policy)
	if err != nil {
		return MultiTenantResult{}, err
	}

	// Build the per-tenant states in parallel: engine construction warms
	// buffer pools and is itself per-tenant work. Placement happens
	// serially afterwards — the fabric is shared state.
	intervals := 0
	for _, ts := range spec.Tenants {
		if ts.Trace.Len() > intervals {
			intervals = ts.Trace.Len()
		}
	}
	states, err := execMapPool(ctx, pool, len(spec.Tenants), func(ctx context.Context, i int) (*tenantState, error) {
		ts := spec.Tenants[i]
		if ts.Seed == 0 {
			ts.Seed = exec.SplitSeedString(spec.Seed, ts.ID)
		}
		scaler, err := autoScalerFor(cat, ts.GoalMs, nil)
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(ts.Workload, scaler.Container(), ts.Seed, spec.EngineOpts)
		if err != nil {
			return nil, err
		}
		st := &tenantState{
			spec:   ts,
			eng:    eng,
			scaler: scaler,
			gen:    workload.NewGenerator(ts.Seed+1000, 0.1),
			res:    TenantResult{ID: ts.ID},
		}
		if spec.Faults.Enabled() {
			st.inj = faults.NewInjector(spec.Faults, exec.SplitSeed(ts.Seed, faultStreamSalt))
		}
		if spec.Actuation.Enabled() {
			// Derived from the tenant seed like the fault stream, so the
			// actuation chaos is independent across tenants yet identical
			// at any worker count.
			st.act = actuate.New(spec.Actuation, exec.SplitSeed(ts.Seed, actuationStreamSalt), scaler.Container())
		}
		eng.SetLatencySink(func(ms float64) { st.samples = append(st.samples, ms) })
		return st, nil
	})
	if err != nil {
		return MultiTenantResult{}, err
	}
	for _, st := range states {
		if err := fab.Place(st.spec.ID, st.scaler.Container()); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: placing tenant %q: %w", st.spec.ID, err)
		}
	}

	out := MultiTenantResult{}
	for m := 0; m < intervals; m++ {
		if err := checkCtx(ctx); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: cluster interval %d: %w", m, err)
		}
		// Phase 1: every tenant's billing interval, fanned across workers.
		err := pool.Run(ctx, len(states), func(_ context.Context, i int) error {
			st := states[i]
			target := st.spec.Trace.At(m)
			if m >= st.spec.Trace.Len() {
				target = 0 // this tenant's trace ended; it idles
			}
			for t := 0; t < st.eng.TicksPerInterval(); t++ {
				st.eng.Tick(st.gen.Offered(target))
			}
			st.snap = st.eng.EndInterval()
			return nil
		})
		if err != nil {
			return MultiTenantResult{}, wrapCanceled(err)
		}
		// Phase 2: decisions through the shared fabric, serial in tenant
		// order (the fabric's placement state makes the order load-bearing).
		for _, st := range states {
			st.res.TotalCost += st.snap.Cost
			d, observed := st.observe()
			if st.act == nil {
				// Synchronous path: the fabric executes (or refuses) the
				// resize within the decision interval.
				if d.Changed {
					migrated, err := fab.Resize(st.spec.ID, d.Target)
					switch {
					case errors.Is(err, fabric.ErrRefused):
						// Refused: the tenant keeps its container; reconcile
						// the controller with the fabric's reality.
						cur, _ := fab.Container(st.spec.ID)
						st.scaler.ForceContainer(cur)
						st.res.RefusedResizes++
					case err != nil:
						// A non-refusal fabric fault (e.g. an unplaced
						// tenant) is a bug, not an outcome — surface it
						// instead of miscounting it as a refusal.
						return MultiTenantResult{}, fmt.Errorf("sim: interval %d: resizing tenant %q: %w", m, st.spec.ID, err)
					default:
						st.eng.SetContainer(d.Target)
						st.res.Changes++
						if migrated {
							st.res.Migrations++
						}
					}
				}
			} else {
				// Actuated path: the decision is a desired-state write; the
				// actuator reconciles it through the fabric. Refusals and
				// migrations become observable outcomes: a refused attempt
				// retries with backoff (another tenant's shrink can free
				// room), a stale in-flight resize is superseded.
				if observed {
					st.act.Submit(d.Target)
				}
				err := st.act.Step(m, func(c resource.Container) error {
					migrated, err := fab.Resize(st.spec.ID, c)
					if errors.Is(err, fabric.ErrRefused) {
						st.res.RefusedResizes++
						return fmt.Errorf("%w: %v", actuate.ErrRefused, err)
					}
					if err != nil {
						return err
					}
					st.eng.SetContainer(c)
					st.res.Changes++
					if migrated {
						st.res.Migrations++
					}
					return nil
				})
				if err != nil {
					return MultiTenantResult{}, fmt.Errorf("sim: interval %d: resizing tenant %q: %w", m, st.spec.ID, err)
				}
				// Re-anchor the controller to the fabric's reality (the same
				// reconcile the synchronous path does on refusal): its next
				// decision starts from the actual container, so requests stay
				// incremental — a refused grow is re-derived from observations
				// instead of compounding into a target the cluster can never
				// place.
				st.scaler.ForceContainer(st.act.Actual())
			}
			st.eng.SetMemoryTargetMB(d.BalloonTargetMB)
		}
		for _, u := range fab.Utilization() {
			if u > out.PeakClusterCPUFrac {
				out.PeakClusterCPUFrac = u
			}
		}
		if err := fab.Validate(); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: interval %d: %w", m, err)
		}
	}
	for _, st := range states {
		if intervals > 0 {
			st.res.AvgCostPerInterval = st.res.TotalCost / float64(intervals)
		}
		if len(st.samples) > 0 {
			// The per-tenant sample buffer is dead after this aggregate.
			st.res.P95Ms = stats.QuantileSelect(st.samples, 0.95)
		}
		if st.act != nil {
			st.res.Actuation = st.act.Stats()
		}
		out.Tenants = append(out.Tenants, st.res)
	}
	out.Migrations = fab.Migrations()
	out.Refusals = fab.Refusals()
	return out, nil
}
