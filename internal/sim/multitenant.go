package sim

import (
	"fmt"

	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/fabric"
	"daasscale/internal/resource"
	"daasscale/internal/stats"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// TenantSpec describes one tenant in a multi-tenant cluster run.
type TenantSpec struct {
	// ID names the tenant in the fabric.
	ID string
	// Workload and Trace drive the tenant's engine. Required.
	Workload *workload.Workload
	Trace    *trace.Trace
	// GoalMs is the tenant's p95 latency goal (0 = demand-driven only).
	GoalMs float64
	// Seed makes the tenant's run reproducible.
	Seed int64
}

// TenantResult summarizes one tenant of a multi-tenant run.
type TenantResult struct {
	ID                 string
	TotalCost          float64
	AvgCostPerInterval float64
	P95Ms              float64
	Changes            int
	// RefusedResizes counts scale-ups the fabric could not place; the
	// tenant kept its container for those intervals.
	RefusedResizes int
}

// MultiTenantResult is the outcome of a cluster run.
type MultiTenantResult struct {
	Tenants []TenantResult
	// Migrations and Refusals are the fabric's totals.
	Migrations int
	Refusals   int
	// PeakClusterCPUFrac is the highest CPU allocation fraction any server
	// reached.
	PeakClusterCPUFrac float64
}

// MultiTenantSpec describes a cluster of auto-scaled tenants sharing a
// fixed set of database servers through the management fabric — the
// paper's Figure 3 deployment: each server hosts a set of containers, the
// fabric decides co-location, and every resize the auto-scaling logic
// recommends is executed (or refused) by the fabric.
type MultiTenantSpec struct {
	// Catalog of containers (nil → default lock-step catalog).
	Catalog *resource.Catalog
	// Tenants to host. Required, non-empty.
	Tenants []TenantSpec
	// Servers is the cluster size (0 → enough servers for one largest
	// container per two tenants, at least one).
	Servers int
	// Policy is the fabric's placement policy.
	Policy fabric.PlacementPolicy
	// EngineOpts tunes the substrate.
	EngineOpts engine.Options
}

// RunMultiTenant executes the cluster simulation. Each tenant gets its own
// engine (the container abstraction isolates tenants from each other) and
// its own auto-scaler; all resizes flow through the shared fabric, which
// may migrate tenants between servers or refuse a resize outright when the
// cluster has no room — in which case the tenant keeps its container and
// the controller reconciles.
func RunMultiTenant(spec MultiTenantSpec) (MultiTenantResult, error) {
	if len(spec.Tenants) == 0 {
		return MultiTenantResult{}, fmt.Errorf("sim: at least one tenant required")
	}
	cat := spec.Catalog
	if cat == nil {
		cat = resource.LockStepCatalog()
	}
	servers := spec.Servers
	if servers == 0 {
		servers = (len(spec.Tenants) + 1) / 2
	}
	fab, err := fabric.New(servers, cat.Largest().Alloc, spec.Policy)
	if err != nil {
		return MultiTenantResult{}, err
	}

	type tenantState struct {
		spec    TenantSpec
		eng     *engine.Engine
		scaler  *core.AutoScaler
		gen     *workload.Generator
		samples []float64
		res     TenantResult
	}
	states := make([]*tenantState, 0, len(spec.Tenants))
	intervals := 0
	for _, ts := range spec.Tenants {
		if ts.Workload == nil || ts.Trace == nil {
			return MultiTenantResult{}, fmt.Errorf("sim: tenant %q needs a workload and a trace", ts.ID)
		}
		if ts.Trace.Len() > intervals {
			intervals = ts.Trace.Len()
		}
		goal := core.LatencyGoal{}
		if ts.GoalMs > 0 {
			goal = core.LatencyGoal{Kind: core.GoalP95, Ms: ts.GoalMs}
		}
		scaler, err := core.New(core.Config{Catalog: cat, Initial: cat.Smallest(), Goal: goal})
		if err != nil {
			return MultiTenantResult{}, err
		}
		eng, err := engine.New(ts.Workload, scaler.Container(), ts.Seed, spec.EngineOpts)
		if err != nil {
			return MultiTenantResult{}, err
		}
		if err := fab.Place(ts.ID, scaler.Container()); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: placing tenant %q: %w", ts.ID, err)
		}
		st := &tenantState{
			spec:   ts,
			eng:    eng,
			scaler: scaler,
			gen:    workload.NewGenerator(ts.Seed+1000, 0.1),
			res:    TenantResult{ID: ts.ID},
		}
		eng.SetLatencySink(func(ms float64) { st.samples = append(st.samples, ms) })
		states = append(states, st)
	}

	out := MultiTenantResult{}
	for m := 0; m < intervals; m++ {
		for _, st := range states {
			target := st.spec.Trace.At(m)
			if m >= st.spec.Trace.Len() {
				target = 0 // this tenant's trace ended; it idles
			}
			for t := 0; t < st.eng.TicksPerInterval(); t++ {
				st.eng.Tick(st.gen.Offered(target))
			}
			snap := st.eng.EndInterval()
			st.res.TotalCost += snap.Cost

			d := st.scaler.Observe(snap)
			if d.Changed {
				if _, err := fab.Resize(st.spec.ID, d.Target); err != nil {
					// Refused: the tenant keeps its container; reconcile the
					// controller with the fabric's reality.
					cur, _ := fab.Container(st.spec.ID)
					st.scaler.ForceContainer(cur)
					st.res.RefusedResizes++
				} else {
					st.eng.SetContainer(d.Target)
					st.res.Changes++
				}
			}
			st.eng.SetMemoryTargetMB(d.BalloonTargetMB)
		}
		for _, u := range fab.Utilization() {
			if u > out.PeakClusterCPUFrac {
				out.PeakClusterCPUFrac = u
			}
		}
		if err := fab.Validate(); err != nil {
			return MultiTenantResult{}, fmt.Errorf("sim: interval %d: %w", m, err)
		}
	}
	for _, st := range states {
		if intervals > 0 {
			st.res.AvgCostPerInterval = st.res.TotalCost / float64(intervals)
		}
		if len(st.samples) > 0 {
			st.res.P95Ms = stats.Quantile(st.samples, 0.95)
		}
		out.Tenants = append(out.Tenants, st.res)
	}
	out.Migrations = fab.Migrations()
	out.Refusals = fab.Refusals()
	return out, nil
}
