package sim

import (
	"testing"

	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/policy"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// TestAutoStableUnderTelemetryNoise is the failure-injection test behind
// the paper's robustness claim (Section 3): with frequent outlier spikes in
// the telemetry (transient system activities), the robust signals keep the
// auto-scaler from thrashing on a steady workload.
func TestAutoStableUnderTelemetryNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	run := func(noiseProb float64) Result {
		scaler, err := core.New(core.Config{
			Catalog: cat,
			Initial: cat.AtStep(5),
			Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: 80},
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(Spec{
			Workload:   workload.DS2(),
			Trace:      trace.Trace1(300, 5),
			Policy:     policy.NewAuto(scaler),
			Seed:       17,
			EngineOpts: engine.Options{WarmStart: true, NoiseProb: noiseProb, NoiseScale: 100},
			GoalMs:     80,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	quiet := run(-1)   // noise disabled
	noisy := run(0.15) // a spike roughly every 7 ticks
	// Under heavy spikes the controller may move a little more, but it must
	// not thrash: resize activity stays within a small fraction of
	// intervals and within a small multiple of the quiet run.
	if noisy.ChangeFraction > 0.10 {
		t.Errorf("noisy change fraction = %v, controller is thrashing", noisy.ChangeFraction)
	}
	if noisy.Changes > quiet.Changes*3+6 {
		t.Errorf("noise tripled resize activity: %d vs %d", noisy.Changes, quiet.Changes)
	}
	// And the latency outcome stays comparable.
	if noisy.P95Ms > quiet.P95Ms*2 {
		t.Errorf("noise destroyed latency: %v vs %v", noisy.P95Ms, quiet.P95Ms)
	}
}

// TestAutoRecoversFromMidRunLoadShift: a regime change (steady → double
// load) must converge to a new stable container without oscillation.
func TestAutoRecoversFromMidRunLoadShift(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	tr := &trace.Trace{Name: "shift", RPS: make([]float64, 240)}
	for i := range tr.RPS {
		if i < 120 {
			tr.RPS[i] = 150
		} else {
			tr.RPS[i] = 450
		}
	}
	scaler, err := core.New(core.Config{
		Catalog: cat,
		Initial: cat.Smallest(),
		Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Spec{
		Workload:   workload.DS2(),
		Trace:      tr,
		Policy:     policy.NewAuto(scaler),
		Seed:       23,
		EngineOpts: engine.Options{WarmStart: true},
		GoalMs:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the shift settles, the container must be strictly larger than
	// in the first regime, and stable (no changes in the last 60 intervals).
	firstRegime := r.Series[100].Step
	secondRegime := r.Series[220].Step
	if secondRegime <= firstRegime {
		t.Errorf("container did not grow with the load: step %d → %d", firstRegime, secondRegime)
	}
	for i := 181; i < 240; i++ {
		if r.Series[i].Step != r.Series[180].Step {
			t.Errorf("container still oscillating at interval %d (%d vs %d)", i, r.Series[i].Step, r.Series[180].Step)
			break
		}
	}
}
