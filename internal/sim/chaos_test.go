package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// chaosAutoPolicy builds a goal-driven Auto policy for the chaos runs.
func chaosAutoPolicy(t *testing.T) *policy.Auto {
	t.Helper()
	cat := resource.LockStepCatalog()
	scaler, err := core.New(core.Config{
		Catalog: cat,
		Initial: cat.AtStep(5),
		Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	return policy.NewAuto(scaler)
}

// TestChaosComparisonDeterministicAcrossWorkers is the tentpole's headline
// property: a comparison under fault injection is bit-identical at any
// worker count — fault timing derives from (plan, run seed, interval), not
// from scheduling.
func TestChaosComparisonDeterministicAcrossWorkers(t *testing.T) {
	plan := faults.Uniform(0.2)
	plan.Seed = 3
	cs := ComparisonSpec{
		Workload:   workload.DS2(),
		Trace:      trace.Trace2(60, 7),
		GoalFactor: 5,
		Seed:       11,
		Faults:     plan,
	}
	serial, err := NewRunner(WithParallelism(1)).RunComparison(context.Background(), cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 6} {
		par, err := NewRunner(WithParallelism(workers)).RunComparison(context.Background(), cs)
		if err != nil {
			t.Fatal(err)
		}
		// The Max series carries NaN performance factors (no goal), so
		// compare the rendered (NaN-stable) form byte for byte.
		if fmt.Sprintf("%v", serial) != fmt.Sprintf("%v", par) {
			t.Errorf("workers=%d: chaos comparison differs from serial", workers)
		}
	}
	// The online policies' channels were actually faulted; the offline Max
	// derivation stays clean.
	auto, _ := serial.ByPolicy("Auto")
	if auto.FaultStats.Total() == 0 {
		t.Error("no faults landed on Auto's channel")
	}
	// The Max result is the offline goal-derivation run, which stays clean
	// by design so clean and chaos comparisons share the same goal.
	max, _ := serial.ByPolicy("Max")
	if max.FaultStats != (faults.Stats{}) {
		t.Errorf("Max's offline run must stay clean, got %+v", max.FaultStats)
	}
}

// TestChaosMultiTenantDeterministicAcrossWorkers: per-tenant fault streams
// survive the two-phase parallel schedule bit for bit.
func TestChaosMultiTenantDeterministicAcrossWorkers(t *testing.T) {
	plan := faults.Uniform(0.25)
	spec := MultiTenantSpec{
		Tenants: []TenantSpec{
			{ID: "web", Workload: workload.DS2(), Trace: trace.Trace1(120, 1), GoalMs: 60},
			{ID: "oltp", Workload: workload.TPCC(), Trace: trace.Trace4(120, 2), GoalMs: 200},
			{ID: "batch", Workload: workload.CPUIO(workload.DefaultCPUIOConfig()), Trace: trace.Trace2(120, 3), GoalMs: 80},
		},
		Servers:    2,
		Policy:     fabric.BestFit,
		EngineOpts: engine.Options{WarmStart: true},
		Seed:       9,
		Faults:     plan,
	}
	serial, err := NewRunner(WithParallelism(1)).RunMultiTenant(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := NewRunner(WithParallelism(workers)).RunMultiTenant(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: chaos cluster run differs from serial\nserial: %+v\nparallel: %+v",
				workers, serial, par)
		}
	}
	for _, tr := range serial.Tenants {
		if tr.TotalCost <= 0 {
			t.Errorf("tenant %s accrued no cost under faults", tr.ID)
		}
	}
}

// TestChaosAggressivePlanNeverPanics: even a plan faulting nearly every
// interval with every kind must complete with finite headline metrics —
// no fault plan may panic the pipeline or leak a non-finite signal into
// the results.
func TestChaosAggressivePlanNeverPanics(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		plan := faults.Uniform(0.9)
		plan.Seed = seed
		res, err := NewRunner().Run(context.Background(), Spec{
			Workload: workload.CPUIO(workload.DefaultCPUIOConfig()),
			Trace:    trace.Trace2(120, 2),
			Policy:   chaosAutoPolicy(t),
			Seed:     seed,
			Faults:   plan,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name, v := range map[string]float64{
			"TotalCost": res.TotalCost, "P95Ms": res.P95Ms, "AvgMs": res.AvgMs,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("seed %d: %s is non-finite: %v", seed, name, v)
			}
		}
		if res.FaultStats.Total() == 0 {
			t.Fatalf("seed %d: aggressive plan injected nothing", seed)
		}
		if res.TotalCost <= 0 {
			t.Fatalf("seed %d: no cost accrued", seed)
		}
	}
}

// TestChaosBallooningRuns: the Figure 14 experiment completes under faults
// with both arms' series intact and identical fault timing in each arm.
func TestChaosBallooningRuns(t *testing.T) {
	plan := faults.Uniform(0.15)
	res, err := NewRunner().RunBallooning(context.Background(), BallooningSpec{
		Seed:      5,
		Intervals: 60,
		ShrinkAt:  20,
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []BallooningArm{res.Without, res.With} {
		if len(arm.Series) != 60 {
			t.Fatalf("%s: series has %d points, want 60", arm.Name, len(arm.Series))
		}
		for _, pt := range arm.Series {
			if math.IsNaN(pt.AvgMs) || math.IsNaN(pt.MemoryUsedMB) {
				t.Fatalf("%s: non-finite series point %+v", arm.Name, pt)
			}
		}
	}
}

// TestChaosValidationRejectsBadPlans: malformed fault plans fail spec
// validation with the uniform sentinel on every Run* path.
func TestChaosValidationRejectsBadPlans(t *testing.T) {
	var bad faults.Plan
	bad.Rates[faults.KindDrop] = math.NaN()
	r := NewRunner()
	ctx := context.Background()

	if _, err := r.Run(ctx, Spec{
		Workload: workload.DS2(), Trace: trace.Trace1(30, 1),
		Policy: chaosAutoPolicy(t), Faults: bad,
	}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("Run: err = %v, want ErrInvalidSpec", err)
	}
	if _, err := r.RunComparison(ctx, ComparisonSpec{
		Workload: workload.DS2(), Trace: trace.Trace1(30, 1), GoalFactor: 2, Faults: bad,
	}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("RunComparison: err = %v, want ErrInvalidSpec", err)
	}
	if _, err := r.RunMultiTenant(ctx, MultiTenantSpec{
		Tenants: []TenantSpec{{ID: "a", Workload: workload.DS2(), Trace: trace.Trace1(30, 1)}},
		Faults:  bad,
	}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("RunMultiTenant: err = %v, want ErrInvalidSpec", err)
	}
	if _, err := r.RunBallooning(ctx, BallooningSpec{Faults: bad}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("RunBallooning: err = %v, want ErrInvalidSpec", err)
	}
}

// TestChaosRunnerDefaultPlanPropagates: a WithFaults runner applies its
// plan to specs that don't set one, and a spec-level plan wins.
func TestChaosRunnerDefaultPlanPropagates(t *testing.T) {
	plan := faults.Uniform(0.3)
	plan.Seed = 2
	spec := Spec{
		Workload: workload.DS2(),
		Trace:    trace.Trace1(60, 1),
		Policy:   chaosAutoPolicy(t),
		Seed:     4,
	}
	viaRunner, err := NewRunner(WithFaults(plan)).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = plan
	viaSpec, err := NewRunner().Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaRunner.FaultStats, viaSpec.FaultStats) {
		t.Fatalf("runner default plan diverged from spec-level plan:\n%+v\n%+v",
			viaRunner.FaultStats, viaSpec.FaultStats)
	}
	if viaRunner.FaultStats.Total() == 0 {
		t.Fatal("runner default plan injected nothing")
	}
}

// TestChaosCostWithinBoundTrace2 is the acceptance bound on the long-burst
// trace: at a ≤10% total fault rate, graceful degradation keeps Auto's
// total cost within 25% of the clean run's.
func TestChaosCostWithinBoundTrace2(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison")
	}
	assertChaosCostBound(t, trace.Trace2(900, 2), workload.CPUIO(workload.DefaultCPUIOConfig()))
}

// TestChaosCostWithinBoundTrace4 is the same bound on the diurnal trace
// with the lock-bound OLTP workload.
func TestChaosCostWithinBoundTrace4(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison")
	}
	assertChaosCostBound(t, trace.Trace4(1440, 5), workload.TPCC())
}

func assertChaosCostBound(t *testing.T, tr *trace.Trace, w *workload.Workload) {
	t.Helper()
	base := ComparisonSpec{Workload: w, Trace: tr, GoalFactor: 1.25, Seed: 42}
	clean, err := NewRunner().RunComparison(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	chaos := base
	chaos.Faults = faults.Uniform(0.10)
	chaos.Faults.Seed = 1
	dirty, err := NewRunner().RunComparison(context.Background(), chaos)
	if err != nil {
		t.Fatal(err)
	}
	if clean.GoalMs != dirty.GoalMs {
		t.Fatalf("latency goals diverged: clean %v vs chaos %v (offline Max derivation must stay clean)",
			clean.GoalMs, dirty.GoalMs)
	}
	ca := clean.MustByPolicy("Auto")
	da := dirty.MustByPolicy("Auto")
	lo, hi := ca.TotalCost*0.75, ca.TotalCost*1.25
	if da.TotalCost < lo || da.TotalCost > hi {
		t.Errorf("chaos Auto cost %.0f outside ±25%% of clean cost %.0f on %s×%s",
			da.TotalCost, ca.TotalCost, w.Name, tr.Name)
	}
	if math.IsNaN(da.P95Ms) || math.IsInf(da.P95Ms, 0) || da.P95Ms <= 0 {
		t.Errorf("chaos Auto p95 not finite-positive: %v", da.P95Ms)
	}
	if da.FaultStats.Total() == 0 {
		t.Error("chaos run injected nothing")
	}
}
