package sim

import (
	"daasscale/internal/actuate"
	"daasscale/internal/faults"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
)

// Uniform spec validation. Every Run* path calls the spec's Validate before
// any work starts, and every failure wraps the same sentinel
// (ErrInvalidSpec) — historically each runner checked a different subset
// with ad-hoc fmt.Errorf strings.

// validateCatalog rejects catalogs that cannot host a tenant. A nil
// catalog is legal at the spec level (it selects the runner's catalog, or
// the default lock-step catalog); the resolved catalog is checked again at
// run time via requireCatalog.
func validateCatalog(cat *resource.Catalog) error {
	if cat != nil && cat.LadderLen() == 0 {
		return invalidSpec("catalog has an empty container ladder")
	}
	return nil
}

// requireCatalog is the post-resolution check: by the time a run starts,
// the catalog must exist and be non-empty.
func requireCatalog(cat *resource.Catalog) error {
	if cat == nil {
		return invalidSpec("catalog is nil")
	}
	return validateCatalog(cat)
}

// validateFaults rejects malformed fault plans (rates outside [0, 1] or
// NaN), wrapping the package's error in the uniform ErrInvalidSpec.
func validateFaults(p faults.Plan) error {
	if err := p.Validate(); err != nil {
		return invalidSpec("fault plan: %v", err)
	}
	return nil
}

// validateActuation rejects malformed actuation configs (rates outside
// [0, 1] or NaN, negative interval counts), wrapping the package's error
// in the uniform ErrInvalidSpec.
func validateActuation(cfg actuate.Config) error {
	if err := cfg.Validate(); err != nil {
		return invalidSpec("actuation config: %v", err)
	}
	return nil
}

// validatePolicies rejects empty policy lists and nil entries.
func validatePolicies(ps []policy.Policy) error {
	if len(ps) == 0 {
		return invalidSpec("policy list is empty")
	}
	for i, p := range ps {
		if p == nil {
			return invalidSpec("policy %d is nil", i)
		}
	}
	return nil
}

// Validate checks a single-run spec. The zero interval count (an empty
// trace) is rejected here, before an engine is built.
func (s Spec) Validate() error {
	switch {
	case s.Workload == nil:
		return invalidSpec("Workload is required")
	case s.Trace == nil:
		return invalidSpec("Trace is required")
	case s.Trace.Len() <= 0:
		return invalidSpec("trace %q has zero intervals", s.Trace.Name)
	case s.Policy == nil:
		return invalidSpec("Policy is required")
	case s.Jitter < 0:
		return invalidSpec("Jitter must be ≥ 0, got %v", s.Jitter)
	case s.GoalMs < 0:
		return invalidSpec("GoalMs must be ≥ 0, got %v", s.GoalMs)
	}
	if err := validateFaults(s.Faults); err != nil {
		return err
	}
	return validateActuation(s.Actuation)
}

// Validate checks a six-policy comparison spec.
func (cs ComparisonSpec) Validate() error {
	switch {
	case cs.Workload == nil:
		return invalidSpec("Workload is required")
	case cs.Trace == nil:
		return invalidSpec("Trace is required")
	case cs.Trace.Len() <= 0:
		return invalidSpec("trace %q has zero intervals", cs.Trace.Name)
	case cs.GoalFactor <= 1:
		return invalidSpec("GoalFactor must exceed 1, got %v", cs.GoalFactor)
	}
	if err := validateFaults(cs.Faults); err != nil {
		return err
	}
	if err := validateActuation(cs.Actuation); err != nil {
		return err
	}
	return validateCatalog(cs.Catalog)
}

// Validate checks a multi-tenant cluster spec.
func (spec MultiTenantSpec) Validate() error {
	if err := validateCatalog(spec.Catalog); err != nil {
		return err
	}
	if spec.Servers < 0 {
		return invalidSpec("Servers must be ≥ 0, got %d", spec.Servers)
	}
	if len(spec.Tenants) == 0 {
		return invalidSpec("at least one tenant required")
	}
	ids := make(map[string]bool, len(spec.Tenants))
	for i, ts := range spec.Tenants {
		switch {
		case ts.Workload == nil || ts.Trace == nil:
			return invalidSpec("tenant %q (index %d) needs a workload and a trace", ts.ID, i)
		case ts.Trace.Len() <= 0:
			return invalidSpec("tenant %q has a zero-interval trace", ts.ID)
		case ts.GoalMs < 0:
			return invalidSpec("tenant %q GoalMs must be ≥ 0, got %v", ts.ID, ts.GoalMs)
		case ids[ts.ID]:
			return invalidSpec("duplicate tenant ID %q", ts.ID)
		}
		ids[ts.ID] = true
	}
	if spec.RebalanceEvery < 0 {
		return invalidSpec("RebalanceEvery must be ≥ 0, got %d", spec.RebalanceEvery)
	}
	if err := spec.Contention.Validate(); err != nil {
		return invalidSpec("%v", err)
	}
	if err := validateFaults(spec.Faults); err != nil {
		return err
	}
	return validateActuation(spec.Actuation)
}

// Validate checks a Figure 14 ballooning spec.
func (spec BallooningSpec) Validate() error {
	switch {
	case spec.Intervals < 0:
		return invalidSpec("Intervals must be ≥ 0, got %d", spec.Intervals)
	case spec.ShrinkAt < 0:
		return invalidSpec("ShrinkAt must be ≥ 0, got %d", spec.ShrinkAt)
	case spec.RPS < 0:
		return invalidSpec("RPS must be ≥ 0, got %v", spec.RPS)
	case spec.Intervals > 0 && spec.ShrinkAt >= spec.Intervals:
		return invalidSpec("ShrinkAt %d is past the end of the run (%d intervals)", spec.ShrinkAt, spec.Intervals)
	}
	if err := validateFaults(spec.Faults); err != nil {
		return err
	}
	return validateActuation(spec.Actuation)
}
