package sim

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors of every Run* path. All spec-validation failures wrap
// ErrInvalidSpec and all context cancellations/timeouts wrap ErrCanceled,
// so callers branch with errors.Is instead of matching message strings.
var (
	// ErrInvalidSpec is wrapped by every validation failure: nil workloads,
	// traces, policies or catalogs, zero-length or negative intervals,
	// empty tenant or policy lists, out-of-range knobs.
	ErrInvalidSpec = errors.New("sim: invalid spec")
	// ErrCanceled is wrapped by every error caused by context cancellation
	// or deadline expiry. The underlying context error is also in the
	// wrap chain, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) keep working.
	ErrCanceled = errors.New("sim: run canceled")
)

// invalidSpec builds an ErrInvalidSpec-wrapping error.
func invalidSpec(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidSpec, fmt.Sprintf(format, args...))
}

// canceledError carries both sentinels: ErrCanceled and the context cause.
type canceledError struct{ cause error }

func (e *canceledError) Error() string {
	return ErrCanceled.Error() + ": " + e.cause.Error()
}

func (e *canceledError) Unwrap() []error { return []error{ErrCanceled, e.cause} }

// wrapCanceled converts a context error (or an error chain containing one)
// into an ErrCanceled-wrapping error; other errors pass through unchanged.
func wrapCanceled(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrCanceled) {
		return err // already wrapped by a nested Run* call
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &canceledError{cause: err}
	}
	return err
}

// checkCtx returns a wrapped ErrCanceled when ctx is done, nil otherwise —
// the per-interval cancellation probe of every simulation loop.
func checkCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return &canceledError{cause: err}
	}
	return nil
}
