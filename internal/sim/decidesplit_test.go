package sim

import (
	"context"
	"reflect"
	"testing"

	"daasscale/internal/engine"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// decideSplitSpec is a small cluster under combined telemetry faults and
// actuation chaos with auditing on — the most state the decide/apply split
// has to carry between phases (decisions, fault/actuation stat deltas,
// audit records).
func decideSplitSpec() MultiTenantSpec {
	mk := func(i int, w *workload.Workload, tr *trace.Trace, goal float64) TenantSpec {
		return TenantSpec{ID: string(rune('a' + i)), Workload: w, Trace: tr, GoalMs: goal, Seed: int64(i + 1)}
	}
	return MultiTenantSpec{
		Tenants: []TenantSpec{
			mk(0, workload.DS2(), trace.Trace1(90, 1), 60),
			mk(1, workload.TPCC(), trace.Trace4(90, 2), 200),
			mk(2, workload.CPUIO(workload.DefaultCPUIOConfig()), trace.Trace2(90, 3), 80),
			mk(3, workload.DS2(), trace.Trace3(70, 4), 90),
			mk(4, workload.TPCC(), trace.Trace1(90, 5), 150),
		},
		Servers:    2,
		Policy:     fabric.BestFit,
		EngineOpts: engine.Options{WarmStart: true},
		Faults:     faults.Uniform(0.15),
		Actuation:  actuationChaosConfig(),
		Audit:      true,
	}
}

// TestClusterDecideSplitWorkerBitIdentity is the parallel-decide phase's
// worker-count property under combined faults + actuation chaos: fanning
// RunTicks+Decide across 1, 3 or 8 workers — and the retained fully-serial
// reference schedule — all produce byte-identical cluster results, audit
// trails included.
func TestClusterDecideSplitWorkerBitIdentity(t *testing.T) {
	ctx := context.Background()

	ref, err := NewRunner(WithParallelism(1), WithClusterReference()).RunMultiTenant(ctx, decideSplitSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := NewRunner(WithParallelism(workers)).RunMultiTenant(ctx, decideSplitSpec())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			for i := range ref.Tenants {
				if !reflect.DeepEqual(ref.Tenants[i], got.Tenants[i]) {
					t.Fatalf("workers=%d: tenant %s diverged from serial reference:\nref %+v\ngot %+v",
						workers, ref.Tenants[i].ID, ref.Tenants[i], got.Tenants[i])
				}
			}
			t.Fatalf("workers=%d: cluster totals diverged from serial reference:\nref %+v\ngot %+v",
				workers, ref, got)
		}
	}
}

// TestClusterPhaseLabelsBitIdentical: pprof phase labelling is pure
// observability — it must not perturb results.
func TestClusterPhaseLabelsBitIdentical(t *testing.T) {
	ctx := context.Background()
	plain, err := NewRunner(WithParallelism(4)).RunMultiTenant(ctx, decideSplitSpec())
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := NewRunner(WithParallelism(4), WithPhaseLabels()).RunMultiTenant(ctx, decideSplitSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, labeled) {
		t.Fatal("phase labels changed cluster results")
	}
}
