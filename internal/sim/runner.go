package sim

import (
	"context"
	"fmt"

	"daasscale/internal/actuate"
	"daasscale/internal/budget"
	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/exec"
	"daasscale/internal/faults"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// Runner is the single entry point to every simulation in this package:
// single runs, policy sweeps, six-policy comparisons, multi-tenant cluster
// replays and the ballooning experiment. It carries the cross-cutting
// configuration the old Spec/ComparisonSpec/MultiTenantSpec/BallooningSpec
// free functions each re-declared — catalog, default policy, seed, engine
// options — plus the execution machinery the free functions never had:
// a worker pool that fans per-tenant work across WithParallelism workers,
// context cancellation on every path, and a progress/metrics hook.
//
// A Runner is immutable after construction and safe for concurrent use.
// Parallel runs are bit-identical to serial runs of the same seed: all
// per-tenant randomness is derived with exec.SplitSeed, and results are
// collected into index-addressed slots.
type Runner struct {
	catalog     *resource.Catalog
	policy      policy.Policy
	seed        int64
	seedSet     bool
	parallelism int
	progress    func(exec.Progress)
	engineOpts  engine.Options
	engineSet   bool
	jitter      float64
	faults      faults.Plan
	actuation   actuate.Config
	clusterRef  bool
	phaseLabels bool
}

// Option configures a Runner.
type Option func(*Runner)

// WithCatalog sets the container catalog used whenever a spec leaves its
// Catalog nil (default: the lock-step catalog).
func WithCatalog(cat *resource.Catalog) Option {
	return func(r *Runner) { r.catalog = cat }
}

// WithPolicy sets the default policy for Run when the spec has none.
func WithPolicy(p policy.Policy) Option {
	return func(r *Runner) { r.policy = p }
}

// WithSeed sets the default seed applied to specs whose Seed is zero.
func WithSeed(seed int64) Option {
	return func(r *Runner) { r.seed, r.seedSet = seed, true }
}

// WithParallelism sets the worker-pool width for fleet-scale paths
// (comparisons, sweeps, multi-tenant runs). Values ≤ 0 select
// runtime.GOMAXPROCS. Parallelism never changes results, only wall time.
func WithParallelism(n int) Option {
	return func(r *Runner) { r.parallelism = n }
}

// WithProgress installs a metrics hook invoked while fleet-scale work is in
// flight (tenants/sec, per-tenant p50/p95 wall time, worker utilization).
// The hook may be called concurrently from several workers.
func WithProgress(fn func(exec.Progress)) Option {
	return func(r *Runner) { r.progress = fn }
}

// WithEngineOptions sets the engine options applied to specs whose
// EngineOpts is the zero value.
func WithEngineOptions(opts engine.Options) Option {
	return func(r *Runner) { r.engineOpts, r.engineSet = opts, true }
}

// WithJitter sets the load generator's arrival jitter applied to specs
// whose Jitter is zero (default 0.1).
func WithJitter(j float64) Option {
	return func(r *Runner) { r.jitter = j }
}

// WithFaults sets the deterministic fault plan applied to the telemetry
// channel of every run whose spec declares no plan of its own — chaos mode
// for every experiment the runner executes. Faults perturb only what the
// policies observe, never the engine itself, and parallel chaos runs stay
// bit-identical to serial ones (the per-interval fault streams are derived
// with exec.SplitSeed, not drawn from a shared sequence).
func WithFaults(p faults.Plan) Option {
	return func(r *Runner) { r.faults = p }
}

// WithActuation sets the resize-actuation config applied to every run
// whose spec declares none of its own — the decision→engine channel gets
// actuation latency, injected throttles/failures, retry with backoff,
// deadlines and desired-state reconciliation (see package actuate). Like
// WithFaults, the chaos is seed-deterministic: parallel runs stay
// bit-identical to serial ones, and offline goal derivation stays
// synchronous so actuated and clean comparisons share the same goal.
func WithActuation(cfg actuate.Config) Option {
	return func(r *Runner) { r.actuation = cfg }
}

// WithClusterReference makes RunMultiTenant use the retained pre-batching
// cluster schedule: per-call engine ticks and a fully serial decide+apply
// phase, exactly as the runner executed before the parallel-decide /
// batched-tick-kernel optimization. Results are bit-identical to the
// optimized schedule — this option exists so the cluster benchmark and the
// profiling harness can measure the optimization against its in-tree
// baseline, not for production use.
func WithClusterReference() Option {
	return func(r *Runner) { r.clusterRef = true }
}

// WithPhaseLabels annotates the cluster runner's phases with runtime/pprof
// labels (`phase=ticks+decide`, `phase=apply`) so CPU profiles can
// attribute samples per phase (`go tool pprof -tagfocus phase=apply`).
// Off by default: pprof.Do allocates on every call, which the hot path
// must not pay when nobody is profiling.
func WithPhaseLabels() Option {
	return func(r *Runner) { r.phaseLabels = true }
}

// NewRunner builds a Runner from functional options. The zero-option
// Runner behaves exactly like the historical free functions, except that
// fleet-scale paths use every available core.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{}
	for _, o := range opts {
		o(r)
	}
	return r
}

// --- default resolution ----------------------------------------------------

func (r *Runner) resolveCatalog(cat *resource.Catalog) *resource.Catalog {
	if cat != nil {
		return cat
	}
	if r.catalog != nil {
		return r.catalog
	}
	return resource.LockStepCatalog()
}

func (r *Runner) resolveSeed(seed int64) int64 {
	if seed == 0 && r.seedSet {
		return r.seed
	}
	return seed
}

func (r *Runner) resolveEngineOpts(opts engine.Options) engine.Options {
	if opts == (engine.Options{}) && r.engineSet {
		return r.engineOpts
	}
	return opts
}

// newPool builds the per-run worker pool. Each top-level run gets its own
// pool so concurrent runs of one Runner do not share metrics.
func (r *Runner) newPool() *exec.Pool {
	return exec.NewPool(exec.Options{Workers: r.parallelism, OnProgress: r.progress})
}

// applyDefaults fills a single-run spec from the runner's options.
func (r *Runner) applyDefaults(spec Spec) Spec {
	if spec.Policy == nil {
		spec.Policy = r.policy
	}
	spec.Seed = r.resolveSeed(spec.Seed)
	spec.EngineOpts = r.resolveEngineOpts(spec.EngineOpts)
	if spec.Jitter == 0 {
		spec.Jitter = r.jitter
	}
	// Only a fully-zero plan takes the runner default: a non-zero but
	// disabled plan may be malformed (e.g. a NaN rate) and must reach
	// Validate rather than be silently replaced.
	if spec.Faults == (faults.Plan{}) {
		spec.Faults = r.faults
	}
	if spec.Actuation == (actuate.Config{}) {
		spec.Actuation = r.actuation
	}
	return spec
}

// --- run methods -----------------------------------------------------------

// Run executes one experiment. The context is checked every billing
// interval; cancellation returns a wrapped ErrCanceled.
func (r *Runner) Run(ctx context.Context, spec Spec) (Result, error) {
	spec = r.applyDefaults(spec)
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	return runSpec(ctx, spec)
}

// RunPolicies replays the identical spec once per policy, fanning the runs
// across the pool — the building block for policy sweeps. Results come
// back in the order of the policies argument regardless of scheduling.
func (r *Runner) RunPolicies(ctx context.Context, spec Spec, policies []policy.Policy) ([]Result, error) {
	if err := validatePolicies(policies); err != nil {
		return nil, err
	}
	spec = r.applyDefaults(spec)
	spec.Policy = policies[0]
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pool := r.newPool()
	return execMapPool(ctx, pool, len(policies), func(ctx context.Context, i int) (Result, error) {
		s := spec
		s.Policy = policies[i]
		res, err := runSpec(ctx, s)
		if err != nil {
			return Result{}, fmt.Errorf("sim: policy %s: %w", policies[i].Name(), err)
		}
		return res, nil
	})
}

// DeriveOffline runs the Max-container baseline under the runner's
// defaults and derives the offline provisioning baselines from it.
func (r *Runner) DeriveOffline(ctx context.Context, w *workload.Workload, tr *trace.Trace) (OfflineBaselines, error) {
	return deriveOffline(ctx, r.resolveCatalog(nil), w, tr, r.resolveSeed(0), r.resolveEngineOpts(engine.Options{}))
}

// RunComparison executes the full six-policy experiment of the paper's
// evaluation. The Max run comes first (the offline baselines are derived
// from it); the five remaining policies then replay the identical offered
// load in parallel across the pool. Results are ordered Max, Peak, Avg,
// Trace, Util, Auto — identical to the serial runner, bit for bit.
//
// In chaos mode (a Faults plan on the spec or the runner) the fault plan
// perturbs the telemetry channel of the five policy runs; the Max run that
// derives the offline baselines and the latency goal stays clean, so clean
// and chaos comparisons share the same goal and are directly comparable.
// An Actuation config follows the same rule: it governs the resize channel
// of the five policy runs while the offline Max derivation stays
// synchronous.
func (r *Runner) RunComparison(ctx context.Context, cs ComparisonSpec) (Comparison, error) {
	cs.Catalog = r.resolveCatalog(cs.Catalog)
	cs.Seed = r.resolveSeed(cs.Seed)
	cs.EngineOpts = r.resolveEngineOpts(cs.EngineOpts)
	if cs.Faults == (faults.Plan{}) {
		cs.Faults = r.faults
	}
	if cs.Actuation == (actuate.Config{}) {
		cs.Actuation = r.actuation
	}
	if err := cs.Validate(); err != nil {
		return Comparison{}, err
	}
	cat := cs.Catalog
	// Databases are measured warmed up, as in the paper's runs; without
	// this every online policy pays an artificial cold-start I/O storm.
	cs.EngineOpts.WarmStart = true
	off, err := deriveOffline(ctx, cat, cs.Workload, cs.Trace, cs.Seed, cs.EngineOpts)
	if err != nil {
		return Comparison{}, err
	}
	goal := cs.GoalFactor * off.MaxResult.P95Ms
	comp := Comparison{GoalMs: goal}
	maxRes := off.MaxResult
	maxRes.GoalMs = goal
	comp.Results = append(comp.Results, maxRes)

	// The five online/offline policies are independent given the derived
	// baselines: fan them out.
	oracle, err := policy.NewTraceOracle(off.Schedule)
	if err != nil {
		return Comparison{}, err
	}
	util, err := policy.NewUtil(cat, cat.Smallest(), policy.DefaultUtilConfig(goal))
	if err != nil {
		return Comparison{}, err
	}
	scaler, err := core.New(core.Config{
		Catalog:           cat,
		Initial:           cat.Smallest(),
		Goal:              core.LatencyGoal{Kind: core.GoalP95, Ms: goal},
		Budget:            cs.AutoBudget,
		Sensitivity:       cs.Sensitivity,
		Thresholds:        cs.Thresholds,
		DisableBallooning: cs.DisableBallooning,
	})
	if err != nil {
		return Comparison{}, err
	}
	policies := []policy.Policy{
		policy.NewStatic("Peak", off.Peak),
		policy.NewStatic("Avg", off.Avg),
		oracle,
		util,
		policy.NewAuto(scaler),
	}
	pool := r.newPool()
	results, err := execMapPool(ctx, pool, len(policies), func(ctx context.Context, i int) (Result, error) {
		res, err := runSpec(ctx, Spec{
			Workload:   cs.Workload,
			Trace:      cs.Trace,
			Policy:     policies[i],
			Seed:       cs.Seed,
			EngineOpts: cs.EngineOpts,
			GoalMs:     goal,
			Faults:     cs.Faults,
			Actuation:  cs.Actuation,
			Audit:      cs.Audit,
		})
		if err != nil {
			return Result{}, fmt.Errorf("sim: policy %s: %w", policies[i].Name(), err)
		}
		return res, nil
	})
	if err != nil {
		return Comparison{}, wrapCanceled(err)
	}
	comp.Results = append(comp.Results, results...)
	return comp, nil
}

// RunBallooning reproduces Figure 14. The two arms (naive scale-down vs
// ballooning probe) are independent simulations and run concurrently.
func (r *Runner) RunBallooning(ctx context.Context, spec BallooningSpec) (BallooningResult, error) {
	spec.Seed = r.resolveSeed(spec.Seed)
	if spec.Faults == (faults.Plan{}) {
		spec.Faults = r.faults
	}
	if spec.Actuation == (actuate.Config{}) {
		spec.Actuation = r.actuation
	}
	if err := spec.Validate(); err != nil {
		return BallooningResult{}, err
	}
	return runBallooning(ctx, spec, r.newPool())
}

// RunMultiTenant executes the cluster simulation — see the package-level
// documentation of the deprecated RunMultiTenant wrapper for the model.
// Within every billing interval the per-tenant engine work (the ticks,
// >99% of the cycles) fans out across the pool; the fabric decisions that
// couple tenants then apply serially in tenant order, which keeps the
// outcome bit-identical to a serial run while the wall-clock scales with
// the worker count.
func (r *Runner) RunMultiTenant(ctx context.Context, spec MultiTenantSpec) (MultiTenantResult, error) {
	spec.Catalog = r.resolveCatalog(spec.Catalog)
	spec.EngineOpts = r.resolveEngineOpts(spec.EngineOpts)
	if spec.Faults == (faults.Plan{}) {
		spec.Faults = r.faults
	}
	if spec.Actuation == (actuate.Config{}) {
		spec.Actuation = r.actuation
	}
	if err := spec.Validate(); err != nil {
		return MultiTenantResult{}, err
	}
	return runMultiTenant(ctx, spec, r.newPool(), clusterSchedule{
		reference: r.clusterRef,
		labels:    r.phaseLabels,
	})
}

// execMapPool is exec.Map over an existing pool.
func execMapPool[T any](ctx context.Context, pool *exec.Pool, n int, task func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := pool.Run(ctx, n, func(ctx context.Context, i int) error {
		v, err := task(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, wrapCanceled(err)
	}
	return out, nil
}

// autoScalerFor builds the demand-driven controller used for a tenant.
func autoScalerFor(cat *resource.Catalog, goalMs float64, bud *budget.Manager) (*core.AutoScaler, error) {
	goal := core.LatencyGoal{}
	if goalMs > 0 {
		goal = core.LatencyGoal{Kind: core.GoalP95, Ms: goalMs}
	}
	return core.New(core.Config{Catalog: cat, Initial: cat.Smallest(), Goal: goal, Budget: bud})
}
