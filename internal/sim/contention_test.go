package sim

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"daasscale/internal/engine"
	"daasscale/internal/fabric"
	"daasscale/internal/faults"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// contentionTenants is a cluster that packs densely enough to overcommit
// the shared channels: six tenants on two servers under FirstFit, so the
// early servers carry most of the allocation.
func contentionTenants() []TenantSpec {
	return []TenantSpec{
		{ID: "t0", Workload: workload.TPCC(), Trace: trace.Trace1(60, 1), GoalMs: 500},
		{ID: "t1", Workload: workload.DS2(), Trace: trace.Trace2(60, 2), GoalMs: 500},
		{ID: "t2", Workload: workload.DS2(), Trace: trace.Trace4(60, 3), GoalMs: 500},
		{ID: "t3", Workload: workload.TPCC(), Trace: trace.Trace2(60, 4), GoalMs: 500},
		{ID: "t4", Workload: workload.DS2(), Trace: trace.Trace1(60, 5), GoalMs: 500},
		{ID: "t5", Workload: workload.TPCC(), Trace: trace.Trace4(60, 6), GoalMs: 500},
	}
}

// TestClusterContentionWorkerBitIdentity is the PR's headline determinism
// property: with the interference model on, rebalancing active, telemetry
// faults and actuation chaos all at once, the cluster run is bit-identical
// at any worker count — node pressure is computed in the serial apply
// phase from the fabric's exact allocation sums, and the migration streams
// derive from tenant seeds, never from scheduling.
func TestClusterContentionWorkerBitIdentity(t *testing.T) {
	plan := faults.Uniform(0.15)
	plan.Seed = 3
	spec := MultiTenantSpec{
		Tenants:        contentionTenants(),
		Servers:        3,
		Policy:         fabric.FirstFit,
		EngineOpts:     engine.Options{WarmStart: true},
		Seed:           9,
		Faults:         plan,
		Actuation:      actuationChaosConfig(),
		Contention:     fabric.Contention{Enable: true},
		RebalanceEvery: 4,
		RebalancePack:  true,
	}
	serial, err := NewRunner(WithParallelism(1)).RunMultiTenant(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		par, err := NewRunner(WithParallelism(workers)).RunMultiTenant(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: contention cluster run differs from serial\nserial: %+v\nparallel: %+v",
				workers, serial, par)
		}
	}
	if serial.PeakWaitInflation <= 1 {
		t.Errorf("cluster never contended (peak inflation %v); the bit-identity property was not exercised",
			serial.PeakWaitInflation)
	}
}

// TestContentionInflatesWaits: the same overpacked cluster, contention on
// vs off. The model must inflate observed latency for tenants sharing the
// hot node and report above-identity inflation; with the model off the run
// must behave exactly as the historical additive fabric.
func TestContentionInflatesWaits(t *testing.T) {
	base := MultiTenantSpec{
		Tenants:    contentionTenants(),
		Servers:    2,
		Policy:     fabric.FirstFit,
		EngineOpts: engine.Options{WarmStart: true},
		Seed:       9,
	}
	off, err := RunMultiTenant(base)
	if err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.Contention = fabric.Contention{Enable: true}
	on, err := RunMultiTenant(hot)
	if err != nil {
		t.Fatal(err)
	}

	if off.PeakWaitInflation != 1 {
		t.Errorf("model off: peak inflation %v, want exactly 1", off.PeakWaitInflation)
	}
	if on.PeakWaitInflation <= 1 {
		t.Fatalf("model on: cluster never contended (peak inflation %v); the fixture must overpack a node",
			on.PeakWaitInflation)
	}
	// Same placement decisions feed both runs' pressure, so at least one
	// tenant must observe a strictly higher run-level p95 under contention.
	inflated := 0
	for i, tr := range on.Tenants {
		if tr.P95Ms > off.Tenants[i].P95Ms {
			inflated++
		}
	}
	if inflated == 0 {
		t.Errorf("no tenant's p95 rose under contention (peak inflation %v)", on.PeakWaitInflation)
	}
	// Pressure is reported either way; inflation only with the model on.
	for i, n := range off.Nodes {
		if n.Inflation != fabric.NoInflation() {
			t.Errorf("model off: node %d reports inflation %v", i, n.Inflation)
		}
	}
}

// steadySpec builds the goal-restoration fixture: six steady-load tenants
// whose settled containers keep p95 comfortably under a 60 ms goal when
// each runs alone — interference, not capacity, is what pushes them over.
// Six servers under FirstFit: everyone lands on the early nodes during the
// warmup growth spurt and there is always an empty receiver for the
// rebalancer. The tight interference model makes two settled co-located
// tenants overcommit the shared channels.
func steadySpec() MultiTenantSpec {
	var tenants []TenantSpec
	for i := 0; i < 6; i++ {
		w := workload.TPCC()
		if i%2 == 1 {
			w = workload.DS2()
		}
		tenants = append(tenants, TenantSpec{
			ID:       fmt.Sprintf("t%d", i),
			Workload: w,
			Trace:    trace.Trace1(60, int64(i+1)).Scale(0.3),
			GoalMs:   60,
		})
	}
	return MultiTenantSpec{
		Tenants:    tenants,
		Servers:    6,
		Policy:     fabric.FirstFit,
		EngineOpts: engine.Options{WarmStart: true},
		Seed:       9,
		Audit:      true,
		Contention: fabric.Contention{
			Enable:       true,
			ShareFrac:    [fabric.NumPressureChannels]float64{0.10, 0.10, 0.10},
			Slope:        1.5,
			MaxInflation: 4,
		},
	}
}

// lastContended returns the latest interval at which any tenant's audit
// record carries an above-identity wait-inflation stamp (−1 if none), and
// the number of such records.
func lastContended(r MultiTenantResult) (last, count int) {
	last = -1
	for _, tr := range r.Tenants {
		for _, rec := range tr.Audit {
			if rec.WaitInflation.Max() > 1 {
				count++
				if rec.Interval > last {
					last = rec.Interval
				}
			}
		}
	}
	return last, count
}

// TestRebalanceRestoresGoals is the PR's headline behavior property: an
// over-packed node measurably inflates its residents' waits, and the
// goal-preserving rebalancer clears the interference for good — every
// tenant's settled p95 back within goal — via migrations executed through
// the fabric. Without the rebalancer the same cluster stays contended deep
// into the run.
func TestRebalanceRestoresGoals(t *testing.T) {
	base := steadySpec()
	stuck, err := RunMultiTenant(base)
	if err != nil {
		t.Fatal(err)
	}
	if stuck.PeakWaitInflation <= 1 {
		t.Fatalf("fixture never contends (peak inflation %v); rebalance has nothing to fix", stuck.PeakWaitInflation)
	}
	if stuck.RebalanceMigrations != 0 {
		t.Fatalf("rebalancer disabled yet %d rebalance migrations counted", stuck.RebalanceMigrations)
	}
	stuckLast, stuckCount := lastContended(stuck)
	if stuckLast < 30 {
		t.Fatalf("unbalanced cluster decongested by itself at interval %d (%d contended records); fixture too weak",
			stuckLast, stuckCount)
	}
	// Every record that carries material inflation must also carry the
	// policy's interference explanation — latency slack attributed to
	// neighbors, not to under-provisioning.
	for _, tr := range stuck.Tenants {
		for _, rec := range tr.Audit {
			if rec.WaitInflation.Max() < 1.05 {
				continue
			}
			found := false
			for _, e := range rec.Explanations {
				if strings.Contains(e, "contention:") {
					found = true
				}
			}
			if !found {
				t.Fatalf("tenant %s interval %d: inflation %v without a contention explanation (%q)",
					tr.ID, rec.Interval, rec.WaitInflation.Max(), rec.Explanations)
			}
		}
	}

	balanced := base
	balanced.RebalanceEvery = 5
	reb, err := RunMultiTenant(balanced)
	if err != nil {
		t.Fatal(err)
	}
	if reb.RebalanceMigrations == 0 {
		t.Fatal("rebalancer planned no executed moves on an overcommitted cluster")
	}
	sum := 0
	for _, tr := range reb.Tenants {
		sum += tr.RebalanceMigrations
	}
	if sum != reb.RebalanceMigrations {
		t.Errorf("per-tenant rebalance migrations sum %d != cluster total %d", sum, reb.RebalanceMigrations)
	}
	if reb.Migrations < reb.RebalanceMigrations {
		t.Errorf("fabric migrations %d < rebalance migrations %d (rebalance moves must route through the fabric)",
			reb.Migrations, reb.RebalanceMigrations)
	}
	rebLast, _ := lastContended(reb)
	if rebLast >= 30 {
		t.Errorf("rebalanced cluster still contended at interval %d (stuck run: %d); the optimizer did not clear the interference",
			rebLast, stuckLast)
	}
	// The headline: once rebalanced, every tenant's settled-tail p95 is
	// within its goal.
	for _, tr := range reb.Tenants {
		worst := 0.0
		for _, rec := range tr.Audit {
			if rec.Interval >= 45 && rec.Snapshot.P95LatencyMs > worst {
				worst = rec.Snapshot.P95LatencyMs
			}
		}
		if goal := base.Tenants[0].GoalMs; worst > goal {
			t.Errorf("tenant %s settled p95 %.1f ms exceeds the %v ms goal after rebalancing", tr.ID, worst, goal)
		}
	}
}

// TestRebalanceActuatedChargesAndRetries: on the actuated path every
// executed move flows through the migration actuation channel — failures
// retry, and executed moves are still counted per tenant.
func TestRebalanceActuatedChargesAndRetries(t *testing.T) {
	spec := steadySpec()
	spec.RebalanceEvery = 5
	spec.Actuation = actuationChaosConfig()
	res, err := RunMultiTenant(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.RebalanceMigrations == 0 {
		t.Fatal("no rebalance move landed through the chaotic actuation channel")
	}
	if res.Migrations < res.RebalanceMigrations {
		t.Errorf("fabric migrations %d < rebalance migrations %d", res.Migrations, res.RebalanceMigrations)
	}
}

// dumpMultiTenantContention extends the golden dump with the contention
// surface: per-tenant rebalance moves, the cluster peak inflation, and the
// per-node end-state report. The historical dumpMultiTenant fields stay
// untouched so the two suites cannot drift apart silently.
func dumpMultiTenantContention(b *strings.Builder, r MultiTenantResult) {
	dumpMultiTenant(b, r)
	fmt.Fprintf(b, "contention{rebalanced=%d peakinfl=%s\n", r.RebalanceMigrations, fx(r.PeakWaitInflation))
	for _, tr := range r.Tenants {
		fmt.Fprintf(b, "treb{%s %d}\n", tr.ID, tr.RebalanceMigrations)
	}
	for _, n := range r.Nodes {
		fmt.Fprintf(b, "node{%d %d", n.Node, n.Tenants)
		for _, v := range n.Utilization {
			b.WriteString(" " + fx(v))
		}
		for _, v := range n.Pressure {
			b.WriteString(" " + fx(v))
		}
		for _, v := range n.Inflation {
			b.WriteString(" " + fx(v))
		}
		b.WriteString("}\n")
	}
	b.WriteString("}\n")
}

// goldenContention pins the contention-enabled cluster outputs, captured
// at the PR that introduced the interference model. Like
// goldenEquivalence: recapture only for an intentional, documented
// behavior change (set printGoldens and paste).
var goldenContention = map[string]string{
	"contention/clean": "b09beb3e6d596612d3f45cc9b3bcf18f9c5592bc4ecba5de28e57784e6afc872",
	"contention/chaos": "89ec3949cc3a1f5529ae77d69fc728a3fc6e0a2b5bf3154d19796f3509e604d2",
}

// TestContentionGolden extends the golden equivalence suite with the
// interference model on: contention + rebalancing, clean and under
// combined faults + actuation chaos, serial vs parallel — pinned bit for
// bit. (The zero-contention cells stay pinned by TestEquivalenceGolden,
// which is the "today's outputs reproduce exactly" half of the contract.)
func TestContentionGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden contention matrix is not a -short test")
	}
	run := func(t *testing.T, kind string, workers int) string {
		t.Helper()
		plan, act := equivalenceChaos("multitenant", kind)
		res, err := NewRunner(WithParallelism(workers)).RunMultiTenant(context.Background(), MultiTenantSpec{
			Tenants:        equivalenceTenants(),
			Servers:        2,
			Seed:           9,
			Faults:         plan,
			Actuation:      act,
			Contention:     fabric.Contention{Enable: true},
			RebalanceEvery: 5,
			RebalancePack:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return hashDump(func(b *strings.Builder) { dumpMultiTenantContention(b, res) })
	}
	for _, kind := range []string{"clean", "chaos"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			key := "contention/" + kind
			serial := run(t, kind, 1)
			parallel := run(t, kind, 4)
			if serial != parallel {
				t.Fatalf("%s: serial %s != parallel %s", key, serial, parallel)
			}
			want := goldenContention[key]
			if want == "" || printGoldens {
				t.Errorf("golden %q: %q,", key, serial)
				return
			}
			if serial != want {
				t.Errorf("%s: hash %s, want golden %s (contention behavior drift)", key, serial, want)
			}
		})
	}
}
