package sim

import (
	"context"
	"fmt"

	"daasscale/internal/actuate"
	"daasscale/internal/engine"
	"daasscale/internal/estimator"
	"daasscale/internal/exec"
	"daasscale/internal/faults"
	"daasscale/internal/loop"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// BallooningPoint is one billing interval of the Figure 14 series.
type BallooningPoint struct {
	Interval      int
	MemoryUsedMB  float64
	AvgMs         float64
	P95Ms         float64
	PhysicalReads float64
	// BalloonTargetMB is the active probe target (0 when none).
	BalloonTargetMB float64
}

// BallooningArm is one arm of the Figure 14 experiment.
type BallooningArm struct {
	Name   string
	Series []BallooningPoint
	// Aborted reports whether the ballooning probe aborted (with-balloon
	// arm) or the naive shrink was reverted (without-balloon arm).
	Aborted bool
	// ShrunkAt and RevertedAt are the intervals at which memory was first
	// reduced and restored (−1 when the event never happened).
	ShrunkAt, RevertedAt int
	// Actuation reports the arm's memory-target actuation counters
	// (all-zero on the synchronous path).
	Actuation actuate.Stats
	// Audit is the arm's per-interval decision-audit trail (only
	// collected when the spec asked for it).
	Audit []loop.DecisionRecord
}

// BaselineAvgMs returns the average latency before the shrink began.
func (a BallooningArm) BaselineAvgMs() float64 {
	var sum float64
	n := 0
	for _, pt := range a.Series {
		if a.ShrunkAt >= 0 && pt.Interval >= a.ShrunkAt {
			break
		}
		if pt.AvgMs > 0 {
			sum += pt.AvgMs
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PeakAvgMs returns the worst per-interval average latency in the arm.
func (a BallooningArm) PeakAvgMs() float64 {
	var m float64
	for _, pt := range a.Series {
		if pt.AvgMs > m {
			m = pt.AvgMs
		}
	}
	return m
}

// MinMemoryMB returns the lowest memory-in-use the arm reached.
func (a BallooningArm) MinMemoryMB() float64 {
	if len(a.Series) == 0 {
		return 0
	}
	m := a.Series[0].MemoryUsedMB
	for _, pt := range a.Series {
		if pt.MemoryUsedMB < m {
			m = pt.MemoryUsedMB
		}
	}
	return m
}

// BallooningResult holds both arms of Figure 14.
type BallooningResult struct {
	With    BallooningArm
	Without BallooningArm
	// WorkingSetMB is the workload's hot-set size (the paper's ≈3GB).
	WorkingSetMB float64
}

// BallooningSpec parameterizes the Figure 14 experiment.
type BallooningSpec struct {
	// Seed drives all randomness.
	Seed int64
	// Intervals is the run length (0 → 120).
	Intervals int
	// ShrinkAt is the interval at which low memory demand is (incorrectly)
	// concluded (0 → 30).
	ShrinkAt int
	// RPS is the steady offered load (0 → 120).
	RPS float64
	// Faults is the deterministic fault plan applied to each arm's
	// telemetry channel (zero value = clean). Both arms share one stream
	// seed, so they see identical fault timing.
	Faults faults.Plan
	// Actuation configures the memory-target channel between the control
	// logic and the engine (zero value = synchronous): target changes
	// take actuation latency to land, can be throttled or fail, and the
	// latest desired target is reconciled. Both arms share one stream
	// seed, so they see identical actuation chaos.
	Actuation actuate.Config
	// Audit, when true, collects each arm's loop.DecisionRecords into
	// BallooningArm.Audit. (The arms run concurrently, so there is no
	// shared-Recorder field here; each arm gets its own collector.)
	Audit bool
}

// RunBallooningExperiment reproduces Figure 14: a CPUIO workload with a
// ≈3GB working set under steady demand, where low memory demand has been
// (incorrectly) estimated. Without ballooning, memory drops to the next
// smaller container at once: the working set no longer fits, disk I/O and
// latency explode (≈2 orders of magnitude), the system reverts, and the
// slow cache re-warm prolongs the damage. With ballooning, memory shrinks
// gradually and the probe aborts as soon as I/O rises — near the working
// set — with minimal latency impact.
//
// Deprecated: use NewRunner().RunBallooning(ctx, spec), which adds context
// cancellation and runs the two (independent) arms concurrently; results
// are identical to this wrapper.
func RunBallooningExperiment(spec BallooningSpec) (BallooningResult, error) {
	return NewRunner().RunBallooning(context.Background(), spec)
}

// runBallooning is the context-aware implementation behind
// Runner.RunBallooning. The spec must already be validated. The two arms
// are fully independent simulations (separate engines, generators and
// telemetry), so they fan out across the pool.
func runBallooning(ctx context.Context, spec BallooningSpec, pool *exec.Pool) (BallooningResult, error) {
	if spec.Intervals == 0 {
		spec.Intervals = 120
	}
	if spec.ShrinkAt == 0 {
		spec.ShrinkAt = 30
	}
	if spec.RPS == 0 {
		spec.RPS = 80
	}
	w := workload.CPUIO(workload.CPUIOConfig{
		CPUWeight: 1, IOWeight: 1, LogWeight: 0.5,
		WorkingSetMB: 3 * 1024, HotspotFraction: 0.99,
	})
	cat := resource.LockStepCatalog()
	cont, _ := cat.ByName("C2") // 4GB: the working set fits with little slack
	next := cat.AtStep(cont.Step - 1)
	nextMem := next.Alloc[resource.Memory] // 2GB: below the working set

	res := BallooningResult{WorkingSetMB: w.WorkingSetMB}

	runArm := func(ctx context.Context, withBalloon bool) (BallooningArm, error) {
		arm := BallooningArm{ShrunkAt: -1, RevertedAt: -1}
		if withBalloon {
			arm.Name = "Ballooning"
		} else {
			arm.Name = "No Ballooning"
		}
		eng, err := engine.New(w, cont, spec.Seed, engine.Options{WarmStart: true})
		if err != nil {
			return arm, err
		}
		var col *loop.Collector
		var rec loop.Recorder
		if spec.Audit {
			col = &loop.Collector{}
			rec = col
		}
		lp := loop.New(loop.Config[float64]{
			ID:     arm.Name,
			Engine: eng,
			Seed:   spec.Seed,
			Jitter: 0.08,
			Decider: &armDecider{
				arm:         &arm,
				tm:          telemetry.NewManager(5),
				balloon:     estimator.NewBalloon(estimator.DefaultBalloonConfig()),
				withBalloon: withBalloon,
				shrinkAt:    spec.ShrinkAt,
				nextMemMB:   nextMem,
				nextIO:      next.Alloc[resource.DiskIO],
			},
			Applier:   loop.MemoryApplier{Engine: eng},
			Faults:    spec.Faults,
			Actuation: spec.Actuation,
			Recorder:  rec,
			Describe:  describeMemoryMB,
			// The loop's Target already is the memory target; routing
			// Decision.BalloonTargetMB to the engine as well would zero
			// the just-applied target.
			SetMemoryTarget: false,
		})
		for i := 0; i < spec.Intervals; i++ {
			if err := checkCtx(ctx); err != nil {
				return arm, fmt.Errorf("interval %d: %w", i, err)
			}
			if err := lp.Step(i, spec.RPS); err != nil {
				return arm, fmt.Errorf("interval %d: %w", i, err)
			}
		}
		arm.Actuation = lp.Finalize(spec.Intervals).Actuation
		if col != nil {
			arm.Audit = col.Records
		}
		return arm, nil
	}

	arms, err := execMapPool(ctx, pool, 2, runArmTask(runArm))
	if err != nil {
		return res, err
	}
	res.Without, res.With = arms[0], arms[1]
	return res, nil
}

// runArmTask adapts runArm to the pool fan-out, naming the failing arm.
func runArmTask(runArm func(context.Context, bool) (BallooningArm, error)) func(context.Context, int) (BallooningArm, error) {
	return func(ctx context.Context, i int) (BallooningArm, error) {
		withBalloon := i == 1
		arm, err := runArm(ctx, withBalloon)
		if err != nil {
			name := "naive arm"
			if withBalloon {
				name = "probe arm"
			}
			return arm, fmt.Errorf("sim: ballooning (%s): %w", name, err)
		}
		return arm, nil
	}
}

// armDecider is the ballooning experiment's control logic behind the
// Decider contract: delivered snapshots feed the telemetry manager (the
// series keeps the truthful snapshot; only the manager's view — what the
// control logic reads — is perturbed by faults), and Decide appends the
// interval's Figure 14 point before running the arm's memory-target
// logic. Unlike the policy loops there is no withheld-interval hold: the
// arm logic runs every interval on whatever signals the manager has.
type armDecider struct {
	arm         *BallooningArm
	tm          *telemetry.Manager
	balloon     *estimator.Balloon
	withBalloon bool
	shrinkAt    int
	// nextMemMB and nextIO are the next-smaller container's memory and
	// disk bandwidth — the shrink target and the probe's abort threshold.
	nextMemMB float64
	nextIO    float64
	badStreak int
}

// Observe implements loop.Decider.
func (d *armDecider) Observe(s telemetry.Snapshot) { d.tm.Observe(s) }

// Decide implements loop.Decider. actual is the engine's memory target
// going into the interval (the point's BalloonTargetMB).
func (d *armDecider) Decide(info loop.StepInfo, truth telemetry.Snapshot, actual float64) loop.Decision[float64] {
	i := info.Interval
	arm := d.arm
	arm.Series = append(arm.Series, BallooningPoint{
		Interval:        i,
		MemoryUsedMB:    truth.MemoryUsedMB,
		AvgMs:           truth.AvgLatencyMs,
		P95Ms:           truth.P95LatencyMs,
		PhysicalReads:   truth.PhysicalReads,
		BalloonTargetMB: actual,
	})
	dec := loop.Decision[float64]{Target: actual}
	// set routes a memory-target decision into the loop: applied directly
	// on the synchronous path, a desired-state write on the actuated one.
	// Re-setting an unchanged target is idempotent on both.
	set := func(mb float64, why string) {
		dec.Target = mb
		dec.Changed, dec.Submit = true, true
		dec.Explanations = append(dec.Explanations, why)
	}
	if !d.withBalloon {
		// Naive arm: act on the incorrect low-memory estimate at
		// ShrinkAt; revert once unmet disk I/O demand shows up in the
		// telemetry (the paper: "Auto notices this increase in latency
		// due to unmet disk I/O demand and reverts").
		switch {
		case i == d.shrinkAt:
			set(d.nextMemMB, fmt.Sprintf("naive shrink: memory target %.0fMB on a low-demand estimate", d.nextMemMB))
			arm.ShrunkAt = i
		case arm.ShrunkAt >= 0 && arm.RevertedAt < 0:
			sig, ok := d.tm.Signals()
			if ok && sig.Current.WaitMs[telemetry.WaitMemory] > 20_000 {
				d.badStreak++
			}
			if d.badStreak >= 2 { // reaction delay of the control loop
				set(0, "revert: sustained unmet memory demand in telemetry")
				arm.RevertedAt = i
				arm.Aborted = true
			}
		}
	} else if i >= d.shrinkAt && arm.RevertedAt < 0 {
		// Ballooning arm: the probe starts at ShrinkAt and follows the
		// protocol; the engine tracks the probe's target.
		if sig, ok := d.tm.Signals(); ok {
			bd := d.balloon.Step(sig, true, d.nextMemMB, d.nextIO)
			set(bd.TargetMB, fmt.Sprintf("balloon probe: memory target %.0fMB", bd.TargetMB))
			if arm.ShrunkAt < 0 && bd.TargetMB > 0 {
				arm.ShrunkAt = i
			}
			if bd.Aborted {
				arm.Aborted = true
				arm.RevertedAt = i
				dec.Explanations = append(dec.Explanations, "balloon probe aborted: I/O rose near the working set")
			}
			if bd.MemoryDemandLow {
				// Would be a genuine scale-down; does not happen with a
				// 3GB working set.
				arm.RevertedAt = i
			}
		}
	}
	return dec
}

// describeMemoryMB renders a memory target for DecisionRecords.
func describeMemoryMB(mb float64) string { return fmt.Sprintf("%.0fMB", mb) }
