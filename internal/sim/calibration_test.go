package sim

import (
	"testing"

	"daasscale/internal/fleet"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// TestCalibratedThresholdsEndToEnd closes the Section 4.1 loop: derive the
// estimator thresholds from the synthetic fleet's wait distributions (as a
// DaaS operator would from production telemetry) and run the end-to-end
// experiment with them — Auto must still meet the goal and undercut Util.
func TestCalibratedThresholdsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	samples, err := fleet.CollectWaitSamples(150, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	th := fleet.Calibrate(samples)
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
	comp, err := RunComparison(ComparisonSpec{
		Workload:   workload.CPUIO(workload.DefaultCPUIOConfig()),
		Trace:      trace.Trace2(900, 2),
		GoalFactor: 1.25,
		Seed:       42,
		Thresholds: th,
	})
	if err != nil {
		t.Fatal(err)
	}
	auto := comp.MustByPolicy("Auto")
	util := comp.MustByPolicy("Util")
	if auto.P95Ms > comp.GoalMs*1.05 {
		t.Errorf("calibrated Auto misses goal: %v > %v", auto.P95Ms, comp.GoalMs)
	}
	if util.AvgCostPerInterval <= auto.AvgCostPerInterval {
		t.Errorf("calibrated Auto (%v) should undercut Util (%v)",
			auto.AvgCostPerInterval, util.AvgCostPerInterval)
	}
}
