package sim

import (
	"fmt"

	"daasscale/internal/budget"
	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/estimator"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// ComparisonSpec describes one of the paper's end-to-end experiments: a
// workload × trace pair evaluated under all six policies (Max, Peak, Avg,
// Trace, Util, Auto) with a latency goal expressed as a multiple of the
// Max-container p95 (Section 7.2: 1.25× or 5×).
type ComparisonSpec struct {
	// Catalog of containers (nil → the default lock-step catalog).
	Catalog *resource.Catalog
	// Workload and Trace select the experiment. Required.
	Workload *workload.Workload
	Trace    *trace.Trace
	// GoalFactor sets the latency goal to GoalFactor × (Max run p95).
	// Required (> 1).
	GoalFactor float64
	// Seed makes the whole comparison reproducible.
	Seed int64
	// EngineOpts tunes the substrate (zero → defaults).
	EngineOpts engine.Options
	// Sensitivity for Auto (default MEDIUM).
	Sensitivity estimator.Sensitivity
	// Thresholds for Auto's demand estimator (zero value → defaults; pass
	// fleet.Calibrate's output to use fleet-calibrated thresholds).
	Thresholds estimator.Thresholds
	// AutoBudget optionally constrains Auto (nil → unlimited, the paper's
	// default for these experiments).
	AutoBudget *budget.Manager
	// DisableBallooning turns Auto's memory probe off.
	DisableBallooning bool
}

// Comparison is the outcome of one experiment: the goal that was derived
// and one Result per policy.
type Comparison struct {
	GoalMs  float64
	Results []Result
}

// ByPolicy returns the result for the named policy.
func (c Comparison) ByPolicy(name string) (Result, bool) {
	for _, r := range c.Results {
		if r.Policy == name {
			return r, true
		}
	}
	return Result{}, false
}

// MustByPolicy is ByPolicy that panics on a missing policy (for benches).
func (c Comparison) MustByPolicy(name string) Result {
	r, ok := c.ByPolicy(name)
	if !ok {
		panic("sim: no result for policy " + name)
	}
	return r
}

// RunComparison executes the full six-policy experiment. The offline
// baselines (Peak, Avg, Trace) are derived from a Max run of the identical
// workload, then every policy replays the exact same offered load
// (deterministic generator), matching the paper's methodology.
func RunComparison(cs ComparisonSpec) (Comparison, error) {
	if cs.Workload == nil || cs.Trace == nil {
		return Comparison{}, fmt.Errorf("sim: Workload and Trace are required")
	}
	if cs.GoalFactor <= 1 {
		return Comparison{}, fmt.Errorf("sim: GoalFactor must exceed 1, got %v", cs.GoalFactor)
	}
	cat := cs.Catalog
	if cat == nil {
		cat = resource.LockStepCatalog()
	}
	// Databases are measured warmed up, as in the paper's runs; without
	// this every online policy pays an artificial cold-start I/O storm.
	cs.EngineOpts.WarmStart = true
	off, err := DeriveOffline(cat, cs.Workload, cs.Trace, cs.Seed, cs.EngineOpts)
	if err != nil {
		return Comparison{}, err
	}
	goal := cs.GoalFactor * off.MaxResult.P95Ms
	comp := Comparison{GoalMs: goal}
	maxRes := off.MaxResult
	maxRes.GoalMs = goal
	comp.Results = append(comp.Results, maxRes)

	runOne := func(p policy.Policy) error {
		r, err := Run(Spec{
			Workload:   cs.Workload,
			Trace:      cs.Trace,
			Policy:     p,
			Seed:       cs.Seed,
			EngineOpts: cs.EngineOpts,
			GoalMs:     goal,
		})
		if err != nil {
			return fmt.Errorf("sim: policy %s: %w", p.Name(), err)
		}
		comp.Results = append(comp.Results, r)
		return nil
	}

	if err := runOne(policy.NewStatic("Peak", off.Peak)); err != nil {
		return Comparison{}, err
	}
	if err := runOne(policy.NewStatic("Avg", off.Avg)); err != nil {
		return Comparison{}, err
	}
	oracle, err := policy.NewTraceOracle(off.Schedule)
	if err != nil {
		return Comparison{}, err
	}
	if err := runOne(oracle); err != nil {
		return Comparison{}, err
	}
	util, err := policy.NewUtil(cat, cat.Smallest(), policy.DefaultUtilConfig(goal))
	if err != nil {
		return Comparison{}, err
	}
	if err := runOne(util); err != nil {
		return Comparison{}, err
	}
	scaler, err := core.New(core.Config{
		Catalog:           cat,
		Initial:           cat.Smallest(),
		Goal:              core.LatencyGoal{Kind: core.GoalP95, Ms: goal},
		Budget:            cs.AutoBudget,
		Sensitivity:       cs.Sensitivity,
		Thresholds:        cs.Thresholds,
		DisableBallooning: cs.DisableBallooning,
	})
	if err != nil {
		return Comparison{}, err
	}
	if err := runOne(policy.NewAuto(scaler)); err != nil {
		return Comparison{}, err
	}
	return comp, nil
}
