package sim

import (
	"context"

	"daasscale/internal/actuate"
	"daasscale/internal/budget"
	"daasscale/internal/engine"
	"daasscale/internal/estimator"
	"daasscale/internal/faults"
	"daasscale/internal/resource"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// ComparisonSpec describes one of the paper's end-to-end experiments: a
// workload × trace pair evaluated under all six policies (Max, Peak, Avg,
// Trace, Util, Auto) with a latency goal expressed as a multiple of the
// Max-container p95 (Section 7.2: 1.25× or 5×).
type ComparisonSpec struct {
	// Catalog of containers (nil → the default lock-step catalog).
	Catalog *resource.Catalog
	// Workload and Trace select the experiment. Required.
	Workload *workload.Workload
	Trace    *trace.Trace
	// GoalFactor sets the latency goal to GoalFactor × (Max run p95).
	// Required (> 1).
	GoalFactor float64
	// Seed makes the whole comparison reproducible.
	Seed int64
	// EngineOpts tunes the substrate (zero → defaults).
	EngineOpts engine.Options
	// Sensitivity for Auto (default MEDIUM).
	Sensitivity estimator.Sensitivity
	// Thresholds for Auto's demand estimator (zero value → defaults; pass
	// fleet.Calibrate's output to use fleet-calibrated thresholds).
	Thresholds estimator.Thresholds
	// AutoBudget optionally constrains Auto (nil → unlimited, the paper's
	// default for these experiments).
	AutoBudget *budget.Manager
	// DisableBallooning turns Auto's memory probe off.
	DisableBallooning bool
	// Faults is the deterministic fault plan applied to every policy's
	// telemetry channel (zero value = clean). The offline Max run that
	// derives the latency goal always stays clean, so clean and chaos
	// comparisons share the same goal.
	Faults faults.Plan
	// Actuation configures the decision→engine channel of every policy
	// run (zero value = synchronous, infallible). Like Faults, the
	// offline Max run that derives the latency goal stays synchronous, so
	// actuated and clean comparisons share the same goal.
	Actuation actuate.Config
	// Audit, when true, collects each policy run's loop.DecisionRecords
	// into its Result.Audit — the stream behind `daas-sim -explain`. The
	// offline Max derivation is not audited.
	Audit bool
}

// Comparison is the outcome of one experiment: the goal that was derived
// and one Result per policy.
type Comparison struct {
	GoalMs  float64
	Results []Result
}

// ByPolicy returns the result for the named policy.
func (c Comparison) ByPolicy(name string) (Result, bool) {
	for _, r := range c.Results {
		if r.Policy == name {
			return r, true
		}
	}
	return Result{}, false
}

// MustByPolicy is ByPolicy that panics on a missing policy (for benches).
func (c Comparison) MustByPolicy(name string) Result {
	r, ok := c.ByPolicy(name)
	if !ok {
		panic("sim: no result for policy " + name)
	}
	return r
}

// RunComparison executes the full six-policy experiment. The offline
// baselines (Peak, Avg, Trace) are derived from a Max run of the identical
// workload, then every policy replays the exact same offered load
// (deterministic generator), matching the paper's methodology.
//
// Deprecated: use NewRunner().RunComparison(ctx, cs), which adds context
// cancellation, uniform ErrInvalidSpec validation, and fans the five
// post-Max policy runs across a worker pool (the results are bit-identical
// to this serial wrapper).
func RunComparison(cs ComparisonSpec) (Comparison, error) {
	return NewRunner().RunComparison(context.Background(), cs)
}
