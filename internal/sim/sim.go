// Package sim runs end-to-end auto-scaling experiments: a workload driven
// by a load trace executes inside the simulated engine while a policy picks
// the container for every billing interval, exactly as in the paper's
// evaluation (Section 7.1). The runner collects the two headline metrics —
// monetary cost per billing interval and the 95th-percentile latency of the
// whole run — plus the per-interval series behind the drill-down figures.
package sim

import (
	"context"
	"fmt"
	"math"

	"daasscale/internal/actuate"
	"daasscale/internal/engine"
	"daasscale/internal/exec"
	"daasscale/internal/faults"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/stats"
	"daasscale/internal/telemetry"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// ServerCPUms is the CPU capacity (core-ms/s) of the database server
// hosting the containers — the largest container fills the whole server.
// Figure 13 expresses container sizes as a percentage of this capacity.
const ServerCPUms = 32000.0

// Spec describes one experiment run.
type Spec struct {
	// Workload is the benchmark to execute. Required.
	Workload *workload.Workload
	// Trace drives the offered load (one entry per billing interval).
	// Required.
	Trace *trace.Trace
	// Policy chooses containers. Required; its Container() is the initial
	// container.
	Policy policy.Policy
	// Seed makes the run reproducible.
	Seed int64
	// EngineOpts tunes the engine model (zero value → defaults).
	EngineOpts engine.Options
	// Jitter is the load generator's arrival jitter (0 → 0.1).
	Jitter float64
	// GoalMs, when > 0, is recorded for the performance-factor series (it
	// does not influence the run; goals live inside the policies).
	GoalMs float64
	// Faults is the deterministic fault plan applied to the telemetry
	// channel between the engine and the policy (zero value = clean run).
	// Faults never touch the engine: the load, the queues and the billing
	// stay truthful, only what the policy observes is perturbed — on an
	// interval the plan drops, the policy simply makes no decision and the
	// previous container is kept.
	Faults faults.Plan
	// Actuation is the configuration of the decision→engine channel (zero
	// value = the historical synchronous, infallible path). When enabled,
	// every resize the policy decides becomes an asynchronous operation
	// with actuation latency, injected throttles/failures, retry with
	// backoff, deadlines, and desired-state reconciliation — see package
	// actuate. Like Faults, the chaos is seed-deterministic: parallel runs
	// stay bit-identical to serial ones.
	Actuation actuate.Config
}

// IntervalPoint is one billing interval of the drill-down series.
type IntervalPoint struct {
	Interval  int
	Container string
	Step      int
	Cost      float64
	// ContainerCPUFrac is the container's CPU allocation as a fraction of
	// the server (Figure 13's "Container Max CPU").
	ContainerCPUFrac float64
	// CPUUtilFrac is CPU used as a fraction of the server.
	CPUUtilFrac float64
	OfferedRPS  float64
	// Utilization is the per-resource utilization fraction of the interval.
	Utilization resource.Vector
	// UtilizationPeak is the maximum per-tick utilization in the interval.
	UtilizationPeak resource.Vector
	AvgMs           float64
	P95Ms           float64
	// PerformanceFactor is (goal − p95)/goal·100: negative values mean the
	// goal was missed (Figure 13's secondary axis). NaN when no goal.
	PerformanceFactor float64
	// WaitPct is the share of waits per class (Figure 13(c)).
	WaitPct [telemetry.NumWaitClasses]float64
	// MemoryUsedMB and PhysicalReads feed the ballooning figure.
	MemoryUsedMB  float64
	PhysicalReads float64
	// BalloonTargetMB is the active memory target (0 = none).
	BalloonTargetMB float64
}

// Result aggregates one run.
type Result struct {
	Policy   string
	Workload string
	Trace    string
	GoalMs   float64

	Intervals          int
	TotalCost          float64
	AvgCostPerInterval float64
	// P95Ms and AvgMs are computed over every request of the whole run.
	P95Ms float64
	AvgMs float64
	// Changes counts container resizes; ChangeFraction is Changes divided
	// by the number of intervals.
	Changes        int
	ChangeFraction float64

	// FaultStats reports what the fault injector did to the telemetry
	// channel (all-zero for a clean run).
	FaultStats faults.Stats
	// ActuationStats reports what the actuation channel did to the
	// policy's resize decisions (all-zero on the synchronous path).
	ActuationStats actuate.Stats

	Series []IntervalPoint
}

// MeetsGoal reports whether the run-level p95 met the given goal.
func (r Result) MeetsGoal(goalMs float64) bool { return r.P95Ms <= goalMs }

// Run executes the experiment.
//
// Deprecated: use NewRunner().Run(ctx, spec), which adds context
// cancellation and uniform ErrInvalidSpec validation. This wrapper is
// equivalent to calling it with context.Background().
func Run(spec Spec) (Result, error) {
	return NewRunner().Run(context.Background(), spec)
}

// runSpecValidated validates and runs — for internal callers that bypass a
// Runner's default resolution.
func runSpecValidated(ctx context.Context, spec Spec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	return runSpec(ctx, spec)
}

// runSpec is the single-run simulation loop behind Runner.Run and every
// composite runner. The spec must already be validated; the context is
// probed once per billing interval.
func runSpec(ctx context.Context, spec Spec) (Result, error) {
	if spec.Jitter == 0 {
		spec.Jitter = 0.1
	}
	eng, err := engine.New(spec.Workload, spec.Policy.Container(), spec.Seed, spec.EngineOpts)
	if err != nil {
		return Result{}, err
	}
	var samples []float64
	eng.SetLatencySink(func(ms float64) { samples = append(samples, ms) })
	gen := workload.NewGenerator(spec.Seed+1000, spec.Jitter)
	var inj *faults.Injector
	if spec.Faults.Enabled() {
		// The stream seed depends only on the run seed, so every policy of
		// a comparison sees the same fault timing and parallel runs are
		// bit-identical to serial ones.
		inj = faults.NewInjector(spec.Faults, exec.SplitSeed(spec.Seed, faultStreamSalt))
	}
	var act *actuate.Actuator[resource.Container]
	if spec.Actuation.Enabled() {
		// Same determinism anchor as the fault injector: the actuation
		// stream is derived from the run seed alone, never from scheduling.
		act = actuate.New(spec.Actuation, exec.SplitSeed(spec.Seed, actuationStreamSalt), spec.Policy.Container())
	}

	res := Result{
		Policy:   spec.Policy.Name(),
		Workload: spec.Workload.Name,
		Trace:    spec.Trace.Name,
		GoalMs:   spec.GoalMs,
	}
	ticks := eng.TicksPerInterval()
	for m := 0; m < spec.Trace.Len(); m++ {
		if err := checkCtx(ctx); err != nil {
			return Result{}, fmt.Errorf("sim: %s×%s interval %d: %w", res.Workload, res.Trace, m, err)
		}
		target := spec.Trace.At(m)
		for t := 0; t < ticks; t++ {
			eng.Tick(gen.Offered(target))
		}
		snap := eng.EndInterval()
		res.TotalCost += snap.Cost
		cpuFrac := eng.Container().Alloc[resource.CPU] / ServerCPUms

		dec, observed := observeThroughFaults(spec.Policy, inj, eng, snap)
		if act == nil {
			// Synchronous path: the decision applies instantly and
			// infallibly, the historical (pre-actuation) behavior.
			if dec.Changed {
				res.Changes++
				eng.SetContainer(dec.Target)
			}
		} else {
			// Asynchronous path: the decision is a desired-state write; the
			// actuator reconciles it onto the engine through the failable
			// channel. Submit is idempotent, so re-issuing an unchanged
			// target every interval is free; a withheld interval submits
			// nothing, leaving in-flight operations alone.
			if observed {
				act.Submit(dec.Target)
			}
			if err := act.Step(m, func(c resource.Container) error {
				eng.SetContainer(c)
				return nil
			}); err != nil {
				return Result{}, fmt.Errorf("sim: %s×%s interval %d: %w", res.Workload, res.Trace, m, err)
			}
		}
		eng.SetMemoryTargetMB(dec.BalloonTargetMB)

		pt := IntervalPoint{
			Interval:         snap.Interval,
			Container:        snap.Container,
			Step:             snap.Step,
			Cost:             snap.Cost,
			ContainerCPUFrac: cpuFrac,
			CPUUtilFrac:      snap.Utilization[resource.CPU] * cpuFrac,
			OfferedRPS:       snap.OfferedRPS,
			Utilization:      snap.Utilization,
			UtilizationPeak:  snap.UtilizationPeak,
			AvgMs:            snap.AvgLatencyMs,
			P95Ms:            snap.P95LatencyMs,
			MemoryUsedMB:     snap.MemoryUsedMB,
			PhysicalReads:    snap.PhysicalReads,
			BalloonTargetMB:  dec.BalloonTargetMB,
		}
		if spec.GoalMs > 0 {
			pt.PerformanceFactor = (spec.GoalMs - snap.P95LatencyMs) / spec.GoalMs * 100
		} else {
			pt.PerformanceFactor = math.NaN()
		}
		for _, wc := range telemetry.WaitClasses {
			pt.WaitPct[wc] = snap.WaitPct(wc)
		}
		res.Series = append(res.Series, pt)
	}
	res.Intervals = spec.Trace.Len()
	if res.Intervals > 0 {
		res.AvgCostPerInterval = res.TotalCost / float64(res.Intervals)
		res.ChangeFraction = float64(res.Changes) / float64(res.Intervals)
	}
	if len(samples) > 0 {
		// samples is private to this run and dead after these aggregates, so
		// the percentile selects in place (order is irrelevant to Mean).
		res.P95Ms = stats.QuantileSelect(samples, 0.95)
		res.AvgMs = stats.Mean(samples)
	}
	if inj != nil {
		res.FaultStats = inj.Stats()
	}
	if act != nil {
		// On the actuated path, Changes counts resizes that actually
		// reached the engine, not decisions that merely wished for one.
		res.ActuationStats = act.Stats()
		res.Changes = res.ActuationStats.Applied
		if res.Intervals > 0 {
			res.ChangeFraction = float64(res.Changes) / float64(res.Intervals)
		}
	}
	return res, nil
}

// faultStreamSalt decorrelates the fault injector's stream from the other
// consumers of the run seed (the engine and the load generator).
const faultStreamSalt = 0x6661756C74 // "fault"

// actuationStreamSalt decorrelates the actuation channel's stream from the
// fault injector's and the engine's.
const actuationStreamSalt = 0x616374 // "act"

// observeThroughFaults routes one interval's snapshot to the policy, via
// the fault injector when chaos mode is on. When the injector withholds
// the interval entirely (drop or reorder hold-back), the policy makes no
// decision: the current container and memory target are kept — the
// graceful-degradation contract of a lost telemetry payload — and
// observed is false, so the actuated path knows not to treat the
// fallback as a fresh desired-state write (a lost interval must not
// supersede an in-flight resize). When the injector delivers several
// snapshots (a duplicate, or a held reordered one released), the policy
// observes each in turn and the last decision wins; Changed is then
// re-derived against the engine's actual container, because a mid-burst
// decision may have moved the policy's internal container while the
// final decision reports no further change.
func observeThroughFaults(p policy.Policy, inj *faults.Injector, eng *engine.Engine, snap telemetry.Snapshot) (dec policy.Decision, observed bool) {
	if inj == nil {
		return p.Observe(snap), true
	}
	dec = policy.Decision{Target: eng.Container(), BalloonTargetMB: eng.MemoryTargetMB()}
	for _, fs := range inj.Apply(snap) {
		dec = p.Observe(fs)
		observed = true
	}
	dec.Changed = dec.Target.Name != eng.Container().Name
	return dec, observed
}
