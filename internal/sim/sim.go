// Package sim runs end-to-end auto-scaling experiments: a workload driven
// by a load trace executes inside the simulated engine while a policy picks
// the container for every billing interval, exactly as in the paper's
// evaluation (Section 7.1). The runner collects the two headline metrics —
// monetary cost per billing interval and the 95th-percentile latency of the
// whole run — plus the per-interval series behind the drill-down figures.
package sim

import (
	"context"
	"fmt"
	"math"

	"daasscale/internal/actuate"
	"daasscale/internal/engine"
	"daasscale/internal/faults"
	"daasscale/internal/loop"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// ServerCPUms is the CPU capacity (core-ms/s) of the database server
// hosting the containers — the largest container fills the whole server.
// Figure 13 expresses container sizes as a percentage of this capacity.
const ServerCPUms = 32000.0

// Spec describes one experiment run.
type Spec struct {
	// Workload is the benchmark to execute. Required.
	Workload *workload.Workload
	// Trace drives the offered load (one entry per billing interval).
	// Required.
	Trace *trace.Trace
	// Policy chooses containers. Required; its Container() is the initial
	// container.
	Policy policy.Policy
	// Seed makes the run reproducible.
	Seed int64
	// EngineOpts tunes the engine model (zero value → defaults).
	EngineOpts engine.Options
	// Jitter is the load generator's arrival jitter (0 → 0.1).
	Jitter float64
	// GoalMs, when > 0, is recorded for the performance-factor series (it
	// does not influence the run; goals live inside the policies).
	GoalMs float64
	// Faults is the deterministic fault plan applied to the telemetry
	// channel between the engine and the policy (zero value = clean run).
	// Faults never touch the engine: the load, the queues and the billing
	// stay truthful, only what the policy observes is perturbed — on an
	// interval the plan drops, the policy simply makes no decision and the
	// previous container is kept.
	Faults faults.Plan
	// Actuation is the configuration of the decision→engine channel (zero
	// value = the historical synchronous, infallible path). When enabled,
	// every resize the policy decides becomes an asynchronous operation
	// with actuation latency, injected throttles/failures, retry with
	// backoff, deadlines, and desired-state reconciliation — see package
	// actuate. Like Faults, the chaos is seed-deterministic: parallel runs
	// stay bit-identical to serial ones.
	Actuation actuate.Config
	// Audit, when true, collects one loop.DecisionRecord per interval into
	// Result.Audit — the full decision-audit trail behind `-explain`.
	Audit bool
	// Recorder, when set, receives the audit stream directly (instead of,
	// or in addition to, the Audit collection). Records arrive in interval
	// order from the simulation goroutine.
	Recorder loop.Recorder
}

// IntervalPoint is one billing interval of the drill-down series.
type IntervalPoint struct {
	Interval  int
	Container string
	Step      int
	Cost      float64
	// ContainerCPUFrac is the container's CPU allocation as a fraction of
	// the server (Figure 13's "Container Max CPU").
	ContainerCPUFrac float64
	// CPUUtilFrac is CPU used as a fraction of the server.
	CPUUtilFrac float64
	OfferedRPS  float64
	// Utilization is the per-resource utilization fraction of the interval.
	Utilization resource.Vector
	// UtilizationPeak is the maximum per-tick utilization in the interval.
	UtilizationPeak resource.Vector
	AvgMs           float64
	P95Ms           float64
	// PerformanceFactor is (goal − p95)/goal·100: negative values mean the
	// goal was missed (Figure 13's secondary axis). NaN when no goal.
	PerformanceFactor float64
	// WaitPct is the share of waits per class (Figure 13(c)).
	WaitPct [telemetry.NumWaitClasses]float64
	// MemoryUsedMB and PhysicalReads feed the ballooning figure.
	MemoryUsedMB  float64
	PhysicalReads float64
	// BalloonTargetMB is the active memory target (0 = none).
	BalloonTargetMB float64
	// Explanations narrates the interval's decision — the estimator's
	// rule-firing explanations (§4), empty for silent policies and for
	// intervals the fault injector withheld.
	Explanations []string
}

// Result aggregates one run.
type Result struct {
	Policy   string
	Workload string
	Trace    string
	GoalMs   float64

	Intervals          int
	TotalCost          float64
	AvgCostPerInterval float64
	// P95Ms and AvgMs are computed over every request of the whole run.
	P95Ms float64
	AvgMs float64
	// Changes counts container resizes; ChangeFraction is Changes divided
	// by the number of intervals.
	Changes        int
	ChangeFraction float64

	// FaultStats reports what the fault injector did to the telemetry
	// channel (all-zero for a clean run).
	FaultStats faults.Stats
	// ActuationStats reports what the actuation channel did to the
	// policy's resize decisions (all-zero on the synchronous path).
	ActuationStats actuate.Stats

	Series []IntervalPoint

	// Audit is the per-interval decision-audit trail (only collected when
	// the spec asked for it).
	Audit []loop.DecisionRecord
}

// MeetsGoal reports whether the run-level p95 met the given goal.
func (r Result) MeetsGoal(goalMs float64) bool { return r.P95Ms <= goalMs }

// Run executes the experiment.
//
// Deprecated: use NewRunner().Run(ctx, spec), which adds context
// cancellation and uniform ErrInvalidSpec validation. This wrapper is
// equivalent to calling it with context.Background().
func Run(spec Spec) (Result, error) {
	return NewRunner().Run(context.Background(), spec)
}

// runSpecValidated validates and runs — for internal callers that bypass a
// Runner's default resolution.
func runSpecValidated(ctx context.Context, spec Spec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	return runSpec(ctx, spec)
}

// specRecorder builds the audit recorder a spec asked for: the spec's own
// Recorder, a fresh Collector for Audit, or both (a fan-out).
func specRecorder(audit bool, rec loop.Recorder) (loop.Recorder, *loop.Collector) {
	if !audit {
		return rec, nil
	}
	col := &loop.Collector{}
	if rec == nil {
		return col, col
	}
	return recorderPair{rec, col}, col
}

// recorderPair fans one audit stream out to two recorders.
type recorderPair struct{ a, b loop.Recorder }

func (p recorderPair) Record(r loop.DecisionRecord) { p.a.Record(r); p.b.Record(r) }

// runSpec is the single-run simulation behind Runner.Run and every
// composite runner: one loop.TenantLoop driven by the trace, with the
// policy adapted through loop.PolicyDecider and resizes landing directly
// on the engine. The spec must already be validated; the context is
// probed once per billing interval.
func runSpec(ctx context.Context, spec Spec) (Result, error) {
	if spec.Jitter == 0 {
		spec.Jitter = 0.1
	}
	eng, err := engine.New(spec.Workload, spec.Policy.Container(), spec.Seed, spec.EngineOpts)
	if err != nil {
		return Result{}, err
	}
	rec, col := specRecorder(spec.Audit, spec.Recorder)
	lp := loop.New(loop.Config[resource.Container]{
		ID:               spec.Policy.Name(),
		Engine:           eng,
		Seed:             spec.Seed,
		Jitter:           spec.Jitter,
		Decider:          loop.NewPolicyDecider(spec.Policy, eng),
		Applier:          loop.EngineApplier{Engine: eng},
		Faults:           spec.Faults,
		Actuation:        spec.Actuation,
		Recorder:         rec,
		Describe:         loop.DescribeContainer,
		SetMemoryTarget:  true,
		CollectLatencies: true,
		SampleCapacityHint: spec.Trace.Len() * eng.TicksPerInterval() *
			engine.MaxLatencySamplesPerTick,
	})

	res := Result{
		Policy:   spec.Policy.Name(),
		Workload: spec.Workload.Name,
		Trace:    spec.Trace.Name,
		GoalMs:   spec.GoalMs,
	}
	for m := 0; m < spec.Trace.Len(); m++ {
		if err := checkCtx(ctx); err != nil {
			return Result{}, fmt.Errorf("sim: %s×%s interval %d: %w", res.Workload, res.Trace, m, err)
		}
		lp.RunTicks(spec.Trace.At(m))
		// The container the interval ran in, captured before the decision
		// is applied (Figure 13's "Container Max CPU").
		cpuFrac := eng.Container().Alloc[resource.CPU] / ServerCPUms
		if err := lp.DecideApply(m); err != nil {
			return Result{}, fmt.Errorf("sim: %s×%s interval %d: %w", res.Workload, res.Trace, m, err)
		}
		snap, dec := lp.Snapshot(), lp.LastDecision()

		pt := IntervalPoint{
			Interval:         snap.Interval,
			Container:        snap.Container,
			Step:             snap.Step,
			Cost:             snap.Cost,
			ContainerCPUFrac: cpuFrac,
			CPUUtilFrac:      snap.Utilization[resource.CPU] * cpuFrac,
			OfferedRPS:       snap.OfferedRPS,
			Utilization:      snap.Utilization,
			UtilizationPeak:  snap.UtilizationPeak,
			AvgMs:            snap.AvgLatencyMs,
			P95Ms:            snap.P95LatencyMs,
			MemoryUsedMB:     snap.MemoryUsedMB,
			PhysicalReads:    snap.PhysicalReads,
			BalloonTargetMB:  dec.BalloonTargetMB,
			Explanations:     dec.Explanations,
		}
		if spec.GoalMs > 0 {
			pt.PerformanceFactor = (spec.GoalMs - snap.P95LatencyMs) / spec.GoalMs * 100
		} else {
			pt.PerformanceFactor = math.NaN()
		}
		for _, wc := range telemetry.WaitClasses {
			pt.WaitPct[wc] = snap.WaitPct(wc)
		}
		res.Series = append(res.Series, pt)
	}
	tot := lp.Finalize(spec.Trace.Len())
	res.Intervals = tot.Intervals
	res.TotalCost = tot.TotalCost
	res.AvgCostPerInterval = tot.AvgCostPerInterval
	res.P95Ms = tot.P95Ms
	res.AvgMs = tot.AvgMs
	res.Changes = tot.Changes
	res.ChangeFraction = tot.ChangeFraction
	res.FaultStats = tot.Faults
	res.ActuationStats = tot.Actuation
	if col != nil {
		res.Audit = col.Records
	}
	return res, nil
}
