package sim

import (
	"context"
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"daasscale/internal/actuate"
	"daasscale/internal/faults"
	"daasscale/internal/trace"
	"daasscale/internal/workload"
)

// The cross-runner golden equivalence suite. Every cell of the matrix —
// {single run, six-policy comparison, multi-tenant cluster, ballooning} ×
// {clean, telemetry faults, faults + actuation chaos} × {serial, parallel
// workers} — is serialized through a canonical dump that enumerates the
// pre-refactor result fields explicitly (so later additive fields cannot
// silently perturb the pins), hashed, and compared against a constant
// captured from the pre-refactor loop bodies. Any behavioral drift in the
// shared control loop — fault routing, actuation gating, finalization —
// shows up here as a hash mismatch, bit for bit.
//
// To re-capture after an INTENTIONAL behavior change, set printGoldens to
// true, run `go test ./internal/sim -run TestEquivalenceGolden -v`, and
// paste the printed entries back into goldenEquivalence.

var printGoldens = false

// goldenEquivalence pins the pre-refactor outputs. Captured at the seed
// state (before internal/loop existed) and must never change except for an
// intentional, documented behavior change.
var goldenEquivalence = map[string]string{
	"single/clean":       "144048e07a12dad2ad76d6a964aa1900fd4d21d271bde3084c4362815bfed7ec",
	"single/faults":      "84c985fb5bd42fcc0c68baa4b786b4652430f3ed4ba6f243a643f9492eddcdb5",
	"single/chaos":       "53be47bc9a21a032763bf8f8ec9708af31d319eb70e0d780b6cafcd07dc4150a",
	"comparison/clean":   "48cce7485c4419ce5dd04bf7a663f28d228d536e71671223174c46ae1e32a106",
	"comparison/faults":  "669fc25d14cc294561ad0ec248a0a09c7cd50f06070630b99028fe6b6245acd6",
	"comparison/chaos":   "fb2a54bde1bda64201ab0be2d832e27b09dd84914903b8f1a80d16d3168f7626",
	"multitenant/clean":  "19f5c0b5eada3042d13eb6a0a363507682ba5b358c7f7f1b90ed788f4023b75e",
	"multitenant/faults": "9c2cdbc93318787de6c0c9360ed4c96cd7610092833a1cfa95ee460b12d07494",
	"multitenant/chaos":  "35cd5ba91c20a116269faf46935050247aed01c5a86d508353a3b5e1fbf0d713",
	"ballooning/clean":   "5338062a93f9f0c872e8113a0cd401eb2d6044a6cdfe0b652f4f54f44bc371b0",
	"ballooning/faults":  "cbe065028e85c9aed3a801abe72cdc2c4c0e123b09bdf2bf3c9cd819f87b07aa",
	"ballooning/chaos":   "ba15dea7ec649d44aceda9cefacb341cd27bfef3e1f5e41a28f8d1fb964ce083",
}

// fx formats a float64 exactly (hex mantissa/exponent round-trips every
// bit, including negative zero; NaN prints as NaN).
func fx(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func dumpFaultStats(b *strings.Builder, s faults.Stats) {
	fmt.Fprintf(b, "faults{%d %d", s.Intervals, s.Delivered)
	for _, n := range s.Injected {
		fmt.Fprintf(b, " %d", n)
	}
	b.WriteString("}")
}

func dumpActuationStats(b *strings.Builder, s actuate.Stats) {
	fmt.Fprintf(b, "act{%d %d %d %d %d %d %d %d %d %d %d %d}",
		s.Submitted, s.Ops, s.Attempts, s.Retries, s.Applied,
		s.Throttled, s.TransientFailures, s.Refused,
		s.Superseded, s.Expired, s.SumEffectIntervals, s.MaxEffectIntervals)
}

func dumpIntervalPoint(b *strings.Builder, p IntervalPoint) {
	fmt.Fprintf(b, "pt{%d %s %d %s %s %s %s", p.Interval, p.Container, p.Step,
		fx(p.Cost), fx(p.ContainerCPUFrac), fx(p.CPUUtilFrac), fx(p.OfferedRPS))
	for _, v := range p.Utilization {
		b.WriteString(" " + fx(v))
	}
	for _, v := range p.UtilizationPeak {
		b.WriteString(" " + fx(v))
	}
	fmt.Fprintf(b, " %s %s %s", fx(p.AvgMs), fx(p.P95Ms), fx(p.PerformanceFactor))
	for _, v := range p.WaitPct {
		b.WriteString(" " + fx(v))
	}
	fmt.Fprintf(b, " %s %s %s}\n", fx(p.MemoryUsedMB), fx(p.PhysicalReads), fx(p.BalloonTargetMB))
}

func dumpResult(b *strings.Builder, r Result) {
	fmt.Fprintf(b, "result{%s %s %s %s %d %s %s %s %s %d %s ",
		r.Policy, r.Workload, r.Trace, fx(r.GoalMs), r.Intervals,
		fx(r.TotalCost), fx(r.AvgCostPerInterval), fx(r.P95Ms), fx(r.AvgMs),
		r.Changes, fx(r.ChangeFraction))
	dumpFaultStats(b, r.FaultStats)
	b.WriteString(" ")
	dumpActuationStats(b, r.ActuationStats)
	fmt.Fprintf(b, " series=%d\n", len(r.Series))
	for _, p := range r.Series {
		dumpIntervalPoint(b, p)
	}
	b.WriteString("}\n")
}

func dumpComparison(b *strings.Builder, c Comparison) {
	fmt.Fprintf(b, "comparison{%s results=%d\n", fx(c.GoalMs), len(c.Results))
	for _, r := range c.Results {
		dumpResult(b, r)
	}
	b.WriteString("}\n")
}

func dumpMultiTenant(b *strings.Builder, r MultiTenantResult) {
	fmt.Fprintf(b, "cluster{migrations=%d refusals=%d peak=%s tenants=%d\n",
		r.Migrations, r.Refusals, fx(r.PeakClusterCPUFrac), len(r.Tenants))
	for _, tr := range r.Tenants {
		fmt.Fprintf(b, "tenant{%s %s %s %s %d %d %d ", tr.ID,
			fx(tr.TotalCost), fx(tr.AvgCostPerInterval), fx(tr.P95Ms),
			tr.Changes, tr.RefusedResizes, tr.Migrations)
		dumpActuationStats(b, tr.Actuation)
		b.WriteString("}\n")
	}
	b.WriteString("}\n")
}

func dumpBallooningArm(b *strings.Builder, a BallooningArm) {
	fmt.Fprintf(b, "arm{%s aborted=%t shrunk=%d reverted=%d ", a.Name,
		a.Aborted, a.ShrunkAt, a.RevertedAt)
	dumpActuationStats(b, a.Actuation)
	fmt.Fprintf(b, " series=%d\n", len(a.Series))
	for _, p := range a.Series {
		fmt.Fprintf(b, "bpt{%d %s %s %s %s %s}\n", p.Interval,
			fx(p.MemoryUsedMB), fx(p.AvgMs), fx(p.P95Ms),
			fx(p.PhysicalReads), fx(p.BalloonTargetMB))
	}
	b.WriteString("}\n")
}

func dumpBallooning(b *strings.Builder, r BallooningResult) {
	fmt.Fprintf(b, "ballooning{ws=%s\n", fx(r.WorkingSetMB))
	dumpBallooningArm(b, r.Without)
	dumpBallooningArm(b, r.With)
	b.WriteString("}\n")
}

func hashDump(dump func(*strings.Builder)) string {
	var b strings.Builder
	dump(&b)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}

// equivalenceChaos returns the fault plan and actuation config of one
// matrix column. kind is "clean", "faults" or "chaos". The fault seed is
// per-runner: ballooning needs a stream that actually lands a fault inside
// the shrink window (seed 3 leaves both arms untouched there, which would
// pin a faulted cell indistinguishable from the clean one).
func equivalenceChaos(runner, kind string) (faults.Plan, actuate.Config) {
	var plan faults.Plan
	var act actuate.Config
	if kind == "faults" || kind == "chaos" {
		plan = faults.Uniform(0.2)
		plan.Seed = 3
		if runner == "ballooning" {
			// Chosen by probing: with the actuated channel on, most fault
			// streams happen to miss every decision the arms make.
			plan.Seed = 4
			if kind == "chaos" {
				plan.Seed = 9
			}
		}
	}
	if kind == "chaos" {
		act = actuationChaosConfig()
	}
	return plan, act
}

func equivalenceTenants() []TenantSpec {
	return []TenantSpec{
		{ID: "alpha", Workload: workload.TPCC(), Trace: trace.Trace1(40, 5), GoalMs: 120},
		{ID: "beta", Workload: workload.DS2(), Trace: trace.Trace2(40, 6), GoalMs: 100},
		{ID: "gamma", Workload: workload.DS2(), Trace: trace.Trace4(40, 7), GoalMs: 90},
	}
}

// runEquivalenceCell produces the canonical dump hash for one (runner,
// chaos) cell at the given worker count.
func runEquivalenceCell(t *testing.T, runner, kind string, workers int) string {
	t.Helper()
	ctx := context.Background()
	plan, act := equivalenceChaos(runner, kind)
	r := NewRunner(WithParallelism(workers))
	switch runner {
	case "single":
		res, err := r.Run(ctx, Spec{
			Workload:  workload.DS2(),
			Trace:     trace.Trace2(60, 7),
			Policy:    chaosAutoPolicy(t),
			Seed:      11,
			GoalMs:    100,
			Faults:    plan,
			Actuation: act,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", runner, kind, err)
		}
		return hashDump(func(b *strings.Builder) { dumpResult(b, res) })
	case "comparison":
		comp, err := r.RunComparison(ctx, ComparisonSpec{
			Workload:   workload.DS2(),
			Trace:      trace.Trace2(48, 7),
			GoalFactor: 5,
			Seed:       11,
			Faults:     plan,
			Actuation:  act,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", runner, kind, err)
		}
		return hashDump(func(b *strings.Builder) { dumpComparison(b, comp) })
	case "multitenant":
		res, err := r.RunMultiTenant(ctx, MultiTenantSpec{
			Tenants:   equivalenceTenants(),
			Servers:   2,
			Seed:      9,
			Faults:    plan,
			Actuation: act,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", runner, kind, err)
		}
		return hashDump(func(b *strings.Builder) { dumpMultiTenant(b, res) })
	case "ballooning":
		res, err := r.RunBallooning(ctx, BallooningSpec{
			Seed:      5,
			Intervals: 48,
			ShrinkAt:  16,
			Faults:    plan,
			Actuation: act,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", runner, kind, err)
		}
		return hashDump(func(b *strings.Builder) { dumpBallooning(b, res) })
	}
	t.Fatalf("unknown runner %q", runner)
	return ""
}

// TestEquivalenceGolden is the refactor's bit-identity contract: all four
// runners, under every chaos combination, at serial and parallel worker
// counts, reproduce the exact pre-refactor outputs.
func TestEquivalenceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden equivalence matrix is not a -short test")
	}
	for _, runner := range []string{"single", "comparison", "multitenant", "ballooning"} {
		for _, kind := range []string{"clean", "faults", "chaos"} {
			runner, kind := runner, kind
			t.Run(runner+"/"+kind, func(t *testing.T) {
				t.Parallel()
				key := runner + "/" + kind
				serial := runEquivalenceCell(t, runner, kind, 1)
				parallel := runEquivalenceCell(t, runner, kind, 4)
				if serial != parallel {
					t.Fatalf("%s: serial %s != parallel %s", key, serial, parallel)
				}
				want := goldenEquivalence[key]
				if want == "" || printGoldens {
					t.Errorf("golden %q: %q,", key, serial)
					return
				}
				if serial != want {
					t.Errorf("%s: hash %s, want golden %s (behavior drift from the pre-refactor loop)", key, serial, want)
				}
			})
		}
	}
}
