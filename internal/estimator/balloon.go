package estimator

import (
	"fmt"

	"daasscale/internal/telemetry"
)

// BalloonState is the phase of the ballooning protocol.
type BalloonState int

// Ballooning phases.
const (
	// BalloonIdle means no probe is running.
	BalloonIdle BalloonState = iota
	// BalloonActive means memory is being reduced gradually.
	BalloonActive
	// BalloonCooldown means a probe recently aborted (or succeeded) and a
	// new probe must wait.
	BalloonCooldown
)

// String names the state.
func (s BalloonState) String() string {
	switch s {
	case BalloonIdle:
		return "idle"
	case BalloonActive:
		return "active"
	case BalloonCooldown:
		return "cooldown"
	default:
		return fmt.Sprintf("balloonstate(%d)", int(s))
	}
}

// BalloonConfig tunes the ballooning protocol.
type BalloonConfig struct {
	// StepFraction is the fraction of current memory removed per interval
	// ("slowly reduce the memory allocated to a tenant").
	StepFraction float64
	// AbortReadsFactor aborts the probe when per-interval physical reads
	// exceed baseline·factor plus a slack. The slack has an absolute part
	// (AbortReadsSlack, so an all-cached baseline of ≈0 does not make the
	// probe hair-triggered) and a capacity-relative part
	// (AbortReadsIOPSFrac of the next smaller container's per-interval I/O
	// capacity — an increase is only "significant" relative to what the
	// smaller container could absorb).
	AbortReadsFactor   float64
	AbortReadsSlack    float64
	AbortReadsIOPSFrac float64
	// AbortLatencyFactor aborts when p95 latency exceeds baseline·factor.
	AbortLatencyFactor float64
	// CooldownIntervals is the pause after an abort or success before the
	// next probe may start.
	CooldownIntervals int
}

// DefaultBalloonConfig returns the configuration used by the experiments.
func DefaultBalloonConfig() BalloonConfig {
	return BalloonConfig{
		StepFraction:       0.08,
		AbortReadsFactor:   1.25,
		AbortReadsSlack:    500,
		AbortReadsIOPSFrac: 0.08,
		AbortLatencyFactor: 1.4,
		CooldownIntervals:  20,
	}
}

// BalloonDecision is the controller's per-interval output.
type BalloonDecision struct {
	// TargetMB is the memory target to install in the engine; 0 means no
	// ballooning (release any target).
	TargetMB float64
	// MemoryDemandLow is true when the probe reached the next smaller
	// container's memory without a significant disk-I/O or latency
	// increase: memory demand is established as low.
	MemoryDemandLow bool
	// Aborted is true when the probe reverted because I/O or latency rose.
	Aborted bool
	// Note explains the action taken, if any.
	Note string
}

// Balloon is the low-memory-demand prober (Section 4.3): it gradually
// shrinks the tenant's memory, watching disk I/O. If memory can reach the
// next smaller container without a significant increase in disk I/O, memory
// demand is low; if I/O rises, the probe reverts. A probe is only started
// when the demand for every other resource is LOW, minimizing the risk to
// query latencies.
type Balloon struct {
	cfg   BalloonConfig
	state BalloonState

	targetMB      float64
	baselineReads float64
	baselineP95   float64
	cooldown      int
}

// NewBalloon creates a ballooning controller.
func NewBalloon(cfg BalloonConfig) *Balloon {
	if cfg.StepFraction <= 0 || cfg.StepFraction >= 1 {
		cfg.StepFraction = DefaultBalloonConfig().StepFraction
	}
	return &Balloon{cfg: cfg}
}

// State returns the current phase.
func (b *Balloon) State() BalloonState { return b.state }

// TargetMB returns the active memory target (0 when idle).
func (b *Balloon) TargetMB() float64 { return b.targetMB }

// Step advances the protocol by one billing interval.
//
//	sig             — the telemetry manager's signals,
//	safeToProbe     — true when every other resource's demand is LOW and
//	                  latency goals are being met (the paper's trigger),
//	nextSmallerMB   — the memory allocation of the next smaller container
//	                  (the probe's goal line); ≤ 0 disables probing,
//	nextSmallerIOPS — the next smaller container's disk I/O allocation,
//	                  which sizes the "significant I/O increase" slack.
func (b *Balloon) Step(sig telemetry.Signals, safeToProbe bool, nextSmallerMB, nextSmallerIOPS float64) BalloonDecision {
	switch b.state {
	case BalloonCooldown:
		b.cooldown--
		if b.cooldown <= 0 {
			b.state = BalloonIdle
		}
		return BalloonDecision{}

	case BalloonIdle:
		if !safeToProbe || nextSmallerMB <= 0 || sig.MemoryUsedMB <= nextSmallerMB {
			return BalloonDecision{}
		}
		b.state = BalloonActive
		b.baselineReads = sig.PhysicalReadsMedian
		b.baselineP95 = sig.Latency.P95Ms
		b.targetMB = sig.MemoryUsedMB * (1 - b.cfg.StepFraction)
		return BalloonDecision{
			TargetMB: b.targetMB,
			Note: fmt.Sprintf("balloon: probing low memory demand, target %.0fMB (baseline reads %.0f)",
				b.targetMB, b.baselineReads),
		}

	case BalloonActive:
		// Abort on disk-I/O increase or latency damage.
		slack := b.cfg.AbortReadsSlack + b.cfg.AbortReadsIOPSFrac*nextSmallerIOPS*60
		readLimit := b.baselineReads*b.cfg.AbortReadsFactor + slack
		latLimit := b.baselineP95 * b.cfg.AbortLatencyFactor
		reads := sig.PhysicalReadsMedian
		if sig.Current.PhysicalReads > reads {
			// React to the most recent interval too: the I/O increase shows
			// up there first, before the windowed median catches up.
			reads = sig.Current.PhysicalReads
		}
		if reads > readLimit || (b.baselineP95 > 0 && sig.Current.P95LatencyMs > latLimit) {
			b.reset()
			return BalloonDecision{
				Aborted: true,
				Note: fmt.Sprintf("balloon: aborted at %.0fMB (reads %.0f > limit %.0f or latency degraded); reverting",
					sig.MemoryUsedMB, reads, readLimit),
			}
		}
		// If the workload stops being quiet, abort conservatively too.
		if !safeToProbe {
			b.reset()
			return BalloonDecision{
				Aborted: true,
				Note:    "balloon: aborted, other resources no longer idle",
			}
		}
		// Success: reached the next smaller container's memory.
		if b.targetMB <= nextSmallerMB {
			b.reset()
			return BalloonDecision{
				MemoryDemandLow: true,
				Note:            fmt.Sprintf("balloon: reached %.0fMB without I/O increase — memory demand is low", nextSmallerMB),
			}
		}
		// Keep shrinking.
		b.targetMB *= 1 - b.cfg.StepFraction
		if b.targetMB < nextSmallerMB {
			b.targetMB = nextSmallerMB
		}
		return BalloonDecision{
			TargetMB: b.targetMB,
			Note:     fmt.Sprintf("balloon: shrinking, target %.0fMB", b.targetMB),
		}
	}
	return BalloonDecision{}
}

// reset returns to cooldown and clears the probe.
func (b *Balloon) reset() {
	b.state = BalloonCooldown
	b.cooldown = b.cfg.CooldownIntervals
	b.targetMB = 0
}
