// Package estimator implements the paper's resource demand estimator
// (Section 4): a manually-constructed hierarchy of rules that combines
// multiple weakly-predictive signals — categorized utilization, wait
// magnitudes, percentage waits, robust trends and wait–latency correlation —
// into per-resource demand estimates expressed as container-step changes of
// −1, 0, +1 or +2 (90% of production resizes are one step; 98% at most
// two). Each estimate carries a human-readable explanation of the rule path
// taken. Low memory demand, which utilization and waits cannot reveal, is
// detected by a ballooning controller (Section 4.3).
package estimator

import (
	"fmt"

	"daasscale/internal/resource"
)

// Level categorizes a continuous signal into the discrete domain the rules
// operate on (Section 4: "once thresholds are applied ... it transforms the
// signals from a continuous value domain to a categorical value domain").
type Level int

// Signal levels.
const (
	Low Level = iota
	Medium
	High
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Low:
		return "LOW"
	case Medium:
		return "MEDIUM"
	case High:
		return "HIGH"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Sensitivity is the coarse-grained performance-sensitivity knob
// (Section 2.3): how latency-sensitive the tenant's application is. HIGH
// scales up more eagerly and down more reluctantly; LOW the reverse.
type Sensitivity int

// Sensitivity levels; the default is SensitivityMedium.
const (
	SensitivityLow Sensitivity = iota
	SensitivityMedium
	SensitivityHigh
)

// String names the sensitivity.
func (s Sensitivity) String() string {
	switch s {
	case SensitivityLow:
		return "LOW"
	case SensitivityMedium:
		return "MEDIUM"
	case SensitivityHigh:
		return "HIGH"
	default:
		return fmt.Sprintf("sensitivity(%d)", int(s))
	}
}

// upFactor scales the scale-up thresholds: < 1 means weaker evidence
// suffices to add resources.
func (s Sensitivity) upFactor() float64 {
	switch s {
	case SensitivityHigh:
		return 0.75
	case SensitivityLow:
		return 1.5
	default:
		return 1
	}
}

// downFactor scales the scale-down thresholds: > 1 means weaker evidence
// suffices to remove resources.
func (s Sensitivity) downFactor() float64 {
	switch s {
	case SensitivityHigh:
		return 0.75
	case SensitivityLow:
		return 1.25
	default:
		return 1
	}
}

// Thresholds categorize the continuous signals. The wait thresholds are the
// values the paper derives from service-wide production telemetry
// (Section 4.1, Figure 6); package fleet recomputes them from the synthetic
// fleet, and these defaults match that calibration's output for the default
// catalog.
type Thresholds struct {
	// UtilLow and UtilHigh split utilization (fraction of allocation) into
	// LOW (< UtilLow), MEDIUM, HIGH (≥ UtilHigh).
	UtilLow, UtilHigh float64
	// WaitLowMs and WaitHighMs split the per-interval wait magnitude for
	// each physical resource into LOW/MEDIUM/HIGH. Derived from the
	// separation between the wait distributions at low and high
	// utilization.
	WaitLowMs, WaitHighMs resource.Vector
	// WaitPctSignificant is the share of total waits above which a
	// resource's percentage waits are SIGNIFICANT.
	WaitPctSignificant float64
	// CorrSignificant is the |Spearman ρ| above which wait–latency
	// correlation marks a resource as the likely bottleneck.
	CorrSignificant float64
	// ExtremeUtil and ExtremeWaitFactor define the two-step scale-up rule:
	// utilization ≥ ExtremeUtil with waits ≥ ExtremeWaitFactor·WaitHighMs
	// estimates demand two container steps up.
	ExtremeUtil       float64
	ExtremeWaitFactor float64
}

// DefaultThresholds returns thresholds calibrated against the default
// container catalog and engine model (regenerable via fleet.Calibrate).
func DefaultThresholds() Thresholds {
	return Thresholds{
		UtilLow:  0.30,
		UtilHigh: 0.70,
		WaitLowMs: resource.Vector{
			resource.CPU:    8_000,
			resource.Memory: 5_000,
			resource.DiskIO: 8_000,
			resource.LogIO:  8_000,
		},
		WaitHighMs: resource.Vector{
			resource.CPU:    120_000,
			resource.Memory: 60_000,
			resource.DiskIO: 120_000,
			resource.LogIO:  120_000,
		},
		WaitPctSignificant: 0.30,
		CorrSignificant:    0.60,
		ExtremeUtil:        0.95,
		ExtremeWaitFactor:  3,
	}
}

// Validate checks internal consistency.
func (t Thresholds) Validate() error {
	if !(0 <= t.UtilLow && t.UtilLow < t.UtilHigh && t.UtilHigh <= 1) {
		return fmt.Errorf("estimator: utilization thresholds [%v, %v] invalid", t.UtilLow, t.UtilHigh)
	}
	for _, k := range resource.Kinds {
		if t.WaitLowMs[k] < 0 || t.WaitHighMs[k] <= t.WaitLowMs[k] {
			return fmt.Errorf("estimator: wait thresholds for %v invalid: low=%v high=%v", k, t.WaitLowMs[k], t.WaitHighMs[k])
		}
	}
	if t.WaitPctSignificant <= 0 || t.WaitPctSignificant >= 1 {
		return fmt.Errorf("estimator: wait-pct threshold %v invalid", t.WaitPctSignificant)
	}
	if t.CorrSignificant <= 0 || t.CorrSignificant > 1 {
		return fmt.Errorf("estimator: correlation threshold %v invalid", t.CorrSignificant)
	}
	if t.ExtremeUtil < t.UtilHigh || t.ExtremeUtil > 1 {
		return fmt.Errorf("estimator: extreme utilization %v invalid", t.ExtremeUtil)
	}
	if t.ExtremeWaitFactor < 1 {
		return fmt.Errorf("estimator: extreme wait factor %v invalid", t.ExtremeWaitFactor)
	}
	return nil
}

// utilLevel categorizes a utilization fraction.
func (t Thresholds) utilLevel(u float64) Level {
	switch {
	case u < t.UtilLow:
		return Low
	case u >= t.UtilHigh:
		return High
	default:
		return Medium
	}
}

// waitLevel categorizes a wait magnitude for resource k, with the
// sensitivity-adjusted factor applied to the HIGH threshold.
func (t Thresholds) waitLevel(k resource.Kind, waitMs, factor float64) Level {
	switch {
	case waitMs < t.WaitLowMs[k]:
		return Low
	case waitMs >= t.WaitHighMs[k]*factor:
		return High
	default:
		return Medium
	}
}
