package estimator

import (
	"testing"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// TestFreshnessGateBlocksStaleScaleUp covers the anti-overshoot rule: after
// a resize satisfies the demand, the windowed medians still scream HIGH for
// a few intervals, but the *current* interval shows no waits — the
// estimator must not keep scaling.
func TestFreshnessGateBlocksStaleScaleUp(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	var sig telemetry.Signals
	// Stale medians: HIGH utilization, HIGH waits, significant share.
	sig.Resources[resource.CPU].Utilization = 0.9
	sig.Resources[resource.CPU].WaitMs = 400_000
	sig.Resources[resource.CPU].WaitPct = 0.7
	sig.Resources[resource.CPU].PrevWaitMs = 400_000
	sig.Resources[resource.CPU].PrevUtilization = 0.9
	// Fresh reality: the resize worked, no one is waiting now.
	sig.Current.Utilization[resource.CPU] = 0.4
	sig.Current.WaitMs[telemetry.WaitCPU] = 100
	d := e.Estimate(sig)
	if d.Steps[resource.CPU] > 0 {
		t.Errorf("stale medians with a quiet current interval must not scale up: %v / %v", d.Steps, d.Explanations)
	}
}

// TestTwoIntervalFastPath covers the burst-onset rule: the medians have not
// caught up, but the last two intervals agree that waits exploded — the
// estimator reacts without waiting for the median.
func TestTwoIntervalFastPath(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	var sig telemetry.Signals
	// Medians still calm (burst started two intervals ago, window of 5).
	sig.Resources[resource.CPU].Utilization = 0.1
	sig.Resources[resource.CPU].WaitMs = 500
	sig.Resources[resource.CPU].WaitPct = 0.1
	// The two most recent intervals agree: saturation.
	sig.Resources[resource.CPU].PrevWaitMs = 500_000
	sig.Resources[resource.CPU].PrevUtilization = 0.95
	sig.Current.Utilization[resource.CPU] = 0.97
	sig.Current.WaitMs[telemetry.WaitCPU] = 600_000
	d := e.Estimate(sig)
	if d.Steps[resource.CPU] < 1 {
		t.Errorf("two consecutive saturated intervals should scale up: %v / %v", d.Steps, d.Explanations)
	}
}

// TestSingleOutlierIntervalIgnored: one spiked interval (current high, prev
// calm) must not trigger — that is the robustness the two-interval minimum
// buys.
func TestSingleOutlierIntervalIgnored(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	var sig telemetry.Signals
	sig.Resources[resource.CPU].Utilization = 0.1
	sig.Resources[resource.CPU].WaitMs = 500
	sig.Resources[resource.CPU].WaitPct = 0.1
	sig.Resources[resource.CPU].PrevWaitMs = 400 // previous interval calm
	sig.Resources[resource.CPU].PrevUtilization = 0.1
	sig.Current.Utilization[resource.CPU] = 0.99 // one wild interval
	sig.Current.WaitMs[telemetry.WaitCPU] = 900_000
	d := e.Estimate(sig)
	if d.Steps[resource.CPU] > 0 {
		t.Errorf("a single outlier interval must not scale up: %v / %v", d.Steps, d.Explanations)
	}
}

// TestMemoryFreshnessGate mirrors the queue gate for the memory rules.
func TestMemoryFreshnessGate(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	var sig telemetry.Signals
	sig.Resources[resource.Memory].WaitMs = 200_000
	sig.Resources[resource.Memory].WaitPct = 0.6
	sig.Resources[resource.Memory].PrevWaitMs = 200_000
	sig.Current.WaitMs[telemetry.WaitMemory] = 0 // page-ins finished
	d := e.Estimate(sig)
	if d.Steps[resource.Memory] > 0 {
		t.Errorf("quiet current memory waits must block the stale scale-up: %v", d.Steps)
	}
}
