package estimator

import (
	"strings"
	"testing"

	"daasscale/internal/resource"
	"daasscale/internal/stats"
	"daasscale/internal/telemetry"
)

func mustEstimator(t *testing.T, sens Sensitivity) *Estimator {
	t.Helper()
	e, err := New(DefaultThresholds(), sens)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// sigBuilder assembles telemetry.Signals for rule tests.
type sigBuilder struct{ s telemetry.Signals }

func newSig() *sigBuilder {
	b := &sigBuilder{}
	b.s.Window = 10
	b.s.Latency.P95Ms = 100
	return b
}

func (b *sigBuilder) util(k resource.Kind, u float64) *sigBuilder {
	b.s.Resources[k].Utilization = u
	b.s.Current.Utilization[k] = u // steady signal: current matches median
	return b
}

func (b *sigBuilder) wait(k resource.Kind, ms, pct float64) *sigBuilder {
	b.s.Resources[k].WaitMs = ms
	b.s.Resources[k].WaitPct = pct
	b.s.Current.WaitMs[telemetry.WaitClassFor(k)] = ms
	// Keep the current snapshot's wait shares consistent with pct by
	// booking the remainder as lock waits.
	if pct > 0 && pct < 1 {
		b.s.Current.WaitMs[telemetry.WaitLock] += ms/pct - ms
	}
	return b
}

func (b *sigBuilder) waitTrend(k resource.Kind, slope float64) *sigBuilder {
	b.s.Resources[k].WaitTrend = stats.Trend{Slope: slope, Significant: true}
	return b
}

func (b *sigBuilder) utilTrend(k resource.Kind, slope float64) *sigBuilder {
	b.s.Resources[k].UtilTrend = stats.Trend{Slope: slope, Significant: true}
	return b
}

func (b *sigBuilder) corr(k resource.Kind, rho float64) *sigBuilder {
	b.s.Resources[k].WaitLatencyCorr = rho
	return b
}

func (b *sigBuilder) latencyTrend(slope float64) *sigBuilder {
	b.s.Latency.Trend = stats.Trend{Slope: slope, Significant: true}
	return b
}

func (b *sigBuilder) build() telemetry.Signals { return b.s }

func TestLevelAndSensitivityStrings(t *testing.T) {
	if Low.String() != "LOW" || Medium.String() != "MEDIUM" || High.String() != "HIGH" {
		t.Error("level names wrong")
	}
	if Level(9).String() != "level(9)" {
		t.Error("unknown level name")
	}
	if SensitivityHigh.String() != "HIGH" || SensitivityMedium.String() != "MEDIUM" || SensitivityLow.String() != "LOW" {
		t.Error("sensitivity names wrong")
	}
	if Sensitivity(9).String() != "sensitivity(9)" {
		t.Error("unknown sensitivity name")
	}
}

func TestThresholdsValidate(t *testing.T) {
	good := DefaultThresholds()
	if err := good.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	cases := []func(*Thresholds){
		func(th *Thresholds) { th.UtilLow = 0.9 },
		func(th *Thresholds) { th.UtilHigh = 1.5 },
		func(th *Thresholds) { th.WaitHighMs[resource.CPU] = 1 },
		func(th *Thresholds) { th.WaitPctSignificant = 0 },
		func(th *Thresholds) { th.CorrSignificant = 2 },
		func(th *Thresholds) { th.ExtremeUtil = 0.5 },
		func(th *Thresholds) { th.ExtremeWaitFactor = 0.5 },
	}
	for i, mutate := range cases {
		th := DefaultThresholds()
		mutate(&th)
		if err := th.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
		if _, err := New(th, SensitivityMedium); err == nil {
			t.Errorf("case %d: New should reject invalid thresholds", i)
		}
	}
}

func TestRuleA_HighUtilHighWaitSignificant(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	sig := newSig().util(resource.CPU, 0.85).wait(resource.CPU, 200_000, 0.6).build()
	d := e.Estimate(sig)
	if d.Steps[resource.CPU] != 1 {
		t.Errorf("rule (a) should fire: steps=%v expl=%v", d.Steps, d.Explanations)
	}
	if !strings.Contains(strings.Join(d.Explanations, ";"), "utilization HIGH, waits HIGH") {
		t.Errorf("explanation missing: %v", d.Explanations)
	}
}

func TestRuleB_TrendCompensatesInsignificantPct(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	// Waits high in magnitude but a small share of total (e.g. lock-heavy
	// workload); a rising utilization trend confirms demand.
	with := newSig().util(resource.DiskIO, 0.8).wait(resource.DiskIO, 200_000, 0.1).
		utilTrend(resource.DiskIO, 0.05).build()
	if d := e.Estimate(with); d.Steps[resource.DiskIO] != 1 {
		t.Errorf("rule (b) should fire: %v", d.Steps)
	}
	// Without the trend, the same signals must NOT fire (weak evidence).
	without := newSig().util(resource.DiskIO, 0.8).wait(resource.DiskIO, 200_000, 0.1).build()
	if d := e.Estimate(without); d.Steps[resource.DiskIO] != 0 {
		t.Errorf("rule (b) without trend should not fire: %v", d.Steps)
	}
}

func TestRuleC_MediumWaitsNeedTrend(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	with := newSig().util(resource.CPU, 0.8).wait(resource.CPU, 50_000, 0.5).
		waitTrend(resource.CPU, 1000).build()
	if d := e.Estimate(with); d.Steps[resource.CPU] != 1 {
		t.Errorf("rule (c) should fire: %v", d.Steps)
	}
	without := newSig().util(resource.CPU, 0.8).wait(resource.CPU, 50_000, 0.5).build()
	if d := e.Estimate(without); d.Steps[resource.CPU] != 0 {
		t.Errorf("rule (c) without trend should not fire: %v", d.Steps)
	}
}

func TestRuleD_CorrelationBottleneck(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	// Moderate utilization, medium waits, but waits track degrading
	// latency with a dominant wait share: the bottleneck rule.
	with := newSig().util(resource.DiskIO, 0.5).wait(resource.DiskIO, 50_000, 0.7).
		corr(resource.DiskIO, 0.85).latencyTrend(2).build()
	if d := e.Estimate(with); d.Steps[resource.DiskIO] != 1 {
		t.Errorf("rule (d) should fire: %v / %v", d.Steps, d.Explanations)
	}
	// Same but latency not degrading: no action.
	stable := newSig().util(resource.DiskIO, 0.5).wait(resource.DiskIO, 50_000, 0.7).
		corr(resource.DiskIO, 0.85).build()
	if d := e.Estimate(stable); d.Steps[resource.DiskIO] != 0 {
		t.Errorf("rule (d) without degrading latency should not fire: %v", d.Steps)
	}
}

func TestRuleE_ExtremeTwoSteps(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	sig := newSig().util(resource.CPU, 0.99).wait(resource.CPU, 1_000_000, 0.8).build()
	d := e.Estimate(sig)
	if d.Steps[resource.CPU] != 2 {
		t.Errorf("extreme rule should estimate 2 steps: %v", d.Steps)
	}
	if d.MaxStep() != 2 || !d.AnyHigh() {
		t.Errorf("MaxStep/AnyHigh wrong: %+v", d)
	}
}

func TestHighUtilizationAloneDoesNotScaleUp(t *testing.T) {
	// The paper's headline: utilization alone is not demand.
	e := mustEstimator(t, SensitivityMedium)
	sig := newSig().util(resource.CPU, 0.9).wait(resource.CPU, 1_000, 0.05).build()
	d := e.Estimate(sig)
	if d.Steps[resource.CPU] != 0 {
		t.Errorf("high utilization with low waits must not scale up: %v / %v", d.Steps, d.Explanations)
	}
}

func TestHighWaitsAloneDoNotScaleUp(t *testing.T) {
	// Large waits with low utilization and no confirming signal: noise.
	e := mustEstimator(t, SensitivityMedium)
	sig := newSig().util(resource.CPU, 0.1).wait(resource.CPU, 200_000, 0.1).build()
	d := e.Estimate(sig)
	if d.Steps[resource.CPU] > 0 {
		t.Errorf("waits alone must not scale up: %v", d.Steps)
	}
}

func TestLowDemandScaleDown(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	sig := newSig().
		util(resource.CPU, 0.05).wait(resource.CPU, 100, 0.02).
		util(resource.DiskIO, 0.08).wait(resource.DiskIO, 50, 0.02).
		util(resource.LogIO, 0.02).wait(resource.LogIO, 10, 0.01).
		util(resource.Memory, 0.9).wait(resource.Memory, 0, 0).
		build()
	d := e.Estimate(sig)
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO, resource.LogIO} {
		if d.Steps[k] != -1 {
			t.Errorf("%v should scale down: %v", k, d.Steps)
		}
	}
	// Memory never scales down via rules.
	if d.Steps[resource.Memory] != 0 {
		t.Errorf("memory must not scale down without ballooning: %v", d.Steps)
	}
	if !d.AllLow() {
		t.Errorf("AllLow should hold: %+v", d.Steps)
	}
}

func TestScaleDownBlockedByRisingTrend(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	sig := newSig().
		util(resource.CPU, 0.05).wait(resource.CPU, 100, 0.02).
		utilTrend(resource.CPU, 0.02).
		build()
	d := e.Estimate(sig)
	if d.Steps[resource.CPU] == -1 {
		t.Error("rising trend must block scale-down (early burst signal)")
	}
}

func TestMemoryHighDemand(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	sig := newSig().util(resource.Memory, 0.99).wait(resource.Memory, 100_000, 0.5).build()
	d := e.Estimate(sig)
	if d.Steps[resource.Memory] != 1 {
		t.Errorf("memory waits HIGH+significant should scale up: %v / %v", d.Steps, d.Explanations)
	}
	extreme := newSig().util(resource.Memory, 0.99).wait(resource.Memory, 500_000, 0.8).build()
	if d := e.Estimate(extreme); d.Steps[resource.Memory] != 2 {
		t.Errorf("extreme memory pressure should scale 2: %v", d.Steps)
	}
}

func TestSensitivityShiftsThresholds(t *testing.T) {
	// Signals just below the MEDIUM-sensitivity HIGH-wait threshold: HIGH
	// sensitivity scales up, LOW does not.
	sig := newSig().util(resource.CPU, 0.8).wait(resource.CPU, 100_000, 0.5).build()
	if d := mustEstimator(t, SensitivityMedium).Estimate(sig); d.Steps[resource.CPU] != 0 {
		t.Errorf("medium sensitivity should not fire at 100k waits: %v", d.Steps)
	}
	if d := mustEstimator(t, SensitivityHigh).Estimate(sig); d.Steps[resource.CPU] != 1 {
		t.Errorf("high sensitivity should fire at 100k waits: %v", d.Steps)
	}
	// Scale-down: utilization just above the LOW threshold; LOW sensitivity
	// scales down anyway, HIGH does not.
	idle := newSig().util(resource.CPU, 0.33).wait(resource.CPU, 100, 0.02).build()
	if d := mustEstimator(t, SensitivityLow).Estimate(idle); d.Steps[resource.CPU] != -1 {
		t.Errorf("low sensitivity should scale down at 33%% util: %v", d.Steps)
	}
	if d := mustEstimator(t, SensitivityHigh).Estimate(idle); d.Steps[resource.CPU] != -1 {
		// 0.33 > 0.30·0.75: high sensitivity holds.
		if d.Steps[resource.CPU] != 0 {
			t.Errorf("unexpected: %v", d.Steps)
		}
	}
}

func TestExplanationsPresent(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	sig := newSig().util(resource.CPU, 0.85).wait(resource.CPU, 200_000, 0.6).
		util(resource.DiskIO, 0.05).wait(resource.DiskIO, 10, 0.01).build()
	d := e.Estimate(sig)
	if len(d.Explanations) < 2 {
		t.Fatalf("want explanations for both the scale-up and scale-down: %v", d.Explanations)
	}
	joined := strings.Join(d.Explanations, ";")
	if !strings.Contains(joined, "scale-up cpu") || !strings.Contains(joined, "scale-down diskio") {
		t.Errorf("explanations incomplete: %v", d.Explanations)
	}
}

func TestStatesExposed(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	sig := newSig().util(resource.CPU, 0.85).wait(resource.CPU, 200_000, 0.6).build()
	d := e.Estimate(sig)
	st := d.States[resource.CPU]
	if st.Utilization != High || st.Wait != High || !st.PctSignificant {
		t.Errorf("states not categorized: %+v", st)
	}
	if st.Kind != resource.CPU {
		t.Errorf("state kind = %v", st.Kind)
	}
}

func TestAccessors(t *testing.T) {
	e := mustEstimator(t, SensitivityHigh)
	if e.Sensitivity() != SensitivityHigh {
		t.Error("sensitivity accessor wrong")
	}
	if e.Thresholds().UtilHigh != DefaultThresholds().UtilHigh {
		t.Error("thresholds accessor wrong")
	}
}
