package estimator

import (
	"strings"
	"testing"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// extremeCPU builds signals that estimate a 2-step CPU scale-up on a
// pristine window (the saturation rule).
func extremeCPU() *sigBuilder {
	return newSig().util(resource.CPU, 0.99).wait(resource.CPU, 1_000_000, 0.8)
}

// degradedQuality returns a Quality whose score is below the degraded
// threshold but above the severe one.
func degradedQuality(t *testing.T) telemetry.Quality {
	t.Helper()
	q := telemetry.Quality{IntervalsSeen: 10, Sanitized: 2}
	if !q.Degraded() || q.Severe() {
		t.Fatalf("fixture is not degraded-but-not-severe: %v", q)
	}
	return q
}

// severeQuality returns a Quality below the severe threshold.
func severeQuality(t *testing.T) telemetry.Quality {
	t.Helper()
	q := telemetry.Quality{IntervalsSeen: 10, Sanitized: 6, Gaps: 3}
	if !q.Severe() {
		t.Fatalf("fixture is not severe: %v", q)
	}
	return q
}

// TestDegradedClampsTwoStepsToOne: on a degraded window the saturation
// rule's 2-step estimate is clamped to a single step, with an explanation.
func TestDegradedClampsTwoStepsToOne(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	sig := extremeCPU().build()
	if d := e.Estimate(sig); d.Steps[resource.CPU] != 2 {
		t.Fatalf("pristine baseline should estimate 2 steps: %v", d.Steps)
	}

	sig.Quality = degradedQuality(t)
	d := e.Estimate(sig)
	if d.Steps[resource.CPU] != 1 {
		t.Fatalf("degraded window: Steps[CPU] = %d, want 1", d.Steps[resource.CPU])
	}
	found := false
	for _, ex := range d.Explanations {
		if strings.Contains(ex, "telemetry degraded") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no degradation explanation in %v", d.Explanations)
	}
}

// TestDegradedKeepsSingleStepsAndScaleDowns: the widened no-op band only
// clamps the extremes; ordinary 1-step and −1-step estimates pass through.
func TestDegradedKeepsSingleStepsAndScaleDowns(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	up := newSig().util(resource.CPU, 0.9).wait(resource.CPU, 150_000, 0.8).build()
	if d := e.Estimate(up); d.Steps[resource.CPU] != 1 {
		t.Fatalf("baseline should estimate 1 step: %v", d.Steps)
	}
	up.Quality = degradedQuality(t)
	if d := e.Estimate(up); d.Steps[resource.CPU] != 1 {
		t.Fatalf("degraded window must keep the 1-step estimate: %v", d.Steps)
	}

	down := newSig().build() // idle signals → scale-down everywhere possible
	base := e.Estimate(down)
	down.Quality = degradedQuality(t)
	if d := e.Estimate(down); d.Steps != base.Steps {
		t.Fatalf("degraded window changed scale-down estimates: %v vs %v", d.Steps, base.Steps)
	}
}

// TestSevereHoldsEverything: a severely degraded window yields no resize in
// either direction.
func TestSevereHoldsEverything(t *testing.T) {
	e := mustEstimator(t, SensitivityMedium)
	sig := extremeCPU().build()
	sig.Quality = severeQuality(t)
	d := e.Estimate(sig)
	for k, s := range d.Steps {
		if s != 0 {
			t.Fatalf("severe window: Steps[%v] = %d, want 0", resource.Kind(k), s)
		}
	}
	found := false
	for _, ex := range d.Explanations {
		if strings.Contains(ex, "severely degraded") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no severe-degradation explanation in %v", d.Explanations)
	}
}

// TestDegradedNeverExceedsTwoSteps is the acceptance bound: whatever the
// quality, the estimate never recommends a resize beyond ±2 steps — and on
// degraded windows, beyond ±1.
func TestDegradedNeverExceedsTwoSteps(t *testing.T) {
	e := mustEstimator(t, SensitivityHigh)
	for _, q := range []telemetry.Quality{
		{},
		{IntervalsSeen: 10},
		degradedQuality(t),
		severeQuality(t),
		{IntervalsSeen: 3, Gaps: 10, Sanitized: 40, Duplicates: 3, OutOfOrder: 3},
	} {
		sig := extremeCPU().build()
		sig.Quality = q
		d := e.Estimate(sig)
		for k, s := range d.Steps {
			if s > 2 || s < -1 {
				t.Fatalf("quality %v: Steps[%v] = %d out of [-1, 2]", q, resource.Kind(k), s)
			}
			if q.Degraded() && s > 1 {
				t.Fatalf("degraded quality %v: Steps[%v] = %d, want ≤ 1", q, resource.Kind(k), s)
			}
		}
	}
}
