package estimator

import (
	"encoding/json"
	"fmt"
	"io"

	"daasscale/internal/resource"
)

// thresholdsJSON is the serialized form of Thresholds: resource-keyed maps
// instead of positional arrays, so files stay readable and stable if the
// resource order ever changes.
type thresholdsJSON struct {
	UtilLow            float64            `json:"util_low"`
	UtilHigh           float64            `json:"util_high"`
	WaitLowMs          map[string]float64 `json:"wait_low_ms"`
	WaitHighMs         map[string]float64 `json:"wait_high_ms"`
	WaitPctSignificant float64            `json:"wait_pct_significant"`
	CorrSignificant    float64            `json:"corr_significant"`
	ExtremeUtil        float64            `json:"extreme_util"`
	ExtremeWaitFactor  float64            `json:"extreme_wait_factor"`
}

// WriteJSON serializes the thresholds (e.g. to persist a fleet calibration
// for the next service deployment, the paper's automated re-tuning path).
func (t Thresholds) WriteJSON(w io.Writer) error {
	out := thresholdsJSON{
		UtilLow:            t.UtilLow,
		UtilHigh:           t.UtilHigh,
		WaitLowMs:          map[string]float64{},
		WaitHighMs:         map[string]float64{},
		WaitPctSignificant: t.WaitPctSignificant,
		CorrSignificant:    t.CorrSignificant,
		ExtremeUtil:        t.ExtremeUtil,
		ExtremeWaitFactor:  t.ExtremeWaitFactor,
	}
	for _, k := range resource.Kinds {
		out.WaitLowMs[k.String()] = t.WaitLowMs[k]
		out.WaitHighMs[k.String()] = t.WaitHighMs[k]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadThresholdsJSON parses and validates thresholds written by WriteJSON.
func ReadThresholdsJSON(r io.Reader) (Thresholds, error) {
	var in thresholdsJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return Thresholds{}, fmt.Errorf("estimator: decoding thresholds: %w", err)
	}
	t := Thresholds{
		UtilLow:            in.UtilLow,
		UtilHigh:           in.UtilHigh,
		WaitPctSignificant: in.WaitPctSignificant,
		CorrSignificant:    in.CorrSignificant,
		ExtremeUtil:        in.ExtremeUtil,
		ExtremeWaitFactor:  in.ExtremeWaitFactor,
	}
	for _, k := range resource.Kinds {
		lo, ok := in.WaitLowMs[k.String()]
		if !ok {
			return Thresholds{}, fmt.Errorf("estimator: thresholds missing wait_low_ms for %v", k)
		}
		hi, ok := in.WaitHighMs[k.String()]
		if !ok {
			return Thresholds{}, fmt.Errorf("estimator: thresholds missing wait_high_ms for %v", k)
		}
		t.WaitLowMs[k] = lo
		t.WaitHighMs[k] = hi
	}
	if err := t.Validate(); err != nil {
		return Thresholds{}, err
	}
	return t, nil
}
