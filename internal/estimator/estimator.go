package estimator

import (
	"fmt"
	"math"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// ResourceState is the categorized view of one resource's signals — the
// discrete domain the rules run on, exposed for diagnostics and
// explanations.
type ResourceState struct {
	Kind           resource.Kind
	Utilization    Level
	Wait           Level
	PctSignificant bool
	UtilRising     bool
	WaitRising     bool
	UtilFalling    bool
	WaitFalling    bool
	CorrBottleneck bool
	// EffectiveUtilization and EffectiveWaitMs are the values the levels
	// were computed from: the windowed median, or the two-interval
	// confirmation when a burst onset outruns the median.
	EffectiveUtilization float64
	EffectiveWaitMs      float64
}

// Demand is the estimator's output: per-resource container-step changes in
// {−1, 0, +1, +2}, the categorized states behind them, and explanations of
// the rule path taken (Section 4's "explanation" feature).
type Demand struct {
	// Steps holds the estimated step change per physical resource.
	Steps [resource.NumKinds]int
	// States holds the categorized signals per resource.
	States [resource.NumKinds]ResourceState
	// Explanations describes, per decision, the rule that fired.
	Explanations []string
}

// MaxStep returns the largest scale-up step across resources (0 when no
// resource has high demand).
func (d Demand) MaxStep() int {
	m := 0
	for _, s := range d.Steps {
		if s > m {
			m = s
		}
	}
	return m
}

// AllLow reports whether every resource's demand estimate is a scale-down
// (every step is −1... except memory, which can only be scaled down via
// ballooning, so a 0 memory step is accepted).
func (d Demand) AllLow() bool {
	for k, s := range d.Steps {
		if resource.Kind(k) == resource.Memory {
			if s > 0 {
				return false
			}
			continue
		}
		if s >= 0 {
			return false
		}
	}
	return true
}

// AnyHigh reports whether any resource shows high demand.
func (d Demand) AnyHigh() bool { return d.MaxStep() > 0 }

// Estimator combines the telemetry manager's signals into per-resource
// demand estimates via the rule hierarchy of Section 4.2/4.3.
type Estimator struct {
	th   Thresholds
	sens Sensitivity
}

// New creates an estimator with the given thresholds and sensitivity knob.
func New(th Thresholds, sens Sensitivity) (*Estimator, error) {
	if err := th.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{th: th, sens: sens}, nil
}

// Thresholds returns the active thresholds.
func (e *Estimator) Thresholds() Thresholds { return e.th }

// Sensitivity returns the configured sensitivity.
func (e *Estimator) Sensitivity() Sensitivity { return e.sens }

// classify reduces one resource's signals to the categorical domain.
func (e *Estimator) classify(k resource.Kind, sig *telemetry.Signals) ResourceState {
	rs := sig.Resources[k]
	up := e.sens.upFactor()
	// Burst-onset fast path: the windowed medians lag a sudden load change
	// by half the window. When the two most recent intervals agree (their
	// minimum is itself robust to a single outlier), classification uses
	// whichever view is larger.
	wc := telemetry.WaitClassFor(k)
	effWait := math.Max(rs.WaitMs, math.Min(sig.Current.WaitMs[wc], rs.PrevWaitMs))
	effUtil := math.Max(rs.Utilization, math.Min(sig.Current.Utilization[k], rs.PrevUtilization))
	effPct := math.Max(rs.WaitPct, sig.Current.WaitPct(wc))
	st := ResourceState{
		Kind:                 k,
		Utilization:          e.th.utilLevel(effUtil),
		Wait:                 e.th.waitLevel(k, effWait, up),
		PctSignificant:       effPct >= e.th.WaitPctSignificant,
		UtilRising:           rs.UtilTrend.Significant && rs.UtilTrend.Slope > 0,
		WaitRising:           rs.WaitTrend.Significant && rs.WaitTrend.Slope > 0,
		UtilFalling:          rs.UtilTrend.Significant && rs.UtilTrend.Slope < 0,
		WaitFalling:          rs.WaitTrend.Significant && rs.WaitTrend.Slope < 0,
		CorrBottleneck:       rs.WaitLatencyCorr >= e.th.CorrSignificant,
		EffectiveUtilization: effUtil,
		EffectiveWaitMs:      effWait,
	}
	return st
}

// Estimate runs the rule hierarchy over the signals and returns the demand
// estimate. The memory dimension only ever scales up here; scaling memory
// down requires the ballooning protocol (see Balloon).
//
// When the signals' Quality is degraded — the telemetry window behind them
// had gaps, sanitized counters or delivery anomalies — the estimator widens
// its no-op band: the two-step extreme estimates are clamped to one step,
// and a severely degraded window yields no resize at all (acting boldly on
// damaged evidence risks both overshoot and working-set eviction).
func (e *Estimator) Estimate(sig telemetry.Signals) Demand {
	var d Demand
	for _, k := range resource.Kinds {
		st := e.classify(k, &sig)
		d.States[k] = st
		var step int
		var why string
		if k == resource.Memory {
			step, why = e.memoryRules(st, &sig)
		} else {
			step, why = e.queueRules(st, &sig)
		}
		d.Steps[k] = step
		if why != "" {
			d.Explanations = append(d.Explanations, why)
		}
	}
	e.degrade(&d, sig.Quality)
	return d
}

// degrade applies the graceful-degradation policy to an estimate
// (DESIGN.md §9): pristine quality changes nothing.
func (e *Estimator) degrade(d *Demand, q telemetry.Quality) {
	if !q.Degraded() {
		return
	}
	if q.Severe() {
		held := false
		for k := range d.Steps {
			if d.Steps[k] != 0 {
				d.Steps[k] = 0
				held = true
			}
		}
		if held {
			d.Explanations = append(d.Explanations,
				fmt.Sprintf("telemetry severely degraded (%v): holding every resource", q))
		}
		return
	}
	for k := range d.Steps {
		if d.Steps[k] > 1 {
			d.Steps[k] = 1
			d.Explanations = append(d.Explanations,
				fmt.Sprintf("telemetry degraded (%v): clamping %s scale-up to one step", q, resource.Kind(k)))
		}
	}
}

// queueRules implements the high/low-demand rules for CPU, disk I/O and
// log I/O (the queued resources). The illustrative scenarios of Section 4.2:
//
//	(a) utilization HIGH ∧ waits HIGH ∧ percentage waits SIGNIFICANT,
//	(b) utilization HIGH ∧ waits HIGH ∧ ¬SIGNIFICANT ∧ rising trend,
//	(c) utilization HIGH ∧ waits MEDIUM ∧ SIGNIFICANT ∧ rising trend,
//	(d) waits ≥ MEDIUM ∧ SIGNIFICANT ∧ wait–latency correlation strong
//	    ∧ latency degrading (the bottleneck rule),
//	(e) the extreme case of (a) at saturation estimates two steps.
//
// Every rule combines at least two signals; a weak signal (e.g. waits only
// MEDIUM) requires an additional confirming signal (trend or correlation).
func (e *Estimator) queueRules(st ResourceState, sig *telemetry.Signals) (int, string) {
	rs := sig.Resources[st.Kind]
	latencyDegrading := sig.Latency.Trend.Significant && sig.Latency.Trend.Slope > 0
	name := st.Kind.String()

	// Freshness gate: windowed medians lag a container resize by a few
	// intervals. Demand is only "unmet" if the *latest* interval still
	// shows waits — otherwise the resize already satisfied it and acting
	// on the stale median would overshoot.
	wc := telemetry.WaitClassFor(st.Kind)
	currentlyWaiting := sig.Current.WaitMs[wc] >= e.th.WaitLowMs[st.Kind]
	if !currentlyWaiting {
		// No scale-up possible; fall through to the low-demand test.
		down := e.sens.downFactor()
		if rs.Utilization < e.th.UtilLow*down &&
			rs.WaitMs < e.th.WaitLowMs[st.Kind]*down &&
			!st.UtilRising && !st.WaitRising {
			return -1, fmt.Sprintf("scale-down %s: utilization LOW, waits LOW, no rising trend", name)
		}
		return 0, ""
	}

	// (e) Extreme saturation: two steps.
	if st.EffectiveUtilization >= e.th.ExtremeUtil &&
		st.EffectiveWaitMs >= e.th.WaitHighMs[st.Kind]*e.th.ExtremeWaitFactor*e.sens.upFactor() &&
		st.PctSignificant {
		return 2, fmt.Sprintf("scale-up %s by 2: saturation (utilization %.0f%% ≥ %.0f%%, waits far above HIGH, significant wait share)",
			name, st.EffectiveUtilization*100, e.th.ExtremeUtil*100)
	}
	// (a)
	if st.Utilization == High && st.Wait == High && st.PctSignificant {
		return 1, fmt.Sprintf("scale-up %s: utilization HIGH, waits HIGH, significant wait share", name)
	}
	// (b)
	if st.Utilization == High && st.Wait == High && !st.PctSignificant && (st.UtilRising || st.WaitRising) {
		return 1, fmt.Sprintf("scale-up %s: utilization HIGH, waits HIGH, rising trend", name)
	}
	// (c)
	if st.Utilization == High && st.Wait == Medium && st.PctSignificant && (st.UtilRising || st.WaitRising) {
		return 1, fmt.Sprintf("scale-up %s: utilization HIGH, waits MEDIUM but significant and rising", name)
	}
	// (d) bottleneck correlation: waits need not be HIGH if they track the
	// degrading latency and dominate the wait mix.
	if st.Wait >= Medium && st.PctSignificant && st.CorrBottleneck && latencyDegrading {
		return 1, fmt.Sprintf("scale-up %s: waits correlate with degrading latency (bottleneck)", name)
	}

	// Low demand: utilization LOW, waits LOW, and no rising trend in
	// either (Section 4.3's mirror-image tests).
	down := e.sens.downFactor()
	if rs.Utilization < e.th.UtilLow*down &&
		rs.WaitMs < e.th.WaitLowMs[st.Kind]*down &&
		!st.UtilRising && !st.WaitRising {
		return -1, fmt.Sprintf("scale-down %s: utilization LOW, waits LOW, no rising trend", name)
	}
	return 0, ""
}

// memoryRules detects high memory demand. Memory differs from the queued
// resources: its "utilization" (cache fill) is almost always high, so
// demand shows as memory/buffer-pool waits and as disk I/O pressure caused
// by misses. Low memory demand is never concluded here — only the
// ballooning protocol can establish it (Section 4.3).
func (e *Estimator) memoryRules(st ResourceState, sig *telemetry.Signals) (int, string) {
	rs := sig.Resources[resource.Memory]
	latencyDegrading := sig.Latency.Trend.Significant && sig.Latency.Trend.Slope > 0
	// Freshness gate, as in queueRules.
	if sig.Current.WaitMs[telemetry.WaitMemory] < e.th.WaitLowMs[resource.Memory] {
		return 0, ""
	}

	// Extreme: the working set is far from fitting; page-in stalls dominate.
	if rs.WaitMs >= e.th.WaitHighMs[resource.Memory]*e.th.ExtremeWaitFactor*e.sens.upFactor() && st.PctSignificant {
		return 2, "scale-up memory by 2: buffer-pool waits far above HIGH with significant share"
	}
	if st.Wait == High && st.PctSignificant {
		return 1, "scale-up memory: buffer-pool waits HIGH with significant wait share"
	}
	if st.Wait == High && (st.WaitRising || latencyDegrading) {
		return 1, "scale-up memory: buffer-pool waits HIGH and rising"
	}
	if st.Wait == Medium && st.PctSignificant && st.CorrBottleneck && latencyDegrading {
		return 1, "scale-up memory: buffer-pool waits correlate with degrading latency"
	}
	return 0, ""
}
