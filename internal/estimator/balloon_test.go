package estimator

import (
	"testing"

	"daasscale/internal/telemetry"
)

// balloonSig builds signals with the fields the balloon controller reads.
func balloonSig(usedMB, readsMedian, readsCurrent, p95 float64) telemetry.Signals {
	var s telemetry.Signals
	s.MemoryUsedMB = usedMB
	s.PhysicalReadsMedian = readsMedian
	s.Current.PhysicalReads = readsCurrent
	s.Current.P95LatencyMs = p95
	s.Latency.P95Ms = p95
	return s
}

func TestBalloonStateString(t *testing.T) {
	if BalloonIdle.String() != "idle" || BalloonActive.String() != "active" || BalloonCooldown.String() != "cooldown" {
		t.Error("state names wrong")
	}
	if BalloonState(9).String() != "balloonstate(9)" {
		t.Error("unknown state name wrong")
	}
}

func TestBalloonStartsOnlyWhenSafe(t *testing.T) {
	b := NewBalloon(DefaultBalloonConfig())
	// Not safe: other resources busy.
	if d := b.Step(balloonSig(4000, 100, 100, 50), false, 2048, 0); d.TargetMB != 0 {
		t.Errorf("probe started while unsafe: %+v", d)
	}
	// Already below the next smaller container: nothing to probe.
	if d := b.Step(balloonSig(1500, 100, 100, 50), true, 2048, 0); d.TargetMB != 0 {
		t.Errorf("probe started below goal line: %+v", d)
	}
	// Disabled when no smaller container exists.
	if d := b.Step(balloonSig(4000, 100, 100, 50), true, 0, 0); d.TargetMB != 0 {
		t.Errorf("probe started with no smaller container: %+v", d)
	}
	// Safe: probe starts, first target below current use.
	d := b.Step(balloonSig(4000, 100, 100, 50), true, 2048, 0)
	if d.TargetMB <= 0 || d.TargetMB >= 4000 {
		t.Fatalf("probe target = %v", d.TargetMB)
	}
	if b.State() != BalloonActive {
		t.Errorf("state = %v", b.State())
	}
}

func TestBalloonSucceedsWithoutIOIncrease(t *testing.T) {
	b := NewBalloon(DefaultBalloonConfig())
	used := 4000.0
	sig := balloonSig(used, 100, 100, 50)
	d := b.Step(sig, true, 2048, 0)
	steps := 0
	for !d.MemoryDemandLow {
		if d.Aborted {
			t.Fatalf("probe aborted unexpectedly: %s", d.Note)
		}
		if d.TargetMB > 0 {
			used = d.TargetMB // engine follows the target; I/O stays flat
		}
		d = b.Step(balloonSig(used, 100, 100, 50), true, 2048, 0)
		steps++
		if steps > 100 {
			t.Fatal("probe never concluded")
		}
	}
	if b.State() != BalloonCooldown {
		t.Errorf("state after success = %v", b.State())
	}
	if b.TargetMB() != 0 {
		t.Errorf("target not cleared: %v", b.TargetMB())
	}
}

func TestBalloonAbortsOnIOIncrease(t *testing.T) {
	b := NewBalloon(DefaultBalloonConfig())
	d := b.Step(balloonSig(4000, 100, 100, 50), true, 2048, 0)
	if d.TargetMB == 0 {
		t.Fatal("probe did not start")
	}
	// Next interval: reads spike (working set no longer fits).
	d = b.Step(balloonSig(d.TargetMB, 100, 5000, 50), true, 2048, 0)
	if !d.Aborted {
		t.Fatalf("probe should abort on I/O spike: %+v", d)
	}
	if d.TargetMB != 0 {
		t.Errorf("abort must clear the target: %v", d.TargetMB)
	}
	if b.State() != BalloonCooldown {
		t.Errorf("state after abort = %v", b.State())
	}
}

func TestBalloonAbortsOnLatencyDamage(t *testing.T) {
	b := NewBalloon(DefaultBalloonConfig())
	sig := balloonSig(4000, 100, 100, 50)
	d := b.Step(sig, true, 2048, 0)
	// Latency doubles while reads stay flat (e.g. memory-stall pathway).
	spiked := balloonSig(d.TargetMB, 100, 100, 120)
	spiked.Latency.P95Ms = 50 // windowed median still the baseline
	d = b.Step(spiked, true, 2048, 0)
	if !d.Aborted {
		t.Fatalf("probe should abort on latency damage: %+v", d)
	}
}

func TestBalloonAbortsWhenNoLongerSafe(t *testing.T) {
	b := NewBalloon(DefaultBalloonConfig())
	b.Step(balloonSig(4000, 100, 100, 50), true, 2048, 0)
	d := b.Step(balloonSig(3600, 100, 100, 50), false, 2048, 0)
	if !d.Aborted {
		t.Fatalf("probe should abort when workload picks up: %+v", d)
	}
}

func TestBalloonCooldownBlocksRestart(t *testing.T) {
	cfg := DefaultBalloonConfig()
	cfg.CooldownIntervals = 3
	b := NewBalloon(cfg)
	b.Step(balloonSig(4000, 100, 100, 50), true, 2048, 0)
	b.Step(balloonSig(3600, 100, 9000, 50), true, 2048, 0) // abort
	for i := 0; i < 3; i++ {
		if d := b.Step(balloonSig(4000, 100, 100, 50), true, 2048, 0); d.TargetMB != 0 {
			t.Fatalf("probe restarted during cooldown (i=%d): %+v", i, d)
		}
	}
	// Cooldown over: probe may start again.
	if d := b.Step(balloonSig(4000, 100, 100, 50), true, 2048, 0); d.TargetMB == 0 {
		t.Error("probe should restart after cooldown")
	}
}

func TestBalloonZeroBaselineUsesSlack(t *testing.T) {
	// An all-cached workload has ≈0 physical reads; the absolute slack must
	// keep the probe from aborting on trivial read counts.
	b := NewBalloon(DefaultBalloonConfig())
	d := b.Step(balloonSig(4000, 0, 0, 50), true, 2048, 0)
	if d.TargetMB == 0 {
		t.Fatal("probe did not start")
	}
	// With the default config, the slack is 500 absolute reads plus 8% of
	// the next container's per-interval I/O capacity.
	d = b.Step(balloonSig(d.TargetMB, 0, 400, 50), true, 2048, 200)
	if d.Aborted {
		t.Errorf("400 reads within slack should not abort: %+v", d)
	}
	d = b.Step(balloonSig(b.TargetMB(), 0, 5000, 50), true, 2048, 200)
	if !d.Aborted {
		t.Errorf("5000 reads beyond slack should abort: %+v", d)
	}
}

func TestNewBalloonFixesBadStepFraction(t *testing.T) {
	b := NewBalloon(BalloonConfig{StepFraction: -1})
	if b.cfg.StepFraction <= 0 || b.cfg.StepFraction >= 1 {
		t.Errorf("step fraction not defaulted: %v", b.cfg.StepFraction)
	}
}
