package core_test

import (
	"fmt"

	"daasscale/internal/core"
	"daasscale/internal/engine"
	"daasscale/internal/resource"
	"daasscale/internal/workload"
)

// Example shows the closed loop at its smallest: a tenant states a latency
// goal, telemetry flows in once per billing interval, and the controller
// reacts to a load surge with an explained container resize.
func Example() {
	cat := resource.LockStepCatalog()
	w := workload.CPUIO(workload.CPUIOConfig{CPUWeight: 1, WorkingSetMB: 512, HotspotFraction: 1})
	eng, err := engine.New(w, cat.AtStep(1), 1, engine.Options{WarmStart: true, NoiseProb: -1})
	if err != nil {
		fmt.Println(err)
		return
	}
	scaler, err := core.New(core.Config{
		Catalog: cat,
		Initial: cat.AtStep(1),
		Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: 80},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for minute := 0; minute < 10; minute++ {
		load := 30.0
		if minute >= 4 {
			load = 300 // the surge: ~2.7 cores of CPU demand on a 1-core container
		}
		for tick := 0; tick < eng.TicksPerInterval(); tick++ {
			eng.Tick(load)
		}
		d := scaler.Observe(eng.EndInterval())
		if d.Changed {
			fmt.Printf("minute %d: %s\n", minute, d.Explanations[len(d.Explanations)-1])
			eng.SetContainer(d.Target)
		}
	}
	fmt.Printf("final container: %s\n", scaler.Container().Name)
	// Output:
	// minute 5: container C1 → C3 (cost 15 → 45)
	// minute 6: container C3 → C4 (cost 45 → 60)
	// final container: C4
}
