package core

import (
	"strings"
	"testing"

	"daasscale/internal/budget"
	"daasscale/internal/estimator"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

var cat = resource.LockStepCatalog()

func mustScaler(t *testing.T, cfg Config) *AutoScaler {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = cat
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// snap builds a snapshot for the scaler's current container.
type snapOpts struct {
	cpuUtil, cpuWaits float64
	ioUtil, ioWaits   float64
	memWaits          float64
	lockWaits         float64
	p95               float64
	reads             float64
	memUsed           float64
}

func makeSnap(a *AutoScaler, interval int, o snapOpts) telemetry.Snapshot {
	c := a.Container()
	var s telemetry.Snapshot
	s.Interval = interval
	s.Container = c.Name
	s.Step = c.Step
	s.Cost = c.Cost
	s.Utilization[resource.CPU] = o.cpuUtil
	s.Utilization[resource.DiskIO] = o.ioUtil
	s.Utilization[resource.Memory] = 0.9
	s.WaitMs[telemetry.WaitCPU] = o.cpuWaits
	s.WaitMs[telemetry.WaitDiskIO] = o.ioWaits
	s.WaitMs[telemetry.WaitMemory] = o.memWaits
	s.WaitMs[telemetry.WaitLock] = o.lockWaits
	s.WaitMs[telemetry.WaitSystem] = 500
	s.AvgLatencyMs = o.p95 / 2
	s.P95LatencyMs = o.p95
	s.PhysicalReads = o.reads
	s.MemoryUsedMB = o.memUsed
	s.Transactions = 1000
	s.OfferedRPS = 100
	return s
}

func drive(a *AutoScaler, n int, o snapOpts) Decision {
	var d Decision
	for i := 0; i < n; i++ {
		d = a.Observe(makeSnap(a, i, o))
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing catalog should fail")
	}
	if _, err := New(Config{Catalog: cat, Goal: LatencyGoal{Kind: GoalP95}}); err == nil {
		t.Error("goal without target should fail")
	}
	bad := estimator.DefaultThresholds()
	bad.UtilHigh = 5
	if _, err := New(Config{Catalog: cat, Thresholds: bad}); err == nil {
		t.Error("invalid thresholds should fail")
	}
}

func TestDefaults(t *testing.T) {
	a := mustScaler(t, Config{})
	if a.Container().Name != "C0" {
		t.Errorf("initial container = %s, want smallest", a.Container().Name)
	}
	if a.Budget() == nil || a.Budget().Available() == 0 {
		t.Error("default budget should be unlimited")
	}
}

func TestGoalKindLatencyStateStrings(t *testing.T) {
	if GoalNone.String() != "none" || GoalP95.String() != "p95" || GoalAvg.String() != "avg" {
		t.Error("goal kind names")
	}
	if GoalKind(9).String() != "goalkind(9)" {
		t.Error("unknown goal kind")
	}
	if LatencyUnknown.String() != "unknown" || LatencyGood.String() != "GOOD" || LatencyBad.String() != "BAD" {
		t.Error("latency state names")
	}
	if LatencyState(9).String() != "latencystate(9)" {
		t.Error("unknown latency state")
	}
}

func TestWarmupHoldsSteady(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(4)})
	d := a.Observe(makeSnap(a, 0, snapOpts{cpuUtil: 0.99, cpuWaits: 1e6, p95: 5000}))
	if d.Changed {
		t.Error("no decision should be taken before minimum telemetry history")
	}
	if !strings.Contains(strings.Join(d.Explanations, ";"), "warming up") {
		t.Errorf("explanations = %v", d.Explanations)
	}
}

func TestDemandDrivenScaleUpNoGoal(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(2)})
	d := drive(a, 4, snapOpts{cpuUtil: 0.9, cpuWaits: 400_000, p95: 300})
	if !d.Changed || a.Container().Step <= 2 {
		t.Errorf("demand should scale up without a goal: %s (%+v)", a.Container().Name, d.Demand.Steps)
	}
}

func TestGoalMetSuppressesScaleUp(t *testing.T) {
	// Section 2.3: if latency goals are met, allocate a smaller container
	// even if there is demand for a larger one.
	a := mustScaler(t, Config{Initial: cat.AtStep(2), Goal: LatencyGoal{GoalP95, 500}})
	d := drive(a, 6, snapOpts{cpuUtil: 0.9, cpuWaits: 400_000, p95: 100})
	if d.Changed || a.Container().Step != 2 {
		t.Errorf("goal met: demand must not scale up, at %s", a.Container().Name)
	}
	if d.Latency != LatencyGood {
		t.Errorf("latency state = %v", d.Latency)
	}
}

func TestGoalViolatedWithDemandScalesUp(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(2), Goal: LatencyGoal{GoalP95, 200}})
	d := drive(a, 4, snapOpts{cpuUtil: 0.9, cpuWaits: 400_000, p95: 900})
	if !d.Changed || a.Container().Step <= 2 {
		t.Errorf("BAD latency with demand should scale up: %s", a.Container().Name)
	}
	if d.Latency != LatencyBad {
		t.Errorf("latency state = %v", d.Latency)
	}
}

func TestGoalViolatedWithoutDemandHolds(t *testing.T) {
	// The Figure 13 mechanism: latency BAD but waits are all lock waits —
	// adding resources will not help, so Auto holds.
	a := mustScaler(t, Config{Initial: cat.AtStep(2), Goal: LatencyGoal{GoalP95, 200}})
	d := drive(a, 8, snapOpts{cpuUtil: 0.2, cpuWaits: 2_000, lockWaits: 5_000_000, p95: 900})
	if d.Changed || a.Container().Step != 2 {
		t.Errorf("lock-bound BAD latency must not scale up: %s", a.Container().Name)
	}
	if !strings.Contains(strings.Join(d.Explanations, ";"), "bottleneck beyond resources") {
		t.Errorf("expected bottleneck explanation: %v", d.Explanations)
	}
}

func TestScaleDownRequiresPersistence(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(5), DownHoldIntervals: 3, DisableBallooning: true})
	idle := snapOpts{cpuUtil: 0.02, cpuWaits: 10, ioUtil: 0.02, ioWaits: 10, p95: 20}
	// Warmup (3) + the first two scale-down estimates: no change yet.
	d := drive(a, 4, idle)
	if d.Changed {
		t.Fatalf("scale-down before hold expired (streak must reach 3)")
	}
	drive(a, 3, idle)
	if a.Container().Step != 4 {
		t.Errorf("persistent low demand should scale down one step: %s", a.Container().Name)
	}
}

func TestScaleDownBlockedWithoutLatencyHeadroom(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(5), Goal: LatencyGoal{GoalP95, 100}, DisableBallooning: true})
	// Latency at 90% of goal: above the 0.8 margin → no scale-down.
	d := drive(a, 10, snapOpts{cpuUtil: 0.02, cpuWaits: 10, p95: 90})
	if d.Changed {
		t.Errorf("scale-down without headroom should be blocked")
	}
	// With ample headroom it proceeds.
	a2 := mustScaler(t, Config{Initial: cat.AtStep(5), Goal: LatencyGoal{GoalP95, 100}, DisableBallooning: true})
	d = drive(a2, 10, snapOpts{cpuUtil: 0.02, cpuWaits: 10, p95: 20})
	if !d.Changed && a2.Container().Step == 5 {
		t.Errorf("scale-down with headroom should proceed: %s", a2.Container().Name)
	}
}

func TestBudgetConstrainsScaleUp(t *testing.T) {
	bud, err := budget.New(budget.Aggressive, 80*7+30, 80, 7, 270, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := mustScaler(t, Config{Initial: cat.AtStep(0), Budget: bud, Catalog: cat})
	// Saturation demand wants +2 steps → C2 (cost 30), but the bucket can
	// only burst to ≈37; C2 is affordable once, then the budget pins C0/C1.
	var constrained bool
	for i := 0; i < 30; i++ {
		d := a.Observe(makeSnap(a, i, snapOpts{cpuUtil: 0.99, cpuWaits: 2_000_000, p95: 4000}))
		if d.BudgetConstrained {
			constrained = true
		}
		if a.Container().Cost > d.BudgetAvailable+1e-9 && i > 0 {
			t.Fatalf("interval %d: chose container costing %v with only %v available",
				i, a.Container().Cost, d.BudgetAvailable)
		}
	}
	if !constrained {
		t.Error("budget should have constrained the scale-up at some point")
	}
	if a.Budget().Spent() > a.Budget().Total() {
		t.Errorf("budget exceeded: %v > %v", a.Budget().Spent(), a.Budget().Total())
	}
}

func TestMemoryScaleDownOnlyViaBalloon(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(4)}) // ballooning on
	idle := snapOpts{cpuUtil: 0.02, cpuWaits: 10, p95: 20, reads: 50, memUsed: 7000}
	var sawBalloonTarget bool
	var changedAt = -1
	cur := 7000.0
	for i := 0; i < 60 && changedAt < 0; i++ {
		o := idle
		o.memUsed = cur
		d := a.Observe(makeSnap(a, i, o))
		if d.BalloonTargetMB > 0 {
			sawBalloonTarget = true
			cur = d.BalloonTargetMB // engine follows the target, I/O flat
		}
		if d.Changed {
			changedAt = i
		}
	}
	if !sawBalloonTarget {
		t.Fatal("balloon probe never started")
	}
	if changedAt < 0 {
		t.Fatal("balloon success should have allowed a scale-down")
	}
	if a.Container().Step != 3 {
		t.Errorf("container = %s, want C3", a.Container().Name)
	}
}

func TestBalloonAbortPreventsScaleDown(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(4)})
	idle := snapOpts{cpuUtil: 0.02, cpuWaits: 10, p95: 20, reads: 50, memUsed: 7000}
	cur := 7000.0
	for i := 0; i < 40; i++ {
		o := idle
		o.memUsed = cur
		if cur < 6500 {
			o.reads = 50_000 // I/O explodes once the balloon bites
		}
		d := a.Observe(makeSnap(a, i, o))
		if d.BalloonTargetMB > 0 {
			cur = d.BalloonTargetMB
		} else {
			cur = 7000 // reverted
		}
		if d.Changed {
			t.Fatalf("scale-down happened despite balloon abort (interval %d)", i)
		}
	}
}

func TestAvgGoalUsed(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(2), Goal: LatencyGoal{GoalAvg, 100}})
	// avg = p95/2 in makeSnap; p95=300 → avg=150 > 100 → BAD.
	d := drive(a, 4, snapOpts{cpuUtil: 0.9, cpuWaits: 400_000, p95: 300})
	if d.Latency != LatencyBad {
		t.Errorf("avg goal should be violated: %v", d.Latency)
	}
	if !d.Changed {
		t.Error("should scale up")
	}
}

func TestExtremeDemandJumpsTwoSteps(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(2)})
	drive(a, 4, snapOpts{cpuUtil: 0.99, cpuWaits: 2_000_000, p95: 4000})
	if a.Container().Step < 4 {
		t.Errorf("extreme saturation should jump 2 steps: %s", a.Container().Name)
	}
}

func TestDecisionCarriesExplanations(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(2)})
	d := drive(a, 4, snapOpts{cpuUtil: 0.9, cpuWaits: 400_000, p95: 300})
	joined := strings.Join(d.Explanations, ";")
	if !strings.Contains(joined, "scale-up cpu") || !strings.Contains(joined, "container C") {
		t.Errorf("explanations incomplete: %v", d.Explanations)
	}
}
