// Package core implements the paper's end-to-end auto-scaling logic
// (Section 6): a closed loop that, at the end of every billing interval,
// combines the telemetry manager's robust signals, the resource demand
// estimator's per-resource step estimates, the tenant's optional latency
// goal and performance-sensitivity knob, and the budget manager's available
// budget into a container-sizing action.
//
// The control rules follow the paper:
//
//   - Scale up only when there is resource demand — a latency goal being
//     missed for reasons beyond resources (e.g. lock contention) never adds
//     resources.
//   - When a latency goal is met with margin, prefer a smaller container
//     even if there is demand for a larger one.
//   - Never exceed the available per-interval budget Bi; when the desired
//     container is unaffordable, fall back to the most expensive container
//     within Bi ("Scale-up constrained by budget").
//   - Low memory demand is only ever concluded through the ballooning
//     protocol.
package core

import (
	"fmt"

	"daasscale/internal/budget"
	"daasscale/internal/estimator"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// GoalKind selects which latency aggregate a goal constrains.
type GoalKind int

// Goal kinds.
const (
	// GoalNone disables latency-based decisions: scaling is purely
	// demand-driven.
	GoalNone GoalKind = iota
	// GoalP95 constrains the 95th-percentile latency.
	GoalP95
	// GoalAvg constrains the average latency.
	GoalAvg
)

// String names the goal kind.
func (g GoalKind) String() string {
	switch g {
	case GoalNone:
		return "none"
	case GoalP95:
		return "p95"
	case GoalAvg:
		return "avg"
	default:
		return fmt.Sprintf("goalkind(%d)", int(g))
	}
}

// LatencyGoal is the tenant's optional latency goal (Section 2.3). Goals
// are not performance guarantees — they are a knob to control cost.
type LatencyGoal struct {
	Kind GoalKind
	Ms   float64
}

// LatencyState is the categorized latency signal.
type LatencyState int

// Latency states.
const (
	// LatencyUnknown means no goal is set or no signals are available yet.
	LatencyUnknown LatencyState = iota
	// LatencyGood means the goal is met.
	LatencyGood
	// LatencyBad means the goal is violated.
	LatencyBad
)

// String names the latency state.
func (s LatencyState) String() string {
	switch s {
	case LatencyUnknown:
		return "unknown"
	case LatencyGood:
		return "GOOD"
	case LatencyBad:
		return "BAD"
	default:
		return fmt.Sprintf("latencystate(%d)", int(s))
	}
}

// Config assembles an AutoScaler.
type Config struct {
	// Catalog is the set of containers the DaaS offers. Required.
	Catalog *resource.Catalog
	// Initial is the container the tenant starts in. Zero value selects
	// the smallest container.
	Initial resource.Container
	// Goal is the optional latency goal.
	Goal LatencyGoal
	// Budget manages the period budget; nil means unlimited.
	Budget *budget.Manager
	// Sensitivity is the coarse performance-sensitivity knob.
	Sensitivity estimator.Sensitivity
	// Thresholds for the demand estimator; zero value uses defaults.
	Thresholds estimator.Thresholds
	// Window is the telemetry window in billing intervals (0 → 5). Short
	// windows react within minutes; medians keep them robust.
	Window int
	// DisableBallooning turns the low-memory-demand probe off (the
	// "No Ballooning" arm of Figure 14).
	DisableBallooning bool
	// Balloon tunes the probe; zero value uses defaults.
	Balloon estimator.BalloonConfig
	// DownHoldIntervals is how many consecutive scale-down estimates are
	// required before shrinking the container (hysteresis against load
	// oscillation). 0 → 3.
	DownHoldIntervals int
	// DownLatencyMargin requires the measured latency be below
	// goal·margin before a scale-down when a goal is set (headroom so the
	// smaller container does not immediately violate the goal). 0 → 0.8.
	DownLatencyMargin float64
}

// Decision is the auto-scaler's per-interval output.
type Decision struct {
	// Interval is the billing interval the decision applies to (the one
	// following the observed snapshot).
	Interval int
	// Target is the container to use next.
	Target resource.Container
	// Changed reports whether Target differs from the previous container.
	Changed bool
	// BalloonTargetMB, when > 0, is the memory target the engine should
	// enforce (the ballooning probe); 0 releases any target.
	BalloonTargetMB float64
	// Latency is the categorized latency state at decision time.
	Latency LatencyState
	// Demand is the estimator's output (states, steps, explanations).
	Demand estimator.Demand
	// BudgetAvailable is Bi at decision time.
	BudgetAvailable float64
	// BudgetConstrained reports that the desired container was not
	// affordable and a cheaper fallback was selected.
	BudgetConstrained bool
	// Explanations narrates the decision (estimator rule paths plus the
	// auto-scaling logic's own reasoning).
	Explanations []string
}

// headroomFit is the utilization the next smaller container may reach
// before a headroom scale-down is considered safe.
const headroomFit = 0.7

// queuesAllDown reports whether every queued (non-memory) resource has a
// scale-down estimate — the trigger condition for the ballooning probe.
func queuesAllDown(steps [resource.NumKinds]int) bool {
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO, resource.LogIO} {
		if steps[k] >= 0 {
			return false
		}
	}
	return steps[resource.Memory] <= 0
}

// AutoScaler is the closed-loop controller for one tenant.
type AutoScaler struct {
	cfg     Config
	cat     *resource.Catalog
	tm      *telemetry.Manager
	est     *estimator.Estimator
	bud     *budget.Manager
	balloon *estimator.Balloon
	cur     resource.Container

	downStreak int

	history []Decision
}

// historyCap bounds the retained decision history.
const historyCap = 256

// History returns the most recent decisions (oldest first, up to 256) — the
// audit trail behind the paper's "explanation" feature: operators and
// tenants can review why each resize happened (or did not).
func (a *AutoScaler) History() []Decision {
	return append([]Decision(nil), a.history...)
}

// record appends a decision to the bounded history.
func (a *AutoScaler) record(d Decision) {
	a.history = append(a.history, d)
	if len(a.history) > historyCap {
		a.history = a.history[len(a.history)-historyCap:]
	}
}

// New builds an AutoScaler from the configuration.
func New(cfg Config) (*AutoScaler, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("core: Config.Catalog is required")
	}
	if cfg.Thresholds == (estimator.Thresholds{}) {
		cfg.Thresholds = estimator.DefaultThresholds()
	}
	if cfg.Window == 0 {
		cfg.Window = 5
	}
	if cfg.DownHoldIntervals == 0 {
		cfg.DownHoldIntervals = 3
	}
	if cfg.DownLatencyMargin == 0 {
		// The sensitivity knob also shapes how much latency headroom a
		// scale-down requires: HIGH-sensitivity tenants give up savings for
		// safety margin, LOW-sensitivity tenants shave cost aggressively.
		switch cfg.Sensitivity {
		case estimator.SensitivityHigh:
			cfg.DownLatencyMargin = 0.70
		case estimator.SensitivityLow:
			cfg.DownLatencyMargin = 0.95
		default:
			cfg.DownLatencyMargin = 0.85
		}
	}
	if cfg.Balloon == (estimator.BalloonConfig{}) {
		cfg.Balloon = estimator.DefaultBalloonConfig()
	}
	if cfg.Goal.Kind != GoalNone && cfg.Goal.Ms <= 0 {
		return nil, fmt.Errorf("core: latency goal of kind %v requires a positive target, got %v", cfg.Goal.Kind, cfg.Goal.Ms)
	}
	est, err := estimator.New(cfg.Thresholds, cfg.Sensitivity)
	if err != nil {
		return nil, err
	}
	a := &AutoScaler{
		cfg:     cfg,
		cat:     cfg.Catalog,
		tm:      telemetry.NewManager(cfg.Window),
		est:     est,
		bud:     cfg.Budget,
		balloon: estimator.NewBalloon(cfg.Balloon),
		cur:     cfg.Initial,
	}
	if a.bud == nil {
		a.bud = budget.Unlimited()
	}
	if a.cur.Name == "" {
		a.cur = a.cat.Smallest()
	}
	return a, nil
}

// Container returns the currently selected container.
func (a *AutoScaler) Container() resource.Container { return a.cur }

// ForceContainer reconciles the controller with the management fabric's
// outcome: when the fabric refuses a resize (no server can host the
// requested container), the tenant keeps its old container and the
// controller must adopt that reality before the next decision.
func (a *AutoScaler) ForceContainer(c resource.Container) {
	a.cur = c
	a.downStreak = 0
}

// Budget returns the budget manager in use.
func (a *AutoScaler) Budget() *budget.Manager { return a.bud }

// latencyState categorizes latency: BAD when the windowed median violates
// the goal, or — the fast path for burst onsets — when the two most recent
// intervals both violate it (one interval alone is treated as noise).
func (a *AutoScaler) latencyState(sig telemetry.Signals) (LatencyState, float64) {
	switch a.cfg.Goal.Kind {
	case GoalP95:
		if sig.Latency.P95Ms > a.cfg.Goal.Ms ||
			(sig.Current.P95LatencyMs > a.cfg.Goal.Ms && sig.Latency.PrevP95Ms > a.cfg.Goal.Ms) {
			return LatencyBad, sig.Latency.P95Ms
		}
		return LatencyGood, sig.Latency.P95Ms
	case GoalAvg:
		if sig.Latency.AvgMs > a.cfg.Goal.Ms ||
			(sig.Current.AvgLatencyMs > a.cfg.Goal.Ms && sig.Latency.PrevAvgMs > a.cfg.Goal.Ms) {
			return LatencyBad, sig.Latency.AvgMs
		}
		return LatencyGood, sig.Latency.AvgMs
	default:
		return LatencyUnknown, sig.Latency.P95Ms
	}
}

// Observe ingests the telemetry snapshot of the billing interval that just
// completed, charges its cost to the budget, and returns the decision for
// the next interval. Every decision is retained in the audit history.
func (a *AutoScaler) Observe(s telemetry.Snapshot) Decision {
	d := a.observe(s)
	a.record(d)
	return d
}

func (a *AutoScaler) observe(s telemetry.Snapshot) Decision {
	// Charge the completed interval. The cost was validated against the
	// available budget when the container was chosen.
	_ = a.bud.Charge(s.Cost)

	a.tm.Observe(s)
	d := Decision{
		Interval:        s.Interval + 1,
		Target:          a.cur,
		BalloonTargetMB: a.balloon.TargetMB(),
		BudgetAvailable: a.bud.Available(),
	}
	// The budget is a hard constraint: when the bucket can no longer cover
	// the current container, downgrade immediately to the most expensive
	// affordable one — independent of any demand signal.
	if a.cur.Cost > a.bud.Available() {
		target, _ := a.cat.CheapestWithin(a.cur.Alloc, a.bud.Available())
		if target.Name != a.cur.Name {
			d.Changed = true
			d.BudgetConstrained = true
			d.Explanations = append(d.Explanations,
				fmt.Sprintf("budget exhausted (available %.0f < cost %.0f): downgrading %s → %s",
					a.bud.Available(), a.cur.Cost, a.cur.Name, target.Name))
			a.cur = target
			a.downStreak = 0
			d.Target = a.cur
			return d
		}
	}
	sig, ok := a.tm.Signals()
	if !ok {
		d.Explanations = append(d.Explanations, "warming up: not enough telemetry history")
		return d
	}

	latState, observed := a.latencyState(sig)
	d.Latency = latState
	degrading := sig.Latency.Trend.Significant && sig.Latency.Trend.Slope > 0
	demand := a.est.Estimate(sig)
	d.Demand = demand
	d.Explanations = append(d.Explanations, demand.Explanations...)

	steps := demand.Steps
	// Headroom scale-down (the paper's framing: estimate whether "the
	// demand can be met by a smaller container"): a queued resource with
	// LOW waits and no rising trend whose current usage fits the next
	// smaller container with room to spare is a scale-down candidate even
	// if its utilization is not LOW on the current (larger) container.
	curStep := a.cat.StepOf(a.cur)
	if curStep > 0 {
		next := a.cat.AtStep(curStep - 1)
		for _, k := range []resource.Kind{resource.CPU, resource.DiskIO, resource.LogIO} {
			st := demand.States[k]
			if steps[k] != 0 || st.Wait != estimator.Low || st.WaitRising || st.UtilRising {
				continue
			}
			usage := sig.Resources[k].Utilization * a.cur.Alloc[k]
			if next.Alloc[k] > 0 && usage <= headroomFit*next.Alloc[k] {
				steps[k] = -1
				d.Explanations = append(d.Explanations,
					fmt.Sprintf("scale-down %s: waits LOW and usage (%.0f) fits %s with headroom", k, usage, next.Name))
			}
		}
	}

	// Ballooning: probe low memory demand only when everything else is
	// quiet and latency goals are met (or no goal is set).
	if a.cfg.DisableBallooning {
		// Without ballooning, memory is scaled down naively whenever every
		// other resource's demand is low — the risky behaviour Figure 14
		// demonstrates (an incorrect low-memory estimate evicts the working
		// set and latency pays for it).
		if queuesAllDown(steps) && steps[resource.Memory] == 0 {
			steps[resource.Memory] = -1
		}
	} else {
		nextSmallerMB, nextSmallerIOPS := 0.0, 0.0
		if curStep > 0 {
			next := a.cat.AtStep(curStep - 1)
			nextSmallerMB = next.Alloc[resource.Memory]
			nextSmallerIOPS = next.Alloc[resource.DiskIO]
		}
		safe := queuesAllDown(steps) && latState != LatencyBad && !degrading
		// When the memory in use already fits comfortably inside the next
		// smaller container, no probe is needed: the cache would not even
		// have to shrink, so memory demand is trivially low.
		if safe && steps[resource.Memory] == 0 && nextSmallerMB > 0 &&
			sig.MemoryUsedMB <= nextSmallerMB*0.95 {
			steps[resource.Memory] = -1
			d.Explanations = append(d.Explanations,
				fmt.Sprintf("memory in use (%.0fMB) fits the next smaller container (%.0fMB): demand low without probing", sig.MemoryUsedMB, nextSmallerMB))
		} else {
			bd := a.balloon.Step(sig, safe, nextSmallerMB, nextSmallerIOPS)
			if bd.Note != "" {
				d.Explanations = append(d.Explanations, bd.Note)
			}
			d.BalloonTargetMB = bd.TargetMB
			if bd.MemoryDemandLow {
				steps[resource.Memory] = -1
			}
		}
	}

	// Latency gating (Section 6 and Section 2.3):
	//   latency BAD or degrading → scale up only on resource demand; hold
	//     otherwise (the bottleneck is beyond resources);
	//   latency GOOD with margin → smaller containers allowed, and demand
	//     for more resources does NOT scale up (cost saving);
	//   no goal → purely demand-driven in both directions.
	downOK := true
	switch latState {
	case LatencyBad:
		for _, k := range resource.Kinds {
			if steps[k] < 0 {
				steps[k] = 0 // never shrink while the goal is violated
			}
		}
		downOK = false
		if demand.AnyHigh() {
			d.Explanations = append(d.Explanations, fmt.Sprintf("latency BAD (%.0fms > goal %.0fms): scaling up for resource demand", observed, a.cfg.Goal.Ms))
		} else {
			d.Explanations = append(d.Explanations, fmt.Sprintf("latency BAD (%.0fms > goal %.0fms) but no resource demand: bottleneck beyond resources, holding", observed, a.cfg.Goal.Ms))
		}
	case LatencyGood:
		if degrading && demand.AnyHigh() {
			// Early action on a significant degrading trend.
			d.Explanations = append(d.Explanations, "latency GOOD but degrading with resource demand: scaling up early")
			downOK = false
		} else {
			// Goal met: suppress scale-ups, permit scale-downs with margin.
			for _, k := range resource.Kinds {
				if steps[k] > 0 {
					steps[k] = 0
				}
			}
			if observed > a.cfg.Goal.Ms*a.cfg.DownLatencyMargin {
				downOK = false // not enough headroom to risk a smaller container
			}
		}
	case LatencyUnknown:
		// Demand-driven in both directions.
	}

	// Scale-down hysteresis: require persistence.
	wantsDown := false
	for _, st := range steps {
		if st < 0 {
			wantsDown = true
		}
	}
	if wantsDown && downOK {
		a.downStreak++
	} else {
		a.downStreak = 0
	}
	if wantsDown && (!downOK || a.downStreak < a.cfg.DownHoldIntervals) {
		for _, k := range resource.Kinds {
			if steps[k] < 0 {
				steps[k] = 0
			}
		}
		wantsDown = false
	}

	// Build the desired resource vector from the per-resource steps
	// (Section 6: "The resource demand of each resource comprises the
	// desired container size").
	desired := a.cur.Alloc
	anyChange := false
	for _, k := range resource.Kinds {
		if steps[k] == 0 {
			continue
		}
		anyChange = true
		desired[k] = a.cat.AtStep(curStep + steps[k]).Alloc[k]
	}
	if !anyChange {
		return d
	}

	target, affordable := a.cat.CheapestWithin(desired, a.bud.Available())
	if !affordable {
		d.BudgetConstrained = true
		d.Explanations = append(d.Explanations, fmt.Sprintf("scale-up constrained by budget: available %.0f", a.bud.Available()))
	}
	if target.Name != a.cur.Name {
		d.Changed = true
		d.Explanations = append(d.Explanations, fmt.Sprintf("container %s → %s (cost %.0f → %.0f)", a.cur.Name, target.Name, a.cur.Cost, target.Cost))
		a.cur = target
		a.downStreak = 0
	}
	d.Target = a.cur
	return d
}
