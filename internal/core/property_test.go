package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daasscale/internal/budget"
	"daasscale/internal/estimator"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// TestAutoScalerInvariantsProperty drives the controller with arbitrary
// telemetry sequences and asserts the safety invariants that must hold no
// matter what the signals say:
//
//   - the selected container always comes from the catalog,
//   - the budget is never exceeded and the chosen container is affordable,
//   - container steps move by bounded amounts per interval,
//   - the controller never panics.
func TestAutoScalerInvariantsProperty(t *testing.T) {
	f := func(seed int64, budgeted bool, goalSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const intervals = 120
		var bud *budget.Manager
		if budgeted {
			total := float64(intervals)*cat.Smallest().Cost + rng.Float64()*5000
			var err error
			bud, err = budget.New(budget.Aggressive, total, intervals, cat.Smallest().Cost, cat.Largest().Cost, 0)
			if err != nil {
				return false
			}
		}
		goal := LatencyGoal{}
		switch goalSel % 3 {
		case 1:
			goal = LatencyGoal{GoalP95, 50 + rng.Float64()*400}
		case 2:
			goal = LatencyGoal{GoalAvg, 50 + rng.Float64()*400}
		}
		a, err := New(Config{
			Catalog:     cat,
			Initial:     cat.AtStep(rng.Intn(cat.LadderLen())),
			Goal:        goal,
			Budget:      bud,
			Sensitivity: estimator.Sensitivity(rng.Intn(3)),
		})
		if err != nil {
			return false
		}
		names := map[string]bool{}
		for _, c := range cat.Containers() {
			names[c.Name] = true
		}
		prevStep := a.Container().Step
		for i := 0; i < intervals; i++ {
			// Arbitrary, possibly absurd telemetry.
			c := a.Container()
			var s telemetry.Snapshot
			s.Interval = i
			s.Container = c.Name
			s.Step = c.Step
			s.Cost = c.Cost
			for _, k := range resource.Kinds {
				s.Utilization[k] = rng.Float64()
			}
			for wc := range s.WaitMs {
				if rng.Float64() < 0.4 {
					s.WaitMs[wc] = rng.Float64() * 5e6
				}
			}
			s.AvgLatencyMs = rng.Float64() * 2000
			s.P95LatencyMs = s.AvgLatencyMs * (1 + rng.Float64()*2)
			s.OfferedRPS = rng.Float64() * 800
			s.Transactions = s.OfferedRPS * 60
			s.MemoryUsedMB = rng.Float64() * 70000
			s.PhysicalReads = rng.Float64() * 1e5

			d := a.Observe(s)
			got := a.Container()
			if !names[got.Name] {
				t.Logf("container %q not in catalog", got.Name)
				return false
			}
			if bud != nil && got.Cost > d.BudgetAvailable+1e-9 && d.BudgetAvailable >= cat.Smallest().Cost {
				t.Logf("interval %d: cost %v exceeds available %v", i, got.Cost, d.BudgetAvailable)
				return false
			}
			if diff := got.Step - prevStep; diff > 2 || (diff < -1 && !d.BudgetConstrained) {
				// Upward moves are bounded by the estimator's 2-step cap;
				// downward moves by one step, except a budget-forced
				// downgrade which may drop several steps at once.
				t.Logf("interval %d: step jumped by %d", i, diff)
				return false
			}
			prevStep = got.Step
		}
		if bud != nil && bud.Spent() > bud.Total()+1e-6 {
			t.Logf("budget exceeded: %v > %v", bud.Spent(), bud.Total())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
