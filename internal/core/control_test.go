package core

import (
	"strings"
	"testing"

	"daasscale/internal/budget"
	"daasscale/internal/estimator"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

func mustBudget(t *testing.T, total float64, n int) *budget.Manager {
	t.Helper()
	b, err := budget.New(budget.Aggressive, total, n, cat.Smallest().Cost, cat.Largest().Cost, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// snapWith builds a snapshot with explicit utilization per resource and a
// latency trend shaped by the caller (used for the finer control-path
// tests).
func snapWith(a *AutoScaler, interval int, util map[resource.Kind]float64, waits map[telemetry.WaitClass]float64, p95 float64) telemetry.Snapshot {
	c := a.Container()
	var s telemetry.Snapshot
	s.Interval = interval
	s.Container = c.Name
	s.Step = c.Step
	s.Cost = c.Cost
	s.Utilization[resource.Memory] = 0.9
	for k, u := range util {
		s.Utilization[k] = u
	}
	for wc, w := range waits {
		s.WaitMs[wc] = w
	}
	s.WaitMs[telemetry.WaitSystem] += 500
	s.AvgLatencyMs = p95 / 2
	s.P95LatencyMs = p95
	s.Transactions = 1000
	s.OfferedRPS = 100
	s.MemoryUsedMB = 1500
	return s
}

func TestHeadroomScaleDown(t *testing.T) {
	// Utilization is MEDIUM (not LOW) on the current container, but the
	// usage would fit the next smaller container with headroom: the paper's
	// "demand can be met by a smaller container" estimate.
	a := mustScaler(t, Config{Initial: cat.AtStep(6), DisableBallooning: true})
	// C6 disk I/O = 1600 IOPS; utilization 0.40 = 640 IOPS; C5 has 1200:
	// 640 ≤ 0.7·1200 → candidate. CPU and log idle.
	o := map[resource.Kind]float64{resource.DiskIO: 0.40, resource.CPU: 0.05, resource.LogIO: 0.02}
	var changed bool
	for i := 0; i < 10 && !changed; i++ {
		d := a.Observe(snapWith(a, i, o, nil, 20))
		changed = d.Changed
		if changed && !strings.Contains(strings.Join(d.Explanations, ";"), "fits C5 with headroom") {
			t.Errorf("expected headroom explanation: %v", d.Explanations)
		}
	}
	if !changed || a.Container().Step != 5 {
		t.Fatalf("headroom scale-down should reach C5: %s", a.Container().Name)
	}
	// At C5 the same usage is 640/1200 = 0.53 > 0.7·(C4's 800)=560/800?
	// 640 > 560 → no further scale-down.
	for i := 10; i < 20; i++ {
		o2 := map[resource.Kind]float64{resource.DiskIO: 640.0 / 1200, resource.CPU: 0.05, resource.LogIO: 0.02}
		if d := a.Observe(snapWith(a, i, o2, nil, 20)); d.Changed {
			t.Fatalf("scale-down past the headroom limit: %s", a.Container().Name)
		}
	}
}

func TestHeadroomScaleDownBlockedByWaits(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(6), DisableBallooning: true})
	o := map[resource.Kind]float64{resource.DiskIO: 0.40}
	w := map[telemetry.WaitClass]float64{telemetry.WaitDiskIO: 50_000} // MEDIUM waits
	for i := 0; i < 10; i++ {
		if d := a.Observe(snapWith(a, i, o, w, 20)); d.Changed {
			t.Fatal("waits above LOW must block the headroom scale-down")
		}
	}
}

func TestDegradingTrendScalesUpEarly(t *testing.T) {
	// Latency still GOOD but trending toward the goal with real resource
	// demand behind it: the early-action path.
	a := mustScaler(t, Config{Initial: cat.AtStep(2), Goal: LatencyGoal{GoalP95, 400}})
	for i := 0; i < 8; i++ {
		p95 := 100 + 35*float64(i) // rising but below the goal
		u := map[resource.Kind]float64{resource.CPU: 0.8}
		w := map[telemetry.WaitClass]float64{telemetry.WaitCPU: 200_000 + 50_000*float64(i)}
		a.Observe(snapWith(a, i, u, w, p95))
	}
	if a.Container().Step <= 2 {
		t.Errorf("degrading latency with demand should scale up early: %s", a.Container().Name)
	}
}

func TestGoalAvgHonoursAveragePath(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(2), Goal: LatencyGoal{GoalAvg, 1000}})
	// p95 high but avg (p95/2 = 450) within the goal: latency GOOD.
	d := drive(a, 5, snapOpts{cpuUtil: 0.9, cpuWaits: 400_000, p95: 900})
	if d.Latency != LatencyGood {
		t.Errorf("avg goal met, state = %v", d.Latency)
	}
	if d.Changed {
		t.Error("goal met must suppress the scale-up")
	}
}

func TestPerDimensionCatalogPicksVariant(t *testing.T) {
	// With the Figure 1 catalog, CPU-only demand should buy a high-CPU
	// variant instead of the next full lock-step size.
	full := resource.DefaultCatalog()
	a := mustScaler(t, Config{Catalog: full, Initial: mustByName(t, full, "C4")})
	for i := 0; i < 6; i++ {
		u := map[resource.Kind]float64{resource.CPU: 0.92, resource.DiskIO: 0.2, resource.LogIO: 0.1}
		w := map[telemetry.WaitClass]float64{telemetry.WaitCPU: 400_000}
		a.Observe(snapWith(a, i, u, w, 500))
	}
	got := a.Container().Name
	if got != "C4-hicpu" {
		t.Errorf("CPU-only demand should pick the high-CPU variant, got %s", got)
	}
}

func mustByName(t *testing.T, cat *resource.Catalog, name string) resource.Container {
	t.Helper()
	c, ok := cat.ByName(name)
	if !ok {
		t.Fatalf("container %s missing", name)
	}
	return c
}

func TestBudgetExplanationPresent(t *testing.T) {
	bud := mustBudget(t, 80*7+10, 80)
	a := mustScaler(t, Config{Initial: cat.AtStep(0), Budget: bud})
	var saw bool
	for i := 0; i < 20 && !saw; i++ {
		d := a.Observe(makeSnap(a, i, snapOpts{cpuUtil: 0.99, cpuWaits: 2_000_000, p95: 4000}))
		if d.BudgetConstrained {
			saw = strings.Contains(strings.Join(d.Explanations, ";"), "constrained by budget")
		}
	}
	if !saw {
		t.Error("budget-constrained decisions must carry the explanation")
	}
}

func TestDecisionIntervalTracksSnapshots(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(3)})
	for i := 0; i < 5; i++ {
		d := a.Observe(makeSnap(a, i, snapOpts{cpuUtil: 0.2, p95: 30}))
		if d.Interval != i+1 {
			t.Fatalf("decision interval = %d, want %d", d.Interval, i+1)
		}
		if d.Target.Name != a.Container().Name {
			t.Fatalf("decision target out of sync")
		}
	}
}

func TestSensitivityMarginDefaults(t *testing.T) {
	cases := map[estimator.Sensitivity]float64{
		estimator.SensitivityLow:    0.95,
		estimator.SensitivityMedium: 0.85,
		estimator.SensitivityHigh:   0.70,
	}
	for sens, want := range cases {
		a := mustScaler(t, Config{Sensitivity: sens})
		if a.cfg.DownLatencyMargin != want {
			t.Errorf("%v margin = %v, want %v", sens, a.cfg.DownLatencyMargin, want)
		}
	}
	// Explicit override wins.
	a := mustScaler(t, Config{Sensitivity: estimator.SensitivityHigh, DownLatencyMargin: 0.5})
	if a.cfg.DownLatencyMargin != 0.5 {
		t.Errorf("explicit margin ignored: %v", a.cfg.DownLatencyMargin)
	}
}

func TestWindowConfigurationRespected(t *testing.T) {
	a := mustScaler(t, Config{Window: 8})
	if a.tm.Window() != 8 {
		t.Errorf("telemetry window = %d, want 8", a.tm.Window())
	}
}

func TestNoActionWithoutSignals(t *testing.T) {
	// Medium utilization, moderate waits, no trend: the hold path.
	a := mustScaler(t, Config{Initial: cat.AtStep(3)})
	for i := 0; i < 10; i++ {
		u := map[resource.Kind]float64{resource.CPU: 0.5, resource.DiskIO: 0.5}
		w := map[telemetry.WaitClass]float64{telemetry.WaitCPU: 30_000}
		if d := a.Observe(snapWith(a, i, u, w, 50)); d.Changed {
			t.Fatalf("hold path violated at interval %d", i)
		}
	}
	if a.Container().Step != 3 {
		t.Errorf("container drifted: %s", a.Container().Name)
	}
}

func TestDecisionHistory(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(2)})
	for i := 0; i < 6; i++ {
		a.Observe(makeSnap(a, i, snapOpts{cpuUtil: 0.9, cpuWaits: 400_000, p95: 300}))
	}
	h := a.History()
	if len(h) != 6 {
		t.Fatalf("history length = %d", len(h))
	}
	if h[0].Interval != 1 || h[5].Interval != 6 {
		t.Errorf("history order wrong: %d..%d", h[0].Interval, h[5].Interval)
	}
	var changed bool
	for _, d := range h {
		changed = changed || d.Changed
	}
	if !changed {
		t.Error("history should record the scale-ups this load caused")
	}
	// The returned slice is a copy.
	h[0].Interval = -99
	if a.History()[0].Interval == -99 {
		t.Error("History must return a copy")
	}
}

func TestDecisionHistoryBounded(t *testing.T) {
	a := mustScaler(t, Config{Initial: cat.AtStep(2)})
	for i := 0; i < 300; i++ {
		a.Observe(makeSnap(a, i, snapOpts{cpuUtil: 0.2, p95: 30}))
	}
	if got := len(a.History()); got != 256 {
		t.Errorf("history length = %d, want capped at 256", got)
	}
}
