// Package stats implements the statistically-robust estimators the paper's
// telemetry manager relies on (Section 3): median and quantile aggregation
// with a 50% breakdown point, the Theil–Sen estimator for robust linear
// trends (breakdown point 29%), and Spearman rank correlation for monotone
// dependence between signals. Non-robust counterparts (mean, least-squares
// regression, Pearson correlation) are included for the ablation benchmarks
// that demonstrate why the robust variants were chosen.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator is given fewer
// observations than it needs.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs. It has a breakdown point of 0: a
// single arbitrarily-large outlier moves it arbitrarily far.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (breakdown point 50%, the maximum
// possible). For an even count it returns the midpoint of the two central
// order statistics. xs is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. xs is not modified. Returns NaN
// for empty input and for q = NaN. It is a thin copying wrapper over QuantileSelect; hot
// paths that own their slice should call QuantileSelect directly.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	return QuantileSelect(s, q)
}

// QuantileSorted is Quantile for data already sorted ascending. It does not
// copy.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if math.IsNaN(q) {
		// NaN escapes both clamps below; pos would be NaN and the floor an
		// out-of-range index. The NaN quantile of any data is NaN.
		return math.NaN()
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MAD returns the median absolute deviation from the median, a robust
// dispersion measure.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return MedianInPlace(dev) // dev is private to this call

}

// Trend is the outcome of a trend estimation over a time series.
type Trend struct {
	// Slope is the estimated slope (units of y per unit of x).
	Slope float64
	// Intercept completes the trend line y = Slope·x + Intercept. For
	// Theil–Sen this is median(y) − Slope·median(x).
	Intercept float64
	// Significant reports whether the trend passed the sign-agreement test:
	// at least Alpha of the pairwise slopes share the slope's sign.
	Significant bool
	// Agreement is the largest fraction of pairwise slopes sharing a sign
	// (positive or negative); 0 when no pairs exist.
	Agreement float64
	// N is the number of observations used.
	N int
}

// DefaultTrendAlpha is the sign-agreement fraction the paper found to work
// well in practice (α = 70%, Section 3.2.1).
const DefaultTrendAlpha = 0.70

// TheilSen estimates a robust linear trend of ys over xs using the
// Theil–Sen estimator: the median of all pairwise slopes. The trend is
// marked Significant only when at least alpha of the pairwise slopes are
// positive, or at least alpha are negative (the paper's acceptance test).
// Pairs with identical x are skipped. Requires at least 3 points. It is a
// thin wrapper over TheilSenBuf with a throwaway slope buffer; hot paths
// should hold a buffer and call TheilSenBuf.
func TheilSen(xs, ys []float64, alpha float64) (Trend, error) {
	var buf []float64
	return TheilSenBuf(xs, ys, alpha, &buf)
}

// LeastSquares fits a line by ordinary least squares and reports R² as the
// Agreement field. It is the non-robust baseline for the trend ablation: a
// single large outlier can flip its slope (breakdown point 0). The trend is
// Significant when R² ≥ alpha.
func LeastSquares(xs, ys []float64, alpha float64) (Trend, error) {
	if len(xs) != len(ys) {
		return Trend{}, errors.New("stats: LeastSquares requires equal-length series")
	}
	n := len(xs)
	if n < 3 {
		return Trend{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Trend{}, ErrInsufficientData
	}
	slope := sxy / sxx
	var r2 float64
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return Trend{
		Slope:       slope,
		Intercept:   my - slope*mx,
		Significant: r2 >= alpha && slope != 0,
		Agreement:   r2,
		N:           n,
	}, nil
}

// Ranks assigns fractional ranks (1-based, ties get the average of the ranks
// they span), the standard ranking used by Spearman correlation. It is a
// thin wrapper over the scratch-reusing kernel behind SpearmanBuf.
func Ranks(xs []float64) []float64 {
	var idx []int
	return ranksInto(nil, xs, &idx)
}

// Pearson returns the Pearson product-moment correlation coefficient of xs
// and ys. Returns 0 when either series has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson requires equal-length series")
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns Spearman's rank correlation coefficient ρ: the Pearson
// coefficient computed on the ranks of xs and ys (Section 3.2.2). ρ detects
// any monotone dependence, not just linear, and ranking bounds the influence
// of outliers. It is a thin wrapper over SpearmanBuf with throwaway rank
// scratch; hot paths should hold a SpearmanScratch and call SpearmanBuf.
func Spearman(xs, ys []float64) (float64, error) {
	var sc SpearmanScratch
	return SpearmanBuf(xs, ys, &sc)
}

// CDFPoint is one point of an empirical cumulative distribution: Fraction of
// the observations are ≤ Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of xs evaluated at each distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var out []CDFPoint
	n := float64(len(s))
	for i := 0; i < len(s); {
		j := i
		for j+1 < len(s) && s[j+1] == s[i] {
			j++
		}
		out = append(out, CDFPoint{Value: s[i], Fraction: float64(j+1) / n})
		i = j + 1
	}
	return out
}

// CDFAt returns the fraction of observations ≤ v in the empirical CDF.
// cdf must be sorted ascending by Value (as CDF returns it); the lookup is
// a binary search, so per-threshold probes during fleet calibration are
// O(log n) instead of a linear scan.
func CDFAt(cdf []CDFPoint, v float64) float64 {
	i := sort.Search(len(cdf), func(j int) bool { return cdf[j].Value > v })
	if i == 0 {
		return 0
	}
	return cdf[i-1].Fraction
}

// Bucket is one bin of a histogram over [Lo, Hi) holding Count observations.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Histogram buckets xs into bins with the given upper edges. Values above
// the last edge land in a final overflow bucket with Hi = +Inf. Edges must
// be strictly increasing.
func Histogram(xs []float64, edges []float64) []Bucket {
	buckets := make([]Bucket, len(edges)+1)
	lo := math.Inf(-1)
	for i, e := range edges {
		buckets[i] = Bucket{Lo: lo, Hi: e}
		lo = e
	}
	buckets[len(edges)] = Bucket{Lo: lo, Hi: math.Inf(1)}
	for _, x := range xs {
		i := sort.SearchFloat64s(edges, x)
		if i < len(edges) && x == edges[i] {
			i++ // upper edge is exclusive: value equal to edge goes right
		}
		buckets[i].Count++
	}
	return buckets
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
