//go:build !race

package stats

// raceEnabled lets allocation-gate tests skip under the race detector,
// whose instrumentation perturbs allocation counts.
const raceEnabled = false
