// Sketch is the mergeable streaming quantile summary behind the fleet-scale
// calibration path. The exact kernels in select.go need every sample in RAM
// (QuantileSelect reorders a full slice); at 100k–1M tenants the fleet's
// wait samples and inter-event intervals no longer fit, so the streaming
// pipeline summarizes each shard into a Sketch and merges the shards.
//
// The sketch is DDSketch-style: logarithmically-spaced bins with a fixed
// relative accuracy α. A value x > 0 lands in bin ⌈log_γ(x)⌉ with
// γ = (1+α)/(1−α); the bin's representative 2γ^i/(γ+1) is within relative α
// of every value in the bin, so any quantile query returns a value within
// relative α of the corresponding exact order statistic (the property tests
// assert this against the sort-based oracles). Negative values mirror into
// a second bin store, near-zero values collapse into an exact zero bucket,
// and ±Inf occupy dedicated overflow buckets, so Add is total over float64
// except NaN (ignored and counted, matching the Quantile*(NaN) → NaN
// contract: a NaN never silently poisons a bin).
//
// Chosen over t-digest deliberately: a t-digest's centroids depend on
// insertion and merge order, so parallel shard merges are only
// approximately reproducible. Here Merge adds integer bin counts — exactly
// commutative and associative — so any shard size, worker count or merge
// tree produces bit-identical state, which is what lets the fleet pipeline
// promise "same bytes at any -workers" and makes checkpoint/resume exact.
package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultSketchAccuracy is the relative accuracy α used when callers pass
// a non-positive value: 1% relative error on quantile values, a few
// thousand bins for the dynamic ranges the fleet produces.
const DefaultSketchAccuracy = 0.01

// ErrSketchMismatch is returned when merging sketches with different
// accuracy parameters; their bins are not aligned and cannot be added.
var ErrSketchMismatch = errors.New("stats: sketch accuracy mismatch")

// sketchZeroEps is the magnitude below which values collapse into the exact
// zero bucket: the log-bin index of tiny magnitudes diverges, and fleet
// telemetry treats sub-nanosecond waits as zero anyway. Quantiles that land
// in the zero bucket return exactly 0 (absolute error ≤ sketchZeroEps).
const sketchZeroEps = 1e-9

// Sketch is a mergeable quantile summary with bounded relative error.
// The zero value is not usable; construct with NewSketch. Not safe for
// concurrent mutation.
type Sketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64

	pos, neg map[int32]uint64 // log-spaced bins for |x| > sketchZeroEps
	zero     uint64           // |x| ≤ sketchZeroEps
	posInf   uint64
	negInf   uint64

	count uint64 // all non-NaN observations
	nans  uint64 // NaN observations (ignored by quantiles)

	min, max float64 // exact extremes over non-NaN observations
}

// NewSketch builds a sketch with relative accuracy alpha (0 < alpha < 1);
// non-positive values select DefaultSketchAccuracy.
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 {
		alpha = DefaultSketchAccuracy
	}
	if alpha >= 1 {
		alpha = DefaultSketchAccuracy
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		pos:     make(map[int32]uint64),
		neg:     make(map[int32]uint64),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Accuracy returns the sketch's relative accuracy α.
func (s *Sketch) Accuracy() float64 { return s.alpha }

// Count returns the number of non-NaN observations.
func (s *Sketch) Count() uint64 { return s.count }

// NaNs returns the number of NaN observations that were ignored.
func (s *Sketch) NaNs() uint64 { return s.nans }

// Bins returns the number of occupied log-spaced bins — the sketch's memory
// footprint is proportional to this, independent of Count.
func (s *Sketch) Bins() int { return len(s.pos) + len(s.neg) }

// Min returns the exact minimum observation (NaN when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the exact maximum observation (NaN when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.max
}

// key maps a positive magnitude to its log-bin index.
func (s *Sketch) key(x float64) int32 {
	return int32(math.Ceil(math.Log(x) / s.lnGamma))
}

// representative returns the canonical value of bin i: 2γ^i/(γ+1), within
// relative α of every value the bin covers (γ^(i−1), γ^i].
func (s *Sketch) representative(i int32) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Add observes one value. NaN is counted separately and otherwise ignored;
// ±Inf land in dedicated overflow buckets.
func (s *Sketch) Add(x float64) { s.AddN(x, 1) }

// AddN observes a value n times (merge-grade bulk insert).
func (s *Sketch) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	if math.IsNaN(x) {
		s.nans += n
		return
	}
	s.count += n
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	switch {
	case math.IsInf(x, 1):
		s.posInf += n
	case math.IsInf(x, -1):
		s.negInf += n
	case x > sketchZeroEps:
		s.pos[s.key(x)] += n
	case x < -sketchZeroEps:
		s.neg[s.key(-x)] += n
	default:
		s.zero += n
	}
}

// Merge adds o's observations into s. Bin counts add exactly, so Merge is
// commutative and associative bit-for-bit: any merge order over any
// sharding of the same observations yields identical sketch state. o is not
// modified. Merging sketches with different accuracies fails.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("%w: %v vs %v", ErrSketchMismatch, s.alpha, o.alpha)
	}
	for k, c := range o.pos {
		s.pos[k] += c
	}
	for k, c := range o.neg {
		s.neg[k] += c
	}
	s.zero += o.zero
	s.posInf += o.posInf
	s.negInf += o.negInf
	s.count += o.count
	s.nans += o.nans
	if o.count > 0 {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	return nil
}

// Clone returns an independent copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := NewSketch(s.alpha)
	if err := c.Merge(s); err != nil {
		panic("stats: cloning cannot mismatch") // same alpha by construction
	}
	return c
}

// sortedKeys returns the map's keys ascending. Quantile walks bins in value
// order, so map iteration order never influences a query.
func sortedKeys(m map[int32]uint64) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Quantile returns a value within relative accuracy α of the exact
// q-quantile's order statistic: it locates the k-th order statistic with
// k = ⌈q·(n−1)⌉ and returns its bin's representative, clamped to the exact
// [Min, Max]. Returns NaN for an empty sketch and for q = NaN (the
// Quantile*(NaN) → NaN contract); q ≤ 0 and q ≥ 1 return the exact Min and
// Max.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	// 0-based target rank within the sorted observations.
	rank := uint64(math.Ceil(q * float64(s.count-1)))
	v, ok := s.valueAtRank(rank)
	if !ok {
		return s.max
	}
	// The bin representative can stick out past the exact extremes; the
	// extremes are tracked exactly, so clamp.
	return Clamp(v, s.min, s.max)
}

// CDFApprox returns an approximate empirical CDF: one point per occupied
// bin (value = the bin's lower value bound, fraction = cumulative count).
// The points are ascending in value and end at fraction 1, so they drop
// into every consumer of stats.CDF — at sketch resolution instead of
// sample resolution. Using each bin's lower bound makes CDFAt at any
// observed sample value include that sample's own bin, so probes at exact
// data points (the IEI multiples of 5 minutes, say) never read as zero.
func (s *Sketch) CDFApprox() []CDFPoint {
	if s.count == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, s.Bins()+3)
	var cum uint64
	total := float64(s.count)
	add := func(v float64, c uint64) {
		if c == 0 {
			return
		}
		cum += c
		out = append(out, CDFPoint{Value: v, Fraction: float64(cum) / total})
	}
	add(math.Inf(-1), s.negInf)
	negKeys := sortedKeys(s.neg)
	for i := len(negKeys) - 1; i >= 0; i-- { // most-negative value first
		// A negative bin with key k holds values in [-γ^k, -γ^(k-1));
		// emit the lower bound -γ^k (see the positive-bin comment below).
		add(-math.Pow(s.gamma, float64(negKeys[i])), s.neg[negKeys[i]])
	}
	add(0, s.zero)
	for _, k := range sortedKeys(s.pos) {
		// A positive bin with key k holds values in (γ^(k-1), γ^k]. Emit
		// the bin's lower value bound rather than its representative:
		// CDFAt includes points with Value ≤ the probe, so probing at any
		// observed sample value then always counts that sample's own bin
		// (the CDF never under-reports at observed values; the overcount
		// is at most the within-bin mass, i.e. sketch resolution). With a
		// representative, a probe at a value in the lower half of its bin
		// — e.g. an exact IEI of 5 minutes — would miss its own mass.
		add(math.Pow(s.gamma, float64(k-1)), s.pos[k])
	}
	add(math.Inf(1), s.posInf)
	return out
}

// valueAtRank walks the bins in ascending value order until the cumulative
// count covers the 0-based rank.
func (s *Sketch) valueAtRank(rank uint64) (float64, bool) {
	var cum uint64
	if s.negInf > 0 {
		cum += s.negInf
		if rank < cum {
			return math.Inf(-1), true
		}
	}
	negKeys := sortedKeys(s.neg)
	for i := len(negKeys) - 1; i >= 0; i-- {
		cum += s.neg[negKeys[i]]
		if rank < cum {
			return -s.representative(negKeys[i]), true
		}
	}
	if s.zero > 0 {
		cum += s.zero
		if rank < cum {
			return 0, true
		}
	}
	for _, k := range sortedKeys(s.pos) {
		cum += s.pos[k]
		if rank < cum {
			return s.representative(k), true
		}
	}
	if s.posInf > 0 {
		cum += s.posInf
		if rank < cum {
			return math.Inf(1), true
		}
	}
	return 0, false
}

// --- serialization ---------------------------------------------------------

// sketchMagic versions the binary encoding of a sketch.
const sketchMagic = uint32(0x444b5331) // "DKS1"

// MarshalBinary encodes the sketch deterministically: bins are written in
// sorted index order, floats as IEEE-754 bits, so equal sketch states
// produce equal bytes (the checkpoint-equivalence tests rely on this).
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 64+12*(len(s.pos)+len(s.neg)))
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u32(sketchMagic)
	f64(s.alpha)
	u64(s.count)
	u64(s.nans)
	u64(s.zero)
	u64(s.posInf)
	u64(s.negInf)
	f64(s.min)
	f64(s.max)
	writeBins := func(m map[int32]uint64) {
		keys := sortedKeys(m)
		u32(uint32(len(keys)))
		for _, k := range keys {
			u32(uint32(k))
			u64(m[k])
		}
	}
	writeBins(s.pos)
	writeBins(s.neg)
	return buf, nil
}

// UnmarshalBinary decodes a sketch encoded by MarshalBinary, replacing s's
// state entirely.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := binReader{buf: data}
	if magic := r.u32(); magic != sketchMagic {
		return fmt.Errorf("stats: bad sketch encoding magic %#x", magic)
	}
	alpha := r.f64()
	if alpha <= 0 || alpha >= 1 {
		return fmt.Errorf("stats: bad sketch accuracy %v", alpha)
	}
	*s = *NewSketch(alpha)
	s.count = r.u64()
	s.nans = r.u64()
	s.zero = r.u64()
	s.posInf = r.u64()
	s.negInf = r.u64()
	s.min = r.f64()
	s.max = r.f64()
	readBins := func(m map[int32]uint64) {
		n := int(r.u32())
		for i := 0; i < n && r.err == nil; i++ {
			k := int32(r.u32())
			m[k] = r.u64()
		}
	}
	readBins(s.pos)
	readBins(s.neg)
	if r.err != nil {
		return fmt.Errorf("stats: truncated sketch encoding: %w", r.err)
	}
	if len(r.buf) != r.off {
		return fmt.Errorf("stats: %d trailing bytes after sketch", len(r.buf)-r.off)
	}
	return nil
}

// binReader is a minimal error-latching little-endian reader.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = errors.New("unexpected end of data")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *binReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }
