package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantileNaNQ is the satellite bugfix regression: a NaN quantile
// request used to escape both range clamps in the interpolation (NaN
// comparisons are all false), producing a NaN position and an out-of-range
// index — a panic on the select path, garbage on the sorted path. Every
// quantile entry point must return NaN instead.
func TestQuantileNaNQ(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	nan := math.NaN()
	if got := Quantile(xs, nan); !math.IsNaN(got) {
		t.Errorf("Quantile(xs, NaN) = %v, want NaN", got)
	}
	if got := QuantileSelect(append([]float64(nil), xs...), nan); !math.IsNaN(got) {
		t.Errorf("QuantileSelect(xs, NaN) = %v, want NaN", got)
	}
	if got := QuantileSorted([]float64{1, 2, 3}, nan); !math.IsNaN(got) {
		t.Errorf("QuantileSorted(xs, NaN) = %v, want NaN", got)
	}
	if got := QuantileReference(xs, nan); !math.IsNaN(got) {
		t.Errorf("QuantileReference(xs, NaN) = %v, want NaN", got)
	}
	// Empty input stays NaN too, on every path.
	if got := QuantileSelect(nil, nan); !math.IsNaN(got) {
		t.Errorf("QuantileSelect(nil, NaN) = %v, want NaN", got)
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile(nil, 0.5) = %v, want NaN", got)
	}
}

// TestQuantileNaNValuesNoPanic: NaN *values* in the data must never panic
// any quantile path (the result is unspecified, the absence of a crash is
// the contract — the telemetry manager sanitizes NaNs before they reach
// these kernels).
func TestQuantileNaNValuesNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			if rng.Intn(3) == 0 {
				xs[i] = math.NaN()
			} else {
				xs[i] = rng.NormFloat64() * 100
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.95, 1, math.NaN()} {
			Quantile(xs, q)
			QuantileSelect(append([]float64(nil), xs...), q)
			QuantileReference(xs, q)
		}
		Median(xs)
		MedianInPlace(append([]float64(nil), xs...))
	}
}

// TestQuantileSelectNaNQBitIdenticalToReference: with q = NaN now handled,
// the fast path and the oracle must still agree bit-for-bit across finite
// inputs and the full q range including the repaired edge.
func TestQuantileSelectNaNQBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Round(rng.NormFloat64()*50) / 2 // frequent ties
		}
		q := rng.Float64()*1.4 - 0.2 // includes out-of-range q
		switch trial % 7 {
		case 0:
			q = math.NaN()
		case 1:
			q = 0
		case 2:
			q = 1
		}
		got := QuantileSelect(append([]float64(nil), xs...), q)
		want := QuantileReference(xs, q)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: QuantileSelect(xs, %v) = %v, reference %v", trial, q, got, want)
		}
	}
}
