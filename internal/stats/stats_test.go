package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 9}, 5},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestMedianBreakdownPoint(t *testing.T) {
	// The defining robustness property (Section 3): one arbitrarily large
	// outlier cannot move the median far, while it destroys the mean.
	base := []float64{10, 11, 12, 13, 14}
	withOutlier := append(append([]float64(nil), base...), 1e12)
	if m := Median(withOutlier); m > 20 {
		t.Errorf("median with outlier = %v, should stay near the bulk", m)
	}
	if m := Mean(withOutlier); m < 1e10 {
		t.Errorf("mean with outlier = %v, expected it to blow up", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 5.5 {
		t.Errorf("q0.5 = %v", got)
	}
	if got := Quantile(xs, 0.95); !almostEqual(got, 9.55, 1e-9) {
		t.Errorf("q0.95 = %v, want 9.55", got)
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile(nil) = %v, want NaN", got)
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 1} {
		if a, b := Quantile(xs, q), QuantileSorted(s, q); a != b {
			t.Errorf("q=%v: Quantile=%v QuantileSorted=%v", q, a, b)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 = Clamp(math.Abs(math.Mod(q1, 1)), 0, 1)
		q2 = Clamp(math.Abs(math.Mod(q2, 1)), 0, 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	// median = 2, |x-2| = {1,1,0,0,2,4,7}, median of that = 1
	if got := MAD(xs); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD(nil); !math.IsNaN(got) {
		t.Errorf("MAD(nil) = %v, want NaN", got)
	}
}

func TestTheilSenPerfectLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 2
	}
	tr, err := TheilSen(xs, ys, DefaultTrendAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tr.Slope, 3, 1e-9) || !almostEqual(tr.Intercept, 2, 1e-9) {
		t.Errorf("TheilSen slope=%v intercept=%v, want 3, 2", tr.Slope, tr.Intercept)
	}
	if !tr.Significant || tr.Agreement != 1 {
		t.Errorf("perfect line should be significant with agreement 1, got %+v", tr)
	}
}

func TestTheilSenRobustToOutlier(t *testing.T) {
	// 20 points on slope 1, then one catastrophic outlier. Theil–Sen keeps
	// the slope near 1; least squares is dragged away. This is ablation A1's
	// core claim.
	xs := make([]float64, 21)
	ys := make([]float64, 21)
	for i := 0; i < 20; i++ {
		xs[i] = float64(i)
		ys[i] = float64(i)
	}
	xs[20], ys[20] = 20, 1e6
	ts, err := TheilSen(xs, ys, DefaultTrendAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ts.Slope, 1, 0.2) {
		t.Errorf("Theil–Sen slope with outlier = %v, want ≈1", ts.Slope)
	}
	ls, err := LeastSquares(xs, ys, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Slope < 100 {
		t.Errorf("least-squares slope with outlier = %v, expected it to blow up", ls.Slope)
	}
}

func TestTheilSenNoTrendInNoise(t *testing.T) {
	// Pure alternating noise has ~50/50 slope signs: no significant trend.
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i)
		if i%2 == 0 {
			ys[i] = 10
		} else {
			ys[i] = -10
		}
	}
	tr, err := TheilSen(xs, ys, DefaultTrendAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Significant {
		t.Errorf("alternating noise should not yield a significant trend: %+v", tr)
	}
}

func TestTheilSenErrors(t *testing.T) {
	if _, err := TheilSen([]float64{1, 2}, []float64{1, 2}, 0.7); err != ErrInsufficientData {
		t.Errorf("short input err = %v", err)
	}
	if _, err := TheilSen([]float64{1, 2, 3}, []float64{1, 2}, 0.7); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := TheilSen([]float64{5, 5, 5}, []float64{1, 2, 3}, 0.7); err != ErrInsufficientData {
		t.Errorf("all-identical x err = %v", err)
	}
}

func TestLeastSquaresPerfectLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	tr, err := LeastSquares(xs, ys, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tr.Slope, 2, 1e-9) || !almostEqual(tr.Intercept, 1, 1e-9) {
		t.Errorf("LS slope=%v intercept=%v", tr.Slope, tr.Intercept)
	}
	if !tr.Significant || !almostEqual(tr.Agreement, 1, 1e-9) {
		t.Errorf("LS on perfect line should have R²=1: %+v", tr)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	// Ties share the average rank.
	got = Ranks([]float64{5, 5, 1, 9})
	want = []float64{2.5, 2.5, 1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks with ties = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman detects non-linear monotone dependence perfectly; Pearson
	// does not (Section 3.2.2's motivation).
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // strongly convex but monotone
	}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, 1, 1e-9) {
		t.Errorf("Spearman of monotone series = %v, want 1", rho)
	}
	p, _ := Pearson(xs, ys)
	if p >= 0.999 {
		t.Errorf("Pearson of convex series = %v, expected < 1", p)
	}
}

func TestSpearmanNegativeAndZero(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	down := []float64{10, 8, 6, 4, 2}
	rho, err := Spearman(xs, down)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, -1, 1e-9) {
		t.Errorf("Spearman of decreasing series = %v, want -1", rho)
	}
	flat := []float64{7, 7, 7, 7, 7}
	rho, err = Spearman(xs, flat)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0 {
		t.Errorf("Spearman against constant = %v, want 0", rho)
	}
}

func TestSpearmanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(i)
			}
			xs[i] = float64(i)
			ys[i] = v
		}
		rho, err := Spearman(xs, ys)
		if err != nil {
			return false
		}
		return rho >= -1-1e-9 && rho <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err != ErrInsufficientData {
		t.Errorf("err = %v", err)
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Spearman([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("Spearman length mismatch should error")
	}
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2}); err != ErrInsufficientData {
		t.Error("Spearman short input should error")
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{1, 1, 2, 4})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF = %v, want %v", cdf, want)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if got := CDFAt(cdf, 0.5); got != 0 {
		t.Errorf("CDFAt(0.5) = %v", got)
	}
	if got := CDFAt(cdf, 3); got != 0.75 {
		t.Errorf("CDFAt(3) = %v", got)
	}
	if got := CDFAt(cdf, 100); got != 1 {
		t.Errorf("CDFAt(100) = %v", got)
	}
	if got := CDF(nil); got != nil {
		t.Errorf("CDF(nil) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	edges := []float64{1, 2, 3}
	h := Histogram([]float64{0.5, 1, 1.5, 2.5, 3, 10}, edges)
	// Buckets: (-inf,1) [1,2) [2,3) [3,+inf)
	wantCounts := []int{1, 2, 1, 2}
	if len(h) != len(wantCounts) {
		t.Fatalf("got %d buckets", len(h))
	}
	for i, w := range wantCounts {
		if h[i].Count != w {
			t.Errorf("bucket %d count = %d, want %d (%+v)", i, h[i].Count, w, h[i])
		}
	}
	total := 0
	for _, b := range h {
		total += b.Count
	}
	if total != 6 {
		t.Errorf("histogram lost observations: total=%d", total)
	}
}

func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		h := Histogram(xs, []float64{-10, 0, 10, 1000})
		total := 0
		for _, b := range h {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 10); got != 5 {
		t.Errorf("Clamp mid = %v", got)
	}
	if got := Clamp(-1, 0, 10); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(11, 0, 10); got != 10 {
		t.Errorf("Clamp high = %v", got)
	}
}
