// Buffered variants of the derived-signal estimators. TheilSen and
// Spearman are the expensive kernels of telemetry.Manager.Signals(): three
// Theil–Sen fits and four Spearman correlations per tenant per billing
// interval. The plain functions allocate a pairwise-slope slice (TheilSen)
// and rank/index slices (Spearman) on every call; the *Buf variants reuse
// caller-owned scratch so a warm caller performs zero heap allocations.
// Results are bit-identical to the plain functions (asserted by the
// property tests): the same slope/rank multisets flow through the same
// median and Pearson arithmetic.
package stats

import (
	"errors"
	"math"
	"math/bits"
)

// ErrLengthMismatch is returned when paired series have different lengths.
var ErrLengthMismatch = errors.New("stats: paired series must have equal length")

// TheilSenBuf is TheilSen with a caller-owned scratch buffer: the pairwise
// slopes are accumulated into *buf (grown once, then reused across calls)
// and the median selections run in place, so a warm caller allocates
// nothing. xs and ys are not modified; *buf is reordered and resized. The
// returned Trend is bit-identical to TheilSen's on the same input.
func TheilSenBuf(xs, ys []float64, alpha float64, buf *[]float64) (Trend, error) {
	if len(xs) != len(ys) {
		return Trend{}, ErrLengthMismatch
	}
	n := len(xs)
	if n < 3 {
		return Trend{}, ErrInsufficientData
	}
	need := n * (n - 1) / 2
	s := *buf
	if cap(s) < need {
		s = make([]float64, 0, need)
	}
	slopes := s[:0]
	var pos, neg int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[j] - xs[i]
			if dx == 0 {
				continue
			}
			m := (ys[j] - ys[i]) / dx
			slopes = append(slopes, m)
			switch {
			case m > 0:
				pos++
			case m < 0:
				neg++
			}
		}
	}
	*buf = slopes[:0]
	if len(slopes) == 0 {
		return Trend{}, ErrInsufficientData
	}
	slope := MedianInPlace(slopes)
	agreePos := float64(pos) / float64(len(slopes))
	agreeNeg := float64(neg) / float64(len(slopes))
	agree := math.Max(agreePos, agreeNeg)
	sig := (slope > 0 && agreePos >= alpha) || (slope < 0 && agreeNeg >= alpha)
	// Reuse the slope buffer (cap ≥ n(n-1)/2 ≥ n for n ≥ 3) for the median
	// copies the intercept needs; Median would copy and sort instead.
	med := append(slopes[:0], ys...)
	my := MedianInPlace(med)
	med = append(med[:0], xs...)
	mx := MedianInPlace(med)
	intercept := my - slope*mx
	return Trend{Slope: slope, Intercept: intercept, Significant: sig, Agreement: agree, N: n}, nil
}

// SpearmanScratch holds the rank and index scratch SpearmanBuf reuses
// across calls. The zero value is ready to use; buffers grow to the series
// length on first use and are retained.
type SpearmanScratch struct {
	rx, ry []float64
	idx    []int
}

// SpearmanBuf is Spearman with caller-owned rank/index scratch: ranks are
// computed into sc's buffers instead of freshly allocated slices, so a warm
// caller allocates nothing. xs and ys are not modified. The result is
// bit-identical to Spearman's on the same input.
func SpearmanBuf(xs, ys []float64, sc *SpearmanScratch) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 3 {
		return 0, ErrInsufficientData
	}
	sc.rx = ranksInto(sc.rx, xs, &sc.idx)
	sc.ry = ranksInto(sc.ry, ys, &sc.idx)
	return Pearson(sc.rx, sc.ry)
}

// ranksInto computes the same fractional ranks as Ranks into dst (resized
// to len(xs)), using *idxBuf as index scratch. Rank values are independent
// of how ties are ordered internally, so any stable-or-not sort of the
// index slice yields the identical rank vector.
func ranksInto(dst []float64, xs []float64, idxBuf *[]int) []float64 {
	n := len(xs)
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	idx := *idxBuf
	if cap(idx) < n {
		idx = make([]int, n)
	} else {
		idx = idx[:n]
	}
	*idxBuf = idx
	for i := range idx {
		idx[i] = i
	}
	sortIdxByKeys(idx, xs, 2*bits.Len(uint(n)))
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i) + float64(j)) / 2.0
		for k := i; k <= j; k++ {
			dst[idx[k]] = avg + 1
		}
		i = j + 1
	}
	return dst
}

// sortIdxByKeys sorts idx ascending by keys[idx[i]] without allocating
// (sort.Slice would allocate its closure and swapper). Quicksort with a
// median-of-three pivot, insertion sort below 12 elements, and an
// insertion-sort fallback when the depth budget runs out.
func sortIdxByKeys(idx []int, keys []float64, depth int) {
	for len(idx) > 12 {
		if depth == 0 {
			break
		}
		depth--
		lo, hi := 0, len(idx)-1
		mid := int(uint(lo+hi) >> 1)
		if keys[idx[mid]] < keys[idx[lo]] {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
		if keys[idx[hi]] < keys[idx[lo]] {
			idx[hi], idx[lo] = idx[lo], idx[hi]
		}
		if keys[idx[hi]] < keys[idx[mid]] {
			idx[hi], idx[mid] = idx[mid], idx[hi]
		}
		idx[mid], idx[hi] = idx[hi], idx[mid]
		pivot := keys[idx[hi]]
		i := lo
		for j := lo; j < hi; j++ {
			if keys[idx[j]] < pivot {
				idx[i], idx[j] = idx[j], idx[i]
				i++
			}
		}
		idx[i], idx[hi] = idx[hi], idx[i]
		// Recurse into the smaller half, loop on the larger.
		if i < len(idx)-i-1 {
			sortIdxByKeys(idx[:i], keys, depth)
			idx = idx[i+1:]
		} else {
			sortIdxByKeys(idx[i+1:], keys, depth)
			idx = idx[:i]
		}
	}
	// Insertion sort: the base case and the depth-exhaustion fallback.
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && keys[idx[j]] > keys[v] {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
}
