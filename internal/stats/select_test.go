package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// adversarialSeries are fixed inputs that historically break selection and
// ranking code: ties everywhere, sorted/reversed runs, constant series,
// two-value series, and sign changes.
func adversarialSeries() [][]float64 {
	return [][]float64{
		{1},
		{2, 1},
		{5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14},
		{14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0},
		{-3, 7, -3, 7, 0, 0, 0, -3, 7, 1e9, -1e9, 0.5},
		{2.5, 2.5, 1, 1, 1, 9, 9, 9, 9, 2.5},
	}
}

func TestQuantileSelectMatchesQuantileProperty(t *testing.T) {
	f := func(raw []float64, q16 uint16) bool {
		xs := cleanSeries(raw, 1)
		q := float64(q16) / math.MaxUint16
		own := append([]float64(nil), xs...)
		got := QuantileSelect(own, q)
		want := QuantileReference(xs, q)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantileSelectAdversarial(t *testing.T) {
	for _, xs := range adversarialSeries() {
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1} {
			own := append([]float64(nil), xs...)
			got := QuantileSelect(own, q)
			want := QuantileReference(xs, q)
			if got != want {
				t.Errorf("QuantileSelect(%v, %v) = %v, want %v", xs, q, got, want)
			}
		}
	}
}

func TestQuantileSelectPreservesMultiset(t *testing.T) {
	f := func(raw []float64, q16 uint16) bool {
		xs := cleanSeries(raw, 1)
		q := float64(q16) / math.MaxUint16
		own := append([]float64(nil), xs...)
		QuantileSelect(own, q)
		a := append([]float64(nil), xs...)
		sort.Float64s(a)
		sort.Float64s(own)
		for i := range a {
			if a[i] != own[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuantileSelectUnorderedMatches pins the unordered variant to
// QuantileSelect bit-for-bit on random and adversarial inputs (including
// large tied/sorted runs that drive the Hoare scans and the depth fallback),
// and checks it still only permutes — same multiset afterwards.
func TestQuantileSelectUnorderedMatches(t *testing.T) {
	f := func(raw []float64, q16 uint16) bool {
		xs := cleanSeries(raw, 1)
		q := float64(q16) / math.MaxUint16
		a := append([]float64(nil), xs...)
		b := append([]float64(nil), xs...)
		if QuantileSelectUnordered(a, q) != QuantileSelect(b, q) {
			return false
		}
		sort.Float64s(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}

	series := adversarialSeries()
	rng := rand.New(rand.NewSource(95))
	big := make([]float64, 5000)
	for i := range big {
		big[i] = math.Floor(rng.Float64() * 8) // heavy ties at length
	}
	series = append(series, big, make([]float64, 3000)) // all-zero run
	for _, xs := range series {
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.95, 0.99, 1, math.NaN()} {
			a := append([]float64(nil), xs...)
			b := append([]float64(nil), xs...)
			got, want := QuantileSelectUnordered(a, q), QuantileSelect(b, q)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Errorf("QuantileSelectUnordered(len %d, q=%v) = %v, want %v", len(xs), q, got, want)
			}
		}
	}
	if !math.IsNaN(QuantileSelectUnordered(nil, 0.5)) {
		t.Error("empty input must return NaN")
	}
}

func TestMedianInPlaceMatchesMedian(t *testing.T) {
	f := func(raw []float64) bool {
		xs := cleanSeries(raw, 1)
		own := append([]float64(nil), xs...)
		return MedianInPlace(own) == MedianReference(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// trendEqual demands bit-identical Trend fields (the equivalence contract
// of the buffered kernels).
func trendEqual(a, b Trend) bool {
	return a.Slope == b.Slope && a.Intercept == b.Intercept &&
		a.Significant == b.Significant && a.Agreement == b.Agreement && a.N == b.N
}

func TestTheilSenBufMatchesTheilSenProperty(t *testing.T) {
	var buf []float64 // reused across trials, as the manager reuses it
	f := func(raw []float64, alpha8 uint8) bool {
		ys := cleanSeries(raw, 3)
		alpha := float64(alpha8) / 255
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i)
		}
		want, errWant := TheilSenReference(xs, ys, alpha)
		got, errGot := TheilSenBuf(xs, ys, alpha, &buf)
		if (errWant == nil) != (errGot == nil) {
			return false
		}
		return errWant != nil || trendEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTheilSenBufAdversarial(t *testing.T) {
	var buf []float64
	cases := adversarialSeries()
	// Constant-x series: every pairwise slope is skipped.
	constX := make([]float64, 8)
	for i := range constX {
		constX[i] = 4
	}
	for _, ys := range cases {
		for _, xs := range [][]float64{nil, constX[:min(len(constX), len(ys))]} {
			if xs == nil {
				xs = make([]float64, len(ys))
				for i := range xs {
					xs[i] = float64(i)
				}
			}
			if len(xs) != len(ys) {
				continue
			}
			want, errWant := TheilSenReference(xs, ys, DefaultTrendAlpha)
			got, errGot := TheilSenBuf(xs, ys, DefaultTrendAlpha, &buf)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("error mismatch for ys=%v: %v vs %v", ys, errWant, errGot)
			}
			if errWant == nil && !trendEqual(got, want) {
				t.Errorf("TheilSenBuf(%v) = %+v, want %+v", ys, got, want)
			}
		}
	}
}

func TestTheilSenBufErrors(t *testing.T) {
	var buf []float64
	if _, err := TheilSenBuf([]float64{1, 2, 3}, []float64{1, 2}, 0.7, &buf); err != ErrLengthMismatch {
		t.Errorf("length mismatch error = %v", err)
	}
	if _, err := TheilSenBuf([]float64{1, 2}, []float64{1, 2}, 0.7, &buf); err != ErrInsufficientData {
		t.Errorf("short series error = %v", err)
	}
	if _, err := TheilSenBuf([]float64{5, 5, 5}, []float64{1, 2, 3}, 0.7, &buf); err != ErrInsufficientData {
		t.Errorf("constant-x error = %v", err)
	}
}

func TestSpearmanBufMatchesSpearmanProperty(t *testing.T) {
	var sc SpearmanScratch
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(rng.NormFloat64() * 4) // coarse → frequent ties
			ys[i] = math.Floor(rng.NormFloat64() * 4)
		}
		want, errWant := SpearmanReference(xs, ys)
		got, errGot := SpearmanBuf(xs, ys, &sc)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("error mismatch: %v vs %v", errWant, errGot)
		}
		if got != want {
			t.Fatalf("trial %d: SpearmanBuf = %v, want %v (xs=%v ys=%v)", trial, got, want, xs, ys)
		}
	}
}

func TestSpearmanBufAdversarial(t *testing.T) {
	var sc SpearmanScratch
	for _, ys := range adversarialSeries() {
		if len(ys) < 3 {
			continue
		}
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i % 4) // tied x ranks
		}
		want, _ := SpearmanReference(xs, ys)
		got, err := SpearmanBuf(xs, ys, &sc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("SpearmanBuf(%v) = %v, want %v", ys, got, want)
		}
	}
}

func TestRanksIntoMatchesSortSliceReference(t *testing.T) {
	f := func(raw []float64) bool {
		xs := cleanSeries(raw, 1)
		got := Ranks(xs)
		want := RanksReference(xs)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCDFAtMatchesLinearScan(t *testing.T) {
	linear := func(cdf []CDFPoint, v float64) float64 {
		frac := 0.0
		for _, p := range cdf {
			if p.Value <= v {
				frac = p.Fraction
			} else {
				break
			}
		}
		return frac
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		xs := make([]float64, 1+rng.Intn(200))
		for i := range xs {
			xs[i] = math.Floor(rng.Float64() * 50) // ties collapse CDF points
		}
		cdf := CDF(xs)
		for _, v := range []float64{-1, 0, 0.5, 10, 24.5, 49, 50, 1e9, xs[0]} {
			if got, want := CDFAt(cdf, v), linear(cdf, v); got != want {
				t.Fatalf("CDFAt(%v) = %v, want %v", v, got, want)
			}
		}
	}
}

func TestSelectKernelsZeroAllocWhenWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	xs := make([]float64, 10)
	ys := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64((i * 7) % 10)
	}
	scratch := make([]float64, 10)
	var buf []float64
	var sc SpearmanScratch
	// Warm the arenas once.
	if _, err := TheilSenBuf(xs, ys, DefaultTrendAlpha, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := SpearmanBuf(xs, ys, &sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		copy(scratch, ys)
		_ = MedianInPlace(scratch)
		_ = QuantileSelect(scratch, 0.95)
		if _, err := TheilSenBuf(xs, ys, DefaultTrendAlpha, &buf); err != nil {
			t.Fatal(err)
		}
		if _, err := SpearmanBuf(xs, ys, &sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm stats kernels allocated %v times per run, want 0", allocs)
	}
}
