// Selection-based order-statistic kernels for the per-tenant telemetry hot
// path. The sort-based Quantile/Median copy their input and pay an
// O(n log n) sort per call; at fleet scale the telemetry manager computes a
// dozen medians per tenant per billing interval, so the copies and sorts
// dominate. QuantileSelect and MedianInPlace reorder a caller-owned slice
// with introselect — expected O(n), no allocation — and return values that
// are bit-identical to the sort-based path (the same order statistics fed
// through the same interpolation expression), which the property tests in
// select_test.go assert on random, tied and adversarial inputs.
package stats

import (
	"math"
	"math/bits"
	"sort"
)

// MedianInPlace returns the median of xs, reordering xs. It is
// bit-identical to Median on the same multiset of values. Returns NaN for
// empty input. NaNs in the input make the result unspecified (as with
// Median).
func MedianInPlace(xs []float64) float64 {
	return QuantileSelect(xs, 0.5)
}

// QuantileSelect returns the q-quantile of xs (0 ≤ q ≤ 1) with the same
// linear interpolation between order statistics as Quantile, but selects
// the needed order statistics in place with introselect instead of sorting
// a copy: expected O(n), zero allocations, xs reordered. Returns NaN for
// empty input and for q = NaN (a NaN quantile slips past both clamps, and
// int(math.Floor(NaN)) would otherwise index out of range). NaN values in
// xs never panic but make the result unspecified, as with Median.
func QuantileSelect(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		m := xs[0]
		for _, v := range xs[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	if q >= 1 {
		m := xs[0]
		for _, v := range xs[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	selectKth(xs, lo)
	if lo == hi {
		return xs[lo]
	}
	// hi == lo+1: after selection everything right of lo is ≥ xs[lo], so
	// the next order statistic is the minimum of that suffix.
	hiVal := xs[hi]
	for _, v := range xs[hi+1:] {
		if v < hiVal {
			hiVal = v
		}
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + hiVal*frac
}

// QuantileSelectUnordered returns exactly QuantileSelect's value — the same
// order statistics fed through the same interpolation expression — but
// leaves xs in an unspecified order, which frees it to partition with the
// Hoare scheme: Hoare swaps only wrong-sided pairs, where the Lomuto scheme
// in selectKth swaps every element below the pivot — for a high quantile
// such as P95 that is nearly the whole range on the first pass. Callers
// whose slice is dead or reset after the call (the engine's per-interval
// P95) use this; callers whose later arithmetic consumes the slice in its
// post-selection order (run-level Finalize, which sums for the mean after
// selecting) must keep QuantileSelect, whose permutation is deterministic.
// The returned value is algorithm-independent: which elements are the k-th
// and (k+1)-th order statistics of a multiset does not depend on how they
// are selected.
func QuantileSelectUnordered(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 || q >= 1 || n == 1 {
		return QuantileSelect(xs, q)
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	selectKthHoare(xs, lo)
	if lo == hi {
		return xs[lo]
	}
	// hi == lo+1: after selection everything right of lo is ≥ xs[lo], so
	// the next order statistic is the minimum of that suffix.
	hiVal := xs[hi]
	for _, v := range xs[hi+1:] {
		if v < hiVal {
			hiVal = v
		}
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + hiVal*frac
}

// selectKthHoare is selectKth with Hoare partitioning: same postcondition
// (xs[k] is the k-th order statistic, prefix ≤, suffix ≥), different — and
// unspecified — final order elsewhere. Median-of-three pivot selection
// doubles as the sentinel guard (xs[lo] ≤ pivot ≤ xs[hi]), so the inner
// scans need no bounds checks beyond the crossing test.
func selectKthHoare(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	depth := 2 * bits.Len(uint(len(xs)))
	for hi > lo {
		if hi-lo < 12 {
			insertionSort(xs, lo, hi)
			return
		}
		if depth == 0 {
			sort.Float64s(xs[lo : hi+1])
			return
		}
		depth--
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		// xs[lo..j] ≤ pivot ≤ xs[i..hi]; anything strictly between j and i
		// equals the pivot and is already in final position.
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return
		}
	}
}

// selectKth partially sorts xs so that xs[k] holds the k-th order statistic
// (0-based), everything before it is ≤ xs[k] and everything after is ≥
// xs[k]. Introselect: quickselect with a median-of-three pivot, an
// insertion-sort base case, and a full sort of the remaining range once the
// recursion depth budget is exhausted (which bounds the worst case at
// O(n log n) even on adversarial inputs such as all-equal runs).
func selectKth(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	depth := 2 * bits.Len(uint(len(xs)))
	for hi > lo {
		if hi-lo < 12 {
			insertionSort(xs, lo, hi)
			return
		}
		if depth == 0 {
			sort.Float64s(xs[lo : hi+1])
			return
		}
		depth--
		p := partitionMedian3(xs, lo, hi)
		switch {
		case k < p:
			hi = p - 1
		case k > p:
			lo = p + 1
		default:
			return
		}
	}
}

// partitionMedian3 partitions xs[lo..hi] around the median of the first,
// middle and last elements and returns the pivot's final index.
func partitionMedian3(xs []float64, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	xs[mid], xs[hi] = xs[hi], xs[mid] // pivot to the end
	pivot := xs[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi] = xs[hi], xs[i]
	return i
}

func insertionSort(xs []float64, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		v := xs[i]
		j := i - 1
		for j >= lo && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
