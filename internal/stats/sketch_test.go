package stats

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// orderStatistic returns the exact 0-based k-th order statistic of xs by
// full sort — the oracle the sketch's rank convention is tested against.
func orderStatistic(xs []float64, k int) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[k]
}

// sketchOf builds a sketch over xs at the given accuracy.
func sketchOf(xs []float64, alpha float64) *Sketch {
	s := NewSketch(alpha)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// assertWithinAccuracy fails unless v is within relative accuracy alpha of
// want (with a tiny epsilon for the FP slop of the log-bin mapping at bin
// edges, and absolute slop near the zero bucket).
func assertWithinAccuracy(t *testing.T, v, want, alpha float64, ctx string) {
	t.Helper()
	const edgeEps = 1e-9
	bound := alpha*math.Abs(want) + alpha*edgeEps + 2e-9
	if math.Abs(v-want) > bound {
		t.Errorf("%s: sketch value %v vs exact %v exceeds relative accuracy %v", ctx, v, want, alpha)
	}
}

func TestSketchQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	dists := map[string]func() float64{
		"uniform":   func() float64 { return rng.Float64() * 1e5 },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64() * 4) },
		"signed":    func() float64 { return rng.NormFloat64() * 1e3 },
		"tied":      func() float64 { return float64(rng.Intn(8)) * 100 },
		"tiny":      func() float64 { return rng.Float64() * 1e-6 },
	}
	for name, draw := range dists {
		for _, alpha := range []float64{0.005, 0.01, 0.05} {
			n := 1 + rng.Intn(4000)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = draw()
			}
			s := sketchOf(xs, alpha)
			if got := s.Count(); got != uint64(n) {
				t.Fatalf("%s: count = %d, want %d", name, got, n)
			}
			// Extremes are exact: QuantileReference is the pre-optimization
			// oracle shared with the selection kernels.
			if s.Min() != QuantileReference(xs, 0) || s.Max() != QuantileReference(xs, 1) {
				t.Fatalf("%s: extremes not exact: [%v,%v]", name, s.Min(), s.Max())
			}
			for _, q := range quantiles {
				v := s.Quantile(q)
				// The sketch targets the order statistic at rank ⌈q·(n−1)⌉.
				k := int(math.Ceil(q * float64(n-1)))
				want := orderStatistic(xs, k)
				assertWithinAccuracy(t, v, want, alpha, name)
				// And the returned value never escapes the exact data range.
				if v < s.Min() || v > s.Max() {
					t.Errorf("%s: q=%v value %v outside [%v,%v]", name, q, v, s.Min(), s.Max())
				}
			}
		}
	}
}

// TestSketchVsQuantileSelectOracle pins the sketch against the exact
// interpolated quantile path (QuantileSelect / QuantileReference): the
// sketch answer must lie within relative accuracy of the interval spanned
// by the two order statistics the exact path interpolates between.
func TestSketchVsQuantileSelectOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const alpha = 0.01
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64()*3) + 1
		}
		s := sketchOf(xs, alpha)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.95} {
			scratch := append([]float64(nil), xs...)
			exact := QuantileSelect(scratch, q)
			if ref := QuantileReference(xs, q); exact != ref {
				t.Fatalf("oracle drift: QuantileSelect %v vs QuantileReference %v", exact, ref)
			}
			lo := orderStatistic(xs, int(math.Floor(q*float64(n-1))))
			hi := orderStatistic(xs, int(math.Ceil(q*float64(n-1))))
			if exact < lo || exact > hi {
				t.Fatalf("exact quantile %v outside its order-statistic bracket [%v,%v]", exact, lo, hi)
			}
			v := s.Quantile(q)
			if v < lo*(1-alpha)-1e-9 || v > hi*(1+alpha)+1e-9 {
				t.Errorf("q=%v: sketch %v outside α-inflated bracket [%v,%v] around exact %v",
					q, v, lo*(1-alpha), hi*(1+alpha), exact)
			}
		}
	}
}

func TestSketchNaNContract(t *testing.T) {
	s := NewSketch(0.01)
	// Empty sketch: every quantile is NaN, like Quantile/QuantileSelect on
	// empty input.
	for _, q := range []float64{0, 0.5, 1, math.NaN()} {
		if !math.IsNaN(s.Quantile(q)) {
			t.Errorf("empty sketch Quantile(%v) = %v, want NaN", q, s.Quantile(q))
		}
	}
	s.Add(1)
	s.Add(2)
	s.Add(math.NaN())
	// NaN input is ignored and counted, never poisons a bin.
	if s.Count() != 2 || s.NaNs() != 1 {
		t.Fatalf("count=%d nans=%d", s.Count(), s.NaNs())
	}
	if v := s.Quantile(0.5); math.IsNaN(v) {
		t.Error("NaN input poisoned the quantiles")
	}
	// Quantile(NaN) → NaN: the PR-3 contract shared with Quantile,
	// QuantileSorted and QuantileSelect.
	if !math.IsNaN(s.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1, 2}, math.NaN())) || !math.IsNaN(QuantileSelect([]float64{1, 2}, math.NaN())) {
		t.Error("exact-path NaN contract changed under the sketch's feet")
	}
}

func TestSketchInfinitiesAndZeros(t *testing.T) {
	s := NewSketch(0.01)
	s.Add(math.Inf(-1))
	s.Add(-5)
	s.Add(0)
	s.Add(5e-10) // inside the zero bucket
	s.Add(5)
	s.Add(math.Inf(1))
	if s.Count() != 6 {
		t.Fatalf("count = %d", s.Count())
	}
	if !math.IsInf(s.Quantile(0), -1) || !math.IsInf(s.Quantile(1), 1) {
		t.Errorf("extreme quantiles: %v %v", s.Quantile(0), s.Quantile(1))
	}
	if v := s.Quantile(0.5); v != 0 {
		t.Errorf("median = %v, want exact 0 from the zero bucket", v)
	}
	// Rank ⌈0.2·5⌉ = 1 hits the negative store: within α of −5.
	if v := s.Quantile(0.2); v >= -4.9 || v <= -5.1 {
		t.Errorf("low quantile = %v, want ≈ −5", v)
	}
}

func sketchBytes(t *testing.T, s *Sketch) []byte {
	t.Helper()
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSketchMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mk := func(n int, scale float64) *Sketch {
		s := NewSketch(0.01)
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64() * scale)
		}
		return s
	}
	a, b, c := mk(500, 1), mk(700, 1e4), mk(300, 1e-3)

	ab := a.Clone()
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := b.Clone()
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	// Commutativity, bit for bit: the deterministic encoding is the
	// equality witness.
	if !bytes.Equal(sketchBytes(t, ab), sketchBytes(t, ba)) {
		t.Error("merge is not commutative bit-for-bit")
	}

	abc1 := ab.Clone() // (a∪b)∪c
	if err := abc1.Merge(c); err != nil {
		t.Fatal(err)
	}
	bc := b.Clone()
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	abc2 := a.Clone() // a∪(b∪c)
	if err := abc2.Merge(bc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sketchBytes(t, abc1), sketchBytes(t, abc2)) {
		t.Error("merge is not associative bit-for-bit")
	}

	// Merged sketch ≡ sketch of concatenated stream.
	all := NewSketch(0.01)
	if err := all.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := all.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := all.Merge(c); err != nil {
		t.Fatal(err)
	}
	if all.Count() != a.Count()+b.Count()+c.Count() {
		t.Error("merged count wrong")
	}

	// Accuracy mismatch is an error, not silent corruption.
	if err := a.Clone().Merge(NewSketch(0.05)); err == nil {
		t.Error("merging mismatched accuracies should fail")
	}
}

// TestSketchShardingInvariance is the determinism property the fleet
// pipeline builds on: however a stream is split into shards, merging the
// per-shard sketches yields bit-identical state.
func TestSketchShardingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 5)
	}
	whole := sketchOf(xs, 0.01)
	for _, shard := range []int{1, 7, 64, 999, 5000} {
		merged := NewSketch(0.01)
		for lo := 0; lo < len(xs); lo += shard {
			hi := lo + shard
			if hi > len(xs) {
				hi = len(xs)
			}
			if err := merged.Merge(sketchOf(xs[lo:hi], 0.01)); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(sketchBytes(t, whole), sketchBytes(t, merged)) {
			t.Errorf("shard size %d: merged sketch differs from whole-stream sketch", shard)
		}
	}
}

func TestSketchBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	s := NewSketch(0.02)
	for i := 0; i < 2000; i++ {
		s.Add(rng.NormFloat64() * 1e6)
	}
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	s.Add(0)
	enc := sketchBytes(t, s)
	var back Sketch
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, sketchBytes(t, &back)) {
		t.Error("round trip not bit-identical")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		a, b := s.Quantile(q), back.Quantile(q)
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Errorf("q=%v: %v vs %v after round trip", q, a, b)
		}
	}
	// Corrupt inputs are rejected.
	if err := new(Sketch).UnmarshalBinary(enc[:10]); err == nil {
		t.Error("truncated encoding accepted")
	}
	if err := new(Sketch).UnmarshalBinary(append(append([]byte(nil), enc...), 1)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if err := new(Sketch).UnmarshalBinary(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestSketchCDFApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = rng.Float64() * 1e4
	}
	s := sketchOf(xs, 0.01)
	cdf := s.CDFApprox()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	last := CDFPoint{Value: math.Inf(-1)}
	for _, p := range cdf {
		if p.Value <= last.Value || p.Fraction < last.Fraction {
			t.Fatalf("CDF not monotone at %+v after %+v", p, last)
		}
		last = p
	}
	if last.Fraction != 1 {
		t.Errorf("CDF ends at %v, want 1", last.Fraction)
	}
	// The approximate CDF agrees with the exact one to sketch resolution:
	// CDFAt of a mid-range probe within a few percent.
	exact := CDF(xs)
	for _, v := range []float64{1e3, 5e3, 9e3} {
		got, want := CDFAt(cdf, v), CDFAt(exact, v)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("CDFAt(%v) = %v, exact %v", v, got, want)
		}
	}
	if got := NewSketch(0.01).CDFApprox(); got != nil {
		t.Errorf("empty sketch CDF = %v", got)
	}
}

func TestSketchDefaultAccuracy(t *testing.T) {
	for _, bad := range []float64{0, -1, 1, 2} {
		if got := NewSketch(bad).Accuracy(); got != DefaultSketchAccuracy {
			t.Errorf("NewSketch(%v).Accuracy() = %v", bad, got)
		}
	}
	if got := NewSketch(0.03).Accuracy(); got != 0.03 {
		t.Errorf("accuracy not kept: %v", got)
	}
}
