package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// cleanSeries turns an arbitrary float slice into a finite series of at
// least n points.
func cleanSeries(raw []float64, n int) []float64 {
	xs := make([]float64, 0, len(raw)+n)
	for _, v := range raw {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
			xs = append(xs, v)
		}
	}
	for i := len(xs); i < n; i++ {
		xs = append(xs, float64(i*i%17))
	}
	return xs
}

func TestMedianBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := cleanSeries(raw, 1)
		m := Median(xs)
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTheilSenAffineEquivariance(t *testing.T) {
	// TheilSen(x, a·y + b).Slope == a·TheilSen(x, y).Slope for a ≠ 0.
	f := func(raw []float64, a8, b8 int8) bool {
		a := float64(a8)
		if a == 0 {
			a = 2
		}
		b := float64(b8)
		ys := cleanSeries(raw, 5)
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i)
		}
		base, err := TheilSen(xs, ys, DefaultTrendAlpha)
		if err != nil {
			return true
		}
		scaled := make([]float64, len(ys))
		for i, y := range ys {
			scaled[i] = a*y + b
		}
		tr, err := TheilSen(xs, scaled, DefaultTrendAlpha)
		if err != nil {
			return false
		}
		return math.Abs(tr.Slope-a*base.Slope) < 1e-6*(1+math.Abs(a*base.Slope))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpearmanInvariantUnderMonotoneTransform(t *testing.T) {
	// ρ(x, y) == ρ(x, g(y)) for strictly increasing g (here exp(y/scale)).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		rho1, err := Spearman(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		gy := make([]float64, n)
		for i, y := range ys {
			gy[i] = math.Exp(y / 3)
		}
		rho2, err := Spearman(xs, gy)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rho1-rho2) > 1e-9 {
			t.Fatalf("trial %d: ρ changed under monotone transform: %v vs %v", trial, rho1, rho2)
		}
	}
}

func TestRanksArePermutationWithoutTies(t *testing.T) {
	f := func(raw []float64) bool {
		// Deduplicate to guarantee no ties.
		seen := map[float64]bool{}
		var xs []float64
		for _, v := range cleanSeries(raw, 3) {
			if !seen[v] {
				seen[v] = true
				xs = append(xs, v)
			}
		}
		ranks := Ranks(xs)
		sorted := append([]float64(nil), ranks...)
		sort.Float64s(sorted)
		for i, r := range sorted {
			if r != float64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Even with ties, fractional ranks must sum to n(n+1)/2.
	f := func(raw []float64) bool {
		xs := cleanSeries(raw, 2)
		var sum float64
		for _, r := range Ranks(xs) {
			sum += r
		}
		n := float64(len(xs))
		return math.Abs(sum-n*(n+1)/2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDFHistogramConsistency(t *testing.T) {
	// The CDF fraction at a histogram edge equals the share of
	// observations in buckets strictly below that edge.
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	edges := []float64{10, 25, 50, 75}
	cdf := CDF(xs)
	hist := Histogram(xs, edges)
	cum := 0
	for i, e := range edges {
		cum += hist[i].Count
		want := float64(cum) / float64(len(xs))
		// Histogram buckets are [lo, hi): values < e are in buckets 0..i.
		got := CDFAt(cdf, e-1e-9)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("edge %v: CDF %v vs histogram %v", e, got, want)
		}
	}
}

func TestMADRobustnessProperty(t *testing.T) {
	// One arbitrarily large outlier cannot move the MAD of a tight cluster
	// beyond the cluster's own spread.
	f := func(outlier float64) bool {
		if math.IsNaN(outlier) {
			return true
		}
		xs := []float64{10, 10.5, 11, 11.5, 12, 9.5, 10.2, outlier}
		return MAD(xs) <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTheilSenAgreementBounds(t *testing.T) {
	f := func(raw []float64) bool {
		ys := cleanSeries(raw, 4)
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i)
		}
		tr, err := TheilSen(xs, ys, DefaultTrendAlpha)
		if err != nil {
			return true
		}
		return tr.Agreement >= 0 && tr.Agreement <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
