// Reference implementations of the selection/scratch kernels: the
// pre-optimization copy-sort-and-allocate code paths, retained verbatim as
// equivalence oracles. The property tests assert that the in-place kernels
// (QuantileSelect, TheilSenBuf, SpearmanBuf) are bit-identical to these, and
// telemetry.Manager.SignalsReference computes through them so the fleet
// benchmark's baseline measures the true pre-optimization cost, not the new
// kernels wrapped in extra copies. Nothing on a hot path should call these.
package stats

import (
	"math"
	"sort"
)

// MedianReference is the pre-optimization Median: copy, sort, interpolate.
func MedianReference(xs []float64) float64 {
	return QuantileReference(xs, 0.5)
}

// QuantileReference is the pre-optimization Quantile: it copies xs, fully
// sorts the copy, and interpolates between order statistics. Bit-identical
// to QuantileSelect on the same finite input; q = NaN returns NaN on both.
func QuantileReference(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// TheilSenReference is the pre-optimization Theil–Sen estimator: it
// allocates the pairwise-slope slice on every call and takes medians by
// copy-and-sort. Bit-identical to TheilSenBuf on the same input.
func TheilSenReference(xs, ys []float64, alpha float64) (Trend, error) {
	if len(xs) != len(ys) {
		return Trend{}, ErrLengthMismatch
	}
	n := len(xs)
	if n < 3 {
		return Trend{}, ErrInsufficientData
	}
	slopes := make([]float64, 0, n*(n-1)/2)
	var pos, neg int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[j] - xs[i]
			if dx == 0 {
				continue
			}
			m := (ys[j] - ys[i]) / dx
			slopes = append(slopes, m)
			switch {
			case m > 0:
				pos++
			case m < 0:
				neg++
			}
		}
	}
	if len(slopes) == 0 {
		return Trend{}, ErrInsufficientData
	}
	slope := MedianReference(slopes)
	agreePos := float64(pos) / float64(len(slopes))
	agreeNeg := float64(neg) / float64(len(slopes))
	agree := math.Max(agreePos, agreeNeg)
	sig := (slope > 0 && agreePos >= alpha) || (slope < 0 && agreeNeg >= alpha)
	intercept := MedianReference(ys) - slope*MedianReference(xs)
	return Trend{Slope: slope, Intercept: intercept, Significant: sig, Agreement: agree, N: n}, nil
}

// RanksReference is the pre-optimization Ranks: fresh rank and index slices
// plus a sort.Slice (which allocates its closure and swapper) on every call.
// Rank vectors are independent of how ties are ordered internally, so it is
// bit-identical to the scratch-reusing kernel.
func RanksReference(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i) + float64(j)) / 2.0
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg + 1
		}
		i = j + 1
	}
	return ranks
}

// SpearmanReference is the pre-optimization Spearman: Pearson over freshly
// allocated rank vectors. Bit-identical to SpearmanBuf on the same input.
func SpearmanReference(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 3 {
		return 0, ErrInsufficientData
	}
	return Pearson(RanksReference(xs), RanksReference(ys))
}
