package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// TestContentionIdentityIsBitExact: an engine with explicit identity
// multipliers (and one that had multipliers set then cleared) is
// bit-identical to an engine that never heard of contention. x*1.0 is an
// IEEE-754 identity, so the multiplier threading must not perturb a
// single bit of the zero-contention path.
func TestContentionIdentityIsBitExact(t *testing.T) {
	w := workload.TPCC()
	c := cat.AtStep(4)
	mk := func() *Engine { return mustEngine(t, w, c, 77) }

	plain := mk()
	ident := mk()
	ident.SetContention(Contention{CPU: 1, Memory: 1, LogIO: 1})
	cleared := mk()
	cleared.SetContention(Contention{CPU: 2, Memory: 3, LogIO: 1.5})
	cleared.SetContention(NoContention())

	loadRng := rand.New(rand.NewSource(41))
	for interval := 0; interval < 3; interval++ {
		for i := 0; i < plain.TicksPerInterval(); i++ {
			off := loadRng.Float64() * 400
			plain.Tick(off)
			ident.Tick(off)
			cleared.Tick(off)
		}
		ps, is, cs := plain.EndInterval(), ident.EndInterval(), cleared.EndInterval()
		if ps != is {
			t.Fatalf("interval %d: identity multipliers perturbed the snapshot:\nplain %+v\nident %+v", interval, ps, is)
		}
		if ps != cs {
			t.Fatalf("interval %d: cleared multipliers perturbed the snapshot:\nplain %+v\ncleared %+v", interval, ps, cs)
		}
	}
}

// TestContentionInflatesTargetedWaits: multipliers above one inflate
// exactly the wait classes they target — CPU → WaitCPU, Memory →
// WaitMemory, LogIO → WaitLogIO — leave WaitDiskIO untouched, never
// change served work, and raise p95 latency.
func TestContentionInflatesTargetedWaits(t *testing.T) {
	cases := []struct {
		name string
		c    Contention
		up   telemetry.WaitClass
	}{
		{"cpu", Contention{CPU: 3, Memory: 1, LogIO: 1}, telemetry.WaitCPU},
		{"memory", Contention{CPU: 1, Memory: 3, LogIO: 1}, telemetry.WaitMemory},
		{"logio", Contention{CPU: 1, Memory: 1, LogIO: 3}, telemetry.WaitLogIO},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w := workload.TPCC()
			c := cat.AtStep(0) // smallest container: backlogged, waits nonzero
			base := mustEngine(t, w, c, 99)
			hot := mustEngine(t, w, c, 99)
			hot.SetContention(tc.c)

			loadRng := rand.New(rand.NewSource(7))
			var bs, hs telemetry.Snapshot
			for interval := 0; interval < 3; interval++ {
				for i := 0; i < base.TicksPerInterval(); i++ {
					off := 400 + loadRng.Float64()*600
					base.Tick(off)
					hot.Tick(off)
				}
				bs, hs = base.EndInterval(), hot.EndInterval()
			}
			if !(hs.WaitMs[tc.up] > bs.WaitMs[tc.up]) {
				t.Fatalf("%s: targeted wait not inflated: base %v, contended %v", tc.up, bs.WaitMs[tc.up], hs.WaitMs[tc.up])
			}
			if hs.WaitMs[telemetry.WaitDiskIO] != bs.WaitMs[telemetry.WaitDiskIO] {
				t.Fatalf("WaitDiskIO perturbed by contention: %v vs %v", bs.WaitMs[telemetry.WaitDiskIO], hs.WaitMs[telemetry.WaitDiskIO])
			}
			if hs.Transactions != bs.Transactions || hs.Utilization != bs.Utilization {
				t.Fatalf("contention changed served work: txns %v vs %v, util %v vs %v (must inflate waits only)",
					bs.Transactions, hs.Transactions, bs.Utilization, hs.Utilization)
			}
			if !(hs.P95LatencyMs > bs.P95LatencyMs) {
				t.Fatalf("p95 not inflated: base %v, contended %v", bs.P95LatencyMs, hs.P95LatencyMs)
			}
		})
	}
}

// TestTickBatchMatchesTickUnderContention extends the batching property
// to non-identity multipliers: with randomized contention vectors
// (re-installed between intervals, as the cluster runner does), TickBatch
// stays byte-identical to per-element Tick.
func TestTickBatchMatchesTickUnderContention(t *testing.T) {
	metaRng := rand.New(rand.NewSource(20260809))
	for trial := 0; trial < 25; trial++ {
		trial := trial
		seed := metaRng.Int63()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := randBatchWorkload(rng)
			cont := cat.AtStep(rng.Intn(cat.LadderLen()))
			opts := Options{
				CheckpointEverySec: []int{0, 7}[rng.Intn(2)],
				TicksPerInterval:   10 + rng.Intn(40),
			}
			if rng.Float64() < 0.5 {
				opts.NoiseProb = 0.2
			}
			engSeed := rng.Int63()
			ref, err := New(w, cont, engSeed, opts)
			if err != nil {
				t.Fatal(err)
			}
			bat, err := New(w, cont, engSeed, opts)
			if err != nil {
				t.Fatal(err)
			}

			loadRng := rand.New(rand.NewSource(seed + 1))
			for interval := 0; interval < 4; interval++ {
				// Fresh multipliers each interval, as the serial apply phase
				// installs them; sometimes degenerate (≤ 1, NaN-free lift).
				mult := Contention{
					CPU:    0.5 + loadRng.Float64()*3,
					Memory: 0.5 + loadRng.Float64()*3,
					LogIO:  0.5 + loadRng.Float64()*3,
				}
				ref.SetContention(mult)
				bat.SetContention(mult)
				if ref.ContentionMultipliers() != bat.ContentionMultipliers() {
					t.Fatal("normalized multipliers diverged")
				}

				n := ref.TicksPerInterval()
				offered := make([]float64, n)
				base := loadRng.Float64() * 500
				for i := range offered {
					offered[i] = base * (0.5 + loadRng.Float64())
				}
				for _, off := range offered {
					ref.Tick(off)
				}
				for lo := 0; lo < n; {
					hi := lo + 1 + loadRng.Intn(n-lo)
					bat.TickBatch(offered[lo:hi])
					lo = hi
				}

				rs, bs := ref.EndInterval(), bat.EndInterval()
				if rs != bs {
					t.Fatalf("interval %d: snapshots differ under contention:\nref %+v\nbat %+v", interval, rs, bs)
				}
				rwt, bwt := ref.LastIntervalWaitTypes(), bat.LastIntervalWaitTypes()
				for k, v := range rwt {
					if bwt[k] != v {
						t.Fatalf("interval %d: wait type %s: %v vs %v", interval, k, v, bwt[k])
					}
				}
			}
		})
	}
}

// TestContentionNormalized: sub-identity, NaN and zero multipliers are
// lifted to the identity — contention can only slow tenants down, never
// speed them up.
func TestContentionNormalized(t *testing.T) {
	e := mustEngine(t, workload.DS2(), cat.AtStep(4), 5)
	e.SetContention(Contention{CPU: 0.25, Memory: -3})
	if got := e.ContentionMultipliers(); got != NoContention() {
		t.Fatalf("sub-identity multipliers not lifted: %+v", got)
	}
	e.SetContention(Contention{CPU: 2, Memory: 0, LogIO: 1.5})
	want := Contention{CPU: 2, Memory: 1, LogIO: 1.5}
	if got := e.ContentionMultipliers(); got != want {
		t.Fatalf("partial lift wrong: got %+v want %+v", got, want)
	}
}

// TestMigrateRestart: landing on a new node evicts the warm buffer pool
// down to the cold-cache floor but never *adds* warmth.
func TestMigrateRestart(t *testing.T) {
	e := mustEngine(t, workload.TPCC(), cat.AtStep(5), 3)
	for i := 0; i < 3*e.TicksPerInterval(); i++ {
		e.Tick(300)
	}
	warm := e.MemoryUsedMB()
	if warm <= e.opts.ColdCacheMB {
		t.Fatalf("engine never warmed past the cold floor (%v <= %v); test needs a warm pool", warm, e.opts.ColdCacheMB)
	}
	e.MigrateRestart()
	if got := e.MemoryUsedMB(); got != e.opts.ColdCacheMB {
		t.Fatalf("migration restart left %v MB warm, want cold floor %v", got, e.opts.ColdCacheMB)
	}
	e.MigrateRestart()
	if got := e.MemoryUsedMB(); got > e.opts.ColdCacheMB {
		t.Fatalf("second restart added warmth: %v", got)
	}
}
