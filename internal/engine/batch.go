package engine

import (
	"math"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// TickBatch advances the simulation by len(offered) one-second ticks — a
// whole billing interval in one call. It is bit-identical to calling Tick
// once per element, in order: the same RNG draws in the same sequence, the
// same floating-point operations in the same association. Tick stays in
// the tree as the reference kernel; the TickBatch equivalence property
// test and the cross-runner golden suite pin the two together.
//
// The speedup comes from hoisting everything a single Tick recomputes per
// call even though it cannot change within an interval — container
// capacities and their queue caps, the profile's per-transaction
// constants, the memory ceiling and warm cap, option-derived latency
// terms — and from keeping all mutable engine state (buffer pool,
// backlogs, shed counters, the accumulator's sums) in locals across the
// whole interval instead of bouncing through the Engine struct on every
// tick. Hoists deliberately never re-associate float expressions: an
// expression is hoisted only when Tick computes exactly that expression,
// with that operand order, every tick (e.g. `p.LatchProb * 1.5` may move
// out of the loop; `offered * lcp * lhm / 1000` may not, because its value
// depends on the tick). See DESIGN.md §13 for the hoisting rules.
func (e *Engine) TickBatch(offered []float64) {
	if len(offered) == 0 {
		return
	}
	o := &e.opts
	p := &e.prof

	// --- Interval invariants (constant between SetContainer /
	// SetMemoryTargetMB calls, i.e. for the whole batch) -----------------
	memCap := e.effectiveMemoryMB()
	ws := e.w.WorkingSetMB
	coldData := e.w.DataSizeMB - ws
	hs := e.w.HotspotFraction
	coldShare := 1 - hs // Tick's `(1-e.w.HotspotFraction)`, identical every tick
	warmCap := math.Min(memCap, e.w.DataSizeMB)
	warmPerRead := o.WarmMBPerPhysRead

	logicalPerTxn := p.LogicalReads
	writePerTxn := p.WritePages
	cpuPerTxn := p.CPUms
	logPerTxn := p.LogKB
	lcp := p.LockConflictProb
	lhm := p.LockHoldMs
	perTxnLatch := p.LatchProb * 1.5

	cpuCap := e.cont.Alloc[resource.CPU]
	ioCap := e.cont.Alloc[resource.DiskIO]
	logCap := e.cont.Alloc[resource.LogIO]
	maxQCPU := o.MaxQueueSeconds * cpuCap
	maxQIO := o.MaxQueueSeconds * ioCap
	maxQLog := o.MaxQueueSeconds * logCap
	maxDelay := o.MaxQueueSeconds * 1000

	ck := o.CheckpointEverySec
	ioServiceMs := o.IOServiceMs
	logSvcPerTxn := logPerTxn * o.LogServiceMsPerKB // Tick's `p.LogKB*o.LogServiceMsPerKB`
	memStallMs := o.MemStallMs
	// The contention multipliers are constant for the whole batch (a
	// hosting runner installs them only between intervals), so every
	// multiplied term below hoists or folds exactly as Tick associates it.
	contCPU := e.contention.CPU
	contMem := e.contention.Memory
	contLog := e.contention.LogIO
	// Tick's `o.BaseLatencyMs + p.CPUms*e.contention.CPU`, the first two
	// terms of perTxnLatency.
	basePlusCPU := o.BaseLatencyMs + cpuPerTxn*contCPU
	// Tick's `p.LogKB*o.LogServiceMsPerKB*e.contention.LogIO` latency term.
	logSvcLat := logSvcPerTxn * contLog
	sigma := o.LatencySigma
	noiseOn := o.NoiseProb > 0
	noiseProb := o.NoiseProb
	noiseScale := o.NoiseScale
	rng := e.rng
	sink := e.latencySink

	// --- Mutable engine state, held in locals for the whole batch -------
	usedMB := e.usedMB
	dirty := e.dirtyPages
	bCPU, bIO, bLog := e.backlogCPUms, e.backlogIOOps, e.backlogLogKB
	shCPU, shIO, shLog := e.sheddedCPUms, e.sheddedIOOps, e.sheddedLogKB
	tickNo := e.tick

	a := &e.acc
	sCPUsum, cCPUsum := a.servedCPU, a.capCPU
	sIOsum, cIOsum := a.servedIO, a.capIO
	sLogsum, cLogsum := a.servedLog, a.capLog
	peakV := a.peakUtil
	wl := a.waitMs
	lat := a.latSamples
	txns := a.txns
	offSum := a.offeredSum
	pReadsSum := a.physReads
	pWritesSum := a.physWrites
	ticksN := a.ticks

	// drain advances one fluid queue by a tick — Tick's drain with the
	// per-resource maxQ precomputed (same product, same value).
	drain := func(backlog *float64, demand, capacity, maxQ float64, shed *float64) (served, delayMs float64) {
		total := *backlog + demand
		served = math.Min(total, capacity)
		rest := total - served
		if rest > maxQ {
			*shed += rest - maxQ
			rest = maxQ
		}
		*backlog = rest
		if capacity > 0 {
			delayMs = rest / capacity * 1000
		} else if rest > 0 {
			delayMs = maxDelay
		}
		return served, delayMs
	}
	congest := func(demand, capacity float64) float64 {
		if capacity <= 0 {
			return 0
		}
		rho := demand / capacity
		if rho > 0.98 {
			rho = 0.98
		}
		f := rho * rho / (1 - rho)
		if f > 25 {
			f = 25
		}
		return f
	}
	waitMs := func(backlog, perTxn float64) float64 {
		if backlog <= 0 {
			return 0
		}
		per := math.Max(perTxn, 0.1)
		return backlog / per * 1000
	}

	for _, off := range offered {
		if off < 0 {
			off = 0
		}

		// --- Buffer pool -------------------------------------------------
		if usedMB > memCap {
			usedMB = memCap // forced eviction
		}
		var hHot, hCold float64
		if ws <= 0 {
			hHot = 1
		} else {
			hHot = math.Min(1, usedMB/ws)
		}
		if coldData <= 0 {
			hCold = 1
		} else {
			hCold = math.Min(1, math.Max(0, usedMB-ws)/coldData)
		}
		missFrac := hs*(1-hHot) + coldShare*(1-hCold)
		logicalReads := off * logicalPerTxn
		physReads := logicalReads * missFrac
		physWrites := off * writePerTxn
		if ck > 0 {
			deferred := physWrites * 0.5
			physWrites -= deferred
			dirty += deferred
			if tickNo%ck == ck-1 {
				physWrites += dirty
				dirty = 0
			}
		}

		// --- Fluid queues ------------------------------------------------
		perTxnPhysIO := 0.0
		if off > 0 {
			perTxnPhysIO = (physReads + physWrites) / off
		}
		cpuDemand := off*cpuPerTxn + (physReads+physWrites)*0.03
		servedCPU, dCPU := drain(&bCPU, cpuDemand, cpuCap, maxQCPU, &shCPU)

		ioDemand := physReads + physWrites
		servedIO, dIO := drain(&bIO, ioDemand, ioCap, maxQIO, &shIO)

		if ioDemand > 0 {
			servedReads := servedIO * physReads / ioDemand
			usedMB = math.Min(warmCap, usedMB+servedReads*warmPerRead)
		}

		logDemand := off * logPerTxn
		servedLog, dLog := drain(&bLog, logDemand, logCap, maxQLog, &shLog)

		cpuCongest := cpuPerTxn * congest(cpuDemand, cpuCap) * contCPU
		ioCongest := perTxnPhysIO * ioServiceMs * congest(ioDemand, ioCap)
		logCongest := logSvcPerTxn * congest(logDemand, logCap) * contLog

		// --- Wait statistics ---------------------------------------------
		wl[telemetry.WaitCPU] += waitMs(bCPU, cpuPerTxn) * contCPU
		wl[telemetry.WaitDiskIO] += waitMs(bIO, perTxnPhysIO)
		wl[telemetry.WaitLogIO] += waitMs(bLog, logPerTxn) * contLog

		hotMissPerTxn := hs * (1 - hHot)
		memStall := hotMissPerTxn * memStallMs * contMem
		wl[telemetry.WaitMemory] += off * memStall

		holders := off * lcp * lhm / 1000
		perTxnLockWait := lcp * holders * lhm
		wl[telemetry.WaitLock] += off * perTxnLockWait

		wl[telemetry.WaitLatch] += off * perTxnLatch

		sys := 30.0
		if noiseOn && rng.Float64() < noiseProb {
			sys *= noiseScale
			cls := telemetry.WaitClasses[rng.Intn(telemetry.NumWaitClasses)]
			wl[cls] += sys * 10
		}
		wl[telemetry.WaitSystem] += sys

		// --- Latency -----------------------------------------------------
		if off > 0 {
			perTxnLatency := basePlusCPU +
				perTxnPhysIO*ioServiceMs +
				logSvcLat +
				cpuCongest + ioCongest + logCongest +
				dCPU + dIO + dLog +
				memStall +
				perTxnLockWait +
				perTxnLatch
			n := int(math.Min(off, MaxLatencySamplesPerTick))
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				f := math.Exp(sigma * rng.NormFloat64())
				sample := perTxnLatency * f
				lat = append(lat, sample)
				if sink != nil {
					sink(sample)
				}
			}
			txns += off
		}

		// --- Accumulate --------------------------------------------------
		sCPUsum += servedCPU
		cCPUsum += cpuCap
		sIOsum += servedIO
		cIOsum += ioCap
		sLogsum += servedLog
		cLogsum += logCap
		if cpuCap > 0 {
			if r := servedCPU / cpuCap; r > peakV[resource.CPU] {
				peakV[resource.CPU] = r
			}
		}
		if ioCap > 0 {
			if r := servedIO / ioCap; r > peakV[resource.DiskIO] {
				peakV[resource.DiskIO] = r
			}
		}
		if logCap > 0 {
			if r := servedLog / logCap; r > peakV[resource.LogIO] {
				peakV[resource.LogIO] = r
			}
		}
		offSum += off
		pReadsSum += physReads
		pWritesSum += physWrites
		ticksN++
		tickNo++
	}

	// --- Write the batch's state back ------------------------------------
	e.usedMB = usedMB
	e.dirtyPages = dirty
	e.backlogCPUms, e.backlogIOOps, e.backlogLogKB = bCPU, bIO, bLog
	e.sheddedCPUms, e.sheddedIOOps, e.sheddedLogKB = shCPU, shIO, shLog
	e.tick = tickNo
	a.servedCPU, a.capCPU = sCPUsum, cCPUsum
	a.servedIO, a.capIO = sIOsum, cIOsum
	a.servedLog, a.capLog = sLogsum, cLogsum
	a.peakUtil = peakV
	a.waitMs = wl
	a.latSamples = lat
	a.txns = txns
	a.offeredSum = offSum
	a.physReads = pReadsSum
	a.physWrites = pWritesSum
	a.ticks = ticksN
}
