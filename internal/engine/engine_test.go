package engine

import (
	"math"
	"testing"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

var cat = resource.LockStepCatalog()

func mustEngine(t *testing.T, w *workload.Workload, cont resource.Container, seed int64) *Engine {
	t.Helper()
	// Telemetry noise off: these tests assert exact wait behaviour.
	e, err := New(w, cont, seed, Options{NoiseProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runIntervals drives the engine at a constant offered load and returns the
// snapshots.
func runIntervals(e *Engine, rps float64, intervals int) []telemetry.Snapshot {
	var out []telemetry.Snapshot
	for i := 0; i < intervals; i++ {
		for t := 0; t < e.TicksPerInterval(); t++ {
			e.Tick(rps)
		}
		out = append(out, e.EndInterval())
	}
	return out
}

func TestNewRejectsInvalidWorkload(t *testing.T) {
	if _, err := New(&workload.Workload{Name: "bad"}, cat.Smallest(), 1, Options{}); err == nil {
		t.Error("invalid workload should be rejected")
	}
}

func TestIdleEngine(t *testing.T) {
	e := mustEngine(t, workload.CPUIO(workload.DefaultCPUIOConfig()), cat.AtStep(4), 1)
	snaps := runIntervals(e, 0, 3)
	for _, s := range snaps {
		if s.Utilization[resource.CPU] != 0 || s.Utilization[resource.DiskIO] != 0 {
			t.Errorf("idle utilization nonzero: %+v", s.Utilization)
		}
		if s.Transactions != 0 {
			t.Errorf("idle transactions = %v", s.Transactions)
		}
		if s.WaitMs[telemetry.WaitCPU] != 0 || s.WaitMs[telemetry.WaitLock] != 0 {
			t.Errorf("idle waits nonzero: %+v", s.WaitMs)
		}
		if s.WaitMs[telemetry.WaitSystem] <= 0 {
			t.Error("system waits should tick over even when idle")
		}
	}
}

func TestSnapshotIntervalBookkeeping(t *testing.T) {
	e := mustEngine(t, workload.DS2(), cat.AtStep(5), 2)
	s0 := runIntervals(e, 50, 1)[0]
	if s0.Interval != 0 {
		t.Errorf("first interval index = %d", s0.Interval)
	}
	if s0.Container != "C5" || s0.Step != 5 || s0.Cost != 90 {
		t.Errorf("container metadata wrong: %+v", s0)
	}
	if s0.Transactions != 50*60 {
		t.Errorf("transactions = %v, want 3000", s0.Transactions)
	}
	if math.Abs(s0.OfferedRPS-50) > 5 {
		t.Errorf("offered rps = %v, want ≈50", s0.OfferedRPS)
	}
	s1 := runIntervals(e, 50, 1)[0]
	if s1.Interval != 1 {
		t.Errorf("second interval index = %d", s1.Interval)
	}
}

func TestUtilizationBounds(t *testing.T) {
	// Even under extreme overload, utilization must stay in [0,1].
	e := mustEngine(t, workload.CPUIO(workload.DefaultCPUIOConfig()), cat.Smallest(), 3)
	for _, s := range runIntervals(e, 500, 5) {
		for _, k := range resource.Kinds {
			u := s.Utilization[k]
			if u < 0 || u > 1+1e-9 {
				t.Fatalf("utilization[%v] = %v out of bounds", k, u)
			}
		}
	}
}

func TestOverloadSaturatesAndWaits(t *testing.T) {
	// CPU-heavy workload on the smallest container: CPU saturates, CPU
	// waits accrue, latency blows past the big-container baseline.
	cpuOnly := workload.CPUIO(workload.CPUIOConfig{CPUWeight: 1, WorkingSetMB: 512, HotspotFraction: 0.95})
	small := mustEngine(t, cpuOnly, cat.Smallest(), 4)
	big := mustEngine(t, cpuOnly, cat.Largest(), 4)
	// 200 rps × 9ms CPU ≈ 1.8 cores of demand: swamps C0 (0.5 core).
	sSmall := runIntervals(small, 200, 5)
	sBig := runIntervals(big, 200, 5)
	last := sSmall[len(sSmall)-1]
	if last.Utilization[resource.CPU] < 0.95 {
		t.Errorf("small-container CPU utilization = %v, want ≈1", last.Utilization[resource.CPU])
	}
	if last.WaitMs[telemetry.WaitCPU] < 100000 {
		t.Errorf("small-container CPU waits = %v, want large", last.WaitMs[telemetry.WaitCPU])
	}
	bigLast := sBig[len(sBig)-1]
	if bigLast.Utilization[resource.CPU] > 0.2 {
		t.Errorf("big-container CPU utilization = %v, want small", bigLast.Utilization[resource.CPU])
	}
	if last.P95LatencyMs < 5*bigLast.P95LatencyMs {
		t.Errorf("overloaded p95 %v should dwarf big-container p95 %v", last.P95LatencyMs, bigLast.P95LatencyMs)
	}
	if bigLast.WaitMs[telemetry.WaitCPU] > last.WaitMs[telemetry.WaitCPU]/100 {
		t.Errorf("big-container CPU waits %v should be tiny vs %v", bigLast.WaitMs[telemetry.WaitCPU], last.WaitMs[telemetry.WaitCPU])
	}
}

func TestHighUtilizationWithoutDemandHasLowWaits(t *testing.T) {
	// The paper's central observation: utilization near the allocation does
	// NOT imply waits when the queue is stable. Load the container to
	// ≈85% CPU: utilization is HIGH but waits stay near zero.
	cpuOnly := workload.CPUIO(workload.CPUIOConfig{CPUWeight: 1, WorkingSetMB: 512, HotspotFraction: 0.95})
	e := mustEngine(t, cpuOnly, cat.AtStep(2), 5) // 2 cores
	// 9ms CPU/txn (+ tiny I/O CPU) → ≈185 rps ≈ 85% of 2000 core-ms.
	snaps := runIntervals(e, 185, 5)
	last := snaps[len(snaps)-1]
	u := last.Utilization[resource.CPU]
	if u < 0.7 || u > 0.98 {
		t.Fatalf("CPU utilization = %v, want high but stable", u)
	}
	// Waits per interval should be far below the overloaded case: the queue
	// drains every tick.
	if last.WaitMs[telemetry.WaitCPU] > 50000 {
		t.Errorf("waits at stable high utilization = %v, want modest", last.WaitMs[telemetry.WaitCPU])
	}
}

func TestLockWaitsIndependentOfContainer(t *testing.T) {
	// TPC-C at high concurrency: lock waits dominate and a bigger container
	// does not reduce latency much (Figure 13's mechanism).
	small := mustEngine(t, workload.TPCC(), cat.AtStep(5), 6)
	big := mustEngine(t, workload.TPCC(), cat.Largest(), 6)
	sSmall := runIntervals(small, 150, 8)
	sBig := runIntervals(big, 150, 8)
	lsSmall := sSmall[len(sSmall)-1]
	lsBig := sBig[len(sBig)-1]
	// Lock waits are the dominant wait class on the big container (>60%:
	// nothing else should be waiting there).
	if pct := lsBig.WaitPct(telemetry.WaitLock); pct < 0.6 {
		t.Errorf("big-container lock wait share = %v, want dominant", pct)
	}
	// Lock wait magnitude is container-independent.
	ratio := lsSmall.WaitMs[telemetry.WaitLock] / lsBig.WaitMs[telemetry.WaitLock]
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("lock waits should not depend on container size: ratio %v", ratio)
	}
	// Latency gains from the much bigger container are limited (less than
	// 2×) because the bottleneck is locks, provided the small container
	// already covers resource demand.
	if lsSmall.P95LatencyMs > 2*lsBig.P95LatencyMs {
		t.Errorf("lock-bound latency should not collapse with container size: %v vs %v",
			lsSmall.P95LatencyMs, lsBig.P95LatencyMs)
	}
}

func TestLockWaitsGrowWithLoad(t *testing.T) {
	e1 := mustEngine(t, workload.TPCC(), cat.Largest(), 7)
	e2 := mustEngine(t, workload.TPCC(), cat.Largest(), 7)
	low := runIntervals(e1, 30, 4)[3]
	high := runIntervals(e2, 200, 4)[3]
	perTxnLow := low.WaitMs[telemetry.WaitLock] / low.Transactions
	perTxnHigh := high.WaitMs[telemetry.WaitLock] / high.Transactions
	if perTxnHigh < 3*perTxnLow {
		t.Errorf("per-txn lock waits should grow superlinearly with load: %v → %v", perTxnLow, perTxnHigh)
	}
}

func TestBufferPoolWarming(t *testing.T) {
	w := workload.CPUIO(workload.CPUIOConfig{CPUWeight: 0.2, IOWeight: 1, WorkingSetMB: 2048, HotspotFraction: 0.95})
	e := mustEngine(t, w, cat.AtStep(4), 8) // 8GB memory
	snaps := runIntervals(e, 60, 30)
	first, last := snaps[0], snaps[len(snaps)-1]
	if last.MemoryUsedMB <= first.MemoryUsedMB {
		t.Errorf("cache should warm: %v → %v", first.MemoryUsedMB, last.MemoryUsedMB)
	}
	if last.MemoryUsedMB < w.WorkingSetMB {
		t.Errorf("cache should reach the working set: %v < %v", last.MemoryUsedMB, w.WorkingSetMB)
	}
	// Physical reads drop as the hot set becomes cached.
	if last.PhysicalReads > first.PhysicalReads/2 {
		t.Errorf("physical reads should fall as cache warms: %v → %v", first.PhysicalReads, last.PhysicalReads)
	}
	// Memory never exceeds the allocation.
	for _, s := range snaps {
		if s.MemoryUsedMB > cat.AtStep(4).Alloc[resource.Memory]+1e-9 {
			t.Fatalf("memory used %v exceeds allocation", s.MemoryUsedMB)
		}
	}
}

func TestMemoryShrinkCausesIOAndLatencySpike(t *testing.T) {
	// Figure 14 without ballooning: dropping memory below the working set
	// evicts cache, physical I/O jumps, latency rises sharply.
	w := workload.CPUIO(workload.CPUIOConfig{CPUWeight: 1, IOWeight: 1, WorkingSetMB: 3 * 1024, HotspotFraction: 0.97})
	e := mustEngine(t, w, cat.AtStep(3), 9) // 6GB: fits the 3GB working set
	warm := runIntervals(e, 60, 30)
	warmLast := warm[len(warm)-1]
	if warmLast.MemoryUsedMB < 3*1024*0.95 {
		t.Fatalf("not warm: %v MB", warmLast.MemoryUsedMB)
	}
	// Shrink to C1: 2GB < working set.
	e.SetContainer(cat.AtStep(1))
	after := runIntervals(e, 60, 3)
	shrunk := after[0]
	if shrunk.MemoryUsedMB > cat.AtStep(1).Alloc[resource.Memory] {
		t.Errorf("memory not evicted: %v", shrunk.MemoryUsedMB)
	}
	if shrunk.PhysicalReads < 5*warmLast.PhysicalReads {
		t.Errorf("physical reads should spike after eviction: %v vs %v", shrunk.PhysicalReads, warmLast.PhysicalReads)
	}
	if after[1].P95LatencyMs < 3*warmLast.P95LatencyMs {
		t.Errorf("latency should spike after eviction: %v vs %v", after[1].P95LatencyMs, warmLast.P95LatencyMs)
	}
	if after[1].WaitMs[telemetry.WaitMemory] < 10*warmLast.WaitMs[telemetry.WaitMemory]+1 {
		t.Errorf("memory waits should spike after eviction: %v vs %v",
			after[1].WaitMs[telemetry.WaitMemory], warmLast.WaitMs[telemetry.WaitMemory])
	}
}

func TestBallooningTargetClampsMemory(t *testing.T) {
	w := workload.CPUIO(workload.CPUIOConfig{CPUWeight: 1, IOWeight: 1, WorkingSetMB: 2048, HotspotFraction: 0.95})
	e := mustEngine(t, w, cat.AtStep(3), 10)
	runIntervals(e, 60, 25) // warm up
	if e.MemoryUsedMB() < 2000 {
		t.Fatalf("not warm: %v", e.MemoryUsedMB())
	}
	e.SetMemoryTargetMB(1500)
	if got := e.MemoryTargetMB(); got != 1500 {
		t.Fatalf("target = %v", got)
	}
	runIntervals(e, 60, 1)
	if e.MemoryUsedMB() > 1500 {
		t.Errorf("balloon target not enforced: used %v", e.MemoryUsedMB())
	}
	// Removing the target lets the cache grow back.
	e.SetMemoryTargetMB(0)
	runIntervals(e, 60, 25)
	if e.MemoryUsedMB() < 1900 {
		t.Errorf("cache should re-warm after balloon release: %v", e.MemoryUsedMB())
	}
}

func TestBallooningAboveWorkingSetIsHarmless(t *testing.T) {
	// Ballooning down to (but not below) the working set must not raise IO
	// much — the basis for detecting genuinely-low memory demand.
	w := workload.CPUIO(workload.CPUIOConfig{CPUWeight: 1, IOWeight: 1, WorkingSetMB: 1024, HotspotFraction: 1})
	e := mustEngine(t, w, cat.AtStep(3), 11)
	warm := runIntervals(e, 60, 25)
	base := warm[len(warm)-1].PhysicalReads
	e.SetMemoryTargetMB(1100) // still above the 1024MB working set
	after := runIntervals(e, 60, 3)
	if after[2].PhysicalReads > base*1.5 {
		t.Errorf("ballooning above working set raised IO: %v → %v", base, after[2].PhysicalReads)
	}
	e.SetMemoryTargetMB(600) // below the working set
	below := runIntervals(e, 60, 3)
	if below[2].PhysicalReads < base*3 {
		t.Errorf("ballooning below working set should raise IO: %v → %v", base, below[2].PhysicalReads)
	}
}

func TestP95AtLeastAverage(t *testing.T) {
	e := mustEngine(t, workload.DS2(), cat.AtStep(4), 12)
	for _, s := range runIntervals(e, 80, 5) {
		if s.P95LatencyMs < s.AvgLatencyMs {
			t.Errorf("p95 %v below average %v", s.P95LatencyMs, s.AvgLatencyMs)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustEngine(t, workload.TPCC(), cat.AtStep(3), 99)
	b := mustEngine(t, workload.TPCC(), cat.AtStep(3), 99)
	sa := runIntervals(a, 120, 5)
	sb := runIntervals(b, 120, 5)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("interval %d diverged:\n%+v\n%+v", i, sa[i], sb[i])
		}
	}
}

func TestNegativeOfferedTreatedAsZero(t *testing.T) {
	e := mustEngine(t, workload.DS2(), cat.AtStep(2), 13)
	e.Tick(-10)
	s := e.EndInterval()
	if s.Transactions != 0 {
		t.Errorf("negative offered load produced transactions: %v", s.Transactions)
	}
}

func TestQueueSheddingBoundsBacklog(t *testing.T) {
	// Extreme overload for a long time must not let latency grow without
	// bound: the backlog is capped at MaxQueueSeconds.
	e := mustEngine(t, workload.CPUIO(workload.DefaultCPUIOConfig()), cat.Smallest(), 14)
	snaps := runIntervals(e, 1000, 10)
	p95 := snaps[len(snaps)-1].P95LatencyMs
	// Max queue delay is 5s per resource; with three queues plus service
	// and lognormal noise, p95 must stay within a sane bound.
	if p95 > 60000 {
		t.Errorf("p95 = %v ms, backlog cap not effective", p95)
	}
	if snaps[9].P95LatencyMs > snaps[5].P95LatencyMs*2 {
		t.Errorf("latency still growing long after cap should bind: %v vs %v",
			snaps[9].P95LatencyMs, snaps[5].P95LatencyMs)
	}
}

func TestNoiseInjection(t *testing.T) {
	opts := Options{NoiseProb: 0.5, NoiseScale: 100}
	e, err := New(workload.DS2(), cat.AtStep(4), 15, opts)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < 60; t2++ {
		e.Tick(10)
	}
	s := e.EndInterval()
	// With 50% spike probability the system waits must be far above the
	// noiseless 30ms×60 baseline.
	if s.WaitMs[telemetry.WaitSystem] < 30*60*2 {
		t.Errorf("noise injection had no visible effect: system waits %v", s.WaitMs[telemetry.WaitSystem])
	}
}

func TestSetContainerGrowKeepsCache(t *testing.T) {
	e := mustEngine(t, workload.DS2(), cat.AtStep(2), 16)
	runIntervals(e, 60, 20)
	used := e.MemoryUsedMB()
	e.SetContainer(cat.AtStep(6))
	if e.MemoryUsedMB() != used {
		t.Errorf("growing the container should keep the cache: %v → %v", used, e.MemoryUsedMB())
	}
	if e.Container().Name != "C6" {
		t.Errorf("container = %s", e.Container().Name)
	}
}
