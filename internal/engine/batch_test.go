package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// randBatchWorkload draws a randomized workload for the equivalence
// property: the three standard families plus fully randomized CPU/IO
// mixes, working sets and hotspot fractions.
func randBatchWorkload(rng *rand.Rand) *workload.Workload {
	switch rng.Intn(4) {
	case 0:
		return workload.TPCC()
	case 1:
		return workload.DS2()
	default:
		return workload.CPUIO(workload.CPUIOConfig{
			CPUWeight:       0.2 + rng.Float64()*2,
			IOWeight:        0.2 + rng.Float64()*2,
			LogWeight:       rng.Float64(),
			WorkingSetMB:    256 + rng.Float64()*4000,
			HotspotFraction: 0.5 + rng.Float64()*0.5,
		})
	}
}

// TestTickBatchMatchesTick is the batching property test: across
// randomized workloads, containers, checkpoint settings, noise seeds,
// ballooning targets and batch chunk sizes, TickBatch must be
// byte-identical to calling Tick per element — same snapshots, same
// internal state, same RNG positions, same raw wait-type breakdown.
func TestTickBatchMatchesTick(t *testing.T) {
	metaRng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 40; trial++ {
		trial := trial
		seed := metaRng.Int63()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := randBatchWorkload(rng)
			cont := cat.AtStep(rng.Intn(cat.LadderLen()))
			opts := Options{
				WarmStart:          rng.Float64() < 0.5,
				CheckpointEverySec: []int{0, 3, 7, 30}[rng.Intn(4)],
				TicksPerInterval:   10 + rng.Intn(80),
			}
			if rng.Float64() < 0.3 {
				opts.NoiseProb = -1 // noise disabled
			} else if rng.Float64() < 0.5 {
				opts.NoiseProb = 0.2 // noisy: exercises the RNG draw order
			}
			engSeed := rng.Int63()
			ref, err := New(w, cont, engSeed, opts)
			if err != nil {
				t.Fatal(err)
			}
			bat, err := New(w, cont, engSeed, opts)
			if err != nil {
				t.Fatal(err)
			}
			var refSink, batSink []float64
			ref.SetLatencySink(func(ms float64) { refSink = append(refSink, ms) })
			bat.SetLatencySink(func(ms float64) { batSink = append(batSink, ms) })
			if rng.Float64() < 0.3 {
				target := 64 + rng.Float64()*1024
				ref.SetMemoryTargetMB(target)
				bat.SetMemoryTargetMB(target)
			}

			loadRng := rand.New(rand.NewSource(seed + 1))
			for interval := 0; interval < 4; interval++ {
				n := ref.TicksPerInterval()
				offered := make([]float64, n)
				base := loadRng.Float64() * 600
				for i := range offered {
					offered[i] = base * (0.5 + loadRng.Float64())
					if loadRng.Float64() < 0.05 {
						offered[i] = -offered[i] // negative loads clamp to zero
					}
				}
				for _, off := range offered {
					ref.Tick(off)
				}
				// Feed the batch engine the same loads in random chunks:
				// partial batches must compose exactly like one big one.
				for lo := 0; lo < n; {
					hi := lo + 1 + loadRng.Intn(n-lo)
					bat.TickBatch(offered[lo:hi])
					lo = hi
				}

				rs, bs := ref.EndInterval(), bat.EndInterval()
				if rs != bs {
					t.Fatalf("interval %d: snapshots differ:\nref %+v\nbat %+v", interval, rs, bs)
				}
				rc, ri, rl := ref.SheddedWork()
				bc, bi, bl := bat.SheddedWork()
				if rc != bc || ri != bi || rl != bl {
					t.Fatalf("interval %d: shedded work differs", interval)
				}
				if ref.MemoryUsedMB() != bat.MemoryUsedMB() {
					t.Fatalf("interval %d: buffer pool differs: %v vs %v",
						interval, ref.MemoryUsedMB(), bat.MemoryUsedMB())
				}
				rwt, bwt := ref.LastIntervalWaitTypes(), bat.LastIntervalWaitTypes()
				if len(rwt) != len(bwt) {
					t.Fatalf("interval %d: wait-type maps differ in size", interval)
				}
				for k, v := range rwt {
					if bwt[k] != v {
						t.Fatalf("interval %d: wait type %s: %v vs %v", interval, k, v, bwt[k])
					}
				}
			}
			if len(refSink) != len(batSink) {
				t.Fatalf("sink lengths differ: %d vs %d", len(refSink), len(batSink))
			}
			for i := range refSink {
				if refSink[i] != batSink[i] {
					t.Fatalf("sink sample %d differs: %v vs %v", i, refSink[i], batSink[i])
				}
			}
			// The engines' RNGs must be at the same position: a further
			// identical interval stays identical.
			ref.Tick(100)
			bat.TickBatch([]float64{100})
			if rs, bs := ref.EndInterval(), bat.EndInterval(); rs != bs {
				t.Fatalf("post-run RNG positions diverged:\nref %+v\nbat %+v", rs, bs)
			}
		})
	}
}

// TestTickBatchEmpty: a zero-length batch is a no-op.
func TestTickBatchEmpty(t *testing.T) {
	e := mustEngine(t, workload.DS2(), cat.AtStep(4), 9)
	e.Tick(50)
	before := e.acc
	e.TickBatch(nil)
	e.TickBatch([]float64{})
	if e.acc.ticks != before.ticks || e.acc.txns != before.txns {
		t.Fatal("empty TickBatch mutated the accumulator")
	}
}

// TestResetReleasesOversizedLatSamples is the retained-capacity regression
// test: a burst interval (far more ticks than TicksPerInterval before
// EndInterval) must not pin its oversized latency-sample array for the
// engine's lifetime, while a normal interval's array keeps being reused.
func TestResetReleasesOversizedLatSamples(t *testing.T) {
	e := mustEngine(t, workload.DS2(), cat.AtStep(5), 11)
	// Burst: enough high-load ticks to exceed the retained cap (24
	// samples per tick at offered >= 24).
	for i := 0; i < maxRetainedLatSamples/24+50; i++ {
		e.Tick(500)
	}
	if len(e.acc.latSamples) <= maxRetainedLatSamples {
		t.Fatalf("burst interval produced only %d samples; test needs > %d",
			len(e.acc.latSamples), maxRetainedLatSamples)
	}
	e.EndInterval()
	if c := cap(e.acc.latSamples); c > maxRetainedLatSamples {
		t.Fatalf("oversized backing array retained after reset: cap %d > %d", c, maxRetainedLatSamples)
	}

	// Normal intervals: the (sane-sized) array is retained and reused.
	for i := 0; i < e.TicksPerInterval(); i++ {
		e.Tick(500)
	}
	e.EndInterval()
	c1 := cap(e.acc.latSamples)
	if c1 == 0 || c1 > maxRetainedLatSamples {
		t.Fatalf("normal interval retained cap %d, want 1..%d", c1, maxRetainedLatSamples)
	}
	for i := 0; i < e.TicksPerInterval(); i++ {
		e.Tick(500)
	}
	e.EndInterval()
	if c2 := cap(e.acc.latSamples); c2 != c1 {
		t.Fatalf("steady-state interval reallocated the sample array: cap %d -> %d", c1, c2)
	}
}

// TestVisitLastIntervalWaitTypes: the zero-alloc visitor yields exactly
// the map LastIntervalWaitTypes materializes — same types, bit-identical
// values — and visits nothing before the first interval.
func TestVisitLastIntervalWaitTypes(t *testing.T) {
	e := mustEngine(t, workload.TPCC(), cat.AtStep(3), 13)
	visits := 0
	e.VisitLastIntervalWaitTypes(func(telemetry.WaitType, float64) { visits++ })
	if visits != 0 {
		t.Fatalf("visitor fired %d times before the first interval", visits)
	}

	for i := 0; i < e.TicksPerInterval(); i++ {
		e.Tick(200)
	}
	e.EndInterval()

	want := e.LastIntervalWaitTypes()
	got := map[telemetry.WaitType]float64{}
	e.VisitLastIntervalWaitTypes(func(wt telemetry.WaitType, ms float64) { got[wt] += ms })
	if len(got) != len(want) {
		t.Fatalf("visitor produced %d types, map %d", len(got), len(want))
	}
	var total float64
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("type %s: visitor %v != map %v", k, got[k], v)
		}
		total += v
	}
	if total <= 0 || math.IsNaN(total) {
		t.Fatalf("degenerate wait total %v", total)
	}
	// Folding the breakdown back through the classifier reproduces the
	// snapshot's class totals (the estimator-facing contract).
	agg := telemetry.AggregateWaitTypes(want)
	for cls, ms := range agg {
		if ms < 0 {
			t.Fatalf("class %d negative after aggregation: %v", cls, ms)
		}
	}
}
