// Package engine simulates a container-constrained relational database
// server — the substrate the paper prototypes on (Azure SQL Database /
// SQL Server). The simulation reproduces, at one-second granularity, the
// causal structure the paper's demand-estimation signals depend on:
//
//   - fluid queues per physical resource (CPU, disk I/O, log I/O): when
//     per-tick demand exceeds the container's allocation, a backlog builds,
//     requests wait (wait-statistics accrue) and latency rises;
//   - a buffer pool with a hotspot working set: cache warms as pages are
//     read, misses become physical disk I/Os, and shrinking memory below
//     the working set converts memory shortfall into disk-I/O demand (the
//     mechanism behind ballooning, Section 4.3 and Figure 14);
//   - an application-level lock model whose waits grow with offered
//     concurrency and are untouched by container size (the mechanism behind
//     the Figure 13 drill-down);
//   - per-request latency sampling with multiplicative variance, so tail
//     (95th-percentile) latency behaves realistically;
//   - optional telemetry noise injection (outlier spikes) to exercise the
//     robust statistics.
//
// The engine emits one telemetry.Snapshot per billing interval; everything
// the auto-scaler learns, it learns from those snapshots.
package engine

import (
	"fmt"
	"math"
	"math/rand"

	"daasscale/internal/resource"
	"daasscale/internal/stats"
	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// Options tunes the engine's physical model. The zero value is completed by
// DefaultOptions.
type Options struct {
	// BaseLatencyMs is the fixed per-request overhead (network round trips,
	// parsing, result streaming) independent of resources.
	BaseLatencyMs float64
	// IOServiceMs is the service time of one physical disk I/O at an empty
	// queue.
	IOServiceMs float64
	// LogServiceMsPerKB is the log-write service time per kilobyte.
	LogServiceMsPerKB float64
	// MemStallMs is the per-request stall incurred when a hot-set access
	// misses the buffer pool.
	MemStallMs float64
	// LatencySigma is the lognormal dispersion of per-request latency
	// around the modelled mean; it shapes the p95/mean ratio.
	LatencySigma float64
	// ColdCacheMB is the buffer-pool size immediately after a restart.
	ColdCacheMB float64
	// WarmStart starts the buffer pool pre-warmed to the working set
	// (clamped to the container's memory), modelling a database measured
	// after its usual warm-up, as in the paper's runs.
	WarmStart bool
	// WarmMBPerPhysRead is how much cache a physical read warms (page size).
	WarmMBPerPhysRead float64
	// MaxQueueSeconds caps each resource backlog at this many seconds of
	// capacity; excess work is shed (modelling throttling/timeouts).
	MaxQueueSeconds float64
	// NoiseProb is the per-tick probability of an outlier telemetry spike
	// (a transient system activity); NoiseScale is its magnitude. Zero
	// selects the default; a negative value disables noise entirely.
	NoiseProb  float64
	NoiseScale float64
	// CheckpointEverySec, when > 0, models periodic checkpoints: every
	// CheckpointEverySec seconds the engine flushes accumulated dirty pages
	// as a burst of disk writes — one of the "transient system activities
	// such as checkpoints interacting with workload" the paper names as a
	// telemetry noise source (Section 3). 0 disables checkpoints.
	CheckpointEverySec int
	// TicksPerInterval is the number of one-second ticks per billing
	// interval (60 = one simulated minute, the paper's compressed billing
	// interval).
	TicksPerInterval int
}

// DefaultOptions returns the model constants used by the experiments.
func DefaultOptions() Options {
	return Options{
		BaseLatencyMs:     12,
		IOServiceMs:       0.35,
		LogServiceMsPerKB: 0.04,
		MemStallMs:        18,
		LatencySigma:      0.35,
		ColdCacheMB:       256,
		WarmMBPerPhysRead: 8.0 / 1024, // 8KB pages
		MaxQueueSeconds:   2,
		NoiseProb:         0.01,
		NoiseScale:        40,
		TicksPerInterval:  60,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.BaseLatencyMs == 0 {
		o.BaseLatencyMs = d.BaseLatencyMs
	}
	if o.IOServiceMs == 0 {
		o.IOServiceMs = d.IOServiceMs
	}
	if o.LogServiceMsPerKB == 0 {
		o.LogServiceMsPerKB = d.LogServiceMsPerKB
	}
	if o.MemStallMs == 0 {
		o.MemStallMs = d.MemStallMs
	}
	if o.LatencySigma == 0 {
		o.LatencySigma = d.LatencySigma
	}
	if o.ColdCacheMB == 0 {
		o.ColdCacheMB = d.ColdCacheMB
	}
	if o.WarmMBPerPhysRead == 0 {
		o.WarmMBPerPhysRead = d.WarmMBPerPhysRead
	}
	if o.MaxQueueSeconds == 0 {
		o.MaxQueueSeconds = d.MaxQueueSeconds
	}
	if o.NoiseProb == 0 {
		o.NoiseProb = d.NoiseProb
	}
	if o.NoiseScale == 0 {
		o.NoiseScale = d.NoiseScale
	}
	if o.TicksPerInterval == 0 {
		o.TicksPerInterval = d.TicksPerInterval
	}
	return o
}

// Contention carries the shared-channel wait-inflation multipliers a
// hosting fabric imposes on the engine for the coming interval(s) — the
// noisy-neighbor model's per-tenant output (fabric.ServerInflation mapped
// onto the wait classes each channel stalls). Each multiplier inflates
// one class of service/wait time: CPU the per-instruction service and CPU
// queueing (cache interference), Memory the buffer-pool page-in stalls,
// and LogIO the log-write service and waits. Multipliers are ≥ 1; the
// identity multipliers reproduce the uncontended engine bit-for-bit
// (multiplying by exactly 1.0 is an IEEE-754 identity), which is what
// keeps zero-contention runs byte-identical to the historical outputs.
//
// The multipliers deliberately inflate only waits and latency, never the
// demand/served/billing series: interference steals time, not accounted
// capacity. That keeps utilization telemetry truthful and makes the
// placement optimizer's baseline-division p95 prediction exact to first
// order.
type Contention struct {
	CPU    float64
	Memory float64
	LogIO  float64
}

// NoContention is the identity multiplier set.
func NoContention() Contention { return Contention{CPU: 1, Memory: 1, LogIO: 1} }

// normalized lifts unset or sub-identity multipliers to 1 (a fabric never
// speeds a tenant up; the zero value must mean "uncontended").
func (c Contention) normalized() Contention {
	if !(c.CPU > 1) {
		c.CPU = 1
	}
	if !(c.Memory > 1) {
		c.Memory = 1
	}
	if !(c.LogIO > 1) {
		c.LogIO = 1
	}
	return c
}

// Engine simulates one tenant database inside a resource container.
type Engine struct {
	w    *workload.Workload
	prof workload.Profile
	opts Options
	cont resource.Container
	rng  *rand.Rand

	// contention is the external wait-inflation multiplier set, installed
	// between intervals by a hosting cluster runner (identity otherwise).
	contention Contention

	// Buffer-pool state.
	usedMB      float64
	memTargetMB float64 // 0 = no ballooning target

	// Checkpoint state: dirty pages accumulated since the last checkpoint.
	dirtyPages float64

	// Fluid-queue backlogs.
	backlogCPUms  float64
	backlogIOOps  float64
	backlogLogKB  float64
	sheddedCPUms  float64
	sheddedIOOps  float64
	sheddedLogKB  float64
	intervalIndex int
	tick          int

	latencySink func(ms float64)

	// lastWaitMs holds the per-class wait totals of the most recently
	// completed interval. The per-wait-type breakdown a real DBMS would
	// report is derived from it on demand (LastIntervalWaitTypes,
	// VisitLastIntervalWaitTypes), so closing an interval allocates and
	// fills no map.
	lastWaitMs [telemetry.NumWaitClasses]float64

	acc intervalAccumulator
}

// intervalAccumulator collects per-tick observations for one billing
// interval.
type intervalAccumulator struct {
	servedCPU, capCPU float64
	servedIO, capIO   float64
	servedLog, capLog float64
	peakUtil          resource.Vector
	waitMs            [telemetry.NumWaitClasses]float64
	latSamples        []float64
	txns              float64
	offeredSum        float64
	physReads         float64
	physWrites        float64
	ticks             int
}

// MaxLatencySamplesPerTick caps how many per-request latency samples one
// tick records (and feeds the latency sink): min(offered, this) per tick.
// Collectors sizing run-level sample buffers use it as the per-tick upper
// bound.
const MaxLatencySamplesPerTick = 24

// maxRetainedLatSamples caps the latency-sample backing array an engine
// keeps across interval resets. A default interval produces at most
// 24×TicksPerInterval samples (1440), far under the cap, so steady-state
// turnover still reuses one array; only a burst interval (a caller ticking
// far past TicksPerInterval before EndInterval) overshoots it, and without
// the cap that one burst would pin its oversized array for the engine's
// whole lifetime.
const maxRetainedLatSamples = 4096

// reset clears the accumulator for the next interval while keeping the
// latency-sample backing array, so steady-state interval turnover does not
// reallocate it. Backing arrays beyond maxRetainedLatSamples are released
// instead of retained.
func (a *intervalAccumulator) reset() {
	lat := a.latSamples[:0]
	if cap(lat) > maxRetainedLatSamples {
		lat = nil
	}
	*a = intervalAccumulator{}
	a.latSamples = lat
}

// New creates an engine for the workload inside the given container. The
// seed makes every run reproducible. The workload must validate.
func New(w *workload.Workload, cont resource.Container, seed int64, opts Options) (*Engine, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	o := opts.withDefaults()
	e := &Engine{
		w:          w,
		prof:       w.MixProfile(),
		opts:       o,
		cont:       cont,
		rng:        rand.New(rand.NewSource(seed)),
		contention: NoContention(),
	}
	start := o.ColdCacheMB
	if o.WarmStart && w.WorkingSetMB > start {
		start = w.WorkingSetMB
	}
	e.usedMB = math.Min(start, cont.Alloc[resource.Memory])
	return e, nil
}

// Container returns the current container.
func (e *Engine) Container() resource.Container { return e.cont }

// Workload returns the workload the engine runs.
func (e *Engine) Workload() *workload.Workload { return e.w }

// SetContainer resizes the container (an online operation in the DaaS).
// Shrinking memory evicts cache immediately; growing memory requires the
// cache to re-warm through physical reads.
func (e *Engine) SetContainer(c resource.Container) {
	e.cont = c
	if e.usedMB > c.Alloc[resource.Memory] {
		e.usedMB = c.Alloc[resource.Memory]
	}
}

// SetContention installs the shared-channel wait-inflation multipliers
// for subsequent ticks. Cluster runners call it between intervals, from
// the serial apply phase, with the hosting node's inflation; multipliers
// below 1 (including the zero value) are lifted to the identity.
func (e *Engine) SetContention(c Contention) { e.contention = c.normalized() }

// ContentionMultipliers returns the active multiplier set.
func (e *Engine) ContentionMultipliers() Contention { return e.contention }

// MigrateRestart models the buffer-pool consequence of migrating the
// tenant to another node: the cache restarts cold and must re-warm
// through physical reads — the latency charge every optimizer-planned
// migration pays, on top of riding the failable actuation channel.
func (e *Engine) MigrateRestart() {
	if e.usedMB > e.opts.ColdCacheMB {
		e.usedMB = e.opts.ColdCacheMB
	}
}

// SetMemoryTargetMB installs a ballooning target below the container's
// memory allocation; the buffer pool is clamped to the target. A target of
// 0 removes ballooning.
func (e *Engine) SetMemoryTargetMB(mb float64) { e.memTargetMB = mb }

// MemoryTargetMB returns the current ballooning target (0 when none).
func (e *Engine) MemoryTargetMB() float64 { return e.memTargetMB }

// MemoryUsedMB returns the memory currently in use (dominated by caches).
func (e *Engine) MemoryUsedMB() float64 { return e.usedMB }

// SetLatencySink installs a callback receiving every per-request latency
// sample as it is generated — the hook the experiment harness uses to
// compute run-level percentiles across container changes.
func (e *Engine) SetLatencySink(fn func(ms float64)) { e.latencySink = fn }

// IntervalLatencies returns the latency samples recorded since the last
// EndInterval, in generation order. The slice aliases the engine's internal
// buffer: it is valid only until the next Tick, TickBatch or EndInterval
// call and must not be mutated. Bulk collectors copy it once per interval
// instead of installing a per-sample latency sink; the two observe the
// identical sample stream (same values, same order).
func (e *Engine) IntervalLatencies() []float64 { return e.acc.latSamples }

// SheddedWork reports the cumulative work shed because a resource backlog
// exceeded its cap (CPU core-ms, disk I/Os, log KB) — the engine's stand-in
// for request timeouts under sustained overload.
func (e *Engine) SheddedWork() (cpuMs, ioOps, logKB float64) {
	return e.sheddedCPUms, e.sheddedIOOps, e.sheddedLogKB
}

// IntervalIndex returns the index of the billing interval being
// accumulated.
func (e *Engine) IntervalIndex() int { return e.intervalIndex }

// TicksPerInterval returns the configured interval length in ticks.
func (e *Engine) TicksPerInterval() int { return e.opts.TicksPerInterval }

// effectiveMemoryMB is the buffer-pool ceiling: the container allocation,
// further limited by any ballooning target.
func (e *Engine) effectiveMemoryMB() float64 {
	capMB := e.cont.Alloc[resource.Memory]
	if e.memTargetMB > 0 && e.memTargetMB < capMB {
		capMB = e.memTargetMB
	}
	return capMB
}

// hitRates returns the buffer-pool hit fractions for hot and cold accesses.
func (e *Engine) hitRates() (hot, cold float64) {
	ws := e.w.WorkingSetMB
	if ws <= 0 {
		hot = 1
	} else {
		hot = math.Min(1, e.usedMB/ws)
	}
	coldData := e.w.DataSizeMB - ws
	if coldData <= 0 {
		cold = 1
	} else {
		cold = math.Min(1, math.Max(0, e.usedMB-ws)/coldData)
	}
	return hot, cold
}

// Tick advances the simulation by one second with the given offered load
// (transactions arriving during the second).
func (e *Engine) Tick(offered float64) {
	if offered < 0 {
		offered = 0
	}
	o := &e.opts
	p := &e.prof

	// --- Buffer pool ---------------------------------------------------
	memCap := e.effectiveMemoryMB()
	if e.usedMB > memCap {
		e.usedMB = memCap // forced eviction
	}
	hHot, hCold := e.hitRates()
	missFrac := e.w.HotspotFraction*(1-hHot) + (1-e.w.HotspotFraction)*(1-hCold)
	logicalReads := offered * p.LogicalReads
	physReads := logicalReads * missFrac
	physWrites := offered * p.WritePages
	// Checkpoints defer a share of the page flushes, then burst them. The
	// long-run write volume is identical; the telemetry gets spikier.
	if o.CheckpointEverySec > 0 {
		deferred := physWrites * 0.5
		physWrites -= deferred
		e.dirtyPages += deferred
		if e.tick%o.CheckpointEverySec == o.CheckpointEverySec-1 {
			physWrites += e.dirtyPages
			e.dirtyPages = 0
		}
	}

	// --- Fluid queues ----------------------------------------------------
	perTxnPhysIO := 0.0
	if offered > 0 {
		perTxnPhysIO = (physReads + physWrites) / offered
	}
	cpuDemand := offered*p.CPUms + (physReads+physWrites)*0.03 // I/O handling CPU
	cpuCap := e.cont.Alloc[resource.CPU]
	servedCPU, dCPU := e.drain(&e.backlogCPUms, cpuDemand, cpuCap, &e.sheddedCPUms)

	ioDemand := physReads + physWrites
	ioCap := e.cont.Alloc[resource.DiskIO]
	servedIO, dIO := e.drain(&e.backlogIOOps, ioDemand, ioCap, &e.sheddedIOOps)

	// Only *served* reads bring pages into the cache: warming is bounded by
	// the container's I/O capacity, which is why recovering an evicted
	// working set takes so long (Figure 14's slow tail).
	if ioDemand > 0 {
		servedReads := servedIO * physReads / ioDemand
		warmCap := math.Min(memCap, e.w.DataSizeMB)
		e.usedMB = math.Min(warmCap, e.usedMB+servedReads*o.WarmMBPerPhysRead)
	}

	logDemand := offered * p.LogKB
	logCap := e.cont.Alloc[resource.LogIO]
	servedLog, dLog := e.drain(&e.backlogLogKB, logDemand, logCap, &e.sheddedLogKB)

	// Graded queueing penalty below saturation: even when the queue drains
	// every tick, service-time variance makes latency climb steeply as
	// utilization approaches the allocation (an M/M/1-style ρ/(1−ρ) term).
	// This is what lets a loose latency goal ride a container near
	// saturation while a tight goal needs headroom.
	congest := func(demand, capacity float64) float64 {
		if capacity <= 0 {
			return 0
		}
		rho := demand / capacity
		if rho > 0.98 {
			rho = 0.98
		}
		f := rho * rho / (1 - rho)
		if f > 25 {
			f = 25
		}
		return f
	}
	// Shared-channel contention (noisy neighbors on the hosting node)
	// multiplies the affected service and wait terms. The multipliers are
	// exactly 1 outside cluster runs, and x*1.0 is an IEEE-754 identity,
	// so the uncontended arithmetic is bit-for-bit the historical one.
	cpuCongest := p.CPUms * congest(cpuDemand, cpuCap) * e.contention.CPU
	ioCongest := perTxnPhysIO * o.IOServiceMs * congest(ioDemand, ioCap)
	logCongest := p.LogKB * o.LogServiceMsPerKB * congest(logDemand, logCap) * e.contention.LogIO

	// --- Wait statistics -------------------------------------------------
	// Requests whose work is still queued wait the whole tick; the number
	// of waiting requests is backlog divided by per-request demand.
	waitMs := func(backlog, perTxn float64) float64 {
		if backlog <= 0 {
			return 0
		}
		per := math.Max(perTxn, 0.1)
		return backlog / per * 1000
	}
	a := &e.acc
	a.waitMs[telemetry.WaitCPU] += waitMs(e.backlogCPUms, p.CPUms) * e.contention.CPU
	a.waitMs[telemetry.WaitDiskIO] += waitMs(e.backlogIOOps, perTxnPhysIO)
	a.waitMs[telemetry.WaitLogIO] += waitMs(e.backlogLogKB, p.LogKB) * e.contention.LogIO

	// Hot-set buffer misses stall requests on page-ins; buffer-pool
	// contention inflates each stall.
	hotMissPerTxn := e.w.HotspotFraction * (1 - hHot)
	memStall := hotMissPerTxn * o.MemStallMs * e.contention.Memory
	a.waitMs[telemetry.WaitMemory] += offered * memStall

	// Application locks: waiters queue behind concurrent holders. Queue
	// length follows Little's law on conflicting transactions; waits are
	// therefore superlinear in offered load and independent of container
	// size.
	holders := offered * p.LockConflictProb * p.LockHoldMs / 1000
	perTxnLockWait := p.LockConflictProb * holders * p.LockHoldMs
	a.waitMs[telemetry.WaitLock] += offered * perTxnLockWait

	perTxnLatch := p.LatchProb * 1.5
	a.waitMs[telemetry.WaitLatch] += offered * perTxnLatch

	sys := 30.0
	if o.NoiseProb > 0 && e.rng.Float64() < o.NoiseProb {
		// Transient system activity (checkpoint, backup) — an outlier spike.
		sys *= o.NoiseScale
		cls := telemetry.WaitClasses[e.rng.Intn(telemetry.NumWaitClasses)]
		a.waitMs[cls] += sys * 10
	}
	a.waitMs[telemetry.WaitSystem] += sys

	// --- Latency ---------------------------------------------------------
	if offered > 0 {
		perTxnLatency := o.BaseLatencyMs +
			p.CPUms*e.contention.CPU +
			perTxnPhysIO*o.IOServiceMs +
			p.LogKB*o.LogServiceMsPerKB*e.contention.LogIO +
			cpuCongest + ioCongest + logCongest +
			dCPU + dIO + dLog +
			memStall +
			perTxnLockWait +
			perTxnLatch
		n := int(math.Min(offered, MaxLatencySamplesPerTick))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			f := math.Exp(o.LatencySigma * e.rng.NormFloat64())
			sample := perTxnLatency * f
			a.latSamples = append(a.latSamples, sample)
			if e.latencySink != nil {
				e.latencySink(sample)
			}
		}
		a.txns += offered
	}

	// --- Accumulate ------------------------------------------------------
	a.servedCPU += servedCPU
	a.capCPU += cpuCap
	a.servedIO += servedIO
	a.capIO += ioCap
	a.servedLog += servedLog
	a.capLog += logCap
	peak := func(k resource.Kind, served, capacity float64) {
		if capacity > 0 && served/capacity > a.peakUtil[k] {
			a.peakUtil[k] = served / capacity
		}
	}
	peak(resource.CPU, servedCPU, cpuCap)
	peak(resource.DiskIO, servedIO, ioCap)
	peak(resource.LogIO, servedLog, logCap)
	a.offeredSum += offered
	a.physReads += physReads
	a.physWrites += physWrites
	a.ticks++
	e.tick++
}

// drain advances one fluid queue by a tick: demand joins the backlog, up to
// capacity units are served, the backlog is capped at MaxQueueSeconds of
// capacity (excess shed), and the queueing delay (ms) a new arrival would
// experience is returned.
func (e *Engine) drain(backlog *float64, demand, capacity float64, shed *float64) (served, delayMs float64) {
	total := *backlog + demand
	served = math.Min(total, capacity)
	rest := total - served
	maxQ := e.opts.MaxQueueSeconds * capacity
	if rest > maxQ {
		*shed += rest - maxQ
		rest = maxQ
	}
	*backlog = rest
	if capacity > 0 {
		delayMs = rest / capacity * 1000
	} else if rest > 0 {
		delayMs = e.opts.MaxQueueSeconds * 1000
	}
	return served, delayMs
}

// EndInterval closes the current billing interval, returning its telemetry
// snapshot and resetting the accumulators. Call after TicksPerInterval
// ticks (the sim harness enforces this; calling early yields a snapshot
// over the ticks so far).
func (e *Engine) EndInterval() telemetry.Snapshot {
	a := &e.acc
	s := telemetry.Snapshot{
		Interval:       e.intervalIndex,
		Container:      e.cont.Name,
		Step:           e.cont.Step,
		Cost:           e.cont.Cost,
		WaitMs:         a.waitMs,
		Transactions:   a.txns,
		MemoryUsedMB:   e.usedMB,
		PhysicalReads:  a.physReads,
		PhysicalWrites: a.physWrites,
	}
	if a.capCPU > 0 {
		s.Utilization[resource.CPU] = a.servedCPU / a.capCPU
	}
	if mem := e.cont.Alloc[resource.Memory]; mem > 0 {
		s.Utilization[resource.Memory] = e.usedMB / mem
	}
	if a.capIO > 0 {
		s.Utilization[resource.DiskIO] = a.servedIO / a.capIO
	}
	if a.capLog > 0 {
		s.Utilization[resource.LogIO] = a.servedLog / a.capLog
	}
	s.UtilizationPeak = a.peakUtil
	s.UtilizationPeak[resource.Memory] = s.Utilization[resource.Memory]
	if a.ticks > 0 {
		s.OfferedRPS = a.offeredSum / float64(a.ticks)
	}
	if len(a.latSamples) > 0 {
		var sum float64
		for _, l := range a.latSamples {
			sum += l
		}
		s.AvgLatencyMs = sum / float64(len(a.latSamples))
		// The samples are discarded right after, so select the tail
		// percentile in place — no copy, no sort.
		// The sample array is reset right after this, so the selection's
		// in-place permutation is dead state: the unordered variant's
		// cheaper partition scheme applies.
		s.P95LatencyMs = stats.QuantileSelectUnordered(a.latSamples, 0.95)
	}
	// Keep the interval's per-class wait totals so the raw per-wait-type
	// view a real DBMS reports (Section 3.1 of the paper) can be derived
	// on demand — LastIntervalWaitTypes and VisitLastIntervalWaitTypes.
	// Closing an interval used to clear and refill a 28-entry scratch map
	// here for every tenant whether or not anyone read it; the cluster hot
	// path now just copies this array.
	e.lastWaitMs = a.waitMs

	e.acc.reset()
	e.intervalIndex++
	return s
}

// LastIntervalWaitTypes returns the per-wait-type breakdown of the most
// recently completed interval's waits — the raw-telemetry view a production
// DBMS exposes. telemetry.AggregateWaitTypes folds it back into the classes
// the snapshot carries. The map is freshly built per call; hot paths that
// only need to fold or inspect the breakdown should use
// VisitLastIntervalWaitTypes instead.
func (e *Engine) LastIntervalWaitTypes() map[telemetry.WaitType]float64 {
	out := make(map[telemetry.WaitType]float64, 32)
	e.VisitLastIntervalWaitTypes(func(t telemetry.WaitType, ms float64) { out[t] += ms })
	return out
}

// VisitLastIntervalWaitTypes calls fn once per wait type with that type's
// share of the most recently completed interval's waits — the same
// breakdown LastIntervalWaitTypes materializes, bit-identical values in
// the same (deterministic catalog) order, with zero allocation. Before the
// first EndInterval it visits nothing.
func (e *Engine) VisitLastIntervalWaitTypes(fn func(telemetry.WaitType, float64)) {
	for _, class := range telemetry.WaitClasses {
		telemetry.VisitClassWaits(class, e.lastWaitMs[class], fn)
	}
}
