package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
	"daasscale/internal/workload"
)

// steadySnapshot runs a fresh engine at a constant load until warm and
// returns the last snapshot.
func steadySnapshot(t *testing.T, w *workload.Workload, step int, rps float64, intervals int) telemetry.Snapshot {
	t.Helper()
	e, err := New(w, cat.AtStep(step), 21, Options{NoiseProb: -1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	var last telemetry.Snapshot
	for i := 0; i < intervals; i++ {
		for k := 0; k < e.TicksPerInterval(); k++ {
			e.Tick(rps)
		}
		last = e.EndInterval()
	}
	return last
}

func TestCongestionLatencyGradient(t *testing.T) {
	// Below saturation the queue drains every tick, yet latency must climb
	// with utilization (the M/M/1-style term): this is what differentiates
	// tight and loose latency goals.
	cpuOnly := workload.CPUIO(workload.CPUIOConfig{CPUWeight: 1, WorkingSetMB: 256, HotspotFraction: 1})
	// C2 = 2000 core-ms/s; 9ms/txn ⇒ ~22 rps per 10% utilization.
	low := steadySnapshot(t, cpuOnly, 2, 60, 4)   // ~28% utilization
	mid := steadySnapshot(t, cpuOnly, 2, 140, 4)  // ~65%
	high := steadySnapshot(t, cpuOnly, 2, 200, 4) // ~92%
	if !(low.AvgLatencyMs < mid.AvgLatencyMs && mid.AvgLatencyMs < high.AvgLatencyMs) {
		t.Errorf("latency should rise with utilization: %.1f, %.1f, %.1f",
			low.AvgLatencyMs, mid.AvgLatencyMs, high.AvgLatencyMs)
	}
	// The gradient must be convex enough to matter: near saturation the
	// penalty is a multiple, not a rounding error.
	if high.AvgLatencyMs < 1.5*low.AvgLatencyMs {
		t.Errorf("congestion penalty too weak: %.1f vs %.1f", high.AvgLatencyMs, low.AvgLatencyMs)
	}
	// But utilization stays below 1 — this is congestion, not backlog.
	if high.Utilization[resource.CPU] >= 1 {
		t.Errorf("test assumption broken: utilization %v saturated", high.Utilization[resource.CPU])
	}
}

func TestLogQueueSaturation(t *testing.T) {
	logHeavy := workload.CPUIO(workload.CPUIOConfig{LogWeight: 1, WorkingSetMB: 256, HotspotFraction: 1})
	// C0 log capacity is 256 KB/s; 24KB per txn ⇒ ≈11 rps saturates, while
	// disk I/O (6 writes/txn vs 100 IOPS) still has headroom.
	s := steadySnapshot(t, logHeavy, 0, 15, 4)
	if s.Utilization[resource.LogIO] < 0.95 {
		t.Errorf("log utilization = %v, want saturated", s.Utilization[resource.LogIO])
	}
	if s.WaitMs[telemetry.WaitLogIO] < 10_000 {
		t.Errorf("log waits = %v, want large", s.WaitMs[telemetry.WaitLogIO])
	}
	if got := s.WaitPct(telemetry.WaitLogIO); got < 0.5 {
		t.Errorf("log wait share = %v, want dominant", got)
	}
}

func TestMemoryUtilizationRarelyLow(t *testing.T) {
	// The paper's observation that motivates ballooning: caches do not
	// release memory, so memory utilization stays high even at light load.
	s := steadySnapshot(t, workload.TPCC(), 1, 20, 20)
	if s.Utilization[resource.Memory] < 0.7 {
		t.Errorf("memory utilization = %v, want high despite light load", s.Utilization[resource.Memory])
	}
}

func TestUtilizationPeakAtLeastAverage(t *testing.T) {
	e, err := New(workload.DS2(), cat.AtStep(3), 5, Options{NoiseProb: -1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < e.TicksPerInterval(); i++ {
		e.Tick(60 * (0.5 + rng.Float64())) // deliberately uneven, sub-saturation load
	}
	s := e.EndInterval()
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO, resource.LogIO} {
		if s.UtilizationPeak[k] < s.Utilization[k] {
			t.Errorf("%v: peak %v below average %v", k, s.UtilizationPeak[k], s.Utilization[k])
		}
		if s.UtilizationPeak[k] > 1+1e-9 {
			t.Errorf("%v: peak %v above 1", k, s.UtilizationPeak[k])
		}
	}
	// Under uneven sub-saturation load the peak must be strictly above the
	// average (asserted on CPU, which never saturates here).
	if s.UtilizationPeak[resource.CPU] <= s.Utilization[resource.CPU] {
		t.Error("uneven load should produce a strictly higher CPU peak")
	}
}

func TestSheddedWorkAccounting(t *testing.T) {
	e, err := New(workload.CPUIO(workload.DefaultCPUIOConfig()), cat.Smallest(), 7, Options{NoiseProb: -1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if c, i, l := e.SheddedWork(); c != 0 || i != 0 || l != 0 {
		t.Fatal("fresh engine should have shed nothing")
	}
	for k := 0; k < 5*e.TicksPerInterval(); k++ {
		e.Tick(2000) // far past C0's capacity in every dimension
	}
	cpuMs, ioOps, logKB := e.SheddedWork()
	if cpuMs <= 0 || ioOps <= 0 || logKB <= 0 {
		t.Errorf("sustained overload should shed work on every queue: %v %v %v", cpuMs, ioOps, logKB)
	}
}

func TestPartialIntervalSnapshot(t *testing.T) {
	e, err := New(workload.DS2(), cat.AtStep(4), 8, Options{NoiseProb: -1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Tick(50)
	e.Tick(50)
	s := e.EndInterval()
	if s.Transactions != 100 {
		t.Errorf("partial interval transactions = %v", s.Transactions)
	}
	if s.OfferedRPS != 50 {
		t.Errorf("partial interval offered = %v", s.OfferedRPS)
	}
}

func TestEmptyIntervalSnapshot(t *testing.T) {
	e, err := New(workload.DS2(), cat.AtStep(4), 9, Options{NoiseProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := e.EndInterval() // zero ticks
	if s.OfferedRPS != 0 || s.Transactions != 0 {
		t.Errorf("empty interval should be zero: %+v", s)
	}
	if s.AvgLatencyMs != 0 || !math.IsNaN(s.P95LatencyMs) && s.P95LatencyMs != 0 {
		// No samples: both aggregates stay zero.
		if s.AvgLatencyMs != 0 || s.P95LatencyMs != 0 {
			t.Errorf("empty interval latency should be zero: %+v", s)
		}
	}
}

func TestConservationProperty(t *testing.T) {
	// For arbitrary load sequences: utilization stays in [0,1], waits and
	// physical I/O are non-negative, memory respects the allocation.
	f := func(seed int64, loads []uint16) bool {
		w := workload.CPUIO(workload.DefaultCPUIOConfig())
		e, err := New(w, cat.AtStep(int(uint64(seed)%4)), seed, Options{NoiseProb: -1})
		if err != nil {
			return false
		}
		alloc := e.Container().Alloc
		for _, l := range loads {
			e.Tick(float64(l % 2000))
		}
		s := e.EndInterval()
		for _, k := range resource.Kinds {
			if s.Utilization[k] < 0 || s.Utilization[k] > 1+1e-9 {
				return false
			}
		}
		for _, wms := range s.WaitMs {
			if wms < 0 {
				return false
			}
		}
		if s.PhysicalReads < 0 || s.PhysicalWrites < 0 {
			return false
		}
		return s.MemoryUsedMB <= alloc[resource.Memory]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLatencySinkReceivesEverySample(t *testing.T) {
	e, err := New(workload.DS2(), cat.AtStep(4), 10, Options{NoiseProb: -1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	var sum float64
	e.SetLatencySink(func(ms float64) { n++; sum += ms })
	for k := 0; k < e.TicksPerInterval(); k++ {
		e.Tick(10)
	}
	s := e.EndInterval()
	if n != e.TicksPerInterval()*10 {
		t.Errorf("sink received %d samples, want %d", n, e.TicksPerInterval()*10)
	}
	if math.Abs(sum/float64(n)-s.AvgLatencyMs) > 1e-9 {
		t.Errorf("sink mean %v != snapshot mean %v", sum/float64(n), s.AvgLatencyMs)
	}
}

func TestBallooningTargetAboveAllocHarmless(t *testing.T) {
	e, err := New(workload.DS2(), cat.AtStep(2), 11, Options{NoiseProb: -1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	e.SetMemoryTargetMB(1 << 20) // absurd target above the allocation
	for k := 0; k < e.TicksPerInterval(); k++ {
		e.Tick(50)
	}
	s := e.EndInterval()
	if s.MemoryUsedMB > e.Container().Alloc[resource.Memory] {
		t.Errorf("allocation must cap memory regardless of target: %v", s.MemoryUsedMB)
	}
}

func TestRawWaitTypesRoundTrip(t *testing.T) {
	// The engine's raw per-type telemetry must fold back into exactly the
	// per-class totals its snapshot reports (the Section 3.1 mapping).
	s := steadySnapshot(t, workload.TPCC(), 2, 150, 3)
	_ = s
	e, err := New(workload.TPCC(), cat.AtStep(2), 33, Options{NoiseProb: -1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < e.TicksPerInterval(); k++ {
		e.Tick(150)
	}
	snap := e.EndInterval()
	byType := e.LastIntervalWaitTypes()
	if len(byType) == 0 {
		t.Fatal("no raw wait types emitted")
	}
	agg := telemetry.AggregateWaitTypes(byType)
	for _, class := range telemetry.WaitClasses {
		if diff := math.Abs(agg[class] - snap.WaitMs[class]); diff > 1e-6*(1+snap.WaitMs[class]) {
			t.Errorf("%v: aggregated %v vs snapshot %v", class, agg[class], snap.WaitMs[class])
		}
	}
	// Lock waits dominate TPC-C at load, so LCK_* types must be present.
	var lck float64
	for wt, ms := range byType {
		if telemetry.ClassifyWaitType(wt) == telemetry.WaitLock {
			lck += ms
		}
	}
	if lck == 0 {
		t.Error("expected LCK_* wait types for TPC-C under load")
	}
	// The accessor must return a copy.
	byType["LCK_M_X"] = -1
	if e.LastIntervalWaitTypes()["LCK_M_X"] == -1 {
		t.Error("LastIntervalWaitTypes must copy")
	}
}

func TestCheckpointsBurstWrites(t *testing.T) {
	w := workload.DS2()
	run := func(every int) (peak, total float64) {
		e, err := New(w, cat.AtStep(6), 44, Options{NoiseProb: -1, WarmStart: true, CheckpointEverySec: every})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			for k := 0; k < e.TicksPerInterval(); k++ {
				e.Tick(100)
			}
			s := e.EndInterval()
			if i == 2 { // steady interval
				total = s.PhysicalWrites
				peak = s.UtilizationPeak[resource.DiskIO]
			}
		}
		return peak, total
	}
	steadyPeak, steadyTotal := run(0)
	ckptPeak, ckptTotal := run(20)
	// Checkpoints must not change the long-run write volume materially...
	if math.Abs(ckptTotal-steadyTotal) > 0.1*steadyTotal {
		t.Errorf("checkpointing changed write volume: %v vs %v", ckptTotal, steadyTotal)
	}
	// ...but must make the per-tick I/O spikier.
	if ckptPeak <= steadyPeak {
		t.Errorf("checkpoint peak %v should exceed steady peak %v", ckptPeak, steadyPeak)
	}
}
