// Package faults provides deterministic fault injection for the
// telemetry→estimator pipeline. Production telemetry channels lose
// intervals, deliver them twice or out of order, and report counters that
// are NaN, infinite, negative, or freshly reset — the auto-scaling survey
// literature lists fault tolerance of the scaling loop itself as a
// first-class requirement, and the paper's robust-statistics machinery
// (Section 3) only pays off if the pipeline survives the raw telemetry it
// was designed for. An Injector sits between the engine (the telemetry
// producer) and whatever consumes snapshots (a policy, a
// telemetry.Manager) and perturbs the stream according to a Plan.
//
// Every decision the injector makes is a pure function of (plan, stream
// seed, interval index): the per-interval random stream is derived with
// exec.SplitSeed, never from a shared sequential source, so the same plan
// and seed reproduce the same faults at any worker count — the property
// the chaos determinism tests in package sim assert bit-for-bit.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"daasscale/internal/exec"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// Kind enumerates the fault taxonomy (DESIGN.md §9).
type Kind int

// The fault kinds, in the order the injector evaluates them.
const (
	// KindDrop loses the interval's snapshot entirely.
	KindDrop Kind = iota
	// KindDuplicate delivers the snapshot twice.
	KindDuplicate
	// KindReorder holds the snapshot back and releases it after a newer
	// one, so the consumer sees interval indices go backwards.
	KindReorder
	// KindNaN poisons one counter field with NaN.
	KindNaN
	// KindInf poisons one counter field with +Inf.
	KindInf
	// KindNegative flips one counter field negative.
	KindNegative
	// KindReset zeroes the cumulative counters (waits, physical I/O,
	// transactions) as an engine counter reset would.
	KindReset
	// KindPartialWaitMap clears a random subset of the per-class wait
	// totals, as when the raw wait-type map arrives incomplete.
	KindPartialWaitMap
	// KindEmptyWaitMap clears every per-class wait total, as when the raw
	// wait-type map arrives empty.
	KindEmptyWaitMap
	// KindClockSkew perturbs the snapshot's Interval index by a few
	// intervals in either direction.
	KindClockSkew
	numKinds
)

// NumKinds is the number of fault kinds.
const NumKinds = int(numKinds)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDuplicate:
		return "duplicate"
	case KindReorder:
		return "reorder"
	case KindNaN:
		return "nan"
	case KindInf:
		return "inf"
	case KindNegative:
		return "negative"
	case KindReset:
		return "counter-reset"
	case KindPartialWaitMap:
		return "partial-wait-map"
	case KindEmptyWaitMap:
		return "empty-wait-map"
	case KindClockSkew:
		return "clock-skew"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Plan is a deterministic fault plan: one independent probability per fault
// kind, evaluated once per delivered interval, plus a Seed salt that
// decorrelates plans sharing a stream seed. The zero value injects nothing.
type Plan struct {
	// Seed salts every derived random stream; two plans with different
	// Seeds fault different intervals even on the same telemetry stream.
	Seed int64
	// Rates holds the per-interval probability of each fault kind.
	Rates [NumKinds]float64
}

// Uniform returns a plan whose per-interval total fault probability is
// approximately rate, spread evenly across all fault kinds. Uniform(0.1)
// is the "≤10% fault rate" chaos configuration of the acceptance tests.
func Uniform(rate float64) Plan {
	var p Plan
	for k := range p.Rates {
		p.Rates[k] = rate / float64(NumKinds)
	}
	return p
}

// Rate returns the plan's probability for one fault kind.
func (p Plan) Rate(k Kind) float64 { return p.Rates[k] }

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	for _, r := range p.Rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// Validate rejects rates outside [0, 1] and non-finite rates.
func (p Plan) Validate() error {
	for k, r := range p.Rates {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("faults: rate for %v must be in [0,1], got %v", Kind(k), r)
		}
	}
	return nil
}

// TotalRate returns the per-interval probability that at least one fault
// fires (assuming independence of kinds).
func (p Plan) TotalRate() float64 {
	clean := 1.0
	for _, r := range p.Rates {
		clean *= 1 - r
	}
	return 1 - clean
}

// Stats counts what an Injector actually did.
type Stats struct {
	// Intervals is the number of snapshots offered to the injector.
	Intervals int
	// Delivered is the number of snapshots passed through to the consumer
	// (duplicates inflate it, drops and held reorders deflate it).
	Delivered int
	// Injected counts fault events per kind.
	Injected [NumKinds]int
}

// Total returns the total number of fault events across kinds.
func (s Stats) Total() int {
	t := 0
	for _, n := range s.Injected {
		t += n
	}
	return t
}

// String summarizes the non-zero counters.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d intervals delivered", s.Delivered, s.Intervals)
	for k, n := range s.Injected {
		if n > 0 {
			fmt.Fprintf(&b, ", %s×%d", Kind(k), n)
		}
	}
	return b.String()
}

// Injector applies a Plan to one telemetry stream. It is stateful (the
// reorder hold-back buffer, the stats) and not safe for concurrent use;
// create one injector per stream.
type Injector struct {
	plan    Plan
	base    int64
	held    telemetry.Snapshot
	hasHeld bool
	stats   Stats
	out     []telemetry.Snapshot
}

// NewInjector creates an injector for one stream. streamSeed identifies
// the stream (a run or tenant seed); it is mixed with the plan's Seed so
// distinct plans fault distinct intervals.
func NewInjector(p Plan, streamSeed int64) *Injector {
	return &Injector{plan: p, base: exec.SplitSeed(streamSeed, p.Seed)}
}

// Stats returns the injection counters so far.
func (in *Injector) Stats() Stats { return in.stats }

// intervalRand derives the interval's private random stream. Decisions for
// interval i never depend on how many snapshots came before it, only on
// (plan, stream seed, i) — the determinism anchor.
func (in *Injector) intervalRand(interval int) *rand.Rand {
	return rand.New(rand.NewSource(exec.SplitSeed(in.base, int64(interval))))
}

// roll evaluates one fault kind's probability on the interval stream.
func (in *Injector) roll(r *rand.Rand, k Kind) bool {
	rate := in.plan.Rates[k]
	if rate <= 0 {
		return false
	}
	// Draw unconditionally so later kinds' draws do not shift when an
	// earlier kind's rate changes from zero to non-zero.
	hit := r.Float64() < rate
	if hit {
		in.stats.Injected[k]++
	}
	return hit
}

// Apply offers one engine snapshot to the injector and returns the
// snapshots the consumer should observe for this interval: usually one,
// zero when the interval is dropped or held for reordering, two or more
// when a duplicate or a held snapshot is released. The returned slice is
// reused across calls; consume it before the next Apply.
func (in *Injector) Apply(s telemetry.Snapshot) []telemetry.Snapshot {
	in.out = in.out[:0]
	in.stats.Intervals++
	r := in.intervalRand(s.Interval)

	if in.roll(r, KindDrop) {
		// The interval is lost. A held snapshot, if any, stays held — a
		// drop cannot flush the reorder buffer.
		return in.out
	}
	in.corrupt(&s, r)
	if !in.hasHeld && in.roll(r, KindReorder) {
		in.held, in.hasHeld = s, true
		return in.out
	}
	in.out = append(in.out, s)
	if in.roll(r, KindDuplicate) {
		in.out = append(in.out, s)
	}
	if in.hasHeld {
		// Release the held snapshot after the newer one: the consumer sees
		// its interval index go backwards.
		in.out = append(in.out, in.held)
		in.hasHeld = false
	}
	in.stats.Delivered += len(in.out)
	return in.out
}

// Flush releases a held snapshot at end of stream, if any. The returned
// slice is reused across calls.
func (in *Injector) Flush() []telemetry.Snapshot {
	in.out = in.out[:0]
	if in.hasHeld {
		in.out = append(in.out, in.held)
		in.hasHeld = false
		in.stats.Delivered++
	}
	return in.out
}

// counterFields is the number of scalar corruption targets poisonField
// chooses from.
const counterFields = 8

// poisonField overwrites one randomly chosen counter field. For the
// negative kind, v is the sentinel −1 and the field is negated instead.
func poisonField(s *telemetry.Snapshot, r *rand.Rand, v float64, negate bool) {
	put := func(f *float64) {
		if negate {
			*f = -math.Abs(*f) - 1
		} else {
			*f = v
		}
	}
	switch r.Intn(counterFields) {
	case 0:
		put(&s.AvgLatencyMs)
	case 1:
		put(&s.P95LatencyMs)
	case 2:
		put(&s.OfferedRPS)
	case 3:
		put(&s.MemoryUsedMB)
	case 4:
		put(&s.PhysicalReads)
	case 5:
		put(&s.Transactions)
	case 6:
		put(&s.Utilization[resource.Kind(r.Intn(resource.NumKinds))])
	case 7:
		put(&s.WaitMs[r.Intn(telemetry.NumWaitClasses)])
	}
}

// corrupt applies the in-place corruption kinds to one snapshot. The kinds
// are evaluated in a fixed order on the interval's private stream.
func (in *Injector) corrupt(s *telemetry.Snapshot, r *rand.Rand) {
	if in.roll(r, KindNaN) {
		poisonField(s, r, math.NaN(), false)
	}
	if in.roll(r, KindInf) {
		poisonField(s, r, math.Inf(1), false)
	}
	if in.roll(r, KindNegative) {
		poisonField(s, r, 0, true)
	}
	if in.roll(r, KindReset) {
		s.WaitMs = [telemetry.NumWaitClasses]float64{}
		s.PhysicalReads = 0
		s.PhysicalWrites = 0
		s.Transactions = 0
	}
	if in.roll(r, KindPartialWaitMap) {
		// Clear a random, non-empty subset of wait classes — the shape a
		// partially delivered raw wait-type map aggregates to.
		cleared := false
		for c := range s.WaitMs {
			if r.Float64() < 0.5 {
				s.WaitMs[c] = 0
				cleared = true
			}
		}
		if !cleared {
			s.WaitMs[r.Intn(telemetry.NumWaitClasses)] = 0
		}
	}
	if in.roll(r, KindEmptyWaitMap) {
		s.WaitMs = [telemetry.NumWaitClasses]float64{}
	}
	if in.roll(r, KindClockSkew) {
		skew := 1 + r.Intn(3)
		if r.Intn(2) == 0 {
			skew = -skew
		}
		s.Interval += skew
		if s.Interval < 0 {
			s.Interval = 0
		}
	}
}

// CorruptWaitMap applies the partial/empty wait-map kinds to a raw
// per-wait-type map in place, for producers that feed
// telemetry.Manager.ObserveRaw directly: with probability
// Rates[KindEmptyWaitMap] every entry is removed; otherwise each entry is
// independently removed with probability Rates[KindPartialWaitMap]. The
// interval's stream is derived exactly as Apply derives it, so using both
// on one stream is still deterministic.
func (in *Injector) CorruptWaitMap(interval int, byType map[telemetry.WaitType]float64) {
	if len(byType) == 0 {
		return
	}
	r := rand.New(rand.NewSource(exec.SplitSeed(in.base, ^int64(interval))))
	if in.plan.Rates[KindEmptyWaitMap] > 0 && r.Float64() < in.plan.Rates[KindEmptyWaitMap] {
		in.stats.Injected[KindEmptyWaitMap]++
		for t := range byType {
			delete(byType, t)
		}
		return
	}
	if in.plan.Rates[KindPartialWaitMap] <= 0 {
		return
	}
	// Iterate in sorted key order: Go's map iteration order is random, and
	// one RNG draw per entry must pair with the same entry every run.
	keys := make([]string, 0, len(byType))
	for t := range byType {
		keys = append(keys, string(t))
	}
	sort.Strings(keys)
	removed := false
	for _, t := range keys {
		if r.Float64() < in.plan.Rates[KindPartialWaitMap] {
			delete(byType, telemetry.WaitType(t))
			removed = true
		}
	}
	if removed {
		in.stats.Injected[KindPartialWaitMap]++
	}
}
