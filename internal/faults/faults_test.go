package faults

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"daasscale/internal/telemetry"
)

// snapsEqual compares snapshot streams by their formatted representation:
// injected NaNs make reflect.DeepEqual useless (NaN ≠ NaN), but they format
// identically.
func snapsEqual(a, b []telemetry.Snapshot) bool {
	return fmt.Sprintf("%v", a) == fmt.Sprintf("%v", b)
}

// testSnapshot builds a clean, fully-populated snapshot.
func testSnapshot(rng *rand.Rand, interval int) telemetry.Snapshot {
	var s telemetry.Snapshot
	s.Interval = interval
	s.Container = "C1"
	s.Step = 1
	s.Cost = 2
	for k := range s.Utilization {
		s.Utilization[k] = rng.Float64()
		s.UtilizationPeak[k] = s.Utilization[k]
	}
	for c := range s.WaitMs {
		s.WaitMs[c] = rng.Float64() * 10_000
	}
	s.AvgLatencyMs = 20 + rng.Float64()*50
	s.P95LatencyMs = s.AvgLatencyMs * 2
	s.Transactions = rng.Float64() * 1e4
	s.OfferedRPS = rng.Float64() * 400
	s.MemoryUsedMB = rng.Float64() * 2048
	s.PhysicalReads = rng.Float64() * 1e5
	s.PhysicalWrites = rng.Float64() * 1e4
	return s
}

func TestUniformPlan(t *testing.T) {
	p := Uniform(0.1)
	if !p.Enabled() {
		t.Fatal("Uniform(0.1) not enabled")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var sum float64
	for k := 0; k < NumKinds; k++ {
		sum += p.Rate(Kind(k))
	}
	if math.Abs(sum-0.1) > 1e-12 {
		t.Fatalf("rates sum to %v, want 0.1", sum)
	}
	if tr := p.TotalRate(); tr <= 0 || tr > 0.1 {
		t.Fatalf("TotalRate = %v, want (0, 0.1]", tr)
	}
	var zero Plan
	if zero.Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	if zero.TotalRate() != 0 {
		t.Fatalf("zero plan TotalRate = %v", zero.TotalRate())
	}
}

func TestPlanValidateRejectsBadRates(t *testing.T) {
	for _, bad := range []float64{math.NaN(), -0.1, 1.5} {
		var p Plan
		p.Rates[KindDrop] = bad
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted rate %v", bad)
		}
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := 0; k < NumKinds; k++ {
		s := Kind(k).String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

// TestInjectorDeterministic: two injectors with the same plan and stream
// seed produce identical delivery sequences; a different plan seed differs.
func TestInjectorDeterministic(t *testing.T) {
	plan := Uniform(0.4) // high rate so every kind fires in 200 intervals
	run := func(p Plan, streamSeed int64) ([]telemetry.Snapshot, Stats) {
		in := NewInjector(p, streamSeed)
		rng := rand.New(rand.NewSource(9))
		var out []telemetry.Snapshot
		for i := 0; i < 200; i++ {
			out = append(out, in.Apply(testSnapshot(rng, i))...)
		}
		out = append(out, in.Flush()...)
		return out, in.Stats()
	}
	a, sa := run(plan, 7)
	b, sb := run(plan, 7)
	if !snapsEqual(a, b) || sa != sb {
		t.Fatal("same plan+seed produced different streams")
	}
	other := plan
	other.Seed = 1
	c, _ := run(other, 7)
	if snapsEqual(a, c) {
		t.Fatal("different plan seed produced an identical stream")
	}
	d, _ := run(plan, 8)
	if snapsEqual(a, d) {
		t.Fatal("different stream seed produced an identical stream")
	}
}

// TestInjectorIntervalIndependence: the faults injected into interval i are
// a pure function of (plan, stream seed, i) — skipping earlier intervals
// must not change how interval i is corrupted.
func TestInjectorIntervalIndependence(t *testing.T) {
	plan := Uniform(0.5)
	plan.Rates[KindDrop] = 0 // keep every interval observable
	plan.Rates[KindReorder] = 0
	plan.Rates[KindDuplicate] = 0
	rng := rand.New(rand.NewSource(4))
	snaps := make([]telemetry.Snapshot, 50)
	for i := range snaps {
		snaps[i] = testSnapshot(rng, i)
	}

	full := NewInjector(plan, 3)
	var fromFull []telemetry.Snapshot
	for _, s := range snaps {
		fromFull = append(fromFull, full.Apply(s)...)
	}
	for i, s := range snaps {
		solo := NewInjector(plan, 3)
		got := solo.Apply(s)
		if len(got) != 1 {
			t.Fatalf("interval %d: %d snapshots delivered, want 1", i, len(got))
		}
		if !snapsEqual(got, fromFull[i:i+1]) {
			t.Fatalf("interval %d corrupted differently in isolation", i)
		}
	}
}

func TestInjectorDropEverything(t *testing.T) {
	var plan Plan
	plan.Rates[KindDrop] = 1
	in := NewInjector(plan, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		if out := in.Apply(testSnapshot(rng, i)); len(out) != 0 {
			t.Fatalf("interval %d delivered %d snapshots under drop rate 1", i, len(out))
		}
	}
	st := in.Stats()
	if st.Intervals != 20 || st.Delivered != 0 || st.Injected[KindDrop] != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInjectorReorderAndFlush: with only the reorder fault at rate 1, every
// odd Apply releases the held snapshot after the newer one, and Flush
// drains a trailing hold-back.
func TestInjectorReorderAndFlush(t *testing.T) {
	var plan Plan
	plan.Rates[KindReorder] = 1
	in := NewInjector(plan, 1)
	rng := rand.New(rand.NewSource(2))

	if out := in.Apply(testSnapshot(rng, 0)); len(out) != 0 {
		t.Fatalf("first interval delivered %d snapshots, want 0 (held)", len(out))
	}
	out := in.Apply(testSnapshot(rng, 1))
	if len(out) != 2 || out[0].Interval != 1 || out[1].Interval != 0 {
		t.Fatalf("release order wrong: %d snapshots, intervals %v", len(out),
			[]int{out[0].Interval, out[1].Interval})
	}
	if out := in.Apply(testSnapshot(rng, 2)); len(out) != 0 {
		t.Fatal("third interval should be held again")
	}
	fl := in.Flush()
	if len(fl) != 1 || fl[0].Interval != 2 {
		t.Fatalf("Flush = %d snapshots", len(fl))
	}
	if fl2 := in.Flush(); len(fl2) != 0 {
		t.Fatal("second Flush not empty")
	}
	if st := in.Stats(); st.Delivered != 3 || st.Intervals != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInjectorCorruptionKinds: each corruption kind at rate 1 leaves its
// fingerprint on the snapshot.
func TestInjectorCorruptionKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	apply := func(k Kind) telemetry.Snapshot {
		var plan Plan
		plan.Rates[k] = 1
		in := NewInjector(plan, 11)
		out := in.Apply(testSnapshot(rand.New(rand.NewSource(6)), 5))
		if len(out) != 1 {
			t.Fatalf("kind %v: delivered %d, want 1", k, len(out))
		}
		if in.Stats().Injected[k] != 1 {
			t.Fatalf("kind %v not counted", k)
		}
		return out[0]
	}
	clean := testSnapshot(rng, 5)

	hasNonFinite := func(s telemetry.Snapshot) bool {
		vals := []float64{s.AvgLatencyMs, s.P95LatencyMs, s.OfferedRPS,
			s.MemoryUsedMB, s.PhysicalReads, s.Transactions}
		for _, u := range s.Utilization {
			vals = append(vals, u)
		}
		for _, w := range s.WaitMs {
			vals = append(vals, w)
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return false
	}
	hasNegative := func(s telemetry.Snapshot) bool {
		vals := []float64{s.AvgLatencyMs, s.P95LatencyMs, s.OfferedRPS,
			s.MemoryUsedMB, s.PhysicalReads, s.Transactions}
		for _, u := range s.Utilization {
			vals = append(vals, u)
		}
		for _, w := range s.WaitMs {
			vals = append(vals, w)
		}
		for _, v := range vals {
			if v < 0 {
				return true
			}
		}
		return false
	}

	if !hasNonFinite(apply(KindNaN)) {
		t.Error("KindNaN left every field finite")
	}
	if !hasNonFinite(apply(KindInf)) {
		t.Error("KindInf left every field finite")
	}
	if !hasNegative(apply(KindNegative)) {
		t.Error("KindNegative left every field non-negative")
	}
	if s := apply(KindReset); s.TotalWaitMs() != 0 || s.PhysicalReads != 0 || s.Transactions != 0 {
		t.Error("KindReset did not zero the cumulative counters")
	}
	if s := apply(KindEmptyWaitMap); s.TotalWaitMs() != 0 {
		t.Error("KindEmptyWaitMap left waits behind")
	}
	if s := apply(KindPartialWaitMap); !(s.TotalWaitMs() < clean.TotalWaitMs()) {
		t.Error("KindPartialWaitMap cleared nothing")
	}
	if s := apply(KindClockSkew); s.Interval == clean.Interval || s.Interval < 0 {
		t.Errorf("KindClockSkew interval = %d (clean %d)", s.Interval, clean.Interval)
	}
}

func TestCorruptWaitMap(t *testing.T) {
	mk := func() map[telemetry.WaitType]float64 {
		return map[telemetry.WaitType]float64{
			telemetry.WaitType("SOS_SCHEDULER_YIELD"): 100,
			telemetry.WaitType("PAGEIOLATCH_SH"):      200,
			telemetry.WaitType("WRITELOG"):            300,
			telemetry.WaitType("LCK_M_X"):             400,
		}
	}

	var empty Plan
	empty.Rates[KindEmptyWaitMap] = 1
	in := NewInjector(empty, 1)
	m := mk()
	in.CorruptWaitMap(3, m)
	if len(m) != 0 {
		t.Fatalf("empty-map kind left %d entries", len(m))
	}
	if in.Stats().Injected[KindEmptyWaitMap] != 1 {
		t.Fatal("empty-map fault not counted")
	}

	var partial Plan
	partial.Rates[KindPartialWaitMap] = 1
	in = NewInjector(partial, 1)
	m = mk()
	in.CorruptWaitMap(3, m)
	if len(m) != 0 {
		t.Fatalf("partial kind at rate 1 left %d entries", len(m))
	}

	// Determinism: two injectors remove the same subset at rate 0.5.
	partial.Rates[KindPartialWaitMap] = 0.5
	a, b := mk(), mk()
	NewInjector(partial, 9).CorruptWaitMap(7, a)
	NewInjector(partial, 9).CorruptWaitMap(7, b)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic partial wait-map corruption: %v vs %v", a, b)
	}

	// Nil/empty maps are a no-op, never a panic.
	NewInjector(partial, 9).CorruptWaitMap(7, nil)
	NewInjector(partial, 9).CorruptWaitMap(7, map[telemetry.WaitType]float64{})
}

func TestStatsString(t *testing.T) {
	var s Stats
	s.Intervals = 10
	s.Delivered = 9
	s.Injected[KindDrop] = 1
	got := s.String()
	if got != "9/10 intervals delivered, drop×1" {
		t.Errorf("String() = %q", got)
	}
	if s.Total() != 1 {
		t.Errorf("Total() = %d", s.Total())
	}
}

// TestManagerSurvivesInjector is the pipeline integration property: a
// telemetry.Manager fed through an aggressive injector always yields finite
// signals, bit-identical to its reference implementation, and flags the
// window as degraded when faults actually landed.
func TestManagerSurvivesInjector(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plan := Uniform(0.8)
		plan.Seed = seed
		in := NewInjector(plan, 100+seed)
		m := telemetry.NewManager(telemetry.DefaultWindow)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 120; i++ {
			for _, fs := range in.Apply(testSnapshot(rng, i)) {
				m.Observe(fs)
			}
			got, ok := m.Signals()
			want, okRef := m.SignalsReference()
			if ok != okRef {
				t.Fatalf("seed %d interval %d: ok mismatch", seed, i)
			}
			if !ok {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d interval %d: fast path diverged from reference under faults", seed, i)
			}
			assertFiniteSignals(t, got)
		}
		if m.Quality().Score() >= 1 {
			t.Fatalf("seed %d: aggressive plan left quality pristine: %v", seed, m.Quality())
		}
	}
}

func assertFiniteSignals(t *testing.T, sig telemetry.Signals) {
	t.Helper()
	check := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("signal %s is non-finite: %v", name, v)
		}
	}
	check("Latency.AvgMs", sig.Latency.AvgMs)
	check("Latency.P95Ms", sig.Latency.P95Ms)
	check("Latency.PrevAvgMs", sig.Latency.PrevAvgMs)
	check("Latency.PrevP95Ms", sig.Latency.PrevP95Ms)
	check("OfferedRPS", sig.OfferedRPS)
	check("MemoryUsedMB", sig.MemoryUsedMB)
	check("PhysicalReadsMedian", sig.PhysicalReadsMedian)
	for k, rs := range sig.Resources {
		check("Utilization", rs.Utilization)
		check("WaitMs", rs.WaitMs)
		check("WaitPct", rs.WaitPct)
		check("PrevWaitMs", rs.PrevWaitMs)
		check("PrevUtilization", rs.PrevUtilization)
		check("WaitLatencyCorr", rs.WaitLatencyCorr)
		_ = k
	}
	for _, v := range sig.LogicalWaitPct {
		check("LogicalWaitPct", v)
	}
}
