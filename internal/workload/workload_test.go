package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestStandardWorkloadsValidate(t *testing.T) {
	for _, name := range []string{"tpcc", "ds2", "cpuio"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if w.Name != name {
			t.Errorf("name = %q, want %q", w.Name, name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should error")
	}
}

func TestValidateCatchesBadWorkloads(t *testing.T) {
	cases := []*Workload{
		{Name: "empty"},
		{Name: "negweight", Classes: []TxnClass{{Name: "a", Weight: -1}}, DataSizeMB: 10},
		{Name: "zeroweight", Classes: []TxnClass{{Name: "a", Weight: 0}}, DataSizeMB: 10},
		{Name: "bigws", Classes: []TxnClass{{Name: "a", Weight: 1}}, DataSizeMB: 10, WorkingSetMB: 20},
		{Name: "badhot", Classes: []TxnClass{{Name: "a", Weight: 1}}, DataSizeMB: 10, WorkingSetMB: 5, HotspotFraction: 1.5},
	}
	for _, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("workload %q should fail validation", w.Name)
		}
	}
}

func TestMixProfileWeighting(t *testing.T) {
	w := &Workload{
		Name: "mix",
		Classes: []TxnClass{
			{Name: "a", Weight: 3, CPUms: 10, LogicalReads: 100},
			{Name: "b", Weight: 1, CPUms: 2, LogicalReads: 20},
		},
		DataSizeMB: 100,
	}
	p := w.MixProfile()
	if math.Abs(p.CPUms-8) > 1e-9 {
		t.Errorf("CPUms = %v, want 8", p.CPUms)
	}
	if math.Abs(p.LogicalReads-80) > 1e-9 {
		t.Errorf("LogicalReads = %v, want 80", p.LogicalReads)
	}
}

func TestMixProfileZeroWeights(t *testing.T) {
	w := &Workload{Name: "z", Classes: []TxnClass{{Name: "a", Weight: 0, CPUms: 10}}}
	p := w.MixProfile()
	if p.CPUms != 0 {
		t.Errorf("zero-weight profile should be zero, got %+v", p)
	}
}

func TestBottleneckProfiles(t *testing.T) {
	// The experiment narrative requires distinct bottleneck profiles.
	tpcc := TPCC().MixProfile()
	ds2 := DS2().MixProfile()
	cpuio := CPUIO(DefaultCPUIOConfig()).MixProfile()

	// TPC-C: lock time dwarfs CPU time per txn (lock-bound, Fig 13).
	if tpcc.LockHoldMs < 5*tpcc.CPUms {
		t.Errorf("tpcc lock hold %v should dwarf cpu %v", tpcc.LockHoldMs, tpcc.CPUms)
	}
	if tpcc.LockConflictProb < 0.3 {
		t.Errorf("tpcc conflict prob = %v, want heavy contention", tpcc.LockConflictProb)
	}
	// DS2: little contention.
	if ds2.LockConflictProb > 0.1 {
		t.Errorf("ds2 conflict prob = %v, want light contention", ds2.LockConflictProb)
	}
	// CPUIO: substantially more CPU per txn than the OLTP mixes.
	if cpuio.CPUms < 2*tpcc.CPUms {
		t.Errorf("cpuio CPU %v should exceed tpcc %v", cpuio.CPUms, tpcc.CPUms)
	}
}

func TestCPUIOConfigurable(t *testing.T) {
	cpuOnly := CPUIO(CPUIOConfig{CPUWeight: 1, WorkingSetMB: 1024, HotspotFraction: 0.9})
	ioOnly := CPUIO(CPUIOConfig{IOWeight: 1, WorkingSetMB: 1024, HotspotFraction: 0.9})
	pc := cpuOnly.MixProfile()
	pi := ioOnly.MixProfile()
	if pc.CPUms <= pi.CPUms {
		t.Errorf("cpu-only mix should have more CPU: %v vs %v", pc.CPUms, pi.CPUms)
	}
	if pi.LogicalReads <= pc.LogicalReads {
		t.Errorf("io-only mix should have more reads: %v vs %v", pi.LogicalReads, pc.LogicalReads)
	}
	if err := cpuOnly.Validate(); err != nil {
		t.Errorf("cpu-only invalid: %v", err)
	}
	ws := CPUIO(CPUIOConfig{CPUWeight: 1, IOWeight: 1, WorkingSetMB: 3 * 1024, HotspotFraction: 0.97})
	if ws.WorkingSetMB != 3*1024 || ws.HotspotFraction != 0.97 {
		t.Errorf("working set config not applied: %+v", ws)
	}
}

func TestGeneratorJitterAndDeterminism(t *testing.T) {
	g1 := NewGenerator(5, 0.1)
	g2 := NewGenerator(5, 0.1)
	for i := 0; i < 100; i++ {
		a, b := g1.Offered(100), g2.Offered(100)
		if a != b {
			t.Fatalf("generator not deterministic at step %d: %v vs %v", i, a, b)
		}
		if a < 90 || a > 110 {
			t.Fatalf("offered load %v outside jitter band", a)
		}
	}
}

func TestGeneratorMeanTracksTarget(t *testing.T) {
	g := NewGenerator(11, 0.1)
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += g.Offered(50)
	}
	mean := sum / n
	if mean < 48 || mean > 52 {
		t.Errorf("generator mean = %v, want ≈50", mean)
	}
}

func TestGeneratorNeverNegative(t *testing.T) {
	g := NewGenerator(3, 2.0) // extreme jitter
	for i := 0; i < 1000; i++ {
		if v := g.Offered(1); v < 0 {
			t.Fatalf("offered load negative: %v", v)
		}
	}
	if v := g.Offered(0); v != 0 {
		t.Errorf("zero target should offer zero, got %v", v)
	}
}

func TestWorkloadJSONRoundTrip(t *testing.T) {
	for _, name := range []string{"tpcc", "ds2", "cpuio"} {
		w, _ := ByName(name)
		var buf bytes.Buffer
		if err := w.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != w.Name || got.WorkingSetMB != w.WorkingSetMB || len(got.Classes) != len(w.Classes) {
			t.Errorf("%s round trip mismatch", name)
		}
		for i := range w.Classes {
			if got.Classes[i] != w.Classes[i] {
				t.Errorf("%s class %d mismatch: %+v vs %+v", name, i, got.Classes[i], w.Classes[i])
			}
		}
	}
}

func TestReadJSONValidates(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("bad JSON should fail")
	}
	// Valid JSON, invalid workload (working set > data size).
	bad := `{"name":"x","classes":[{"name":"a","weight":1}],"data_size_mb":10,"working_set_mb":20}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid workload should fail validation")
	}
}
