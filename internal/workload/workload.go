// Package workload models the benchmark workloads the paper drives its
// experiments with (Section 7.1): TPC-C, the Dell DVD Store (DS2), and the
// CPUIO micro-benchmark whose query mix and working set are configurable.
//
// A workload is a mix of transaction classes, each with a per-transaction
// resource profile (CPU time, logical reads, page writes, log volume,
// application-lock behaviour). The engine turns offered load (transactions
// per second from a trace) plus these profiles into resource demand, waits
// and latencies. Crucially, the three workloads have the distinct bottleneck
// profiles the paper's narrative depends on: TPC-C is dominated by
// application-level lock contention (Fig 13), CPUIO is resource-bound with a
// controllable working set (Fig 9, 11, 14), and DS2 is a steady moderate mix
// (Fig 12).
package workload

import (
	"fmt"
	"math/rand"
)

// TxnClass describes one transaction (or query) class in a workload mix.
type TxnClass struct {
	// Name identifies the class, e.g. "new-order".
	Name string
	// Weight is the relative frequency of the class in the mix; weights
	// need not sum to 1 (they are normalized).
	Weight float64
	// CPUms is CPU time consumed per transaction, in core-milliseconds.
	CPUms float64
	// LogicalReads is the number of page reads issued per transaction.
	// Reads missing the buffer pool become physical disk I/Os.
	LogicalReads float64
	// WritePages is the number of pages dirtied per transaction; dirty
	// pages are flushed as physical disk writes.
	WritePages float64
	// LogKB is the log volume written per transaction, in kilobytes.
	LogKB float64
	// LockHoldMs is the time application-level locks are held per
	// transaction.
	LockHoldMs float64
	// LockConflictProb is the probability that the transaction contends on
	// a hot application lock. Lock waits grow with offered concurrency and
	// are independent of container size.
	LockConflictProb float64
	// LatchProb is the probability of a short internal latch wait.
	LatchProb float64
}

// Workload is a named mix of transaction classes plus data-access locality
// parameters that drive the buffer-pool model.
type Workload struct {
	// Name identifies the workload ("tpcc", "ds2", "cpuio").
	Name string
	// Classes is the transaction mix.
	Classes []TxnClass
	// DataSizeMB is the total database size.
	DataSizeMB float64
	// WorkingSetMB is the size of the hot set; once cached, hot accesses
	// hit memory.
	WorkingSetMB float64
	// HotspotFraction is the fraction of page accesses that touch the
	// working set (e.g. 0.95 means 95% of operations access hot data).
	HotspotFraction float64
}

// Validate checks internal consistency.
func (w *Workload) Validate() error {
	if len(w.Classes) == 0 {
		return fmt.Errorf("workload %q: no transaction classes", w.Name)
	}
	var sum float64
	for _, c := range w.Classes {
		if c.Weight < 0 {
			return fmt.Errorf("workload %q: class %q has negative weight", w.Name, c.Name)
		}
		sum += c.Weight
	}
	if sum <= 0 {
		return fmt.Errorf("workload %q: total weight is zero", w.Name)
	}
	if w.WorkingSetMB > w.DataSizeMB {
		return fmt.Errorf("workload %q: working set %vMB exceeds data size %vMB", w.Name, w.WorkingSetMB, w.DataSizeMB)
	}
	if w.HotspotFraction < 0 || w.HotspotFraction > 1 {
		return fmt.Errorf("workload %q: hotspot fraction %v outside [0,1]", w.Name, w.HotspotFraction)
	}
	return nil
}

// Profile is the expected per-transaction resource profile of the mix
// (weights applied).
type Profile struct {
	CPUms            float64
	LogicalReads     float64
	WritePages       float64
	LogKB            float64
	LockHoldMs       float64
	LockConflictProb float64
	LatchProb        float64
}

// MixProfile returns the weight-averaged per-transaction profile.
func (w *Workload) MixProfile() Profile {
	var p Profile
	var sum float64
	for _, c := range w.Classes {
		sum += c.Weight
	}
	if sum == 0 {
		return p
	}
	for _, c := range w.Classes {
		f := c.Weight / sum
		p.CPUms += f * c.CPUms
		p.LogicalReads += f * c.LogicalReads
		p.WritePages += f * c.WritePages
		p.LogKB += f * c.LogKB
		p.LockHoldMs += f * c.LockHoldMs
		p.LockConflictProb += f * c.LockConflictProb
		p.LatchProb += f * c.LatchProb
	}
	return p
}

// TPCC returns a TPC-C-like OLTP mix: short read/write transactions with
// heavy application-level lock contention on hot rows (district/warehouse
// counters). Its latencies are dominated by lock waits, not resources — the
// profile behind the paper's Figure 13 drill-down.
func TPCC() *Workload {
	return &Workload{
		Name: "tpcc",
		Classes: []TxnClass{
			{Name: "new-order", Weight: 0.45, CPUms: 1.2, LogicalReads: 28, WritePages: 0.5, LogKB: 1.2, LockHoldMs: 25, LockConflictProb: 0.55, LatchProb: 0.05},
			{Name: "payment", Weight: 0.43, CPUms: 0.6, LogicalReads: 8, WritePages: 0.15, LogKB: 0.5, LockHoldMs: 18, LockConflictProb: 0.65, LatchProb: 0.04},
			{Name: "order-status", Weight: 0.04, CPUms: 0.5, LogicalReads: 14, WritePages: 0, LogKB: 0, LockHoldMs: 0, LockConflictProb: 0, LatchProb: 0.02},
			{Name: "delivery", Weight: 0.04, CPUms: 1.8, LogicalReads: 60, WritePages: 1, LogKB: 1.5, LockHoldMs: 40, LockConflictProb: 0.5, LatchProb: 0.05},
			{Name: "stock-level", Weight: 0.04, CPUms: 1.5, LogicalReads: 90, WritePages: 0, LogKB: 0, LockHoldMs: 0, LockConflictProb: 0, LatchProb: 0.03},
		},
		DataSizeMB:      3 * 1024,
		WorkingSetMB:    1800,
		HotspotFraction: 0.97,
	}
}

// DS2 returns a Dell DVD Store-like mix: read-mostly browse/login plus a
// purchase path, with moderate CPU and I/O and little lock contention. A
// steady, balanced workload (used with Trace 1 in Figure 12).
func DS2() *Workload {
	return &Workload{
		Name: "ds2",
		Classes: []TxnClass{
			{Name: "browse", Weight: 0.55, CPUms: 2.2, LogicalReads: 55, WritePages: 0, LogKB: 0, LockHoldMs: 0, LockConflictProb: 0, LatchProb: 0.02},
			{Name: "login", Weight: 0.20, CPUms: 0.9, LogicalReads: 10, WritePages: 1, LogKB: 0.5, LockHoldMs: 2, LockConflictProb: 0.03, LatchProb: 0.02},
			{Name: "purchase", Weight: 0.20, CPUms: 1.6, LogicalReads: 20, WritePages: 6, LogKB: 5, LockHoldMs: 6, LockConflictProb: 0.08, LatchProb: 0.03},
			{Name: "new-customer", Weight: 0.05, CPUms: 1.1, LogicalReads: 8, WritePages: 4, LogKB: 3, LockHoldMs: 4, LockConflictProb: 0.04, LatchProb: 0.02},
		},
		DataSizeMB:      4 * 1024,
		WorkingSetMB:    2500,
		HotspotFraction: 0.85,
	}
}

// CPUIOConfig parameterizes the CPUIO micro-benchmark: relative weights of
// CPU-, disk-I/O- and log-I/O-intensive queries, and the working-set size
// controlled via a hotspot access distribution (Section 7.1).
type CPUIOConfig struct {
	// CPUWeight, IOWeight and LogWeight set the mix of the three query
	// classes. They are normalized, so any positive scale works.
	CPUWeight, IOWeight, LogWeight float64
	// WorkingSetMB is the hot-set size (the paper's ballooning experiment
	// uses ≈3GB).
	WorkingSetMB float64
	// HotspotFraction is the fraction of accesses hitting the hot set
	// (>0.95 in the ballooning experiment).
	HotspotFraction float64
}

// DefaultCPUIOConfig returns the balanced mix used by the end-to-end
// experiments.
func DefaultCPUIOConfig() CPUIOConfig {
	return CPUIOConfig{CPUWeight: 1, IOWeight: 1, LogWeight: 0.5, WorkingSetMB: 3 * 1024, HotspotFraction: 0.95}
}

// CPUIO returns the configurable micro-benchmark generating CPU-, disk I/O-
// and log-I/O-intensive queries, including lightweight analytical scans.
func CPUIO(cfg CPUIOConfig) *Workload {
	return &Workload{
		Name: "cpuio",
		Classes: []TxnClass{
			{Name: "cpu-heavy", Weight: cfg.CPUWeight, CPUms: 9, LogicalReads: 6, WritePages: 0, LogKB: 0, LockHoldMs: 0, LockConflictProb: 0, LatchProb: 0.01},
			{Name: "io-scan", Weight: cfg.IOWeight, CPUms: 1.5, LogicalReads: 160, WritePages: 2, LogKB: 1, LockHoldMs: 0, LockConflictProb: 0, LatchProb: 0.02},
			{Name: "log-write", Weight: cfg.LogWeight, CPUms: 0.8, LogicalReads: 6, WritePages: 6, LogKB: 24, LockHoldMs: 1, LockConflictProb: 0.02, LatchProb: 0.02},
		},
		DataSizeMB:      cfg.WorkingSetMB + 1024,
		WorkingSetMB:    cfg.WorkingSetMB,
		HotspotFraction: cfg.HotspotFraction,
	}
}

// ByName constructs a standard workload by name ("tpcc", "ds2", "cpuio").
func ByName(name string) (*Workload, error) {
	switch name {
	case "tpcc":
		return TPCC(), nil
	case "ds2":
		return DS2(), nil
	case "cpuio":
		return CPUIO(DefaultCPUIOConfig()), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
}

// Generator produces the offered load for each simulated second, following
// a trace's per-minute target rate as closely as possible (Section 7.1's
// workload generator executes "in steps in sync with the trace"). A small
// deterministic jitter models client-side arrival variance.
type Generator struct {
	rng    *rand.Rand
	jitter float64
}

// NewGenerator returns a generator with the given seed and jitter amplitude
// (fraction, e.g. 0.1 for ±10%).
func NewGenerator(seed int64, jitter float64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), jitter: jitter}
}

// Offered returns the number of transactions offered during one second when
// the trace target is targetRPS. The value is jittered deterministically
// and never negative.
func (g *Generator) Offered(targetRPS float64) float64 {
	f := 1 + g.jitter*(2*g.rng.Float64()-1)
	v := targetRPS * f
	if v < 0 {
		return 0
	}
	return v
}
