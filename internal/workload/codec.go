package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// workloadJSON is the serialized form of a Workload. Field names follow the
// struct; the format is the library's way for users to define custom
// tenant workloads without writing Go.
type workloadJSON struct {
	Name            string         `json:"name"`
	Classes         []txnClassJSON `json:"classes"`
	DataSizeMB      float64        `json:"data_size_mb"`
	WorkingSetMB    float64        `json:"working_set_mb"`
	HotspotFraction float64        `json:"hotspot_fraction"`
}

type txnClassJSON struct {
	Name             string  `json:"name"`
	Weight           float64 `json:"weight"`
	CPUms            float64 `json:"cpu_ms"`
	LogicalReads     float64 `json:"logical_reads"`
	WritePages       float64 `json:"write_pages"`
	LogKB            float64 `json:"log_kb"`
	LockHoldMs       float64 `json:"lock_hold_ms"`
	LockConflictProb float64 `json:"lock_conflict_prob"`
	LatchProb        float64 `json:"latch_prob"`
}

// WriteJSON serializes the workload definition.
func (w *Workload) WriteJSON(out io.Writer) error {
	j := workloadJSON{
		Name:            w.Name,
		DataSizeMB:      w.DataSizeMB,
		WorkingSetMB:    w.WorkingSetMB,
		HotspotFraction: w.HotspotFraction,
	}
	for _, c := range w.Classes {
		j.Classes = append(j.Classes, txnClassJSON(c))
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadJSON parses and validates a workload definition written by WriteJSON
// (or authored by hand).
func ReadJSON(in io.Reader) (*Workload, error) {
	var j workloadJSON
	if err := json.NewDecoder(in).Decode(&j); err != nil {
		return nil, fmt.Errorf("workload: decoding: %w", err)
	}
	w := &Workload{
		Name:            j.Name,
		DataSizeMB:      j.DataSizeMB,
		WorkingSetMB:    j.WorkingSetMB,
		HotspotFraction: j.HotspotFraction,
	}
	for _, c := range j.Classes {
		w.Classes = append(w.Classes, TxnClass(c))
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
