// Package serve is the autoscaler-as-a-service layer: a long-running
// ingestion daemon that accepts per-tenant telemetry snapshots over HTTP,
// drives each tenant's loop.TenantLoop exactly as the simulation runners
// do, and persists every decision and billing line-item to an append-only
// per-tenant ledger (package ledger).
//
// The serving contract mirrors the paper's deployment shape — telemetry
// counters flow from database nodes to a central scaling service — and
// adds the realities a wire transport brings:
//
//   - Idempotency: each snapshot carries a sequence number (its billing
//     interval). A sequence at or below the tenant's watermark is a
//     duplicate and a no-op, so at-least-once senders are safe.
//   - Bounded reordering: out-of-order future snapshots wait in a
//     per-tenant reorder buffer. When the buffer exceeds its window the
//     missing intervals are decided as withheld (the loop's hold decision,
//     billed at the running container's list price) and the stream moves
//     on — late data can delay decisions, never corrupt them.
//   - Backpressure: a per-tenant token bucket sheds ingest load with 429s
//     before it can queue unboundedly.
//   - Durability: decisions are on disk (fsync'd, checksummed) before the
//     ingest response is written, and a restarted server resumes each
//     tenant's watermark from its ledger.
//
// Determinism carries over from the simulators: the decision sequence is
// a pure function of the accepted snapshot sequence and the policy
// configuration, so ledger.Replay over a recorded run reproduces the live
// decisions byte-for-byte regardless of request batching, timing, or
// server restarts.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"daasscale/internal/core"
	"daasscale/internal/exec"
	"daasscale/internal/fsio"
	"daasscale/internal/ledger"
	"daasscale/internal/loop"
	"daasscale/internal/policy"
	"daasscale/internal/resource"
	"daasscale/internal/telemetry"
)

// Defaults for zero-valued Config fields.
const (
	// DefaultGoalMs is the default P95 latency goal.
	DefaultGoalMs = 100
	// DefaultReorderWindow is the default per-tenant reorder-buffer bound.
	DefaultReorderWindow = 16
	// DefaultBurst is the default rate-limiter bucket size when a rate is
	// set without an explicit burst.
	DefaultBurst = 64
	// DefaultProbeInterval is the default pacing between a quarantined
	// tenant's recovery probes, and the Retry-After hint on degraded 503s.
	DefaultProbeInterval = 5 * time.Second
)

// tenantIDPattern constrains tenant IDs to ledger-filename-safe tokens.
var tenantIDPattern = regexp.MustCompile(`^[A-Za-z0-9_][A-Za-z0-9_.-]{0,63}$`)

// Config assembles a Server.
type Config struct {
	// LedgerDir is the directory holding one append-only ledger per tenant
	// (<id>.ledger). Required; created if missing.
	LedgerDir string
	// Catalog is the container catalog tenants scale over (nil =
	// resource.DefaultCatalog).
	Catalog *resource.Catalog
	// GoalMs is the P95 latency goal handed to the default policy (0 =
	// DefaultGoalMs). Ignored when NewPolicy is set.
	GoalMs float64
	// NewPolicy builds a tenant's policy; initial is the container the
	// tenant starts (or, after a restart, resumes) in. Nil uses the
	// default demand-driven auto-scaler.
	NewPolicy func(tenantID string, initial resource.Container) (policy.Policy, error)
	// Seed is the service's base seed. Each tenant's loop seed derives
	// from it via exec.SplitSeedString, the same discipline the fleet
	// runners use, so a tenant's decision stream is independent of tenant
	// arrival order.
	Seed int64
	// ReorderWindow bounds the per-tenant reorder buffer (0 =
	// DefaultReorderWindow). Once more than ReorderWindow future
	// snapshots wait, the oldest gap is flushed as withheld intervals.
	ReorderWindow int
	// RatePerSec is the per-tenant ingest rate limit in snapshots/second
	// (0 = unlimited).
	RatePerSec float64
	// Burst is the rate limiter's bucket size (0 = DefaultBurst).
	Burst int
	// SyncEvery is the ledger group-commit stride (0 = 1: fsync every
	// record; n > 1 amortizes the fsync over n records; < 0 syncs once
	// per ingest request).
	SyncEvery int
	// MaxTenants caps the tenant map (0 = unlimited). Ingest for a new
	// tenant beyond the cap is refused with 503.
	MaxTenants int
	// FS is the filesystem every ledger write goes through (nil =
	// fsio.OS, the real disk). The crash-consistency harness substitutes
	// a fault-injecting or crash-simulating implementation; production
	// always runs on the default.
	FS fsio.FS
	// ProbeInterval paces a quarantined tenant's recovery probes (0 =
	// DefaultProbeInterval): after a storage error, at most one ledger
	// rotation probe is attempted per interval, and degraded 503s carry
	// it as the Retry-After hint.
	ProbeInterval time.Duration
	// Now is the clock (nil = time.Now). Injectable for rate-limit and
	// metrics tests; decisions never depend on it.
	Now func() time.Time
	// TeeRecorder, when set, supplies an extra loop.Recorder per tenant
	// that receives every DecisionRecord alongside the ledger — the
	// replay-equals-live tests use it to capture the live stream.
	TeeRecorder func(tenantID string) loop.Recorder
}

// Server is the ingestion daemon: an http.Handler plus the tenant
// pipelines and ledgers behind it.
type Server struct {
	cfg           Config
	cat           *resource.Catalog
	goalMs        float64
	reorderWindow int
	syncEvery     int
	fs            fsio.FS
	probeInterval time.Duration
	now           func() time.Time
	mux           *http.ServeMux
	metrics       *metrics

	mu       sync.RWMutex
	tenants  map[string]*tenant
	draining bool
	closed   bool
}

// New builds a Server, creating the ledger directory if needed.
func New(cfg Config) (*Server, error) {
	if cfg.LedgerDir == "" {
		return nil, fmt.Errorf("serve: Config.LedgerDir is required")
	}
	s := &Server{
		cfg:           cfg,
		cat:           cfg.Catalog,
		goalMs:        cfg.GoalMs,
		reorderWindow: cfg.ReorderWindow,
		syncEvery:     cfg.SyncEvery,
		fs:            cfg.FS,
		probeInterval: cfg.ProbeInterval,
		now:           cfg.Now,
		tenants:       make(map[string]*tenant),
	}
	if s.fs == nil {
		s.fs = fsio.OS
	}
	if s.probeInterval <= 0 {
		s.probeInterval = DefaultProbeInterval
	}
	if err := s.fs.MkdirAll(cfg.LedgerDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if s.cat == nil {
		s.cat = resource.DefaultCatalog()
	}
	if s.goalMs <= 0 {
		s.goalMs = DefaultGoalMs
	}
	if s.reorderWindow <= 0 {
		s.reorderWindow = DefaultReorderWindow
	}
	if s.syncEvery == 0 {
		s.syncEvery = 1
	}
	if s.now == nil {
		s.now = time.Now
	}
	s.metrics = newMetrics(s.now())

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /v1/tenants/{id}/decisions", s.handleDecisions)
	mux.HandleFunc("GET /v1/tenants/{id}/bill", s.handleBill)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.addRequest()
	s.mux.ServeHTTP(w, r)
}

// newPolicy builds a tenant's policy via Config.NewPolicy or the default
// demand-driven auto-scaler.
func (s *Server) newPolicy(id string, initial resource.Container) (policy.Policy, error) {
	if s.cfg.NewPolicy != nil {
		return s.cfg.NewPolicy(id, initial)
	}
	sc, err := core.New(core.Config{
		Catalog: s.cat,
		Initial: initial,
		Goal:    core.LatencyGoal{Kind: core.GoalP95, Ms: s.goalMs},
	})
	if err != nil {
		return nil, err
	}
	return policy.NewAuto(sc), nil
}

// tenantSeed derives a tenant's loop seed from the service seed — same
// SplitSeed discipline as the fleet runners, so the stream is a function
// of (service seed, tenant ID) alone.
func (s *Server) tenantSeed(id string) int64 {
	return exec.SplitSeedString(s.cfg.Seed, id)
}

// newBucket builds a per-tenant token bucket from the configured rate
// (nil when unlimited).
func (s *Server) newBucket() *tokenBucket {
	if s.cfg.RatePerSec <= 0 {
		return nil
	}
	burst := s.cfg.Burst
	if burst <= 0 {
		burst = DefaultBurst
	}
	return newTokenBucket(s.cfg.RatePerSec, burst, s.now())
}

// getTenant returns the tenant pipeline for id, creating (and possibly
// ledger-resuming) it on first sight.
func (s *Server) getTenant(id string) (*tenant, int, error) {
	s.mu.RLock()
	t, ok := s.tenants[id]
	draining := s.draining
	s.mu.RUnlock()
	if ok {
		return t, http.StatusOK, nil
	}
	if draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("serve: draining")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[id]; ok {
		return t, http.StatusOK, nil
	}
	if s.draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("serve: draining")
	}
	if s.cfg.MaxTenants > 0 && len(s.tenants) >= s.cfg.MaxTenants {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("serve: tenant limit (%d) reached", s.cfg.MaxTenants)
	}
	t, err := s.newTenant(id)
	if err != nil {
		// A tenant that cannot open its ledger is a storage refusal, not a
		// server bug: 503, retry once the disk recovers.
		return nil, http.StatusServiceUnavailable, err
	}
	s.tenants[id] = t
	return t, http.StatusOK, nil
}

// lookupTenant returns an existing tenant pipeline or nil.
func (s *Server) lookupTenant(id string) *tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tenants[id]
}

// Close drains and shuts the server down: new work is refused, every
// tenant's reorder buffer is flushed through its loop (gaps decided as
// withheld intervals), and every ledger is synced and closed. Safe to
// call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.closed = true
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()

	var first error
	for _, t := range tenants {
		if err := t.drain(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Draining reports whether Close has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// wireSnapshot is one telemetry snapshot on the wire. Seq is the
// idempotency key — the billing interval the snapshot covers; when
// omitted it defaults to the snapshot's Interval field.
type wireSnapshot struct {
	Seq      *int               `json:"seq,omitempty"`
	Snapshot telemetry.Snapshot `json:"snapshot"`
}

// seq resolves the effective sequence number.
func (ws wireSnapshot) seq() int {
	if ws.Seq != nil {
		return *ws.Seq
	}
	return ws.Snapshot.Interval
}

// telemetryRequest is the ingest request body: a single snapshot, a
// batch, or both (single first).
type telemetryRequest struct {
	wireSnapshot
	Batch []wireSnapshot `json:"batch,omitempty"`
}

// ingestReply is the ingest response body.
type ingestReply struct {
	Tenant string `json:"tenant"`
	ingestCounts
	Error string `json:"error,omitempty"`
}

// maxBodyBytes bounds an ingest request body.
const maxBodyBytes = 8 << 20

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !tenantIDPattern.MatchString(id) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("invalid tenant id %q", id))
		return
	}
	var req telemetryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	var batch []wireSnapshot
	if req.Seq != nil || req.Snapshot != (telemetry.Snapshot{}) {
		batch = append(batch, req.wireSnapshot)
	}
	batch = append(batch, req.Batch...)
	if len(batch) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("empty request: need snapshot or batch"))
		return
	}

	t, status, err := s.getTenant(id)
	if err != nil {
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", s.degradedRetryAfter())
		}
		s.fail(w, status, err)
		return
	}
	counts, status, err := t.ingest(batch)
	s.metrics.addIngest(counts)
	reply := ingestReply{Tenant: id, ingestCounts: counts}
	if err != nil {
		s.metrics.addError()
		reply.Error = err.Error()
	}
	switch status {
	case http.StatusTooManyRequests:
		sec := counts.RetryAfterSec
		if sec < 1 {
			sec = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(sec))
	case http.StatusServiceUnavailable:
		// Degraded: nothing in this request is acknowledged; retry after
		// the next recovery probe will have had a chance to run.
		w.Header().Set("Retry-After", s.degradedRetryAfter())
	}
	writeJSON(w, status, reply)
}

// degradedRetryAfter is the Retry-After value for degraded-mode 503s:
// the probe interval, rounded up to whole seconds.
func (s *Server) degradedRetryAfter() string {
	sec := int(math.Ceil(s.probeInterval.Seconds()))
	if sec < 1 {
		sec = 1
	}
	return strconv.Itoa(sec)
}

// decisionsReply is the decisions response body.
type decisionsReply struct {
	Tenant    string                `json:"tenant"`
	Decisions []loop.DecisionRecord `json:"decisions"`
	Truncated bool                  `json:"ledger_truncated_tail"`
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.lookupTenant(id)
	if t == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return
	}
	log, err := t.replay()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	decs := log.Decisions()
	if since, ok := intParam(r, "since"); ok {
		i := sort.Search(len(decs), func(i int) bool { return decs[i].Interval >= since })
		decs = decs[i:]
	}
	if limit, ok := intParam(r, "limit"); ok && limit >= 0 && limit < len(decs) {
		decs = decs[len(decs)-limit:]
	}
	writeJSON(w, http.StatusOK, decisionsReply{Tenant: id, Decisions: decs, Truncated: log.Truncated})
}

// billReply is the bill response body.
type billReply struct {
	Tenant    string            `json:"tenant"`
	LineItems []ledger.LineItem `json:"line_items"`
	TotalCost float64           `json:"total_cost"`
}

func (s *Server) handleBill(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.lookupTenant(id)
	if t == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", id))
		return
	}
	log, err := t.replay()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, billReply{Tenant: id, LineItems: log.Items(), TotalCost: log.TotalCost()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	draining := s.draining
	s.mu.RUnlock()
	quarantined := []string{}
	for _, t := range tenants {
		t.mu.Lock()
		if t.quarantined {
			quarantined = append(quarantined, t.id)
		}
		t.mu.Unlock()
	}
	sort.Strings(quarantined)
	status := "ok"
	switch {
	case draining:
		status = "draining"
	case len(quarantined) > 0:
		// Degraded but alive: healthy tenants still serve; quarantined
		// ones refuse cleanly. The process should not be restarted for
		// this — the disk is the problem.
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":              status,
		"tenants":             len(tenants),
		"draining":            draining,
		"quarantined":         len(quarantined),
		"quarantined_tenants": quarantined,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	draining := s.draining
	s.mu.RUnlock()

	var depth, quarantined int
	var records, bytes, syncs, seals int64
	for _, t := range tenants {
		t.mu.Lock()
		depth += len(t.buf)
		records += t.led.Records()
		bytes += t.led.Bytes()
		syncs += t.led.Syncs()
		seals += t.led.Seals()
		if t.quarantined {
			quarantined++
		}
		t.mu.Unlock()
	}
	snap := s.metrics.snapshot(s.now(), len(tenants), depth, draining)
	snap.Ledger = ledgerMetrics{Records: records, Bytes: bytes, Syncs: syncs, Seals: seals}
	snap.Storage.QuarantinedNow = quarantined
	writeJSON(w, http.StatusOK, snap)
}

// replay syncs the tenant's ledger and reads it back — the query
// endpoints serve from the ledger itself, so what they return is by
// construction what a post-hoc audit would reproduce.
//
// A quarantined (or freshly failing) tenant still answers: the sync is
// skipped — a poisoned writer has nothing flushable that is safe to
// flush — and the reply is the durable prefix, which is correct by
// definition. Refusal is reserved for writes; reads of the durable
// record are always safe to serve.
func (t *tenant) replay() (*ledger.Log, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.quarantined && t.led.Failed() == nil {
		if err := t.led.Sync(); err != nil {
			t.quarantine(err)
		}
	}
	return ledger.ReplayFS(t.srv.fs, t.led.Path())
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.metrics.addError()
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// intParam parses an integer query parameter.
func intParam(r *http.Request, name string) (int, bool) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}
