package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"daasscale/internal/diskfaults"
	"daasscale/internal/ledger"
	"daasscale/internal/loop"
)

// liveTracker is the sweep's ground-truth tee: per tenant, the LAST
// decision the live loop produced for each interval. After a quarantine
// the pipeline is rebuilt from disk and a lost interval is re-decided, so
// the live stream can carry several attempts for one interval; the
// durability contract is that what replay returns for interval i is
// byte-identical to the last attempt (earlier attempts were never acked
// and never survived).
type liveTracker struct {
	mu   sync.Mutex
	last map[string]map[int][]byte
}

func newLiveTracker() *liveTracker { return &liveTracker{last: map[string]map[int][]byte{}} }

func (l *liveTracker) recorder(id string) loop.Recorder { return trackerRec{l, id} }

func (l *liveTracker) lastFor(id string, interval int) []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last[id][interval]
}

type trackerRec struct {
	lt *liveTracker
	id string
}

func (r trackerRec) Record(d loop.DecisionRecord) {
	r.lt.mu.Lock()
	defer r.lt.mu.Unlock()
	m := r.lt.last[r.id]
	if m == nil {
		m = map[int][]byte{}
		r.lt.last[r.id] = m
	}
	m[d.Interval] = ledger.EncodeDecision(&d)
}

// crashShape is one workload pattern the sweep runs: how snapshots are
// grouped into requests and which durability mode the server runs in.
type crashShape struct {
	name          string
	n             int
	syncEvery     int
	reorderWindow int
	reqs          [][]int
}

func crashShapes() []crashShape {
	const n = 12
	inorder := make([][]int, n)
	for i := range inorder {
		inorder[i] = []int{i}
	}
	// Adjacent pairs swapped: exercises the reorder buffer (and its
	// drop-on-quarantine path) without ever withholding a gap.
	swapped := make([][]int, n)
	for i := 0; i < n; i += 2 {
		swapped[i] = []int{i + 1}
		swapped[i+1] = []int{i}
	}
	batched := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}
	return []crashShape{
		{name: "inorder-singles", n: n, syncEvery: 1, reqs: inorder},
		{name: "swapped-singles", n: n, syncEvery: 1, reorderWindow: 8, reqs: swapped},
		{name: "batched-groupsync", n: n, syncEvery: -1, reqs: batched},
	}
}

func sweepServer(t *testing.T, shape crashShape, ffs *diskfaults.FS, clock *fakeClock, lt *liveTracker) *Server {
	t.Helper()
	s, err := New(Config{
		LedgerDir:     "/led",
		Seed:          7,
		FS:            ffs,
		ProbeInterval: 5 * time.Second,
		Now:           clock.Now,
		SyncEvery:     shape.syncEvery,
		ReorderWindow: shape.reorderWindow,
		TeeRecorder:   lt.recorder,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postBatch(t *testing.T, s *Server, tenant string, seqs []int) *httptest.ResponseRecorder {
	t.Helper()
	b := make([]wireSnapshot, len(seqs))
	for i, seq := range seqs {
		b[i] = wireSnapshot{Snapshot: snapFor(seq)}
	}
	return postRaw(t, s, tenant, map[string]interface{}{"batch": b})
}

// countCleanOps runs the shape's phase-1 workload on an unfaulted FS and
// returns how many faultable filesystem ops it issued — the space the
// sweep places fault points in. Close is deliberately excluded: the
// sweep's drains run after the fault window has closed.
func countCleanOps(t *testing.T, shape crashShape) int64 {
	t.Helper()
	ffs := diskfaults.Wrap(diskfaults.NewMemFS(), diskfaults.Plan{})
	s := sweepServer(t, shape, ffs, newFakeClock(), newLiveTracker())
	for _, req := range shape.reqs {
		if w := postBatch(t, s, "acme", req); w.Code != http.StatusOK {
			t.Fatalf("clean run refused (%d): %s", w.Code, w.Body.String())
		}
	}
	ops := ffs.Ops()
	if err := s.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}
	if ops == 0 {
		t.Fatal("clean run issued no filesystem ops — the sweep would be vacuous")
	}
	return ops
}

// TestCrashConsistencySweep is the tentpole's harness: for every workload
// shape, every fault kind, and a stride of fault points across the clean
// run's filesystem-op space, inject the fault mid-stream, let the sender
// retry after it clears (for power cuts: crash the disk to its synced
// image and restart the daemon), and assert the serving contract held:
//
//   - every response was 200, 429, or 503 — never a wrong answer, and
//     every 503 carried a Retry-After;
//   - no decision any 200/429 acknowledged was lost (VerifyLedgers);
//   - the bill derives from the decisions in lockstep (VerifyLedgers);
//   - what replay returns per interval is byte-identical to the last
//     decision the live loop produced for that interval.
func TestCrashConsistencySweep(t *testing.T) {
	kinds := []diskfaults.Kind{
		diskfaults.KindEIO,
		diskfaults.KindENOSPC,
		diskfaults.KindShortWrite,
		diskfaults.KindPowerCut,
	}
	points := int64(13)
	if testing.Short() {
		points = 5
	}
	for _, shape := range crashShapes() {
		t.Run(shape.name, func(t *testing.T) {
			total := countCleanOps(t, shape)
			stride := total / points
			if stride < 1 {
				stride = 1
			}
			for _, kind := range kinds {
				for at := int64(1); at < total; at += stride {
					t.Run(fmt.Sprintf("%s-at%03d", kind, at), func(t *testing.T) {
						runCrashScenario(t, shape, kind, at)
					})
				}
			}
		})
	}
}

func runCrashScenario(t *testing.T, shape crashShape, kind diskfaults.Kind, at int64) {
	mem := diskfaults.NewMemFS()
	ffs := diskfaults.Wrap(mem, diskfaults.Plan{})
	clock := newFakeClock()
	lt := newLiveTracker()
	s := sweepServer(t, shape, ffs, clock, lt)

	count := int64(3)
	if kind == diskfaults.KindPowerCut {
		count = 1
	}
	ffs.SetPlan(diskfaults.Plan{Kind: kind, Start: at, Count: count})

	acked := map[string]int{}
	recordAck := func(w *httptest.ResponseRecorder) {
		if reply := decodeReply(t, w); reply.NextSeq > acked["acme"] {
			acked["acme"] = reply.NextSeq
		}
	}

	// Phase 1: the faulted stream. Refusals are legal; wrong answers and
	// silent acks are not.
	for _, req := range shape.reqs {
		w := postBatch(t, s, "acme", req)
		switch w.Code {
		case http.StatusOK, http.StatusTooManyRequests:
			recordAck(w)
		case http.StatusServiceUnavailable:
			if w.Header().Get("Retry-After") == "" {
				t.Fatalf("503 without Retry-After: %s", w.Body.String())
			}
			clock.advance(6 * time.Second)
		default:
			t.Fatalf("status %d — the contract allows only 200/429/503 (body %s)", w.Code, w.Body.String())
		}
	}

	// Phase 2: the fault clears. A power cut loses every unsynced byte
	// and the whole process; other faults just stop occurring.
	if kind == diskfaults.KindPowerCut {
		mem.Crash()
		ffs.PowerOn()
		ffs.SetPlan(diskfaults.Plan{})
		clock = newFakeClock()
		s = sweepServer(t, shape, ffs, clock, lt)
	} else {
		ffs.SetPlan(diskfaults.Plan{})
		clock.advance(6 * time.Second)
	}

	// The sender re-sends everything in order (idempotency makes that
	// safe); every snapshot must eventually be accepted.
	for i := 0; i < shape.n; i++ {
		accepted := false
		for attempt := 0; attempt < 6 && !accepted; attempt++ {
			w := postBatch(t, s, "acme", []int{i})
			switch w.Code {
			case http.StatusOK:
				recordAck(w)
				accepted = true
			case http.StatusServiceUnavailable:
				clock.advance(6 * time.Second)
			default:
				t.Fatalf("resend %d: status %d (body %s)", i, w.Code, w.Body.String())
			}
		}
		if !accepted {
			t.Fatalf("snapshot %d never accepted after the fault cleared", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}

	// Invariants over the survivors.
	checks, err := VerifyLedgers(ffs, "/led", acked)
	if err != nil {
		t.Fatalf("%v (acked %v)", err, acked)
	}
	if len(checks) != 1 || checks[0].Decisions != shape.n {
		t.Fatalf("verify: %+v, want %d decisions for acme", checks, shape.n)
	}
	log, err := ledger.ReplayFS(ffs, "/led/acme.ledger")
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range log.Decisions() {
		want := lt.lastFor("acme", i)
		if want == nil {
			t.Fatalf("replayed decision %d was never produced by the live loop", i)
		}
		if !bytes.Equal(ledger.EncodeDecision(&d), want) {
			t.Fatalf("replayed decision %d diverges from the last live decision for interval %d", i, i)
		}
	}
}
